(* Unit tests of the distributed-framework building blocks: object store,
   message queue, subtask DB, cost model — plus the change-plan command
   grammar corners not covered elsewhere. *)

open Hoyan_net
module Storage = Hoyan_dist.Storage
module Mq = Hoyan_dist.Mq
module Db = Hoyan_dist.Db
module Costmodel = Hoyan_dist.Costmodel
module Cp = Hoyan_config.Change_plan
module Parser_a = Hoyan_config.Parser_a

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let route n =
  Route.make ~device:"X" ~prefix:(Prefix.of_string_exn (Printf.sprintf "10.%d.0.0/24" n)) ()

let test_storage () =
  let s = Storage.create () in
  Storage.put s ~key:"a" (Storage.O_routes [ route 1; route 2 ]);
  check tbool "mem" true (Storage.mem s ~key:"a");
  check tbool "not mem" false (Storage.mem s ~key:"b");
  (match Storage.get s ~key:"a" with
  | Some (Storage.O_routes rs) -> check tint "roundtrip" 2 (List.length rs)
  | _ -> Alcotest.fail "wrong payload");
  (* accounting *)
  let st = Storage.stats s in
  check tint "bytes written" (2 * Storage.bytes_per_route) st.Storage.bytes_written;
  check tint "files written" 1 st.Storage.files_written;
  check tint "bytes read" (2 * Storage.bytes_per_route) st.Storage.bytes_read;
  check tint "files read" 1 st.Storage.files_read;
  (* overwrite replaces *)
  Storage.put s ~key:"a" (Storage.O_routes [ route 3 ]);
  (match Storage.get s ~key:"a" with
  | Some (Storage.O_routes [ r ]) ->
      check Alcotest.string "replaced" "10.3.0.0/24"
        (Prefix.to_string r.Route.prefix)
  | _ -> Alcotest.fail "replace failed");
  check tint "keys" 1 (List.length (Storage.keys s))

let test_mq () =
  let q = Mq.create () in
  check tbool "empty" true (Mq.is_empty q);
  let msg i =
    { Mq.m_id = Printf.sprintf "t-%d" i; m_kind = Mq.Route_subtask;
      m_input_key = "k"; m_snapshot = "base"; m_attempt = 1 }
  in
  Mq.push q (msg 1);
  Mq.push q (msg 2);
  check tint "length" 2 (Mq.length q);
  (* FIFO order *)
  (match Mq.pop q with
  | Some m -> check Alcotest.string "fifo" "t-1" m.Mq.m_id
  | None -> Alcotest.fail "pop");
  (match Mq.pop q with
  | Some m -> check Alcotest.string "fifo 2" "t-2" m.Mq.m_id
  | None -> Alcotest.fail "pop");
  check tbool "drained" true (Mq.pop q = None)

let test_db () =
  let db = Db.create () in
  let e = Db.register db "t-1" in
  check tbool "pending" true (Db.status e = Db.Pending);
  Db.set_status db "t-1" Db.Running;
  check tbool "not all done" false (Db.all_done db);
  Db.set_status db "t-1" Db.Done;
  check tbool "all done" true (Db.all_done db);
  ignore (Db.register db "t-2");
  Db.set_status db "t-2" (Db.Failed "boom");
  check tint "one failed" 1
    (Db.count_status db (function Db.Failed _ -> true | _ -> false));
  check tbool "find" true (Db.find db "t-2" <> None);
  check tbool "find miss" true (Db.find db "t-9" = None)

let test_costmodel () =
  let c = Costmodel.production_like in
  let t = Costmodel.io_time c ~bytes:500_000_000 ~files:10 in
  (* 10 * 20ms + 1s transfer *)
  check (Alcotest.float 0.01) "io time" 1.2 t;
  let e = Db.register (Db.create ()) "x" in
  Db.complete e ~duration_s:2.0 ~io_bytes:500_000_000 ~io_files:10 ();
  check (Alcotest.float 0.01) "subtask time" 3.2 (Costmodel.subtask_time c e)

let test_change_plan_line_count () =
  let cp =
    Cp.make "x"
      ~commands:[ ("A", "line1\nline2\n\n  line3\n"); ("B", "only\n") ]
  in
  check tint "command lines" 4 (Cp.command_line_count cp)

let test_delete_whole_policy_and_lists () =
  let base, _ =
    Parser_a.parse ~device:"x"
      "route-map RM permit 10\nip prefix-list PL seq 5 permit 10.0.0.0/24\n\
       ip community-list CL seq 5 permit 1:1\n"
  in
  let cfg, report =
    Cp.apply_commands base
      "no route-map RM\nno ip prefix-list PL\nno ip community-list CL\n"
  in
  check tint "no delete errors" 0 (List.length (Cp.delete_issues report));
  check tbool "policy gone" true
    (Hoyan_config.Types.find_policy cfg "RM" = None);
  check tbool "prefix list gone" true
    (Hoyan_config.Types.find_prefix_list cfg "PL" = None);
  check tbool "community list gone" true
    (Hoyan_config.Types.find_community_list cfg "CL" = None)

let test_delete_bgp_members () =
  let base, _ =
    Parser_a.parse ~device:"x"
      "router bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n network \
       10.0.0.0/24\n"
  in
  let cfg, report =
    Cp.apply_commands base
      "no router bgp neighbor 10.0.0.2\nno router bgp network 10.0.0.0/24\n"
  in
  check tint "clean" 0 (List.length (Cp.delete_issues report));
  let bgp = cfg.Hoyan_config.Types.dc_bgp in
  check tint "neighbor removed" 0
    (List.length bgp.Hoyan_config.Types.bgp_neighbors);
  check tint "network removed" 0
    (List.length bgp.Hoyan_config.Types.bgp_networks)

let suite =
  [
    ("object store", `Quick, test_storage);
    ("message queue", `Quick, test_mq);
    ("subtask db", `Quick, test_db);
    ("cost model", `Quick, test_costmodel);
    ("change plan line count", `Quick, test_change_plan_line_count);
    ("delete whole objects", `Quick, test_delete_whole_policy_and_lists);
    ("delete bgp members", `Quick, test_delete_bgp_members);
  ]
