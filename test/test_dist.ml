(* Tests for the distributed simulation framework: splitters, the ordering
   heuristic, master/worker execution, failure retry, the schedule replay,
   and the real-parallel executor. *)

open Hoyan_net
module G = Hoyan_workload.Generator
module Faultplan = Hoyan_workload.Faultplan
module Split = Hoyan_dist.Split
module Framework = Hoyan_dist.Framework
module Schedule = Hoyan_dist.Schedule
module Db = Hoyan_dist.Db
module Mq = Hoyan_dist.Mq
module Chaos = Hoyan_dist.Chaos
module Parallel = Hoyan_dist.Parallel
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Verify_request = Hoyan_core.Verify_request
module Preprocess = Hoyan_core.Preprocess
module Intents = Hoyan_core.Intents
module Cp = Hoyan_config.Change_plan


(* fixed seed: the property suites are deterministic run to run *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |]) t

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let scenario = lazy (G.generate G.small)

let test_split_routes_ordered () =
  let g = Lazy.force scenario in
  let splits =
    Split.split_routes ~strategy:Split.Ordered ~subtasks:10 g.G.input_routes
  in
  check tbool "about 10 subtasks" true (List.length splits <= 10);
  (* all routes of one prefix are in the same subtask *)
  let prefix_home = Hashtbl.create 256 in
  List.iteri
    (fun i (routes, _) ->
      List.iter
        (fun (r : Route.t) ->
          match Hashtbl.find_opt prefix_home r.Route.prefix with
          | Some j -> check tint "same-prefix same-subtask" j i
          | None -> Hashtbl.add prefix_home r.Route.prefix i)
        routes)
    splits;
  (* ranges cover their routes *)
  List.iter
    (fun (routes, (lo, hi)) ->
      List.iter
        (fun (r : Route.t) ->
          check tbool "range covers first" true
            (Ip.compare (Prefix.first_addr r.Route.prefix) lo >= 0);
          check tbool "range covers last" true
            (Ip.compare (Prefix.last_addr r.Route.prefix) hi <= 0))
        routes)
    splits;
  (* total preserved *)
  let total = List.fold_left (fun n (rs, _) -> n + List.length rs) 0 splits in
  check tint "no route lost" (List.length g.G.input_routes) total

let test_split_flows () =
  let g = Lazy.force scenario in
  let splits =
    Split.split_flows ~strategy:Split.Ordered ~subtasks:8 g.G.flows
  in
  let total = List.fold_left (fun n (fs, _) -> n + List.length fs) 0 splits in
  check tint "no flow lost" (List.length g.G.flows) total;
  (* destination ranges are ordered and non-overlapping for Ordered *)
  let ranges = List.map snd splits in
  let rec non_overlapping = function
    | (_, hi) :: ((lo2, _) :: _ as rest) ->
        Ip.compare hi lo2 <= 0 && non_overlapping rest
    | _ -> true
  in
  check tbool "ordered ranges disjoint" true (non_overlapping ranges)

let test_distributed_equals_direct () =
  let g = Lazy.force scenario in
  let direct =
    (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib
  in
  let fw = Framework.create g.G.model in
  let phase =
    Framework.run_route_phase ~subtasks:7 fw ~input_routes:g.G.input_routes
  in
  check tbool "distributed RIB equals direct RIB" true
    (Rib.Global.equal direct phase.Framework.rp_rib)

let test_traffic_phase_and_dependencies () =
  let g = Lazy.force scenario in
  let fw = Framework.create g.G.model in
  let rp = Framework.run_route_phase ~subtasks:10 fw ~input_routes:g.G.input_routes in
  let tp =
    Framework.run_traffic_phase ~subtasks:8 ~dep_mode:Framework.Deps_ordered fw
      ~route_phase:rp ~flows:g.G.flows
  in
  (* loads through the framework equal a direct traffic run *)
  let direct =
    Traffic_sim.run g.G.model ~rib:rp.Framework.rp_rib ~flows:g.G.flows ()
  in
  let total tbl = Hashtbl.fold (fun _ v a -> a +. v) tbl 0. in
  check (Alcotest.float 1.0) "loads agree"
    (total direct.Traffic_sim.link_load)
    (total tp.Framework.tp_link_load);
  (* the ordering heuristic loads strictly fewer RIB files than all *)
  let fw2 = Framework.create g.G.model in
  let rp2 = Framework.run_route_phase ~subtasks:10 fw2 ~input_routes:g.G.input_routes in
  let tp_all =
    Framework.run_traffic_phase ~subtasks:8 ~dep_mode:Framework.Deps_all fw2
      ~route_phase:rp2 ~flows:g.G.flows
  in
  let avg fracs =
    List.fold_left (fun a (_, f) -> a +. f) 0. fracs
    /. float_of_int (List.length fracs)
  in
  check tbool "ordered loads fewer files" true
    (avg tp.Framework.tp_loaded_fracs < avg tp_all.Framework.tp_loaded_fracs);
  check (Alcotest.float 0.001) "all-mode loads everything" 1.0
    (avg tp_all.Framework.tp_loaded_fracs);
  (* and the results are nevertheless identical (dependency soundness) *)
  check (Alcotest.float 1.0) "ordered = all results"
    (total tp_all.Framework.tp_link_load)
    (total tp.Framework.tp_link_load)

let test_random_split_loads_everything () =
  let g = Lazy.force scenario in
  let fw = Framework.create g.G.model in
  let rp =
    Framework.run_route_phase ~strategy:(Split.Random 5) ~subtasks:10 fw
      ~input_routes:g.G.input_routes
  in
  let tp =
    Framework.run_traffic_phase ~strategy:(Split.Random 6) ~subtasks:8
      ~dep_mode:Framework.Deps_ordered fw ~route_phase:rp ~flows:g.G.flows
  in
  (* with random partitions nearly every subtask depends on nearly every
     RIB file (Figure 5d's contrast) *)
  let avg =
    List.fold_left (fun a (_, f) -> a +. f) 0. tp.Framework.tp_loaded_fracs
    /. float_of_int (List.length tp.Framework.tp_loaded_fracs)
  in
  check tbool "random split loads ~all files" true (avg > 0.9)

let test_failure_retry () =
  let g = Lazy.force scenario in
  let fw = Framework.create ~fail_prob:0.3 ~seed:11 g.G.model in
  let phase =
    Framework.run_route_phase ~subtasks:10 fw ~input_routes:g.G.input_routes
  in
  (* despite injected worker crashes, the monitor re-sends every failed
     subtask; under the outcome contract the phase either completes or
     reports exactly who failed *)
  check tbool "db settled" true (Db.all_settled fw.Framework.db);
  (if phase.Framework.rp_complete then begin
     check tbool "no failures reported" true (phase.Framework.rp_failed = []);
     let direct =
       (Route_sim.run g.G.model ~input_routes:g.G.input_routes ())
         .Route_sim.rib
     in
     check tbool "rib correct despite failures" true
       (Rib.Global.equal direct phase.Framework.rp_rib)
   end
   else
     check tbool "incomplete phase lists its failures" true
       (phase.Framework.rp_failed <> []));
  (* at least one retry actually happened, through the monitor *)
  let retried =
    Db.all fw.Framework.db
    |> List.exists (fun (_, e) -> Db.attempts e > 1)
  in
  check tbool "some subtask was retried" true retried;
  check tbool "monitor re-sent something" true (phase.Framework.rp_resends > 0)

let test_schedule_makespan () =
  (* makespan on 1 server is the sum; more servers monotonically help;
     a single huge job bounds the makespan from below *)
  let durations = [ 10.; 1.; 1.; 1.; 1.; 1.; 1.; 1. ] in
  let m1, _ = Schedule.makespan ~servers:1 durations in
  let m4, _ = Schedule.makespan ~servers:4 durations in
  let m100, _ = Schedule.makespan ~servers:100 durations in
  check (Alcotest.float 0.001) "1 server = sum" 17.0 m1;
  check tbool "4 servers faster" true (m4 < m1);
  check (Alcotest.float 0.001) "bounded by longest job" 10.0 m100;
  (* the CDF helper is a proper CDF *)
  let cdf = Schedule.cdf durations in
  check (Alcotest.float 0.001) "cdf ends at 1" 1.0 (snd (List.nth cdf 7));
  check tbool "cdf sorted" true
    (List.for_all2
       (fun (a, _) (b, _) -> a <= b)
       (List.filteri (fun i _ -> i < 7) cdf)
       (List.tl cdf))

let test_schedule_lpt () =
  (* LPT processes the longest job first: on 2 servers the FIFO order
     [3;3;4;2] packs to 7 while LPT's [4;3;3;2] packs to 6 *)
  let durations = [ 3.; 3.; 4.; 2. ] in
  let fifo, _ = Schedule.makespan ~policy:Schedule.Fifo ~servers:2 durations in
  let lpt, _ = Schedule.makespan ~policy:Schedule.Lpt ~servers:2 durations in
  check (Alcotest.float 0.001) "fifo packs to 7" 7.0 fifo;
  check (Alcotest.float 0.001) "lpt packs to 6" 6.0 lpt;
  (* on 1 server the policy cannot matter: both are the sum *)
  let f1, _ = Schedule.makespan ~policy:Schedule.Fifo ~servers:1 durations in
  let l1, _ = Schedule.makespan ~policy:Schedule.Lpt ~servers:1 durations in
  check (Alcotest.float 0.001) "1 server fifo = sum" 12.0 f1;
  check (Alcotest.float 0.001) "1 server lpt = sum" 12.0 l1

let test_schedule_edge_cases () =
  (* empty job list: zero makespan, no busy servers *)
  let m0, busy0 = Schedule.makespan ~servers:4 [] in
  check (Alcotest.float 0.001) "empty makespan" 0.0 m0;
  check tint "empty busy array sized by servers" 4 (Array.length busy0);
  Array.iter (fun b -> check (Alcotest.float 0.001) "idle server" 0.0 b) busy0;
  let l0, _ = Schedule.makespan ~policy:Schedule.Lpt ~servers:4 [] in
  check (Alcotest.float 0.001) "empty lpt makespan" 0.0 l0;
  (* a single job occupies exactly one server for its duration *)
  let m1, _ = Schedule.makespan ~servers:8 [ 2.5 ] in
  check (Alcotest.float 0.001) "single job" 2.5 m1;
  (* the empty CDF is the empty list *)
  check tint "empty cdf" 0 (List.length (Schedule.cdf []))

(* property: under LPT, adding servers never increases the makespan.
   (Not true of FIFO in general — a queue-order anomaly can make a
   wider pool slower — but LPT's longest-first order is anomaly-free
   under the earliest-free-server replay.) *)
let prop_lpt_sweep_monotone =
  let gen =
    QCheck.Gen.(
      triple
        (list_size (int_range 0 12)
           (map (fun n -> float_of_int (1 + (n mod 997)) /. 100.) nat))
        (int_range 1 6) (int_range 1 3))
  in
  QCheck.Test.make ~name:"LPT sweep: more servers never hurt" ~count:500
    (QCheck.make gen)
    (fun (durations, servers, extra) ->
      let m_few =
        fst (Schedule.makespan ~policy:Schedule.Lpt ~servers durations)
      in
      let m_more =
        fst
          (Schedule.makespan ~policy:Schedule.Lpt ~servers:(servers + extra)
             durations)
      in
      m_more <= m_few +. 1e-9)

let test_parallel_executor () =
  let g = Lazy.force scenario in
  let direct =
    (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib
  in
  let parallel =
    Parallel.route_phase_rib ~domains:4 ~subtasks:6 g.G.model
      ~input_routes:g.G.input_routes
  in
  check tbool "parallel domains produce the same RIB" true
    (Rib.Global.equal direct parallel)

let test_parallel_map () =
  let xs = List.init 100 Fun.id in
  let ys = Parallel.map ~domains:4 (fun x -> x * x) xs in
  check Alcotest.(list int) "order preserved" (List.map (fun x -> x * x) xs) ys

let test_parallel_map_sizes () =
  let sq x = x * x in
  (* empty, singleton, odd, and far more items than domains *)
  List.iter
    (fun n ->
      let xs = List.init n Fun.id in
      check
        Alcotest.(list int)
        (Printf.sprintf "size %d preserved" n)
        (List.map sq xs)
        (Parallel.map ~domains:4 sq xs))
    [ 0; 1; 7; 1000 ];
  (* domains=1 degenerates to sequential execution on the caller *)
  let xs = List.init 33 Fun.id in
  check
    Alcotest.(list int)
    "domains=1 is sequential" (List.map sq xs)
    (Parallel.map ~domains:1 sq xs)

exception Boom of int

let test_parallel_map_exception () =
  let xs = List.init 64 Fun.id in
  (* a raise inside a worker propagates to the caller instead of
     tripping the join-time assert on a result hole *)
  (match Parallel.map ~domains:4 (fun x -> if x = 13 then raise (Boom x) else x) xs with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 13 -> ());
  (* every item failing: still exactly one exception, no hang *)
  (match Parallel.map ~domains:4 (fun _ -> raise Exit) xs with
  | _ -> Alcotest.fail "expected Exit to propagate"
  | exception Exit -> ());
  (* sequential degenerate case propagates too *)
  match Parallel.map ~domains:1 (fun _ -> raise Not_found) [ 1; 2 ] with
  | _ -> Alcotest.fail "expected Not_found to propagate"
  | exception Not_found -> ()

let sorted_loads (r : Traffic_sim.result) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.Traffic_sim.link_load []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

(* The end-to-end parallel pipeline reproduces the centralized runner's
   output: route-phase RIB rows bit-for-bit, traffic-phase results
   bit-for-bit across domain counts and per-flow identical to the
   sequential single-table run. *)
let test_parallel_pipeline_equals_centralized () =
  let g = Lazy.force scenario in
  let cent =
    Hoyan_sim.Centralized.run ~mem_cap_bytes:max_int g.G.model
      ~input_routes:g.G.input_routes ()
  in
  let norm rs = List.sort_uniq Route.compare rs in
  let par_rib =
    Parallel.route_phase_rib ~domains:4 ~subtasks:6 g.G.model
      ~input_routes:g.G.input_routes
  in
  check tbool "route phase rows = centralized rows (bit-for-bit)" true
    (List.equal Route.equal
       (norm cent.Hoyan_sim.Centralized.c_rib)
       (norm par_rib));
  let rib = par_rib in
  let seq = Traffic_sim.run g.G.model ~rib ~flows:g.G.flows () in
  let par1 =
    Parallel.traffic_phase ~domains:1 ~subtasks:8 g.G.model ~rib
      ~flows:g.G.flows ()
  in
  let par4 =
    Parallel.traffic_phase ~domains:4 ~subtasks:8 g.G.model ~rib
      ~flows:g.G.flows ()
  in
  (* the domain count changes nothing: deterministic shard merge *)
  check tbool "traffic domains=1 = domains=4 (bit-for-bit)" true
    (par1.Traffic_sim.flow_results = par4.Traffic_sim.flow_results
    && sorted_loads par1 = sorted_loads par4);
  (* per-flow results equal the sequential single-table run exactly
     (walks are per-flow deterministic); link loads agree within float
     re-association tolerance *)
  let by_flow rs = List.sort Stdlib.compare rs in
  check tbool "per-flow results = sequential (bit-for-bit)" true
    (by_flow par4.Traffic_sim.flow_results
    = by_flow seq.Traffic_sim.flow_results);
  let la = sorted_loads par4 and lb = sorted_loads seq in
  check tint "same loaded edges" (List.length lb) (List.length la);
  List.iter2
    (fun (ka, va) (kb, vb) ->
      check tbool "same edge" true (ka = kb);
      check tbool "load agrees" true
        (Float.abs (va -. vb) <= 1e-6 *. Float.max 1.0 (Float.abs vb)))
    la lb;
  (* population accounting is preserved by the merge *)
  check tint "flow population preserved" seq.Traffic_sim.flow_count
    par4.Traffic_sim.flow_count

(* property: the ordering heuristic's dependency test is sound — if a
   traffic subtask's range does not overlap a route subtask's range, no
   flow of the former can match any route of the latter *)
let prop_dependency_soundness =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 20)
           (map2
              (fun ip len ->
                Hoyan_net.Prefix.make (Ip.V4 (ip land 0xffffffff)) (8 + (len mod 17)))
              nat nat))
        (list_size (int_range 1 20) (map (fun n -> Ip.V4 (n land 0xffffffff)) nat)))
  in
  QCheck.Test.make ~name:"range-overlap dependency test is sound" ~count:200
    (QCheck.make gen)
    (fun (prefixes, dsts) ->
      let routes =
        List.map
          (fun p -> Route.make ~device:"X" ~prefix:p ())
          prefixes
      in
      let r_splits = Split.split_routes ~strategy:Split.Ordered ~subtasks:4 routes in
      let flows =
        List.map
          (fun d -> Flow.make ~src:(Ip.V4 1) ~dst:d ~ingress:"X" ())
          dsts
      in
      let f_splits = Split.split_flows ~strategy:Split.Ordered ~subtasks:4 flows in
      List.for_all
        (fun (fs, frange) ->
          List.for_all
            (fun (rs, rrange) ->
              Split.ranges_overlap frange rrange
              || (* no overlap: then no flow matches any route *)
              not
                (List.exists
                   (fun (f : Flow.t) ->
                     List.exists
                       (fun (r : Route.t) -> Prefix.mem f.Flow.dst r.Route.prefix)
                       rs)
                   fs))
            r_splits)
        f_splits)

(* ------------------------------------------------------------------ *)
(* fault injection: chaos plans, the monitor loop, the outcome contract *)
(* ------------------------------------------------------------------ *)

let sorted_tbl tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

(* the failure-free reference run every chaos cell is compared against *)
let baseline =
  lazy
    (let g = Lazy.force scenario in
     let fw = Framework.create g.G.model in
     let rp =
       Framework.run_route_phase ~subtasks:10 fw
         ~input_routes:g.G.input_routes
     in
     let tp =
       Framework.run_traffic_phase ~subtasks:8 fw ~route_phase:rp
         ~flows:g.G.flows
     in
     (rp, tp))

(* the fault-injection matrix: fail_prob in {0, 0.2, 0.5} x
   {storage loss, mq drop/dup, worker stalls}.  The outcome contract
   under any cell: the phase either completes with results identical to
   the failure-free run, or reports the exact set of permanently-failed
   subtasks — never a silently smaller merge. *)
let test_fault_matrix () =
  let g = Lazy.force scenario in
  let rp0, tp0 = Lazy.force baseline in
  let base_loads = sorted_tbl tp0.Framework.tp_link_load in
  List.iter
    (fun mode ->
      List.iter
        (fun prob ->
          let label =
            Printf.sprintf "%s@%.1f" (Faultplan.mode_to_string mode) prob
          in
          let chaos = Faultplan.plan ~seed:7 ~prob mode in
          let fw = Framework.create ~chaos ~max_attempts:4 g.G.model in
          let rp =
            Framework.run_route_phase ~subtasks:10 fw
              ~input_routes:g.G.input_routes
          in
          check tbool (label ^ ": route db settled") true
            (Db.all_settled fw.Framework.db);
          check tbool (label ^ ": complete iff no failures") true
            (rp.Framework.rp_complete = (rp.Framework.rp_failed = []));
          if rp.Framework.rp_complete then begin
            check tbool (label ^ ": RIB identical to failure-free run") true
              (List.equal Route.equal rp0.Framework.rp_rib rp.Framework.rp_rib);
            let tp =
              Framework.run_traffic_phase ~subtasks:8 fw ~route_phase:rp
                ~flows:g.G.flows
            in
            check tbool (label ^ ": traffic db settled") true
              (Db.all_settled fw.Framework.db);
            check tbool (label ^ ": traffic complete iff no failures") true
              (tp.Framework.tp_complete = (tp.Framework.tp_failed = []));
            if tp.Framework.tp_complete then
              check tbool
                (label ^ ": link loads identical to failure-free run")
                true
                (base_loads = sorted_tbl tp.Framework.tp_link_load)
          end)
        Faultplan.matrix_probs)
    [ Faultplan.Storage_loss; Faultplan.Mq_faults; Faultplan.Stalls ]

(* satellite regression: a result object that keeps vanishing must
   surface in the phase outcome, not silently shrink the merge *)
let test_result_object_loss_reported () =
  let g = Lazy.force scenario in
  let chaos = Chaos.make ~lose_always:[ "route-001.rib" ] () in
  let fw = Framework.create ~chaos g.G.model in
  let rp =
    Framework.run_route_phase ~subtasks:10 fw ~input_routes:g.G.input_routes
  in
  check tbool "phase reports incomplete" false rp.Framework.rp_complete;
  check tint "exactly the one victim failed" 1
    (List.length rp.Framework.rp_failed);
  let f = List.hd rp.Framework.rp_failed in
  check Alcotest.string "victim id" "route-001" f.Framework.sf_id;
  check Alcotest.string "reason is the missing result" "result object missing"
    f.Framework.sf_reason;
  check tint "retry budget honoured" fw.Framework.max_attempts
    f.Framework.sf_attempts;
  (* the rest of the phase is intact and settled *)
  check tbool "db settled" true (Db.all_settled fw.Framework.db)

(* satellite: a lost input object is a recoverable failure — the monitor
   re-uploads from the split the master retained and the subtask
   completes on the next attempt *)
let test_missing_input_reupload () =
  let g = Lazy.force scenario in
  let chaos = Chaos.make ~lose_first:[ "route-002.in" ] () in
  let fw = Framework.create ~chaos g.G.model in
  let rp =
    Framework.run_route_phase ~subtasks:10 fw ~input_routes:g.G.input_routes
  in
  check tbool "phase completes after re-upload" true rp.Framework.rp_complete;
  check tbool "monitor re-uploaded the input" true
    (fw.Framework.stats.Framework.ms_reuploads >= 1);
  check tbool "subtask was retried" true
    (Db.attempts (Db.find_exn fw.Framework.db "route-002") > 1);
  let rp0, _ = Lazy.force baseline in
  check tbool "rib identical to failure-free run" true
    (List.equal Route.equal rp0.Framework.rp_rib rp.Framework.rp_rib)

(* stalled workers never write the DB; the master reclaims their
   subtasks when the lease expires *)
let test_stall_lease_recovery () =
  let g = Lazy.force scenario in
  let chaos = Chaos.make ~stall_prob:0.4 ~seed:3 () in
  (* stall_prob 0.4 with a budget of 10: the chance of any of the ten
     subtasks exhausting it is ~0.1% — and the run is deterministic, so
     this seed is known to recover *)
  let fw = Framework.create ~chaos ~max_attempts:10 g.G.model in
  let rp =
    Framework.run_route_phase ~subtasks:10 fw ~input_routes:g.G.input_routes
  in
  check tbool "leases actually expired" true
    (fw.Framework.stats.Framework.ms_lease_expired > 0);
  check tbool "phase recovered" true rp.Framework.rp_complete;
  let rp0, _ = Lazy.force baseline in
  check tbool "rib identical to failure-free run" true
    (List.equal Route.equal rp0.Framework.rp_rib rp.Framework.rp_rib)

(* MQ loss costs a re-send but no attempt (the subtask never ran);
   duplication is absorbed by the worker-side delivery gate *)
let test_mq_drop_dup () =
  let g = Lazy.force scenario in
  let chaos = Chaos.make ~mq_drop_prob:0.3 ~mq_dup_prob:0.3 ~seed:5 () in
  let fw = Framework.create ~chaos g.G.model in
  let rp =
    Framework.run_route_phase ~subtasks:10 fw ~input_routes:g.G.input_routes
  in
  let dropped = Mq.dropped fw.Framework.mq
  and duplicated = Mq.duplicated fw.Framework.mq in
  check tbool "some messages dropped or duplicated" true
    (dropped + duplicated > 0);
  check tbool "phase nevertheless completes" true rp.Framework.rp_complete;
  if dropped > 0 then
    check tbool "drops were re-sent by the monitor" true
      (rp.Framework.rp_resends > 0);
  if duplicated > 0 then
    check tbool "duplicate deliveries ignored as stale" true
      (fw.Framework.stats.Framework.ms_stale_msgs > 0);
  let rp0, _ = Lazy.force baseline in
  check tbool "rib identical to failure-free run" true
    (List.equal Route.equal rp0.Framework.rp_rib rp.Framework.rp_rib)

(* chaos decisions are a pure function of (seed, site, key, seq): the
   same plan replays to the identical failure history *)
let test_chaos_determinism () =
  let g = Lazy.force scenario in
  let run () =
    let chaos = Faultplan.plan ~seed:99 ~prob:0.4 Faultplan.Mixed in
    let fw = Framework.create ~chaos ~max_attempts:4 g.G.model in
    let rp =
      Framework.run_route_phase ~subtasks:10 fw
        ~input_routes:g.G.input_routes
    in
    ( rp.Framework.rp_failed,
      rp.Framework.rp_resends,
      fw.Framework.stats.Framework.ms_lease_expired,
      fw.Framework.stats.Framework.ms_terminal,
      Mq.dropped fw.Framework.mq,
      Mq.duplicated fw.Framework.mq )
  in
  check tbool "identical replay under the same seed" true (run () = run ())

(* at fail_prob 1.0 nothing can ever succeed: the monitor must still
   terminate, exhaust every budget, and report every subtask *)
let test_total_failure_terminates () =
  let g = Lazy.force scenario in
  let fw = Framework.create ~fail_prob:1.0 g.G.model in
  let rp =
    Framework.run_route_phase ~subtasks:5 fw ~input_routes:g.G.input_routes
  in
  check tbool "phase reports incomplete" false rp.Framework.rp_complete;
  check tint "every subtask permanently failed"
    (List.length rp.Framework.rp_subtasks)
    (List.length rp.Framework.rp_failed);
  List.iter
    (fun (f : Framework.subtask_failure) ->
      check tint "budget honoured" fw.Framework.max_attempts f.Framework.sf_attempts)
    rp.Framework.rp_failed

(* satellite: the aggregated EC counters come from the simulators'
   per-subtask results, not from input-list lengths or subtask counts *)
let test_ec_counts () =
  let g = Lazy.force scenario in
  let fw = Framework.create g.G.model in
  let rp =
    Framework.run_route_phase ~subtasks:10 ~use_ecs:false fw
      ~input_routes:g.G.input_routes
  in
  (* with EC compression off, each input is its own class: the sum over
     subtasks must equal the total input count exactly *)
  check tint "ECs off: rp_ec_inputs = total inputs"
    (List.length g.G.input_routes)
    rp.Framework.rp_ec_inputs;
  let tp =
    Framework.run_traffic_phase ~subtasks:8 ~use_ecs:false fw ~route_phase:rp
      ~flows:g.G.flows
  in
  check tint "ECs off: tp_ec_count = total flows" (List.length g.G.flows)
    tp.Framework.tp_ec_count;
  (* with ECs on, compression can only reduce the class count *)
  let fw2 = Framework.create g.G.model in
  let rp2 =
    Framework.run_route_phase ~subtasks:10 fw2 ~input_routes:g.G.input_routes
  in
  check tbool "ECs on: 0 < classes <= inputs" true
    (rp2.Framework.rp_ec_inputs > 0
    && rp2.Framework.rp_ec_inputs <= List.length g.G.input_routes)

(* satellite: the range seed must respect the subtask's address family
   instead of collapsing to the v4 zero pair *)
let test_seed_range () =
  let route p = Route.make ~device:"R" ~prefix:(Prefix.of_string_exn p) () in
  check tbool "no range, no rows: stays None" true
    (Framework.seed_range None [] = None);
  (match Framework.seed_range None [ route "2001:db8::/32" ] with
  | Some (lo, hi) ->
      check tbool "v6 rows seed a v6 range" true
        (Ip.family lo = Ip.Ipv6 && Ip.family hi = Ip.Ipv6)
  | None -> Alcotest.fail "expected a seeded range");
  let r4 = route "10.0.0.0/8" in
  match
    Framework.seed_range (Some (Ip.V4 0x0b000000, Ip.V4 0x0b0000ff)) [ r4 ]
  with
  | Some (lo, hi) ->
      check tbool "existing range is widened to cover the rows" true
        (Ip.compare lo (Prefix.first_addr r4.Route.prefix) <= 0
        && Ip.compare hi (Prefix.last_addr r4.Route.prefix) >= 0)
  | None -> Alcotest.fail "expected a range"

(* the verification pipeline refuses intent verdicts over partial
   distributed results (and can never report PASS on them) *)
let test_verify_partial_refusal () =
  let g = Lazy.force scenario in
  let base =
    Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
      ~monitored_flows:g.G.flows
  in
  let rq =
    {
      Verify_request.rq_name = "chaos-partial";
      rq_plan = Cp.make "test" ~commands:[];
      rq_intents = [ Intents.Route_change "PRE = POST" ];
    }
  in
  let mode = Verify_request.Distributed { servers = 4; subtasks = 10 } in
  let chaos = Chaos.make ~lose_always:[ "route-001.rib" ] () in
  let res = Verify_request.run ~mode ~chaos base rq in
  check tbool "partial flagged" true res.Verify_request.vr_partial;
  check tbool "partial is never ok" false res.Verify_request.vr_ok;
  (match res.Verify_request.vr_coverage with
  | Some c ->
      check tint "one subtask missing"
        (c.Verify_request.cov_total - 1)
        c.Verify_request.cov_merged;
      check tbool "the victim is named" true
        (List.mem_assoc "route-001" c.Verify_request.cov_failed)
  | None -> Alcotest.fail "expected coverage on a distributed run");
  (* default policy: verdicts over the incomplete RIB are withheld *)
  check tint "no simulated violations under refusal" 0
    (List.length res.Verify_request.vr_violations);
  (* graceful degradation verifies anyway, but stays flagged and failed *)
  let res2 = Verify_request.run ~mode ~chaos ~on_partial:`Degrade base rq in
  check tbool "degrade: still partial, still not ok" true
    (res2.Verify_request.vr_partial && not res2.Verify_request.vr_ok);
  (* and a chaos-free distributed run is complete and passes *)
  let res3 = Verify_request.run ~mode base rq in
  check tbool "no chaos: complete" false res3.Verify_request.vr_partial;
  (match res3.Verify_request.vr_coverage with
  | Some c ->
      check tint "full coverage" c.Verify_request.cov_total
        c.Verify_request.cov_merged
  | None -> Alcotest.fail "expected coverage on a distributed run");
  check tbool "no chaos: ok" true res3.Verify_request.vr_ok

let suite =
  [
    ("split routes (ordered)", `Quick, test_split_routes_ordered);
    ("split flows", `Quick, test_split_flows);
    ("distributed = direct", `Slow, test_distributed_equals_direct);
    ("traffic phase + ordering heuristic", `Slow, test_traffic_phase_and_dependencies);
    ("random split loads all", `Slow, test_random_split_loads_everything);
    ("failure injection + retry", `Slow, test_failure_retry);
    ("fault-injection matrix", `Slow, test_fault_matrix);
    ("result-object loss is reported", `Slow, test_result_object_loss_reported);
    ("missing input is re-uploaded", `Slow, test_missing_input_reupload);
    ("stall recovery via lease expiry", `Slow, test_stall_lease_recovery);
    ("mq drop/dup recovery", `Slow, test_mq_drop_dup);
    ("chaos plans replay deterministically", `Slow, test_chaos_determinism);
    ("total failure still terminates", `Slow, test_total_failure_terminates);
    ("aggregated EC counts are real", `Slow, test_ec_counts);
    ("seed_range respects address family", `Quick, test_seed_range);
    ("verify refuses partial results", `Slow, test_verify_partial_refusal);
    ("schedule makespan", `Quick, test_schedule_makespan);
    ("schedule LPT vs FIFO", `Quick, test_schedule_lpt);
    ("schedule edge cases", `Quick, test_schedule_edge_cases);
    ("parallel executor equivalence", `Slow, test_parallel_executor);
    ("parallel map", `Quick, test_parallel_map);
    ("parallel map sizes + domains=1", `Quick, test_parallel_map_sizes);
    ("parallel map exception propagation", `Quick, test_parallel_map_exception);
    ( "parallel pipeline = centralized (route + traffic)",
      `Slow,
      test_parallel_pipeline_equals_centralized );
    qtest prop_dependency_soundness;
    qtest prop_lpt_sweep_monotone;
  ]
