(* k-failure verification (lib/core/kfailure.ml) and the static
   failure-equivalence analysis behind it (lib/analysis/failure_eq.ml).

   The soundness contract under test: the pruned sweep (equivalence
   classes + carried base verdicts + cut-analysis verdicts) must report
   exactly the violating scenarios the brute-force sweep reports — on
   hand-built topologies, on randomly generated ones (k ∈ {1,2}, link
   and device failures), and across the chaos-style matrix of
   (seed × k × failure-mode) cells. *)

open Hoyan_net
module B = Hoyan_workload.Builder
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Kfailure = Hoyan_core.Kfailure
module Feq = Hoyan_analysis.Failure_eq

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let pfx = Prefix.of_string_exn

let qtest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 99097 |]) t

(* ------------------------------------------------------------------ *)
(* Topology builders                                                   *)
(* ------------------------------------------------------------------ *)

(* eBGP chain R0 - R1 - ... - R(n-1); prefix injected at R0. *)
let chain n =
  let b = B.create () in
  for i = 0 to n - 1 do
    B.add_device b
      ~name:(Printf.sprintf "R%d" i)
      ~vendor:"vendorA" ~asn:(65000 + i)
      ~router_id:(B.ip (Printf.sprintf "10.255.%d.1" i))
      ()
  done;
  for i = 0 to n - 2 do
    let a = Printf.sprintf "R%d" i and bb = Printf.sprintf "R%d" (i + 1) in
    let subnet = pfx (Printf.sprintf "10.0.%d.0/31" i) in
    let a_addr, b_addr = B.link b ~a ~b:bb ~subnet () in
    B.bgp_session b ~a ~b:bb ~a_addr ~b_addr ()
  done;
  b

let the_prefix = "99.0.0.0/24"

let input_at dev =
  [ B.input_route ~device:dev ~prefix:the_prefix ~as_path:[ 7 ] () ]

(* Random connected eBGP topology: a spanning tree over [n] devices plus
   [extra] random chords, every link carrying a session. *)
let random_topo rng ~n ~extra =
  let b = B.create () in
  for i = 0 to n - 1 do
    B.add_device b
      ~name:(Printf.sprintf "R%d" i)
      ~vendor:"vendorA" ~asn:(65000 + i)
      ~router_id:(B.ip (Printf.sprintf "10.255.%d.1" i))
      ()
  done;
  let linked = Hashtbl.create 16 in
  let subnet_count = ref 0 in
  let connect i j =
    let i, j = (min i j, max i j) in
    if i <> j && not (Hashtbl.mem linked (i, j)) then begin
      Hashtbl.replace linked (i, j) ();
      let a = Printf.sprintf "R%d" i and bb = Printf.sprintf "R%d" j in
      let subnet = pfx (Printf.sprintf "10.%d.%d.0/31" (!subnet_count / 250) (!subnet_count mod 250)) in
      incr subnet_count;
      let a_addr, b_addr = B.link b ~a ~b:bb ~subnet () in
      B.bgp_session b ~a ~b:bb ~a_addr ~b_addr ()
    end
  in
  for i = 1 to n - 1 do
    connect i (Random.State.int rng i)
  done;
  for _ = 1 to extra do
    connect (Random.State.int rng n) (Random.State.int rng n)
  done;
  b

(* ------------------------------------------------------------------ *)
(* The brute-vs-pruned oracle                                          *)
(* ------------------------------------------------------------------ *)

let violating_scenarios (r : Kfailure.result) =
  List.map (fun (s : Kfailure.scenario_result) -> s.Kfailure.sr_failures)
    r.Kfailure.kr_violations
  |> List.sort compare

let reason_map (r : Kfailure.result) =
  List.filter_map
    (fun (s : Kfailure.scenario_result) ->
      Option.map (fun v -> (s.Kfailure.sr_failures, v)) s.Kfailure.sr_violation)
    r.Kfailure.kr_violations

let is_static reason =
  String.length reason >= 8 && String.sub reason 0 8 = "statical"

(* Pruned and brute-force sweeps must agree on the violating scenario
   set; non-static pruned reasons must also agree verbatim (members of
   a fingerprint class provably share their missing-device sets). *)
let assert_sound ?(msg = "") ~devices ~k model ~input_routes prop =
  let brute =
    Kfailure.check ~prune:false ~devices model ~input_routes ~flows:[] ~k prop
  in
  let pruned =
    Kfailure.check ~prune:true ~devices model ~input_routes ~flows:[] ~k prop
  in
  check tint (msg ^ "same scenario universe") brute.Kfailure.kr_total
    pruned.Kfailure.kr_total;
  check tint (msg ^ "exhaustive: all scenarios checked")
    pruned.Kfailure.kr_total pruned.Kfailure.kr_checked;
  check tbool (msg ^ "no silent sampling") false pruned.Kfailure.kr_sampled;
  check
    Alcotest.(list (list string))
    (msg ^ "identical violation sets")
    (List.map (List.map Kfailure.failure_to_string) (violating_scenarios brute))
    (List.map (List.map Kfailure.failure_to_string) (violating_scenarios pruned));
  let brute_reasons = reason_map brute in
  List.iter
    (fun (fs, reason) ->
      if not (is_static reason) then
        match List.assoc_opt fs brute_reasons with
        | Some br ->
            check Alcotest.string
              (msg ^ "replicated reason matches simulation") br reason
        | None -> Alcotest.fail (msg ^ "pruned violation unknown to brute"))
    (reason_map pruned);
  (brute, pruned)

(* ------------------------------------------------------------------ *)
(* Property units                                                      *)
(* ------------------------------------------------------------------ *)

let test_prefix_survives () =
  let b = chain 3 in
  let model = B.build b in
  let rib =
    (Route_sim.run model ~input_routes:(input_at "R0") ()).Route_sim.rib
  in
  let prop = Kfailure.prefix_survives ~prefix:(pfx the_prefix) ~devices:[ "R2" ] in
  check tbool "propagated prefix present" true
    (prop.Kfailure.p_check ~model ~rib ~traffic:(lazy (assert false)) = None);
  let prop2 =
    Kfailure.prefix_survives ~prefix:(pfx the_prefix)
      ~devices:[ "R2"; "Rmissing" ]
  in
  (match prop2.Kfailure.p_check ~model ~rib ~traffic:(lazy (assert false)) with
  | Some reason ->
      check tbool "missing device named" true
        (String.length reason > 0
        && Str.string_match (Str.regexp ".*Rmissing") reason 0)
  | None -> Alcotest.fail "absent device not reported");
  (* footprint declaration matches the check *)
  match prop.Kfailure.p_footprint with
  | Feq.Reach_all (p, devs) ->
      check tbool "footprint prefix" true (Prefix.equal p (pfx the_prefix));
      check Alcotest.(list string) "footprint devices" [ "R2" ] devs
  | _ -> Alcotest.fail "prefix_survives must declare Reach_all"

let test_no_overload_worst_link () =
  (* R0 -> R1 -> R2 with a fat first hop and a thin second hop: both
     links overload, and the thin one is the true maximum. *)
  let b = B.create () in
  List.iteri
    (fun i name ->
      B.add_device b ~name ~vendor:"vendorA" ~asn:(65000 + i)
        ~router_id:(B.ip (Printf.sprintf "10.255.%d.1" i))
        ())
    [ "R0"; "R1"; "R2" ];
  let a01, b01 =
    B.link b ~a:"R0" ~b:"R1" ~subnet:(pfx "10.0.0.0/31") ~bandwidth:1e9 ()
  in
  let a12, b12 =
    B.link b ~a:"R1" ~b:"R2" ~subnet:(pfx "10.0.1.0/31") ~bandwidth:1e8 ()
  in
  B.bgp_session b ~a:"R0" ~b:"R1" ~a_addr:a01 ~b_addr:b01 ();
  B.bgp_session b ~a:"R1" ~b:"R2" ~a_addr:a12 ~b_addr:b12 ();
  let model = B.build b in
  let input = input_at "R2" in
  let rib = (Route_sim.run model ~input_routes:input ()).Route_sim.rib in
  let flow =
    Flow.make ~src:(B.ip "1.0.0.1") ~dst:(B.ip "99.0.0.7") ~ingress:"R0"
      ~volume:9e7 ()
  in
  let traffic = lazy (Hoyan_sim.Traffic_sim.run model ~rib ~flows:[ flow ] ()) in
  let prop = Kfailure.no_overload ~max_util:0.01 in
  (match prop.Kfailure.p_check ~model ~rib ~traffic with
  | None -> Alcotest.fail "overload not detected"
  | Some reason ->
      (* 9e7 bps over the 1e8 link = 90%, over the 1e9 link = 9%: the
         thin R1->R2 hop is the worst and its utilization is printed *)
      check tbool "true max-utilization link reported" true
        (Str.string_match (Str.regexp ".*worst R1->R2 at 90\\.0%") reason 0));
  check tbool "no_overload declares itself opaque" true
    (prop.Kfailure.p_footprint = Feq.Opaque)

let test_combinations () =
  let rec naive k l =
    if k = 0 then [ [] ]
    else
      match l with
      | [] -> []
      | x :: rest ->
          List.map (fun c -> x :: c) (naive (k - 1) rest) @ naive k rest
  in
  List.iter
    (fun (k, l) ->
      check
        Alcotest.(list (list int))
        (Printf.sprintf "choose %d" k) (naive k l)
        (Kfailure.combinations k l))
    [ (0, [ 1; 2 ]); (1, [ 1; 2; 3 ]); (2, [ 1; 2; 3; 4 ]); (3, [ 1; 2; 3; 4; 5 ]);
      (2, []); (5, [ 1; 2; 3 ]) ];
  check tint "C(10,3)" 120 (List.length (Kfailure.combinations 3 (List.init 10 Fun.id)))

(* ------------------------------------------------------------------ *)
(* Brute vs pruned on hand topologies                                  *)
(* ------------------------------------------------------------------ *)

let test_chain_sound () =
  let model = B.build (chain 4) in
  let prop =
    Kfailure.prefix_survives ~prefix:(pfx the_prefix) ~devices:[ "R3" ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun devices ->
          ignore
            (assert_sound
               ~msg:(Printf.sprintf "chain k=%d devices=%b: " k devices)
               ~devices ~k model ~input_routes:(input_at "R0") prop))
        [ false; true ])
    [ 1; 2 ]

let test_ring_sound () =
  (* ring of 4: single failures are survivable, pairs can partition *)
  let b = B.create () in
  for i = 0 to 3 do
    B.add_device b
      ~name:(Printf.sprintf "R%d" i)
      ~vendor:"vendorA" ~asn:(65000 + i)
      ~router_id:(B.ip (Printf.sprintf "10.255.%d.1" i))
      ()
  done;
  List.iteri
    (fun idx (i, j) ->
      let a = Printf.sprintf "R%d" i and bb = Printf.sprintf "R%d" j in
      let a_addr, b_addr =
        B.link b ~a ~b:bb ~subnet:(pfx (Printf.sprintf "10.0.%d.0/31" idx)) ()
      in
      B.bgp_session b ~a ~b:bb ~a_addr ~b_addr ())
    [ (0, 1); (1, 2); (2, 3); (0, 3) ];
  let model = B.build b in
  let prop =
    Kfailure.prefix_survives ~prefix:(pfx the_prefix)
      ~devices:[ "R1"; "R2"; "R3" ]
  in
  let brute, pruned =
    assert_sound ~msg:"ring k=2: " ~devices:false ~k:2 model
      ~input_routes:(input_at "R0") prop
  in
  check tbool "ring survives every single failure" true
    (List.for_all
       (fun fs -> List.length fs = 2)
       (violating_scenarios brute));
  check tbool "ring k=2 finds partitioning pairs" true
    (pruned.Kfailure.kr_violations <> [])

(* Tier-1 effectiveness: failures in an unrelated island carry the base
   verdict, so the pruned sweep simulates strictly fewer scenarios. *)
let test_island_carries () =
  let b = chain 3 in
  (* a disconnected island with its own prefix, far from the property *)
  B.add_device b ~name:"I0" ~vendor:"vendorA" ~asn:64900
    ~router_id:(B.ip "10.254.0.1") ();
  B.add_device b ~name:"I1" ~vendor:"vendorA" ~asn:64901
    ~router_id:(B.ip "10.254.1.1") ();
  let a_addr, b_addr = B.link b ~a:"I0" ~b:"I1" ~subnet:(pfx "10.9.0.0/31") () in
  B.bgp_session b ~a:"I0" ~b:"I1" ~a_addr ~b_addr ();
  let model = B.build b in
  let prop =
    Kfailure.prefix_survives ~prefix:(pfx the_prefix) ~devices:[ "R2" ]
  in
  let _, pruned =
    assert_sound ~msg:"island: " ~devices:true ~k:1 model
      ~input_routes:(input_at "R0") prop
  in
  check tbool "island failures carried without simulation" true
    (pruned.Kfailure.kr_carried > 0);
  check tbool "pruning simulates fewer scenarios" true
    (pruned.Kfailure.kr_simulated < pruned.Kfailure.kr_total)

(* Cut analysis: chain failures that disconnect the monitored device are
   proven statically, and every statically decided scenario is a real
   violation under simulation. *)
let test_cut_vs_simulation () =
  let model = B.build (chain 4) in
  let prop =
    Kfailure.prefix_survives ~prefix:(pfx the_prefix) ~devices:[ "R3" ]
  in
  let brute, pruned =
    assert_sound ~msg:"cut: " ~devices:false ~k:1 model
      ~input_routes:(input_at "R0") prop
  in
  check tbool "chain SPOFs decided statically" true
    (pruned.Kfailure.kr_static > 0);
  let brute_viol = violating_scenarios brute in
  List.iter
    (fun (s : Kfailure.scenario_result) ->
      match s.Kfailure.sr_violation with
      | Some reason when is_static reason ->
          check tbool "static verdict confirmed by simulation" true
            (List.mem s.Kfailure.sr_failures brute_viol)
      | _ -> ())
    pruned.Kfailure.kr_violations;
  (* every chain link is a SPOF towards R3: all 3 link failures violate *)
  check tint "all chain links are SPOFs" 3 (List.length brute_viol)

let test_sampling_reported () =
  let model = B.build (chain 4) in
  let prop =
    Kfailure.prefix_survives ~prefix:(pfx the_prefix) ~devices:[ "R3" ]
  in
  let res =
    Kfailure.check ~prune:false ~max_scenarios:1 model
      ~input_routes:(input_at "R0") ~flows:[] ~k:2 prop
  in
  check tbool "sampling is reported" true res.Kfailure.kr_sampled;
  check tbool "unchecked scenarios visible" true
    (res.Kfailure.kr_checked < res.Kfailure.kr_total);
  let full =
    Kfailure.check model ~input_routes:(input_at "R0") ~flows:[] ~k:2 prop
  in
  check tbool "default is exhaustive" false full.Kfailure.kr_sampled;
  check tint "default checks everything" full.Kfailure.kr_total
    full.Kfailure.kr_checked

(* ------------------------------------------------------------------ *)
(* Randomized equivalence (qcheck) and the chaos matrix                *)
(* ------------------------------------------------------------------ *)

let prop_random_topologies_sound =
  QCheck.Test.make ~name:"brute == pruned on random topologies (k in {1,2})"
    ~count:12
    (QCheck.make
       QCheck.Gen.(triple (int_bound 10_000) (int_range 3 6) (int_range 1 2)))
    (fun (seed, n, k) ->
      let rng = Random.State.make [| seed; n; k |] in
      let b = random_topo rng ~n ~extra:(Random.State.int rng 3) in
      let model = B.build b in
      let monitored =
        List.filteri (fun i _ -> i mod 2 = 0) (List.init n (Printf.sprintf "R%d"))
      in
      let prop =
        Kfailure.prefix_survives ~prefix:(pfx the_prefix) ~devices:monitored
      in
      let devices = seed mod 2 = 0 in
      let brute, pruned =
        assert_sound
          ~msg:(Printf.sprintf "random seed=%d n=%d k=%d: " seed n k)
          ~devices ~k model ~input_routes:(input_at "R0") prop
      in
      violating_scenarios brute = violating_scenarios pruned)

(* The PR5 chaos-matrix idea as a correctness oracle: a deterministic
   grid of (seed x k x failure-mode) cells, every cell asserting the
   pruned sweep is indistinguishable from brute force. *)
let test_chaos_matrix () =
  let cells = ref 0 in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| 7100 + seed |] in
      let b = random_topo rng ~n:(4 + (seed mod 2)) ~extra:seed in
      let model = B.build b in
      let prop =
        Kfailure.prefix_survives ~prefix:(pfx the_prefix)
          ~devices:[ "R1"; Printf.sprintf "R%d" (3 + (seed mod 2)) ]
      in
      List.iter
        (fun k ->
          List.iter
            (fun devices ->
              incr cells;
              ignore
                (assert_sound
                   ~msg:
                     (Printf.sprintf "matrix seed=%d k=%d devices=%b: " seed k
                        devices)
                   ~devices ~k model ~input_routes:(input_at "R0") prop))
            [ false; true ])
        [ 1; 2 ])
    [ 0; 1; 2 ];
  check tint "matrix covers all cells" 12 !cells

let suite =
  [
    Alcotest.test_case "property: prefix_survives" `Quick test_prefix_survives;
    Alcotest.test_case "property: no_overload reports true max" `Quick
      test_no_overload_worst_link;
    Alcotest.test_case "combinations: accumulator == naive" `Quick
      test_combinations;
    Alcotest.test_case "brute == pruned: chain" `Quick test_chain_sound;
    Alcotest.test_case "brute == pruned: ring, k=2" `Quick test_ring_sound;
    Alcotest.test_case "tier 1: island failures carried" `Quick
      test_island_carries;
    Alcotest.test_case "tier 3: cut verdicts vs simulation" `Quick
      test_cut_vs_simulation;
    Alcotest.test_case "sampling is explicit and reported" `Quick
      test_sampling_reported;
    qtest prop_random_topologies_sound;
    Alcotest.test_case "chaos matrix: brute == pruned grid" `Quick
      test_chaos_matrix;
  ]
