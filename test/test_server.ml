(* The verification server (lib/server): snapshot store, result cache,
   admission control, budgets, and the byte-identity contract — every
   served verdict (cached or not) is byte-identical to a direct
   Verify_request.run of the same request over the same snapshot. *)

open Hoyan_net
module G = Hoyan_workload.Generator
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Printer = Hoyan_config.Printer
module Model = Hoyan_sim.Model
module Smap = Types.Smap
module Preprocess = Hoyan_core.Preprocess
module VR = Hoyan_core.Verify_request
module Intents = Hoyan_core.Intents
module Cache = Hoyan_server.Cache
module Snapshot = Hoyan_server.Snapshot
module Request = Hoyan_server.Request
module Server = Hoyan_server.Server

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string
let pfx = Prefix.of_string_exn

let qtest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4244 |]) t

let small = lazy (G.generate G.small)

let base_of (g : G.t) =
  Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
    ~monitored_flows:g.G.flows

let base = lazy (base_of (Lazy.force small))
let configs () = (Lazy.force small).G.model.Model.configs

(* r00-bdr01 is vendorA at the small scale's fixed seed *)
let border = "r00-bdr01"

let pref_block pref =
  Printf.sprintf
    "route-map ISP_IN permit 10\n set community 64512:100 additive\n set \
     local-preference %d\n"
    pref

let mk_rq ?tenant ?snapshot ?budget_s ?no_cache ?(pref = 250)
    ?(intents = [ Intents.Route_change "PRE = POST" ]) ~id cls =
  let plan = Cp.make id ~commands:[ (border, pref_block pref) ] in
  Request.make ?tenant ?snapshot ?budget_s ?no_cache ~plan ~intents ~id cls

(* ------------------------------------------------------------------ *)
(* the LRU cache                                                       *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  let c = Cache.create ~capacity:4 in
  check tbool "miss on empty" true (Cache.find c "a" = None);
  Cache.add c "a" 1;
  check tbool "hit after add" true (Cache.find c "a" = Some 1);
  Cache.add c "a" 2;
  check tbool "overwrite keeps one entry" true (Cache.size c = 1);
  check tbool "overwrite visible" true (Cache.find c "a" = Some 2);
  check tint "2 hits" 2 (Cache.hits c);
  check tint "1 miss" 1 (Cache.misses c)

let test_cache_lru_bound () =
  let c = Cache.create ~capacity:3 in
  List.iter (fun k -> Cache.add c k k) [ "a"; "b"; "c" ];
  (* touch "a" so "b" is now least recent *)
  ignore (Cache.find c "a");
  Cache.add c "d" "d";
  check tint "size stays at capacity" 3 (Cache.size c);
  check tint "one eviction" 1 (Cache.evictions c);
  check tbool "LRU entry (b) evicted" true (Cache.find c "b" = None);
  check tbool "recently-used (a) kept" true (Cache.find c "a" = Some "a");
  check tbool "newest (d) kept" true (Cache.find c "d" = Some "d")

let test_cache_zero_capacity () =
  let c = Cache.create ~capacity:0 in
  Cache.add c "a" 1;
  check tint "capacity 0 stores nothing" 0 (Cache.size c);
  check tbool "capacity 0 never hits" true (Cache.find c "a" = None)

(* ------------------------------------------------------------------ *)
(* digests and cache keys                                              *)
(* ------------------------------------------------------------------ *)

(* PR7's restatement-is-no-op property lifted to cache keys: the plan
   digest ignores the plan's id and block duplication — only the
   patched configurations (plus issues, topo ops, routes) matter. *)
let prop_digest_restatement_stable =
  let g = Lazy.force small in
  let configs = g.G.model.Model.configs in
  let devices = Array.of_list (List.map fst (Smap.bindings configs)) in
  QCheck.Test.make
    ~name:"plan digest: id-independent and duplicate-block-stable"
    ~count:(Array.length devices)
    (QCheck.make QCheck.Gen.(int_bound (Array.length devices - 1)))
    (fun i ->
      let dev = devices.(i) in
      let block = Printer.print (Smap.find dev configs) in
      let once = Cp.make "restate" ~commands:[ (dev, block) ] in
      let twice =
        Cp.make "other-id" ~commands:[ (dev, block); (dev, block) ]
      in
      let d1 = Request.plan_digest ~configs once in
      let d2 = Request.plan_digest ~configs twice in
      String.equal d1 d2
      && not (String.equal d1 (Request.plan_digest ~configs (Cp.make "e"))))

let test_digest_sensitive () =
  let configs = configs () in
  let d pref =
    Request.plan_digest ~configs
      (Cp.make "p" ~commands:[ (border, pref_block pref) ])
  in
  check tbool "different preference, different digest" false
    (String.equal (d 240) (d 250));
  let w =
    Request.plan_digest ~configs
      (Cp.make "w" ~withdraw:[ pfx "10.0.0.0/24" ])
  in
  check tbool "withdrawal changes the digest" false
    (String.equal w (Request.plan_digest ~configs (Cp.make "w")))

let test_intents_digest_order () =
  let a = Intents.Route_change "PRE = POST" in
  let b = Intents.Max_utilization 0.9 in
  check tbool "intent order is part of the digest" false
    (String.equal
       (Request.intents_digest [ a; b ])
       (Request.intents_digest [ b; a ]))

let test_cache_key_class () =
  let configs = configs () in
  let key cls =
    Request.cache_key ~snapshot_digest:"snap" ~configs (mk_rq ~id:"k" cls)
  in
  check tbool "class is part of the key" false
    (String.equal (key Request.Simulate) (key Request.Lint));
  (* tenant and id are NOT part of the key: duplicates across tenants
     must share one entry *)
  let k1 =
    Request.cache_key ~snapshot_digest:"snap" ~configs
      (mk_rq ~tenant:"a" ~id:"x" Request.Simulate)
  in
  let k2 =
    Request.cache_key ~snapshot_digest:"snap" ~configs
      (mk_rq ~tenant:"b" ~id:"y" Request.Simulate)
  in
  check tstr "tenant/id do not affect the key" k1 k2

(* ------------------------------------------------------------------ *)
(* the transport                                                       *)
(* ------------------------------------------------------------------ *)

let test_transport_roundtrip () =
  let rqs =
    [
      mk_rq ~tenant:"netops" ~budget_s:60. ~id:"a" Request.Simulate;
      mk_rq ~no_cache:true ~id:"b" Request.Lint;
      Request.make
        ~plan:(Cp.make "c" ~withdraw:[ pfx "10.1.0.0/16" ])
        ~intents:
          [
            Intents.Route_reach
              {
                rr_prefix = pfx "10.1.0.0/16";
                rr_devices = [ border ];
                rr_expect = false;
              };
          ]
        ~id:"c" Request.Precheck;
    ]
  in
  let text = String.concat "" (List.map Request.print rqs) in
  match Request.parse text with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok parsed ->
      check tint "same count" (List.length rqs) (List.length parsed);
      List.iter2
        (fun (a : Request.t) (b : Request.t) ->
          check tstr "id" a.Request.r_id b.Request.r_id;
          check tstr "tenant" a.Request.r_tenant b.Request.r_tenant;
          check tbool "class" true (a.Request.r_class = b.Request.r_class);
          check tbool "budget" true (a.Request.r_budget_s = b.Request.r_budget_s);
          check tbool "no-cache" true (a.Request.r_no_cache = b.Request.r_no_cache);
          check tbool "intents" true (a.Request.r_intents = b.Request.r_intents);
          let cfg = configs () in
          check tstr "plan digest survives the round trip"
            (Request.plan_digest ~configs:cfg a.Request.r_plan)
            (Request.plan_digest ~configs:cfg b.Request.r_plan))
        rqs parsed

let test_transport_errors () =
  let expect_err text needle =
    match Request.parse text with
    | Ok _ -> Alcotest.failf "expected a parse error (%s)" needle
    | Error e ->
        check tbool
          (Printf.sprintf "error %S mentions %s" e needle)
          true
          (let re = Str.regexp_string needle in
           try
             ignore (Str.search_forward re e 0);
             true
           with Not_found -> false)
  in
  expect_err "request a frobnicate\nend\n" "class";
  expect_err "request a lint\nplan dev\nnever closed\n" "end-plan";
  expect_err "request a lint\nwithdraw not-a-prefix\nend\n" "prefix";
  expect_err "bogus top-level line\n" "line 1"

(* ------------------------------------------------------------------ *)
(* snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let test_snapshot_identity () =
  let srv = Server.create () in
  let s1 = Server.register_snapshot srv (Lazy.force base) in
  (* identical content (freshly generated) re-registers as the same
     snapshot *)
  let s2 = Server.register_snapshot srv (base_of (G.generate G.small)) in
  check tstr "same content, same digest" s1.Snapshot.sn_digest
    s2.Snapshot.sn_digest;
  check tint "one snapshot registered" 1 (List.length (Server.snapshots srv));
  let g9 = G.generate { G.small with G.g_seed = 9 } in
  let s3 = Server.register_snapshot srv (base_of g9) in
  check tbool "different content, different digest" false
    (String.equal s1.Snapshot.sn_digest s3.Snapshot.sn_digest);
  check tint "two snapshots" 2 (List.length (Server.snapshots srv))

(* ------------------------------------------------------------------ *)
(* the serve contract                                                  *)
(* ------------------------------------------------------------------ *)

let drain_one srv =
  match Server.drain srv with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)

let submit_ok srv rq =
  match Server.submit srv rq with
  | Ok () -> ()
  | Error r ->
      Alcotest.failf "submit rejected: %s"
        (Server.status_to_string r.Server.rs_status)

let test_server_matches_direct () =
  let srv = Server.create () in
  let snap = Server.register_snapshot srv (Lazy.force base) in
  List.iter
    (fun cls ->
      let rq = mk_rq ~id:("c-" ^ Request.class_to_string cls) cls in
      submit_ok srv rq;
      let r = drain_one srv in
      let st, body = Server.run_direct snap rq in
      check tbool
        (Request.class_to_string cls ^ ": status matches direct")
        true
        (st = r.Server.rs_status);
      check tstr
        (Request.class_to_string cls ^ ": body byte-identical to direct")
        body r.Server.rs_body)
    [ Request.Lint; Request.Precheck; Request.Simulate; Request.Diff ]

let test_duplicate_hits_cache () =
  let srv = Server.create () in
  ignore (Server.register_snapshot srv (Lazy.force base));
  let rq1 = mk_rq ~tenant:"a" ~id:"dup-1" Request.Simulate in
  let rq2 = mk_rq ~tenant:"b" ~id:"dup-2" Request.Simulate in
  submit_ok srv rq1;
  let r1 = drain_one srv in
  submit_ok srv rq2;
  let r2 = drain_one srv in
  check tbool "first is uncached" false r1.Server.rs_cached;
  check tbool "duplicate is served from the cache" true r2.Server.rs_cached;
  check tstr "cached body byte-identical" r1.Server.rs_body r2.Server.rs_body;
  check tbool "cached status identical" true
    (r1.Server.rs_status = r2.Server.rs_status);
  let st = Server.stats srv in
  check tint "one cache hit" 1 st.Server.st_cache_hits

let test_no_cache_bypass () =
  let srv = Server.create () in
  ignore (Server.register_snapshot srv (Lazy.force base));
  let rq k = mk_rq ~no_cache:true ~id:("nc-" ^ string_of_int k) Request.Lint in
  submit_ok srv (rq 1);
  ignore (drain_one srv);
  submit_ok srv (rq 2);
  let r = drain_one srv in
  check tbool "no-cache never serves cached" false r.Server.rs_cached;
  let st = Server.stats srv in
  check tint "no-cache records no hits" 0 st.Server.st_cache_hits;
  check tint "no-cache records no misses" 0 st.Server.st_cache_misses

let test_admission () =
  let srv =
    Server.create
      ~config:
        { Server.default_config with Server.c_queue_depth = 2; c_tenant_quota = 1 }
      ()
  in
  ignore (Server.register_snapshot srv (Lazy.force base));
  let reason rq =
    match Server.submit srv rq with
    | Ok () -> "admitted"
    | Error { Server.rs_status = Server.Rejected r; _ } -> r
    | Error _ -> "other"
  in
  check tstr "unknown snapshot rejected" "unknown-snapshot"
    (reason (mk_rq ~snapshot:"no-such-digest" ~id:"u" Request.Lint));
  check tstr "first of tenant admitted" "admitted"
    (reason (mk_rq ~tenant:"a" ~id:"a1" Request.Lint));
  check tstr "tenant over quota rejected" "tenant-quota"
    (reason (mk_rq ~tenant:"a" ~id:"a2" Request.Lint));
  check tstr "second tenant admitted" "admitted"
    (reason (mk_rq ~tenant:"b" ~id:"b1" Request.Lint));
  check tstr "queue full rejected" "queue-full"
    (reason (mk_rq ~tenant:"c" ~id:"c1" Request.Lint));
  (* draining frees the quota and the queue *)
  check tint "both admitted execute" 2 (List.length (Server.drain srv));
  check tstr "tenant quota resets after drain" "admitted"
    (reason (mk_rq ~tenant:"a" ~id:"a3" Request.Lint));
  ignore (Server.drain srv)

let test_budget_timeout () =
  let srv = Server.create () in
  ignore (Server.register_snapshot srv (Lazy.force base));
  submit_ok srv
    (mk_rq ~budget_s:0. ~no_cache:true ~id:"zb" Request.Simulate);
  let r = drain_one srv in
  check tbool "zero budget times out" true (r.Server.rs_status = Server.Timeout);
  check tstr "timed-out verdict is withheld" "" r.Server.rs_body;
  let st = Server.stats srv in
  check tint "timeout counted" 1 st.Server.st_timeouts;
  check tint "not counted as completed" 0 st.Server.st_completed

let test_lpt_order () =
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.c_policy = Hoyan_dist.Schedule.Lpt }
      ()
  in
  ignore (Server.register_snapshot srv (Lazy.force base));
  submit_ok srv (mk_rq ~id:"cheap" Request.Lint);
  submit_ok srv (mk_rq ~id:"costly" Request.Simulate);
  let rs = Server.drain srv in
  check tint "both served" 2 (List.length rs);
  check tbool "responses come back in submission order" true
    (List.map (fun r -> r.Server.rs_id) rs = [ "cheap"; "costly" ]);
  check tbool "LPT executes the costly class first" true
    (Server.executed_order srv = [ "costly"; "cheap" ])

(* ------------------------------------------------------------------ *)
(* shared-snapshot isolation (the satellite-1 regression)              *)
(* ------------------------------------------------------------------ *)

(* Back-to-back requests over ONE shared snapshot must be byte-identical
   to the same requests over fresh snapshots: nothing in a run (intern
   tables, lazies, telemetry, model updates, withdrawals) may leak into
   the shared base. *)
let test_sequential_requests_isolated () =
  let rq1 =
    Request.make
      ~plan:
        (Cp.make "wd"
           ~commands:[ (border, pref_block 250) ]
           ~withdraw:[ pfx "10.1.0.0/16" ])
      ~intents:[ Intents.Route_change "PRE = POST" ]
      ~id:"wd" Request.Simulate
  in
  let rq2 = mk_rq ~pref:240 ~id:"seq2" Request.Diff in
  let shared = Snapshot.register (Lazy.force base) in
  let s1 = Server.run_direct shared rq1 in
  let s2 = Server.run_direct shared rq2 in
  let fresh rq = Server.run_direct (Snapshot.register (base_of (G.generate G.small))) rq in
  let f1 = fresh rq1 in
  let f2 = fresh rq2 in
  check tstr "request 1: shared = fresh" (snd f1) (snd s1);
  check tstr "request 2 after 1: shared = fresh" (snd f2) (snd s2);
  check tbool "statuses match too" true (fst f1 = fst s1 && fst f2 = fst s2);
  (* and running request 1 again on the same shared snapshot still
     matches *)
  let s1' = Server.run_direct shared rq1 in
  check tstr "request 1 re-run on shared snapshot unchanged" (snd s1) (snd s1')

(* ------------------------------------------------------------------ *)
(* stop_after: the class-to-pipeline mapping                           *)
(* ------------------------------------------------------------------ *)

let test_stop_after () =
  let b = Lazy.force base in
  let vrq =
    {
      VR.rq_name = "sa";
      rq_plan = Cp.make "sa" ~commands:[ (border, pref_block 250) ];
      rq_intents = [ Intents.Route_change "PRE = POST" ];
    }
  in
  let gate = VR.run ~lint:VR.Lint_fail ~precheck:false ~stop_after:`Gate b vrq in
  check tbool "`Gate never prechecks" true (gate.VR.vr_precheck = []);
  check tbool "`Gate never simulates" true (gate.VR.vr_updated_rib = []);
  let st = VR.run ~lint:VR.Lint_off ~stop_after:`Static b vrq in
  check tbool "`Static prechecks" true (st.VR.vr_precheck <> []);
  check tbool "`Static never forces the base RIB" true (st.VR.vr_base_rib = []);
  check tbool "`Static never simulates" true (st.VR.vr_updated_rib = []);
  let full = VR.run ~lint:VR.Lint_off b vrq in
  check tbool "`Full simulates" true (full.VR.vr_updated_rib <> [])

let suite =
  [
    Alcotest.test_case "cache: hit/miss accounting" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache: LRU eviction bound" `Quick test_cache_lru_bound;
    Alcotest.test_case "cache: zero capacity disables" `Quick
      test_cache_zero_capacity;
    qtest prop_digest_restatement_stable;
    Alcotest.test_case "digest: sensitive to real changes" `Quick
      test_digest_sensitive;
    Alcotest.test_case "digest: intent order matters" `Quick
      test_intents_digest_order;
    Alcotest.test_case "cache key: class in, tenant/id out" `Quick
      test_cache_key_class;
    Alcotest.test_case "transport: print/parse round trip" `Quick
      test_transport_roundtrip;
    Alcotest.test_case "transport: parse errors carry lines" `Quick
      test_transport_errors;
    Alcotest.test_case "snapshot: content-addressed identity" `Quick
      test_snapshot_identity;
    Alcotest.test_case "server: responses byte-identical to direct" `Quick
      test_server_matches_direct;
    Alcotest.test_case "server: duplicate served from cache" `Quick
      test_duplicate_hits_cache;
    Alcotest.test_case "server: no-cache bypass" `Quick test_no_cache_bypass;
    Alcotest.test_case "server: admission control" `Quick test_admission;
    Alcotest.test_case "server: zero budget -> timeout, no verdict" `Quick
      test_budget_timeout;
    Alcotest.test_case "server: LPT drains costly classes first" `Quick
      test_lpt_order;
    Alcotest.test_case "shared snapshot: sequential isolation" `Quick
      test_sequential_requests_isolated;
    Alcotest.test_case "verify: stop_after bounds the pipeline" `Quick
      test_stop_after;
  ]
