(* The incremental delta-simulation engine (lib/sim/incremental.ml) and
   its wiring through the pipeline and the server.

   The contract under test is byte-identity: a change plan re-converged
   only inside its dirty region and spliced into the cached base RIB
   must produce exactly the rows (and exactly the traffic floats) a full
   from-scratch run of the patched model produces.  [selfcheck] is the
   oracle; the [prune_dirty] knob makes the engine unsound on purpose so
   we can prove the oracle actually catches under-approximation. *)

open Hoyan_net
module G = Hoyan_workload.Generator
module B = Hoyan_workload.Builder
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Incremental = Hoyan_sim.Incremental
module Preprocess = Hoyan_core.Preprocess
module Intents = Hoyan_core.Intents
module Verify_request = Hoyan_core.Verify_request
module Kfailure = Hoyan_core.Kfailure
module Snapshot = Hoyan_server.Snapshot
module Server = Hoyan_server.Server
module Request = Hoyan_server.Request
module Smap = Types.Smap

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let pfx = Prefix.of_string_exn

let qtest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 1010 |]) t

let scenario = lazy (G.generate G.small)

let ctx =
  lazy
    (let g = Lazy.force scenario in
     let rib =
       (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib
     in
     Incremental.capture ~model:g.G.model ~input_routes:g.G.input_routes
       ~flows:g.G.flows ~rib ())

(* A deterministic family of change plans over the scenario: the shapes
   the incremental engine claims to handle without fallback. *)
let announce_plan (g : G.t) i =
  let border = List.nth g.G.borders (i mod List.length g.G.borders) in
  let route =
    Route.make ~device:border
      ~prefix:(pfx (Printf.sprintf "203.0.%d.0/24" (i mod 200)))
      ~as_path:(As_path.of_asns [ 7018; 3356 ])
      ~source:Route.Ebgp ()
  in
  Cp.make "announce" ~new_routes:[ route ]

let withdraw_plan (g : G.t) i =
  let prefixes =
    List.sort_uniq Prefix.compare
      (List.map (fun (r : Route.t) -> r.Route.prefix) g.G.input_routes)
  in
  let p = List.nth prefixes (i mod List.length prefixes) in
  Cp.make "withdraw" ~withdraw:[ p ]

let network_plan (g : G.t) i =
  (* add a network statement on some vendorA device: a config-command
     plan whose dirty region is the new prefix *)
  let vendor_a =
    Smap.bindings g.G.model.Model.configs
    |> List.filter (fun (_, (c : Types.t)) -> c.Types.dc_vendor = "vendorA")
    |> List.map fst
  in
  let dev = List.nth vendor_a (i mod List.length vendor_a) in
  let asn = (Smap.find dev g.G.model.Model.configs).Types.dc_bgp.Types.bgp_asn in
  let block =
    Printf.sprintf "router bgp %d\n network 198.51.%d.0/24\n" asn (i mod 200)
  in
  Cp.make "network" ~commands:[ (dev, block) ]

let plan_family (g : G.t) kind i =
  match kind with
  | 0 -> Cp.make "noop"
  | 1 -> announce_plan g i
  | 2 -> withdraw_plan g i
  | 3 -> network_plan g i
  | _ ->
      (* combined announce + withdraw *)
      {
        (announce_plan g i) with
        Cp.cp_withdraw = (withdraw_plan g i).Cp.cp_withdraw;
      }

(* --- splice == full: the oracle holds on the handled plan shapes ---- *)

let test_selfcheck_basic () =
  let g = Lazy.force scenario in
  let cx = Lazy.force ctx in
  List.iteri
    (fun i (name, plan) ->
      let ck = Incremental.selfcheck cx plan in
      check tbool (name ^ ": spliced RIB identical") true
        ck.Incremental.ck_rib_ok;
      check tbool (name ^ ": traffic identical") true
        ck.Incremental.ck_traffic_ok;
      check tbool (name ^ ": no fallback") false
        ck.Incremental.ck_stats.Incremental.st_full_fallback;
      ignore i)
    [
      ("noop", Cp.make "noop");
      ("announce", announce_plan g 3);
      ("withdraw-only", withdraw_plan g 5);
      ("network-stmt", network_plan g 2);
      ("announce+withdraw", plan_family g 4 7);
    ]

let test_topo_plan_falls_back_soundly () =
  let g = Lazy.force scenario in
  let cx = Lazy.force ctx in
  (* remove a real link: topology ops make the dirty set unenumerable,
     so the engine must fall back to a full run — and still be exact *)
  let a, b =
    match Topology.edges g.G.model.Model.topo with
    | e :: _ -> (e.Topology.src, e.Topology.dst)
    | [] -> Alcotest.fail "scenario has no links"
  in
  let plan = Cp.make "linkdown" ~topo_ops:[ Cp.Remove_link { ra = a; rb = b } ] in
  let ck = Incremental.selfcheck cx plan in
  check tbool "topo plan falls back" true
    ck.Incremental.ck_stats.Incremental.st_full_fallback;
  check tbool "fallback result still identical" true ck.Incremental.ck_ok

let prop_splice_eq_full =
  let g = Lazy.force scenario in
  let cx = Lazy.force ctx in
  QCheck.Test.make ~name:"random plan family: spliced == from-scratch"
    ~count:25
    (QCheck.make QCheck.Gen.(pair (int_bound 4) (int_bound 1000)))
    (fun (kind, i) ->
      let ck = Incremental.selfcheck cx (plan_family g kind i) in
      ck.Incremental.ck_ok)

(* --- the oracle catches deliberate unsoundness ---------------------- *)

let test_oracle_catches_pruned_dirty_set () =
  let g = Lazy.force scenario in
  let cx = Lazy.force ctx in
  let plan = announce_plan g 1 in
  (* drop every dirty prefix: the delta misses the announcement, so the
     spliced RIB must differ from the full run — and selfcheck must say
     so, with the missing rows as the witness *)
  let ck =
    Incremental.selfcheck ~traffic:false ~prune_dirty:(fun _ -> true) cx plan
  in
  check tbool "under-approximation detected" false ck.Incremental.ck_rib_ok;
  check tbool "missing rows reported" true (ck.Incremental.ck_missing <> [])

(* --- verify_request wiring ------------------------------------------ *)

let base =
  lazy
    (let g = Lazy.force scenario in
     Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
       ~monitored_flows:g.G.flows)

let test_verify_request_inc_agrees () =
  let g = Lazy.force scenario in
  let b = Lazy.force base in
  let cx = Lazy.force ctx in
  let plan = announce_plan g 0 in
  let prefix = (List.hd plan.Cp.cp_new_routes).Route.prefix in
  let rq =
    {
      Verify_request.rq_name = "inc-agrees";
      rq_plan = plan;
      (* Route_change needs the fixpoint (the pre-checker cannot resolve
         it statically), so the incremental path actually runs *)
      rq_intents =
        [
          Intents.Route_change "PRE = POST";
          Intents.Route_reach
            {
              rr_prefix = prefix;
              rr_devices = [ (List.hd plan.Cp.cp_new_routes).Route.device ];
              rr_expect = true;
            };
        ];
    }
  in
  let full = Verify_request.run b rq in
  let inc = Verify_request.run ~inc:cx b rq in
  check tbool "same verdict" full.Verify_request.vr_ok
    inc.Verify_request.vr_ok;
  check tbool "same updated RIB" true
    (Rib.Global.equal full.Verify_request.vr_updated_rib
       inc.Verify_request.vr_updated_rib);
  match inc.Verify_request.vr_inc with
  | None -> Alcotest.fail "incremental stats missing"
  | Some st ->
      check tbool "no fallback on an announce plan" false
        st.Incremental.st_full_fallback

(* --- satellite 1: partial bases never carry verdicts over ----------- *)

let test_partial_base_refuses_carryover () =
  let g = Lazy.force scenario in
  let intents =
    [
      Intents.Route_reach
        {
          rr_prefix = (List.hd g.G.input_routes).Route.prefix;
          rr_devices = [ (List.hd g.G.input_routes).Route.device ];
          rr_expect = true;
        };
    ]
  in
  let rq =
    { Verify_request.rq_name = "carry"; rq_plan = Cp.make "noop"; rq_intents = intents }
  in
  (* healthy base: a no-op plan carries the verdict over *)
  let healthy = Lazy.force base in
  let r1 = Verify_request.run ~diff:true healthy rq in
  check tbool "healthy base carries over" true
    (r1.Verify_request.vr_carried <> []);
  (* partial base (converged state from a run with failed subtasks):
     carry-over must be refused, every intent re-verified *)
  let partial =
    Preprocess.prepare ~partial:true g.G.model
      ~monitored_routes:g.G.input_routes ~monitored_flows:g.G.flows
  in
  let r2 = Verify_request.run ~diff:true partial rq in
  check tint "partial base carries nothing" 0
    (List.length r2.Verify_request.vr_carried);
  check tbool "intents still verified (not silently dropped)" true
    r2.Verify_request.vr_ok

(* --- satellite 2: traffic cost is attributed at the forcing site ---- *)

let test_traffic_seconds_attribution () =
  let b = Lazy.force base in
  let rq =
    {
      Verify_request.rq_name = "no-traffic";
      rq_plan = Cp.make "noop";
      rq_intents = [ Intents.Route_change "PRE = POST" ];
    }
  in
  let r = Verify_request.run b rq in
  check (Alcotest.float 0.) "route-only request forces no traffic" 0.
    !(r.Verify_request.vr_traffic_seconds);
  ignore (Lazy.force r.Verify_request.vr_updated_traffic);
  check tbool "forcing later lands in vr_traffic_seconds" true
    (!(r.Verify_request.vr_traffic_seconds) > 0.);
  check tbool "total = sim + traffic" true
    (Verify_request.total_seconds r
    >= r.Verify_request.vr_sim_seconds +. !(r.Verify_request.vr_traffic_seconds)
       -. 1e-9);
  (* a traffic intent forces during the run: the cost must land in the
     traffic bucket, not inflate the sim time *)
  let rq2 =
    { rq with Verify_request.rq_intents = [ Intents.Max_utilization 1.0 ] }
  in
  let r2 = Verify_request.run b rq2 in
  check tbool "in-run forcing accounted" true
    (!(r2.Verify_request.vr_traffic_seconds) > 0.)

(* --- satellite 3: snapshot registration dedups on digest ------------ *)

let test_snapshot_register_dedup () =
  Snapshot.reset_registry ();
  let b = Lazy.force base in
  let s1 = Snapshot.register b in
  let s2 = Snapshot.register b in
  check tbool "same digest" true
    (String.equal s1.Snapshot.sn_digest s2.Snapshot.sn_digest);
  check tbool "second registration returns the existing snapshot" true
    (s1 == s2);
  (* content-identical but separately built base: still deduped *)
  let g = Lazy.force scenario in
  let b' =
    Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
      ~monitored_flows:g.G.flows
  in
  let s3 = Snapshot.register b' in
  check tbool "identical content dedups too" true (s1 == s3)

(* --- server: artifact sharing keeps responses byte-identical -------- *)

let test_server_artifact_sharing () =
  Snapshot.reset_registry ();
  let g = Lazy.force scenario in
  let b = Lazy.force base in
  let srv = Server.create () in
  let snap = Server.register_snapshot srv b in
  let plan = announce_plan g 0 in
  let intents = [ Intents.Route_change "PRE = POST" ] in
  let mk id tenant =
    Request.make ~tenant ~no_cache:true ~plan ~intents ~id Request.Simulate
  in
  (* same plan from two tenants, result cache bypassed: the second run
     reuses the spliced artifact; both must match the plain direct path *)
  (match Server.submit srv (mk "a-1" "tenant-a") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "submit a-1");
  (match Server.submit srv (mk "b-1" "tenant-b") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "submit b-1");
  let responses = Server.drain srv in
  check tint "both executed" 2 (List.length responses);
  let _, reference = Server.run_direct snap (mk "ref" "tenant-c") in
  List.iter
    (fun (r : Server.response) ->
      check Alcotest.string
        (r.Server.rs_id ^ ": body identical to direct execution")
        reference r.Server.rs_body)
    responses

(* --- kfailure: footprint-restricted scenario re-runs ---------------- *)

let test_kfailure_restricted_agrees () =
  let b = B.create () in
  B.add_device b ~name:"A" ~vendor:"vendorA" ~asn:65001
    ~router_id:(B.ip "1.1.1.1") ();
  B.add_device b ~name:"Bx" ~vendor:"vendorA" ~asn:65002
    ~router_id:(B.ip "2.2.2.2") ();
  B.add_device b ~name:"Cx" ~vendor:"vendorA" ~asn:65003
    ~router_id:(B.ip "3.3.3.3") ();
  let a1, b1 = B.link b ~a:"A" ~b:"Bx" ~subnet:(pfx "10.0.0.0/31") () in
  let b2, c2 = B.link b ~a:"Bx" ~b:"Cx" ~subnet:(pfx "10.0.1.0/31") () in
  B.bgp_session b ~a:"A" ~b:"Bx" ~a_addr:a1 ~b_addr:b1 ();
  B.bgp_session b ~a:"Bx" ~b:"Cx" ~a_addr:b2 ~b_addr:c2 ();
  let model = B.build b in
  let input =
    [
      B.input_route ~device:"A" ~prefix:"99.0.0.0/24" ~as_path:[ 7 ] ();
      B.input_route ~device:"A" ~prefix:"98.0.0.0/24" ~as_path:[ 8 ] ();
    ]
  in
  let rib = (Route_sim.run model ~input_routes:input ()).Route_sim.rib in
  let cx =
    Incremental.capture ~model ~input_routes:input ~flows:[] ~rib ()
  in
  let prop =
    Kfailure.prefix_survives ~prefix:(pfx "99.0.0.0/24") ~devices:[ "Cx" ]
  in
  let plain = Kfailure.check model ~input_routes:input ~flows:[] ~k:1 prop in
  let fast =
    Kfailure.check ~inc:cx model ~input_routes:input ~flows:[] ~k:1 prop
  in
  check tint "same violation count"
    (List.length plain.Kfailure.kr_violations)
    (List.length fast.Kfailure.kr_violations);
  check tbool "restricted fixpoints were used" true
    (fast.Kfailure.kr_restricted > 0
    || fast.Kfailure.kr_simulated = 0);
  check tint "plain path reports zero restricted" 0
    plain.Kfailure.kr_restricted

let suite =
  [
    Alcotest.test_case "selfcheck: handled plan shapes" `Quick
      test_selfcheck_basic;
    Alcotest.test_case "selfcheck: topo plans fall back soundly" `Quick
      test_topo_plan_falls_back_soundly;
    qtest prop_splice_eq_full;
    Alcotest.test_case "oracle catches a pruned dirty set" `Quick
      test_oracle_catches_pruned_dirty_set;
    Alcotest.test_case "verify_request: inc path agrees with full" `Quick
      test_verify_request_inc_agrees;
    Alcotest.test_case "partial base refuses verdict carry-over" `Quick
      test_partial_base_refuses_carryover;
    Alcotest.test_case "traffic cost attributed at the forcing site" `Quick
      test_traffic_seconds_attribution;
    Alcotest.test_case "snapshot registration dedups on digest" `Quick
      test_snapshot_register_dedup;
    Alcotest.test_case "server artifact sharing is byte-identical" `Quick
      test_server_artifact_sharing;
    Alcotest.test_case "kfailure: restricted scenarios agree" `Quick
      test_kfailure_restricted_agrees;
  ]
