(* Unit and property tests for the hoyan.net substrate. *)

open Hoyan_net


(* fixed seed: the property suites are deterministic run to run *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |]) t

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* --- Int128 ------------------------------------------------------------ *)

let test_int128_basic () =
  let open Int128 in
  check tbool "zero = zero" true (equal zero zero);
  check tint "compare 0 1" (-1) (compare zero one);
  check tbool "succ zero = one" true (equal (succ zero) one);
  check tbool "pred one = zero" true (equal (pred one) zero);
  check tbool "max+1 saturates in Ip, wraps here" true
    (equal (add max_value one) zero);
  check tbool "shift round trip" true
    (equal (shift_right_logical (shift_left one 100) 100) one);
  check tbool "bit 100 set" true (test_bit (shift_left one 100) 100);
  check tbool "bit 99 clear" false (test_bit (shift_left one 100) 99);
  check tbool "mask 128 = all ones" true (equal (mask 128) max_value);
  check tbool "mask 0 = zero" true (equal (mask 0) zero)

let test_int128_arith () =
  let open Int128 in
  (* carry across the 64-bit boundary *)
  let lo_max = make ~hi:0L ~lo:(-1L) in
  let r = add lo_max one in
  check tbool "carry" true (equal r (make ~hi:1L ~lo:0L));
  let r2 = sub (make ~hi:1L ~lo:0L) one in
  check tbool "borrow" true (equal r2 lo_max)

(* --- Ip ----------------------------------------------------------------- *)

let test_ipv4_parse () =
  let ip = Ip.of_string_exn "10.1.2.3" in
  check tstr "roundtrip" "10.1.2.3" (Ip.to_string ip);
  check tbool "bad octet" true (Ip.of_string "10.1.2.256" = None);
  check tbool "bad format" true (Ip.of_string "10.1.2" = None);
  check tbool "succ" true
    (Ip.equal (Ip.succ (Ip.of_string_exn "10.0.0.255")) (Ip.of_string_exn "10.0.1.0"))

let test_ipv6_parse () =
  let cases =
    [
      ("2001:db8::1", "2001:db8::1");
      ("::", "::");
      ("::1", "::1");
      ("2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1");
      ("fe80::1:2:3:4", "fe80::1:2:3:4");
      ("1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8");
    ]
  in
  List.iter
    (fun (input, expected) ->
      match Ip.of_string input with
      | Some ip -> check tstr input expected (Ip.to_string ip)
      | None -> Alcotest.failf "failed to parse %s" input)
    cases;
  check tbool "too many groups" true (Ip.of_string "1:2:3:4:5:6:7:8:9" = None);
  check tbool "double ::" true (Ip.of_string "1::2::3" = None)

let test_ip_ordering () =
  let v4 = Ip.of_string_exn "255.255.255.255" in
  let v6 = Ip.of_string_exn "::1" in
  check tbool "v4 < v6" true (Ip.compare v4 v6 < 0);
  check tbool "numeric order" true
    (Ip.compare (Ip.of_string_exn "10.0.0.1") (Ip.of_string_exn "10.0.0.2") < 0)

let test_ip_bits () =
  let ip = Ip.of_string_exn "128.0.0.1" in
  check tbool "msb set" true (Ip.bit ip 0);
  check tbool "lsb set" true (Ip.bit ip 31);
  check tbool "middle clear" false (Ip.bit ip 15);
  let ip6 = Ip.of_string_exn "8000::1" in
  check tbool "v6 msb" true (Ip.bit ip6 0);
  check tbool "v6 lsb" true (Ip.bit ip6 127)

(* --- Prefix ------------------------------------------------------------- *)

let test_prefix_basic () =
  let p = Prefix.of_string_exn "10.0.0.0/24" in
  check tstr "to_string" "10.0.0.0/24" (Prefix.to_string p);
  check tbool "normalizes host bits" true
    (Prefix.equal p (Prefix.of_string_exn "10.0.0.99/24"));
  check tbool "mem inside" true (Prefix.mem (Ip.of_string_exn "10.0.0.1") p);
  check tbool "mem outside" false (Prefix.mem (Ip.of_string_exn "10.0.1.1") p);
  check tstr "last addr" "10.0.0.255" (Ip.to_string (Prefix.last_addr p));
  check tbool "default" true
    (Prefix.equal (Prefix.default Ip.Ipv4) (Prefix.of_string_exn "0.0.0.0/0"))

let test_prefix_subsumption () =
  let p8 = Prefix.of_string_exn "10.0.0.0/8" in
  let p24 = Prefix.of_string_exn "10.1.2.0/24" in
  let other = Prefix.of_string_exn "11.0.0.0/8" in
  check tbool "subsumes" true (Prefix.subsumes p8 p24);
  check tbool "not reverse" false (Prefix.subsumes p24 p8);
  check tbool "overlap" true (Prefix.overlap p8 p24);
  check tbool "no overlap" false (Prefix.overlap p24 other);
  check tbool "family mismatch" false
    (Prefix.subsumes p8 (Prefix.of_string_exn "::/0"))

let test_prefix_v6 () =
  let p = Prefix.of_string_exn "2001:db8::/32" in
  check tbool "mem" true (Prefix.mem (Ip.of_string_exn "2001:db8::42") p);
  check tbool "not mem" false (Prefix.mem (Ip.of_string_exn "2001:db9::1") p);
  check tstr "last" "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff"
    (Ip.to_string (Prefix.last_addr p))

let test_prefix_halves () =
  let p = Prefix.of_string_exn "10.0.0.0/24" in
  match Prefix.halves p with
  | Some (lo, hi) ->
      check tstr "lo" "10.0.0.0/25" (Prefix.to_string lo);
      check tstr "hi" "10.0.0.128/25" (Prefix.to_string hi)
  | None -> Alcotest.fail "halves"

(* --- Trie --------------------------------------------------------------- *)

let test_trie_lpm () =
  let t = Trie.empty Ip.Ipv4 in
  let t = Trie.add t (Prefix.of_string_exn "10.0.0.0/8") "eight" in
  let t = Trie.add t (Prefix.of_string_exn "10.1.0.0/16") "sixteen" in
  let t = Trie.add t (Prefix.of_string_exn "0.0.0.0/0") "default" in
  let lookup ip =
    match Trie.longest_match t (Ip.of_string_exn ip) with
    | Some (_, v) -> v
    | None -> "none"
  in
  check tstr "most specific" "sixteen" (lookup "10.1.2.3");
  check tstr "mid" "eight" (lookup "10.2.0.1");
  check tstr "default" "default" (lookup "11.0.0.1");
  check tint "cardinal" 3 (Trie.cardinal t);
  (* all_matches returns most specific first *)
  let ms = Trie.all_matches t (Ip.of_string_exn "10.1.2.3") in
  check tint "three matches" 3 (List.length ms);
  check tstr "first is /16" "sixteen" (snd (List.hd ms))

let test_trie_fold_roundtrip () =
  let prefixes =
    [ "10.0.0.0/8"; "10.1.0.0/16"; "192.168.1.0/24"; "0.0.0.0/0";
      "255.255.255.255/32" ]
  in
  let t =
    List.fold_left
      (fun t p -> Trie.add t (Prefix.of_string_exn p) p)
      (Trie.empty Ip.Ipv4) prefixes
  in
  let collected = Trie.to_list t |> List.map fst |> List.map Prefix.to_string in
  check
    Alcotest.(slist string String.compare)
    "roundtrip" prefixes collected

let test_trie_dual () =
  let t = Trie.Dual.empty in
  let t = Trie.Dual.add t (Prefix.of_string_exn "10.0.0.0/8") "v4" in
  let t = Trie.Dual.add t (Prefix.of_string_exn "2001:db8::/32") "v6" in
  check tbool "v4 lookup" true
    (Trie.Dual.longest_match t (Ip.of_string_exn "10.1.1.1") <> None);
  check tbool "v6 lookup" true
    (Trie.Dual.longest_match t (Ip.of_string_exn "2001:db8::1") <> None);
  check tbool "v6 miss" true
    (Trie.Dual.longest_match t (Ip.of_string_exn "2001:db9::1") = None);
  check tint "cardinal both" 2 (Trie.Dual.cardinal t)

(* --- Community / AS path ------------------------------------------------ *)

let test_community () =
  let c = Community.of_string_exn "100:1" in
  check tstr "roundtrip" "100:1" (Community.to_string c);
  check tbool "bad" true (Community.of_string "100" = None);
  let s =
    Community.Set.of_list
      [ Community.of_string_exn "200:2"; c; c ]
  in
  check tint "dedup" 2 (Community.Set.cardinal s);
  check tbool "mem" true (Community.Set.mem c s);
  check tstr "sorted render" "100:1,200:2" (Community.Set.to_string s);
  match Community.Set.of_string "100:1, 200:2" with
  | Some s2 -> check tbool "set parse" true (Community.Set.equal s s2)
  | None -> Alcotest.fail "set parse"

let test_as_path () =
  let p = As_path.of_asns [ 100; 200; 300 ] in
  check tint "length" 3 (As_path.length p);
  check tstr "render" "100 200 300" (As_path.to_string p);
  check tbool "contains" true (As_path.contains_asn 200 p);
  check tbool "not contains" false (As_path.contains_asn 999 p);
  let p2 = As_path.prepend 50 p in
  check tstr "prepend" "50 100 200 300" (As_path.to_string p2);
  check tint "set counts 1" 2
    (As_path.length
       (As_path.of_segments [ As_path.Seq [ 1 ]; As_path.Set [ 2; 3; 4 ] ]));
  (* roundtrip with a set segment *)
  let str =
    As_path.to_string
      (As_path.of_segments [ As_path.Seq [ 1; 2 ]; As_path.Set [ 3; 4 ] ])
  in
  (match As_path.of_string str with
  | Some p' -> check tstr "roundtrip" str (As_path.to_string p')
  | None -> Alcotest.fail "as-path parse");
  (* aggregation *)
  let paths = [ As_path.of_asns [ 1; 2; 3 ]; As_path.of_asns [ 1; 2; 4 ] ] in
  check
    Alcotest.(list int)
    "common prefix" [ 1; 2 ] (As_path.common_prefix paths);
  check tstr "as-set aggregate" "1 2 {3,4}"
    (As_path.to_string (As_path.aggregate_with_set paths))

(* --- Route / Rib -------------------------------------------------------- *)

let mk_route ?(device = "A") ?(prefix = "10.0.0.0/24") ?(lp = 100) () =
  Route.make ~device ~prefix:(Prefix.of_string_exn prefix) ~local_pref:lp ()

let test_route_equal () =
  check tbool "equal" true (Route.equal (mk_route ()) (mk_route ()));
  check tbool "differs" false (Route.equal (mk_route ()) (mk_route ~lp:200 ()));
  check tbool "compare consistent" true
    (Route.compare (mk_route ()) (mk_route ~lp:200 ()) <> 0)

let test_global_rib () =
  let r1 = mk_route () and r2 = mk_route ~device:"B" () in
  let g = Rib.Global.of_routes [ r1; r2 ] in
  check tbool "multiset equal, order independent" true
    (Rib.Global.equal g (Rib.Global.of_routes [ r2; r1 ]));
  check tbool "not equal different" false
    (Rib.Global.equal g (Rib.Global.of_routes [ r1 ]));
  let d = Rib.Global.diff g (Rib.Global.of_routes [ r1 ]) in
  check tint "diff" 1 (List.length d);
  check tbool "diff content" true (Route.equal (List.hd d) r2);
  check
    Alcotest.(list string)
    "devices" [ "A"; "B" ] (Rib.Global.devices g)

let test_rib_ops () =
  let r1 = mk_route () in
  let r2 = mk_route ~prefix:"20.0.0.0/24" () in
  let rib = Rib.add (Rib.add Rib.empty r1) r2 in
  check tint "cardinal" 2 (Rib.cardinal rib);
  check tint "find" 1 (List.length (Rib.find rib r1.Route.prefix));
  let backup = { r2 with Route.route_type = Route.Backup } in
  let rib = Rib.set rib r2.Route.prefix [ r2; backup ] in
  check tint "installed excludes backup" 1
    (List.length (Rib.installed rib r2.Route.prefix))

(* --- Properties --------------------------------------------------------- *)

let ipv4_gen = QCheck.Gen.(map (fun n -> Ip.V4 (n land 0xffffffff)) nat)

let prefix_gen =
  QCheck.Gen.(
    map2
      (fun ip len -> Prefix.make (Ip.V4 (ip land 0xffffffff)) (len mod 33))
      nat nat)

let prop_prefix_roundtrip =
  QCheck.Test.make ~name:"prefix of_string/to_string roundtrip" ~count:500
    (QCheck.make prefix_gen)
    (fun p ->
      match Prefix.of_string (Prefix.to_string p) with
      | Some p' -> Prefix.equal p p'
      | None -> false)

let prop_prefix_mem_range =
  QCheck.Test.make ~name:"mem <=> within [first,last]" ~count:500
    (QCheck.make QCheck.Gen.(pair prefix_gen ipv4_gen))
    (fun (p, ip) ->
      let inside =
        Ip.compare ip (Prefix.first_addr p) >= 0
        && Ip.compare ip (Prefix.last_addr p) <= 0
      in
      Prefix.mem ip p = inside)

let prop_trie_lpm_vs_linear =
  (* LPM from the trie equals a linear scan for the longest containing
     prefix. *)
  let gen =
    QCheck.Gen.(pair (list_size (int_range 1 30) prefix_gen) ipv4_gen)
  in
  QCheck.Test.make ~name:"trie LPM = linear scan" ~count:300 (QCheck.make gen)
    (fun (prefixes, ip) ->
      let t =
        List.fold_left
          (fun t p -> Trie.add t p (Prefix.to_string p))
          (Trie.empty Ip.Ipv4) prefixes
      in
      let linear =
        List.filter (fun p -> Prefix.mem ip p) prefixes
        |> List.sort (fun a b -> Int.compare (Prefix.len b) (Prefix.len a))
      in
      match (Trie.longest_match t ip, linear) with
      | None, [] -> true
      | Some (p, _), best :: _ -> Prefix.len p = Prefix.len best
      | Some _, [] | None, _ :: _ -> false)

let prop_int128_shift =
  QCheck.Test.make ~name:"int128 shift left/right inverse" ~count:500
    (QCheck.make QCheck.Gen.(pair nat (int_range 0 60)))
    (fun (n, s) ->
      let x = Int128.of_int n in
      let y = Int128.shift_right_logical (Int128.shift_left x s) s in
      Int128.equal x y)

let prop_community_set_sorted =
  let comm_gen =
    QCheck.Gen.(
      map2 (fun a t -> Community.make (a mod 65536) (t mod 65536)) nat nat)
  in
  QCheck.Test.make ~name:"community set: of_list is sorted and unique"
    ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 20) comm_gen))
    (fun cs ->
      let s = Community.Set.to_list (Community.Set.of_list cs) in
      let rec sorted = function
        | a :: (b :: _ as rest) -> Community.compare a b < 0 && sorted rest
        | _ -> true
      in
      sorted s)

let suite =
  [
    ("int128 basic", `Quick, test_int128_basic);
    ("int128 arithmetic", `Quick, test_int128_arith);
    ("ipv4 parse", `Quick, test_ipv4_parse);
    ("ipv6 parse", `Quick, test_ipv6_parse);
    ("ip ordering", `Quick, test_ip_ordering);
    ("ip bit access", `Quick, test_ip_bits);
    ("prefix basic", `Quick, test_prefix_basic);
    ("prefix subsumption", `Quick, test_prefix_subsumption);
    ("prefix v6", `Quick, test_prefix_v6);
    ("prefix halves", `Quick, test_prefix_halves);
    ("trie lpm", `Quick, test_trie_lpm);
    ("trie fold roundtrip", `Quick, test_trie_fold_roundtrip);
    ("trie dual family", `Quick, test_trie_dual);
    ("community", `Quick, test_community);
    ("as path", `Quick, test_as_path);
    ("route equality", `Quick, test_route_equal);
    ("global rib", `Quick, test_global_rib);
    ("rib operations", `Quick, test_rib_ops);
    qtest prop_prefix_roundtrip;
    qtest prop_prefix_mem_range;
    qtest prop_trie_lpm_vs_linear;
    qtest prop_int128_shift;
    qtest prop_community_set_sorted;
  ]
