(* Tests for the configuration model, the vendor parsers/printers, policy
   evaluation with VSBs, and change-plan application. *)

open Hoyan_net
open Hoyan_config

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let pfx = Prefix.of_string_exn
let ip = Ip.of_string_exn
let comm = Community.of_string_exn

(* --- filters ------------------------------------------------------------ *)

let test_prefix_list_semantics () =
  let entry seq action p ge le =
    { Types.pe_seq = seq; pe_action = action; pe_prefix = pfx p; pe_ge = ge;
      pe_le = le }
  in
  let pl =
    { Types.pl_name = "PL"; pl_family = Ip.Ipv4;
      pl_entries =
        [
          entry 5 Types.Permit "10.0.0.0/24" None None;
          entry 10 Types.Deny "10.0.0.0/8" None (Some 32);
          entry 15 Types.Permit "0.0.0.0/0" (Some 16) (Some 24);
        ] }
  in
  let eval p = Types.prefix_list_eval pl (pfx p) in
  check tbool "exact match" true (eval "10.0.0.0/24" = Some Types.Permit);
  check tbool "longer falls to deny" true (eval "10.0.0.0/25" = Some Types.Deny);
  check tbool "le range deny" true (eval "10.9.0.0/16" = Some Types.Deny);
  check tbool "ge/le window" true (eval "172.16.0.0/20" = Some Types.Permit);
  check tbool "below ge" true (eval "172.0.0.0/8" = None)

let test_community_list () =
  let cl =
    { Types.cl_name = "CL";
      cl_entries =
        [
          { Types.ce_seq = 5; ce_action = Types.Deny;
            ce_members = [ comm "666:666" ] };
          { Types.ce_seq = 10; ce_action = Types.Permit;
            ce_members = [ comm "100:1"; comm "200:2" ] };
        ] }
  in
  let eval cs =
    Types.community_list_eval cl
      (Community.Set.of_list (List.map comm cs))
  in
  check tbool "deny first" true (eval [ "666:666"; "100:1" ] = Some Types.Deny);
  check tbool "all members required" true (eval [ "100:1" ] = None);
  check tbool "permit" true (eval [ "100:1"; "200:2"; "1:1" ] = Some Types.Permit)

let test_acl () =
  let acl =
    { Types.acl_name = "A";
      acl_entries =
        [
          { Types.ace_seq = 5; ace_action = Types.Permit;
            ace_src = Some (pfx "10.0.0.0/8"); ace_dst = None;
            ace_proto = Some 6; ace_dport = Some (443, 443) };
          { Types.ace_seq = 10; ace_action = Types.Deny; ace_src = None;
            ace_dst = None; ace_proto = None; ace_dport = None };
        ] }
  in
  let eval ~src ~proto ~dport =
    Types.acl_eval acl ~src:(ip src) ~dst:(ip "1.1.1.1") ~proto ~dport
  in
  check tbool "permit https" true
    (eval ~src:"10.1.1.1" ~proto:6 ~dport:443 = Some Types.Permit);
  check tbool "wrong port denied" true
    (eval ~src:"10.1.1.1" ~proto:6 ~dport:80 = Some Types.Deny);
  check tbool "wrong src denied" true
    (eval ~src:"11.1.1.1" ~proto:6 ~dport:443 = Some Types.Deny)

(* --- policy evaluation and VSBs ----------------------------------------- *)

let route ?(prefix = "10.0.0.0/24") ?(communities = []) ?(as_path = []) () =
  Route.make ~device:"R" ~prefix:(pfx prefix)
    ~communities:(Community.Set.of_list (List.map comm communities))
    ~as_path:(As_path.of_asns as_path)
    ()

let cfg_with_policy nodes =
  let cfg = Types.empty ~device:"R" ~vendor:"vendorA" in
  { cfg with
    Types.dc_policies =
      Types.Smap.add "P" { Types.rp_name = "P"; rp_nodes = nodes }
        cfg.Types.dc_policies }

let node ?(action = Some Types.Permit) ?(matches = []) ?(sets = [])
    ?(goto = false) seq =
  { Types.pn_seq = seq; pn_action = action; pn_matches = matches;
    pn_sets = sets; pn_goto_next = goto }

let test_policy_basic () =
  let cfg = cfg_with_policy [ node 10 ~sets:[ Types.Set_local_pref 300 ] ] in
  let v = Policy.eval cfg Vsb.vendor_a (Some "P") (route ()) in
  check tbool "permitted" true (v.Policy.pv_action = Types.Permit);
  check tint "lp set" 300 (Route.local_pref v.Policy.pv_route);
  check tbool "matched node" true (v.Policy.pv_matched_node = Some 10)

let test_policy_vsb_missing () =
  let cfg = Types.empty ~device:"R" ~vendor:"vendorA" in
  let r = route () in
  (* vendor A accepts without a policy, vendor B does not *)
  check tbool "A: no policy accepts" true
    ((Policy.eval cfg Vsb.vendor_a None r).Policy.pv_action = Types.Permit);
  check tbool "B: no policy denies" true
    ((Policy.eval cfg Vsb.vendor_b None r).Policy.pv_action = Types.Deny);
  (* undefined policy name *)
  check tbool "A: undefined policy accepts" true
    ((Policy.eval cfg Vsb.vendor_a (Some "NOPE") r).Policy.pv_action
    = Types.Permit);
  check tbool "B: undefined policy denies" true
    ((Policy.eval cfg Vsb.vendor_b (Some "NOPE") r).Policy.pv_action
    = Types.Deny)

let test_policy_vsb_default_action () =
  (* route matching no node: vendor A denies, vendor B permits *)
  let cfg =
    cfg_with_policy
      [ node 10 ~matches:[ Types.Match_tag 42 ] ~sets:[] ]
  in
  let r = route () in
  check tbool "A: no match denies" true
    ((Policy.eval cfg Vsb.vendor_a (Some "P") r).Policy.pv_action = Types.Deny);
  check tbool "B: no match permits" true
    ((Policy.eval cfg Vsb.vendor_b (Some "P") r).Policy.pv_action = Types.Permit)

let test_policy_vsb_undefined_filter () =
  let cfg =
    cfg_with_policy [ node 10 ~matches:[ Types.Match_prefix_list "MISSING" ] ]
  in
  let r = route () in
  (* A: undefined filter matches everything -> permit; B: never matches ->
     falls through -> B's default-permit VSB then applies *)
  let va = Policy.eval cfg Vsb.vendor_a (Some "P") r in
  check tbool "A matches via node 10" true (va.Policy.pv_matched_node = Some 10);
  let vb = Policy.eval cfg Vsb.vendor_b (Some "P") r in
  check tbool "B does not match the node" true (vb.Policy.pv_matched_node = None)

let test_policy_vsb_no_explicit_action () =
  let cfg = cfg_with_policy [ node ~action:None 10 ] in
  let r = route () in
  check tbool "A: implicit permit" true
    ((Policy.eval cfg Vsb.vendor_a (Some "P") r).Policy.pv_action = Types.Permit);
  check tbool "B: implicit deny" true
    ((Policy.eval cfg Vsb.vendor_b (Some "P") r).Policy.pv_action = Types.Deny)

let test_policy_sets () =
  let cfg =
    cfg_with_policy
      [
        node 10
          ~sets:
            [
              Types.Set_communities (Types.Comm_add, [ comm "300:3" ]);
              Types.Set_med 50;
              Types.Set_aspath_prepend (65000, 2);
            ];
      ]
  in
  let r = route ~communities:[ "100:1" ] ~as_path:[ 1; 2 ] () in
  let v = Policy.eval cfg Vsb.vendor_a (Some "P") r in
  let r' = v.Policy.pv_route in
  check tstr "communities" "100:1,300:3"
    (Community.Set.to_string r'.Route.communities);
  check tint "med" 50 (Route.med r');
  check tstr "prepended" "65000 65000 1 2" (As_path.to_string r'.Route.as_path)

let test_policy_overwrite_flag () =
  let cfg =
    cfg_with_policy [ node 10 ~sets:[ Types.Set_aspath_overwrite [ 9; 9 ] ] ]
  in
  let v = Policy.eval cfg Vsb.vendor_a (Some "P") (route ~as_path:[ 1 ] ()) in
  check tbool "overwrote flag" true v.Policy.pv_aspath_overwritten;
  check tstr "overwritten path" "9 9"
    (As_path.to_string v.Policy.pv_route.Route.as_path)

let test_policy_goto_next () =
  let cfg =
    cfg_with_policy
      [
        node 10 ~sets:[ Types.Set_local_pref 200 ] ~goto:true;
        node 20 ~sets:[ Types.Set_med 7 ];
      ]
  in
  let v = Policy.eval cfg Vsb.vendor_a (Some "P") (route ()) in
  let r = v.Policy.pv_route in
  check tint "first node applied" 200 (Route.local_pref r);
  check tint "second node applied too" 7 (Route.med r)

let test_policy_ipv6_against_ipv4_list () =
  (* The Figure-10(b) quirk: an ip-prefix (v4) list matched against an
     IPv6 route.  Vendor B treats it as a match (permitting all IPv6);
     vendor A does not match. *)
  let pl =
    { Types.pl_name = "PL4"; pl_family = Ip.Ipv4;
      pl_entries =
        [ { Types.pe_seq = 5; pe_action = Types.Permit;
            pe_prefix = pfx "10.0.0.0/8"; pe_ge = None; pe_le = None } ] }
  in
  let cfg =
    let c =
      cfg_with_policy
        [ node 10 ~matches:[ Types.Match_prefix_list "PL4" ]
            ~sets:[ Types.Set_local_pref 999 ] ]
    in
    { c with Types.dc_prefix_lists = Types.Smap.add "PL4" pl c.Types.dc_prefix_lists }
  in
  let v6_route = route ~prefix:"2001:db8::/32" () in
  let vb = Policy.eval cfg Vsb.vendor_b (Some "P") v6_route in
  check tbool "B: v6 hits the v4 list node" true
    (vb.Policy.pv_matched_node = Some 10);
  check tint "B: lp mistakenly raised" 999 (Route.local_pref vb.Policy.pv_route);
  let va = Policy.eval cfg Vsb.vendor_a (Some "P") v6_route in
  check tbool "A: v6 does not hit the node" true
    (va.Policy.pv_matched_node = None)

(* --- parsers ------------------------------------------------------------ *)

let vendor_a_config =
  {|hostname CORE-1
!
interface Eth0
 ip address 10.0.0.1/31
 bandwidth 100000000000
 isis cost 15
!
ip prefix-list PL seq 5 permit 10.0.0.0/24
ip prefix-list PL seq 10 deny 0.0.0.0/0 le 32
ipv6 prefix-list PL6 seq 5 permit 2001:db8::/32
ip community-list CL seq 5 permit 100:1 200:2
ip as-path access-list AP seq 5 permit .* 123 .*
!
route-map RM permit 10
 match ip prefix-list PL
 set local-preference 300
 set community 300:1 additive
!
route-map RM deny 20
!
router isis
 net 49.0001.0001
!
router bgp 65001
 bgp router-id 1.1.1.1
 network 10.0.0.0/24
 aggregate-address 10.0.0.0/16 summary-only
 redistribute static route-map RM
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map RM in
 neighbor 10.0.0.2 next-hop-self
!
ip route 192.168.0.0/24 10.0.0.2 preference 5 tag 77
access-list ACL1 seq 5 permit tcp 10.0.0.0/8 any eq 443
pbr interface Eth0 acl ACL1 next-hop 10.0.0.9
|}

let test_parser_a () =
  let cfg, errors = Parser_a.parse ~device:"x" vendor_a_config in
  check tint "no errors" 0 (List.length errors);
  check tstr "hostname" "CORE-1" cfg.Types.dc_device;
  check tint "one interface" 1 (List.length cfg.Types.dc_ifaces);
  let i = List.hd cfg.Types.dc_ifaces in
  check tstr "iface addr" "10.0.0.1" (Ip.to_string (Option.get i.Types.if_addr));
  check tint "plen" 31 i.Types.if_plen;
  check tint "prefix lists" 2 (Types.Smap.cardinal cfg.Types.dc_prefix_lists);
  let pl = Option.get (Types.find_prefix_list cfg "PL") in
  check tint "PL entries" 2 (List.length pl.Types.pl_entries);
  check tbool "le parsed" true
    ((List.nth pl.Types.pl_entries 1).Types.pe_le = Some 32);
  let rm = Option.get (Types.find_policy cfg "RM") in
  check tint "RM nodes" 2 (List.length rm.Types.rp_nodes);
  check tbool "node 20 is deny" true
    ((List.nth rm.Types.rp_nodes 1).Types.pn_action = Some Types.Deny);
  check tint "bgp asn" 65001 cfg.Types.dc_bgp.Types.bgp_asn;
  let nb = List.hd cfg.Types.dc_bgp.Types.bgp_neighbors in
  check tbool "neighbor import" true (nb.Types.nb_import = Some "RM");
  check tbool "next-hop-self" true nb.Types.nb_next_hop_self;
  check tint "aggregates" 1 (List.length cfg.Types.dc_bgp.Types.bgp_aggregates);
  check tbool "summary-only" true
    (List.hd cfg.Types.dc_bgp.Types.bgp_aggregates).Types.ag_summary_only;
  check tint "statics" 1 (List.length cfg.Types.dc_statics);
  check tint "acl entries" 1
    (List.length (Option.get (Types.find_acl cfg "ACL1")).Types.acl_entries);
  check tint "pbr" 1 (List.length cfg.Types.dc_pbr);
  check tbool "isis on" true cfg.Types.dc_isis.Types.isis_enabled;
  check tint "isis iface cost" 15
    (List.hd cfg.Types.dc_isis.Types.isis_ifaces).Types.ii_cost

let vendor_b_config =
  {|sysname BORDER-2
#
interface Eth0
 ip address 10.0.0.2 31
 isis enable 1
 isis cost 20
#
ip ip-prefix PL index 5 permit 10.0.0.0 24 less-equal 32
ip ipv6-prefix PL6 index 5 permit 2001:db8:: 32
ip community-filter CF index 5 permit 100:1
ip as-path-filter AP index 5 permit .* 65000 .*
#
route-policy RP permit node 10
 if-match ip-prefix PL
 apply local-preference 200
 goto next-node
#
route-policy RP deny node 20
#
isis 1
 network-entity 49.0001.0002
#
bgp 65002
 router-id 2.2.2.2
 network 20.0.0.0 24
 peer 10.0.0.1 as-number 65001
 peer 10.0.0.1 route-policy RP import
 peer 10.0.0.1 reflect-client
#
ip route-static 172.16.0.0 16 10.0.0.1 preference 60 tag 0
#
acl name FILTER
 rule 5 permit tcp source 10.0.0.0/8 destination-port eq 80
#
|}

let test_parser_b () =
  let cfg, errors = Parser_b.parse ~device:"x" vendor_b_config in
  List.iter (fun e -> Printf.printf "ERR: %s\n" (Lexutil.error_to_string e)) errors;
  check tint "no errors" 0 (List.length errors);
  check tstr "sysname" "BORDER-2" cfg.Types.dc_device;
  check tstr "vendor" "vendorB" cfg.Types.dc_vendor;
  let pl = Option.get (Types.find_prefix_list cfg "PL") in
  check tbool "family v4" true (pl.Types.pl_family = Ip.Ipv4);
  check tbool "less-equal" true
    ((List.hd pl.Types.pl_entries).Types.pe_le = Some 32);
  let pl6 = Option.get (Types.find_prefix_list cfg "PL6") in
  check tbool "family v6" true (pl6.Types.pl_family = Ip.Ipv6);
  let rp = Option.get (Types.find_policy cfg "RP") in
  check tbool "goto next" true (List.hd rp.Types.rp_nodes).Types.pn_goto_next;
  let nb = List.hd cfg.Types.dc_bgp.Types.bgp_neighbors in
  check tbool "reflect client" true nb.Types.nb_rr_client;
  check tint "statics" 1 (List.length cfg.Types.dc_statics);
  check tbool "acl parsed" true (Types.find_acl cfg "FILTER" <> None)

let test_parser_b_ipprefix_family_trap () =
  (* "ip ip-prefix" with an IPv6 address: the vendor accepts the command
     but the entry is ineffective — the list exists, declared IPv4, with
     no usable entries.  This is the §6.1 operator mistake: combined with
     vendor B's "ip-prefix permits the other family" VSB, every IPv6
     route then sails through the policy node. *)
  let cfg, errors =
    Parser_b.parse ~device:"x" "ip ip-prefix X index 5 permit 2001:db8:: 32\n"
  in
  check tint "one error" 1 (List.length errors);
  (match Types.find_prefix_list cfg "X" with
  | Some pl ->
      check tbool "declared IPv4" true (pl.Types.pl_family = Ip.Ipv4);
      check tint "no usable entries" 0 (List.length pl.Types.pl_entries)
  | None -> Alcotest.fail "list should be declared")

let test_printer_roundtrip_a () =
  let cfg, errors = Parser_a.parse ~device:"x" vendor_a_config in
  check tint "parse clean" 0 (List.length errors);
  let text = Printer.A.print cfg in
  let cfg2, errors2 = Parser_a.parse ~device:"x" text in
  check tint "reparse clean" 0 (List.length errors2);
  (* compare rendered forms (canonical) *)
  check tstr "roundtrip stable" (Printer.A.print cfg) (Printer.A.print cfg2)

let test_printer_roundtrip_b () =
  let cfg, errors = Parser_b.parse ~device:"x" vendor_b_config in
  check tint "parse clean" 0 (List.length errors);
  let text = Printer.B.print cfg in
  let cfg2, errors2 = Parser_b.parse ~device:"x" text in
  check tint "reparse clean" 0 (List.length errors2);
  check tstr "roundtrip stable" (Printer.B.print cfg) (Printer.B.print cfg2)

let test_parser_flaws () =
  let text = "route-map RM permit 10\n set community 1:1 additive\n" in
  let cfg, _ = Parser_a.parse ~device:"x" text in
  let cfg_flawed, _ =
    Parser_a.parse ~flaws:[ Parser_a.Ignore_additive ] ~device:"x" text
  in
  let get_set c =
    (List.hd (Option.get (Types.find_policy c "RM")).Types.rp_nodes)
      .Types.pn_sets
  in
  (match (get_set cfg, get_set cfg_flawed) with
  | [ Types.Set_communities (Types.Comm_add, _) ],
    [ Types.Set_communities (Types.Comm_replace, _) ] ->
      ()
  | _ -> Alcotest.fail "flaw not reproduced");
  let text6 = "ipv6 prefix-list P6 seq 5 permit 2001:db8::/32\n" in
  let cfg6, errors6 =
    Parser_a.parse ~flaws:[ Parser_a.Drop_ipv6_prefix_lists ] ~device:"x" text6
  in
  check tbool "v6 lists dropped" true (Types.find_prefix_list cfg6 "P6" = None);
  (* the drop must be reported, never silent *)
  check tint "drop reported" 1 (List.length errors6);
  let e = List.hd errors6 in
  check tint "drop reported on its line" 1 e.Lexutil.err_line;
  check tbool "drop message names the list" true
    (let msg = e.Lexutil.err_msg in
     let re = Str.regexp_string "P6" in
     try ignore (Str.search_forward re msg 0); true with Not_found -> false)

let test_ipv6_prefix_lists_both_dialects () =
  (* vendor A *)
  let cfg, errors =
    Parser_a.parse ~device:"x"
      "ipv6 prefix-list P6 seq 5 permit 2001:db8::/32 le 48\n"
  in
  check tint "A: parses clean" 0 (List.length errors);
  let pl = Option.get (Types.find_prefix_list cfg "P6") in
  check tbool "A: family is ipv6" true (pl.Types.pl_family = Ip.Ipv6);
  (match pl.Types.pl_entries with
  | [ e ] ->
      check tstr "A: prefix" "2001:db8::/32" (Prefix.to_string e.Types.pe_prefix);
      check tbool "A: le kept" true (e.Types.pe_le = Some 48)
  | _ -> Alcotest.fail "A: expected one entry");
  (* vendor B *)
  let cfg, errors =
    Parser_b.parse ~device:"x"
      "ip ipv6-prefix P6 index 5 permit 2001:db8:: 32 less-equal 48\n"
  in
  check tint "B: parses clean" 0 (List.length errors);
  let pl = Option.get (Types.find_prefix_list cfg "P6") in
  check tbool "B: family is ipv6" true (pl.Types.pl_family = Ip.Ipv6);
  (match pl.Types.pl_entries with
  | [ e ] ->
      check tstr "B: prefix" "2001:db8::/32" (Prefix.to_string e.Types.pe_prefix);
      check tbool "B: le kept" true (e.Types.pe_le = Some 48)
  | _ -> Alcotest.fail "B: expected one entry")

let test_unknown_lines_reported () =
  let _, errors = Parser_a.parse ~device:"x" "frobnicate the network\n" in
  check tint "error recorded" 1 (List.length errors)

(* --- parser error paths -------------------------------------------------- *)

let test_error_line_numbers_a () =
  (* a bad line sandwiched between good ones must be reported with its own
     1-based line number, and parsing must continue past it *)
  let text =
    "hostname r1\n\
     ip prefix-list PL seq 5 permit not-a-prefix\n\
     ip prefix-list PL seq 10 permit 10.0.0.0/8\n\
     frobnicate 42\n"
  in
  let cfg, errors = Parser_a.parse ~device:"x" text in
  let lines = List.map (fun e -> e.Lexutil.err_line) errors |> List.sort compare in
  check Alcotest.(list int) "bad lines located" [ 2; 4 ] lines;
  let pl = Option.get (Types.find_prefix_list cfg "PL") in
  check tint "good entry survives" 1 (List.length pl.Types.pl_entries)

let test_error_line_numbers_b () =
  let text =
    "sysname r1\n\
     ip ip-prefix PL index 5 permit 10.0.0.0 99\n\
     ip ip-prefix PL index 10 permit 10.0.0.0 8\n\
     frobnicate 42\n"
  in
  let cfg, errors = Parser_b.parse ~device:"x" text in
  let lines = List.map (fun e -> e.Lexutil.err_line) errors |> List.sort compare in
  check Alcotest.(list int) "bad lines located" [ 2; 4 ] lines;
  let pl = Option.get (Types.find_prefix_list cfg "PL") in
  check tint "good entry survives" 1 (List.length pl.Types.pl_entries)

let test_malformed_stanzas_no_crash () =
  (* truncated / garbled stanza headers and bodies: both parsers must
     report rather than raise *)
  let samples =
    [
      "route-map\n";
      "route-map RM permit ten\n match\n";
      "router bgp\n neighbor\n";
      "interface\n ip address banana\n";
      "ip prefix-list PL seq permit 10.0.0.0/8\n";
      "ip community-list CL seq 5 permit not:a:community\n";
      "vrf definition\n route-target import\n";
      "route-policy RP permit node\n apply\n";
      "bgp\n peer 1.2.3.4 as-number\n";
      "ip ip-prefix PL index 5 allow 10.0.0.0 8\n";
      "acl name\n rule 5 permit source\n";
    ]
  in
  List.iter
    (fun text ->
      let _, ea = Parser_a.parse ~device:"x" text in
      let _, eb = Parser_b.parse ~device:"x" text in
      check tbool "some parser rejects it" true
        (List.length ea > 0 || List.length eb > 0);
      List.iter
        (fun e -> check tbool "line in range" true (e.Lexutil.err_line >= 1))
        (ea @ eb))
    samples

let fuzz_parsers_never_crash =
  (* mutate lines of the known-good configs (token deletion, duplication,
     swaps, injected garbage) and feed the result to both parsers: they
     must never raise, and every reported error must carry a line number
     inside the input *)
  let mutate_line rand line =
    let toks = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
    let n = List.length toks in
    let drop i = List.filteri (fun j _ -> j <> i) toks in
    let toks =
      if n = 0 then [ "garbage" ]
      else
        match Random.State.int rand 5 with
        | 0 -> drop (Random.State.int rand n)
        | 1 -> List.nth toks (Random.State.int rand n) :: toks
        | 2 -> List.rev toks
        | 3 ->
            List.mapi
              (fun j t -> if j = Random.State.int rand n then "\xffgarbage" else t)
              toks
        | _ -> toks @ [ "9999999999999999999" ]
    in
    String.concat " " toks
  in
  let gen = QCheck.Gen.(pair (oneofl [ `A; `B ]) (int_bound 0x3FFFFFFF)) in
  QCheck.Test.make ~name:"mutated configs never crash the parsers" ~count:200
    (QCheck.make gen) (fun (vendor, seed) ->
      let rand = Random.State.make [| seed |] in
      let base =
        match vendor with `A -> vendor_a_config | `B -> vendor_b_config
      in
      let lines = String.split_on_char '\n' base in
      let nlines = List.length lines in
      let mutated =
        List.map
          (fun l ->
            if Random.State.int rand 3 = 0 then mutate_line rand l else l)
          lines
        |> String.concat "\n"
      in
      let _, errors =
        match vendor with
        | `A -> Parser_a.parse ~device:"x" mutated
        | `B -> Parser_b.parse ~device:"x" mutated
      in
      List.for_all
        (fun e -> e.Lexutil.err_line >= 1 && e.Lexutil.err_line <= nlines)
        errors)

(* --- change plans -------------------------------------------------------- *)

let test_change_plan_merge_and_delete () =
  let base, _ = Parser_a.parse ~device:"x" vendor_a_config in
  let block =
    {|route-map RM permit 15
 set metric 9
!
no route-map RM 20
ip prefix-list PL seq 7 permit 10.1.0.0/24
no ip route 192.168.0.0/24
|}
  in
  let cfg, report = Change_plan.apply_commands base block in
  check tint "no issues" 0 (List.length report.Change_plan.ar_issues);
  let rm = Option.get (Types.find_policy cfg "RM") in
  let seqs = List.map (fun n -> n.Types.pn_seq) rm.Types.rp_nodes in
  check Alcotest.(list int) "nodes 10,15 remain; 20 deleted" [ 10; 15 ] seqs;
  let pl = Option.get (Types.find_prefix_list cfg "PL") in
  check tint "PL grew" 3 (List.length pl.Types.pl_entries);
  check tint "static removed" 0 (List.length cfg.Types.dc_statics)

let test_change_plan_wrong_dialect () =
  (* vendor-B commands applied to a vendor-A device: everything errors and
     the config is unchanged -- Table 6's "wrong command format" risk *)
  let base, _ = Parser_a.parse ~device:"x" vendor_a_config in
  let block = "route-policy RP permit node 10\n apply local-preference 5\n" in
  let cfg, report = Change_plan.apply_commands base block in
  check tbool "errors reported" true
    (List.length (Change_plan.parse_issues report) > 0);
  check tbool "no new policy" true (Types.find_policy cfg "RP" = None)

let test_change_plan_delete_typo () =
  let base, _ = Parser_a.parse ~device:"x" vendor_a_config in
  let cfg, report = Change_plan.apply_commands base "no route-map RMTYPO 10\n" in
  check tint "delete error" 1
    (List.length (Change_plan.delete_issues report));
  check tbool "config unchanged" true (Types.find_policy cfg "RM" <> None)

(* --- VSB table ------------------------------------------------------------ *)

let test_vsb_profiles_differ_on_all_16 () =
  List.iter
    (fun dim ->
      let a = Vsb.dimension_value Vsb.vendor_a dim in
      let b = Vsb.dimension_value Vsb.vendor_b dim in
      if String.equal a b then
        Alcotest.failf "profiles agree on %s (%s)" dim a)
    Vsb.dimension_names;
  check tint "16 dimensions" 16 (List.length Vsb.dimension_names)

let suite =
  [
    ("prefix list semantics", `Quick, test_prefix_list_semantics);
    ("community list", `Quick, test_community_list);
    ("acl evaluation", `Quick, test_acl);
    ("policy basic", `Quick, test_policy_basic);
    ("VSB: missing/undefined policy", `Quick, test_policy_vsb_missing);
    ("VSB: default action", `Quick, test_policy_vsb_default_action);
    ("VSB: undefined filter", `Quick, test_policy_vsb_undefined_filter);
    ("VSB: no explicit action", `Quick, test_policy_vsb_no_explicit_action);
    ("policy set clauses", `Quick, test_policy_sets);
    ("policy overwrite flag", `Quick, test_policy_overwrite_flag);
    ("policy goto-next", `Quick, test_policy_goto_next);
    ("VSB: ip-prefix vs ipv6 route", `Quick, test_policy_ipv6_against_ipv4_list);
    ("parser vendor A", `Quick, test_parser_a);
    ("parser vendor B", `Quick, test_parser_b);
    ("parser B family trap", `Quick, test_parser_b_ipprefix_family_trap);
    ("printer roundtrip A", `Quick, test_printer_roundtrip_a);
    ("printer roundtrip B", `Quick, test_printer_roundtrip_b);
    ("parser injected flaws", `Quick, test_parser_flaws);
    ("ipv6 prefix lists, both dialects", `Quick,
     test_ipv6_prefix_lists_both_dialects);
    ("unknown lines reported", `Quick, test_unknown_lines_reported);
    ("error line numbers A", `Quick, test_error_line_numbers_a);
    ("error line numbers B", `Quick, test_error_line_numbers_b);
    ("malformed stanzas never crash", `Quick, test_malformed_stanzas_no_crash);
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 4242 |])
      fuzz_parsers_never_crash;
    ("change plan merge+delete", `Quick, test_change_plan_merge_and_delete);
    ("change plan wrong dialect", `Quick, test_change_plan_wrong_dialect);
    ("change plan delete typo", `Quick, test_change_plan_delete_typo);
    ("VSB profiles differ on all 16", `Quick, test_vsb_profiles_differ_on_all_16);
  ]
