(* Properties of the PR6 performance representations: interned AS-path /
   community tables agree with the structural implementations, interned
   ids are deterministic for a fixed build order, packed route
   attributes round-trip, and the packed-key arena merge produces
   exactly [List.sort_uniq Route.compare] — with a complete universe and
   through the overflow path of a partial one. *)

open Hoyan_net

(* fixed seed: deterministic run to run *)
let qtest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |]) t

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_asn = QCheck.Gen.(map (fun n -> 1 + (n mod 20)) nat)

let gen_segment =
  QCheck.Gen.(
    oneof
      [
        map (fun l -> As_path.Seq l) (list_size (int_range 1 4) gen_asn);
        map (fun l -> As_path.Set l) (list_size (int_range 1 4) gen_asn);
      ])

let gen_as_path =
  QCheck.Gen.(
    map As_path.of_segments (list_size (int_range 0 4) gen_segment))

let arb_as_path =
  QCheck.make ~print:As_path.to_string gen_as_path

let gen_community =
  QCheck.Gen.(
    map2 (fun a t -> Community.make (1 + (a mod 10)) (t mod 10)) nat nat)

let gen_comm_set =
  QCheck.Gen.(
    map Community.Set.of_list (list_size (int_range 0 5) gen_community))

let arb_comm_set = QCheck.make ~print:Community.Set.to_string gen_comm_set

let gen_route =
  let open QCheck.Gen in
  let* dev = map (fun n -> Printf.sprintf "d%d" (n mod 4)) nat in
  let* vrf = oneofl [ "global"; "vrf1" ] in
  let* ip = map (fun n -> Ip.V4 ((n * 257) land 0xffffff00)) nat in
  let* len = int_range 8 24 in
  let* lp = map (fun n -> n mod 500) nat in
  let* med = map (fun n -> n mod 100) nat in
  let* weight = map (fun n -> n mod 100) nat in
  let* path = gen_as_path in
  let* comms = gen_comm_set in
  let* nh = opt (map (fun n -> Ip.V4 (1 + (n mod 1000))) nat) in
  return
    (Route.make ~device:dev ~vrf ~prefix:(Prefix.make ip len) ~local_pref:lp
       ~med ~weight ~as_path:path ~communities:comms ?nexthop:nh ())

let arb_routes =
  QCheck.make
    ~print:(fun rs -> string_of_int (List.length rs) ^ " routes")
    QCheck.Gen.(list_size (int_range 0 40) gen_route)

(* ------------------------------------------------------------------ *)
(* Interned tables agree with the structural implementations           *)
(* ------------------------------------------------------------------ *)

let prop_as_paths_agree =
  QCheck.Test.make ~count:300
    ~name:"interned As_path ops agree with structural ops"
    (QCheck.pair arb_as_path (QCheck.pair arb_as_path QCheck.small_nat))
    (fun (p, (q, asn)) ->
      let asn = 1 + (asn mod 25) in
      let tbl = Intern.As_paths.create () in
      let ip = Intern.As_paths.intern tbl p
      and iq = Intern.As_paths.intern tbl q in
      (* id equality is value equality *)
      Intern.As_paths.equal_id ip iq = As_path.equal p q
      && Intern.As_paths.length tbl ip = As_path.length p
      && Intern.As_paths.contains_asn tbl asn ip = As_path.contains_asn asn p
      && Intern.As_paths.to_string tbl ip = As_path.to_string p
      && compare (Intern.As_paths.compare_id tbl ip iq) 0
         = compare (As_path.compare p q) 0
      && As_path.equal
           (Intern.As_paths.get tbl (Intern.As_paths.prepend tbl asn ip))
           (As_path.prepend asn p))

let prop_communities_agree =
  QCheck.Test.make ~count:300
    ~name:"interned Community.Set ops agree with structural ops"
    (QCheck.pair arb_comm_set (QCheck.pair arb_comm_set QCheck.small_nat))
    (fun (a, (b, n)) ->
      let c = Community.make (1 + (n mod 10)) (n mod 10) in
      let tbl = Intern.Communities.create () in
      let ia = Intern.Communities.intern tbl a
      and ib = Intern.Communities.intern tbl b in
      Intern.Communities.equal_id ia ib = Community.Set.equal a b
      && Intern.Communities.mem tbl c ia = Community.Set.mem c a
      && Intern.Communities.cardinal tbl ia = Community.Set.cardinal a
      && Intern.Communities.to_string tbl ia = Community.Set.to_string a
      && compare (Intern.Communities.compare_id tbl ia ib) 0
         = compare (Community.Set.compare a b) 0
      && Community.Set.equal
           (Intern.Communities.get tbl (Intern.Communities.union tbl ia ib))
           (Community.Set.union a b))

let prop_ids_deterministic =
  QCheck.Test.make ~count:100
    ~name:"interned ids are stable for a fixed build order"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 30) gen_as_path))
    (fun paths ->
      let t1 = Intern.As_paths.create () in
      let ids1 = List.map (Intern.As_paths.intern t1) paths in
      let t2 = Intern.As_paths.create () in
      let ids2 = List.map (Intern.As_paths.intern t2) paths in
      ids1 = ids2
      && Intern.As_paths.size t1 = Intern.As_paths.size t2
      (* ids are dense, first-sight ordered *)
      && List.for_all (fun id -> id < Intern.As_paths.size t1) ids1)

let test_freeze_lifecycle () =
  let tbl = Intern.As_paths.create () in
  let p = As_path.of_asns [ 1; 2; 3 ] in
  let id = Intern.As_paths.intern tbl p in
  Intern.As_paths.freeze tbl;
  Alcotest.(check bool) "frozen" true (Intern.As_paths.frozen tbl);
  (* existing values still resolve (memos were materialized) *)
  Alcotest.(check int) "reintern existing" id (Intern.As_paths.intern tbl p);
  Alcotest.(check string)
    "to_string after freeze" (As_path.to_string p)
    (Intern.As_paths.to_string tbl id);
  (* new values are rejected: the table is shared read-only *)
  (match Intern.As_paths.intern tbl (As_path.of_asns [ 9; 9; 9 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "intern of an unseen path after freeze must raise");
  match Intern.As_paths.find_opt tbl (As_path.of_asns [ 9; 9; 9 ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "unseen path must not be present"

(* ------------------------------------------------------------------ *)
(* Packed route attributes                                             *)
(* ------------------------------------------------------------------ *)

let prop_attrs_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"packed Route attrs round-trip within field ranges"
    (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat)
    (fun (lp, med, w) ->
      let r =
        Route.make ~device:"d" ~prefix:(Prefix.of_string_exn "10.0.0.0/24")
          ~local_pref:lp ~med ~weight:w ()
      in
      Route.local_pref r = lp
      && Route.med r = med
      && Route.weight r = w
      && Route.local_pref (Route.with_local_pref r (lp + 1)) = lp + 1
      && Route.med (Route.with_med r (med + 1)) = med + 1
      (* setters leave the other packed fields alone *)
      && Route.med (Route.with_local_pref r (lp + 1)) = med
      && Route.weight (Route.with_med r (med + 1)) = w)

let test_attrs_saturate () =
  let r =
    Route.make ~device:"d" ~prefix:(Prefix.of_string_exn "10.0.0.0/24")
      ~local_pref:max_int ~med:(-5) ~weight:max_int ()
  in
  Alcotest.(check int) "lp clamps" Route.Attrs.lp_max (Route.local_pref r);
  Alcotest.(check int) "med clamps at 0" 0 (Route.med r);
  Alcotest.(check int)
    "weight clamps" Route.Attrs.weight_max (Route.weight r)

(* ------------------------------------------------------------------ *)
(* Arena merge = sort_uniq                                             *)
(* ------------------------------------------------------------------ *)

let partition_chunks rs =
  (* deterministic 3-way partition *)
  List.mapi (fun i r -> (i, r)) rs
  |> List.fold_left
       (fun (a, b, c) (i, r) ->
         match i mod 3 with
         | 0 -> (r :: a, b, c)
         | 1 -> (a, r :: b, c)
         | _ -> (a, b, r :: c))
       ([], [], [])
  |> fun (a, b, c) -> [ a; b; c ]

let prop_arena_merge_full_ctx =
  QCheck.Test.make ~count:200
    ~name:"arena merge = sort_uniq (complete key universe)"
    arb_routes
    (fun rs ->
      let ctx = Rib.Key.of_routes rs in
      let chunks = partition_chunks rs in
      (* duplicate one chunk: the merge must deduplicate *)
      let chunks = chunks @ [ List.filteri (fun i _ -> i mod 2 = 0) rs ] in
      let merged =
        Rib.Arena.merge (List.map (Rib.Arena.of_routes ctx) chunks)
      in
      let reference = List.sort_uniq Route.compare (List.concat chunks) in
      List.equal Route.equal merged reference)

let prop_arena_merge_partial_ctx =
  QCheck.Test.make ~count:200
    ~name:"arena merge = sort_uniq (partial universe, overflow path)"
    arb_routes
    (fun rs ->
      (* universe misses half the devices and all vrf1 routes *)
      let known =
        List.filter
          (fun (r : Route.t) ->
            String.equal r.Route.vrf "global"
            && (String.equal r.Route.device "d0"
               || String.equal r.Route.device "d1"))
          rs
      in
      let ctx = Rib.Key.of_routes known in
      let chunks = partition_chunks rs in
      let merged =
        Rib.Arena.merge (List.map (Rib.Arena.of_routes ctx) chunks)
      in
      let reference = List.sort_uniq Route.compare rs in
      List.equal Route.equal merged reference)

let test_arena_empty () =
  Alcotest.(check int)
    "merge of nothing" 0
    (List.length (Rib.Arena.merge []));
  let ctx = Rib.Key.of_routes [] in
  Alcotest.(check int)
    "merge of empties" 0
    (List.length (Rib.Arena.merge [ Rib.Arena.of_routes ctx [] ]))

let suite =
  [
    qtest prop_as_paths_agree;
    qtest prop_communities_agree;
    qtest prop_ids_deterministic;
    Alcotest.test_case "intern freeze lifecycle" `Quick test_freeze_lifecycle;
    qtest prop_attrs_roundtrip;
    Alcotest.test_case "packed attrs saturate" `Quick test_attrs_saturate;
    qtest prop_arena_merge_full_ctx;
    qtest prop_arena_merge_partial_ctx;
    Alcotest.test_case "arena edge cases" `Quick test_arena_empty;
  ]
