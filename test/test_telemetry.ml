(* Tests for the telemetry subsystem: JSON emit/parse, trace round trip,
   metrics registry (domain-shard merge, Prometheus rendering), journal
   ordering, the noop handle, and the instrumented pipeline (deterministic
   counters/events on a fixed workload, retry telemetry, verify-request
   phase spans). *)

module Telemetry = Hoyan_telemetry.Telemetry
module Trace = Hoyan_telemetry.Trace
module Metrics = Hoyan_telemetry.Metrics
module Journal = Hoyan_telemetry.Journal
module Json = Hoyan_telemetry.Json
module G = Hoyan_workload.Generator
module Framework = Hoyan_dist.Framework
module Parallel = Hoyan_dist.Parallel
module Db = Hoyan_dist.Db

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let scenario = lazy (G.generate G.small)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_round_trip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nstring\twith\\escapes");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "" ]);
        ("o", Json.Obj [ ("nested", Json.List []) ]);
      ]
  in
  (match Json.of_string (Json.to_string j) with
  | Ok j2 -> check tbool "round trip preserves the value" true (j = j2)
  | Error e -> Alcotest.fail ("parse failed: " ^ e));
  (* integral floats keep a decimal point so they parse back as floats *)
  check tstr "integral float keeps the point" "3.0"
    (Json.to_string (Json.Float 3.0));
  (* non-finite floats have no JSON form *)
  check tstr "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  (* accessors *)
  (match Json.member "i" j with
  | Some v -> check tint "member/int" (-42) (Option.get (Json.to_int_opt v))
  | None -> Alcotest.fail "member i missing");
  (* parse errors are reported, not raised *)
  check tbool "garbage is an Error" true
    (match Json.of_string "{\"x\": tru}" with Error _ -> true | Ok _ -> false);
  check tbool "trailing junk is an Error" true
    (match Json.of_string "1 2" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_round_trip () =
  let t = Trace.create () in
  let outer = Trace.start ~args:[ ("phase", "route") ] "outer" in
  let inner = Trace.start "inner" in
  Trace.finish t inner;
  Trace.finish t ~args:[ ("rows", "7") ] outer;
  check tint "two events" 2 (Trace.count t);
  (* nesting: the outer span starts no later and ends no earlier *)
  let evs = Trace.events t in
  let find name =
    List.find (fun (e : Trace.event) -> e.Trace.te_name = name) evs
  in
  let o = find "outer" and i = find "inner" in
  check tbool "outer starts first" true
    (Int64.compare o.Trace.te_ts_ns i.Trace.te_ts_ns <= 0);
  check tbool "outer ends last" true
    (Int64.compare
       (Int64.add o.Trace.te_ts_ns o.Trace.te_dur_ns)
       (Int64.add i.Trace.te_ts_ns i.Trace.te_dur_ns)
    >= 0);
  check tbool "finish args appended" true
    (List.mem_assoc "rows" o.Trace.te_args
    && List.mem_assoc "phase" o.Trace.te_args);
  (* Chrome trace JSON round-trips through the parser *)
  let s = Json.to_string (Trace.to_json t) in
  match Json.of_string s with
  | Error e -> Alcotest.fail ("trace JSON did not parse: " ^ e)
  | Ok j -> (
      match Trace.events_of_json j with
      | Error e -> Alcotest.fail ("trace events did not decode: " ^ e)
      | Ok evs2 ->
          check tint "all events survive" 2 (List.length evs2);
          let names e = List.map (fun (x : Trace.event) -> x.Trace.te_name) e in
          check (Alcotest.list tstr) "names survive" (names evs) (names evs2);
          let o2 =
            List.find (fun (e : Trace.event) -> e.Trace.te_name = "outer") evs2
          in
          check tbool "args survive" true
            (List.mem ("rows", "7") o2.Trace.te_args))

let test_trace_null_span () =
  let t = Trace.create () in
  Trace.finish t Trace.null_span;
  check tint "finishing the null span records nothing" 0 (Trace.count t)

let test_trace_summarize () =
  let t = Trace.create () in
  List.iter
    (fun (name, id) ->
      let sp =
        match id with
        | Some id -> Trace.start ~args:[ ("id", id) ] name
        | None -> Trace.start name
      in
      Trace.finish t sp)
    [ ("step", Some "a"); ("step", Some "b"); ("split", None) ];
  let rows = Trace.summarize (Trace.events t) in
  let step =
    List.find (fun (r : Trace.summary_row) -> r.Trace.sr_name = "step") rows
  in
  check tint "two step spans aggregated" 2 step.Trace.sr_count;
  let by_id = Trace.summarize_by_arg "id" (Trace.events t) in
  (* the span without the arg is excluded; a and b each appear once *)
  check tint "two ids" 2 (List.length by_id);
  List.iter
    (fun (r : Trace.summary_row) -> check tint "one span per id" 1 r.Trace.sr_count)
    by_id

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.incr m "requests" 1;
  Metrics.incr m "requests" 2;
  Metrics.incr m ~labels:[ ("phase", "route") ] "requests" 5;
  Metrics.gauge_set m "rows" 10.;
  Metrics.gauge_set m "rows" 20.;
  Metrics.observe m "latency" 0.001;
  Metrics.observe m "latency" 0.004;
  check tint "unlabelled counter" 3 (Metrics.counter_value m "requests");
  check tint "labelled counter" 5
    (Metrics.counter_value m ~labels:[ ("phase", "route") ] "requests");
  check tint "missing counter is 0" 0 (Metrics.counter_value m "nope");
  check (Alcotest.float 0.001) "gauge last-write-wins" 20.
    (Option.get (Metrics.gauge_value m "rows"));
  let snap = Metrics.snapshot m in
  let _, _, hv = List.find (fun (n, _, _) -> n = "latency") snap.Metrics.hists in
  check tint "histogram count" 2 hv.Metrics.hv_count;
  check (Alcotest.float 1e-9) "histogram sum" 0.005 hv.Metrics.hv_sum;
  (* cumulative buckets: the last bucket holds everything *)
  (match List.rev hv.Metrics.hv_buckets with
  | (_, last) :: _ -> check tint "last bucket cumulative" 2 last
  | [] -> Alcotest.fail "no buckets");
  (* Prometheus text exposition *)
  let prom = Metrics.to_prometheus m in
  let has needle =
    let re = Str.regexp_string needle in
    match Str.search_forward re prom 0 with
    | _ -> true
    | exception Not_found -> false
  in
  check tbool "TYPE line" true (has "# TYPE requests counter");
  check tbool "labelled sample" true (has "requests{phase=\"route\"} 5");
  check tbool "histogram sum line" true (has "latency_sum");
  check tbool "histogram count line" true (has "latency_count 2");
  check tbool "+Inf bucket" true (has "le=\"+Inf\"")

let test_metrics_domain_merge () =
  (* counter increments from concurrent domains all land: the per-domain
     shards merge on read *)
  let m = Metrics.create () in
  let xs = List.init 64 Fun.id in
  let _ =
    Parallel.map ~domains:4
      (fun i ->
        Metrics.incr m "work" 1;
        Metrics.observe m "cost" (float_of_int (i mod 7) /. 1000.);
        i)
      xs
  in
  check tint "no increment lost across domains" 64
    (Metrics.counter_value m "work");
  let snap = Metrics.snapshot m in
  let _, _, hv = List.find (fun (n, _, _) -> n = "cost") snap.Metrics.hists in
  check tint "no observation lost across domains" 64 hv.Metrics.hv_count

let test_trace_domain_merge () =
  (* spans finished on worker domains merge into one event list *)
  let tm = Telemetry.create () in
  let xs = List.init 32 Fun.id in
  let _ = Parallel.map ~tm ~domains:4 (fun i -> i * i) xs in
  let domain_spans =
    List.filter
      (fun (e : Trace.event) -> e.Trace.te_name = "parallel.domain")
      (Trace.events tm.Telemetry.trace)
  in
  check tint "one span per worker domain" 4 (List.length domain_spans);
  let items =
    List.fold_left
      (fun n (e : Trace.event) ->
        n + int_of_string (List.assoc "items" e.Trace.te_args))
      0 domain_spans
  in
  check tint "domain spans account for every item" 32 items;
  check tint "items counter agrees" 32
    (Metrics.counter_value tm.Telemetry.metrics "hoyan_parallel_items_total")

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let test_journal () =
  let j = Journal.create () in
  Journal.event j "a" [ ("x", Journal.I 1) ];
  Journal.event j "b" [ ("y", Journal.S "s"); ("z", Journal.B false) ];
  Journal.event j "a" [ ("x", Journal.I 2) ];
  check tint "three events" 3 (Journal.count j);
  let evs = Journal.events j in
  check (Alcotest.list tint) "sequence order" [ 0; 1; 2 ]
    (List.map (fun (e : Journal.event) -> e.Journal.ev_seq) evs);
  check tint "find by name" 2 (List.length (Journal.find j "a"));
  (* every JSONL line parses back and carries the event name *)
  let lines =
    String.split_on_char '\n' (String.trim (Journal.to_jsonl j))
  in
  check tint "one line per event" 3 (List.length lines);
  List.iter2
    (fun line (e : Journal.event) ->
      match Json.of_string line with
      | Error msg -> Alcotest.fail ("journal line did not parse: " ^ msg)
      | Ok js ->
          check tstr "ev field" e.Journal.ev_name
            (Option.get
               (Json.to_string_opt (Option.get (Json.member "ev" js)))))
    lines evs

(* ------------------------------------------------------------------ *)
(* The noop handle                                                     *)
(* ------------------------------------------------------------------ *)

let test_noop_records_nothing () =
  let tm = Telemetry.noop in
  let sp = Telemetry.span tm ~args:[ ("k", "v") ] "never" in
  Telemetry.finish tm sp;
  check tbool "noop span is the null span" true (sp == Trace.null_span);
  Telemetry.count tm "c" 1;
  Telemetry.gauge tm "g" 1.;
  Telemetry.observe tm "h" 1.;
  Telemetry.event tm "e" [];
  check tint "no trace events" 0 (Trace.count tm.Telemetry.trace);
  check tint "no metric ops" 0 (Metrics.ops tm.Telemetry.metrics);
  check tint "no journal events" 0 (Journal.count tm.Telemetry.journal);
  check tint "with_span still runs f" 7
    (Telemetry.with_span tm "x" (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Instrumented pipeline                                               *)
(* ------------------------------------------------------------------ *)

(** The journal signature of an event, floats (wall-clock durations)
    excluded: what must be identical between two runs of the same
    workload. *)
let journal_sig (e : Journal.event) =
  ( e.Journal.ev_name,
    List.filter
      (fun (_, f) -> match f with Journal.F _ -> false | _ -> true)
      e.Journal.ev_fields )

let run_instrumented () =
  let g = Lazy.force scenario in
  let tm = Telemetry.create () in
  let fw = Framework.create ~tm g.G.model in
  let rp = Framework.run_route_phase ~subtasks:10 fw ~input_routes:g.G.input_routes in
  let _tp =
    Framework.run_traffic_phase ~subtasks:8 fw ~route_phase:rp ~flows:g.G.flows
  in
  tm

let test_pipeline_determinism () =
  (* two runs of the same fixed workload produce identical counters and
     identical journal signatures (timings differ, of course) *)
  let tm1 = run_instrumented () and tm2 = run_instrumented () in
  let counters tm = (Metrics.snapshot tm.Telemetry.metrics).Metrics.counters in
  check tbool "counters non-empty" true (counters tm1 <> []);
  check tbool "counters identical across runs" true
    (counters tm1 = counters tm2);
  let sigs tm = List.map journal_sig (Journal.events tm.Telemetry.journal) in
  check tbool "journal signatures identical across runs" true
    (sigs tm1 = sigs tm2)

let test_pipeline_metrics_coverage () =
  let g = Lazy.force scenario in
  let tm = run_instrumented () in
  let m = tm.Telemetry.metrics in
  let route = [ ("phase", "route") ] and traffic = [ ("phase", "traffic") ] in
  (* subtask accounting covers both phases *)
  check tbool "route subtasks completed" true
    (Metrics.counter_value m ~labels:route "hoyan_subtasks_completed_total" > 0);
  check tbool "traffic subtasks completed" true
    (Metrics.counter_value m ~labels:traffic "hoyan_subtasks_completed_total"
    > 0);
  check tint "enqueued = dequeued (no failures)"
    (Metrics.counter_value m ~labels:route "hoyan_subtasks_enqueued_total")
    (Metrics.counter_value m ~labels:route "hoyan_subtasks_dequeued_total");
  (* I/O bytes: the route phase reads its input routes *)
  check tbool "io bytes accounted" true
    (Metrics.counter_value m ~labels:route "hoyan_subtask_io_bytes_total"
    >= List.length g.G.input_routes * Hoyan_dist.Storage.bytes_per_route);
  (* fixpoint rounds and EC compression from the simulators *)
  check tbool "fixpoint rounds counted" true
    (Metrics.counter_value m "hoyan_route_fixpoint_rounds_total" > 0);
  let snap = Metrics.snapshot m in
  check tbool "EC compression observed for both phases" true
    (List.exists (fun (n, l, _) -> n = "hoyan_ec_compression_ratio" && l = route)
       snap.Metrics.hists
    && List.exists
         (fun (n, l, _) -> n = "hoyan_ec_compression_ratio" && l = traffic)
         snap.Metrics.hists);
  (* durations are observed once per completed subtask *)
  let _, _, hv =
    List.find
      (fun (n, l, _) -> n = "hoyan_subtask_duration_seconds" && l = route)
      snap.Metrics.hists
  in
  check tint "one duration sample per route subtask"
    (Metrics.counter_value m ~labels:route "hoyan_subtasks_completed_total")
    hv.Metrics.hv_count;
  (* journal carries the subtask lifecycle and the per-round fixpoint log *)
  check tbool "enqueue events" true
    (Journal.find tm.Telemetry.journal "subtask.enqueue" <> []);
  check tbool "done events" true
    (Journal.find tm.Telemetry.journal "subtask.done" <> []);
  check tbool "bgp round events" true
    (Journal.find tm.Telemetry.journal "bgp.round" <> [])

let test_retry_telemetry () =
  let g = Lazy.force scenario in
  let tm = Telemetry.create () in
  let fw = Framework.create ~tm ~fail_prob:0.3 ~seed:11 g.G.model in
  let _ = Framework.run_route_phase ~subtasks:10 fw ~input_routes:g.G.input_routes in
  let resends =
    Metrics.counter_value tm.Telemetry.metrics
      ~labels:[ ("phase", "route") ] "hoyan_monitor_resends_total"
  in
  check tbool "monitor re-sends counted" true (resends > 0);
  (* with crash-only injection every re-send is executed, so the counter
     agrees with the DB's attempt bookkeeping *)
  let extra_attempts =
    Db.all fw.Framework.db
    |> List.fold_left (fun n (_, e) -> n + (Db.attempts e - 1)) 0
  in
  check tint "re-sends = extra attempts" extra_attempts resends;
  check tint "one journal retry event per re-send" resends
    (List.length (Journal.find tm.Telemetry.journal "subtask.retry"));
  (* every retry was preceded by a recorded failure; terminal subtasks
     (if any) add failure events beyond the retries *)
  let failures =
    List.length (Journal.find tm.Telemetry.journal "subtask.failure")
  in
  let terminals =
    List.length (Journal.find tm.Telemetry.journal "subtask.terminal_failure")
  in
  check tint "failures = retries + terminal failures" (resends + terminals)
    failures

let test_verify_request_spans () =
  let g = Lazy.force scenario in
  let base =
    Hoyan_core.Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
      ~monitored_flows:g.G.flows
  in
  let rq =
    {
      Hoyan_core.Verify_request.rq_name = "t";
      rq_plan = Hoyan_config.Change_plan.make "t" ~commands:[];
      rq_intents = [ Hoyan_core.Intents.Route_change "PRE = POST" ];
    }
  in
  let tm = Telemetry.create () in
  let res = Hoyan_core.Verify_request.run ~tm base rq in
  check tbool "request passes" true res.Hoyan_core.Verify_request.vr_ok;
  let span_names =
    List.map
      (fun (e : Trace.event) -> e.Trace.te_name)
      (Trace.events tm.Telemetry.trace)
  in
  List.iter
    (fun phase ->
      check tbool (phase ^ " span present") true (List.mem phase span_names))
    [
      "verify.request"; "verify.lint_gate"; "verify.model_update";
      "verify.route_sim"; "verify.intents";
    ];
  (* the lint gate journals its outcome *)
  match Journal.find tm.Telemetry.journal "lint.gate" with
  | [ e ] ->
      check tbool "gate did not fire" true
        (List.mem ("gated", Journal.B false) e.Journal.ev_fields)
  | _ -> Alcotest.fail "expected exactly one lint.gate event"

let suite =
  [
    ("json round trip", `Quick, test_json_round_trip);
    ("trace round trip", `Quick, test_trace_round_trip);
    ("trace null span", `Quick, test_trace_null_span);
    ("trace summarize", `Quick, test_trace_summarize);
    ("metrics basics + prometheus", `Quick, test_metrics_basics);
    ("metrics domain-shard merge", `Quick, test_metrics_domain_merge);
    ("trace domain-shard merge", `Quick, test_trace_domain_merge);
    ("journal ordering + jsonl", `Quick, test_journal);
    ("noop records nothing", `Quick, test_noop_records_nothing);
    ("pipeline determinism", `Slow, test_pipeline_determinism);
    ("pipeline metrics coverage", `Slow, test_pipeline_metrics_coverage);
    ("retry telemetry", `Slow, test_retry_telemetry);
    ("verify-request spans", `Slow, test_verify_request_spans);
  ]
