(* The cross-device semantic analysis (lib/analysis/semantic.ml): the
   control-plane graph, the propagation closure, and the static intent
   pre-checker.  The soundness contract under test: presence is proved
   only from exact origins (unconditional installs), absence only from
   the over-approximate closure — so every static verdict must agree
   with the full simulation on the same network. *)

open Hoyan_net
module B = Hoyan_workload.Builder
module G = Hoyan_workload.Generator
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module D = Hoyan_analysis.Diagnostics
module Lint = Hoyan_analysis.Lint
module Semantic = Hoyan_analysis.Semantic
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Intents = Hoyan_core.Intents
module VR = Hoyan_core.Verify_request

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let pfx = Prefix.of_string_exn

let small = lazy (G.generate G.small)

let input_of (b : B.t) =
  Lint.make ~topo:(B.topo b) ~render:false (B.configs b)

let graph_of b = Semantic.build (input_of b)

(* --- clean generated corpus: zero semantic false positives ---------- *)

let test_clean_corpus () =
  let g = Lazy.force small in
  let diags =
    Semantic.analyze
      (Lint.make ~topo:g.G.model.Model.topo ~render:false
         g.G.model.Model.configs)
  in
  check
    Alcotest.(list string)
    "clean small corpus has zero semantic findings" []
    (List.map D.to_string diags)

let test_graph_stats () =
  let g = Lazy.force small in
  let graph =
    Semantic.build
      (Lint.make ~topo:g.G.model.Model.topo ~render:false
         g.G.model.Model.configs)
  in
  let s = graph.Semantic.g_stats in
  check tint "every topology device is a graph node"
    (List.length (Topology.devices g.G.model.Model.topo))
    s.Semantic.st_devices;
  check tbool "the corpus has reciprocal BGP sessions" true
    (s.Semantic.st_sessions > 0);
  check tint "no half-configured sessions" 0 s.Semantic.st_half_sessions;
  check tbool "the corpus has IS-IS adjacencies" true
    (s.Semantic.st_isis_adjacencies > 0);
  check tint "no VRF route-target edges" 0 s.Semantic.st_rt_edges

(* --- closure + pre-checker on a hand-built iBGP line ---------------- *)

(* X -- Y -- Z, one AS.  Without a route reflector, a route learned by Y
   from non-client X must not be re-advertised to Z. *)
let ibgp_line ?(rr = false) ?(block_export = false) () =
  let b = B.create () in
  List.iter
    (fun (name, rid) ->
      B.add_device b ~name ~vendor:"vendorA" ~asn:65000
        ~router_id:(B.ip rid) ())
    [ ("X", "1.1.1.1"); ("Y", "2.2.2.2"); ("Z", "3.3.3.3") ];
  let axy, bxy = B.link b ~a:"X" ~b:"Y" ~subnet:(pfx "10.1.0.0/31") () in
  let ayz, byz = B.link b ~a:"Y" ~b:"Z" ~subnet:(pfx "10.2.0.0/31") () in
  if block_export then begin
    B.add_prefix_list b "X"
      (B.prefix_list "P99" [ (Types.Permit, "99.0.0.0/24", None, None) ]);
    B.add_policy b "X"
      (B.policy "BLOCK"
         [
           B.node ~action:(Some Types.Deny)
             ~matches:[ Types.Match_prefix_list "P99" ]
             10;
           B.node 20;
         ])
  end;
  B.bgp_session b ~a:"X" ~b:"Y" ~a_addr:axy ~b_addr:bxy
    ?a_export:(if block_export then Some "BLOCK" else None)
    ();
  (* rr=true makes Z a client of Y, so Y may reflect X's routes on *)
  B.bgp_session b ~a:"Y" ~b:"Z" ~a_addr:ayz ~b_addr:byz ~a_rr_client:rr ();
  b

let input_99 = [ B.input_route ~device:"X" ~prefix:"99.0.0.0/24" () ]
let p99 = pfx "99.0.0.0/24"

let intent ~name ~devices ~expect =
  {
    Semantic.ri_name = name;
    ri_prefix = p99;
    ri_devices = devices;
    ri_expect = expect;
  }

let test_closure () =
  let cl b =
    let g = graph_of b in
    Semantic.closure g ~input_routes:input_99 p99
  in
  let members = cl (ibgp_line ()) in
  check tbool "origin X is in the closure" true (Hashtbl.mem members "X");
  check tbool "direct iBGP peer Y is in the closure" true
    (Hashtbl.mem members "Y");
  check tbool "non-client Z is NOT in the closure (no reflector)" false
    (Hashtbl.mem members "Z");
  (* making Z a route-reflector client of Y opens the Y->Z hop *)
  let members = cl (ibgp_line ~rr:true ()) in
  check tbool "client Z is in the closure under a reflector" true
    (Hashtbl.mem members "Z");
  (* a definite Deny on X's export prunes the very first hop *)
  let members = cl (ibgp_line ~block_export:true ()) in
  check tbool "origin survives its own export policy" true
    (Hashtbl.mem members "X");
  check tbool "denied export prunes Y from the closure" false
    (Hashtbl.mem members "Y")

let test_precheck_verdicts () =
  let g = graph_of (ibgp_line ()) in
  let verdict ri = Semantic.precheck g ~input_routes:input_99 ri in
  check tbool "expected-present at the origin is proved" true
    (verdict (intent ~name:"i1" ~devices:[ "X" ] ~expect:true)
    = Semantic.Proved);
  check tbool "expected-present at reachable non-origin needs simulation"
    true
    (verdict (intent ~name:"i2" ~devices:[ "Y" ] ~expect:true)
    = Semantic.Needs_simulation);
  check tbool "expected-present outside the closure is refuted" true
    (match verdict (intent ~name:"i3" ~devices:[ "Z" ] ~expect:true) with
    | Semantic.Refuted _ -> true
    | _ -> false);
  check tbool "expected-absent at the origin is refuted" true
    (match verdict (intent ~name:"i4" ~devices:[ "X" ] ~expect:false) with
    | Semantic.Refuted _ -> true
    | _ -> false);
  check tbool "expected-absent outside the closure is proved" true
    (verdict (intent ~name:"i5" ~devices:[ "Z" ] ~expect:false)
    = Semantic.Proved);
  check tbool "expected-absent inside the closure needs simulation" true
    (verdict (intent ~name:"i6" ~devices:[ "Y" ] ~expect:false)
    = Semantic.Needs_simulation);
  (* the batch API returns the same verdicts, in order *)
  let ris =
    [
      intent ~name:"i1" ~devices:[ "X" ] ~expect:true;
      intent ~name:"i3" ~devices:[ "Z" ] ~expect:true;
      intent ~name:"i2" ~devices:[ "Y" ] ~expect:true;
    ]
  in
  let batch = Semantic.precheck_batch g ~input_routes:input_99 ris in
  check tint "batch preserves length" 3 (List.length batch);
  List.iter
    (fun (ri, v) ->
      check tbool
        (Printf.sprintf "batch verdict for %s matches single"
           ri.Semantic.ri_name)
        true
        (v = verdict ri))
    batch

(* --- static verdicts agree with the full simulation ----------------- *)

let sim_present b ~device =
  let model = B.build b in
  let rib = (Route_sim.run model ~input_routes:input_99 ()).Route_sim.rib in
  List.exists
    (fun (r : Route.t) ->
      String.equal r.Route.device device && Prefix.equal r.Route.prefix p99)
    rib

let test_sim_crosscheck () =
  (* every (network, device) the pre-checker gives a definite verdict on
     must agree with what the simulator actually computes *)
  List.iter
    (fun (label, b) ->
      let g = graph_of b in
      List.iter
        (fun dev ->
          let sim = sim_present b ~device:dev in
          (match
             Semantic.precheck g ~input_routes:input_99
               (intent ~name:("present-" ^ dev) ~devices:[ dev ]
                  ~expect:true)
           with
          | Semantic.Proved ->
              check tbool
                (Printf.sprintf "%s: proved-present on %s holds in sim"
                   label dev)
                true sim
          | Semantic.Refuted _ ->
              check tbool
                (Printf.sprintf "%s: refuted-present on %s holds in sim"
                   label dev)
                false sim
          | Semantic.Needs_simulation -> ());
          match
            Semantic.precheck g ~input_routes:input_99
              (intent ~name:("absent-" ^ dev) ~devices:[ dev ]
                 ~expect:false)
          with
          | Semantic.Proved ->
              check tbool
                (Printf.sprintf "%s: proved-absent on %s holds in sim"
                   label dev)
                false sim
          | Semantic.Refuted _ ->
              check tbool
                (Printf.sprintf "%s: refuted-absent on %s holds in sim"
                   label dev)
                true sim
          | Semantic.Needs_simulation -> ())
        [ "X"; "Y"; "Z" ])
    [
      ("plain", ibgp_line ());
      ("reflector", ibgp_line ~rr:true ());
      ("blocked", ibgp_line ~block_export:true ());
    ]

(* --- the pre-checker inside Verify_request -------------------------- *)

let test_verify_request_skip () =
  let g = Lazy.force small in
  let base =
    Hoyan_core.Preprocess.prepare g.G.model
      ~monitored_routes:g.G.input_routes ~monitored_flows:g.G.flows
  in
  let border =
    (* any device present in both configs and topology *)
    match Types.Smap.min_binding_opt g.G.model.Model.configs with
    | Some (d, _) -> d
    | None -> Alcotest.fail "corpus has no devices"
  in
  (* 203.0.113.0/24 is originated nowhere in the generated corpus, so
     both intents resolve statically: one refuted, one proved *)
  let originless = pfx "203.0.113.0/24" in
  let refuted =
    Intents.Route_reach
      { rr_prefix = originless; rr_devices = [ border ]; rr_expect = true }
  in
  let proved =
    Intents.Route_reach
      { rr_prefix = originless; rr_devices = [ border ]; rr_expect = false }
  in
  let rq =
    {
      VR.rq_name = "static";
      rq_plan = Cp.make "noop";
      rq_intents = [ refuted; proved ];
    }
  in
  let r = VR.run base rq in
  check tbool "all intents resolved: simulation skipped" true
    r.VR.vr_sim_skipped;
  check tint "skipped run computes no RIB" 0 (List.length r.VR.vr_updated_rib);
  check tint "both intents carry a verdict" 2 (List.length r.VR.vr_precheck);
  check tint "the refuted intent is the one violation" 1
    (List.length r.VR.vr_violations);
  check tbool "the violation names the refuted intent" true
    (String.equal (List.hd r.VR.vr_violations).Intents.v_intent
       (Intents.to_string refuted));
  check tbool "request fails" false r.VR.vr_ok;
  (* cross-check: with the pre-checker off, the full simulation reaches
     the same verdict on both intents *)
  let r_sim = VR.run ~precheck:false base rq in
  check tbool "precheck off: simulation runs" false r_sim.VR.vr_sim_skipped;
  check tbool "precheck off: no verdicts recorded" true
    (r_sim.VR.vr_precheck = []);
  check tint "simulation also finds exactly one violation" 1
    (List.length r_sim.VR.vr_violations);
  check tbool "simulation violates the same intent" true
    (String.equal
       (List.hd r_sim.VR.vr_violations).Intents.v_intent
       (Intents.to_string refuted));
  (* a mixed request must still simulate the unresolved intent *)
  let needs_sim =
    match g.G.input_routes with
    | (r : Route.t) :: _ ->
        Intents.Route_reach
          {
            rr_prefix = r.Route.prefix;
            rr_devices = [ border ];
            rr_expect = true;
          }
    | [] -> Alcotest.fail "corpus has no input routes"
  in
  let r =
    VR.run base { rq with VR.rq_intents = [ refuted; needs_sim ] }
  in
  check tbool "unresolved intent forces simulation" false r.VR.vr_sim_skipped;
  check tbool "mixed run still computed a RIB" true
    (r.VR.vr_updated_rib <> [])

(* --- exit-code contract and baselines ------------------------------- *)

let err () = D.make ~code:"HOY020" ~device:"X" ~obj:"peer 10.0.0.1" "one way"
let warn () = D.make ~code:"HOY026" ~device:"Y" ~obj:"static" "dangling"

let test_exit_code () =
  check tint "clean is 0" 0 (D.exit_code []);
  check tint "a warning is 1" 1 (D.exit_code [ warn () ]);
  check tint "warnings under the budget are 0" 0
    (D.exit_code ~max_warnings:1 [ warn () ]);
  check tint "an error is 2" 2 (D.exit_code [ err () ]);
  check tint "errors trump the warning budget" 2
    (D.exit_code ~max_warnings:99 [ err (); warn () ])

let test_baseline_roundtrip () =
  let ds = [ err (); warn () ] in
  let recorded = D.parse_baseline (D.to_baseline ds) in
  check tint "baseline records each finding once" 2 (List.length recorded);
  check
    Alcotest.(list string)
    "recorded findings are fully suppressed" []
    (List.map D.to_string (D.apply_baseline ~baseline:recorded ds));
  (* a new finding on another device survives the baseline *)
  let fresh = D.make ~code:"HOY020" ~device:"Z" ~obj:"peer 10.0.0.9" "new" in
  check tint "new findings are not suppressed" 1
    (List.length (D.apply_baseline ~baseline:recorded (fresh :: ds)));
  check tint "suppressed-and-new exits on the new error" 2
    (D.exit_code (D.apply_baseline ~baseline:recorded (fresh :: ds)))

let suite =
  [
    Alcotest.test_case "clean corpus: zero semantic findings" `Quick
      test_clean_corpus;
    Alcotest.test_case "control-plane graph statistics" `Quick
      test_graph_stats;
    Alcotest.test_case "propagation closure on an iBGP line" `Quick
      test_closure;
    Alcotest.test_case "pre-checker verdicts" `Quick test_precheck_verdicts;
    Alcotest.test_case "static verdicts agree with simulation" `Quick
      test_sim_crosscheck;
    Alcotest.test_case "pre-checker wired into Verify_request" `Quick
      test_verify_request_skip;
    Alcotest.test_case "lint exit-code contract" `Quick test_exit_code;
    Alcotest.test_case "baseline suppression round-trip" `Quick
      test_baseline_roundtrip;
  ]
