(* Test aggregator: every module contributes a suite. *)

let () =
  Alcotest.run "hoyan"
    [
      ("net", Test_net.suite);
      ("regex", Test_regex.suite);
      ("config", Test_config.suite);
      ("bgp-sim", Test_bgp.suite);
      ("protocols", Test_proto.suite);
      ("rcl", Test_rcl.suite);
      ("dist", Test_dist.suite);
      ("infra", Test_infra.suite);
      ("telemetry", Test_telemetry.suite);
      ("pipeline", Test_pipeline.suite);
      ("diagnosis", Test_diag.suite);
      ("scenarios", Test_scenarios.suite);
      ("workload", Test_workload.suite);
      ("analysis", Test_analysis.suite);
      ("semantic", Test_semantic.suite);
      ("differential", Test_differential.suite);
      ("properties", Test_props.suite);
      ("intern", Test_intern.suite);
      ("server", Test_server.suite);
      ("kfailure", Test_kfailure.suite);
      ("incremental", Test_incremental.suite);
    ]
