(* The differential change-impact pass (lib/analysis/differential.ml):
   the semantic config diff, the HOY030..HOY037 plan-risk checks, the
   blast-radius engine, and the relational carry-over rule.

   The soundness contract under test: the statically computed dirty
   region over-approximates — every (prefix, device) whose simulated
   route state differs between the base and the patched run must be
   inside it, so a carried-over intent verdict can never be wrong. *)

open Hoyan_net
module G = Hoyan_workload.Generator
module Defects = Hoyan_workload.Defects
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Printer = Hoyan_config.Printer
module D = Hoyan_analysis.Diagnostics
module Lint = Hoyan_analysis.Lint
module Differential = Hoyan_analysis.Differential
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Smap = Types.Smap
module Intents = Hoyan_core.Intents
module Preprocess = Hoyan_core.Preprocess
module VR = Hoyan_core.Verify_request

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let pfx = Prefix.of_string_exn

let qtest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4243 |]) t

let small = lazy (G.generate G.small)

let input_of (g : G.t) =
  Lint.make ~topo:g.G.model.Model.topo ~render:false g.G.model.Model.configs

let devices_of (g : G.t) =
  List.map fst (Smap.bindings g.G.model.Model.configs)

let has_code code diags =
  List.exists (fun (d : D.t) -> String.equal d.D.d_code code) diags

(* --- the empty plan is a semantic no-op end to end ------------------ *)

let test_empty_plan () =
  let g = Lazy.force small in
  let d = Differential.diff (input_of g) (Cp.make "empty") in
  check tbool "empty plan classifies as no-op" true
    (d.Differential.df_class = Differential.No_op);
  check tint "empty plan has no device diffs" 0
    (List.length d.Differential.df_devices);
  check
    Alcotest.(list string)
    "empty plan yields no diagnostics" []
    (List.map D.to_string
       (Differential.check ~input_routes:g.G.input_routes d));
  let im = Differential.impact d ~input_routes:g.G.input_routes in
  check tint "empty plan dirties no prefix" 0
    (Trie.Dual.cardinal im.Differential.im_prefixes);
  check tint "empty plan dirties no device" 0
    (List.length im.Differential.im_devices)

let prop_empty_plan_carries_everything =
  let g = Lazy.force small in
  let d = Differential.diff (input_of g) (Cp.make "empty") in
  let prefixes =
    Array.of_list
      (List.sort_uniq Prefix.compare
         (List.map (fun (r : Route.t) -> r.Route.prefix) g.G.input_routes))
  in
  QCheck.Test.make ~name:"empty plan: every prefix carries over" ~count:100
    (QCheck.make QCheck.Gen.(int_bound (Array.length prefixes - 1)))
    (fun i ->
      Differential.carries_over d ~input_routes:g.G.input_routes prefixes.(i))

(* --- diff base base = empty: restating config is a semantic no-op --- *)

let prop_restatement_is_noop =
  let g = Lazy.force small in
  let input = input_of g in
  let devices = Array.of_list (devices_of g) in
  QCheck.Test.make ~name:"re-stating a device's own config diffs to nothing"
    ~count:(Array.length devices)
    (QCheck.make QCheck.Gen.(int_bound (Array.length devices - 1)))
    (fun i ->
      let dev = devices.(i) in
      let cfg = Smap.find dev input.Lint.li_configs in
      let plan =
        Cp.make "restate" ~commands:[ (dev, Printer.print cfg) ]
      in
      let d = Differential.diff input plan in
      let dd = List.hd d.Differential.df_devices in
      dd.Differential.dd_changes = []
      && d.Differential.df_class = Differential.No_op
      (* a textually non-empty no-op block is exactly HOY030 *)
      && has_code "HOY030" (Differential.check d))

(* --- applying the same block twice adds nothing the second time ----- *)

let test_adds_idempotent () =
  let g = Lazy.force small in
  let input = input_of g in
  let dev =
    fst
      (List.hd
         (List.filter
            (fun (_, (c : Types.t)) -> c.Types.dc_vendor = "vendorA")
            (Smap.bindings input.Lint.li_configs)))
  in
  let asn = (Smap.find dev input.Lint.li_configs).Types.dc_bgp.Types.bgp_asn in
  let block =
    Printf.sprintf
      "ip prefix-list DIFF_T seq 5 permit 203.0.113.0/24 le 32\n\
       router bgp %d\n\
      \ network 198.51.100.0/24\n"
      asn
  in
  let plan dev = Cp.make "twice" ~commands:[ (dev, block) ] in
  let d1 = Differential.diff input (plan dev) in
  let dd1 = List.hd d1.Differential.df_devices in
  check tbool "first application changes the config" true
    (dd1.Differential.dd_changes <> []);
  (* re-apply on top of the patched input: nothing left to add *)
  let d2 = Differential.diff d1.Differential.df_patched_input (plan dev) in
  let dd2 = List.hd d2.Differential.df_devices in
  check
    Alcotest.(list string)
    "second application is a semantic no-op" []
    (List.map
       (fun (c : Differential.stanza_change) ->
         Differential.stanza_to_string c.Differential.sc_stanza)
       dd2.Differential.dd_changes)

(* --- HOY030..HOY037: every injected defect class is detected -------- *)

let test_injection_classes () =
  let g = Lazy.force small in
  List.iter
    (fun cls ->
      let inj = Defects.inject g cls in
      let diags = Defects.detect inj in
      check tbool
        (Printf.sprintf "%s (%s) fires" cls inj.Defects.inj_code)
        true
        (has_code inj.Defects.inj_code diags))
    [
      "plan-semantic-noop";
      "plan-wrong-dialect";
      "plan-edits-dead-term";
      "plan-widens-ebgp-transit";
      "plan-breaks-session";
      "plan-removes-origination";
      "plan-withdraws-unknown-prefix";
      "plan-impact-summary";
    ]

let test_clean_plan_quiet () =
  (* a genuinely effective, well-formed plan raises no plan-risk warnings
     apart from the informational blast-radius summary *)
  let g = Lazy.force small in
  let input = input_of g in
  let dev =
    fst
      (List.hd
         (List.filter
            (fun (_, (c : Types.t)) -> c.Types.dc_vendor = "vendorA")
            (Smap.bindings input.Lint.li_configs)))
  in
  let asn = (Smap.find dev input.Lint.li_configs).Types.dc_bgp.Types.bgp_asn in
  let plan =
    Cp.make "clean"
      ~commands:
        [ (dev, Printf.sprintf "router bgp %d\n network 198.51.100.0/24\n" asn) ]
  in
  let d = Differential.diff input plan in
  let diags = Differential.check ~input_routes:g.G.input_routes d in
  check
    Alcotest.(list string)
    "only the HOY037 summary fires"
    [ "HOY037" ]
    (List.map (fun (dg : D.t) -> dg.D.d_code) diags)

(* --- soundness: simulated verdict changes lie inside the dirty region *)

module PS = Set.Make (struct
  type t = string * string (* device, prefix *)

  let compare = compare
end)

let rib_presence (rib : Route.t list) : PS.t =
  List.fold_left
    (fun s (r : Route.t) ->
      PS.add (r.Route.device, Prefix.to_string r.Route.prefix) s)
    PS.empty rib

(* Simulate base and patched, then demand that every prefix whose
   presence on any device changed is statically marked affected. *)
let assert_sound (g : G.t) (plan : Cp.t) =
  let input = input_of g in
  let d = Differential.diff input plan in
  let base_rib =
    (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib
  in
  let patched_model, _ = Model.apply_change_plan g.G.model plan in
  let surviving =
    List.filter
      (fun (r : Route.t) ->
        not (List.exists (Prefix.equal r.Route.prefix) plan.Cp.cp_withdraw))
      g.G.input_routes
  in
  let patched_rib =
    (Route_sim.run patched_model ~input_routes:surviving
       ~new_routes:plan.Cp.cp_new_routes ())
      .Route_sim.rib
  in
  let b = rib_presence base_rib and p = rib_presence patched_rib in
  let changed = PS.union (PS.diff b p) (PS.diff p b) in
  PS.iter
    (fun (dev, ps) ->
      let affected =
        Differential.prefix_affected d ~input_routes:g.G.input_routes
          (pfx ps)
      in
      if not affected then
        Alcotest.failf
          "UNSOUND: %s's presence changed on %s under plan %s but the \
           differential pass carried it over"
          ps dev plan.Cp.cp_name)
    changed;
  changed

let hand_plans (g : G.t) : Cp.t list =
  let input = input_of g in
  let configs = input.Lint.li_configs in
  let vendor_a =
    List.filter
      (fun (_, (c : Types.t)) ->
        c.Types.dc_vendor = "vendorA"
        && c.Types.dc_bgp.Types.bgp_neighbors <> [])
      (Smap.bindings configs)
  in
  let dev, dev_cfg = List.hd vendor_a in
  let asn = dev_cfg.Types.dc_bgp.Types.bgp_asn in
  let some_nb =
    (List.hd dev_cfg.Types.dc_bgp.Types.bgp_neighbors).Types.nb_addr
  in
  let first_prefix =
    (List.hd g.G.input_routes).Route.prefix
  in
  [
    Cp.make "noop" ~commands:[ (dev, "! nothing to see here\n") ];
    Cp.make "del-neighbor"
      ~commands:
        [ (dev, Printf.sprintf "no router bgp neighbor %s\n"
             (Ip.to_string some_nb)) ];
    Cp.make "add-network"
      ~commands:
        [ (dev, Printf.sprintf "router bgp %d\n network 198.51.100.0/24\n" asn) ];
    Cp.make "open-sessions"
      ~commands:
        [
          ( dev,
            Printf.sprintf
              "router bgp %d\n\
              \ neighbor 192.0.2.201 remote-as 65201\n\
              \ neighbor 192.0.2.202 remote-as 65202\n"
              asn );
        ];
    Cp.make "withdraw" ~withdraw:[ first_prefix ];
    Cp.make "announce"
      ~new_routes:
        [ Route.make ~device:dev ~prefix:(pfx "198.51.100.0/24") () ];
  ]

let test_soundness_hand_plans () =
  let g = Lazy.force small in
  let any_changed = ref false in
  List.iter
    (fun plan ->
      let changed = assert_sound g plan in
      if not (PS.is_empty changed) then any_changed := true)
    (hand_plans g);
  (* the cross-check only means something if some plan really moved the
     simulated state *)
  check tbool "at least one hand plan changed simulated state" true
    !any_changed

let prop_soundness_generated =
  let g = Lazy.force small in
  let input = input_of g in
  let devices =
    Array.of_list
      (List.filter
         (fun dev ->
           (Smap.find dev input.Lint.li_configs).Types.dc_bgp
             .Types.bgp_neighbors
           <> [])
         (devices_of g))
  in
  let prefixes =
    Array.of_list
      (List.sort_uniq Prefix.compare
         (List.map (fun (r : Route.t) -> r.Route.prefix) g.G.input_routes))
  in
  let gen = QCheck.Gen.(pair (int_bound (Array.length devices - 1)) (pair (int_bound 3) (int_bound (Array.length prefixes - 1)))) in
  QCheck.Test.make ~name:"soundness holds over generated plans" ~count:12
    (QCheck.make gen)
    (fun (di, (ti, pi)) ->
      let dev = devices.(di) in
      let asn =
        (Smap.find dev input.Lint.li_configs).Types.dc_bgp.Types.bgp_asn
      in
      let plan =
        match ti with
        | 0 -> Cp.make "q-noop" ~commands:[ (dev, "! generated no-op\n") ]
        | 1 ->
            Cp.make "q-network"
              ~commands:
                [
                  ( dev,
                    Printf.sprintf "router bgp %d\n network 198.51.100.0/24\n"
                      asn );
                ]
        | 2 -> Cp.make "q-withdraw" ~withdraw:[ prefixes.(pi) ]
        | _ ->
            let nb =
              (Smap.find dev input.Lint.li_configs).Types.dc_bgp
                .Types.bgp_neighbors
            in
            Cp.make "q-del-neighbor"
              ~commands:
                [
                  ( dev,
                    Printf.sprintf "no router bgp neighbor %s\n"
                      (Ip.to_string (List.hd nb).Types.nb_addr) );
                ]
      in
      ignore (assert_sound g plan);
      true)

(* --- Verify_request ?diff: carry-over wiring ------------------------ *)

let base =
  lazy
    (let g = Lazy.force small in
     Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
       ~monitored_flows:g.G.flows)

let reach_intent (r : Route.t) =
  Intents.Route_reach
    {
      rr_prefix = r.Route.prefix;
      rr_devices = [ r.Route.device ];
      rr_expect = true;
    }

let test_vr_diff_noop_carries_all () =
  let g = Lazy.force small in
  let b = Lazy.force base in
  (* a vendor-A device: the "!" comment syntax below is its dialect *)
  let dev =
    fst
      (List.hd
         (List.filter
            (fun (_, (c : Types.t)) -> c.Types.dc_vendor = "vendorA")
            (Smap.bindings g.G.model.Model.configs)))
  in
  (* intents over the pre-processed (rule-filtered) inputs: present in
     the base run by construction *)
  let intents =
    [
      reach_intent (List.nth b.Preprocess.b_input_routes 0);
      reach_intent (List.nth b.Preprocess.b_input_routes 1);
    ]
  in
  let rq =
    {
      VR.rq_name = "diff-noop";
      rq_plan = Cp.make "noop" ~commands:[ (dev, "! maintenance comment\n") ];
      rq_intents = intents;
    }
  in
  let r = VR.run ~diff:true b rq in
  check tbool "plan classified no-op" true
    (r.VR.vr_diff_class = Some Differential.No_op);
  check tint "both intents carried over" 2 (List.length r.VR.vr_carried);
  check tbool "no fixpoint ran" true r.VR.vr_sim_skipped;
  check tbool "carried verdicts hold (base run passes them)" true r.VR.vr_ok

let test_vr_diff_partitions () =
  let g = Lazy.force small in
  let b = Lazy.force base in
  let r0 = List.nth g.G.input_routes 0 in
  (* pick a second monitored route on a different prefix *)
  let r1 =
    List.find
      (fun (r : Route.t) -> not (Prefix.equal r.Route.prefix r0.Route.prefix))
      g.G.input_routes
  in
  let rq =
    {
      VR.rq_name = "diff-withdraw";
      rq_plan = Cp.make "withdraw" ~withdraw:[ r0.Route.prefix ];
      rq_intents = [ reach_intent r0; reach_intent r1 ];
    }
  in
  let r = VR.run ~diff:true b rq in
  check tbool "withdrawal is a propagating change" true
    (r.VR.vr_diff_class = Some Differential.Propagating);
  check tbool "the withdrawn prefix's intent is NOT carried" false
    (List.exists
       (fun i ->
         match i with
         | Intents.Route_reach { rr_prefix; _ } ->
             Prefix.equal rr_prefix r0.Route.prefix
         | _ -> false)
       r.VR.vr_carried);
  (* consistency: whatever was carried must be exactly what the
     differential pass says carries over *)
  let input = input_of g in
  let d = Differential.diff input rq.VR.rq_plan in
  List.iter
    (fun i ->
      match i with
      | Intents.Route_reach { rr_prefix; _ } ->
          check tbool "carried intent is outside the dirty region" true
            (Differential.carries_over d ~input_routes:g.G.input_routes
               rr_prefix)
      | _ -> ())
    r.VR.vr_carried

let suite =
  [
    Alcotest.test_case "empty plan is a no-op" `Quick test_empty_plan;
    qtest prop_empty_plan_carries_everything;
    qtest prop_restatement_is_noop;
    Alcotest.test_case "re-applying a block is idempotent" `Quick
      test_adds_idempotent;
    Alcotest.test_case "HOY030-HOY037 injection classes fire" `Quick
      test_injection_classes;
    Alcotest.test_case "clean effective plan stays quiet" `Quick
      test_clean_plan_quiet;
    Alcotest.test_case "soundness: hand-written plans" `Slow
      test_soundness_hand_plans;
    qtest prop_soundness_generated;
    Alcotest.test_case "VR ?diff: no-op carries everything" `Quick
      test_vr_diff_noop_carries_all;
    Alcotest.test_case "VR ?diff: affected/carried partition" `Quick
      test_vr_diff_partitions;
  ]
