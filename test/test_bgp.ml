(* End-to-end tests of the BGP engine, IS-IS, the model compiler, and the
   route/traffic simulators on small hand-built networks. *)

open Hoyan_net
module B = Hoyan_workload.Builder
module Types = Hoyan_config.Types
module Bgp = Hoyan_proto.Bgp
module Isis = Hoyan_proto.Isis
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let pfx = Prefix.of_string_exn

(* A simple line: EXT(input) - R1 --ebgp-- R2 --ebgp-- R3. *)
let line_network () =
  let b = B.create () in
  B.add_device b ~name:"R1" ~vendor:"vendorA" ~asn:65001
    ~router_id:(B.ip "1.1.1.1") ();
  B.add_device b ~name:"R2" ~vendor:"vendorA" ~asn:65002
    ~router_id:(B.ip "2.2.2.2") ();
  B.add_device b ~name:"R3" ~vendor:"vendorB" ~asn:65003
    ~router_id:(B.ip "3.3.3.3") ();
  let a12, b12 = B.link b ~a:"R1" ~b:"R2" ~subnet:(pfx "10.12.0.0/31") () in
  let a23, b23 = B.link b ~a:"R2" ~b:"R3" ~subnet:(pfx "10.23.0.0/31") () in
  B.bgp_session b ~a:"R1" ~b:"R2" ~a_addr:a12 ~b_addr:b12 ();
  (* R3 is vendor B, which drops eBGP updates without an explicit policy
     (the "missing route policy" VSB) — so its session carries pass-all
     policies, as a real VRP/XR-style deployment would. *)
  B.add_policy b "R3" (B.policy "PASS" [ B.node 10 ]);
  B.bgp_session b ~a:"R2" ~b:"R3" ~a_addr:a23 ~b_addr:b23 ~b_import:"PASS"
    ~b_export:"PASS" ();
  b

let find_routes rib ~device ~prefix =
  List.filter
    (fun (r : Route.t) ->
      String.equal r.Route.device device
      && Prefix.equal r.Route.prefix (pfx prefix)
      && r.Route.proto = Route.Bgp)
    rib

let test_linear_propagation () =
  let b = line_network () in
  let model = B.build b in
  let input =
    [ B.input_route ~device:"R1" ~prefix:"99.0.0.0/24" ~as_path:[ 7018 ] () ]
  in
  let res = Route_sim.run model ~input_routes:input () in
  (* the route must appear on all three devices *)
  List.iter
    (fun dev ->
      check tbool
        (Printf.sprintf "route on %s" dev)
        true
        (find_routes res.Route_sim.rib ~device:dev ~prefix:"99.0.0.0/24" <> []))
    [ "R1"; "R2"; "R3" ];
  (* AS path grows along the way *)
  let r3 =
    List.hd (find_routes res.Route_sim.rib ~device:"R3" ~prefix:"99.0.0.0/24")
  in
  check tstr "as path at R3" "65002 65001 7018"
    (As_path.to_string r3.Route.as_path);
  (* next hop at R3 is R2's link address *)
  check tstr "nexthop at R3" "10.23.0.0" (Route.nexthop_string r3);
  check tbool "fixpoint quick" true
    (res.Route_sim.bgp_stats.Bgp.st_rounds <= 10)

let test_as_loop_prevention () =
  let b = line_network () in
  let model = B.build b in
  (* input already carries R3's ASN: R3 must reject it *)
  let input =
    [ B.input_route ~device:"R1" ~prefix:"99.0.0.0/24" ~as_path:[ 65003; 7018 ]
        () ]
  in
  let res = Route_sim.run model ~input_routes:input () in
  check tbool "R2 has it" true
    (find_routes res.Route_sim.rib ~device:"R2" ~prefix:"99.0.0.0/24" <> []);
  check tbool "R3 rejects (loop)" true
    (find_routes res.Route_sim.rib ~device:"R3" ~prefix:"99.0.0.0/24" = [])

let test_import_policy_blocks () =
  let b = line_network () in
  (* R2 blocks routes with community 666:666 from R1 *)
  B.add_community_list b "R2"
    { Types.cl_name = "BLOCK";
      cl_entries =
        [ { Types.ce_seq = 5; ce_action = Types.Permit;
            ce_members = [ B.comm "666:666" ] } ] };
  B.add_policy b "R2"
    (B.policy "IMP"
       [
         B.node 10 ~action:(Some Types.Deny)
           ~matches:[ Types.Match_community_list "BLOCK" ];
         B.node 20;
       ]);
  B.update_config b "R2" (fun cfg ->
      let nbs =
        List.map
          (fun (nb : Types.neighbor) ->
            if Ip.equal nb.Types.nb_addr (B.ip "10.12.0.0") then
              { nb with Types.nb_import = Some "IMP" }
            else nb)
          cfg.Types.dc_bgp.Types.bgp_neighbors
      in
      { cfg with Types.dc_bgp = { cfg.Types.dc_bgp with Types.bgp_neighbors = nbs } });
  let model = B.build b in
  let tainted =
    B.input_route ~device:"R1" ~prefix:"66.0.0.0/24" ~communities:[ "666:666" ]
      ~as_path:[ 7018 ] ()
  in
  let clean =
    B.input_route ~device:"R1" ~prefix:"77.0.0.0/24" ~as_path:[ 7018 ] ()
  in
  let res = Route_sim.run model ~input_routes:[ tainted; clean ] () in
  check tbool "tainted blocked at R2" true
    (find_routes res.Route_sim.rib ~device:"R2" ~prefix:"66.0.0.0/24" = []);
  check tbool "clean passes" true
    (find_routes res.Route_sim.rib ~device:"R2" ~prefix:"77.0.0.0/24" <> [])

(* iBGP square with a route reflector:
        RR
       /  \
      C1    C2     (clients, same AS)
   C1 gets an external input; C2 must learn it via RR. *)
let test_route_reflection () =
  let b = B.create () in
  B.add_device b ~name:"RR" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "10.255.0.1") ~role:Topology.Rr ();
  B.add_device b ~name:"C1" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "10.255.0.2") ();
  B.add_device b ~name:"C2" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "10.255.0.3") ();
  ignore (B.link b ~a:"RR" ~b:"C1" ~subnet:(pfx "10.0.1.0/31") ());
  ignore (B.link b ~a:"RR" ~b:"C2" ~subnet:(pfx "10.0.2.0/31") ());
  B.ibgp_loopback_session b ~a:"RR" ~b:"C1" ~a_rr_client:true ();
  B.ibgp_loopback_session b ~a:"RR" ~b:"C2" ~a_rr_client:true ();
  let model = B.build b in
  let input =
    [ B.input_route ~device:"C1" ~prefix:"99.0.0.0/24" ~nexthop:"10.255.0.2"
        ~as_path:[ 7018 ] () ]
  in
  let res = Route_sim.run model ~input_routes:input () in
  check tbool "RR learned" true
    (find_routes res.Route_sim.rib ~device:"RR" ~prefix:"99.0.0.0/24" <> []);
  check tbool "C2 learned via reflection" true
    (find_routes res.Route_sim.rib ~device:"C2" ~prefix:"99.0.0.0/24" <> []);
  (* without the client flag, C2 must NOT learn it *)
  let b2 = B.create () in
  B.add_device b2 ~name:"RR" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "10.255.0.1") ();
  B.add_device b2 ~name:"C1" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "10.255.0.2") ();
  B.add_device b2 ~name:"C2" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "10.255.0.3") ();
  ignore (B.link b2 ~a:"RR" ~b:"C1" ~subnet:(pfx "10.0.1.0/31") ());
  ignore (B.link b2 ~a:"RR" ~b:"C2" ~subnet:(pfx "10.0.2.0/31") ());
  B.ibgp_loopback_session b2 ~a:"RR" ~b:"C1" ();
  B.ibgp_loopback_session b2 ~a:"RR" ~b:"C2" ();
  let res2 =
    Route_sim.run (B.build b2) ~input_routes:input ()
  in
  check tbool "no reflection without client flag" true
    (find_routes res2.Route_sim.rib ~device:"C2" ~prefix:"99.0.0.0/24" = [])

let test_local_pref_decision () =
  (* R3 hears 99/24 via two paths; an import policy raises local-pref on
     the longer one, which must then win. *)
  let b = B.create () in
  B.add_device b ~name:"S" ~vendor:"vendorA" ~asn:65100
    ~router_id:(B.ip "9.9.9.9") ();
  B.add_device b ~name:"L" ~vendor:"vendorA" ~asn:65200
    ~router_id:(B.ip "8.8.8.8") ();
  B.add_device b ~name:"D" ~vendor:"vendorA" ~asn:65300
    ~router_id:(B.ip "7.7.7.7") ();
  let s_d, d_s = B.link b ~a:"S" ~b:"D" ~subnet:(pfx "10.1.0.0/31") () in
  let l_d, d_l = B.link b ~a:"L" ~b:"D" ~subnet:(pfx "10.2.0.0/31") () in
  B.add_policy b "D"
    (B.policy "PREF_L" [ B.node 10 ~sets:[ Types.Set_local_pref 300 ] ]);
  B.bgp_session b ~a:"S" ~b:"D" ~a_addr:s_d ~b_addr:d_s ();
  B.bgp_session b ~a:"L" ~b:"D" ~a_addr:l_d ~b_addr:d_l ~b_import:"PREF_L"
    ();
  let model = B.build b in
  let inputs =
    [
      B.input_route ~device:"S" ~prefix:"99.0.0.0/24" ~as_path:[ 1 ] ();
      B.input_route ~device:"L" ~prefix:"99.0.0.0/24" ~as_path:[ 1; 2; 3 ] ();
    ]
  in
  let res = Route_sim.run model ~input_routes:inputs () in
  let d_routes = find_routes res.Route_sim.rib ~device:"D" ~prefix:"99.0.0.0/24" in
  check tint "two candidates at D" 2 (List.length d_routes);
  let best =
    List.find (fun (r : Route.t) -> r.Route.route_type = Route.Best) d_routes
  in
  (* best must be the one from L (lp 300) despite the longer AS path *)
  check tint "best has lp 300" 300 (Route.local_pref best);
  check tbool "best from L" true (best.Route.peer = Some "L")

let test_aggregation () =
  let b = line_network () in
  B.update_config b "R2" (fun cfg ->
      { cfg with
        Types.dc_bgp =
          { cfg.Types.dc_bgp with
            Types.bgp_aggregates =
              [ { Types.ag_prefix = pfx "99.0.0.0/16"; ag_as_set = false;
                  ag_summary_only = true; ag_vrf = Route.default_vrf } ] } });
  let model = B.build b in
  let input =
    [ B.input_route ~device:"R1" ~prefix:"99.0.1.0/24" ~as_path:[ 7018 ] () ]
  in
  let res = Route_sim.run model ~input_routes:input () in
  (* the aggregate appears at R2 and propagates to R3 *)
  check tbool "aggregate at R2" true
    (find_routes res.Route_sim.rib ~device:"R2" ~prefix:"99.0.0.0/16" <> []);
  check tbool "aggregate at R3" true
    (find_routes res.Route_sim.rib ~device:"R3" ~prefix:"99.0.0.0/16" <> []);
  (* summary-only suppresses the component towards R3 *)
  check tbool "component suppressed at R3" true
    (find_routes res.Route_sim.rib ~device:"R3" ~prefix:"99.0.1.0/24" = [])

let test_aggregation_vsb_common_prefix () =
  (* vendor A emits an empty AS path on the aggregate; vendor B carries the
     common prefix (Table 5: "common AS path prefix"). *)
  let run vendor =
    let b = B.create () in
    B.add_device b ~name:"AGG" ~vendor ~asn:65001 ~router_id:(B.ip "1.1.1.1") ();
    B.add_device b ~name:"PEER" ~vendor:"vendorA" ~asn:65002
      ~router_id:(B.ip "2.2.2.2") ();
    let a, p = B.link b ~a:"AGG" ~b:"PEER" ~subnet:(pfx "10.0.0.0/31") () in
    B.bgp_session b ~a:"AGG" ~b:"PEER" ~a_addr:a ~b_addr:p ();
    B.update_config b "AGG" (fun cfg ->
        { cfg with
          Types.dc_bgp =
            { cfg.Types.dc_bgp with
              Types.bgp_aggregates =
                [ { Types.ag_prefix = pfx "99.0.0.0/16"; ag_as_set = false;
                    ag_summary_only = false; ag_vrf = Route.default_vrf } ] } });
    let model = B.build b in
    let inputs =
      [
        B.input_route ~device:"AGG" ~prefix:"99.0.1.0/24" ~as_path:[ 70; 80 ] ();
        B.input_route ~device:"AGG" ~prefix:"99.0.2.0/24" ~as_path:[ 70; 90 ] ();
      ]
    in
    let res = Route_sim.run model ~input_routes:inputs () in
    List.hd (find_routes res.Route_sim.rib ~device:"AGG" ~prefix:"99.0.0.0/16")
  in
  let agg_a = run "vendorA" and agg_b = run "vendorB" in
  check tstr "vendor A: empty path" "" (As_path.to_string agg_a.Route.as_path);
  check tstr "vendor B: common prefix" "70"
    (As_path.to_string agg_b.Route.as_path)

let test_ecmp_and_igp_cost () =
  (* Diamond: D hears 99/24 from two iBGP peers with equal attributes; the
     IGP costs decide.  Equal costs -> ECMP (the Figure 9 setup). *)
  let diamond sr_on_a =
    let b = B.create () in
    List.iter
      (fun (n, id) ->
        B.add_device b ~name:n ~vendor:"vendorA" ~asn:65000
          ~router_id:(B.ip id) ())
      [ ("A", "10.255.0.1"); ("Bx", "10.255.0.2"); ("C", "10.255.0.3") ];
    ignore (B.link b ~a:"A" ~b:"Bx" ~subnet:(pfx "10.1.0.0/31") ~cost:10 ());
    ignore (B.link b ~a:"A" ~b:"C" ~subnet:(pfx "10.2.0.0/31") ~cost:10 ());
    B.ibgp_loopback_session b ~a:"A" ~b:"Bx" ();
    B.ibgp_loopback_session b ~a:"A" ~b:"C" ();
    if sr_on_a then
      B.add_sr_policy b "A"
        { Types.sp_name = "TO_B"; sp_endpoint = B.ip "10.255.0.2";
          sp_color = 100; sp_segments = []; sp_preference = 100 };
    let model = B.build b in
    let inputs =
      [
        B.input_route ~device:"Bx" ~prefix:"99.0.0.0/24" ~nexthop:"10.255.0.2"
          ~as_path:[ 7018 ] ();
        B.input_route ~device:"C" ~prefix:"99.0.0.0/24" ~nexthop:"10.255.0.3"
          ~as_path:[ 7018 ] ();
      ]
    in
    let res = Route_sim.run model ~input_routes:inputs () in
    find_routes res.Route_sim.rib ~device:"A" ~prefix:"99.0.0.0/24"
  in
  (* no SR: equal IGP costs -> two ECMP routes *)
  let routes = diamond false in
  let installed =
    List.filter
      (fun (r : Route.t) ->
        match r.Route.route_type with
        | Route.Best | Route.Ecmp -> true
        | Route.Backup -> false)
      routes
  in
  check tint "two ECMP routes" 2 (List.length installed);
  (* with an SR policy to B on vendor A (sr_igp_cost_zero = true), the
     B route gets cost 0 and wins alone -- the Figure 9 vendor behaviour *)
  let routes_sr = diamond true in
  let installed_sr =
    List.filter
      (fun (r : Route.t) ->
        match r.Route.route_type with
        | Route.Best | Route.Ecmp -> true
        | Route.Backup -> false)
      routes_sr
  in
  check tint "SR collapses to one best" 1 (List.length installed_sr);
  check tbool "winner via B" true
    ((List.hd installed_sr).Route.peer = Some "Bx")

let test_isis_spf () =
  let b = B.create () in
  List.iter
    (fun (n, id) ->
      B.add_device b ~name:n ~vendor:"vendorA" ~asn:65000 ~router_id:(B.ip id)
        ())
    [ ("A", "1.1.1.1"); ("B", "2.2.2.2"); ("C", "3.3.3.3"); ("D", "4.4.4.4") ];
  ignore (B.link b ~a:"A" ~b:"B" ~subnet:(pfx "10.1.0.0/31") ~cost:10 ());
  ignore (B.link b ~a:"B" ~b:"D" ~subnet:(pfx "10.2.0.0/31") ~cost:10 ());
  ignore (B.link b ~a:"A" ~b:"C" ~subnet:(pfx "10.3.0.0/31") ~cost:10 ());
  ignore (B.link b ~a:"C" ~b:"D" ~subnet:(pfx "10.4.0.0/31") ~cost:30 ());
  let igp = Isis.compute (B.topo b) (B.configs b) in
  check tbool "cost A->D" true (Isis.cost igp ~src:"A" ~dst:"D" = Some 20);
  check
    Alcotest.(list string)
    "single first hop via B" [ "B" ]
    (Isis.first_hops igp ~src:"A" ~dst:"D");
  (* make both sides equal: ECMP first hops *)
  let b2 = B.create () in
  List.iter
    (fun (n, id) ->
      B.add_device b2 ~name:n ~vendor:"vendorA" ~asn:65000 ~router_id:(B.ip id)
        ())
    [ ("A", "1.1.1.1"); ("B", "2.2.2.2"); ("C", "3.3.3.3"); ("D", "4.4.4.4") ];
  ignore (B.link b2 ~a:"A" ~b:"B" ~subnet:(pfx "10.1.0.0/31") ~cost:10 ());
  ignore (B.link b2 ~a:"B" ~b:"D" ~subnet:(pfx "10.2.0.0/31") ~cost:10 ());
  ignore (B.link b2 ~a:"A" ~b:"C" ~subnet:(pfx "10.3.0.0/31") ~cost:10 ());
  ignore (B.link b2 ~a:"C" ~b:"D" ~subnet:(pfx "10.4.0.0/31") ~cost:10 ());
  let igp2 = Isis.compute (B.topo b2) (B.configs b2) in
  check
    Alcotest.(slist string String.compare)
    "ECMP first hops" [ "B"; "C" ]
    (Isis.first_hops igp2 ~src:"A" ~dst:"D")

let test_ec_compression () =
  let b = line_network () in
  let model = B.build b in
  (* 10 input routes with identical attributes and no prefix-list to tell
     them apart -> few ECs *)
  let inputs =
    List.init 10 (fun i ->
        B.input_route ~device:"R1"
          ~prefix:(Printf.sprintf "99.%d.0.0/24" i)
          ~as_path:[ 7018 ] ())
  in
  let res = Route_sim.run model ~input_routes:inputs () in
  check tbool "compressed" true (res.Route_sim.ec_count < 10);
  (* results identical with and without ECs *)
  let res_plain = Route_sim.run ~use_ecs:false model ~input_routes:inputs () in
  check tbool "EC result equals plain result" true
    (Rib.Global.equal res.Route_sim.rib res_plain.Route_sim.rib)

let test_traffic_forwarding () =
  let b = line_network () in
  let model = B.build b in
  let input =
    [ B.input_route ~device:"R3" ~prefix:"99.0.0.0/24" ~nexthop:"10.23.0.1"
        ~as_path:[ 7018 ] () ]
  in
  let res = Route_sim.run model ~input_routes:input () in
  let flow =
    Flow.make ~src:(B.ip "1.0.0.1") ~dst:(B.ip "99.0.0.7") ~ingress:"R1"
      ~volume:1e9 ()
  in
  let tres =
    Traffic_sim.run model ~rib:res.Route_sim.rib ~flows:[ flow ] ()
  in
  let fr = List.hd tres.Traffic_sim.flow_results in
  check tbool "delivered" true (fr.Traffic_sim.f_delivered > 0.99);
  let hops = (List.hd fr.Traffic_sim.f_paths).Traffic_sim.hops in
  check Alcotest.(list string) "path R1-R2-R3" [ "R1"; "R2"; "R3" ] hops;
  (* link loads on both hops *)
  let load k = Option.value (Hashtbl.find_opt tres.Traffic_sim.link_load k) ~default:0. in
  check (Alcotest.float 1.0) "load R1->R2" 1e9 (load ("R1", "R2"));
  check (Alcotest.float 1.0) "load R2->R3" 1e9 (load ("R2", "R3"))

let test_traffic_acl_drop () =
  let b = line_network () in
  (* R2 drops TCP/80 from 1.0.0.0/8 on its R1-facing interface *)
  B.update_config b "R2" (fun cfg ->
      let acl =
        { Types.acl_name = "BLOCK80";
          acl_entries =
            [
              { Types.ace_seq = 5; ace_action = Types.Deny;
                ace_src = Some (pfx "1.0.0.0/8"); ace_dst = None;
                ace_proto = Some 6; ace_dport = Some (80, 80) };
              { Types.ace_seq = 10; ace_action = Types.Permit; ace_src = None;
                ace_dst = None; ace_proto = None; ace_dport = None };
            ] }
      in
      let ifaces =
        List.map
          (fun (i : Types.iface_config) ->
            match i.Types.if_addr with
            | Some a when Ip.equal a (B.ip "10.12.0.1") ->
                { i with Types.if_acl_in = Some "BLOCK80" }
            | _ -> i)
          cfg.Types.dc_ifaces
      in
      { cfg with
        Types.dc_ifaces = ifaces;
        dc_acls = Types.Smap.add "BLOCK80" acl cfg.Types.dc_acls })
  ;
  let model = B.build b in
  let input =
    [ B.input_route ~device:"R3" ~prefix:"99.0.0.0/24" ~nexthop:"10.23.0.1"
        ~as_path:[ 7018 ] () ]
  in
  let res = Route_sim.run model ~input_routes:input () in
  let blocked =
    Flow.make ~src:(B.ip "1.0.0.1") ~dst:(B.ip "99.0.0.7") ~ingress:"R1"
      ~dport:80 ~volume:1e9 ()
  in
  let ok =
    Flow.make ~src:(B.ip "1.0.0.1") ~dst:(B.ip "99.0.0.7") ~ingress:"R1"
      ~dport:443 ~volume:1e9 ()
  in
  let tres =
    Traffic_sim.run model ~rib:res.Route_sim.rib ~flows:[ blocked; ok ] ()
  in
  match tres.Traffic_sim.flow_results with
  | [ fb; fo ] ->
      check tbool "blocked dropped" true (fb.Traffic_sim.f_dropped > 0.99);
      check tbool "ok delivered" true (fo.Traffic_sim.f_delivered > 0.99)
  | _ -> Alcotest.fail "expected two flow results"

let test_flow_ec_compression () =
  let b = line_network () in
  let model = B.build b in
  let input =
    [ B.input_route ~device:"R3" ~prefix:"99.0.0.0/24" ~nexthop:"10.23.0.1"
        ~as_path:[ 7018 ] () ]
  in
  let res = Route_sim.run model ~input_routes:input () in
  (* many flows to the same /24: one EC *)
  let flows =
    List.init 50 (fun i ->
        Flow.make ~src:(B.ip "1.0.0.1")
          ~dst:(B.ip (Printf.sprintf "99.0.0.%d" i))
          ~ingress:"R1" ~volume:1e6 ())
  in
  let tres = Traffic_sim.run model ~rib:res.Route_sim.rib ~flows () in
  check tint "one flow EC" 1 tres.Traffic_sim.ec_count;
  (* same loads as without ECs *)
  let tres2 =
    Traffic_sim.run ~use_ecs:false model ~rib:res.Route_sim.rib ~flows ()
  in
  let total tbl = Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0. in
  check (Alcotest.float 1.0) "loads agree"
    (total tres2.Traffic_sim.link_load)
    (total tres.Traffic_sim.link_load)

let test_change_plan_end_to_end () =
  (* apply a change plan that raises local-pref on R2's import; the best
     route at R2 must change accordingly *)
  let b = line_network () in
  let model = B.build b in
  let input =
    [ B.input_route ~device:"R1" ~prefix:"99.0.0.0/24" ~as_path:[ 7018 ] () ]
  in
  let block =
    {|route-map NEWPOL permit 10
 set local-preference 777
router bgp 65002
 neighbor 10.12.0.0 remote-as 65001
 neighbor 10.12.0.0 route-map NEWPOL in
|}
  in
  let cp = Hoyan_config.Change_plan.make "raise-lp" ~commands:[ ("R2", block) ] in
  let model', reports = Model.apply_change_plan model cp in
  List.iter
    (fun (r : Hoyan_config.Change_plan.apply_report) ->
      List.iter
        (fun i ->
          Printf.printf "apply error on %s: %s\n"
            r.Hoyan_config.Change_plan.ar_device
            (Hoyan_config.Change_plan.issue_to_string i))
        r.Hoyan_config.Change_plan.ar_issues;
      check tint "clean apply" 0
        (List.length r.Hoyan_config.Change_plan.ar_issues))
    reports;
  let res = Route_sim.run model' ~input_routes:input () in
  let r2 = find_routes res.Route_sim.rib ~device:"R2" ~prefix:"99.0.0.0/24" in
  check tint "lp changed by plan" 777 (Route.local_pref (List.hd r2))

let test_add_paths () =
  (* with additional-paths, a device advertises up to n paths, so the
     peer sees the ECMP alternatives too *)
  let run add_paths =
    let b = B.create () in
    B.add_device b ~name:"S1" ~vendor:"vendorA" ~asn:65101
      ~router_id:(B.ip "1.1.1.1") ();
    B.add_device b ~name:"S2" ~vendor:"vendorA" ~asn:65102
      ~router_id:(B.ip "2.2.2.2") ();
    B.add_device b ~name:"M" ~vendor:"vendorA" ~asn:65100
      ~router_id:(B.ip "3.3.3.3") ();
    B.add_device b ~name:"P" ~vendor:"vendorA" ~asn:65200
      ~router_id:(B.ip "4.4.4.4") ();
    let s1_m, m_s1 = B.link b ~a:"S1" ~b:"M" ~subnet:(pfx "10.1.0.0/31") () in
    let s2_m, m_s2 = B.link b ~a:"S2" ~b:"M" ~subnet:(pfx "10.2.0.0/31") () in
    let m_p, p_m = B.link b ~a:"M" ~b:"P" ~subnet:(pfx "10.3.0.0/31") () in
    B.bgp_session b ~a:"S1" ~b:"M" ~a_addr:s1_m ~b_addr:m_s1 ();
    B.bgp_session b ~a:"S2" ~b:"M" ~a_addr:s2_m ~b_addr:m_s2 ();
    B.bgp_session b ~a:"M" ~b:"P" ~a_addr:m_p ~b_addr:p_m ~add_paths ();
    let model = B.build b in
    let inputs =
      [
        B.input_route ~device:"S1" ~prefix:"99.0.0.0/24" ~as_path:[ 7 ] ();
        B.input_route ~device:"S2" ~prefix:"99.0.0.0/24" ~as_path:[ 8 ] ();
      ]
    in
    let rib = (Route_sim.run model ~input_routes:inputs ()).Route_sim.rib in
    List.filter
      (fun (r : Route.t) ->
        String.equal r.Route.device "P"
        && Prefix.equal r.Route.prefix (pfx "99.0.0.0/24"))
      rib
  in
  check tint "without add-paths P sees one path" 1 (List.length (run 0));
  check tint "with add-paths 2 P sees both" 2 (List.length (run 2))

let test_vrf_leaking_semantics () =
  (* a route exported from vrf X with RT 100:1 appears in vrf Y importing
     that RT, carrying the export RT as a community; vendor A does not
     re-leak it into Z, vendor B does (Table 5) *)
  let run vendor =
    let b = B.create () in
    B.add_device b ~name:"PE" ~vendor ~asn:65000 ~router_id:(B.ip "1.1.1.1") ();
    B.add_vrf b "PE"
      { Types.vd_name = "vx"; vd_rd = "65000:1"; vd_import_rts = [];
        vd_export_rts = [ "100:1" ]; vd_export_policy = None };
    B.add_vrf b "PE"
      { Types.vd_name = "vy"; vd_rd = "65000:2"; vd_import_rts = [ "100:1" ];
        vd_export_rts = [ "200:1" ]; vd_export_policy = None };
    B.add_vrf b "PE"
      { Types.vd_name = "vz"; vd_rd = "65000:3"; vd_import_rts = [ "200:1" ];
        vd_export_rts = []; vd_export_policy = None };
    let model = B.build b in
    let inputs =
      [ B.input_route ~device:"PE" ~vrf:"vx" ~prefix:"99.0.0.0/24" () ]
    in
    (Route_sim.run model ~input_routes:inputs ()).Route_sim.rib
  in
  let vrf_has rib vrf =
    List.exists
      (fun (r : Route.t) ->
        String.equal r.Route.vrf vrf
        && Prefix.equal r.Route.prefix (pfx "99.0.0.0/24"))
      rib
  in
  let rib_a = run "vendorA" in
  check tbool "leaked into vy" true (vrf_has rib_a "vy");
  check tbool "A does not re-leak into vz" false (vrf_has rib_a "vz");
  (* the leaked copy carries the export RT as a community *)
  let leaked =
    List.find
      (fun (r : Route.t) -> String.equal r.Route.vrf "vy")
      rib_a
  in
  check tbool "export RT stamped" true
    (Community.Set.mem (B.comm "100:1") leaked.Route.communities);
  let rib_b = run "vendorB" in
  check tbool "B re-leaks into vz" true (vrf_has rib_b "vz")

let suite =
  [
    ("linear propagation", `Quick, test_linear_propagation);
    ("AS loop prevention", `Quick, test_as_loop_prevention);
    ("import policy blocks", `Quick, test_import_policy_blocks);
    ("route reflection", `Quick, test_route_reflection);
    ("local-pref decision", `Quick, test_local_pref_decision);
    ("aggregation + summary-only", `Quick, test_aggregation);
    ("aggregation VSB common prefix", `Quick, test_aggregation_vsb_common_prefix);
    ("ECMP and SR igp-cost VSB", `Quick, test_ecmp_and_igp_cost);
    ("isis spf + ecmp", `Quick, test_isis_spf);
    ("route EC compression", `Quick, test_ec_compression);
    ("traffic forwarding", `Quick, test_traffic_forwarding);
    ("traffic ACL drop", `Quick, test_traffic_acl_drop);
    ("flow EC compression", `Quick, test_flow_ec_compression);
    ("change plan end to end", `Quick, test_change_plan_end_to_end);
    ("add-path advertisement", `Quick, test_add_paths);
    ("vrf leaking semantics", `Quick, test_vrf_leaking_semantics);
  ]
