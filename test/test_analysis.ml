(* The static-analysis (lint) subsystem: the clean generated corpus must
   lint clean (zero false positives), every injected defect class must
   fire its cataloged code on the right device, and the containment
   reasoning behind the shadowing checks must match the prefix-list
   match semantics. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module D = Hoyan_analysis.Diagnostics
module Lint = Hoyan_analysis.Lint
module G = Hoyan_workload.Generator
module Defects = Hoyan_workload.Defects
module Model = Hoyan_sim.Model
module VR = Hoyan_core.Verify_request

let small = lazy (G.generate G.small)

let lint_clean (g : G.t) =
  Lint.run
    (Lint.make ~topo:g.G.model.Model.topo g.G.model.Model.configs)

(* --- zero false positives on the clean corpus ---------------------- *)

let test_clean_corpus () =
  let g = Lazy.force small in
  let diags = lint_clean g in
  Alcotest.(check (list string))
    "clean small corpus lints clean"
    []
    (List.map D.to_string diags)

(* --- every injected defect class fires its code -------------------- *)

let test_injections () =
  let g = Lazy.force small in
  List.iter
    (fun (inj : Defects.injected) ->
      let diags = Defects.detect inj in
      let fired =
        List.filter
          (fun (d : D.t) -> String.equal d.D.d_code inj.Defects.inj_code)
          diags
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s fires %s" inj.Defects.inj_class
           inj.Defects.inj_code)
        true (fired <> []);
      (* location: the diagnostic lands on the device the defect was
         planted on *)
      match inj.Defects.inj_device with
      | None -> ()
      | Some dev ->
          Alcotest.(check bool)
            (Printf.sprintf "%s locates device %s" inj.Defects.inj_class dev)
            true
            (List.exists
               (fun (d : D.t) -> d.D.d_loc.D.loc_device = Some dev)
               fired))
    (Defects.inject_all g)

(* config-level defects must also carry a line number into the rendered
   config (the plan/RCL classes have no device text to anchor to) *)
let test_injection_lines () =
  let g = Lazy.force small in
  let line_classes =
    [
      "undefined-prefix-list"; "undefined-community-list";
      "undefined-aspath-filter"; "undefined-route-policy"; "undefined-acl";
      "ebgp-missing-policy"; "shadowed-policy-term"; "shadowed-prefix-entry";
      "invalid-aspath-regex"; "vrf-import-no-exporter";
      "vrf-export-no-importer"; "undefined-interface";
    ]
  in
  List.iter
    (fun cls ->
      let inj = Defects.inject g cls in
      let fired =
        List.filter
          (fun (d : D.t) -> String.equal d.D.d_code inj.Defects.inj_code)
          (Lint.run inj.Defects.inj_input)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s carries a line number" cls)
        true
        (List.exists (fun (d : D.t) -> d.D.d_loc.D.loc_line <> None) fired))
    line_classes

(* --- entry containment mirrors prefix_entry_matches ---------------- *)

let entry seq s ge le =
  {
    Types.pe_seq = seq;
    pe_action = Types.Permit;
    pe_prefix = Prefix.of_string_exn s;
    pe_ge = ge;
    pe_le = le;
  }

let test_entry_covers () =
  let chk name expected a b =
    Alcotest.(check bool) name expected (Lint.entry_covers a b)
  in
  chk "10/8 le 32 covers 10.1/16 le 24" true
    (entry 1 "10.0.0.0/8" None (Some 32))
    (entry 2 "10.1.0.0/16" None (Some 24));
  chk "10/8 (exact) does not cover 10.1/16" false
    (entry 1 "10.0.0.0/8" None None)
    (entry 2 "10.1.0.0/16" None None);
  chk "10/8 ge 16 le 24 covers 10.1/16 exact" true
    (entry 1 "10.0.0.0/8" (Some 16) (Some 24))
    (entry 2 "10.1.0.0/16" None None);
  chk "10/8 ge 17 does not cover 10.1/16 exact" false
    (entry 1 "10.0.0.0/8" (Some 17) None)
    (entry 2 "10.1.0.0/16" None None);
  chk "disjoint prefixes never cover" false
    (entry 1 "10.0.0.0/8" None (Some 32))
    (entry 2 "192.168.0.0/16" None None);
  chk "families never mix" false
    (entry 1 "::/0" None (Some 128))
    (entry 2 "10.1.0.0/16" None None)

let test_shadowed_entries () =
  let pl =
    {
      Types.pl_name = "P";
      pl_family = Ip.Ipv4;
      pl_entries =
        [
          entry 5 "10.0.0.0/8" None (Some 32);
          entry 10 "10.1.0.0/16" None (Some 24);
          entry 15 "192.168.0.0/16" None None;
        ];
    }
  in
  match Lint.shadowed_entries pl with
  | [ (shadowed, by) ] ->
      Alcotest.(check int) "seq 10 is shadowed" 10 shadowed.Types.pe_seq;
      Alcotest.(check int) "by seq 5" 5 by.Types.pe_seq
  | l -> Alcotest.failf "expected one shadowed entry, got %d" (List.length l)

(* --- RCL checks ---------------------------------------------------- *)

let lint_spec spec =
  Lint.run (Lint.make ~specs:[ ("t", spec) ] Types.Smap.empty)

let codes ds = List.map (fun (d : D.t) -> d.D.d_code) ds

let test_rcl_checks () =
  Alcotest.(check (list string))
    "well-typed spec is clean" []
    (codes (lint_spec "POST || localPref = 200 |> count() = 0"));
  Alcotest.(check bool) "type confusion -> HOY016" true
    (List.mem "HOY016"
       (codes (lint_spec "POST || device = 100 |> count() = 0")));
  Alcotest.(check bool) "ordering a set -> HOY016" true
    (List.mem "HOY016"
       (codes (lint_spec "POST || communities > 10 |> count() = 0")));
  Alcotest.(check bool) "bad regex -> HOY017" true
    (List.mem "HOY017"
       (codes (lint_spec "POST || aspath matches \"(\" |> count() = 0")));
  Alcotest.(check bool) "contradictory bounds -> HOY018" true
    (List.mem "HOY018"
       (codes
          (lint_spec
             "POST || (localPref > 200 and localPref < 100) |> count() = 0")));
  Alcotest.(check bool) "satisfiable bounds are clean" true
    (not
       (List.mem "HOY018"
          (codes
             (lint_spec
                "POST || (localPref > 100 and localPref < 200) |> count() = 0"))));
  Alcotest.(check bool) "parse failure -> HOY015" true
    (List.mem "HOY015" (codes (lint_spec "PRE = ")))

(* --- the pre-simulation gate in Verify_request --------------------- *)

let test_gate () =
  let g = Lazy.force small in
  let base =
    Hoyan_core.Preprocess.prepare g.G.model
      ~monitored_routes:g.G.input_routes ~monitored_flows:g.G.flows
  in
  let bad_plan =
    Cp.make "bad" ~commands:[ ("no-such-device", "interface Eth0\n") ]
  in
  let rq =
    { VR.rq_name = "gated"; rq_plan = bad_plan; rq_intents = [] }
  in
  (* fail-fast: stops before simulation *)
  let r = VR.run ~lint:VR.Lint_fail base rq in
  Alcotest.(check bool) "gated request fails" false r.VR.vr_ok;
  Alcotest.(check bool) "gate reports being hit" true r.VR.vr_gated;
  Alcotest.(check bool) "gate produced diagnostics" true (r.VR.vr_lint <> []);
  Alcotest.(check (list string)) "no simulation ran" []
    (List.map (fun _ -> "route") r.VR.vr_updated_rib);
  (* warn mode: diagnostics recorded, run proceeds *)
  let r = VR.run ~lint:VR.Lint_warn base rq in
  Alcotest.(check bool) "warn mode does not gate" false r.VR.vr_gated;
  Alcotest.(check bool) "warn mode still reports" true (r.VR.vr_lint <> []);
  (* off: nothing recorded *)
  let r = VR.run ~lint:VR.Lint_off base rq in
  Alcotest.(check (list string)) "off mode reports nothing" []
    (List.map D.to_string r.VR.vr_lint);
  (* a clean plan under fail-fast passes the gate *)
  let ok_rq =
    { VR.rq_name = "clean"; rq_plan = Cp.make "noop"; rq_intents = [] }
  in
  let r = VR.run ~lint:VR.Lint_fail base ok_rq in
  Alcotest.(check bool) "clean plan is not gated" false r.VR.vr_gated

(* --- catalog sanity ------------------------------------------------ *)

let test_catalog () =
  let codes = List.map (fun (c, _, _, _) -> c) D.catalog in
  Alcotest.(check int) "codes are unique"
    (List.length codes)
    (List.length (List.sort_uniq String.compare codes));
  Alcotest.(check bool) "at least the issue's 10 checks" true
    (List.length codes >= 10);
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (Printf.sprintf "class %s is cataloged" cls)
        true
        (D.code_of_check cls <> None))
    Defects.classes

let test_json () =
  let d =
    D.make ~code:"HOY001" ~device:"r1" ~obj:"route-policy P node 10" ~line:4
      "match references undefined prefix list %s" "\"X\""
  in
  let json = D.list_to_json [ d ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "JSON contains %s" needle)
        true
        (let re = Str.regexp_string needle in
         try
           ignore (Str.search_forward re json 0);
           true
         with Not_found -> false))
    [
      "\"code\": \"HOY001\""; "\"severity\": \"error\"";
      "\"device\": \"r1\""; "\"line\": 4"; "\\\"X\\\"";
      "\"counts\"";
    ]

let suite =
  [
    Alcotest.test_case "clean corpus has zero findings" `Quick
      test_clean_corpus;
    Alcotest.test_case "every injected class fires its code" `Quick
      test_injections;
    Alcotest.test_case "config-level findings carry line numbers" `Quick
      test_injection_lines;
    Alcotest.test_case "prefix-entry containment" `Quick test_entry_covers;
    Alcotest.test_case "shadowed prefix entries" `Quick test_shadowed_entries;
    Alcotest.test_case "RCL type/regex/reachability checks" `Quick
      test_rcl_checks;
    Alcotest.test_case "pre-simulation gate modes" `Quick test_gate;
    Alcotest.test_case "catalog integrity" `Quick test_catalog;
    Alcotest.test_case "JSON rendering" `Quick test_json;
  ]
