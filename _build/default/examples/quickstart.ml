(* Quickstart: build a small WAN, run route + traffic simulation, verify a
   change plan with RCL and traffic intents, and print the results.

   Run with:  dune exec examples/quickstart.exe *)

open Hoyan_net
module G = Hoyan_workload.Generator
module Cp = Hoyan_config.Change_plan
module Preprocess = Hoyan_core.Preprocess
module Intents = Hoyan_core.Intents
module Verify_request = Hoyan_core.Verify_request
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Bgp = Hoyan_proto.Bgp

let () =
  (* 1. Generate a small synthetic WAN: 3 regions, ~20 routers, mixed
     vendors.  Configurations are emitted as vendor-dialect text and
     re-parsed, exactly as production configs would be. *)
  let g = G.generate G.small in
  Printf.printf "network: %s\n\n" (G.stats g);

  (* 2. Pre-processing: filter the monitored routes/flows into simulation
     inputs and build the base model (in production this runs daily). *)
  let base =
    Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
      ~monitored_flows:g.G.flows
  in

  (* 3. Simulate the base network: BGP/IS-IS fixpoint -> all RIBs, then
     flow forwarding -> paths and link loads. *)
  let rib = Lazy.force base.Preprocess.b_rib in
  let traffic = Lazy.force base.Preprocess.b_traffic in
  Printf.printf "base simulation: %d RIB rows, %d flow ECs, %d loaded links\n\n"
    (List.length rib)
    traffic.Traffic_sim.ec_count
    (Hashtbl.length traffic.Traffic_sim.link_load);

  (* 4. A change plan: raise the local preference of one border's
     ISP-learned routes (written in the device's own dialect). *)
  let border = List.hd g.G.borders in
  let vendor =
    (Hoyan_sim.Model.config g.G.model border |> Option.get)
      .Hoyan_config.Types.dc_vendor
  in
  let block =
    if String.equal vendor "vendorA" then
      "route-map ISP_IN permit 10\n set community 64512:100 additive\n set \
       local-preference 250\n"
    else
      "route-policy ISP_IN permit node 10\n apply community 64512:100 \
       additive\n apply local-preference 250\n"
  in
  let plan = Cp.make "bump-isp-pref" ~commands:[ (border, block) ] in

  (* 5. Intents: the paper's three abstractions in one request — an RCL
     route-change intent, a flow-path intent and a load threshold. *)
  let request =
    {
      Verify_request.rq_name = "bump-isp-pref";
      rq_plan = plan;
      rq_intents =
        [
          Intents.Route_change
            (Printf.sprintf
               "forall device in {%s} : PRE |> count() = POST |> count()" border);
          Intents.Max_utilization 0.95;
        ];
    }
  in
  let res = Verify_request.run base request in
  print_string (Verify_request.report res);

  (* 6. The same request through the distributed framework (master, MQ,
     object store, workers), as §3.2 describes. *)
  let res_dist =
    Verify_request.run
      ~mode:(Verify_request.Distributed { servers = 4; subtasks = 16 })
      base request
  in
  Printf.printf "\ndistributed run agrees: %b\n"
    (Rib.Global.equal res.Verify_request.vr_updated_rib
       res_dist.Verify_request.vr_updated_rib)
