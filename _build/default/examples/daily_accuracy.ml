(* The accuracy-diagnosis framework on a "daily" run (§5).

   A live network (ground truth) is observed through lossy monitoring
   systems with injected faults from the Table-4 classes; Hoyan's daily
   cross-validation compares its simulation against the monitored data,
   detects the discrepancies and runs the root-cause workflow.

   Run with:  dune exec examples/daily_accuracy.exe *)

open Hoyan_net
module G = Hoyan_workload.Generator
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Route_monitor = Hoyan_monitor.Route_monitor
module Traffic_monitor = Hoyan_monitor.Traffic_monitor
module Faults = Hoyan_monitor.Faults
module Validate = Hoyan_diag.Validate
module Issues = Hoyan_diag.Issues
module Vsb_test = Hoyan_diag.Vsb_test

let () =
  let g = G.generate G.small in
  Printf.printf "network: %s\n\n" (G.stats g);
  (* the live network's true state *)
  let rib = (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib in
  let traffic = Traffic_sim.run g.G.model ~rib ~flows:g.G.flows () in

  (* day 1: healthy monitoring -> clean accuracy report *)
  let monitored = Route_monitor.observe (Route_monitor.create ()) rib in
  let loads =
    Traffic_monitor.observe_link_loads (Traffic_monitor.create ())
      traffic.Traffic_sim.link_load
  in
  let report =
    Validate.daily ~simulated_rib:rib ~monitored_rib:monitored
      ~topo:g.G.model.Hoyan_sim.Model.topo
      ~simulated_loads:traffic.Traffic_sim.link_load ~monitored_loads:loads ()
  in
  Printf.printf "day 1 (healthy): %d routes checked, %d links checked -> %s\n"
    report.Validate.rep_routes_checked report.Validate.rep_links_checked
    (if Validate.is_accurate report then "ACCURATE" else "DISCREPANCIES");

  (* day 2: a route-monitoring agent fails and a NetFlow volume bug
     appears (Table 4 rows 1-2) *)
  let bad_dev = List.hd g.G.borders in
  let monitored2 =
    Route_monitor.observe
      (Route_monitor.create ~faults:[ Faults.Agent_down bad_dev ] ())
      rib
  in
  let some_link =
    Hashtbl.fold (fun k _ _ -> Some k) traffic.Traffic_sim.link_load None
    |> Option.get
  in
  let loads2 =
    Traffic_monitor.observe_link_loads
      (Traffic_monitor.create
         ~faults:[ Faults.Snmp_counter_stuck (fst some_link, snd some_link) ]
         ())
      traffic.Traffic_sim.link_load
  in
  let report2 =
    Validate.daily ~simulated_rib:rib ~monitored_rib:monitored2
      ~topo:g.G.model.Hoyan_sim.Model.topo
      ~simulated_loads:traffic.Traffic_sim.link_load ~monitored_loads:loads2 ()
  in
  Printf.printf "day 2 (faulty):  %d route discrepancies, %d load discrepancies\n"
    (List.length report2.Validate.rep_route_issues)
    (List.length report2.Validate.rep_load_issues);
  (* classify: every route of one device missing -> route monitoring *)
  let whole_device_missing =
    List.exists
      (function
        | Validate.Missing_in_monitor r ->
            String.equal r.Route.device bad_dev
        | _ -> false)
      report2.Validate.rep_route_issues
  in
  let cls =
    Issues.classify
      { Issues.no_evidence with
        Issues.ev_routes_missing_whole_device =
          (if whole_device_missing then Some bad_dev else None) }
  in
  Printf.printf "classified as: %s\n\n" (Issues.to_string cls);

  (* VSB sweep: the Table-5 differential-testing campaign *)
  print_endline "vendor-specific behaviour sweep (Table 5):";
  List.iter
    (fun (d : Vsb_test.detection) ->
      Printf.printf "  %-30s %s (RIB diff: %d rows)\n" d.Vsb_test.det_dimension
        (if d.Vsb_test.det_detected then "DETECTED" else "missed")
        d.Vsb_test.det_diff_size)
    (Vsb_test.run_all ())
