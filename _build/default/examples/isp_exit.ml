(* The Figure 10(b) incident: changing ISP exits with the wrong command.

   The operator writes 'ip ip-prefix' instead of 'ipv6-prefix'.  The
   vendor only checks IPv4 prefixes after that command and permits all
   IPv6 prefixes by default, so every IPv6 prefix — not just the intended
   list — moves to exit C and its links overload.  The stated intent
   verifies; the overload check and the "others do not change" RCL intent
   expose the blast radius.

   Run with:  dune exec examples/isp_exit.exe *)

module S = Hoyan_workload.Scenarios
module V = Hoyan_core.Verify_request

let () =
  let sc = S.fig10b () in
  Printf.printf "%s\n%s\n\n" sc.S.sc_name sc.S.sc_description;
  let res = V.run sc.S.sc_base sc.S.sc_request in
  print_string (V.report res);
  if res.V.vr_ok then (
    print_endline "UNEXPECTED: the risky change was not flagged";
    exit 1)
  else begin
    Printf.printf "\nafter fixing the command to ipv6-prefix:\n";
    (* the corrected plan *)
    let fixed_block =
      {|ip ipv6-prefix EXIT2 index 5 permit 2001:db8:1:: 48
ip ipv6-prefix EXIT2 index 10 permit 2001:db8:2:: 48
route-policy TO_RR permit node 10
 if-match ipv6-prefix EXIT2
 apply local-preference 300
route-policy TO_RR permit node 20
bgp 65001
 peer 10.255.1.3 as-number 65001
 peer 10.255.1.3 route-policy TO_RR export
|}
    in
    let fixed_request =
      {
        sc.S.sc_request with
        V.rq_plan =
          Hoyan_config.Change_plan.make "change-isp-exits-fixed"
            ~commands:[ ("C", fixed_block) ];
      }
    in
    let res2 = V.run sc.S.sc_base fixed_request in
    print_string (V.report res2);
    if not res2.V.vr_ok then exit 1
  end
