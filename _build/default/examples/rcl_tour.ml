(* A tour of RCL, the route change intent specification language (§4).

   Evaluates the paper's running example (Figure 6's RIBs and the §4.1
   intents) plus the three §4.3 use cases, printing each specification,
   its syntax-tree size and verdict, with counterexamples on violation.

   Run with:  dune exec examples/rcl_tour.exe *)

open Hoyan_net
open Hoyan_rcl

let pfx = Prefix.of_string_exn
let ip = Ip.of_string_exn
let comm = Community.of_string_exn

let route ~device ~vrf ~prefix ~communities ~lp ~nexthop =
  Route.make ~device ~vrf ~prefix:(pfx prefix)
    ~communities:(Community.Set.of_list (List.map comm communities))
    ~local_pref:lp ~nexthop:(ip nexthop) ()

(* Figure 6, verbatim. *)
let base =
  [
    route ~device:"A" ~vrf:"global" ~prefix:"10.0.0.0/24"
      ~communities:[ "100:1" ] ~lp:100 ~nexthop:"2.0.0.1";
    route ~device:"A" ~vrf:"vrf1" ~prefix:"20.0.0.0/24"
      ~communities:[ "100:1"; "200:1" ] ~lp:10 ~nexthop:"3.0.0.1";
    route ~device:"B" ~vrf:"global" ~prefix:"10.0.0.0/24"
      ~communities:[ "100:1" ] ~lp:200 ~nexthop:"4.0.0.1";
  ]

let updated =
  [
    route ~device:"A" ~vrf:"global" ~prefix:"10.0.0.0/24"
      ~communities:[ "100:1" ] ~lp:300 ~nexthop:"2.0.0.1";
    route ~device:"A" ~vrf:"vrf1" ~prefix:"20.0.0.0/24"
      ~communities:[ "100:1"; "200:1" ] ~lp:10 ~nexthop:"3.0.0.1";
    route ~device:"B" ~vrf:"global" ~prefix:"10.0.0.0/24"
      ~communities:[ "100:1" ] ~lp:300 ~nexthop:"4.0.0.1";
  ]

let specs =
  [
    ("the §4.1 intent (a): target routes get localPref 300",
     "prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}");
    ("the §4.1 intent (b): everything else unchanged",
     "prefix != 10.0.0.0/24 => PRE = POST");
    ("use case: next hops unchanged for selected devices/prefixes",
     "forall device in {A, B} : forall prefix in {10.0.0.0/24} : routeType = \
      BEST => PRE |> distVals(nexthop) = POST |> distVals(nexthop)");
    ("use case: a community blocked from a region (expected to FAIL here)",
     "forall device in {B} : POST||(communities has 100:1) |> count() = 0");
    ("use case: conditional change (imply)",
     "forall device in {A} : forall prefix : (PRE |> distVals(nexthop) = \
      {2.0.0.1}) imply (POST |> distVals(nexthop) = {2.0.0.1})");
    ("aggregate arithmetic",
     "POST |> count() - PRE |> count() = 0");
  ]

let () =
  List.iter
    (fun (title, spec) ->
      Printf.printf "--- %s\n    %s\n" title spec;
      match Parser.parse spec with
      | Error msg -> Printf.printf "    parse error: %s\n\n" msg
      | Ok ast -> (
          Printf.printf "    size: %d internal nodes\n" (Ast.size ast);
          match Verify.check ast ~base ~updated with
          | Verify.Satisfied -> Printf.printf "    SATISFIED\n\n"
          | Verify.Violated vs ->
              Printf.printf "    VIOLATED:\n";
              List.iter
                (fun v ->
                  Printf.printf "      %s\n" (Verify.violation_to_string v))
                vs;
              print_newline ()))
    specs
