(* The Figure 10(a) incident: shifting traffic to the new WAN.

   A pre-existing misconfiguration (policy node 20 missing on M1) has no
   effect before the change; once node 10 is deleted, route R is denied on
   M1 only, and its traffic detours M1-A-M2-B, overloading A-M2.  Hoyan
   catches all three intent violations before the change ships.

   Run with:  dune exec examples/traffic_shift.exe *)

module S = Hoyan_workload.Scenarios
module V = Hoyan_core.Verify_request

let () =
  let sc = S.fig10a () in
  Printf.printf "%s\n%s\n\n" sc.S.sc_name sc.S.sc_description;
  let res = V.run sc.S.sc_base sc.S.sc_request in
  print_string (V.report res);
  if res.V.vr_ok then (
    print_endline "UNEXPECTED: the risky change was not flagged";
    exit 1)
  else
    Printf.printf
      "\nHoyan prevented this incident: %d violation(s) found before rollout.\n"
      (List.length res.V.vr_violations)
