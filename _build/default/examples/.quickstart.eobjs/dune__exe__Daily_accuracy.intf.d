examples/daily_accuracy.mli:
