examples/isp_exit.mli:
