examples/quickstart.mli:
