examples/daily_accuracy.ml: Hashtbl Hoyan_diag Hoyan_monitor Hoyan_net Hoyan_sim Hoyan_workload List Option Printf Route String
