examples/rcl_tour.ml: Ast Community Hoyan_net Hoyan_rcl Ip List Parser Prefix Printf Route Verify
