examples/traffic_shift.ml: Hoyan_core Hoyan_workload List Printf
