examples/isp_exit.ml: Hoyan_config Hoyan_core Hoyan_workload Printf
