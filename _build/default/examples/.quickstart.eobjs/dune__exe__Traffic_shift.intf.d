examples/traffic_shift.mli:
