examples/quickstart.ml: Hashtbl Hoyan_config Hoyan_core Hoyan_net Hoyan_proto Hoyan_sim Hoyan_workload Lazy List Option Printf Rib String
