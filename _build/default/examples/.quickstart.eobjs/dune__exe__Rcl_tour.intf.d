examples/rcl_tour.mli:
