(* Tests and properties of the synthetic workload generator: structural
   invariants, the print->parse round trip, EC soundness on generated
   inputs, and traffic sanity. *)

open Hoyan_net
module G = Hoyan_workload.Generator
module Types = Hoyan_config.Types
module Printer = Hoyan_config.Printer
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Smap = Map.Make (String)


(* fixed seed: the property suites are deterministic run to run *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |]) t

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let g = lazy (G.generate G.small)

let test_structure () =
  let g = Lazy.force g in
  check tint "3 regions x (4 cores + 2 borders + 1 rr)" 21 (G.device_count g);
  check tint "borders" 6 (List.length g.G.borders);
  check tbool "everything is connected (IGP reaches everywhere)" true
    (let igp = g.G.model.Model.igp in
     let devs = Hoyan_proto.Isis.devices igp in
     List.for_all
       (fun a -> List.for_all (fun b -> Hoyan_proto.Isis.reachable igp ~src:a ~dst:b) devs)
       devs);
  (* mixed vendors, both present *)
  let vendors =
    Smap.fold
      (fun _ (c : Types.t) acc -> c.Types.dc_vendor :: acc)
      g.G.model.Model.configs []
    |> List.sort_uniq String.compare
  in
  check Alcotest.(list string) "both dialects" [ "vendorA"; "vendorB" ] vendors

let test_reparse_clean () =
  (* every emitted configuration re-parses without errors, whatever the
     seed: the printers and parsers are exact inverses on generated
     configs *)
  List.iter
    (fun seed ->
      let g = G.generate { G.small with G.g_seed = seed } in
      check tint
        (Printf.sprintf "seed %d parses clean" seed)
        0 g.G.parse_errors)
    [ 1; 2; 3; 4; 5 ]

let test_ec_soundness_on_generated () =
  (* the EC-compressed simulation equals the uncompressed one on the full
     generated workload — the central soundness claim of §3.1 *)
  let g = Lazy.force g in
  let ec = Route_sim.run g.G.model ~input_routes:g.G.input_routes () in
  let plain =
    Route_sim.run ~use_ecs:false g.G.model ~input_routes:g.G.input_routes ()
  in
  check tbool "EC result equals plain result" true
    (Rib.Global.equal ec.Route_sim.rib plain.Route_sim.rib);
  check tbool "compression achieved" true (ec.Route_sim.compression > 1.5)

let test_flow_conservation () =
  let g = Lazy.force g in
  let rib = (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib in
  let tr = Traffic_sim.run g.G.model ~rib ~flows:g.G.flows () in
  (* per flow: delivered + dropped + looped = 1 *)
  List.iter
    (fun (fr : Traffic_sim.flow_result) ->
      let total =
        fr.Traffic_sim.f_delivered +. fr.Traffic_sim.f_dropped
        +. fr.Traffic_sim.f_looped
      in
      if Float.abs (total -. 1.0) > 1e-6 then
        Alcotest.failf "flow not conserved (%.6f): %s" total
          (Flow.to_string fr.Traffic_sim.f_flow))
    tr.Traffic_sim.flow_results;
  (* link loads are non-negative and only on existing links *)
  Hashtbl.iter
    (fun (a, b) load ->
      check tbool "load >= 0" true (load >= 0.);
      check tbool "load on a real link" true
        (Option.is_some (Topology.edge_between g.G.model.Model.topo a b)))
    tr.Traffic_sim.link_load

let test_isp_confinement () =
  (* ISP prefixes stay near their home region (borders + RRs); DC-less
     small nets announce "DC" prefixes at borders too, so just check that
     ISP routes never land on core routers *)
  let g = Lazy.force g in
  let rib = (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib in
  let isp_prefix (p : Prefix.t) =
    match Prefix.ip p with
    | Ip.V4 n -> n lsr 24 >= 100 && n lsr 24 < 150
    | Ip.V6 _ -> false
  in
  let offenders =
    List.filter
      (fun (r : Route.t) ->
        r.Route.proto = Route.Bgp
        && isp_prefix r.Route.prefix
        && (match Topology.device g.G.model.Model.topo r.Route.device with
           | Some d -> d.Topology.role = Topology.Wan_core
           | None -> false))
      rib
  in
  check tint "no ISP route on cores" 0 (List.length offenders)

(* property: generated input routes always re-inject at devices of the
   model and carry resolvable-or-local next hops *)
let prop_inputs_wellformed =
  QCheck.Test.make ~name:"generated inputs are well-formed" ~count:5
    (QCheck.make (QCheck.Gen.int_range 10 100))
    (fun seed ->
      let g = G.generate { G.small with G.g_seed = seed } in
      List.for_all
        (fun (r : Route.t) ->
          Option.is_some (Model.config g.G.model r.Route.device))
        g.G.input_routes)

(* property: with any seed, route simulation converges within the
   fixpoint bound and the distributed framework reproduces it *)
let prop_distributed_equivalence =
  QCheck.Test.make ~name:"distributed = direct on random seeds" ~count:3
    (QCheck.make (QCheck.Gen.int_range 20 60))
    (fun seed ->
      let g = G.generate { G.small with G.g_seed = seed; g_prefixes = 80 } in
      let direct =
        (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib
      in
      let fw = Hoyan_dist.Framework.create g.G.model in
      let rp =
        Hoyan_dist.Framework.run_route_phase ~subtasks:6 fw
          ~input_routes:g.G.input_routes
      in
      Rib.Global.equal direct rp.Hoyan_dist.Framework.rp_rib)

let test_dual_stack () =
  let g = Lazy.force g in
  (* both families appear in inputs and flows, and all v6 flows deliver *)
  let v6_inputs =
    List.filter
      (fun (r : Route.t) -> Prefix.family r.Route.prefix = Ip.Ipv6)
      g.G.input_routes
  in
  check tbool "v6 inputs generated" true (List.length v6_inputs > 0);
  let rib = (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib in
  let tr = Traffic_sim.run g.G.model ~rib ~flows:g.G.flows () in
  let v6_results =
    List.filter
      (fun (fr : Traffic_sim.flow_result) ->
        Ip.family fr.Traffic_sim.f_flow.Flow.dst = Ip.Ipv6)
      tr.Traffic_sim.flow_results
  in
  check tbool "v6 flows simulated" true (List.length v6_results > 0);
  List.iter
    (fun (fr : Traffic_sim.flow_result) ->
      if fr.Traffic_sim.f_delivered < 0.999 then
        Alcotest.failf "v6 flow not delivered: %s"
          (Flow.to_string fr.Traffic_sim.f_flow))
    v6_results

let test_no_forwarding_loops () =
  (* with the SRv6-style recursive forwarding, the generated WAN must be
     loop free for every seed *)
  List.iter
    (fun seed ->
      let g = G.generate { G.small with G.g_seed = seed } in
      let rib =
        (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib
      in
      let tr = Traffic_sim.run g.G.model ~rib ~flows:g.G.flows () in
      List.iter
        (fun (fr : Traffic_sim.flow_result) ->
          if fr.Traffic_sim.f_looped > 1e-6 then
            Alcotest.failf "seed %d: looping flow %s" seed
              (Flow.to_string fr.Traffic_sim.f_flow))
        tr.Traffic_sim.flow_results)
    [ 1; 2; 3 ]

let test_sr_tunnels_present () =
  let g = Lazy.force g in
  let total =
    Smap.fold
      (fun _ ts n -> n + List.length ts)
      g.G.model.Model.tunnels 0
  in
  check tbool "SR tunnels resolved" true (total > 0)

let suite =
  [
    ("generator structure", `Quick, test_structure);
    ("dual-stack generation + delivery", `Slow, test_dual_stack);
    ("no forwarding loops (3 seeds)", `Slow, test_no_forwarding_loops);
    ("SR tunnels resolved", `Quick, test_sr_tunnels_present);
    ("emitted configs reparse clean", `Slow, test_reparse_clean);
    ("EC soundness on generated workload", `Slow, test_ec_soundness_on_generated);
    ("flow conservation", `Slow, test_flow_conservation);
    ("ISP route confinement", `Slow, test_isp_confinement);
    qtest prop_inputs_wellformed;
    qtest prop_distributed_equivalence;
  ]
