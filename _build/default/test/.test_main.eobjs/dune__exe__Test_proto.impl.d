test/test_proto.ml: Alcotest Hoyan_config Hoyan_diag Hoyan_monitor Hoyan_net Hoyan_proto Hoyan_regex Hoyan_sim Hoyan_workload Ip List Prefix Route String
