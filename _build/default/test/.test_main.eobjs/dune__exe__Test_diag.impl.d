test/test_diag.ml: Alcotest Float Flow Hashtbl Hoyan_config Hoyan_diag Hoyan_monitor Hoyan_net Hoyan_regex Hoyan_sim Hoyan_workload Lazy List Option Prefix Route Str String Topology
