test/test_pipeline.ml: Alcotest As_path Flow Hoyan_config Hoyan_core Hoyan_net Hoyan_sim Hoyan_workload Lazy List Option Prefix Rib Route String Topology
