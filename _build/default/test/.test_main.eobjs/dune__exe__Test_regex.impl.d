test/test_regex.ml: Alcotest Hoyan_regex QCheck QCheck_alcotest Random Regex Str String
