test/test_main.ml: Alcotest Test_bgp Test_config Test_diag Test_dist Test_infra Test_net Test_pipeline Test_props Test_proto Test_rcl Test_regex Test_scenarios Test_workload
