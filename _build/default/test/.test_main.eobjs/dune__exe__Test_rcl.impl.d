test/test_rcl.ml: Alcotest Ast Community Hoyan_net Hoyan_rcl Ip List Parser Prefix Pretty Printf QCheck QCheck_alcotest Random Route Semantics Str String Value Verify
