test/test_infra.ml: Alcotest Hoyan_config Hoyan_dist Hoyan_net List Prefix Printf Route
