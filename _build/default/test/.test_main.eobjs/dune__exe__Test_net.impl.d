test/test_net.ml: Alcotest As_path Community Hoyan_net Int Int128 Ip List Prefix QCheck QCheck_alcotest Random Rib Route String Trie
