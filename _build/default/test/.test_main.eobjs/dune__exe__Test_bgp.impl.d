test/test_bgp.ml: Alcotest As_path Community Flow Hashtbl Hoyan_config Hoyan_net Hoyan_proto Hoyan_sim Hoyan_workload Ip List Option Prefix Printf Rib Route String Topology
