test/test_config.ml: Alcotest As_path Change_plan Community Hoyan_config Hoyan_net Ip Lexutil List Option Parser_a Parser_b Policy Prefix Printer Printf Route String Types Vsb
