test/test_props.ml: As_path Community Hoyan_config Hoyan_net Hoyan_proto Hoyan_workload Ip List Prefix Printf QCheck QCheck_alcotest Random Route String
