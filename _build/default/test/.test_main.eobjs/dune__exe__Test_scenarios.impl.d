test/test_scenarios.ml: Alcotest Hashtbl Hoyan_config Hoyan_core Hoyan_net Hoyan_sim Hoyan_workload List Option Rib Route Str
