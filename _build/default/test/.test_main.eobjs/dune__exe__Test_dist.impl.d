test/test_dist.ml: Alcotest Flow Fun Hashtbl Hoyan_dist Hoyan_net Hoyan_sim Hoyan_workload Ip Lazy List Prefix QCheck QCheck_alcotest Random Rib Route
