(* Tests for the RCL specification language: lexer, parser, semantics
   (checked against the paper's Figure 6 example RIBs and the §4.1/§4.3
   specifications), verifier counterexamples, and properties. *)

open Hoyan_net
open Hoyan_rcl


(* fixed seed: the property suites are deterministic run to run *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |]) t

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let pfx = Prefix.of_string_exn
let ip = Ip.of_string_exn
let comm s = Community.of_string_exn s

let route ~device ~vrf ~prefix ~communities ~lp ~nexthop =
  Route.make ~device ~vrf ~prefix:(pfx prefix)
    ~communities:(Community.Set.of_list (List.map comm communities))
    ~local_pref:lp ~nexthop:(ip nexthop) ()

(* The exact global RIBs of Figure 6. *)
let base_rib =
  [
    route ~device:"A" ~vrf:"global" ~prefix:"10.0.0.0/24"
      ~communities:[ "100:1" ] ~lp:100 ~nexthop:"2.0.0.1";
    route ~device:"A" ~vrf:"vrf1" ~prefix:"20.0.0.0/24"
      ~communities:[ "100:1"; "200:1" ] ~lp:10 ~nexthop:"3.0.0.1";
    route ~device:"B" ~vrf:"global" ~prefix:"10.0.0.0/24"
      ~communities:[ "100:1" ] ~lp:200 ~nexthop:"4.0.0.1";
  ]

let updated_rib =
  [
    route ~device:"A" ~vrf:"global" ~prefix:"10.0.0.0/24"
      ~communities:[ "100:1" ] ~lp:300 ~nexthop:"2.0.0.1";
    route ~device:"A" ~vrf:"vrf1" ~prefix:"20.0.0.0/24"
      ~communities:[ "100:1"; "200:1" ] ~lp:10 ~nexthop:"3.0.0.1";
    route ~device:"B" ~vrf:"global" ~prefix:"10.0.0.0/24"
      ~communities:[ "100:1" ] ~lp:300 ~nexthop:"4.0.0.1";
  ]

let holds spec =
  match Verify.check_spec spec ~base:base_rib ~updated:updated_rib with
  | Ok Verify.Satisfied -> true
  | Ok (Verify.Violated _) -> false
  | Error msg -> Alcotest.failf "parse error: %s" msg

(* --- the paper's running example (§4.1) ---------------------------------- *)

let test_paper_intent_a () =
  (* routes with prefix 10.0.0.0/24 have local preference 300 after *)
  check tbool "intent (a) holds" true
    (holds "prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}")

let test_paper_intent_b () =
  (* routes with other prefixes remain unchanged *)
  check tbool "intent (b) holds" true
    (holds "prefix != 10.0.0.0/24 => PRE = POST");
  (* and the complement fails: the 10/24 scope did change *)
  check tbool "changed scope differs" false
    (holds "prefix = 10.0.0.0/24 => PRE = POST")

let test_paper_symbols () =
  (* the UTF-8 spellings from the paper parse identically *)
  check tbool "unicode arrows" true
    (holds
       "prefix = 10.0.0.0/24 \xe2\x87\x92 POST \xe2\x96\xb7 distVals(localPref) = {300}");
  check tbool "unicode neq" true
    (holds "prefix \xe2\x89\xa0 10.0.0.0/24 \xe2\x87\x92 PRE = POST")

(* --- §4.3 use-case shapes -------------------------------------------------- *)

let test_usecase_unchanged_nexthops () =
  let spec =
    {|forall device in {A, B}: forall prefix in {10.0.0.0/24}:
        routeType = BEST => PRE |> distVals(nexthop) = POST |> distVals(nexthop)|}
  in
  check tbool "next hops unchanged" true (holds spec)

let test_usecase_block_community () =
  (* no route with community 100:1 on device B after the change: false
     here (B does carry it) *)
  let spec =
    "forall device in {B}: POST||(communities has 100:1) |> count() = 0"
  in
  check tbool "community still present" false (holds spec);
  let spec_ok =
    "forall device in {B}: POST||(communities has 666:1) |> count() = 0"
  in
  check tbool "absent community passes" true (holds spec_ok)

let test_usecase_conditional_change () =
  (* for every prefix: if its old next hops were {2.0.0.1} then its new
     next hops must be {2.0.0.1} (unchanged here) *)
  let spec =
    {|forall device in {A}: forall prefix:
        (PRE |> distVals(nexthop) = {2.0.0.1}) imply
        (POST |> distVals(nexthop) = {2.0.0.1})|}
  in
  check tbool "conditional holds" true (holds spec);
  let spec_fail =
    {|forall device in {A}: forall prefix:
        (PRE |> distVals(nexthop) = {2.0.0.1}) imply
        (POST |> distVals(nexthop) = {9.9.9.9})|}
  in
  check tbool "conditional fails" false (holds spec_fail)

(* --- aggregates / arithmetic ------------------------------------------------ *)

let test_aggregates () =
  check tbool "count" true (holds "POST |> count() = 3");
  check tbool "distCnt devices" true (holds "POST |> distCnt(device) = 2");
  check tbool "distVals vrf" true
    (holds "POST |> distVals(vrf) = {global, vrf1}");
  check tbool "filtered count" true
    (holds "POST||(vrf = vrf1) |> count() = 1");
  check tbool "arith" true
    (holds "POST |> count() - PRE |> count() = 0");
  check tbool "division" true (holds "POST |> count() / PRE |> count() = 1")

let test_predicates () =
  check tbool "contains" true
    (holds "communities contains 200:1 => POST |> count() = 1");
  check tbool "in set" true
    (holds "device in {A} => POST |> count() = 2");
  check tbool "matches" true
    (holds "device matches \"A|B\" => POST |> count() = 3");
  check tbool "and/or" true
    (holds "device = A and vrf = vrf1 => POST |> count() = 1");
  check tbool "not" true
    (holds "not (device = A) => POST |> count() = 1");
  check tbool "numeric compare" true
    (holds "localPref >= 300 => PRE |> count() = 0")

let test_forall_in_empty_groups () =
  (* a listed group value absent from both RIBs still evaluates the
     sub-intent (on empty groups) — the prefix-reclamation idiom *)
  check tbool "absent prefix counts zero" true
    (holds "forall prefix in {9.9.9.0/24} : POST |> count() = 0");
  check tbool "absent prefix equality holds vacuously" true
    (holds "forall prefix in {9.9.9.0/24} : PRE = POST")

let test_forall_grouping () =
  (* each prefix has exactly 1 distinct next hop per device... across
     devices 10/24 has two nexthops *)
  check tbool "forall prefix grouped" true
    (holds "forall prefix : POST |> distCnt(nexthop) <= 2");
  check tbool "forall prefix exact" false
    (holds "forall prefix : POST |> distCnt(nexthop) = 1");
  check tbool "forall device+prefix" true
    (holds "forall device : forall prefix : POST |> distCnt(nexthop) = 1")

let test_rib_comparison () =
  check tbool "PRE != POST overall" true (holds "PRE != POST");
  check tbool "filtered equality" true
    (holds "PRE||(vrf = vrf1) = POST||(vrf = vrf1)")

(* --- parser details ----------------------------------------------------------- *)

let test_parse_errors () =
  let bad spec =
    match Parser.parse spec with Ok _ -> false | Error _ -> true
  in
  check tbool "unknown field" true (bad "frobnitz = 3 => PRE = POST");
  check tbool "dangling arrow" true (bad "prefix = 1.0.0.0/8 =>");
  check tbool "unbalanced braces" true (bad "POST |> distVals(nexthop) = {300");
  check tbool "trailing junk" true (bad "PRE = POST POST");
  check tbool "empty" true (bad "")

let test_pretty_roundtrip () =
  let specs =
    [
      "prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}";
      "forall device in {R1, R2} : forall prefix : (PRE |> distVals(nexthop) \
       = {1.2.3.4}) imply (POST |> distVals(nexthop) = {10.2.3.4})";
      "PRE||(communities contains 100:1) != POST";
      "POST |> count() - PRE |> count() <= 5";
      "not (device = A) => PRE = POST";
    ]
  in
  List.iter
    (fun spec ->
      let ast = Parser.parse_exn spec in
      let printed = Pretty.intent ast in
      let ast2 = Parser.parse_exn printed in
      check tstr
        (Printf.sprintf "roundtrip: %s" spec)
        (Pretty.intent ast) (Pretty.intent ast2))
    specs

let test_spec_size () =
  (* size = number of internal nodes; the paper's running example:
     guard(1) + predicate(1) + comparison(1) + apply(1) + aggregate(1) = 5 *)
  let ast =
    Parser.parse_exn "prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}"
  in
  check tint "size of the paper example" 5 (Ast.size ast);
  let bigger =
    Parser.parse_exn
      "forall device in {R1, R2} : routeType = BEST => PRE |> \
       distVals(nexthop) = POST |> distVals(nexthop)"
  in
  check tbool "bigger spec bigger size" true (Ast.size bigger > 5)

(* --- counterexamples ------------------------------------------------------------ *)

let test_counterexamples () =
  match
    Verify.check_spec "forall prefix : PRE = POST" ~base:base_rib
      ~updated:updated_rib
  with
  | Ok (Verify.Violated vs) ->
      check tbool "at least one violation" true (List.length vs >= 1);
      let v = List.hd vs in
      (* the offending group is prefix=10.0.0.0/24 *)
      check tbool "path names the group" true
        (List.exists
           (fun s -> s = "forall prefix=10.0.0.0/24")
           v.Verify.v_path);
      check tbool "concrete routes attached" true (v.Verify.v_routes <> []);
      (* all counterexample routes concern the failing prefix *)
      List.iter
        (fun (r : Route.t) ->
          check tstr "route prefix" "10.0.0.0/24"
            (Prefix.to_string r.Route.prefix))
        v.Verify.v_routes
  | Ok Verify.Satisfied -> Alcotest.fail "expected a violation"
  | Error msg -> Alcotest.failf "parse: %s" msg

let test_counterexample_eval () =
  match
    Verify.check_spec "POST |> count() = 99" ~base:base_rib ~updated:updated_rib
  with
  | Ok (Verify.Violated [ v ]) ->
      check tbool "reason shows values" true
        (try
           ignore (Str.search_forward (Str.regexp_string "3 = 99") v.Verify.v_reason 0);
           true
         with Not_found -> false)
  | _ -> Alcotest.fail "expected exactly one violation"

(* --- properties -------------------------------------------------------------------- *)

(* Random small intents over a fixed schema; checks parser/pretty fixpoint
   and that evaluation is total. *)
let gen_intent : Ast.intent QCheck.Gen.t =
  let open QCheck.Gen in
  let field = oneofl [ "device"; "prefix"; "localPref"; "vrf" ] in
  let value =
    oneof
      [
        map (fun n -> Value.of_int (n mod 500)) nat;
        oneofl [ Value.str "A"; Value.str "B"; Value.str "10.0.0.0/24" ];
      ]
  in
  let pred =
    oneof
      [
        map2 (fun f v -> Ast.P_cmp (f, Ast.Eq, v)) field value;
        map2 (fun f v -> Ast.P_cmp (f, Ast.Ne, v)) field value;
        map (fun f -> Ast.P_in (f, [ Value.str "A"; Value.str "B" ])) field;
      ]
  in
  let transform =
    oneof
      [
        return Ast.T_pre;
        return Ast.T_post;
        map2 (fun b p -> Ast.T_filter ((if b then Ast.T_pre else Ast.T_post), p)) bool pred;
      ]
  in
  let agg =
    oneof
      [ return Ast.Count; map (fun f -> Ast.Dist_cnt f) field;
        map (fun f -> Ast.Dist_vals f) field ]
  in
  let eval_g =
    oneof
      [
        map (fun n -> Ast.E_val (Value.of_int (n mod 10))) nat;
        map2 (fun r f -> Ast.E_agg (r, f)) transform agg;
      ]
  in
  let base_intent =
    oneof
      [
        map2 (fun r1 r2 -> Ast.G_rib_cmp (r1, true, r2)) transform transform;
        map3 (fun e1 e2 b -> Ast.G_eval_cmp (e1, (if b then Ast.Eq else Ast.Le), e2)) eval_g eval_g bool;
      ]
  in
  oneof
    [
      base_intent;
      map2 (fun p g -> Ast.G_guard (p, g)) pred base_intent;
      map2 (fun f g -> Ast.G_forall (f, g)) field base_intent;
      map2 (fun a b -> Ast.G_and (a, b)) base_intent base_intent;
      map (fun g -> Ast.G_not g) base_intent;
    ]

let prop_pretty_parse_fixpoint =
  QCheck.Test.make ~name:"pretty |> parse is a fixpoint" ~count:300
    (QCheck.make gen_intent)
    (fun g ->
      let s = Pretty.intent g in
      match Parser.parse s with
      | Ok g2 -> String.equal (Pretty.intent g2) s
      | Error _ -> false)

let prop_eval_total_and_stable =
  QCheck.Test.make ~name:"evaluation total; double negation stable" ~count:300
    (QCheck.make gen_intent)
    (fun g ->
      let v = Semantics.eval_intent g ~pre:base_rib ~post:updated_rib in
      let nn =
        Semantics.eval_intent (Ast.G_not (Ast.G_not g)) ~pre:base_rib
          ~post:updated_rib
      in
      v = nn)

let prop_violations_iff_false =
  QCheck.Test.make ~name:"verifier finds violations iff intent false"
    ~count:300 (QCheck.make gen_intent)
    (fun g ->
      let sat = Semantics.eval_intent g ~pre:base_rib ~post:updated_rib in
      match Verify.check g ~base:base_rib ~updated:updated_rib with
      | Verify.Satisfied -> sat
      | Verify.Violated _ -> not sat)

let test_ipv6_specs () =
  (* IPv6 prefixes lex as single atoms and canonicalize *)
  let v6route =
    Route.make ~device:"C" ~prefix:(pfx "2001:db8:1::/48") ~local_pref:300 ()
  in
  let base = v6route :: base_rib and updated = v6route :: updated_rib in
  let ok spec =
    match Verify.check_spec spec ~base ~updated with
    | Ok Verify.Satisfied -> true
    | Ok (Verify.Violated _) -> false
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  check tbool "v6 prefix literal" true
    (ok "prefix = 2001:db8:1::/48 => POST |> distVals(localPref) = {300}");
  check tbool "v6 in forall-in set" true
    (ok "forall prefix in {2001:db8:1::/48} : POST |> count() = 1");
  check tbool "family field" true
    (ok "family = ipv6 => POST |> distVals(device) = {C}")

let test_forall_set_valued_field () =
  (* forall over communities groups by the *set* value *)
  check tbool "forall communities" true
    (holds "forall communities : POST |> count() >= 1");
  (* two distinct community sets exist in the Figure-6 RIBs *)
  check tbool "two groups" true
    (holds
       "forall communities : POST |> distCnt(communities) = 1 and POST |> \
        count() <= 2")

let test_deep_nesting () =
  check tbool "nested booleans" true
    (holds
       "(PRE != POST and POST |> count() = 3) or not (device = A => PRE = \
        POST)");
  check tbool "guard inside forall inside guard" true
    (holds
       "vrf = global => forall device : routeType = BEST => POST |> \
        distCnt(prefix) = 1")

let suite =
  [
    ("paper intent (a)", `Quick, test_paper_intent_a);
    ("paper intent (b)", `Quick, test_paper_intent_b);
    ("paper unicode symbols", `Quick, test_paper_symbols);
    ("use case: unchanged next hops", `Quick, test_usecase_unchanged_nexthops);
    ("use case: blocked community", `Quick, test_usecase_block_community);
    ("use case: conditional change", `Quick, test_usecase_conditional_change);
    ("aggregates and arithmetic", `Quick, test_aggregates);
    ("predicates", `Quick, test_predicates);
    ("forall grouping", `Quick, test_forall_grouping);
    ("forall-in with empty groups", `Quick, test_forall_in_empty_groups);
    ("rib comparison", `Quick, test_rib_comparison);
    ("parse errors", `Quick, test_parse_errors);
    ("pretty roundtrip", `Quick, test_pretty_roundtrip);
    ("spec size metric", `Quick, test_spec_size);
    ("counterexamples: forall groups", `Quick, test_counterexamples);
    ("counterexamples: eval values", `Quick, test_counterexample_eval);
    ("IPv6 literals in specs", `Quick, test_ipv6_specs);
    ("forall over a set-valued field", `Quick, test_forall_set_valued_field);
    ("deeply nested intents", `Quick, test_deep_nesting);
    qtest prop_pretty_parse_fixpoint;
    qtest prop_eval_total_and_stable;
    qtest prop_violations_iff_false;
  ]
