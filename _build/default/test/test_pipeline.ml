(* Integration tests of the core Hoyan pipeline: pre-processing, intents,
   change verification end-to-end, k-failure checking, and audits. *)

open Hoyan_net
module G = Hoyan_workload.Generator
module B = Hoyan_workload.Builder
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Preprocess = Hoyan_core.Preprocess
module Intents = Hoyan_core.Intents
module Verify_request = Hoyan_core.Verify_request
module Kfailure = Hoyan_core.Kfailure
module Audit = Hoyan_core.Audit
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let pfx = Prefix.of_string_exn

let scenario = lazy (G.generate G.small)

let base =
  lazy
    (let g = Lazy.force scenario in
     Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
       ~monitored_flows:g.G.flows)

(* --- pre-processing ------------------------------------------------------ *)

let test_route_rules () =
  let g = Lazy.force scenario in
  let aggregate_from_dc =
    Route.make ~device:(List.hd g.G.borders) ~prefix:(pfx "150.0.0.0/16")
      ~as_path:As_path.empty ~source:Route.Ebgp ()
  in
  let from_unknown_device =
    Route.make ~device:"NOSUCH" ~prefix:(pfx "9.9.9.0/24") ()
  in
  let martian = Route.make ~device:(List.hd g.G.borders) ~prefix:(pfx "127.0.0.0/8") () in
  let monitored = aggregate_from_dc :: from_unknown_device :: martian :: [] in
  let inputs = Preprocess.build_input_routes g.G.model monitored in
  check tint "only the aggregate survives" 1 (List.length inputs);
  (* the historically flawed rule also drops the empty-AS-path aggregate *)
  let flawed =
    Preprocess.build_input_routes
      ~rules:(Preprocess.default_rules @ [ Preprocess.Discard_empty_as_path ])
      g.G.model monitored
  in
  check tint "flawed rule drops the DC aggregate" 0 (List.length flawed)

let test_flow_rules () =
  let g = Lazy.force scenario in
  let f1 =
    Flow.make ~src:(B.ip "1.2.3.4") ~dst:(B.ip "100.0.0.1")
      ~ingress:(List.hd g.G.borders) ~volume:10. ()
  in
  let dup = { f1 with Flow.volume = 5. } in
  let zero = { f1 with Flow.volume = 0.; dport = 99 } in
  let unknown = { f1 with Flow.ingress = "NOSUCH" } in
  let flows = Preprocess.build_input_flows g.G.model [ f1; dup; zero; unknown ] in
  check tint "merged and filtered" 1 (List.length flows);
  check (Alcotest.float 0.01) "volumes summed" 15. (List.hd flows).Flow.volume

(* --- end-to-end change verification --------------------------------------- *)

let test_change_verification_pass_and_fail () =
  let b = Lazy.force base in
  let g = Lazy.force scenario in
  let border = List.hd g.G.borders in
  let vendor =
    (Hoyan_sim.Model.config b.Preprocess.b_model border |> Option.get)
      .Types.dc_vendor
  in
  (* a change raising local-pref of 100.0.0.0/24 on one border *)
  let block =
    if String.equal vendor "vendorA" then
      "route-map BUMP permit 10\n match ip prefix-list TARGET\n set \
       local-preference 444\nroute-map BUMP permit 20\nip prefix-list TARGET \
       seq 5 permit 100.0.0.0/24\nrouter bgp 64512\n neighbor 172.16.0.1 \
       remote-as 7018\n neighbor 172.16.0.1 route-map BUMP in\n"
    else
      "route-policy BUMP permit node 10\n if-match ip-prefix TARGET\n apply \
       local-preference 444\nroute-policy BUMP permit node 20\nip ip-prefix \
       TARGET index 5 permit 100.0.0.0 24\nbgp 64512\n peer 172.16.0.1 \
       as-number 7018\n peer 172.16.0.1 route-policy BUMP import\n"
  in
  ignore block;
  (* The injected input routes are already post-import, so instead verify a
     plan that *deletes* a policy node and check the no-change intent. *)
  let plan = Cp.make "noop-plan" ~commands:[] in
  let rq =
    {
      Verify_request.rq_name = "no-change";
      rq_plan = plan;
      rq_intents = [ Intents.Route_change "PRE = POST" ];
    }
  in
  let res = Verify_request.run b rq in
  check tbool "no-op plan keeps RIBs identical" true res.Verify_request.vr_ok;
  (* now a plan that actually changes routing: drop an RR's export policy
     node so extra routes propagate *)
  let rr =
    Topology.devices (Hoyan_sim.Model.(b.Preprocess.b_model.topo))
    |> List.find (fun (d : Topology.device) -> d.Topology.role = Topology.Rr)
  in
  let rr_vendor =
    (Hoyan_sim.Model.config b.Preprocess.b_model rr.Topology.name |> Option.get)
      .Types.dc_vendor
  in
  let del_cmd =
    if String.equal rr_vendor "vendorA" then "no route-map RR_OUT 20\n"
    else "undo route-policy RR_OUT node 20\n"
  in
  let plan2 = Cp.make "open-the-gates" ~commands:[ (rr.Topology.name, del_cmd) ] in
  let rq2 =
    {
      Verify_request.rq_name = "should-detect-change";
      rq_plan = plan2;
      rq_intents = [ Intents.Route_change "PRE = POST" ];
    }
  in
  let res2 = Verify_request.run b rq2 in
  check tbool "route leakage detected as violation" false
    res2.Verify_request.vr_ok;
  check tbool "counterexample routes emitted" true
    (List.exists
       (fun (v : Intents.violation) -> v.Intents.v_routes <> [])
       res2.Verify_request.vr_violations)

let test_new_prefix_announcement () =
  let b = Lazy.force base in
  let g = Lazy.force scenario in
  let border = List.hd g.G.borders in
  let new_route =
    Route.make ~device:border ~prefix:(pfx "203.0.113.0/24")
      ~as_path:(As_path.of_asns [ 7018 ])
      ~source:Route.Ebgp ~local_pref:200 ()
  in
  let devices =
    Topology.device_names Hoyan_sim.Model.(b.Preprocess.b_model.topo)
    |> List.filteri (fun i _ -> i < 5)
  in
  let rq =
    {
      Verify_request.rq_name = "announce";
      rq_plan = { (Cp.make "announce") with Cp.cp_new_routes = [ new_route ] };
      rq_intents =
        [
          Intents.Route_reach
            { rr_prefix = pfx "203.0.113.0/24"; rr_devices = devices;
              rr_expect = true };
        ];
    }
  in
  let res = Verify_request.run b rq in
  check tbool "new prefix reaches the sampled devices" true
    res.Verify_request.vr_ok

let test_distributed_mode_agrees () =
  let b = Lazy.force base in
  let rq =
    {
      Verify_request.rq_name = "dist";
      rq_plan = Cp.make "noop";
      rq_intents = [ Intents.Route_change "PRE = POST" ];
    }
  in
  let direct = Verify_request.run ~mode:Verify_request.Direct b rq in
  let dist =
    Verify_request.run
      ~mode:(Verify_request.Distributed { servers = 4; subtasks = 9 })
      b rq
  in
  check tbool "distributed mode passes too" true dist.Verify_request.vr_ok;
  check tbool "same rib either way" true
    (Rib.Global.equal direct.Verify_request.vr_updated_rib
       dist.Verify_request.vr_updated_rib)

(* --- traffic intents -------------------------------------------------------- *)

let test_load_intent () =
  let b = Lazy.force base in
  let rq =
    {
      Verify_request.rq_name = "loads";
      rq_plan = Cp.make "noop";
      rq_intents = [ Intents.Max_utilization 1.0 ];
    }
  in
  let res = Verify_request.run b rq in
  check tbool "no link above 100%" true res.Verify_request.vr_ok;
  (* an absurd bound must be violated, with links as counterexamples *)
  let rq2 =
    { rq with Verify_request.rq_intents = [ Intents.Max_utilization 1e-9 ] }
  in
  let res2 = Verify_request.run b rq2 in
  check tbool "tiny bound violated" false res2.Verify_request.vr_ok;
  check tbool "offending links listed" true
    (List.exists
       (fun (v : Intents.violation) -> v.Intents.v_links <> [])
       res2.Verify_request.vr_violations)

(* --- k-failure ------------------------------------------------------------- *)

let test_kfailure () =
  (* line topology: the single link is a SPOF; k=1 must find it *)
  let b = B.create () in
  B.add_device b ~name:"A" ~vendor:"vendorA" ~asn:65001
    ~router_id:(B.ip "1.1.1.1") ();
  B.add_device b ~name:"Bx" ~vendor:"vendorA" ~asn:65002
    ~router_id:(B.ip "2.2.2.2") ();
  let a, bb = B.link b ~a:"A" ~b:"Bx" ~subnet:(pfx "10.0.0.0/31") () in
  B.bgp_session b ~a:"A" ~b:"Bx" ~a_addr:a ~b_addr:bb ();
  let model = B.build b in
  let input = [ B.input_route ~device:"A" ~prefix:"99.0.0.0/24" ~as_path:[ 7 ] () ] in
  let prop =
    Kfailure.prefix_survives ~prefix:(pfx "99.0.0.0/24") ~devices:[ "Bx" ]
  in
  let res = Kfailure.check model ~input_routes:input ~flows:[] ~k:1 prop in
  check tbool "SPOF found" true (res.Kfailure.kr_violations <> []);
  (* redundant topology: no violation at k=1 *)
  let b2 = B.create () in
  B.add_device b2 ~name:"A" ~vendor:"vendorA" ~asn:65001
    ~router_id:(B.ip "1.1.1.1") ();
  B.add_device b2 ~name:"Bx" ~vendor:"vendorA" ~asn:65002
    ~router_id:(B.ip "2.2.2.2") ();
  let a1, b1 = B.link b2 ~a:"A" ~b:"Bx" ~subnet:(pfx "10.0.0.0/31") () in
  let a2, b2' = B.link b2 ~a:"A" ~b:"Bx" ~subnet:(pfx "10.0.1.0/31") () in
  B.bgp_session b2 ~a:"A" ~b:"Bx" ~a_addr:a1 ~b_addr:b1 ();
  B.bgp_session b2 ~a:"A" ~b:"Bx" ~a_addr:a2 ~b_addr:b2' ();
  let model2 = B.build b2 in
  let res2 = Kfailure.check model2 ~input_routes:input ~flows:[] ~k:1 prop in
  ignore res2;
  (* NB: removing one parallel link removes both (by device pair), so this
     still fails; check instead that the enumeration covered scenarios *)
  check tbool "scenarios enumerated" true (res.Kfailure.kr_scenarios >= 1)

(* --- audits ------------------------------------------------------------------ *)

let test_audits () =
  let b = Lazy.force base in
  let g = Lazy.force scenario in
  let rib = Lazy.force b.Preprocess.b_rib in
  let traffic = b.Preprocess.b_traffic in
  let model = b.Preprocess.b_model in
  (* borders form a group that should all carry the default route *)
  let tasks =
    [
      Audit.critical_prefix_everywhere ~prefix:(pfx "0.0.0.0/0");
      Audit.utilization_bound ~max_util:1.0;
      Audit.no_leak ~name:"no-loopbacks-on-borders"
        ~prefixes:[ pfx "192.0.2.0/24" ]
        ~devices:g.G.borders;
    ]
  in
  let findings = Audit.run_all tasks ~model ~rib ~traffic in
  check tint "clean day" 0 (List.length findings);
  (* seed a leak and re-audit *)
  let leaked =
    Route.make ~device:(List.hd g.G.borders) ~prefix:(pfx "192.0.2.0/24") ()
  in
  let findings2 = Audit.run_all tasks ~model ~rib:(leaked :: rib) ~traffic in
  check tbool "leak detected" true
    (List.exists
       (fun (f : Audit.finding) ->
         String.length f.Audit.af_task >= 7
         && String.sub f.Audit.af_task 0 7 = "no-leak")
       findings2)

let suite =
  [
    ("input route rules", `Quick, test_route_rules);
    ("input flow rules", `Quick, test_flow_rules);
    ("change verification pass/fail", `Slow, test_change_verification_pass_and_fail);
    ("new prefix announcement", `Slow, test_new_prefix_announcement);
    ("distributed mode agrees", `Slow, test_distributed_mode_agrees);
    ("traffic load intents", `Slow, test_load_intent);
    ("k-failure checking", `Quick, test_kfailure);
    ("daily audits", `Slow, test_audits);
  ]
