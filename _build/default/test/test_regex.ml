(* Tests for the regular-expression engine (hoyan.regex). *)

open Hoyan_regex


(* fixed seed: the property suites are deterministic run to run *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |]) t

let check = Alcotest.check
let tbool = Alcotest.bool

let m pattern input = Regex.matches_str pattern input

let test_literals () =
  check tbool "exact" true (m "abc" "abc");
  check tbool "not prefix" false (m "abc" "abcd");
  check tbool "not substring" false (m "abc" "xabc");
  check tbool "empty pattern, empty input" true (m "" "")

let test_star_plus_opt () =
  check tbool "a* empty" true (m "a*" "");
  check tbool "a* many" true (m "a*" "aaaa");
  check tbool "a+ needs one" false (m "a+" "");
  check tbool "a+ many" true (m "a+" "aaa");
  check tbool "a? zero" true (m "a?" "");
  check tbool "a? one" true (m "a?" "a");
  check tbool "a? two" false (m "a?" "aa");
  check tbool "nested star" true (m "(ab)*" "ababab");
  check tbool "star of alt" true (m "(a|b)*" "abba")

let test_dot_class () =
  check tbool "dot" true (m "a.c" "abc");
  check tbool "dot any" true (m "..." "xyz");
  check tbool "class" true (m "[abc]+" "cab");
  check tbool "class miss" false (m "[abc]+" "cad");
  check tbool "range" true (m "[0-9]+" "12345");
  check tbool "negated" true (m "[^0-9]+" "abc");
  check tbool "negated miss" false (m "[^0-9]+" "a1c")

let test_alternation () =
  check tbool "left" true (m "cat|dog" "cat");
  check tbool "right" true (m "cat|dog" "dog");
  check tbool "neither" false (m "cat|dog" "cow");
  check tbool "grouped" true (m "(ca|do)t" "dot")

let test_as_path_patterns () =
  (* the pattern style from the paper: aspath matches ".* 123 .*" *)
  check tbool "middle" true (m ".* 123 .*" "100 123 456");
  check tbool "absent" false (m ".* 123 .*" "100 456");
  (* NB: "123" appearing inside another ASN should not match with the
     space-delimited pattern *)
  check tbool "substring ASN" false (m ".* 123 .*" "1234 5678");
  check tbool "first" true (m "123 .*" "123 456");
  check tbool "escape dot" true (m "10\\.0\\.0\\.0" "10.0.0.0");
  check tbool "escape dot strict" false (m "10\\.0\\.0\\.0" "10a0b0c0")

let test_search () =
  let t = Regex.compile "123" in
  check tbool "search finds" true (Regex.search t "100 123 456");
  check tbool "search absent" false (Regex.search t "456 789");
  check tbool "search empty pattern" true (Regex.search (Regex.compile "a*") "zzz")

let test_parse_errors () =
  check tbool "dangling star" true (Regex.compile_opt "*a" = None);
  check tbool "unbalanced paren" true (Regex.compile_opt "(ab" = None);
  check tbool "unterminated class" true (Regex.compile_opt "[ab" = None);
  check tbool "trailing paren" true (Regex.compile_opt "ab)" = None)

let test_legacy_flaw () =
  (* The legacy engine treats x* as x? — so ".* 123 .*" fails when 123 is
     more than one hop deep.  This is the §5.3 flawed-regex issue. *)
  let pat = ".* 123 .*" in
  check tbool "correct engine: deep match" true (m pat "1 2 3 123 4 5");
  check tbool "legacy engine misses deep match" false
    (Regex.Legacy.matches_str pat "1 2 3 123 4 5");
  (* both agree on shallow matches *)
  check tbool "legacy ok shallow" true (Regex.Legacy.matches_str "123 .*" "123 4")

(* Property: our engine agrees with Str (the stdlib regex) on a simple
   fragment (literals, dot, star over single chars) where their semantics
   coincide under full anchoring. *)
let frag_gen =
  let open QCheck.Gen in
  let atom = oneofl [ "a"; "b"; "c"; "." ] in
  let piece = map2 (fun a star -> if star then a ^ "*" else a) atom bool in
  map (String.concat "") (list_size (int_range 1 6) piece)

let input_gen =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (int_range 0 8) (oneofl [ "a"; "b"; "c"; "d" ])))

let prop_agrees_with_str =
  QCheck.Test.make ~name:"engine agrees with Str on simple fragment"
    ~count:500
    (QCheck.make QCheck.Gen.(pair frag_gen input_gen))
    (fun (pat, input) ->
      let ours = m pat input in
      let theirs =
        Str.string_match (Str.regexp (pat ^ "$")) input 0
        && Str.match_end () = String.length input
      in
      ours = theirs)

let prop_star_idempotent =
  QCheck.Test.make ~name:"(r*)* = r* on inputs" ~count:200
    (QCheck.make input_gen)
    (fun input ->
      m "(a|b)*" input = m "((a|b)*)*" input)

let suite =
  [
    ("literals", `Quick, test_literals);
    ("star plus opt", `Quick, test_star_plus_opt);
    ("dot and classes", `Quick, test_dot_class);
    ("alternation", `Quick, test_alternation);
    ("as-path patterns", `Quick, test_as_path_patterns);
    ("substring search", `Quick, test_search);
    ("parse errors", `Quick, test_parse_errors);
    ("legacy flaw reproduction", `Quick, test_legacy_flaw);
    qtest prop_agrees_with_str;
    qtest prop_star_idempotent;
  ]
