(* Integration tests of the scripted paper incidents (Figures 9/10) and
   the end-to-end properties the case studies rely on. *)

open Hoyan_net
module S = Hoyan_workload.Scenarios
module V = Hoyan_core.Verify_request
module Intents = Hoyan_core.Intents
module Cp = Hoyan_config.Change_plan
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_fig10a () =
  let sc = S.fig10a () in
  let res = V.run sc.S.sc_base sc.S.sc_request in
  check tbool "the risky change is flagged" false res.V.vr_ok;
  (* the three expected violations, in substance *)
  let has pred = List.exists pred res.V.vr_violations in
  check tbool "route missing on M1" true
    (has (fun v ->
         try
           ignore (Str.search_forward (Str.regexp_string "on M1") v.Intents.v_detail 0);
           true
         with Not_found -> false));
  check tbool "flow still via A" true
    (has (fun (v : Intents.violation) ->
         List.exists
           (fun (p : Traffic_sim.path) ->
             p.Traffic_sim.hops = [ "M1"; "A"; "M2"; "B" ])
           v.Intents.v_paths));
  check tbool "A->M2 overloaded" true
    (has (fun v -> List.exists (fun ((a, b), _) -> a = "A" && b = "M2") v.Intents.v_links))

let test_fig10a_corrected () =
  (* with node 20 pre-installed on M1 too, the same change verifies *)
  let sc = S.fig10a () in
  let fixed_plan =
    Cp.make "fixed"
      ~commands:
        [
          ( "M1",
            "route-map FROM_B permit 20\n match ip prefix-list TARGET\n set \
             local-preference 300\nno route-map FROM_B 10\n" );
          ("M2", "no route-map FROM_B 10\n");
        ]
  in
  let res =
    V.run sc.S.sc_base { sc.S.sc_request with V.rq_plan = fixed_plan }
  in
  check tbool "corrected plan verifies" true res.V.vr_ok

let test_fig10b () =
  let sc = S.fig10b () in
  let res = V.run sc.S.sc_base sc.S.sc_request in
  check tbool "flagged" false res.V.vr_ok;
  (* the stated intent (targets moved to C) passes; the collateral fails *)
  let detail_of pred =
    List.filter (fun (v : Intents.violation) -> pred v) res.V.vr_violations
  in
  check tbool "no violation about the target prefixes' nexthop" true
    (detail_of (fun v ->
         try
           ignore
             (Str.search_forward (Str.regexp_string "2001:db8:1::/48")
                v.Intents.v_intent 0);
           (* the first intent (targets moved) must NOT be violated *)
           try
             ignore
               (Str.search_forward (Str.regexp_string "10.255.1.1")
                  v.Intents.v_intent 0);
             true
           with Not_found -> false
         with Not_found -> false)
    = []);
  check tbool "overload detected" true
    (List.exists
       (fun (v : Intents.violation) -> v.Intents.v_links <> [])
       res.V.vr_violations);
  check tbool "'others do not change' violated" true
    (List.exists
       (fun (v : Intents.violation) ->
         try
           ignore
             (Str.search_forward (Str.regexp_string "2001:db8:8::/48")
                v.Intents.v_intent 0);
           true
         with Not_found -> false)
       res.V.vr_violations)

let test_fig9_models_diverge_only_at_a () =
  let sc = S.fig9 () in
  let live =
    (Route_sim.run sc.S.dg_live_model ~input_routes:sc.S.dg_inputs ()).Route_sim.rib
  in
  let sim =
    (Route_sim.run sc.S.dg_hoyan_model ~input_routes:sc.S.dg_inputs ()).Route_sim.rib
  in
  let diff =
    Rib.Global.diff live sim @ Rib.Global.diff sim live
  in
  check tbool "models diverge" true (diff <> []);
  List.iter
    (fun (r : Route.t) ->
      check Alcotest.string "divergence confined to A" "A" r.Route.device)
    diff;
  (* the live network concentrates the flow on A->Bx; the pre-fix model
     splits it *)
  let load model rib =
    let tr = Traffic_sim.run model ~rib ~flows:[ sc.S.dg_flow ] () in
    Option.value (Hashtbl.find_opt tr.Traffic_sim.link_load sc.S.dg_link) ~default:0.
  in
  let live_load = load sc.S.dg_live_model live in
  let sim_load = load sc.S.dg_hoyan_model sim in
  check tbool "simulated load underestimates" true (sim_load < live_load -. 1.)

let test_intents_subpath () =
  check tbool "subpath found" true
    (Intents.contains_subpath [ "B"; "C" ] [ "A"; "B"; "C"; "D" ]);
  check tbool "subpath must be contiguous" false
    (Intents.contains_subpath [ "A"; "C" ] [ "A"; "B"; "C" ]);
  check tbool "empty subpath" true (Intents.contains_subpath [] [ "A" ]);
  check tbool "full match" true
    (Intents.contains_subpath [ "A"; "B" ] [ "A"; "B" ])

let test_centralized_runner () =
  let g = Hoyan_workload.Generator.generate Hoyan_workload.Generator.small in
  let module C = Hoyan_sim.Centralized in
  (* a huge cap: everything completes *)
  let ok =
    C.run ~chunks:10 ~mem_cap_bytes:max_int g.Hoyan_workload.Generator.model
      ~input_routes:g.Hoyan_workload.Generator.input_routes ()
  in
  check tint "no OOM with a huge cap" 0 ok.C.c_oom_prefixes;
  check (Alcotest.float 0.001) "all completed" 1.0 (C.completed_frac ok);
  (* a tiny cap: everything OOMs *)
  let bad =
    C.run ~chunks:10 ~mem_cap_bytes:1 g.Hoyan_workload.Generator.model
      ~input_routes:g.Hoyan_workload.Generator.input_routes ()
  in
  check tint "nothing completes with a 1-byte cap" 0 bad.C.c_simulated_prefixes;
  check tbool "OOMs reported" true (C.oom_frac bad > 0.99)

let suite =
  [
    ("figure 10a incident", `Quick, test_fig10a);
    ("figure 10a corrected plan", `Quick, test_fig10a_corrected);
    ("figure 10b incident", `Quick, test_fig10b);
    ("figure 9 divergence", `Quick, test_fig9_models_diverge_only_at_a);
    ("flow-path subpath matching", `Quick, test_intents_subpath);
    ("centralized runner memory model", `Slow, test_centralized_runner);
  ]
