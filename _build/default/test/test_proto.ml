(* Focused protocol tests: SR segment expansion, IS-IS TE awareness,
   well-known communities, regex injection into policies, and the
   post-change validator. *)

open Hoyan_net
module B = Hoyan_workload.Builder
module Types = Hoyan_config.Types
module Isis = Hoyan_proto.Isis
module Sr = Hoyan_proto.Sr
module Route_sim = Hoyan_sim.Route_sim
module Model = Hoyan_sim.Model
module Route_monitor = Hoyan_monitor.Route_monitor
module Postcheck = Hoyan_diag.Postcheck

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let pfx = Prefix.of_string_exn

(* A-B-C-D line plus a chord A-D. *)
let sr_net () =
  let b = B.create () in
  List.iter
    (fun (n, id) ->
      B.add_device b ~name:n ~vendor:"vendorA" ~asn:65000 ~router_id:(B.ip id) ())
    [ ("A", "1.1.1.1"); ("B", "2.2.2.2"); ("C", "3.3.3.3"); ("D", "4.4.4.4") ];
  ignore (B.link b ~a:"A" ~b:"B" ~subnet:(pfx "10.1.0.0/31") ~cost:10 ());
  ignore (B.link b ~a:"B" ~b:"C" ~subnet:(pfx "10.2.0.0/31") ~cost:10 ());
  ignore (B.link b ~a:"C" ~b:"D" ~subnet:(pfx "10.3.0.0/31") ~cost:10 ());
  ignore (B.link b ~a:"A" ~b:"D" ~subnet:(pfx "10.4.0.0/31") ~cost:5 ());
  b

let test_sr_igp_path_tunnel () =
  let b = sr_net () in
  B.add_sr_policy b "A"
    { Types.sp_name = "TO_D"; sp_endpoint = B.ip "4.4.4.4"; sp_color = 1;
      sp_segments = []; sp_preference = 100 };
  let model = B.build b in
  let tunnels = Model.Smap.find "A" model.Model.tunnels in
  check tint "one tunnel" 1 (List.length tunnels);
  let t = List.hd tunnels in
  (* IGP shortest path uses the cheap chord *)
  check Alcotest.(list string) "igp path" [ "A"; "D" ] t.Sr.tn_path;
  check tbool "reaches endpoint" true (Sr.reaches tunnels (B.ip "4.4.4.4"));
  check tbool "not other addresses" false (Sr.reaches tunnels (B.ip "3.3.3.3"))

let test_sr_explicit_segments () =
  let b = sr_net () in
  (* a detour via waypoint C: each leg follows the IGP shortest path, so
     the tunnel runs A-D-C (cheapest way to C) and then back C-D *)
  B.add_sr_policy b "A"
    { Types.sp_name = "VIA_C"; sp_endpoint = B.ip "4.4.4.4"; sp_color = 2;
      sp_segments = [ "C"; "D" ]; sp_preference = 50 };
  let model = B.build b in
  let tunnels = Model.Smap.find "A" model.Model.tunnels in
  let t = List.hd tunnels in
  check Alcotest.(list string) "explicit waypoints honoured"
    [ "A"; "D"; "C"; "D" ] t.Sr.tn_path

let test_isis_te_awareness () =
  (* a TE-flagged interface with a big cost: honoured only when the model
     is TE-aware (the pre-2023 gap of §5.3) *)
  let b = B.create () in
  List.iter
    (fun (n, id) ->
      B.add_device b ~name:n ~vendor:"vendorA" ~asn:65000 ~router_id:(B.ip id) ())
    [ ("A", "1.1.1.1"); ("B", "2.2.2.2"); ("C", "3.3.3.3") ];
  ignore (B.link b ~a:"A" ~b:"B" ~subnet:(pfx "10.1.0.0/31") ~cost:100 ~te:true ());
  ignore (B.link b ~a:"A" ~b:"C" ~subnet:(pfx "10.2.0.0/31") ~cost:10 ());
  ignore (B.link b ~a:"C" ~b:"B" ~subnet:(pfx "10.3.0.0/31") ~cost:10 ());
  let aware = Isis.compute ~te_aware:true (B.topo b) (B.configs b) in
  let blind = Isis.compute ~te_aware:false (B.topo b) (B.configs b) in
  check (Alcotest.option Alcotest.int) "TE-aware avoids the expensive link"
    (Some 20)
    (Isis.cost aware ~src:"A" ~dst:"B");
  check (Alcotest.option Alcotest.int) "TE-blind uses the default metric"
    (Some 10)
    (Isis.cost blind ~src:"A" ~dst:"B")

let line_with_pass () =
  let b = B.create () in
  B.add_device b ~name:"R1" ~vendor:"vendorA" ~asn:65001
    ~router_id:(B.ip "1.1.1.1") ();
  B.add_device b ~name:"R2" ~vendor:"vendorA" ~asn:65002
    ~router_id:(B.ip "2.2.2.2") ();
  B.add_device b ~name:"R3" ~vendor:"vendorA" ~asn:65003
    ~router_id:(B.ip "3.3.3.3") ();
  let a12, b12 = B.link b ~a:"R1" ~b:"R2" ~subnet:(pfx "10.12.0.0/31") () in
  let a23, b23 = B.link b ~a:"R2" ~b:"R3" ~subnet:(pfx "10.23.0.0/31") () in
  B.bgp_session b ~a:"R1" ~b:"R2" ~a_addr:a12 ~b_addr:b12 ();
  B.bgp_session b ~a:"R2" ~b:"R3" ~a_addr:a23 ~b_addr:b23 ();
  b

let test_well_known_communities () =
  let b = line_with_pass () in
  let model = B.build b in
  let mk prefix communities =
    B.input_route ~device:"R1" ~prefix ~as_path:[ 7018 ]
      ~communities ()
  in
  let inputs =
    [
      mk "99.0.0.0/24" [];
      mk "99.1.0.0/24" [ "65535:65281" ] (* NO_EXPORT *);
      mk "99.2.0.0/24" [ "65535:65282" ] (* NO_ADVERTISE *);
    ]
  in
  let rib = (Route_sim.run model ~input_routes:inputs ()).Route_sim.rib in
  let present dev p =
    List.exists
      (fun (r : Route.t) ->
        String.equal r.Route.device dev && Prefix.equal r.Route.prefix (pfx p))
      rib
  in
  check tbool "plain route propagates" true (present "R2" "99.0.0.0/24");
  (* R1-R2 is eBGP: NO_EXPORT stops at R1 *)
  check tbool "NO_EXPORT blocked over eBGP" false (present "R2" "99.1.0.0/24");
  check tbool "NO_ADVERTISE never advertised" false (present "R2" "99.2.0.0/24");
  check tbool "both stay in R1's RIB" true
    (present "R1" "99.1.0.0/24" && present "R1" "99.2.0.0/24")

let test_no_export_crosses_ibgp () =
  (* NO_EXPORT still crosses iBGP sessions *)
  let b = B.create () in
  B.add_device b ~name:"X" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "1.1.1.1") ();
  B.add_device b ~name:"Y" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "2.2.2.2") ();
  ignore (B.link b ~a:"X" ~b:"Y" ~subnet:(pfx "10.0.0.0/31") ());
  B.ibgp_loopback_session b ~a:"X" ~b:"Y" ~b_rr_client:true ();
  let model = B.build b in
  let inputs =
    [ B.input_route ~device:"Y" ~prefix:"99.1.0.0/24" ~nexthop:"2.2.2.2"
        ~communities:[ "65535:65281" ] ~as_path:[ 7 ] () ]
  in
  let rib = (Route_sim.run model ~input_routes:inputs ()).Route_sim.rib in
  check tbool "NO_EXPORT crosses iBGP" true
    (List.exists
       (fun (r : Route.t) ->
         String.equal r.Route.device "X"
         && Prefix.equal r.Route.prefix (pfx "99.1.0.0/24"))
       rib)

let test_postcheck () =
  let b = line_with_pass () in
  let model = B.build b in
  let inputs =
    [ B.input_route ~device:"R1" ~prefix:"99.0.0.0/24" ~as_path:[ 7018 ] () ]
  in
  let live_rib = (Route_sim.run model ~input_routes:inputs ()).Route_sim.rib in
  let live_tr =
    Hoyan_sim.Traffic_sim.run model ~rib:live_rib ~flows:[] ()
  in
  let monitored = Route_monitor.observe (Route_monitor.create ()) live_rib in
  (* consistent rollout: live matches the simulation *)
  let v =
    Postcheck.validate model ~input_routes:inputs ~flows:[]
      ~live_monitored_rib:monitored
      ~live_monitored_loads:live_tr.Hoyan_sim.Traffic_sim.link_load
  in
  check tbool "consistent rollout passes" true v.Postcheck.pc_consistent;
  (* a vendor bug on the live network: R3 dropped the route *)
  let broken =
    List.filter
      (fun (r : Route.t) -> not (String.equal r.Route.device "R3"))
      monitored
  in
  let v2 =
    Postcheck.validate model ~input_routes:inputs ~flows:[]
      ~live_monitored_rib:broken
      ~live_monitored_loads:live_tr.Hoyan_sim.Traffic_sim.link_load
  in
  check tbool "inconsistency triggers rollback" false v2.Postcheck.pc_consistent

let test_regex_injection_into_model () =
  (* the model-level regex hook changes policy behaviour end to end *)
  let b = line_with_pass () in
  B.update_config b "R2" (fun cfg ->
      { cfg with
        Types.dc_aspath_filters =
          Types.Smap.add "F"
            { Types.af_name = "F";
              af_entries =
                [ { Types.ae_seq = 5; ae_action = Types.Permit;
                    ae_regex = ".* 666 .*" } ] }
            cfg.Types.dc_aspath_filters });
  B.add_policy b "R2"
    (B.policy "IMP"
       [
         B.node 10 ~action:(Some Types.Deny)
           ~matches:[ Types.Match_aspath_filter "F" ];
         B.node 20;
       ]);
  B.update_config b "R2" (fun cfg ->
      { cfg with
        Types.dc_bgp =
          { cfg.Types.dc_bgp with
            Types.bgp_neighbors =
              List.map
                (fun (nb : Types.neighbor) ->
                  if Ip.equal nb.Types.nb_addr (B.ip "10.12.0.0") then
                    { nb with Types.nb_import = Some "IMP" }
                  else nb)
                cfg.Types.dc_bgp.Types.bgp_neighbors } });
  let inputs =
    [ B.input_route ~device:"R1" ~prefix:"66.0.0.0/24"
        ~as_path:[ 1; 2; 666; 3 ] () ]
  in
  let strict = B.build b in
  let flawed = B.build ~regex:Hoyan_regex.Regex.Legacy.matches_str b in
  let has model =
    List.exists
      (fun (r : Route.t) ->
        String.equal r.Route.device "R2"
        && Prefix.equal r.Route.prefix (pfx "66.0.0.0/24"))
      (Route_sim.run model ~input_routes:inputs ()).Route_sim.rib
  in
  check tbool "correct engine denies the deep match" false (has strict);
  check tbool "legacy engine lets it through" true (has flawed)

let suite =
  [
    ("SR tunnel along the IGP path", `Quick, test_sr_igp_path_tunnel);
    ("SR explicit segment list", `Quick, test_sr_explicit_segments);
    ("IS-IS TE awareness", `Quick, test_isis_te_awareness);
    ("well-known communities (eBGP)", `Quick, test_well_known_communities);
    ("NO_EXPORT crosses iBGP", `Quick, test_no_export_crosses_ibgp);
    ("post-change validation", `Quick, test_postcheck);
    ("regex engine injection", `Quick, test_regex_injection_into_model);
  ]
