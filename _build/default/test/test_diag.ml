(* Tests for the monitoring simulators and the accuracy-diagnosis
   framework: cross-validation, fault detection, root-cause analysis
   (the Figure-9 case), issue classification, and the Table-5 VSB
   differential harness. *)

open Hoyan_net
module G = Hoyan_workload.Generator
module B = Hoyan_workload.Builder
module Types = Hoyan_config.Types
module Route_monitor = Hoyan_monitor.Route_monitor
module Traffic_monitor = Hoyan_monitor.Traffic_monitor
module Topo_monitor = Hoyan_monitor.Topo_monitor
module Faults = Hoyan_monitor.Faults
module Validate = Hoyan_diag.Validate
module Rootcause = Hoyan_diag.Rootcause
module Issues = Hoyan_diag.Issues
module Vsb_test = Hoyan_diag.Vsb_test
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let pfx = Prefix.of_string_exn

let scenario = lazy (G.generate G.small)

let sim_state =
  lazy
    (let g = Lazy.force scenario in
     let rib = (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib in
     let traffic = Traffic_sim.run g.G.model ~rib ~flows:g.G.flows () in
     (g, rib, traffic))

(* --- monitors --------------------------------------------------------------- *)

let test_route_monitor_modes () =
  let _, rib, _ = Lazy.force sim_state in
  let bgp_routes =
    List.filter (fun (r : Route.t) -> r.Route.proto = Route.Bgp) rib
  in
  let agent = Route_monitor.observe (Route_monitor.create ()) rib in
  let bmp =
    Route_monitor.observe (Route_monitor.create ~mode:Route_monitor.Bmp ()) rib
  in
  check tbool "agent mode sees only best routes" true
    (List.for_all (fun (r : Route.t) -> r.Route.route_type = Route.Best) agent);
  check tint "bmp mode mirrors the full BGP RIB" (List.length bgp_routes)
    (List.length bmp);
  check tbool "agent view is lossy" true (List.length agent < List.length bmp)

let test_route_monitor_agent_down () =
  let g, rib, _ = Lazy.force sim_state in
  let dev = List.hd g.G.borders in
  let mon =
    Route_monitor.create ~faults:[ Faults.Agent_down dev ] ()
  in
  let observed = Route_monitor.observe mon rib in
  check tbool "no routes from the failed agent" true
    (not (List.exists (fun (r : Route.t) -> String.equal r.Route.device dev) observed))

let test_traffic_monitor_faults () =
  let g, _, traffic = Lazy.force sim_state in
  let dev = List.hd g.G.borders in
  let mon =
    Traffic_monitor.create ~faults:[ Faults.Netflow_volume_bug (dev, 2.0) ] ()
  in
  let records = Traffic_monitor.observe_flows mon g.G.flows in
  List.iter
    (fun (fr : Traffic_monitor.flow_record) ->
      let f = fr.Traffic_monitor.fr_flow in
      let truth = f.Flow.volume *. float_of_int f.Flow.population in
      if String.equal fr.Traffic_monitor.fr_device dev then
        check (Alcotest.float 1.0) "volume doubled" (2. *. truth)
          fr.Traffic_monitor.fr_volume
      else check (Alcotest.float 1.0) "volume exact" truth fr.Traffic_monitor.fr_volume)
    records;
  (* SNMP stuck counter *)
  let some_link =
    Hashtbl.fold (fun k _ _acc -> Some k) traffic.Traffic_sim.link_load None
    |> Option.get
  in
  let mon2 =
    Traffic_monitor.create
      ~faults:[ Faults.Snmp_counter_stuck (fst some_link, snd some_link) ]
      ()
  in
  let loads = Traffic_monitor.observe_link_loads mon2 traffic.Traffic_sim.link_load in
  check (Alcotest.float 0.001) "stuck counter reads 0" 0.
    (Hashtbl.find loads some_link)

let test_topo_monitor () =
  let g, _, _ = Lazy.force sim_state in
  let live = g.G.model.Hoyan_sim.Model.topo in
  let d1 = List.hd g.G.borders and d2 = List.nth g.G.borders 1 in
  let mon = Topo_monitor.create ~faults:[ Faults.Stale_link (d1, d2) ] () in
  let observed = Topo_monitor.observe mon live in
  check tint "stale link added" (Topology.num_links live + 1)
    (Topology.num_links observed)

(* --- cross-validation -------------------------------------------------------- *)

let test_validation_clean () =
  let g, rib, traffic = Lazy.force sim_state in
  let monitored = Route_monitor.observe (Route_monitor.create ()) rib in
  let mon_loads =
    Traffic_monitor.observe_link_loads (Traffic_monitor.create ())
      traffic.Traffic_sim.link_load
  in
  let report =
    Validate.daily ~simulated_rib:rib ~monitored_rib:monitored
      ~topo:g.G.model.Hoyan_sim.Model.topo
      ~simulated_loads:traffic.Traffic_sim.link_load
      ~monitored_loads:mon_loads ()
  in
  check tbool "accurate day reports clean" true (Validate.is_accurate report)

let test_validation_detects_agent_down () =
  let g, rib, traffic = Lazy.force sim_state in
  let dev = List.hd g.G.borders in
  let monitored =
    Route_monitor.observe
      (Route_monitor.create ~faults:[ Faults.Agent_down dev ] ())
      rib
  in
  let report =
    Validate.daily ~simulated_rib:rib ~monitored_rib:monitored
      ~topo:g.G.model.Hoyan_sim.Model.topo
      ~simulated_loads:traffic.Traffic_sim.link_load
      ~monitored_loads:traffic.Traffic_sim.link_load ()
  in
  check tbool "missing-in-monitor discrepancies found" true
    (List.exists
       (function
         | Validate.Missing_in_monitor r -> String.equal r.Route.device dev
         | _ -> false)
       report.Validate.rep_route_issues);
  (* ...and classify as a route-monitoring-data issue *)
  let ev =
    { Issues.no_evidence with
      Issues.ev_routes_missing_whole_device = Some dev }
  in
  check tbool "classified as route monitoring data" true
    (Issues.classify ev = Issues.Route_monitoring_data)

let test_validation_detects_sim_inaccuracy () =
  (* simulate with the flawed legacy regex: policies mis-match, so the
     simulated RIB differs from the (correctly simulated) live network *)
  let b = B.create () in
  B.add_device b ~name:"R1" ~vendor:"vendorA" ~asn:65001
    ~router_id:(B.ip "1.1.1.1") ();
  B.add_device b ~name:"R2" ~vendor:"vendorA" ~asn:65002
    ~router_id:(B.ip "2.2.2.2") ();
  let a12, b12 = B.link b ~a:"R1" ~b:"R2" ~subnet:(pfx "10.0.0.0/31") () in
  B.update_config b "R2" (fun cfg ->
      { cfg with
        Types.dc_aspath_filters =
          Types.Smap.add "DEEP"
            { Types.af_name = "DEEP";
              af_entries =
                [ { Types.ae_seq = 5; ae_action = Types.Permit;
                    ae_regex = ".* 666 .*" } ] }
            cfg.Types.dc_aspath_filters });
  B.add_policy b "R2"
    (B.policy "IMP"
       [
         B.node 10 ~action:(Some Types.Deny)
           ~matches:[ Types.Match_aspath_filter "DEEP" ];
         B.node 20;
       ]);
  B.bgp_session b ~a:"R1" ~b:"R2" ~a_addr:a12 ~b_addr:b12 ~b_import:"IMP" ();
  let input =
    [ B.input_route ~device:"R1" ~prefix:"99.0.0.0/24"
        ~as_path:[ 1; 2; 3; 666; 4 ] () ]
  in
  (* ground truth: correct regex blocks the route at R2 *)
  let live_model = B.build b in
  let live_rib = (Route_sim.run live_model ~input_routes:input ()).Route_sim.rib in
  (* Hoyan with the legacy engine: misses the deep match, accepts it *)
  let flawed_model =
    B.build ~regex:Hoyan_regex.Regex.Legacy.matches_str b
  in
  let sim_rib = (Route_sim.run flawed_model ~input_routes:input ()).Route_sim.rib in
  let monitored = Route_monitor.observe (Route_monitor.create ()) live_rib in
  let issues, _ =
    Validate.validate_routes ~simulated:sim_rib ~monitored ()
  in
  check tbool "extra simulated route flagged" true
    (List.exists
       (function
         | Validate.Missing_in_monitor r -> String.equal r.Route.device "R2"
         | _ -> false)
       issues)

(* --- root cause analysis (the Figure 9 case) ---------------------------------- *)

let figure9_models () =
  (* A hears 99/24 via Bx and Cx with equal IGP costs; A has an SR policy
     towards Bx.  The live vendor treats SR-reached next hops as IGP cost
     0 (so only Bx is used); Hoyan's model without that VSB predicts ECMP
     across both. *)
  let build vendor =
    let b = B.create () in
    B.add_device b ~name:"A" ~vendor ~asn:65000 ~router_id:(B.ip "10.255.0.1") ();
    B.add_device b ~name:"Bx" ~vendor:"vendorB" ~asn:65000
      ~router_id:(B.ip "10.255.0.2") ();
    B.add_device b ~name:"Cx" ~vendor:"vendorB" ~asn:65000
      ~router_id:(B.ip "10.255.0.3") ();
    B.add_device b ~name:"D" ~vendor:"vendorB" ~asn:65000
      ~router_id:(B.ip "10.255.0.4") ();
    ignore (B.link b ~a:"A" ~b:"Bx" ~subnet:(pfx "10.1.0.0/31") ());
    ignore (B.link b ~a:"A" ~b:"Cx" ~subnet:(pfx "10.2.0.0/31") ());
    ignore (B.link b ~a:"D" ~b:"A" ~subnet:(pfx "10.3.0.0/31") ());
    B.add_policy b "A" (B.policy "PASS" [ B.node 10 ]);
    B.add_policy b "Bx" (B.policy "PASS" [ B.node 10 ]);
    B.add_policy b "Cx" (B.policy "PASS" [ B.node 10 ]);
    B.add_policy b "D" (B.policy "PASS" [ B.node 10 ]);
    B.ibgp_loopback_session b ~a:"A" ~b:"Bx" ~a_import:"PASS" ~a_export:"PASS"
      ~b_import:"PASS" ~b_export:"PASS" ();
    B.ibgp_loopback_session b ~a:"A" ~b:"Cx" ~a_import:"PASS" ~a_export:"PASS"
      ~b_import:"PASS" ~b_export:"PASS" ();
    B.ibgp_loopback_session b ~a:"D" ~b:"A" ~a_import:"PASS" ~a_export:"PASS"
      ~b_import:"PASS" ~b_export:"PASS" ~b_rr_client:true
      ~b_next_hop_self:true ();
    B.add_sr_policy b "A"
      { Types.sp_name = "TO_B"; sp_endpoint = B.ip "10.255.0.2"; sp_color = 1;
        sp_segments = []; sp_preference = 100 };
    b
  in
  let inputs =
    [
      B.input_route ~device:"Bx" ~prefix:"99.0.0.0/24" ~nexthop:"10.255.0.2"
        ~as_path:[ 7018 ] ();
      B.input_route ~device:"Cx" ~prefix:"99.0.0.0/24" ~nexthop:"10.255.0.3"
        ~as_path:[ 7018 ] ();
    ]
  in
  (* live network: vendor A semantics (sr_igp_cost_zero = true) *)
  let live = B.build (build "vendorA") in
  (* Hoyan's (pre-fix) model: vendor B semantics for A (no SR VSB) *)
  let hoyan = B.build (build "vendorB") in
  (live, hoyan, inputs)

let test_figure9_root_cause () =
  let live_model, hoyan_model, inputs = figure9_models () in
  let live_rib = (Route_sim.run live_model ~input_routes:inputs ()).Route_sim.rib in
  let sim_rib = (Route_sim.run hoyan_model ~input_routes:inputs ()).Route_sim.rib in
  (* the flow from D to the prefix *)
  let flow =
    Flow.make ~src:(B.ip "8.8.8.8") ~dst:(B.ip "99.0.0.10") ~ingress:"D"
      ~volume:5e9 ()
  in
  (* step 1 stand-in: the A->Cx link shows a large load difference
     (live sends everything A->Bx; the simulation splits) *)
  let records =
    Traffic_monitor.observe_flows (Traffic_monitor.create ()) [ flow ]
  in
  let finding =
    Rootcause.analyze_link hoyan_model ~link:("A", "Bx")
      ~monitored_flows:records ~sim_rib ~real_rib:live_rib
  in
  match finding with
  | None -> Alcotest.fail "no finding"
  | Some f -> (
      match f.Rootcause.f_divergent with
      | None -> Alcotest.fail "divergent router not localized"
      | Some hb ->
          check Alcotest.string "localized at A" "A" hb.Rootcause.hb_device;
          check tint "sim shows ECMP (2 next hops)" 2
            (List.length hb.Rootcause.hb_sim_nexthops);
          check tint "real uses one next hop" 1
            (List.length hb.Rootcause.hb_real_nexthops);
          (* the hints point at ECMP-count and IGP-cost/SR interaction *)
          check tbool "hints mention IGP/SR" true
            (List.exists
               (fun h ->
                 try
                   ignore (Str.search_forward (Str.regexp_string "SR") h 0);
                   true
                 with Not_found -> false)
               f.Rootcause.f_hints))

(* --- Table 5 ------------------------------------------------------------------ *)

let test_vsb_differential_all_16 () =
  let detections = Vsb_test.run_all () in
  check tint "16 dimensions tested" 16 (List.length detections);
  List.iter
    (fun (d : Vsb_test.detection) ->
      if not d.Vsb_test.det_detected then
        Alcotest.failf "dimension not detected: %s" d.Vsb_test.det_dimension)
    detections

(* --- Table 4 classifier --------------------------------------------------------- *)

let test_issue_classifier () =
  let open Issues in
  check tbool "volume-only -> traffic monitoring" true
    (classify { no_evidence with ev_flow_volume_only = true }
    = Traffic_monitoring_data);
  check tbool "topo mismatch -> topology" true
    (classify { no_evidence with ev_topo_mismatch = true } = Topology_data);
  check tbool "parse errors -> config parsing" true
    (classify { no_evidence with ev_parse_errors = true } = Config_parsing);
  check tbool "vendor boundary -> VSB" true
    (classify { no_evidence with ev_vendor_dependent = true }
    = Vendor_specific_behaviour);
  check tbool "policy diff -> simulation bug" true
    (classify { no_evidence with ev_policy_match_diff = true } = Simulation_bug);
  check tbool "monitoring wins over simulation" true
    (classify
       { no_evidence with
         ev_routes_missing_whole_device = Some "X";
         ev_policy_match_diff = true }
    = Route_monitoring_data);
  check tbool "nothing -> other" true (classify no_evidence = Other);
  (* the published distribution sums to ~100% *)
  let total = List.fold_left (fun a (_, p) -> a +. p) 0. paper_distribution in
  check tbool "Table 4 sums to 100%" true (Float.abs (total -. 100.) < 0.2)

let test_live_show_validation () =
  (* high-priority prefixes are validated against the live network via
     show commands: the agent view hides ECMP, the live view does not *)
  let b = B.create () in
  B.add_device b ~name:"A" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "10.255.0.1") ();
  B.add_device b ~name:"Bx" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "10.255.0.2") ();
  B.add_device b ~name:"Cx" ~vendor:"vendorA" ~asn:65000
    ~router_id:(B.ip "10.255.0.3") ();
  ignore (B.link b ~a:"A" ~b:"Bx" ~subnet:(pfx "10.1.0.0/31") ());
  ignore (B.link b ~a:"A" ~b:"Cx" ~subnet:(pfx "10.2.0.0/31") ());
  B.ibgp_loopback_session b ~a:"A" ~b:"Bx" ();
  B.ibgp_loopback_session b ~a:"A" ~b:"Cx" ();
  let model = B.build b in
  let inputs =
    [
      B.input_route ~device:"Bx" ~prefix:"0.0.0.0/0" ~nexthop:"10.255.0.2"
        ~as_path:[ 7018 ] ();
      B.input_route ~device:"Cx" ~prefix:"0.0.0.0/0" ~nexthop:"10.255.0.3"
        ~as_path:[ 7018 ] ();
    ]
  in
  let rib = (Route_sim.run model ~input_routes:inputs ()).Route_sim.rib in
  let monitored = Route_monitor.observe (Route_monitor.create ()) rib in
  let priority = [ pfx "0.0.0.0/0" ] in
  (* live matches the simulation: clean, even for the ECMP route the
     agent view cannot see *)
  let issues, _ =
    Validate.validate_routes ~simulated:rib ~monitored ~live:rib
      ~priority_prefixes:priority ()
  in
  check tint "live check clean" 0 (List.length issues);
  (* the live network lost the ECMP companion (e.g. the Figure-9 VSB):
     only the live comparison can catch it *)
  let degraded_live =
    List.filter
      (fun (r : Route.t) ->
        not
          (String.equal r.Route.device "A"
          && r.Route.route_type = Route.Ecmp
          && Prefix.equal r.Route.prefix (pfx "0.0.0.0/0")))
      rib
  in
  let issues_live, _ =
    Validate.validate_routes ~simulated:rib ~monitored ~live:degraded_live
      ~priority_prefixes:priority ()
  in
  check tbool "ECMP loss caught via live show" true (issues_live <> []);
  (* without the live fallback the agent view cannot distinguish them *)
  let issues_agent, _ =
    Validate.validate_routes ~simulated:rib
      ~monitored:(Route_monitor.observe (Route_monitor.create ()) degraded_live)
      ()
  in
  check tint "agent view alone is blind to it" 0 (List.length issues_agent)

let suite =
  [
    ("route monitor modes", `Slow, test_route_monitor_modes);
    ("live-show validation of priority prefixes", `Quick, test_live_show_validation);
    ("route monitor agent down", `Slow, test_route_monitor_agent_down);
    ("traffic monitor faults", `Slow, test_traffic_monitor_faults);
    ("topology monitor", `Slow, test_topo_monitor);
    ("validation: clean day", `Slow, test_validation_clean);
    ("validation: agent down detected", `Slow, test_validation_detects_agent_down);
    ("validation: flawed regex detected", `Quick, test_validation_detects_sim_inaccuracy);
    ("figure 9 root cause", `Quick, test_figure9_root_cause);
    ("table 5: all 16 VSBs detected", `Slow, test_vsb_differential_all_16);
    ("table 4: issue classifier", `Quick, test_issue_classifier);
  ]
