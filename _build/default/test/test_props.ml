(* Cross-cutting property tests: printer/parser round trips on random
   configurations, BGP selection invariants, change-plan merge
   idempotence, and AS-path aggregation laws. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Printer = Hoyan_config.Printer
module Cp = Hoyan_config.Change_plan
module Bgp = Hoyan_proto.Bgp
module B = Hoyan_workload.Builder

(* fixed seed: the property suites are deterministic run to run *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 4242 |]) t


(* ------------------------------------------------------------------ *)
(* random configuration generator                                      *)
(* ------------------------------------------------------------------ *)

let gen_name prefix =
  QCheck.Gen.(map (fun n -> Printf.sprintf "%s%d" prefix (n mod 50)) nat)

let gen_v4_prefix =
  QCheck.Gen.(
    map2
      (fun ip len -> Prefix.make (Ip.V4 (ip land 0xffffffff)) (8 + (len mod 17)))
      nat nat)

let gen_community =
  QCheck.Gen.(
    map2 (fun a t -> Community.make (1 + (a mod 65000)) (t mod 65536)) nat nat)

let gen_action = QCheck.Gen.oneofl [ Types.Permit; Types.Deny ]

let gen_prefix_list =
  let open QCheck.Gen in
  let* name = gen_name "PL" in
  let* entries =
    list_size (int_range 1 5)
      (let* action = gen_action in
       let* p = gen_v4_prefix in
       let* le = opt (int_range (Prefix.len p) 32) in
       return
         { Types.pe_seq = 0; pe_action = action; pe_prefix = p; pe_ge = None;
           pe_le = le })
  in
  return
    { Types.pl_name = name; pl_family = Ip.Ipv4;
      pl_entries = List.mapi (fun i e -> { e with Types.pe_seq = (i + 1) * 5 }) entries }

let gen_set_clause =
  let open QCheck.Gen in
  oneof
    [
      map (fun n -> Types.Set_local_pref (n mod 1000)) nat;
      map (fun n -> Types.Set_med (n mod 1000)) nat;
      map (fun n -> Types.Set_weight (n mod 65536)) nat;
      map (fun n -> Types.Set_tag (n mod 10000)) nat;
      map (fun c -> Types.Set_communities (Types.Comm_add, [ c ])) gen_community;
      map (fun c -> Types.Set_communities (Types.Comm_replace, [ c ])) gen_community;
      map2
        (fun asn n -> Types.Set_aspath_prepend (1 + (asn mod 65000), 1 + (n mod 3)))
        nat nat;
    ]

let gen_policy pl_names cl_names =
  let open QCheck.Gen in
  let* name = gen_name "RM" in
  let gen_match =
    oneof
      ([ map (fun t -> Types.Match_tag (t mod 100)) nat ]
      @ (if pl_names = [] then []
         else [ map (fun i -> Types.Match_prefix_list (List.nth pl_names (i mod List.length pl_names))) nat ])
      @
      if cl_names = [] then []
      else [ map (fun i -> Types.Match_community_list (List.nth cl_names (i mod List.length cl_names))) nat ])
  in
  let* nodes =
    list_size (int_range 1 4)
      (let* action = oneofl [ Some Types.Permit; Some Types.Deny; None ] in
       let* matches = list_size (int_range 0 2) gen_match in
       let* sets = list_size (int_range 0 3) gen_set_clause in
       let* goto = bool in
       return
         { Types.pn_seq = 0; pn_action = action; pn_matches = matches;
           pn_sets = sets; pn_goto_next = goto })
  in
  return
    { Types.rp_name = name;
      rp_nodes = List.mapi (fun i n -> { n with Types.pn_seq = (i + 1) * 10 }) nodes }

let gen_config vendor =
  let open QCheck.Gen in
  let* pls = list_size (int_range 0 3) gen_prefix_list in
  let* cls =
    list_size (int_range 0 2)
      (let* name = gen_name "CL" in
       let* entries =
         list_size (int_range 1 3)
           (let* action = gen_action in
            let* cs = list_size (int_range 1 2) gen_community in
            return { Types.ce_seq = 0; ce_action = action; ce_members = cs })
       in
       return
         { Types.cl_name = name;
           cl_entries =
             List.mapi (fun i e -> { e with Types.ce_seq = (i + 1) * 5 }) entries })
  in
  let pl_names = List.map (fun p -> p.Types.pl_name) pls in
  let cl_names = List.map (fun c -> c.Types.cl_name) cls in
  let* policies = list_size (int_range 0 3) (gen_policy pl_names cl_names) in
  let* statics =
    list_size (int_range 0 3)
      (let* p = gen_v4_prefix in
       let* pref = int_range 1 254 in
       return
         { Types.st_prefix = p; st_nexthop = Some (Ip.v4_of_octets 10 0 0 1);
           st_iface = None; st_preference = pref; st_tag = 0;
           st_vrf = Route.default_vrf })
  in
  let* asn = int_range 1 65000 in
  let cfg = Types.empty ~device:"RAND" ~vendor in
  let add_map to_map items key =
    List.fold_left (fun m x -> Types.Smap.add (key x) x m) to_map items
  in
  return
    { cfg with
      Types.dc_prefix_lists =
        add_map cfg.Types.dc_prefix_lists pls (fun p -> p.Types.pl_name);
      dc_community_lists =
        add_map cfg.Types.dc_community_lists cls (fun c -> c.Types.cl_name);
      dc_policies =
        add_map cfg.Types.dc_policies policies (fun p -> p.Types.rp_name);
      dc_statics = statics;
      dc_bgp = { cfg.Types.dc_bgp with Types.bgp_asn = asn } }

(* print -> parse -> print is a fixpoint, for both dialects *)
let roundtrip_prop vendor =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s print/parse fixpoint on random configs" vendor)
    ~count:200
    (QCheck.make (gen_config vendor))
    (fun cfg ->
      let text = Printer.print cfg in
      let cfg', errors = Printer.parse ~vendor ~device:"RAND" text in
      errors = [] && String.equal (Printer.print cfg') text)

let prop_roundtrip_a = roundtrip_prop "vendorA"
let prop_roundtrip_b = roundtrip_prop "vendorB"

(* applying the same command block twice equals applying it once *)
let prop_merge_idempotent =
  QCheck.Test.make ~name:"change-plan application is idempotent" ~count:100
    (QCheck.make (gen_config "vendorA"))
    (fun delta ->
      let base = Types.empty ~device:"RAND" ~vendor:"vendorA" in
      let block = Printer.print delta in
      let once, _ = Cp.apply_commands base block in
      let twice, _ = Cp.apply_commands once block in
      String.equal (Printer.print once) (Printer.print twice))

(* ------------------------------------------------------------------ *)
(* BGP selection invariants                                            *)
(* ------------------------------------------------------------------ *)

let gen_candidate =
  let open QCheck.Gen in
  let* lp = int_range 50 300 in
  let* med = int_range 0 50 in
  let* weight = int_range 0 2 in
  let* plen = int_range 1 4 in
  let* asn = int_range 1 9 in
  let* nh = int_range 1 250 in
  let* peer = int_range 1 5 in
  return
    (Route.make ~device:"X" ~prefix:(Prefix.of_string_exn "99.0.0.0/24")
       ~nexthop:(Ip.v4_of_octets 10 0 0 nh)
       ~local_pref:lp ~med ~weight
       ~as_path:(As_path.of_asns (List.init plen (fun i -> asn + i)))
       ~peer:(Printf.sprintf "P%d" peer)
       ~source:Route.Ebgp ())

(* a device context where every next hop resolves at cost 0 *)
let trivial_ctx : Bgp.device_ctx =
  {
    Bgp.d_name = "X";
    d_asn = 65000;
    d_router_id = Ip.V4 1;
    d_cfg = Types.empty ~device:"X" ~vendor:"vendorA";
    d_vsb = Hoyan_config.Vsb.vendor_a;
    d_sessions = [];
    d_igp_cost = (fun _ -> Some 0);
    d_sr_reach = (fun _ -> false);
    d_regex = (fun _ _ -> false);
  }

let prop_select_invariants =
  QCheck.Test.make ~name:"BGP select: one Best; Ecmp decision-equal to it"
    ~count:500
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 10) gen_candidate))
    (fun candidates ->
      let selected = Bgp.select trivial_ctx candidates in
      let bests =
        List.filter (fun (r : Route.t) -> r.Route.route_type = Route.Best) selected
      in
      List.length selected = List.length candidates
      && List.length bests = 1
      &&
      let best = List.hd bests in
      List.for_all
        (fun (r : Route.t) ->
          match r.Route.route_type with
          | Route.Ecmp -> Bgp.better_than r best = 0
          | Route.Backup -> Bgp.better_than best r < 0
          | Route.Best -> true)
        selected)

(* ------------------------------------------------------------------ *)
(* AS-path laws                                                        *)
(* ------------------------------------------------------------------ *)

let gen_paths =
  QCheck.Gen.(
    list_size (int_range 1 5)
      (map
         (fun l -> As_path.of_asns (List.map (fun n -> 1 + (n mod 20)) l))
         (list_size (int_range 1 5) nat)))

let prop_aggregate_with_set_complete =
  (* every ASN of every component appears in the AS-set aggregate *)
  QCheck.Test.make ~name:"as-set aggregation loses no ASN" ~count:300
    (QCheck.make gen_paths)
    (fun paths ->
      let agg = As_path.aggregate_with_set paths in
      List.for_all
        (fun p ->
          List.for_all
            (fun asn -> As_path.contains_asn asn agg)
            (As_path.asns p))
        paths)

let prop_common_prefix_is_prefix =
  QCheck.Test.make ~name:"common prefix is a prefix of every path" ~count:300
    (QCheck.make gen_paths)
    (fun paths ->
      let cp = As_path.common_prefix paths in
      List.for_all
        (fun p ->
          let flat = As_path.asns p in
          let rec is_prefix = function
            | [], _ -> true
            | _ :: _, [] -> false
            | x :: xs, y :: ys -> x = y && is_prefix (xs, ys)
          in
          is_prefix (cp, flat))
        paths)

let suite =
  [
    qtest prop_roundtrip_a;
    qtest prop_roundtrip_b;
    qtest prop_merge_idempotent;
    qtest prop_select_invariants;
    qtest prop_aggregate_with_set_complete;
    qtest prop_common_prefix_is_prefix;
  ]
