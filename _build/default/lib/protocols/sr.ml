(** Segment routing (SRv6) policies.

    An SR policy at a head-end device steers traffic towards an endpoint
    (identified by its loopback address) along either the IGP shortest
    path or an explicit segment list.  Two behaviours matter for the
    paper's experiments:

    - forwarding: flows whose BGP next hop is an SR-policy endpoint follow
      the tunnel path instead of hop-by-hop IGP forwarding;
    - route selection: some vendors treat the IGP cost of SR-reachable
      next hops as 0 in the BGP decision process (the "IGP cost for SR"
      VSB, root cause of the Figure-9 case). *)

open Hoyan_net
module Types = Hoyan_config.Types

type tunnel = {
  tn_head : string; (* head-end device *)
  tn_endpoint : Ip.t; (* tail-end loopback *)
  tn_tail : string; (* tail-end device *)
  tn_color : int;
  tn_preference : int;
  tn_path : string list; (* full device path, head .. tail *)
}

(** Expand an explicit segment list (waypoint devices) into a full hop
    path using IGP shortest paths between consecutive waypoints. *)
let expand_segments (igp : Isis.t) ~(head : string) (waypoints : string list) :
    string list option =
  let rec go cur acc = function
    | [] -> Some (List.rev acc)
    | wp :: rest -> (
        match Isis.some_path igp ~src:cur ~dst:wp with
        | Some path -> (
            match path with
            | [] -> None
            | _ :: hops -> go wp (List.rev_append hops acc) rest)
        | None -> None)
  in
  go head [ head ] waypoints

(** Resolve the SR policies of one device into tunnels.  [endpoint_of]
    maps a loopback address to its device. *)
let resolve (igp : Isis.t) ~(device : string)
    ~(endpoint_of : Ip.t -> string option) (cfg : Types.t) : tunnel list =
  List.filter_map
    (fun (sp : Types.sr_policy) ->
      match endpoint_of sp.Types.sp_endpoint with
      | None -> None
      | Some tail ->
          let path =
            if sp.Types.sp_segments = [] then
              Isis.some_path igp ~src:device ~dst:tail
            else
              match expand_segments igp ~head:device sp.Types.sp_segments with
              | Some p ->
                  (* the last waypoint must be (or reach) the tail *)
                  if p <> [] && String.equal (List.nth p (List.length p - 1)) tail
                  then Some p
                  else (
                    match Isis.some_path igp ~src:device ~dst:tail with
                    | Some _ -> (
                        (* append the tail leg *)
                        match
                          Isis.some_path igp
                            ~src:(List.nth p (List.length p - 1))
                            ~dst:tail
                        with
                        | Some (_ :: tail_hops) -> Some (p @ tail_hops)
                        | _ -> None)
                    | None -> None)
              | None -> None
          in
          Option.map
            (fun path ->
              {
                tn_head = device;
                tn_endpoint = sp.Types.sp_endpoint;
                tn_tail = tail;
                tn_color = sp.Types.sp_color;
                tn_preference = sp.Types.sp_preference;
                tn_path = path;
              })
            path)
    cfg.Types.dc_sr_policies

(** Does a tunnel of [tunnels] terminate at next-hop address [nh]? *)
let reaches (tunnels : tunnel list) (nh : Ip.t) : bool =
  List.exists (fun t -> Ip.equal t.tn_endpoint nh) tunnels

(** The best (highest-preference) tunnel towards [nh], if any. *)
let tunnel_to (tunnels : tunnel list) (nh : Ip.t) : tunnel option =
  List.filter (fun t -> Ip.equal t.tn_endpoint nh) tunnels
  |> List.sort (fun a b -> Int.compare b.tn_preference a.tn_preference)
  |> function
  | [] -> None
  | t :: _ -> Some t
