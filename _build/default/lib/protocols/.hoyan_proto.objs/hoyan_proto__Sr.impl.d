lib/protocols/sr.ml: Hoyan_config Hoyan_net Int Ip Isis List Option String
