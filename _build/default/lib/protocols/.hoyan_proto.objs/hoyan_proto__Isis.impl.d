lib/protocols/isis.ml: Array Hoyan_config Hoyan_net List Map Option Set String Topology
