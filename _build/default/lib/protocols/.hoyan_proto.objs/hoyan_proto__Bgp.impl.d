lib/protocols/bgp.ml: As_path Community Hashtbl Hoyan_config Hoyan_net Int Ip List Map Option Prefix Printf Route String
