(** Runtime values of RCL evaluations (Table 7): numbers, strings, and
    sets of these. *)

type t =
  | Num of float
  | Str of string
  | Set of t list (* sorted, unique *)

let rec compare_value a b =
  match (a, b) with
  | Num x, Num y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Set x, Set y -> List.compare compare_value x y
  | Num _, _ -> -1
  | _, Num _ -> 1
  | Str _, _ -> -1
  | _, Str _ -> 1

let equal a b = compare_value a b = 0

let set_of_list l = Set (List.sort_uniq compare_value l)

let num n = Num n
let of_int n = Num (float_of_int n)
let str s = Str s

let rec to_string = function
  | Num n ->
      if Float.is_integer n && Float.abs n < 1e15 then
        string_of_int (int_of_float n)
      else string_of_float n
  | Str s -> s
  | Set l -> "{" ^ String.concat ", " (List.map to_string l) ^ "}"

let pp ppf v = Format.pp_print_string ppf (to_string v)

(** Numeric comparison operators; [None] when the types do not admit the
    comparison (e.g. ordering two sets). *)
let cmp op a b =
  let ord c =
    match op with
    | `Eq -> c = 0
    | `Ne -> c <> 0
    | `Lt -> c < 0
    | `Le -> c <= 0
    | `Gt -> c > 0
    | `Ge -> c >= 0
  in
  match (a, b, op) with
  | Num x, Num y, _ -> Some (ord (Float.compare x y))
  | Str x, Str y, _ -> Some (ord (String.compare x y))
  | Set _, Set _, (`Eq | `Ne) -> Some (ord (compare_value a b))
  | _, _, (`Eq | `Ne) -> Some (ord (compare_value a b))
  | _ -> None

let arith op a b =
  match (a, b) with
  | Num x, Num y -> (
      match op with
      | `Add -> Some (Num (x +. y))
      | `Sub -> Some (Num (x -. y))
      | `Mul -> Some (Num (x *. y))
      | `Div -> if y = 0. then None else Some (Num (x /. y)))
  | _ -> None
