(** Recursive-descent parser for RCL.

    Grammar (see Figure 7; ASCII spellings per {!Lexer}):

    {v
    intent   := iterm (("or" | "imply") iterm)*
    iterm    := ifactor ("and" ifactor)*
    ifactor  := "not" ifactor
              | "forall" FIELD [ "in" "{" vals "}" ] ":" intent
              | pred "=>" intent                      (backtracks)
              | transform ("="|"!=") transform        (backtracks)
              | eval CMP eval
              | "(" intent ")"                        (backtracks)
    pred     := pterm (("or" | "imply") pterm)*
    pterm    := pfactor ("and" pfactor)*
    pfactor  := "not" pfactor | "(" pred ")" | FIELD atom-predicate
    transform:= ("PRE" | "POST" | "(" transform ")") ("||" pred)*
    eval     := eterm (("+"|"-") eterm)*
    eterm    := efactor (("*"|"/") efactor)*
    efactor  := value | "{" vals "}" | transform "|>" agg | "(" eval ")"
    agg      := "count" "(" ")" | "distCnt" "(" FIELD ")"
              | "distVals" "(" FIELD ")"
    v}

    Ambiguity between predicates, transformations and evaluations at the
    start of an intent factor is resolved by ordered backtracking. *)

exception Parse_error of string

type state = { tokens : Lexer.token array; mutable pos : int }

let fail st msg =
  let ctx =
    if st.pos < Array.length st.tokens then
      Lexer.token_to_string st.tokens.(st.pos)
    else "<eof>"
  in
  raise (Parse_error (Printf.sprintf "%s (at %s, token %d)" msg ctx st.pos))

let peek st = if st.pos < Array.length st.tokens then Some st.tokens.(st.pos) else None

let advance st = st.pos <- st.pos + 1

let eat st tok =
  match peek st with
  | Some t when t = tok -> advance st
  | _ -> fail st (Printf.sprintf "expected %s" (Lexer.token_to_string tok))

let try_parse st (f : state -> 'a) : 'a option =
  let saved = st.pos in
  match f st with
  | v -> Some v
  | exception Parse_error _ ->
      st.pos <- saved;
      None

(* --- atoms and values ---------------------------------------------------- *)

let keywords =
  [ "PRE"; "POST"; "forall"; "in"; "and"; "or"; "not"; "imply"; "contains";
    "has"; "matches"; "count"; "distCnt"; "distVals" ]

(** Canonical value of an atom: numbers become [Num]; IPs, prefixes and
    communities are canonicalized so they compare equal to field
    renderings; everything else is a plain string. *)
let value_of_atom (s : string) : Value.t =
  match float_of_string_opt s with
  | Some f when not (String.contains s ':') -> Value.Num f
  | _ -> (
      match Hoyan_net.Prefix.of_string s with
      | Some p -> Value.Str (Hoyan_net.Prefix.to_string p)
      | None -> (
          match Hoyan_net.Ip.of_string s with
          | Some ip -> Value.Str (Hoyan_net.Ip.to_string ip)
          | None -> (
              match Hoyan_net.Community.of_string s with
              | Some c -> Value.Str (Hoyan_net.Community.to_string c)
              | None -> Value.Str s)))

let parse_value st : Value.t =
  match peek st with
  | Some (Lexer.ATOM a) when not (List.mem a keywords) ->
      advance st;
      value_of_atom a
  | Some (Lexer.STRING s) ->
      advance st;
      Value.Str s
  | _ -> fail st "expected a value"

let parse_field st : string =
  match peek st with
  | Some (Lexer.ATOM a) when Fields.is_field a ->
      advance st;
      a
  | Some (Lexer.ATOM a) -> fail st (Printf.sprintf "unknown field %s" a)
  | _ -> fail st "expected a field name"

let parse_value_set st : Value.t list =
  eat st Lexer.LBRACE;
  let rec go acc =
    match peek st with
    | Some Lexer.RBRACE ->
        advance st;
        List.rev acc
    | _ -> (
        let v = parse_value st in
        match peek st with
        | Some Lexer.COMMA ->
            advance st;
            go (v :: acc)
        | Some Lexer.RBRACE ->
            advance st;
            List.rev (v :: acc)
        | _ -> fail st "expected , or } in value set")
  in
  go []

let parse_cmp st : Ast.cmp =
  match peek st with
  | Some Lexer.EQ -> advance st; Ast.Eq
  | Some Lexer.NE -> advance st; Ast.Ne
  | Some Lexer.LT -> advance st; Ast.Lt
  | Some Lexer.LE -> advance st; Ast.Le
  | Some Lexer.GT -> advance st; Ast.Gt
  | Some Lexer.GE -> advance st; Ast.Ge
  | _ -> fail st "expected a comparison operator"

(* --- predicates ----------------------------------------------------------- *)

let rec parse_pred st : Ast.pred =
  let left = parse_pred_term st in
  match peek st with
  | Some (Lexer.ATOM "or") ->
      advance st;
      Ast.P_or (left, parse_pred st)
  | Some (Lexer.ATOM "imply") ->
      advance st;
      Ast.P_imply (left, parse_pred st)
  | _ -> left

and parse_pred_term st : Ast.pred =
  let left = parse_pred_factor st in
  match peek st with
  | Some (Lexer.ATOM "and") ->
      advance st;
      Ast.P_and (left, parse_pred_term st)
  | _ -> left

and parse_pred_factor st : Ast.pred =
  match peek st with
  | Some (Lexer.ATOM "not") ->
      advance st;
      Ast.P_not (parse_pred_factor st)
  | Some Lexer.LPAREN ->
      advance st;
      let p = parse_pred st in
      eat st Lexer.RPAREN;
      p
  | _ -> (
      let field = parse_field st in
      match peek st with
      | Some (Lexer.ATOM ("contains" | "has")) ->
          (* "has" appears in the paper's §4.3 use cases as a synonym *)
          advance st;
          Ast.P_contains (field, parse_value st)
      | Some (Lexer.ATOM "matches") ->
          advance st;
          (match peek st with
          | Some (Lexer.STRING re) ->
              advance st;
              Ast.P_matches (field, re)
          | _ -> fail st "matches expects a quoted regex")
      | Some (Lexer.ATOM "in") ->
          advance st;
          Ast.P_in (field, parse_value_set st)
      | _ ->
          let op = parse_cmp st in
          Ast.P_cmp (field, op, parse_value st))

(* --- transformations -------------------------------------------------------- *)

let rec parse_transform st : Ast.transform =
  let base =
    match peek st with
    | Some (Lexer.ATOM "PRE") ->
        advance st;
        Ast.T_pre
    | Some (Lexer.ATOM "POST") ->
        advance st;
        Ast.T_post
    | Some Lexer.LPAREN ->
        advance st;
        let r = parse_transform st in
        eat st Lexer.RPAREN;
        r
    | _ -> fail st "expected PRE, POST or (transform)"
  in
  parse_filters st base

and parse_filters st base =
  match peek st with
  | Some Lexer.FILTER ->
      advance st;
      (* the filter predicate may be parenthesized or a bare predicate *)
      let p =
        match peek st with
        | Some Lexer.LPAREN ->
            advance st;
            let p = parse_pred st in
            eat st Lexer.RPAREN;
            p
        | _ -> parse_pred_factor st
      in
      parse_filters st (Ast.T_filter (base, p))
  | _ -> base

(* --- evaluations ------------------------------------------------------------- *)

let parse_agg st : Ast.agg =
  match peek st with
  | Some (Lexer.ATOM "count") ->
      advance st;
      eat st Lexer.LPAREN;
      eat st Lexer.RPAREN;
      Ast.Count
  | Some (Lexer.ATOM "distCnt") ->
      advance st;
      eat st Lexer.LPAREN;
      let f = parse_field st in
      eat st Lexer.RPAREN;
      Ast.Dist_cnt f
  | Some (Lexer.ATOM "distVals") ->
      advance st;
      eat st Lexer.LPAREN;
      let f = parse_field st in
      eat st Lexer.RPAREN;
      Ast.Dist_vals f
  | _ -> fail st "expected count(), distCnt(field) or distVals(field)"

let rec parse_eval st : Ast.eval =
  let left = parse_eval_term st in
  match peek st with
  | Some Lexer.PLUS ->
      advance st;
      Ast.E_arith (left, Ast.Add, parse_eval st)
  | Some Lexer.MINUS ->
      advance st;
      Ast.E_arith (left, Ast.Sub, parse_eval st)
  | _ -> left

and parse_eval_term st : Ast.eval =
  let left = parse_eval_factor st in
  match peek st with
  | Some Lexer.STAR ->
      advance st;
      Ast.E_arith (left, Ast.Mul, parse_eval_term st)
  | Some Lexer.SLASH ->
      advance st;
      Ast.E_arith (left, Ast.Div, parse_eval_term st)
  | _ -> left

and parse_eval_factor st : Ast.eval =
  (* transformation |> aggregate *)
  match
    try_parse st (fun st ->
        let r = parse_transform st in
        eat st Lexer.PIPE;
        let f = parse_agg st in
        Ast.E_agg (r, f))
  with
  | Some e -> e
  | None -> (
      match peek st with
      | Some Lexer.LBRACE -> Ast.E_val (Value.set_of_list (parse_value_set st))
      | Some Lexer.LPAREN ->
          advance st;
          let e = parse_eval st in
          eat st Lexer.RPAREN;
          e
      | _ -> Ast.E_val (parse_value st))

(* --- intents -------------------------------------------------------------------- *)

let rec parse_intent st : Ast.intent =
  let left = parse_intent_term st in
  match peek st with
  | Some (Lexer.ATOM "or") ->
      advance st;
      Ast.G_or (left, parse_intent st)
  | Some (Lexer.ATOM "imply") ->
      advance st;
      Ast.G_imply (left, parse_intent st)
  | _ -> left

and parse_intent_term st : Ast.intent =
  let left = parse_intent_factor st in
  match peek st with
  | Some (Lexer.ATOM "and") ->
      advance st;
      Ast.G_and (left, parse_intent_term st)
  | _ -> left

and parse_intent_factor st : Ast.intent =
  match peek st with
  | Some (Lexer.ATOM "not") ->
      advance st;
      Ast.G_not (parse_intent_factor st)
  | Some (Lexer.ATOM "forall") -> (
      advance st;
      let field = parse_field st in
      match peek st with
      | Some (Lexer.ATOM "in") ->
          advance st;
          let vals = parse_value_set st in
          eat st Lexer.COLON;
          Ast.G_forall_in (field, vals, parse_intent st)
      | Some Lexer.COLON ->
          advance st;
          Ast.G_forall (field, parse_intent st)
      | _ -> fail st "expected 'in {...} :' or ':' after forall field")
  | _ -> (
      (* 1. guarded intent: pred => intent *)
      match
        try_parse st (fun st ->
            let p = parse_pred st in
            eat st Lexer.ARROW;
            let g = parse_intent st in
            Ast.G_guard (p, g))
      with
      | Some g -> g
      | None -> (
          (* 2. RIB comparison: transform (=|!=) transform *)
          match
            try_parse st (fun st ->
                let r1 = parse_transform st in
                let eq =
                  match peek st with
                  | Some Lexer.EQ -> advance st; true
                  | Some Lexer.NE -> advance st; false
                  | _ -> fail st "expected = or != between RIBs"
                in
                let r2 = parse_transform st in
                (* make sure we are not mid-way through an evaluation
                   comparison like "PRE |> f = POST |> f": the transform
                   comparison must consume up to a boundary *)
                (match peek st with
                | Some Lexer.PIPE -> fail st "evaluation, not rib comparison"
                | _ -> ());
                Ast.G_rib_cmp (r1, eq, r2))
          with
          | Some g -> g
          | None -> (
              (* 3. evaluation comparison *)
              match
                try_parse st (fun st ->
                    let e1 = parse_eval st in
                    let op = parse_cmp st in
                    let e2 = parse_eval st in
                    Ast.G_eval_cmp (e1, op, e2))
              with
              | Some g -> g
              | None -> (
                  (* 4. parenthesized intent *)
                  match peek st with
                  | Some Lexer.LPAREN ->
                      advance st;
                      let g = parse_intent st in
                      eat st Lexer.RPAREN;
                      g
                  | _ -> fail st "expected an intent"))))

(* --- entry points ------------------------------------------------------------------ *)

let parse (src : string) : (Ast.intent, string) result =
  match Lexer.tokenize src with
  | exception Lexer.Lex_error msg -> Error ("lex error: " ^ msg)
  | tokens -> (
      let st = { tokens = Array.of_list tokens; pos = 0 } in
      match parse_intent st with
      | g ->
          if st.pos = Array.length st.tokens then Ok g
          else
            Error
              (Printf.sprintf "trailing tokens starting with %s"
                 (Lexer.token_to_string st.tokens.(st.pos)))
      | exception Parse_error msg -> Error msg)

let parse_exn src =
  match parse src with
  | Ok g -> g
  | Error msg -> invalid_arg (Printf.sprintf "Rcl.Parser.parse_exn: %s" msg)
