(** Evaluation rules of RCL (Figure 11 / Appendix A.2).

    An intent maps the pair (base RIB M, updated RIB N) to a Boolean.
    RIBs are global-RIB route lists; RIB equality is multiset equality. *)

open Hoyan_net

type rib = Route.t list

(* --- route predicates --------------------------------------------------- *)

let rec eval_pred (p : Ast.pred) (r : Route.t) : bool =
  match p with
  | Ast.P_cmp (field, op, v) -> (
      let fv = Fields.get field r in
      match Value.cmp (Ast.cmp_op op) fv v with
      | Some b -> b
      | None -> false)
  | Ast.P_contains (field, v) -> (
      match Fields.get field r with
      | Value.Set members -> List.exists (Value.equal v) members
      | fv -> Value.equal fv v)
  | Ast.P_in (field, vals) ->
      let fv = Fields.get field r in
      List.exists (Value.equal fv) vals
  | Ast.P_matches (field, regex) -> (
      match Fields.get field r with
      | Value.Str s -> Hoyan_regex.Regex.matches_str regex s
      | Value.Num n -> Hoyan_regex.Regex.matches_str regex (Value.to_string (Value.Num n))
      | Value.Set _ -> false)
  | Ast.P_and (a, b) -> eval_pred a r && eval_pred b r
  | Ast.P_or (a, b) -> eval_pred a r || eval_pred b r
  | Ast.P_imply (a, b) -> (not (eval_pred a r)) || eval_pred b r
  | Ast.P_not a -> not (eval_pred a r)

let filter (p : Ast.pred) (rib : rib) : rib = List.filter (eval_pred p) rib

(* --- transformations ----------------------------------------------------- *)

let rec eval_transform (t : Ast.transform) ~(pre : rib) ~(post : rib) : rib =
  match t with
  | Ast.T_pre -> pre
  | Ast.T_post -> post
  | Ast.T_filter (r, p) -> filter p (eval_transform r ~pre ~post)

(* --- aggregates ----------------------------------------------------------- *)

let eval_agg (f : Ast.agg) (rib : rib) : Value.t =
  match f with
  | Ast.Count -> Value.of_int (List.length rib)
  | Ast.Dist_cnt field ->
      let vals = List.map (Fields.get field) rib in
      Value.of_int
        (List.length (List.sort_uniq Value.compare_value vals))
  | Ast.Dist_vals field ->
      Value.set_of_list (List.map (Fields.get field) rib)

(* --- evaluations ------------------------------------------------------------ *)

exception Eval_error of string

let rec eval_eval (e : Ast.eval) ~(pre : rib) ~(post : rib) : Value.t =
  match e with
  | Ast.E_val v -> v
  | Ast.E_agg (r, f) -> eval_agg f (eval_transform r ~pre ~post)
  | Ast.E_arith (a, op, b) -> (
      let va = eval_eval a ~pre ~post and vb = eval_eval b ~pre ~post in
      match Value.arith (Ast.arith_op_tag op) va vb with
      | Some v -> v
      | None ->
          raise
            (Eval_error
               (Printf.sprintf "cannot compute %s %s %s" (Value.to_string va)
                  (Ast.arith_to_string op) (Value.to_string vb))))

(* --- RIB multiset equality ----------------------------------------------- *)

let rib_equal (a : rib) (b : rib) = Rib.Global.equal a b

(* --- intents -------------------------------------------------------------- *)

(** Distinct values of a field across both RIBs (for [forall field : g]). *)
let group_values (field : string) ~(pre : rib) ~(post : rib) : Value.t list =
  List.map (Fields.get field) pre @ List.map (Fields.get field) post
  |> List.sort_uniq Value.compare_value

let filter_field_eq field v rib =
  List.filter (fun r -> Value.equal (Fields.get field r) v) rib

(** Bucket both RIBs by a field's value in one pass: the [forall]
    evaluation is O(|M|+|N|) instead of filtering per group value, which
    matters at production RIB sizes (Figure 8 measures verification over
    the full WAN). *)
let group_by (field : string) ~(pre : rib) ~(post : rib) :
    (Value.t * (rib * rib)) list =
  let tbl : (Value.t, Route.t list ref * Route.t list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let order = ref [] in
  let bucket v =
    match Hashtbl.find_opt tbl v with
    | Some b -> b
    | None ->
        let b = (ref [], ref []) in
        Hashtbl.add tbl v b;
        order := v :: !order;
        b
  in
  List.iter
    (fun r ->
      let p, _ = bucket (Fields.get field r) in
      p := r :: !p)
    pre;
  List.iter
    (fun r ->
      let _, q = bucket (Fields.get field r) in
      q := r :: !q)
    post;
  List.rev_map
    (fun v ->
      let p, q = Hashtbl.find tbl v in
      (v, (List.rev !p, List.rev !q)))
    !order

let rec eval_intent (g : Ast.intent) ~(pre : rib) ~(post : rib) : bool =
  match g with
  | Ast.G_rib_cmp (r1, eq, r2) ->
      let a = eval_transform r1 ~pre ~post
      and b = eval_transform r2 ~pre ~post in
      if eq then rib_equal a b else not (rib_equal a b)
  | Ast.G_eval_cmp (e1, op, e2) -> (
      let v1 = eval_eval e1 ~pre ~post and v2 = eval_eval e2 ~pre ~post in
      match Value.cmp (Ast.cmp_op op) v1 v2 with
      | Some b -> b
      | None -> false)
  | Ast.G_guard (p, g) ->
      eval_intent g ~pre:(filter p pre) ~post:(filter p post)
  | Ast.G_forall (field, g) ->
      List.for_all
        (fun (_, (p, q)) -> eval_intent g ~pre:p ~post:q)
        (group_by field ~pre ~post)
  | Ast.G_forall_in (field, vals, g) ->
      List.for_all
        (fun v ->
          eval_intent g
            ~pre:(filter_field_eq field v pre)
            ~post:(filter_field_eq field v post))
        vals
  | Ast.G_and (a, b) -> eval_intent a ~pre ~post && eval_intent b ~pre ~post
  | Ast.G_or (a, b) -> eval_intent a ~pre ~post || eval_intent b ~pre ~post
  | Ast.G_imply (a, b) ->
      (not (eval_intent a ~pre ~post)) || eval_intent b ~pre ~post
  | Ast.G_not a -> not (eval_intent a ~pre ~post)
