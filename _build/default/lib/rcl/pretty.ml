(** Pretty-printer for RCL ASTs (round-trips through {!Parser}). *)

let value = Value.to_string

let value_set vs = "{" ^ String.concat ", " (List.map value vs) ^ "}"

let rec pred = function
  | Ast.P_cmp (f, op, v) ->
      Printf.sprintf "%s %s %s" f (Ast.cmp_to_string op) (value v)
  | Ast.P_contains (f, v) -> Printf.sprintf "%s contains %s" f (value v)
  | Ast.P_in (f, vs) -> Printf.sprintf "%s in %s" f (value_set vs)
  | Ast.P_matches (f, re) -> Printf.sprintf "%s matches %S" f re
  | Ast.P_and (a, b) -> Printf.sprintf "(%s and %s)" (pred a) (pred b)
  | Ast.P_or (a, b) -> Printf.sprintf "(%s or %s)" (pred a) (pred b)
  | Ast.P_imply (a, b) -> Printf.sprintf "(%s imply %s)" (pred a) (pred b)
  | Ast.P_not a -> Printf.sprintf "not (%s)" (pred a)

let rec transform = function
  | Ast.T_pre -> "PRE"
  | Ast.T_post -> "POST"
  | Ast.T_filter (r, p) -> Printf.sprintf "%s||(%s)" (transform r) (pred p)

let agg = function
  | Ast.Count -> "count()"
  | Ast.Dist_cnt f -> Printf.sprintf "distCnt(%s)" f
  | Ast.Dist_vals f -> Printf.sprintf "distVals(%s)" f

let rec eval = function
  | Ast.E_val v -> value v
  | Ast.E_agg (r, f) -> Printf.sprintf "%s |> %s" (transform r) (agg f)
  | Ast.E_arith (a, op, b) ->
      Printf.sprintf "(%s %s %s)" (eval a) (Ast.arith_to_string op) (eval b)

let rec intent = function
  | Ast.G_rib_cmp (r1, eq, r2) ->
      Printf.sprintf "%s %s %s" (transform r1)
        (if eq then "=" else "!=")
        (transform r2)
  | Ast.G_eval_cmp (e1, op, e2) ->
      Printf.sprintf "%s %s %s" (eval e1) (Ast.cmp_to_string op) (eval e2)
  | Ast.G_guard (p, g) -> Printf.sprintf "%s => %s" (pred p) (intent g)
  | Ast.G_forall (f, g) -> Printf.sprintf "forall %s : %s" f (intent g)
  | Ast.G_forall_in (f, vs, g) ->
      Printf.sprintf "forall %s in %s : %s" f (value_set vs) (intent g)
  | Ast.G_and (a, b) -> Printf.sprintf "(%s and %s)" (intent a) (intent b)
  | Ast.G_or (a, b) -> Printf.sprintf "(%s or %s)" (intent a) (intent b)
  | Ast.G_imply (a, b) -> Printf.sprintf "(%s imply %s)" (intent a) (intent b)
  | Ast.G_not a -> Printf.sprintf "not (%s)" (intent a)
