(** Evaluation rules of RCL (paper Figure 11 / Appendix A.2).

    An intent maps the pair (base RIB [pre], updated RIB [post]) to a
    Boolean; RIBs are global-RIB route lists and RIB equality is multiset
    equality. *)

open Hoyan_net

type rib = Route.t list

(** Route-predicate evaluation on one row. *)
val eval_pred : Ast.pred -> Route.t -> bool

(** [filter p rib] keeps the rows satisfying [p] (the paper's
    {b filter}_p). *)
val filter : Ast.pred -> rib -> rib

val eval_transform : Ast.transform -> pre:rib -> post:rib -> rib

val eval_agg : Ast.agg -> rib -> Value.t

exception Eval_error of string

(** @raise Eval_error on ill-typed arithmetic (e.g. dividing sets). *)
val eval_eval : Ast.eval -> pre:rib -> post:rib -> Value.t

(** Multiset equality of two RIBs. *)
val rib_equal : rib -> rib -> bool

(** Distinct values of a field across both RIBs ([forall field : g]). *)
val group_values : string -> pre:rib -> post:rib -> Value.t list

val filter_field_eq : string -> Value.t -> rib -> rib

(** Bucket both RIBs by a field's value in one pass — O(|pre|+|post|)
    rather than one filter per group, which matters at production RIB
    sizes (Figure 8). *)
val group_by :
  string -> pre:rib -> post:rib -> (Value.t * (rib * rib)) list

(** Top-level intent evaluation. *)
val eval_intent : Ast.intent -> pre:rib -> post:rib -> bool
