(** Abstract syntax of RCL (Figure 7). *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let cmp_op = function
  | Eq -> `Eq
  | Ne -> `Ne
  | Lt -> `Lt
  | Le -> `Le
  | Gt -> `Gt
  | Ge -> `Ge

(** Route predicates [p]. *)
type pred =
  | P_cmp of string * cmp * Value.t (* field ⊙ val *)
  | P_contains of string * Value.t (* field contains val *)
  | P_in of string * Value.t list (* field in {val...} *)
  | P_matches of string * string (* field matches regex *)
  | P_and of pred * pred
  | P_or of pred * pred
  | P_imply of pred * pred
  | P_not of pred

(** RIB transformations [r]. *)
type transform =
  | T_pre
  | T_post
  | T_filter of transform * pred (* r || p *)

(** Aggregate functions [f]. *)
type agg = Count | Dist_cnt of string | Dist_vals of string

type arith_op = Add | Sub | Mul | Div

let arith_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"

let arith_op_tag = function Add -> `Add | Sub -> `Sub | Mul -> `Mul | Div -> `Div

(** RIB evaluations [e]. *)
type eval =
  | E_val of Value.t (* literal value or set *)
  | E_agg of transform * agg (* r |> f *)
  | E_arith of eval * arith_op * eval

(** Intents [g]. *)
type intent =
  | G_rib_cmp of transform * bool * transform (* r1 = r2 (true) / != (false) *)
  | G_eval_cmp of eval * cmp * eval
  | G_guard of pred * intent (* p => g *)
  | G_forall of string * intent (* forall field : g *)
  | G_forall_in of string * Value.t list * intent
  | G_and of intent * intent
  | G_or of intent * intent
  | G_imply of intent * intent
      (* not in Figure 7's core grammar but used by the paper's
         "conditional change" use case (§4.3); sugar for not/or *)
  | G_not of intent

(** Specification size metric (§4.4): the number of internal (non-leaf)
    nodes of the syntax tree. *)
let rec pred_size = function
  | P_cmp _ | P_contains _ | P_in _ | P_matches _ -> 1
  | P_and (a, b) | P_or (a, b) | P_imply (a, b) -> 1 + pred_size a + pred_size b
  | P_not p -> 1 + pred_size p

let rec transform_size = function
  | T_pre | T_post -> 0
  | T_filter (r, p) -> 1 + transform_size r + pred_size p

let agg_size = function Count -> 1 | Dist_cnt _ -> 1 | Dist_vals _ -> 1

let rec eval_size = function
  | E_val _ -> 0
  | E_agg (r, f) -> 1 + transform_size r + agg_size f
  | E_arith (a, _, b) -> 1 + eval_size a + eval_size b

let rec size = function
  | G_rib_cmp (r1, _, r2) -> 1 + transform_size r1 + transform_size r2
  | G_eval_cmp (e1, _, e2) -> 1 + eval_size e1 + eval_size e2
  | G_guard (p, g) -> 1 + pred_size p + size g
  | G_forall (_, g) -> 1 + size g
  | G_forall_in (_, _, g) -> 1 + size g
  | G_and (a, b) | G_or (a, b) | G_imply (a, b) -> 1 + size a + size b
  | G_not g -> 1 + size g
