(** Recursive-descent parser for RCL's concrete syntax.

    ASCII spellings are accepted alongside the paper's symbols:
    [=>] for ⇒, [|>] for ▷, [!=] for ≠, [<=]/[>=] for ≤/≥, [||] for the
    filter bar.  See {!Lexer} for tokenization rules (communities,
    prefixes and IPv6 addresses lex as single atoms). *)

exception Parse_error of string

(** Parse a complete intent; [Error] carries a message with the offending
    token position. *)
val parse : string -> (Ast.intent, string) result

(** @raise Invalid_argument on parse errors. *)
val parse_exn : string -> Ast.intent
