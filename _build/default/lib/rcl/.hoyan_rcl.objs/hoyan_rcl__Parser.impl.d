lib/rcl/parser.ml: Array Ast Fields Hoyan_net Lexer List Printf String Value
