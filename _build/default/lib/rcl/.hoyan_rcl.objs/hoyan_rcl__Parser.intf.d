lib/rcl/parser.mli: Ast
