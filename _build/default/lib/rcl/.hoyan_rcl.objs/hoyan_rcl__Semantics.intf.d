lib/rcl/semantics.mli: Ast Hoyan_net Route Value
