lib/rcl/value.ml: Float Format List String
