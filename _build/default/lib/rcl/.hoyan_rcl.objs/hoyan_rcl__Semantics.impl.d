lib/rcl/semantics.ml: Ast Fields Hashtbl Hoyan_net Hoyan_regex List Printf Rib Route Value
