lib/rcl/lexer.ml: Buffer List Printf String
