lib/rcl/ast.ml: Value
