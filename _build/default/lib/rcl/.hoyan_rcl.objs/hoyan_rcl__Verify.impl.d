lib/rcl/verify.ml: Ast Hoyan_net List Parser Printf Rib Route Semantics String Value
