lib/rcl/fields.ml: As_path Community Hoyan_net Ip List Option Prefix Printf Route Value
