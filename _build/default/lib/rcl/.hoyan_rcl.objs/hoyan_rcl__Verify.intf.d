lib/rcl/verify.mli: Ast Hoyan_net Route
