lib/rcl/pretty.ml: Ast List Printf String Value
