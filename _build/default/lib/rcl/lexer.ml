(** Lexer for RCL's concrete syntax.

    ASCII spellings are accepted for every paper symbol: [=>] for ⇒,
    [|>] for ▷, [!=] for ≠, [<=]/[>=] for ≤/≥, [||] for the filter bar,
    [*] for ×.  The UTF-8 symbols themselves are accepted too, so
    specifications can be written exactly as they appear in the paper.

    Atoms cover identifiers, numbers, IP addresses, prefixes
    ([10.0.0.0/24]) and communities ([100:1]); [:] and [/] only continue
    an atom when they glue address-like characters, so [forall prefix :]
    and [e1 / e2] lex as expected. *)

type token =
  | ATOM of string
  | STRING of string (* "..." *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ARROW (* => *)
  | PIPE (* |> *)
  | FILTER (* || *)
  | PLUS
  | MINUS
  | STAR
  | SLASH

let token_to_string = function
  | ATOM s -> s
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | COLON -> ":"
  | EQ -> "="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ARROW -> "=>"
  | PIPE -> "|>"
  | FILTER -> "||"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"

exception Lex_error of string

let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let is_atom_start c = is_alnum c || c = '_'

let tokenize (src : string) : token list =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let peek i = if i < n then Some src.[i] else None in
  let rec go i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if c = '"' then begin
        (* quoted string (for regexes) *)
        let rec find j =
          if j >= n then raise (Lex_error "unterminated string")
          else if src.[j] = '"' then j
          else find (j + 1)
        in
        let close = find (i + 1) in
        emit (STRING (String.sub src (i + 1) (close - i - 1)));
        go (close + 1)
      end
      else if c = '(' then (emit LPAREN; go (i + 1))
      else if c = ')' then (emit RPAREN; go (i + 1))
      else if c = '{' then (emit LBRACE; go (i + 1))
      else if c = '}' then (emit RBRACE; go (i + 1))
      else if c = ',' then (emit COMMA; go (i + 1))
      else if c = '+' then (emit PLUS; go (i + 1))
      else if c = '*' then (emit STAR; go (i + 1))
      else if c = '=' && peek (i + 1) = Some '>' then (emit ARROW; go (i + 2))
      else if c = '=' then (emit EQ; go (i + 1))
      else if c = '!' && peek (i + 1) = Some '=' then (emit NE; go (i + 2))
      else if c = '<' && peek (i + 1) = Some '=' then (emit LE; go (i + 2))
      else if c = '<' then (emit LT; go (i + 1))
      else if c = '>' && peek (i + 1) = Some '=' then (emit GE; go (i + 2))
      else if c = '>' then (emit GT; go (i + 1))
      else if c = '|' && peek (i + 1) = Some '|' then (emit FILTER; go (i + 2))
      else if c = '|' && peek (i + 1) = Some '>' then (emit PIPE; go (i + 2))
      else if c = ':' then (emit COLON; go (i + 1))
      else if c = '/' then (emit SLASH; go (i + 1))
      else if c = '-' then begin
        (* '-' is subtraction when standalone, else it starts an atom
           (e.g. device names like wan-core-1 never start with '-') *)
        emit MINUS;
        go (i + 1)
      end
      else if c = '\xe2' && i + 2 < n then begin
        (* UTF-8 symbols from the paper *)
        let tri = String.sub src i 3 in
        (match tri with
        | "\xe2\x87\x92" -> emit ARROW (* ⇒ *)
        | "\xe2\x96\xb7" -> emit PIPE (* ▷ *)
        | "\xe2\x89\xa0" -> emit NE (* ≠ *)
        | "\xe2\x89\xa4" -> emit LE (* ≤ *)
        | "\xe2\x89\xa5" -> emit GE (* ≥ *)
        | _ -> raise (Lex_error (Printf.sprintf "unknown symbol at %d" i)));
        go (i + 3)
      end
      else if c = '\xc3' && peek (i + 1) = Some '\x97' then begin
        emit STAR (* × *);
        go (i + 2)
      end
      else if is_atom_start c then begin
        (* scan an atom; ':' and '/' continue only in address-like
           positions *)
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then j
          else
            let c = src.[j] in
            if is_alnum c || c = '.' || c = '_' then begin
              Buffer.add_char buf c;
              scan (j + 1)
            end
            else if c = '-' && (match peek (j + 1) with
                               | Some d -> is_alnum d
                               | None -> false)
            then begin
              Buffer.add_char buf c;
              scan (j + 1)
            end
            else if
              c = ':'
              && (match peek (j + 1) with
                 | Some d -> is_alnum d || d = ':' || d = '/'
                 | None -> false)
            then begin
              Buffer.add_char buf c;
              scan (j + 1)
            end
            else if
              c = '/'
              && (match peek (j + 1) with
                 | Some d -> d >= '0' && d <= '9'
                 | None -> false)
              && Buffer.length buf > 0
              && (let last = Buffer.nth buf (Buffer.length buf - 1) in
                  is_alnum last || last = '.' || last = ':')
            then begin
              Buffer.add_char buf c;
              scan (j + 1)
            end
            else j
        in
        let j = scan i in
        emit (ATOM (Buffer.contents buf));
        go j
      end
      else raise (Lex_error (Printf.sprintf "unexpected character %C at %d" c i))
  in
  go 0;
  List.rev !tokens
