(** The RCL intent verifier (paper Algorithm 1) with counter-example
    generation.

    Verification evaluates an intent against the concrete base and
    updated global RIBs produced by route simulation.  For unsatisfied
    intents, the verifier pinpoints the failing sub-intent (with the
    [forall] group values and guard scope on the descent path) and
    attaches concrete related routes (§4.4 of the paper). *)

open Hoyan_net

type violation = {
  v_path : string list;
      (** descent path: forall bindings and guards, outermost first *)
  v_reason : string;  (** which basic intent failed, and how *)
  v_routes : Route.t list;  (** concrete counter-example rows (truncated) *)
}

(** Counter-example routes attached per violation are truncated to this
    many rows. *)
val max_counterexample_routes : int

type outcome = Satisfied | Violated of violation list

(** Verify a parsed intent against base and updated global RIBs. *)
val check : Ast.intent -> base:Route.t list -> updated:Route.t list -> outcome

(** Parse and verify a concrete-syntax specification; [Error] carries the
    parse error. *)
val check_spec :
  string ->
  base:Route.t list ->
  updated:Route.t list ->
  (outcome, string) result

val violation_to_string : violation -> string
