(** The RCL intent verifier (Algorithm 1) with counter-example generation.

    Verification evaluates the intent against the concrete base and
    updated global RIBs.  For unsatisfied intents, the verifier pinpoints
    the exact failing sub-intent (with the [forall] group values and guard
    scope on the descent path) and outputs concrete related routes
    (§4.4: "RCL pinpoints the exact basic predicates that are violated
    and outputs related routes"). *)

open Hoyan_net

type violation = {
  v_path : string list; (* descent: forall bindings and guards, outermost first *)
  v_reason : string; (* which basic intent failed, and how *)
  v_routes : Route.t list; (* concrete counter-example rows (truncated) *)
}

let max_counterexample_routes = 10

type outcome = Satisfied | Violated of violation list

let truncate l =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take max_counterexample_routes l

let rec pp_transform = function
  | Ast.T_pre -> "PRE"
  | Ast.T_post -> "POST"
  | Ast.T_filter (r, _) -> pp_transform r ^ "||(...)"

(** Collect violations of [g]; empty list means satisfied. *)
let rec check_intent (g : Ast.intent) ~(path : string list)
    ~(pre : Semantics.rib) ~(post : Semantics.rib) : violation list =
  match g with
  | Ast.G_rib_cmp (r1, eq, r2) ->
      let a = Semantics.eval_transform r1 ~pre ~post
      and b = Semantics.eval_transform r2 ~pre ~post in
      let equal = Semantics.rib_equal a b in
      if equal = eq then []
      else if eq then
        (* expected equal: the symmetric difference is the counterexample *)
        let only_a = Rib.Global.diff a b and only_b = Rib.Global.diff b a in
        [
          {
            v_path = List.rev path;
            v_reason =
              Printf.sprintf
                "%s = %s fails: %d routes only in the former, %d only in the latter"
                (pp_transform r1) (pp_transform r2) (List.length only_a)
                (List.length only_b);
            v_routes = truncate (only_a @ only_b);
          };
        ]
      else
        [
          {
            v_path = List.rev path;
            v_reason =
              Printf.sprintf "%s != %s fails: the two RIBs are identical"
                (pp_transform r1) (pp_transform r2);
            v_routes = truncate a;
          };
        ]
  | Ast.G_eval_cmp (e1, op, e2) -> (
      match
        ( Semantics.eval_eval e1 ~pre ~post,
          Semantics.eval_eval e2 ~pre ~post )
      with
      | v1, v2 -> (
          match Value.cmp (Ast.cmp_op op) v1 v2 with
          | Some true -> []
          | Some false | None ->
              (* related routes: the transformed RIBs feeding either side *)
              let related e =
                let rec ribs_of = function
                  | Ast.E_val _ -> []
                  | Ast.E_agg (r, _) -> Semantics.eval_transform r ~pre ~post
                  | Ast.E_arith (a, _, b) -> ribs_of a @ ribs_of b
                in
                ribs_of e
              in
              [
                {
                  v_path = List.rev path;
                  v_reason =
                    Printf.sprintf "comparison fails: %s %s %s"
                      (Value.to_string v1) (Ast.cmp_to_string op)
                      (Value.to_string v2);
                  v_routes = truncate (related e1 @ related e2);
                };
              ])
      | exception Semantics.Eval_error msg ->
          [ { v_path = List.rev path; v_reason = msg; v_routes = [] } ])
  | Ast.G_guard (p, g) ->
      check_intent g
        ~path:("guard" :: path)
        ~pre:(Semantics.filter p pre)
        ~post:(Semantics.filter p post)
  | Ast.G_forall (field, g) ->
      List.concat_map
        (fun (v, (p, q)) ->
          check_intent g
            ~path:(Printf.sprintf "forall %s=%s" field (Value.to_string v) :: path)
            ~pre:p ~post:q)
        (Semantics.group_by field ~pre ~post)
  | Ast.G_forall_in (field, vals, g) ->
      List.concat_map
        (fun v ->
          check_intent g
            ~path:(Printf.sprintf "forall %s=%s" field (Value.to_string v) :: path)
            ~pre:(Semantics.filter_field_eq field v pre)
            ~post:(Semantics.filter_field_eq field v post))
        vals
  | Ast.G_and (a, b) ->
      check_intent a ~path ~pre ~post @ check_intent b ~path ~pre ~post
  | Ast.G_or (a, b) -> (
      match (check_intent a ~path ~pre ~post, check_intent b ~path ~pre ~post) with
      | [], _ | _, [] -> []
      | va, vb -> va @ vb)
  | Ast.G_imply (a, b) ->
      if Semantics.eval_intent a ~pre ~post then
        check_intent b ~path:("imply-consequent" :: path) ~pre ~post
      else []
  | Ast.G_not a ->
      if Semantics.eval_intent a ~pre ~post then
        [
          {
            v_path = List.rev path;
            v_reason = "negated intent holds";
            v_routes = [];
          };
        ]
      else []

(** Verify an intent against concrete base and updated global RIBs. *)
let check (g : Ast.intent) ~(base : Route.t list) ~(updated : Route.t list) :
    outcome =
  match check_intent g ~path:[] ~pre:base ~post:updated with
  | [] -> Satisfied
  | vs -> Violated vs

let check_spec (spec : string) ~base ~updated : (outcome, string) result =
  match Parser.parse spec with
  | Ok g -> Ok (check g ~base ~updated)
  | Error msg -> Error msg

let violation_to_string (v : violation) : string =
  let path = if v.v_path = [] then "" else String.concat " / " v.v_path ^ ": " in
  let routes =
    if v.v_routes = [] then ""
    else
      "\n"
      ^ String.concat "\n"
          (List.map (fun r -> "    " ^ Route.to_string r) v.v_routes)
  in
  path ^ v.v_reason ^ routes
