(** Unsigned 128-bit integers (IPv6 addresses).

    Represented as two [int64] halves interpreted unsigned: [hi] holds
    bits 127..64, [lo] bits 63..0. *)

type t = { hi : int64; lo : int64 }

val zero : t

val one : t

(** All bits set (2^128 - 1). *)
val max_value : t

val make : hi:int64 -> lo:int64 -> t

val hi : t -> int64

val lo : t -> int64

val equal : t -> t -> bool

(** Unsigned comparison. *)
val compare : t -> t -> int

(** @raise Invalid_argument on negative input. *)
val of_int : int -> t

(** [Some n] when the value fits a non-negative OCaml [int]. *)
val to_int_opt : t -> int option

val logand : t -> t -> t

val logor : t -> t -> t

val logxor : t -> t -> t

val lognot : t -> t

(** Shifts accept 0..128. @raise Invalid_argument otherwise. *)
val shift_left : t -> int -> t

val shift_right_logical : t -> int -> t

(** Wrapping arithmetic (mod 2^128). *)
val add : t -> t -> t

val sub : t -> t -> t

val succ : t -> t

val pred : t -> t

(** [test_bit t i]: bit [i], LSB = 0.  @raise Invalid_argument outside
    0..127. *)
val test_bit : t -> int -> bool

val set_bit : t -> int -> t

(** [mask len]: the top [len] bits set (a /len network mask). *)
val mask : int -> t

val to_hex : t -> string

val pp : Format.formatter -> t -> unit
