(** Network topology: devices, interfaces and links.

    Links are stored as directed edges (two per physical link) because
    traffic load is accounted per direction.  Change plans can add and
    remove devices and links. *)

type role = Wan_core | Wan_border | Dc_core | Dc_border | Isp_peer | Rr

val role_to_string : role -> string

type device = {
  name : string;
  vendor : string;  (** key into the {!Hoyan_config.Vsb} profile table *)
  asn : int;
  router_id : Ip.t;  (** doubles as the loopback address *)
  region : string;
  role : role;
}

type iface = { dev : string; ifname : string; addr : Ip.t option }

type edge = {
  src : string;
  src_if : string;
  dst : string;
  dst_if : string;
  bandwidth : float;  (** bits per second *)
}

type t

val empty : t

val add_device : t -> device -> t

val device : t -> string -> device option

(** @raise Invalid_argument on unknown devices. *)
val device_exn : t -> string -> device

val devices : t -> device list

val device_names : t -> string list

val num_devices : t -> int

val add_iface : t -> iface -> t

val ifaces : t -> string -> iface list

val iface_addr : t -> string -> string -> Ip.t option

(** Adds both directed edges of a physical link. *)
val add_link :
  t ->
  a:string ->
  a_if:string ->
  b:string ->
  b_if:string ->
  bandwidth:float ->
  t

(** Removes every (parallel) link between the pair, both directions. *)
val remove_link : t -> a:string -> b:string -> t

(** Removes the device together with all its links and interfaces. *)
val remove_device : t -> string -> t

val out_edges : t -> string -> edge list

val neighbors : t -> string -> string list

val edges : t -> edge list

(** Physical link count (directed edges / 2). *)
val num_links : t -> int

(** The directed edge from [a] to [b], if any (first parallel link). *)
val edge_between : t -> string -> string -> edge option

val link_key : edge -> string
