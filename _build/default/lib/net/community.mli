(** BGP community values ("ASN:tag") and route community sets. *)

type t = { asn : int; tag : int }

(** @raise Invalid_argument when out of range (asn 32-bit, tag 16-bit). *)
val make : int -> int -> t

val asn : t -> int

val tag : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : t -> string

val of_string : string -> t option

val of_string_exn : string -> t

val pp : Format.formatter -> t -> unit

(** Well-known communities (RFC 1997); the BGP engine honours
    [no_export] (blocked over eBGP) and [no_advertise] (blocked over
    every session). *)
val no_export : t

val no_advertise : t

val no_export_subconfed : t

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

(** Community sets attached to routes, kept sorted and deduplicated so
    structural equality coincides with set equality (this matters for
    the §3.1 equivalence-class keys). *)
module Set : sig
  type elt = t

  type t

  val empty : t

  val is_empty : t -> bool

  val of_list : elt list -> t

  val to_list : t -> elt list

  val singleton : elt -> t

  val mem : elt -> t -> bool

  val add : elt -> t -> t

  val union : t -> t -> t

  val remove : elt -> t -> t

  val diff : t -> t -> t

  val cardinal : t -> int

  val equal : t -> t -> bool

  val compare : t -> t -> int

  (** Comma-separated canonical rendering ("100:1,200:2"). *)
  val to_string : t -> string

  val of_string : string -> t option

  val pp : Format.formatter -> t -> unit
end
