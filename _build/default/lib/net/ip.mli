(** IP addresses, both IPv4 and IPv6.

    IPv4 addresses are stored as a non-negative OCaml [int] in
    [0, 2^32-1]; IPv6 addresses as an unsigned {!Int128.t}.  The paper's
    WAN is dual stack (the next generation is IPv6/SRv6 based), so both
    families are first-class throughout the code base. *)

type t = V4 of int | V6 of Int128.t

type family = Ipv4 | Ipv6

val family : t -> family

(** Address width of a family: 32 or 128. *)
val family_bits : family -> int

val family_to_string : family -> string

val equal : t -> t -> bool

(** Total order: IPv4 sorts before IPv6; numeric (unsigned) within a
    family.  This is the order the distributed splitter's ranges use. *)
val compare : t -> t -> int

val v4_max : int

(** [v4 n] is the IPv4 address with numeric value [n].
    @raise Invalid_argument when out of range. *)
val v4 : int -> t

val v6 : Int128.t -> t

(** [v4_of_octets a b c d] is [a.b.c.d].
    @raise Invalid_argument when an octet is out of range. *)
val v4_of_octets : int -> int -> int -> int -> t

(** [bit t i] is bit [i] counting from the most significant (bit 0 is the
    top bit); the longest-prefix trie walks addresses this way. *)
val bit : t -> int -> bool

val zero : family -> t

val max_addr : family -> t

(** Saturating successor/predecessor within the family. *)
val succ : t -> t

val pred : t -> t

(** [add t k] is [t + k], saturating; [k] must be non-negative. *)
val add : t -> int -> t

(** Canonical rendering: dotted quad for IPv4; RFC 5952-style compressed
    form for IPv6 (longest zero run collapsed to [::]). *)
val to_string : t -> string

(** Parses both families ([:] selects IPv6, including [::] compression).
    Returns [None] on malformed input. *)
val of_string : string -> t option

val of_string_exn : string -> t

val pp : Format.formatter -> t -> unit

val hash : t -> int
