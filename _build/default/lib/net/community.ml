(** BGP community values ("ASN:tag" pairs) and community sets. *)

type t = { asn : int; tag : int }

let make asn tag =
  if asn < 0 || asn > 0xffff_ffff || tag < 0 || tag > 0xffff then
    invalid_arg "Community.make"
  else { asn; tag }

let asn t = t.asn
let tag t = t.tag

let equal a b = a.asn = b.asn && a.tag = b.tag

let compare a b =
  let c = Int.compare a.asn b.asn in
  if c <> 0 then c else Int.compare a.tag b.tag

let to_string t = Printf.sprintf "%d:%d" t.asn t.tag

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some asn, Some tag
        when asn >= 0 && asn <= 0xffff_ffff && tag >= 0 && tag <= 0xffff ->
          Some { asn; tag }
      | _ -> None)
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Community.of_string_exn: %S" s)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Well-known communities (RFC 1997). *)
let no_export = { asn = 0xffff; tag = 0xff01 }
let no_advertise = { asn = 0xffff; tag = 0xff02 }
let no_export_subconfed = { asn = 0xffff; tag = 0xff03 }

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module CSet = Stdlib.Set.Make (Ord)

(** Community sets attached to routes; kept sorted and deduplicated so that
    structural equality coincides with set equality (important for the
    equivalence-class keys of §3.1). *)
module Set = struct
  type elt = t
  type t = elt list (* sorted, unique *)

  let empty = []
  let is_empty = function [] -> true | _ :: _ -> false
  let of_list l = CSet.elements (CSet.of_list l)
  let to_list (t : t) = t
  let singleton c : t = [ c ]
  let mem c (t : t) = List.exists (equal c) t
  let add c t = of_list (c :: t)
  let union a b = of_list (a @ b)
  let remove c (t : t) : t = List.filter (fun x -> not (equal c x)) t
  let diff a (b : t) : t = List.filter (fun x -> not (mem x b)) a
  let cardinal = List.length

  let equal (a : t) (b : t) =
    try List.for_all2 equal a b with Invalid_argument _ -> false

  let compare (a : t) (b : t) =
    let rec go = function
      | [], [] -> 0
      | [], _ :: _ -> -1
      | _ :: _, [] -> 1
      | x :: xs, y :: ys ->
          let c = compare x y in
          if c <> 0 then c else go (xs, ys)
    in
    go (a, b)

  let to_string t = String.concat "," (List.map to_string t)

  let of_string s =
    if String.trim s = "" then Some empty
    else
      let parts = String.split_on_char ',' s |> List.map String.trim in
      let rec go acc = function
        | [] -> Some (of_list acc)
        | p :: rest -> (
            match of_string p with
            | Some c -> go (c :: acc) rest
            | None -> None)
      in
      go [] parts

  let pp ppf t = Format.pp_print_string ppf (to_string t)
end
