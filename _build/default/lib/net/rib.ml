(** RIBs: collections of routes.

    {!t} is the RIB of a single device+VRF (routes grouped per prefix);
    {!Global} is the paper's {e global RIB abstraction} (§4.1): every route
    of every device gathered in one table, which is what RCL intents are
    evaluated against and what the route-simulation subtasks emit. *)

type t = Route.t list Prefix.Map.t

let empty : t = Prefix.Map.empty

let add (rib : t) (r : Route.t) : t =
  Prefix.Map.update r.Route.prefix
    (function None -> Some [ r ] | Some rs -> Some (r :: rs))
    rib

let set (rib : t) prefix routes : t =
  if routes = [] then Prefix.Map.remove prefix rib
  else Prefix.Map.add prefix routes rib

let find (rib : t) prefix =
  Option.value (Prefix.Map.find_opt prefix rib) ~default:[]

let remove (rib : t) prefix : t = Prefix.Map.remove prefix rib

let fold f (rib : t) init =
  Prefix.Map.fold (fun p rs acc -> f p rs acc) rib init

let routes (rib : t) =
  Prefix.Map.fold (fun _ rs acc -> List.rev_append rs acc) rib []

let cardinal (rib : t) =
  Prefix.Map.fold (fun _ rs n -> n + List.length rs) rib 0

let prefixes (rib : t) = Prefix.Map.bindings rib |> List.map fst

(** Best routes only (route_type = Best or Ecmp, which are the ones
    installed in the FIB). *)
let installed (rib : t) prefix =
  find rib prefix
  |> List.filter (fun r ->
         match r.Route.route_type with
         | Route.Best | Route.Ecmp -> true
         | Route.Backup -> false)

type rib = t

module Global = struct
  type t = Route.t list

  let empty : t = []
  let of_routes (rs : Route.t list) : t = rs
  let to_routes (t : t) : Route.t list = t
  let cardinal = List.length
  let union (a : t) (b : t) : t = a @ b

  let filter p (t : t) : t = List.filter p t

  (** Multiset equality of two global RIBs (order independent), as required
      by the RCL intent [PRE = POST]. *)
  let equal (a : t) (b : t) =
    let sa = List.sort Route.compare a and sb = List.sort Route.compare b in
    List.equal Route.equal sa sb

  (** Routes that are in [a] but not in [b] (multiset difference); used by
      the counter-example generator and the accuracy validator. *)
  let diff (a : t) (b : t) : t =
    let sb = ref (List.sort Route.compare b) in
    List.sort Route.compare a
    |> List.filter (fun r ->
           let rec drop () =
             match !sb with
             | [] -> true
             | x :: rest ->
                 let c = Route.compare x r in
                 if c < 0 then begin
                   sb := rest;
                   drop ()
                 end
                 else if c = 0 then begin
                   sb := rest;
                   false
                 end
                 else true
           in
           drop ())

  let devices (t : t) =
    List.map (fun r -> r.Route.device) t |> List.sort_uniq String.compare

  let group_by_device (t : t) =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r ->
        let key = r.Route.device in
        let existing = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
        Hashtbl.replace tbl key (r :: existing))
      t;
    Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (** Rebuild the per-device/VRF RIB table from a global RIB. *)
  let to_ribs (t : t) =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r ->
        let key = (r.Route.device, r.Route.vrf) in
        let rib : rib =
          Option.value (Hashtbl.find_opt tbl key) ~default:Prefix.Map.empty
        in
        Hashtbl.replace tbl key (add rib r))
      t;
    tbl
end
