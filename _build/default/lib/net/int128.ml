(** Unsigned 128-bit integers, used to represent IPv6 addresses.

    The representation is a pair of [int64] values interpreted as an
    unsigned 128-bit quantity: [hi] holds bits 127..64 and [lo] holds bits
    63..0.  All operations treat the value as unsigned. *)

type t = { hi : int64; lo : int64 }

let zero = { hi = 0L; lo = 0L }
let one = { hi = 0L; lo = 1L }
let max_value = { hi = -1L; lo = -1L }

let make ~hi ~lo = { hi; lo }
let hi t = t.hi
let lo t = t.lo

let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let compare a b =
  let c = Int64.unsigned_compare a.hi b.hi in
  if c <> 0 then c else Int64.unsigned_compare a.lo b.lo

let of_int n =
  if n < 0 then invalid_arg "Int128.of_int: negative"
  else { hi = 0L; lo = Int64.of_int n }

(* Conversion to [int] when the value fits in a non-negative OCaml int. *)
let to_int_opt t =
  if Int64.equal t.hi 0L && Int64.compare t.lo 0L >= 0
     && Int64.compare t.lo (Int64.of_int max_int) <= 0
  then Some (Int64.to_int t.lo)
  else None

let logand a b = { hi = Int64.logand a.hi b.hi; lo = Int64.logand a.lo b.lo }
let logor a b = { hi = Int64.logor a.hi b.hi; lo = Int64.logor a.lo b.lo }
let logxor a b = { hi = Int64.logxor a.hi b.hi; lo = Int64.logxor a.lo b.lo }
let lognot a = { hi = Int64.lognot a.hi; lo = Int64.lognot a.lo }

let shift_left t n =
  if n < 0 || n > 128 then invalid_arg "Int128.shift_left"
  else if n = 0 then t
  else if n >= 128 then zero
  else if n >= 64 then { hi = Int64.shift_left t.lo (n - 64); lo = 0L }
  else
    {
      hi =
        Int64.logor (Int64.shift_left t.hi n)
          (Int64.shift_right_logical t.lo (64 - n));
      lo = Int64.shift_left t.lo n;
    }

let shift_right_logical t n =
  if n < 0 || n > 128 then invalid_arg "Int128.shift_right_logical"
  else if n = 0 then t
  else if n >= 128 then zero
  else if n >= 64 then { hi = 0L; lo = Int64.shift_right_logical t.hi (n - 64) }
  else
    {
      hi = Int64.shift_right_logical t.hi n;
      lo =
        Int64.logor
          (Int64.shift_right_logical t.lo n)
          (Int64.shift_left t.hi (64 - n));
    }

let add a b =
  let lo = Int64.add a.lo b.lo in
  let carry = if Int64.unsigned_compare lo a.lo < 0 then 1L else 0L in
  { hi = Int64.add (Int64.add a.hi b.hi) carry; lo }

let sub a b =
  let lo = Int64.sub a.lo b.lo in
  let borrow = if Int64.unsigned_compare a.lo b.lo < 0 then 1L else 0L in
  { hi = Int64.sub (Int64.sub a.hi b.hi) borrow; lo }

let succ t = add t one
let pred t = sub t one

(** [test_bit t i] is the value of bit [i], where bit 0 is the least
    significant bit and bit 127 the most significant. *)
let test_bit t i =
  if i < 0 || i > 127 then invalid_arg "Int128.test_bit"
  else if i >= 64 then
    Int64.logand (Int64.shift_right_logical t.hi (i - 64)) 1L = 1L
  else Int64.logand (Int64.shift_right_logical t.lo i) 1L = 1L

(** [set_bit t i] sets bit [i] (LSB = 0). *)
let set_bit t i =
  if i < 0 || i > 127 then invalid_arg "Int128.set_bit"
  else if i >= 64 then
    { t with hi = Int64.logor t.hi (Int64.shift_left 1L (i - 64)) }
  else { t with lo = Int64.logor t.lo (Int64.shift_left 1L i) }

(** Mask with the top [len] bits set (a /len network mask), [0 <= len <= 128]. *)
let mask len =
  if len < 0 || len > 128 then invalid_arg "Int128.mask"
  else if len = 0 then zero
  else shift_left max_value (128 - len)

let to_hex t = Printf.sprintf "%016Lx%016Lx" t.hi t.lo

let pp ppf t = Format.pp_print_string ppf (to_hex t)
