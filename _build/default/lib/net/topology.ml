(** Network topology: devices, interfaces and links.

    The topology is what the topology monitoring system reports (§2.1); a
    change plan can add/remove devices and links (§2.2).  Links are stored
    as directed edges (two per physical link) because traffic load is
    accounted per direction. *)

type role = Wan_core | Wan_border | Dc_core | Dc_border | Isp_peer | Rr

let role_to_string = function
  | Wan_core -> "wan-core"
  | Wan_border -> "wan-border"
  | Dc_core -> "dc-core"
  | Dc_border -> "dc-border"
  | Isp_peer -> "isp-peer"
  | Rr -> "route-reflector"

type device = {
  name : string;
  vendor : string; (* key into the vendor profile table *)
  asn : int;
  router_id : Ip.t;
  region : string;
  role : role;
}

type iface = { dev : string; ifname : string; addr : Ip.t option }

type edge = {
  src : string; (* device name *)
  src_if : string;
  dst : string;
  dst_if : string;
  bandwidth : float; (* bits per second *)
}

module Smap = Map.Make (String)

type t = {
  devices : device Smap.t;
  edges : edge list; (* directed; both directions present *)
  adj : edge list Smap.t; (* outgoing edges per device *)
  ifaces : iface list Smap.t; (* interfaces per device *)
}

let empty =
  { devices = Smap.empty; edges = []; adj = Smap.empty; ifaces = Smap.empty }

let add_device t (d : device) = { t with devices = Smap.add d.name d t.devices }

let device t name = Smap.find_opt name t.devices

let device_exn t name =
  match device t name with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Topology.device_exn: %s" name)

let devices t = Smap.bindings t.devices |> List.map snd

let device_names t = Smap.bindings t.devices |> List.map fst

let num_devices t = Smap.cardinal t.devices

let add_iface t (i : iface) =
  let existing = Option.value (Smap.find_opt i.dev t.ifaces) ~default:[] in
  { t with ifaces = Smap.add i.dev (i :: existing) t.ifaces }

let ifaces t dev = Option.value (Smap.find_opt dev t.ifaces) ~default:[]

let iface_addr t dev ifname =
  List.find_opt (fun i -> String.equal i.ifname ifname) (ifaces t dev)
  |> Fun.flip Option.bind (fun i -> i.addr)

(** Add a bidirectional link; creates the two directed edges. *)
let add_link t ~a ~a_if ~b ~b_if ~bandwidth =
  let e1 = { src = a; src_if = a_if; dst = b; dst_if = b_if; bandwidth } in
  let e2 = { src = b; src_if = b_if; dst = a; dst_if = a_if; bandwidth } in
  let push e adj =
    let existing = Option.value (Smap.find_opt e.src adj) ~default:[] in
    Smap.add e.src (e :: existing) adj
  in
  {
    t with
    edges = e1 :: e2 :: t.edges;
    adj = push e2 (push e1 t.adj);
  }

(** Remove both directions of the link between [a] and [b] (all parallel
    links between the pair when interfaces are not specified). *)
let remove_link t ~a ~b =
  let keep e =
    not
      ((String.equal e.src a && String.equal e.dst b)
      || (String.equal e.src b && String.equal e.dst a))
  in
  {
    t with
    edges = List.filter keep t.edges;
    adj = Smap.map (List.filter keep) t.adj;
  }

let remove_device t name =
  let keep e = not (String.equal e.src name || String.equal e.dst name) in
  {
    devices = Smap.remove name t.devices;
    edges = List.filter keep t.edges;
    adj = Smap.map (List.filter keep) (Smap.remove name t.adj);
    ifaces = Smap.remove name t.ifaces;
  }

let out_edges t dev = Option.value (Smap.find_opt dev t.adj) ~default:[]

let neighbors t dev = out_edges t dev |> List.map (fun e -> e.dst)

let edges t = t.edges

let num_links t = List.length t.edges / 2

(** The directed edge from [a] to [b], if any (first parallel link). *)
let edge_between t a b =
  List.find_opt (fun e -> String.equal e.dst b) (out_edges t a)

let link_key e = Printf.sprintf "%s:%s->%s:%s" e.src e.src_if e.dst e.dst_if
