(** Routes: the rows of Hoyan's (global) RIB abstraction.

    A route is one path for one prefix on one device/VRF; ECMP shows up as
    several routes for the same prefix whose [route_type] is [Best]/[Ecmp].
    The [device] and [vrf] fields make a route directly usable as a row of
    the global RIB that RCL (§4) specifies over. *)

type origin = Igp | Egp | Incomplete

let origin_to_string = function
  | Igp -> "igp"
  | Egp -> "egp"
  | Incomplete -> "incomplete"

let origin_rank = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

type proto = Bgp | Isis | Static | Direct | Aggregate | Sr_policy

let proto_to_string = function
  | Bgp -> "bgp"
  | Isis -> "isis"
  | Static -> "static"
  | Direct -> "direct"
  | Aggregate -> "aggregate"
  | Sr_policy -> "sr"

type source = Ebgp | Ibgp | Local | Redistributed

let source_to_string = function
  | Ebgp -> "ebgp"
  | Ibgp -> "ibgp"
  | Local -> "local"
  | Redistributed -> "redistributed"

type route_type = Best | Ecmp | Backup

let route_type_to_string = function
  | Best -> "BEST"
  | Ecmp -> "ECMP"
  | Backup -> "BACKUP"

type t = {
  device : string;
  vrf : string;
  prefix : Prefix.t;
  proto : proto;
  nexthop : Ip.t option; (* [None] for locally originated / connected *)
  out_iface : string option;
  local_pref : int;
  med : int;
  weight : int; (* vendor-local, not propagated by BGP *)
  preference : int; (* admin distance; vendor-specific defaults *)
  communities : Community.Set.t;
  as_path : As_path.t;
  origin : origin;
  igp_cost : int; (* cost to reach the BGP next hop *)
  peer : string option; (* neighbor device the route was learned from *)
  source : source;
  route_type : route_type;
  tag : int;
}

let default_vrf = "global"

let make ~device ~prefix ?(vrf = default_vrf) ?(proto = Bgp) ?nexthop
    ?out_iface ?(local_pref = 100) ?(med = 0) ?(weight = 0) ?(preference = 255)
    ?(communities = Community.Set.empty) ?(as_path = As_path.empty)
    ?(origin = Igp) ?(igp_cost = 0) ?peer ?(source = Local)
    ?(route_type = Best) ?(tag = 0) () =
  {
    device;
    vrf;
    prefix;
    proto;
    nexthop;
    out_iface;
    local_pref;
    med;
    weight;
    preference;
    communities;
    as_path;
    origin;
    igp_cost;
    peer;
    source;
    route_type;
    tag;
  }

let equal (a : t) (b : t) =
  String.equal a.device b.device
  && String.equal a.vrf b.vrf
  && Prefix.equal a.prefix b.prefix
  && a.proto = b.proto
  && Option.equal Ip.equal a.nexthop b.nexthop
  && Option.equal String.equal a.out_iface b.out_iface
  && a.local_pref = b.local_pref
  && a.med = b.med && a.weight = b.weight
  && a.preference = b.preference
  && Community.Set.equal a.communities b.communities
  && As_path.equal a.as_path b.as_path
  && a.origin = b.origin
  && a.igp_cost = b.igp_cost
  && Option.equal String.equal a.peer b.peer
  && a.source = b.source
  && a.route_type = b.route_type
  && a.tag = b.tag

let compare (a : t) (b : t) =
  let chain l = List.fold_left (fun c f -> if c <> 0 then c else f ()) 0 l in
  chain
    [
      (fun () -> String.compare a.device b.device);
      (fun () -> String.compare a.vrf b.vrf);
      (fun () -> Prefix.compare a.prefix b.prefix);
      (fun () -> Stdlib.compare a.proto b.proto);
      (fun () -> Option.compare Ip.compare a.nexthop b.nexthop);
      (fun () -> Option.compare String.compare a.out_iface b.out_iface);
      (fun () -> Int.compare a.local_pref b.local_pref);
      (fun () -> Int.compare a.med b.med);
      (fun () -> Int.compare a.weight b.weight);
      (fun () -> Int.compare a.preference b.preference);
      (fun () -> Community.Set.compare a.communities b.communities);
      (fun () -> As_path.compare a.as_path b.as_path);
      (fun () -> Stdlib.compare a.origin b.origin);
      (fun () -> Int.compare a.igp_cost b.igp_cost);
      (fun () -> Option.compare String.compare a.peer b.peer);
      (fun () -> Stdlib.compare a.source b.source);
      (fun () -> Stdlib.compare a.route_type b.route_type);
      (fun () -> Int.compare a.tag b.tag);
    ]

(** Equality of the BGP attributes that propagate between routers; this is
    condition (3) of the input-route equivalence-class definition (§3.1). *)
let equal_attrs (a : t) (b : t) =
  a.local_pref = b.local_pref && a.med = b.med
  && Community.Set.equal a.communities b.communities
  && As_path.equal a.as_path b.as_path
  && a.origin = b.origin
  && Option.equal Ip.equal a.nexthop b.nexthop

let nexthop_string r =
  match r.nexthop with Some ip -> Ip.to_string ip | None -> "self"

let to_string r =
  Printf.sprintf "%s|%s|%s|%s|nh=%s|lp=%d|med=%d|comm=[%s]|as=[%s]|%s" r.device
    r.vrf
    (Prefix.to_string r.prefix)
    (proto_to_string r.proto) (nexthop_string r) r.local_pref r.med
    (Community.Set.to_string r.communities)
    (As_path.to_string r.as_path)
    (route_type_to_string r.route_type)

let pp ppf r = Format.pp_print_string ppf (to_string r)
