(** Routes: the rows of Hoyan's global RIB abstraction.

    A route is one path for one prefix on one device/VRF; ECMP shows up
    as several routes whose [route_type] is [Best]/[Ecmp].  The [device]
    and [vrf] fields make a route directly usable as a row of the global
    RIB that RCL (paper §4) specifies over. *)

type origin = Igp | Egp | Incomplete

val origin_to_string : origin -> string

(** Decision-process rank: IGP < EGP < Incomplete. *)
val origin_rank : origin -> int

type proto = Bgp | Isis | Static | Direct | Aggregate | Sr_policy

val proto_to_string : proto -> string

type source = Ebgp | Ibgp | Local | Redistributed

val source_to_string : source -> string

type route_type = Best | Ecmp | Backup

val route_type_to_string : route_type -> string

type t = {
  device : string;
  vrf : string;
  prefix : Prefix.t;
  proto : proto;
  nexthop : Ip.t option;  (** [None] = locally originated / connected *)
  out_iface : string option;
  local_pref : int;
  med : int;
  weight : int;  (** vendor-local; never propagated by BGP *)
  preference : int;  (** admin distance; vendor-specific defaults *)
  communities : Community.Set.t;
  as_path : As_path.t;
  origin : origin;
  igp_cost : int;  (** cost to reach the BGP next hop *)
  peer : string option;  (** neighbor device the route was learned from *)
  source : source;
  route_type : route_type;
  tag : int;
}

val default_vrf : string

val make :
  device:string ->
  prefix:Prefix.t ->
  ?vrf:string ->
  ?proto:proto ->
  ?nexthop:Ip.t ->
  ?out_iface:string ->
  ?local_pref:int ->
  ?med:int ->
  ?weight:int ->
  ?preference:int ->
  ?communities:Community.Set.t ->
  ?as_path:As_path.t ->
  ?origin:origin ->
  ?igp_cost:int ->
  ?peer:string ->
  ?source:source ->
  ?route_type:route_type ->
  ?tag:int ->
  unit ->
  t

(** Structural equality over every field. *)
val equal : t -> t -> bool

(** A total order consistent with {!equal} (used for multiset RIB
    comparison and deterministic deduplication). *)
val compare : t -> t -> int

(** Equality of the attributes that propagate between routers — condition
    (3) of the paper's input-route equivalence classes. *)
val equal_attrs : t -> t -> bool

(** ["self"] when the route has no next hop. *)
val nexthop_string : t -> string

val to_string : t -> string

val pp : Format.formatter -> t -> unit
