(** BGP AS paths.

    An AS path is a list of segments; a segment is either an ordered
    [Seq]uence of ASNs or an unordered [Set] (produced by route aggregation
    with AS-set).  The path length used by the decision process counts a
    whole set segment as one hop. *)

type segment = Seq of int list | Set of int list

type t = segment list

let empty : t = []

let of_asns asns : t = match asns with [] -> [] | _ -> [ Seq asns ]

let is_empty = function
  | [] -> true
  | segs ->
      List.for_all (function Seq [] -> true | Set [] -> true | _ -> false) segs

(** Hop count for best-path selection: each ASN in a sequence counts 1,
    each set segment counts 1 in total. *)
let length (t : t) =
  List.fold_left
    (fun n seg ->
      match seg with Seq l -> n + List.length l | Set _ -> n + 1)
    0 t

(** All ASNs appearing anywhere in the path. *)
let asns (t : t) =
  List.concat_map (function Seq l -> l | Set l -> l) t

let contains_asn asn t = List.mem asn (asns t)

(** Prepend an ASN (standard eBGP export behaviour). *)
let prepend asn (t : t) : t =
  match t with
  | Seq l :: rest -> Seq (asn :: l) :: rest
  | _ -> Seq [ asn ] :: t

(** Prepend the same ASN [n] times (path prepending policy action). *)
let prepend_n asn n t =
  let rec go n t = if n <= 0 then t else go (n - 1) (prepend asn t) in
  go n t

let equal_segment a b =
  match (a, b) with
  | Seq x, Seq y -> List.equal Int.equal x y
  | Set x, Set y ->
      List.equal Int.equal
        (List.sort_uniq Int.compare x)
        (List.sort_uniq Int.compare y)
  | Seq _, Set _ | Set _, Seq _ -> false

let equal (a : t) (b : t) = List.equal equal_segment a b

let compare_segment a b =
  match (a, b) with
  | Seq x, Seq y -> List.compare Int.compare x y
  | Set x, Set y ->
      List.compare Int.compare
        (List.sort_uniq Int.compare x)
        (List.sort_uniq Int.compare y)
  | Seq _, Set _ -> -1
  | Set _, Seq _ -> 1

let compare (a : t) (b : t) = List.compare compare_segment a b

(** Rendering used for policy regex matching: ASNs separated by single
    spaces; set segments in braces, e.g. ["100 200 {300,400}"]. *)
let to_string (t : t) =
  t
  |> List.map (function
       | Seq l -> String.concat " " (List.map string_of_int l)
       | Set l ->
           "{" ^ String.concat "," (List.map string_of_int l) ^ "}")
  |> List.concat_map (fun s -> if s = "" then [] else [ s ])
  |> String.concat " "

let of_string s =
  let s = String.trim s in
  if s = "" then Some empty
  else
    let toks = String.split_on_char ' ' s |> List.filter (fun x -> x <> "") in
    let rec go acc seq = function
      | [] ->
          let acc = if seq = [] then acc else Seq (List.rev seq) :: acc in
          Some (List.rev acc)
      | tok :: rest ->
          if String.length tok >= 2 && tok.[0] = '{' then
            let inner = String.sub tok 1 (String.length tok - 2) in
            let members =
              String.split_on_char ',' inner |> List.filter_map int_of_string_opt
            in
            let acc = if seq = [] then acc else Seq (List.rev seq) :: acc in
            go (Set members :: acc) [] rest
          else (
            match int_of_string_opt tok with
            | Some asn -> go acc (asn :: seq) rest
            | None -> None)
    in
    go [] [] toks

let pp ppf t = Format.pp_print_string ppf (to_string t)

(** Common-prefix of a list of paths as a flat ASN sequence.  Used by route
    aggregation without AS-set: some vendors put the common AS-path prefix
    of the aggregated routes on the aggregate (VSB "common AS path prefix",
    Table 5), others emit an empty path. *)
let common_prefix (paths : t list) : int list =
  let flats = List.map asns paths in
  match flats with
  | [] -> []
  | first :: rest ->
      let rec common acc = function
        | [] -> List.rev acc
        | x :: xs ->
            if
              List.for_all
                (fun l ->
                  match List.nth_opt l (List.length acc) with
                  | Some y -> y = x
                  | None -> false)
                rest
            then common (x :: acc) xs
            else List.rev acc
      in
      common [] first

(** Aggregate with AS-set: the common prefix followed by a set of the
    remaining ASNs, per standard BGP aggregation. *)
let aggregate_with_set (paths : t list) : t =
  let cp = common_prefix paths in
  let rest =
    List.concat_map
      (fun p ->
        let flat = asns p in
        let rec drop n l =
          if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
        in
        drop (List.length cp) flat)
      paths
    |> List.sort_uniq Int.compare
  in
  match (cp, rest) with
  | [], [] -> []
  | cp, [] -> [ Seq cp ]
  | [], rest -> [ Set rest ]
  | cp, rest -> [ Seq cp; Set rest ]
