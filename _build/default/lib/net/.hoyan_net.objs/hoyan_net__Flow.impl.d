lib/net/flow.ml: Float Format Ip Printf Stdlib String
