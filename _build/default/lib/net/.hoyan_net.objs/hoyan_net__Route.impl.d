lib/net/route.ml: As_path Community Format Int Ip List Option Prefix Printf Stdlib String
