lib/net/trie.mli: Ip Prefix
