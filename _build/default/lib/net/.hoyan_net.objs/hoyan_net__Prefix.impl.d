lib/net/prefix.ml: Format Int Int128 Ip Printf Stdlib String
