lib/net/rib.ml: Hashtbl List Option Prefix Route String
