lib/net/community.mli: Format
