lib/net/ip.ml: Array Format Int Int128 Int64 List Printf String
