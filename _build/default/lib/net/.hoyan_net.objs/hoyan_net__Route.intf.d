lib/net/route.mli: As_path Community Format Ip Prefix
