lib/net/int128.ml: Format Int64 Printf
