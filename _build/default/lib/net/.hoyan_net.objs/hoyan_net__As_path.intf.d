lib/net/as_path.mli: Format
