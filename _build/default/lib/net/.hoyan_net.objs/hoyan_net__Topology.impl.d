lib/net/topology.ml: Fun Ip List Map Option Printf String
