lib/net/trie.ml: Int128 Ip List Option Prefix
