lib/net/flow.mli: Format Ip
