lib/net/community.ml: Format Int List Printf Stdlib String
