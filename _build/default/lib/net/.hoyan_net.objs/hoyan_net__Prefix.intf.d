lib/net/prefix.mli: Format Ip Stdlib
