lib/net/topology.mli: Ip
