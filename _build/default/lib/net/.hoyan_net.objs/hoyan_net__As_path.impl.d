lib/net/as_path.ml: Format Int List String
