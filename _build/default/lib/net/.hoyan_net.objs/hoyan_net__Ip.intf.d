lib/net/ip.mli: Format Int128
