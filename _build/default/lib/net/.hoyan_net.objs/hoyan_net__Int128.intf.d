lib/net/int128.mli: Format
