(** Flows: the unit of traffic simulation.

    A flow is a 5-tuple plus its ingress device and traffic volume.  In
    production Hoyan simulates O(10^9) flows; here a flow record may also
    stand for a {e population} of identical-forwarding flows via the
    [population] count, which is how the generators represent billions of
    flows without materializing them (see DESIGN.md §2). *)

type t = {
  src : Ip.t;
  dst : Ip.t;
  sport : int;
  dport : int;
  ip_proto : int; (* 6 = TCP, 17 = UDP, ... *)
  ingress : string; (* device where the flow enters the WAN *)
  volume : float; (* bits per second *)
  population : int; (* number of concrete flows this record stands for *)
}

let make ~src ~dst ~ingress ?(sport = 0) ?(dport = 0) ?(ip_proto = 6)
    ?(volume = 0.) ?(population = 1) () =
  { src; dst; sport; dport; ip_proto; ingress; volume; population }

let equal a b =
  Ip.equal a.src b.src && Ip.equal a.dst b.dst && a.sport = b.sport
  && a.dport = b.dport && a.ip_proto = b.ip_proto
  && String.equal a.ingress b.ingress
  && Float.equal a.volume b.volume
  && a.population = b.population

let compare a b =
  let c = Ip.compare a.dst b.dst in
  if c <> 0 then c
  else
    let c = Ip.compare a.src b.src in
    if c <> 0 then c
    else
      let c = String.compare a.ingress b.ingress in
      if c <> 0 then c
      else Stdlib.compare (a.sport, a.dport, a.ip_proto) (b.sport, b.dport, b.ip_proto)

let to_string f =
  Printf.sprintf "%s:%d->%s:%d p%d @%s vol=%.0f n=%d" (Ip.to_string f.src)
    f.sport (Ip.to_string f.dst) f.dport f.ip_proto f.ingress f.volume
    f.population

let pp ppf f = Format.pp_print_string ppf (to_string f)
