(** IP addresses (IPv4 and IPv6).

    IPv4 addresses are stored as a non-negative OCaml [int] in
    [0, 2^32 - 1]; IPv6 addresses as an unsigned {!Int128.t}.  The WAN in
    the paper is dual stack (the next-generation WAN is IPv6/SRv6-based),
    so both families are first-class throughout the code base. *)

type t = V4 of int | V6 of Int128.t

type family = Ipv4 | Ipv6

let family = function V4 _ -> Ipv4 | V6 _ -> Ipv6

let family_bits = function Ipv4 -> 32 | Ipv6 -> 128

let family_to_string = function Ipv4 -> "ipv4" | Ipv6 -> "ipv6"

let equal a b =
  match (a, b) with
  | V4 x, V4 y -> Int.equal x y
  | V6 x, V6 y -> Int128.equal x y
  | V4 _, V6 _ | V6 _, V4 _ -> false

(* IPv4 sorts before IPv6; within a family, numeric (unsigned) order. *)
let compare a b =
  match (a, b) with
  | V4 x, V4 y -> Int.compare x y
  | V6 x, V6 y -> Int128.compare x y
  | V4 _, V6 _ -> -1
  | V6 _, V4 _ -> 1

let v4_max = (1 lsl 32) - 1

let v4 n =
  if n < 0 || n > v4_max then invalid_arg "Ip.v4: out of range" else V4 n

let v6 n = V6 n

let v4_of_octets a b c d =
  let ok x = x >= 0 && x <= 255 in
  if ok a && ok b && ok c && ok d then
    V4 ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)
  else invalid_arg "Ip.v4_of_octets"

(** Bit [i] of the address counting from the most significant bit
    (i.e. [bit a 0] is the top bit); used by the longest-prefix trie. *)
let bit t i =
  match t with
  | V4 n ->
      if i < 0 || i > 31 then invalid_arg "Ip.bit(v4)"
      else (n lsr (31 - i)) land 1 = 1
  | V6 n ->
      if i < 0 || i > 127 then invalid_arg "Ip.bit(v6)"
      else Int128.test_bit n (127 - i)

let zero = function Ipv4 -> V4 0 | Ipv6 -> V6 Int128.zero

let max_addr = function Ipv4 -> V4 v4_max | Ipv6 -> V6 Int128.max_value

let succ = function
  | V4 n -> if n >= v4_max then V4 v4_max else V4 (n + 1)
  | V6 n -> if Int128.equal n Int128.max_value then V6 n else V6 (Int128.succ n)

let pred = function
  | V4 n -> if n <= 0 then V4 0 else V4 (n - 1)
  | V6 n -> if Int128.equal n Int128.zero then V6 n else V6 (Int128.pred n)

(* Saturating addition of a non-negative integer offset. *)
let add t k =
  if k < 0 then invalid_arg "Ip.add: negative offset"
  else
    match t with
    | V4 n -> V4 (min v4_max (n + k))
    | V6 n ->
        let r = Int128.add n (Int128.of_int k) in
        if Int128.compare r n < 0 then V6 Int128.max_value else V6 r

let to_string = function
  | V4 n ->
      Printf.sprintf "%d.%d.%d.%d"
        ((n lsr 24) land 0xff)
        ((n lsr 16) land 0xff)
        ((n lsr 8) land 0xff)
        (n land 0xff)
  | V6 n ->
      (* RFC 5952-style: compress the longest run of zero groups. *)
      let groups =
        Array.init 8 (fun i ->
            let shift = (7 - i) * 16 in
            let g = Int128.shift_right_logical n shift in
            match Int128.to_int_opt (Int128.logand g (Int128.of_int 0xffff)) with
            | Some v -> v
            | None -> 0)
      in
      (* Find the longest run of zeros (length >= 2 to compress). *)
      let best_start = ref (-1) and best_len = ref 0 in
      let cur_start = ref (-1) and cur_len = ref 0 in
      Array.iteri
        (fun i g ->
          if g = 0 then begin
            if !cur_start < 0 then cur_start := i;
            incr cur_len;
            if !cur_len > !best_len then begin
              best_len := !cur_len;
              best_start := !cur_start
            end
          end
          else begin
            cur_start := -1;
            cur_len := 0
          end)
        groups;
      if !best_len < 2 then
        String.concat ":"
          (Array.to_list (Array.map (Printf.sprintf "%x") groups))
      else
        let before =
          Array.to_list (Array.sub groups 0 !best_start)
          |> List.map (Printf.sprintf "%x")
        in
        let after_start = !best_start + !best_len in
        let after =
          Array.to_list (Array.sub groups after_start (8 - after_start))
          |> List.map (Printf.sprintf "%x")
        in
        String.concat ":" before ^ "::" ^ String.concat ":" after

let parse_v4 s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && String.length x > 0 -> Some v
        | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (v4_of_octets a b c d)
      | _ -> None)
  | _ -> None

let parse_v6 s =
  let group x =
    if String.length x = 0 || String.length x > 4 then None
    else
      match int_of_string_opt ("0x" ^ x) with
      | Some v when v >= 0 && v <= 0xffff -> Some v
      | _ -> None
  in
  let of_groups gs =
    if List.length gs <> 8 then None
    else
      let rec build acc = function
        | [] -> Some acc
        | g :: rest -> (
            match g with
            | Some v ->
                build
                  (Int128.logor
                     (Int128.shift_left acc 16)
                     (Int128.of_int v))
                  rest
            | None -> None)
      in
      build Int128.zero gs
  in
  let split_groups part =
    if String.length part = 0 then []
    else String.split_on_char ':' part |> List.map group
  in
  match
    (* At most one "::". *)
    let parts =
      let rec find i =
        if i + 1 >= String.length s then None
        else if s.[i] = ':' && s.[i + 1] = ':' then Some i
        else find (i + 1)
      in
      find 0
    in
    match parts with
    | None -> of_groups (split_groups s)
    | Some i ->
        let left = String.sub s 0 i in
        let right = String.sub s (i + 2) (String.length s - i - 2) in
        if String.length right > 0 && String.contains right ':'
           && String.length right >= 2
           && right.[0] = ':'
        then None (* ":::" *)
        else
          let l = split_groups left and r = split_groups right in
          let fill = 8 - List.length l - List.length r in
          if fill < 1 then None
          else of_groups (l @ List.init fill (fun _ -> Some 0) @ r)
  with
  | Some n -> Some (V6 n)
  | None -> None

let of_string s =
  if String.contains s ':' then parse_v6 s else parse_v4 s

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ip.of_string_exn: %S" s)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let hash = function
  | V4 n -> n * 0x9e3779b1
  | V6 n ->
      Int64.to_int (Int128.lo n) lxor (Int64.to_int (Int128.hi n) * 0x85ebca77)
