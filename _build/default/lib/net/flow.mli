(** Flows: the unit of traffic simulation.

    A flow is a 5-tuple plus its ingress device and traffic volume.  A
    record may stand for a {e population} of identically forwarded flows
    ([population]), which is how the generators represent the paper's
    O(10^9) flows without materializing them. *)

type t = {
  src : Ip.t;
  dst : Ip.t;
  sport : int;
  dport : int;
  ip_proto : int;  (** 6 = TCP, 17 = UDP, ... *)
  ingress : string;  (** device where the flow enters the WAN *)
  volume : float;  (** bits per second (per represented flow) *)
  population : int;  (** concrete flows this record stands for *)
}

val make :
  src:Ip.t ->
  dst:Ip.t ->
  ingress:string ->
  ?sport:int ->
  ?dport:int ->
  ?ip_proto:int ->
  ?volume:float ->
  ?population:int ->
  unit ->
  t

val equal : t -> t -> bool

(** Ordered primarily by destination address — the sort key of the
    ordering heuristic's flow splitter (paper §3.2). *)
val compare : t -> t -> int

val to_string : t -> string

val pp : Format.formatter -> t -> unit
