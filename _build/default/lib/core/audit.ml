(** Daily configuration auditing (§6.2).

    Each day Hoyan simulates the live configurations and executes dozens
    of auditing tasks on the simulated RIBs and traffic loads, each
    defining a high-level invariant the network should hold (e.g., the
    prefixes on all routers of a router group should be the same). *)

open Hoyan_net
module Model = Hoyan_sim.Model
module Traffic_sim = Hoyan_sim.Traffic_sim

type finding = { af_task : string; af_detail : string }

type task = {
  t_name : string;
  t_run :
    model:Model.t ->
    rib:Route.t list ->
    traffic:Traffic_sim.result Lazy.t ->
    finding list;
}

let finding task detail = { af_task = task; af_detail = detail }

(** Routers of a group must carry the same set of prefixes. *)
let group_consistency ~name ~(group : string list) : task =
  {
    t_name = Printf.sprintf "group-consistency(%s)" name;
    t_run =
      (fun ~model:_ ~rib ~traffic:_ ->
        let prefixes_of dev =
          List.filter_map
            (fun (r : Route.t) ->
              if String.equal r.Route.device dev && r.Route.proto = Route.Bgp
              then Some r.Route.prefix
              else None)
            rib
          |> List.sort_uniq Prefix.compare
        in
        match group with
        | [] -> []
        | first :: rest ->
            let ref_set = prefixes_of first in
            List.filter_map
              (fun dev ->
                let s = prefixes_of dev in
                if List.equal Prefix.equal s ref_set then None
                else
                  Some
                    (finding
                       (Printf.sprintf "group-consistency(%s)" name)
                       (Printf.sprintf
                          "%s carries %d prefixes but %s carries %d" dev
                          (List.length s) first (List.length ref_set))))
              rest);
  }

(** No route for any of the given private/internal prefixes may appear on
    the listed devices (e.g. ISP-facing borders). *)
let no_leak ~name ~(prefixes : Prefix.t list) ~(devices : string list) : task =
  {
    t_name = Printf.sprintf "no-leak(%s)" name;
    t_run =
      (fun ~model:_ ~rib ~traffic:_ ->
        List.filter_map
          (fun (r : Route.t) ->
            if
              List.exists (String.equal r.Route.device) devices
              && List.exists (fun p -> Prefix.subsumes p r.Route.prefix) prefixes
            then
              Some
                (finding
                   (Printf.sprintf "no-leak(%s)" name)
                   (Printf.sprintf "leaked route: %s" (Route.to_string r)))
            else None)
          rib);
  }

(** Every router must hold a (default or covering) route for the given
    critical prefix. *)
let critical_prefix_everywhere ~(prefix : Prefix.t) : task =
  {
    t_name =
      Printf.sprintf "critical-prefix(%s)" (Prefix.to_string prefix);
    t_run =
      (fun ~model ~rib ~traffic:_ ->
        let devices = Topology.device_names model.Model.topo in
        List.filter_map
          (fun dev ->
            let covered =
              List.exists
                (fun (r : Route.t) ->
                  String.equal r.Route.device dev
                  && Prefix.subsumes r.Route.prefix prefix)
                rib
            in
            if covered then None
            else
              Some
                (finding
                   (Printf.sprintf "critical-prefix(%s)"
                      (Prefix.to_string prefix))
                   (Printf.sprintf "%s has no covering route" dev)))
          devices);
  }

(** No link above the utilization bound. *)
let utilization_bound ~(max_util : float) : task =
  {
    t_name = Printf.sprintf "utilization<=%.0f%%" (100. *. max_util);
    t_run =
      (fun ~model ~rib:_ ~traffic ->
        Traffic_sim.utilizations model (Lazy.force traffic)
        |> List.filter_map (fun ((a, b), load, util) ->
               if util > max_util then
                 Some
                   (finding
                      (Printf.sprintf "utilization<=%.0f%%" (100. *. max_util))
                      (Printf.sprintf "%s->%s at %.0f%% (%.0f bps)" a b
                         (100. *. util) load))
               else None));
  }

(** Inconsistent route-policy sets across devices claiming the same role
    (a frequent live-config problem the paper mentions). *)
let policy_consistency ~name ~(group : string list) : task =
  {
    t_name = Printf.sprintf "policy-consistency(%s)" name;
    t_run =
      (fun ~model ~rib:_ ~traffic:_ ->
        let policy_names dev =
          match Model.config model dev with
          | None -> []
          | Some cfg ->
              Hoyan_config.Types.Smap.bindings cfg.Hoyan_config.Types.dc_policies
              |> List.map fst
        in
        match group with
        | [] -> []
        | first :: rest ->
            let ref_set = policy_names first in
            List.filter_map
              (fun dev ->
                if List.equal String.equal (policy_names dev) ref_set then None
                else
                  Some
                    (finding
                       (Printf.sprintf "policy-consistency(%s)" name)
                       (Printf.sprintf "%s and %s define different policies"
                          dev first)))
              rest);
  }

(** Run all audit tasks over a simulated day. *)
let run_all (tasks : task list) ~(model : Model.t) ~(rib : Route.t list)
    ~(traffic : Traffic_sim.result Lazy.t) : finding list =
  List.concat_map (fun t -> t.t_run ~model ~rib ~traffic) tasks
