lib/core/preprocess.ml: As_path Flow Hashtbl Hoyan_config Hoyan_net Hoyan_sim Lazy List Map Option Prefix Route String
