lib/core/verify_request.mli: Hoyan_config Hoyan_net Hoyan_sim Intents Lazy Preprocess Route
