lib/core/audit.ml: Hoyan_config Hoyan_net Hoyan_sim Lazy List Prefix Printf Route String Topology
