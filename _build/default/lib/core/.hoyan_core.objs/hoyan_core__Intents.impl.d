lib/core/intents.ml: Flow Hashtbl Hoyan_net Hoyan_rcl Hoyan_sim Lazy List Option Prefix Printf Route String
