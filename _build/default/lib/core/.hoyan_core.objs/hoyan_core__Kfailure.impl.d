lib/core/kfailure.ml: Flow Hoyan_config Hoyan_net Hoyan_sim Lazy List Prefix Printf Route String Topology
