lib/core/verify_request.ml: Buffer Hoyan_config Hoyan_dist Hoyan_net Hoyan_sim Intents Lazy List Prefix Preprocess Printf Route Unix
