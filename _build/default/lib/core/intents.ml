(** The change-intent layer (Table 2).

    Hoyan distinguishes three fundamentally different intent abstractions
    (§1): {e route change intents} are written in RCL and evaluated over
    the base/updated global RIBs; {e flow path change intents} constrain
    how forwarding paths move; {e traffic load change intents} are simple
    thresholds over link loads.  Plain reachability (control- and
    data-plane) is kept as its own primitive since it predates all three.

    Each verification yields either satisfaction or a list of violations
    with concrete counterexamples (routes, paths or links). *)

open Hoyan_net
module Traffic_sim = Hoyan_sim.Traffic_sim
module Model = Hoyan_sim.Model

type t =
  | Route_reach of { rr_prefix : Prefix.t; rr_devices : string list;
                     rr_expect : bool }
      (** Control-plane reachability: the prefix should (not) appear on
          the given routers ("a route advertised from A reaches B"). *)
  | Packet_reach of { pr_flow : Flow.t; pr_expect : bool }
      (** Data-plane reachability: the flow should (not) be delivered. *)
  | Route_change of string
      (** An RCL specification over the base and updated global RIBs. *)
  | Flows_moved of { fm_from : string list; fm_to : string list }
      (** Flow-path change: flows whose base path contained subpath
          [fm_from] must use subpath [fm_to] after the change. *)
  | Flow_through of { fl_flow : Flow.t; fl_device : string; fl_expect : bool }
      (** The flow should (not) traverse the device after the change. *)
  | Max_utilization of float
      (** Traffic-load intent: no link above this utilization. *)
  | Link_load_below of { ll_link : string * string; ll_bps : float }

let to_string = function
  | Route_reach { rr_prefix; rr_devices; rr_expect } ->
      Printf.sprintf "route %s %s on [%s]"
        (Prefix.to_string rr_prefix)
        (if rr_expect then "present" else "absent")
        (String.concat "," rr_devices)
  | Packet_reach { pr_flow; pr_expect } ->
      Printf.sprintf "flow %s %s" (Flow.to_string pr_flow)
        (if pr_expect then "delivered" else "not delivered")
  | Route_change spec -> Printf.sprintf "RCL: %s" spec
  | Flows_moved { fm_from; fm_to } ->
      Printf.sprintf "flows on %s move to %s"
        (String.concat ">" fm_from) (String.concat ">" fm_to)
  | Flow_through { fl_flow; fl_device; fl_expect } ->
      Printf.sprintf "flow %s %s %s" (Flow.to_string fl_flow)
        (if fl_expect then "traverses" else "avoids")
        fl_device
  | Max_utilization u -> Printf.sprintf "max utilization %.0f%%" (100. *. u)
  | Link_load_below { ll_link = (a, b); ll_bps } ->
      Printf.sprintf "load on %s->%s below %.0f bps" a b ll_bps

type violation = {
  v_intent : string; (* rendering of the violated intent *)
  v_detail : string;
  v_routes : Route.t list; (* counterexample routes, when applicable *)
  v_paths : Traffic_sim.path list; (* counterexample paths *)
  v_links : ((string * string) * float) list; (* offending links w/ load *)
}

let violation ?(routes = []) ?(paths = []) ?(links = []) intent detail =
  { v_intent = to_string intent; v_detail = detail; v_routes = routes;
    v_paths = paths; v_links = links }

let violation_to_string (v : violation) =
  let extras =
    (if v.v_routes = [] then []
     else
       [ "routes:\n    "
         ^ String.concat "\n    " (List.map Route.to_string v.v_routes) ])
    @ (if v.v_paths = [] then []
       else
         [ "paths:\n    "
           ^ String.concat "\n    "
               (List.map
                  (fun (p : Traffic_sim.path) ->
                    Printf.sprintf "%s (%.2f)"
                      (String.concat ">" p.Traffic_sim.hops)
                      p.Traffic_sim.fraction)
                  v.v_paths) ])
    @
    if v.v_links = [] then []
    else
      [ "links:\n    "
        ^ String.concat "\n    "
            (List.map
               (fun ((a, b), load) -> Printf.sprintf "%s->%s %.0f bps" a b load)
               v.v_links) ]
  in
  Printf.sprintf "VIOLATED [%s]: %s%s" v.v_intent v.v_detail
    (if extras = [] then "" else "\n  " ^ String.concat "\n  " extras)

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

(** Is [sub] a contiguous subsequence of [l]? *)
let rec contains_subpath (sub : string list) (l : string list) =
  match l with
  | [] -> sub = []
  | _ :: rest ->
      let rec prefix_of = function
        | [], _ -> true
        | _ :: _, [] -> false
        | s :: subr, x :: lr -> String.equal s x && prefix_of (subr, lr)
      in
      prefix_of (sub, l) || contains_subpath sub rest

let flow_result_for (tr : Traffic_sim.result) (f : Flow.t) =
  List.find_opt
    (fun (fr : Traffic_sim.flow_result) -> Flow.equal fr.Traffic_sim.f_flow f)
    tr.Traffic_sim.flow_results

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

(** Verify one intent against the simulated base/updated state.

    [base_rib]/[updated_rib] are global RIBs; [base_traffic]/[updated_traffic]
    the traffic results (lazily computed by the pipeline only when a
    traffic-level intent is present). *)
let verify (intent : t) ~(model : Model.t) ~(base_rib : Route.t list)
    ~(updated_rib : Route.t list)
    ~(base_traffic : Traffic_sim.result Lazy.t)
    ~(updated_traffic : Traffic_sim.result Lazy.t) : violation list =
  match intent with
  | Route_reach { rr_prefix; rr_devices; rr_expect } ->
      List.filter_map
        (fun dev ->
          let present =
            List.exists
              (fun (r : Route.t) ->
                String.equal r.Route.device dev
                && Prefix.equal r.Route.prefix rr_prefix
                && (match r.Route.route_type with
                   | Route.Best | Route.Ecmp -> true
                   | Route.Backup -> false))
              updated_rib
          in
          if present = rr_expect then None
          else
            let related =
              List.filter
                (fun (r : Route.t) ->
                  String.equal r.Route.device dev
                  && Prefix.subsumes r.Route.prefix rr_prefix)
                updated_rib
            in
            Some
              (violation ~routes:related intent
                 (Printf.sprintf "on %s the prefix is %s" dev
                    (if present then "present" else "absent"))))
        rr_devices
  | Packet_reach { pr_flow; pr_expect } -> (
      let tr = Lazy.force updated_traffic in
      match flow_result_for tr pr_flow with
      | None -> [ violation intent "flow not simulated" ]
      | Some fr ->
          let delivered = fr.Traffic_sim.f_delivered > 0.999 in
          if delivered = pr_expect then []
          else
            [
              violation ~paths:fr.Traffic_sim.f_paths intent
                (Printf.sprintf
                   "delivered fraction %.2f (dropped %.2f, looped %.2f)"
                   fr.Traffic_sim.f_delivered fr.Traffic_sim.f_dropped
                   fr.Traffic_sim.f_looped);
            ])
  | Route_change spec -> (
      match Hoyan_rcl.Verify.check_spec spec ~base:base_rib ~updated:updated_rib with
      | Error msg -> [ violation intent ("specification error: " ^ msg) ]
      | Ok Hoyan_rcl.Verify.Satisfied -> []
      | Ok (Hoyan_rcl.Verify.Violated vs) ->
          List.map
            (fun (v : Hoyan_rcl.Verify.violation) ->
              violation ~routes:v.Hoyan_rcl.Verify.v_routes intent
                (Hoyan_rcl.Verify.violation_to_string
                   { v with Hoyan_rcl.Verify.v_routes = [] }))
            vs)
  | Flows_moved { fm_from; fm_to } ->
      let base_tr = Lazy.force base_traffic in
      let upd_tr = Lazy.force updated_traffic in
      List.filter_map
        (fun (bfr : Traffic_sim.flow_result) ->
          let was_on_path =
            List.exists
              (fun (p : Traffic_sim.path) ->
                contains_subpath fm_from p.Traffic_sim.hops)
              bfr.Traffic_sim.f_paths
          in
          if not was_on_path then None
          else
            match flow_result_for upd_tr bfr.Traffic_sim.f_flow with
            | None -> Some (violation intent "flow missing after change")
            | Some ufr ->
                let on_new =
                  ufr.Traffic_sim.f_paths <> []
                  && List.for_all
                       (fun (p : Traffic_sim.path) ->
                         contains_subpath fm_to p.Traffic_sim.hops)
                       ufr.Traffic_sim.f_paths
                in
                if on_new then None
                else
                  Some
                    (violation ~paths:ufr.Traffic_sim.f_paths intent
                       (Printf.sprintf "flow %s did not move"
                          (Flow.to_string bfr.Traffic_sim.f_flow))))
        base_tr.Traffic_sim.flow_results
  | Flow_through { fl_flow; fl_device; fl_expect } -> (
      let tr = Lazy.force updated_traffic in
      match flow_result_for tr fl_flow with
      | None -> [ violation intent "flow not simulated" ]
      | Some fr ->
          let through =
            List.exists
              (fun (p : Traffic_sim.path) ->
                List.exists (String.equal fl_device) p.Traffic_sim.hops)
              fr.Traffic_sim.f_paths
          in
          if through = fl_expect then []
          else
            [
              violation ~paths:fr.Traffic_sim.f_paths intent
                (Printf.sprintf "flow %s %s" (Flow.to_string fl_flow)
                   (if through then "traverses it" else "does not traverse it"));
            ])
  | Max_utilization max_util ->
      let tr = Lazy.force updated_traffic in
      let over =
        Traffic_sim.utilizations model tr
        |> List.filter (fun (_, _, util) -> util > max_util)
        |> List.map (fun (link, load, _) -> (link, load))
      in
      if over = [] then []
      else
        [
          violation ~links:over intent
            (Printf.sprintf "%d link(s) above %.0f%% utilization"
               (List.length over) (100. *. max_util));
        ]
  | Link_load_below { ll_link; ll_bps } ->
      let tr = Lazy.force updated_traffic in
      let load =
        Option.value (Hashtbl.find_opt tr.Traffic_sim.link_load ll_link)
          ~default:0.
      in
      if load < ll_bps then []
      else
        [
          violation
            ~links:[ (ll_link, load) ]
            intent
            (Printf.sprintf "load %.0f bps >= %.0f bps" load ll_bps);
        ]
