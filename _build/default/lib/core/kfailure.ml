(** k-failure verification (§6.2, "fault-tolerance checking").

    Hoyan checks whether a property still holds when no more than [k]
    routers/links have failed.  This reproduction enumerates failure
    combinations up to [k] (optionally sampled when the combination space
    is large), re-simulates each failed topology, and evaluates the
    property, returning the failing scenarios as counterexamples. *)

open Hoyan_net
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Cp = Hoyan_config.Change_plan

type failure = Link_down of string * string | Device_down of string

let failure_to_string = function
  | Link_down (a, b) -> Printf.sprintf "link %s-%s down" a b
  | Device_down d -> Printf.sprintf "device %s down" d

(** The property to hold in every <=k-failure state. *)
type property = {
  p_name : string;
  p_check :
    model:Model.t ->
    rib:Route.t list ->
    traffic:Traffic_sim.result Lazy.t ->
    string option (* None = holds; Some reason = violated *);
}

(** Reachability property: the prefix stays on all given devices. *)
let prefix_survives ~prefix ~devices =
  {
    p_name =
      Printf.sprintf "prefix %s survives on [%s]" (Prefix.to_string prefix)
        (String.concat "," devices);
    p_check =
      (fun ~model:_ ~rib ~traffic:_ ->
        let missing =
          List.filter
            (fun dev ->
              not
                (List.exists
                   (fun (r : Route.t) ->
                     String.equal r.Route.device dev
                     && Prefix.equal r.Route.prefix prefix)
                   rib))
            devices
        in
        if missing = [] then None
        else Some ("missing on " ^ String.concat "," missing));
  }

(** Load property: no link above the utilization bound. *)
let no_overload ~max_util =
  {
    p_name = Printf.sprintf "no link above %.0f%%" (100. *. max_util);
    p_check =
      (fun ~model ~rib:_ ~traffic ->
        let tr = Lazy.force traffic in
        let over =
          Traffic_sim.utilizations model tr
          |> List.filter (fun (_, _, u) -> u > max_util)
        in
        if over = [] then None
        else
          Some
            (Printf.sprintf "%d overloaded link(s), worst %s->%s"
               (List.length over)
               (let (a, _), _, _ = List.hd over in
                a)
               (let (_, b), _, _ = List.hd over in
                b)));
  }

(* choose k elements out of a list (indices combinations) *)
let rec combinations k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (combinations (k - 1) rest)
        @ combinations k rest

type scenario_result = {
  sr_failures : failure list;
  sr_violation : string option;
}

type result = {
  kr_property : string;
  kr_k : int;
  kr_scenarios : int;
  kr_violations : scenario_result list;
}

let candidate_failures ?(devices = true) ?(links = true) (model : Model.t) :
    failure list =
  let link_failures =
    if not links then []
    else
      Topology.edges model.Model.topo
      |> List.filter_map (fun (e : Topology.edge) ->
             if String.compare e.Topology.src e.Topology.dst < 0 then
               Some (Link_down (e.Topology.src, e.Topology.dst))
             else None)
      |> List.sort_uniq compare
  in
  let device_failures =
    if not devices then []
    else
      Topology.device_names model.Model.topo
      |> List.map (fun d -> Device_down d)
  in
  link_failures @ device_failures

let apply_failures (model : Model.t) (fs : failure list) : Model.t =
  let ops =
    List.map
      (function
        | Link_down (a, b) -> Cp.Remove_link { ra = a; rb = b }
        | Device_down d -> Cp.Remove_device d)
      fs
  in
  fst (Model.apply_change_plan model (Cp.make "k-failure" ~topo_ops:ops))

(** Check the property under all failure combinations of size 1..k.
    [max_scenarios] caps the enumeration (sampled deterministically by
    stride) to keep hyper-scale runs bounded. *)
let check ?(max_scenarios = 500) ?(devices = false) ?(links = true)
    (model : Model.t) ~(input_routes : Route.t list) ~(flows : Flow.t list)
    ~(k : int) (prop : property) : result =
  let singles = candidate_failures ~devices ~links model in
  let all_scenarios =
    List.concat_map (fun i -> combinations i singles) (List.init k (fun i -> i + 1))
  in
  let n = List.length all_scenarios in
  let stride = max 1 (n / max_scenarios) in
  let scenarios =
    List.filteri (fun i _ -> i mod stride = 0) all_scenarios
  in
  let violations =
    List.filter_map
      (fun fs ->
        let failed_model = apply_failures model fs in
        let rib =
          (Route_sim.run failed_model ~input_routes ()).Route_sim.rib
        in
        let traffic =
          lazy (Traffic_sim.run failed_model ~rib ~flows ())
        in
        match prop.p_check ~model:failed_model ~rib ~traffic with
        | None -> None
        | Some reason -> Some { sr_failures = fs; sr_violation = Some reason })
      scenarios
  in
  {
    kr_property = prop.p_name;
    kr_k = k;
    kr_scenarios = List.length scenarios;
    kr_violations = violations;
  }
