(** The route monitoring system (paper §2.1).

    [Bgp_agent] peers with every router, so only the {e advertised} view
    is collected: best routes only (no ECMP alternatives), possibly
    rewritten next hops, and no non-propagating attributes (weight, admin
    preference, IGP cost).  [Bmp] (BGP Monitoring Protocol) mirrors the
    full BGP RIB faithfully.  Both are subject to injected
    {!Faults.t}. *)

open Hoyan_net

type mode = Bgp_agent | Bmp

type t = { mode : mode; faults : Faults.t list }

val create : ?mode:mode -> ?faults:Faults.t list -> unit -> t

(** Is the device's collection agent down (an injected fault)? *)
val agent_down : t -> string -> bool

(** What the monitoring system collects, given the live network's true
    global RIB. *)
val observe : t -> Route.t list -> Route.t list

(** The live network's [show] interface for one (device, prefix): full
    fidelity, strictly rate limited in production — callers only query
    high-priority prefixes (§5.1). *)
val show_live : Route.t list -> device:string -> prefix:Prefix.t -> Route.t list
