lib/monitor/topo_monitor.ml: Faults Hoyan_net List Topology
