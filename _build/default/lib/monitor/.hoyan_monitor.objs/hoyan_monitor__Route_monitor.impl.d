lib/monitor/route_monitor.ml: Faults Hoyan_net List Prefix Route String
