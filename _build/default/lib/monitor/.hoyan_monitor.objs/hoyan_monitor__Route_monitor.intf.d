lib/monitor/route_monitor.mli: Faults Hoyan_net Prefix Route
