lib/monitor/traffic_monitor.ml: Faults Flow Hashtbl Hoyan_net List Random String
