lib/monitor/faults.ml: Printf
