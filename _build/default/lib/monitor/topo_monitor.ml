(** The topology monitoring system, with stale-data defects (Table 4
    row 3: "topology data inconsistent with the live network due to
    failures in the network"). *)

open Hoyan_net

type t = { faults : Faults.t list }

let create ?(faults = []) () = { faults }

(** The topology as the monitoring system reports it. *)
let observe (t : t) (live : Topology.t) : Topology.t =
  List.fold_left
    (fun topo f ->
      match f with
      | Faults.Missing_link (a, b) -> Topology.remove_link topo ~a ~b
      | Faults.Stale_link (a, b) ->
          (* report a link that is gone on the live network *)
          Topology.add_link topo ~a ~a_if:"stale0" ~b ~b_if:"stale0"
            ~bandwidth:100e9
      | Faults.Agent_down _ | Faults.Netflow_volume_bug _
      | Faults.Flow_record_loss _ | Faults.Snmp_counter_stuck _ ->
          topo)
    live t.faults
