(** The traffic monitoring system (§2.1): NetFlow/sFlow flow records and
    SNMP per-link load counters, with injectable defects. *)

open Hoyan_net

type flow_record = {
  fr_flow : Flow.t;
  fr_device : string; (* reporting device *)
  fr_volume : float; (* measured bits per second (possibly wrong) *)
}

type t = { faults : Faults.t list; seed : int }

let create ?(faults = []) ?(seed = 7) () = { faults; seed }

let volume_factor (t : t) dev =
  List.fold_left
    (fun acc f ->
      match f with
      | Faults.Netflow_volume_bug (d, factor) when String.equal d dev ->
          acc *. factor
      | _ -> acc)
    1.0 t.faults

let loss_fraction (t : t) dev =
  List.fold_left
    (fun acc f ->
      match f with
      | Faults.Flow_record_loss (d, frac) when String.equal d dev ->
          max acc frac
      | _ -> acc)
    0.0 t.faults

(** NetFlow/sFlow records: each flow is reported by its ingress device
    with its measured volume (subject to volume bugs and record loss). *)
let observe_flows (t : t) (flows : Flow.t list) : flow_record list =
  let st = Random.State.make [| t.seed |] in
  List.filter_map
    (fun (f : Flow.t) ->
      let dev = f.Flow.ingress in
      let lost = Random.State.float st 1.0 < loss_fraction t dev in
      if lost then None
      else
        Some
          {
            fr_flow = f;
            fr_device = dev;
            fr_volume =
              f.Flow.volume *. float_of_int f.Flow.population
              *. volume_factor t dev;
          })
    flows

(** SNMP link loads (bits per second per directed link), from the live
    network's true loads. *)
let observe_link_loads (t : t)
    (true_loads : (string * string, float) Hashtbl.t) :
    (string * string, float) Hashtbl.t =
  let out = Hashtbl.create (Hashtbl.length true_loads) in
  Hashtbl.iter
    (fun (src, dst) load ->
      let stuck =
        List.exists
          (function
            | Faults.Snmp_counter_stuck (a, b) ->
                String.equal a src && String.equal b dst
            | _ -> false)
          t.faults
      in
      Hashtbl.replace out (src, dst) (if stuck then 0. else load))
    true_loads;
  out
