(** Injectable monitoring faults.

    The accuracy-diagnosis experiments (§5, Table 4) inject these fault
    classes into the monitoring pipeline and check that Hoyan's daily
    cross-validation detects them.  Each constructor corresponds to a
    Table-4 issue class observed in production. *)

type t =
  | Agent_down of string
      (** Route-monitoring agent of a device failed: no routes collected
          from it (Table 4 row 1, "route monitoring data"). *)
  | Netflow_volume_bug of string * float
      (** The device's NetFlow implementation reports volumes scaled by
          the factor (row 2, "traffic monitoring data"). *)
  | Flow_record_loss of string * float
      (** Fraction of flow records from the device lost (row 2). *)
  | Stale_link of string * string
      (** The topology management system still reports a link that no
          longer exists — or misses one, see {!Missing_link} (row 3). *)
  | Missing_link of string * string
      (** A live link absent from the reported topology (row 3). *)
  | Snmp_counter_stuck of string * string
      (** The SNMP load counter of the (src, dst) link reports zero
          (row 1/2 style monitoring defect). *)

let to_string = function
  | Agent_down d -> Printf.sprintf "agent-down(%s)" d
  | Netflow_volume_bug (d, f) -> Printf.sprintf "netflow-volume(%s,x%.2f)" d f
  | Flow_record_loss (d, f) -> Printf.sprintf "flow-loss(%s,%.0f%%)" d (100. *. f)
  | Stale_link (a, b) -> Printf.sprintf "stale-link(%s-%s)" a b
  | Missing_link (a, b) -> Printf.sprintf "missing-link(%s-%s)" a b
  | Snmp_counter_stuck (a, b) -> Printf.sprintf "snmp-stuck(%s->%s)" a b
