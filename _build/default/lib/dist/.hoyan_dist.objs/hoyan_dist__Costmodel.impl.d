lib/dist/costmodel.ml: Db
