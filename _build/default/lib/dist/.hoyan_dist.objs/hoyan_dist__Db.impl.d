lib/dist/db.ml: Hashtbl Hoyan_net Ip Printf
