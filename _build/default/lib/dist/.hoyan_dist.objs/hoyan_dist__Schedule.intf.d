lib/dist/schedule.mli:
