lib/dist/split.ml: Array Flow Hashtbl Hoyan_net Ip List Prefix Random Route
