lib/dist/storage.ml: Flow Hashtbl Hoyan_net List Option Route
