lib/dist/schedule.ml: Array Float List
