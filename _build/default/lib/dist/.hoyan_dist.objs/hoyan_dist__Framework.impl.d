lib/dist/framework.ml: Costmodel Db Flow Hashtbl Hoyan_config Hoyan_net Hoyan_sim Ip List Map Mq Option Prefix Printf Random Route Schedule Split Storage String Unix
