lib/dist/framework.mli: Costmodel Db Flow Hashtbl Hoyan_net Hoyan_sim Mq Random Route Schedule Split Storage
