lib/dist/split.mli: Flow Hoyan_net Ip Route
