lib/dist/mq.ml: Queue
