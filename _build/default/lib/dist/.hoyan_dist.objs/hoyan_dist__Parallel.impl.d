lib/dist/parallel.ml: Array Atomic Domain Hoyan_net Hoyan_sim List Split
