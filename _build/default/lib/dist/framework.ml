(** The distributed simulation framework (Figure 3).

    A simulation task is assigned to a master server, which splits the
    inputs into disjoint subsets (subtasks), uploads each subtask's input
    to the object store, and pushes a message per subtask into the MQ.
    Working servers consume messages, load inputs, run the subtask with
    the EC technique, update the subtask DB and write results back to the
    store; the master monitors the DB and re-sends failed subtasks.

    Subtasks are executed here on the calling thread, one after another,
    with their compute time measured and their I/O accounted; the
    multi-server end-to-end time is then obtained by replaying the
    measured durations through {!Schedule} (see DESIGN.md §2 for why this
    substitution preserves the paper's scalability behaviour).  A real
    multicore execution path is provided by {!Parallel}. *)

open Hoyan_net
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Smap = Map.Make (String)

type t = {
  storage : Storage.t;
  mq : Mq.t;
  db : Db.t;
  model : Model.t;
  snapshot : string;
  fail_prob : float; (* injected worker failure probability *)
  rng : Random.State.t;
  max_attempts : int;
}

let create ?(fail_prob = 0.) ?(seed = 42) ?(snapshot = "base")
    (model : Model.t) : t =
  {
    storage = Storage.create ();
    mq = Mq.create ();
    db = Db.create ();
    model;
    snapshot;
    fail_prob;
    rng = Random.State.make [| seed |];
    max_attempts = 3;
  }

(* ------------------------------------------------------------------ *)
(* Route simulation phase                                              *)
(* ------------------------------------------------------------------ *)

type route_phase = {
  rp_subtasks : string list; (* subtask ids, in push order *)
  rp_rib : Route.t list; (* merged global RIB (incl. local tables) *)
  rp_durations : (string * float) list; (* measured compute seconds *)
  rp_ec_inputs : int; (* ECs actually simulated *)
  rp_total_inputs : int;
}

let range_of_rows (input_range : Ip.t * Ip.t) (rows : Route.t list) :
    Ip.t * Ip.t =
  (* widen the recorded input range with the result rows' prefixes, so
     aggregate prefixes originated inside the subtask are covered too *)
  List.fold_left
    (fun (lo, hi) (r : Route.t) ->
      let f = Prefix.first_addr r.Route.prefix
      and l = Prefix.last_addr r.Route.prefix in
      ( (if Ip.compare f lo < 0 then f else lo),
        if Ip.compare l hi > 0 then l else hi ))
    input_range rows

(** Prefixes originated by network statements anywhere in the model:
    input-independent, so they live in the shared base RIB file rather
    than in every subtask's result (which would otherwise make every
    subtask range cover the whole address space and defeat the ordering
    heuristic). *)
let network_prefixes (model : Model.t) : (Prefix.t, unit) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Smap.iter
    (fun _ (cfg : Hoyan_config.Types.t) ->
      List.iter
        (fun (p, _) -> Hashtbl.replace tbl p ())
        cfg.Hoyan_config.Types.dc_bgp.Hoyan_config.Types.bgp_networks)
    model.Model.configs;
  tbl

let base_rib_key = "route-base.rib"

(** One worker step: consume a message and run the subtask.  Returns false
    when the queue is empty. *)
let route_worker_step (t : t) ~(use_ecs : bool)
    ~(net_prefixes : (Prefix.t, unit) Hashtbl.t) : bool =
  match Mq.pop t.mq with
  | None -> false
  | Some msg ->
      let entry = Db.find_exn t.db msg.Mq.m_id in
      entry.Db.e_status <- Db.Running;
      entry.Db.e_attempts <- entry.Db.e_attempts + 1;
      (* injected worker failure: the master will re-send *)
      if
        t.fail_prob > 0.
        && Random.State.float t.rng 1.0 < t.fail_prob
        && entry.Db.e_attempts < t.max_attempts
      then begin
        entry.Db.e_status <- Db.Failed "worker crashed";
        (* master monitoring: resend *)
        Mq.push t.mq { msg with Mq.m_attempt = msg.Mq.m_attempt + 1 };
        true
      end
      else begin
        match Storage.get t.storage ~key:msg.Mq.m_input_key with
        | Some (Storage.O_routes inputs) ->
            let t0 = Unix.gettimeofday () in
            let res =
              Route_sim.run ~use_ecs ~include_locals:false ~originate:false
                t.model ~input_routes:inputs ()
            in
            let dt = Unix.gettimeofday () -. t0 in
            let rows =
              List.filter
                (fun (r : Route.t) ->
                  not (Hashtbl.mem net_prefixes r.Route.prefix))
                res.Route_sim.rib
            in
            let result_key = msg.Mq.m_id ^ ".rib" in
            Storage.put t.storage ~key:result_key (Storage.O_rib rows);
            let input_range =
              match entry.Db.e_range with
              | Some r -> r
              | None ->
                  (Ip.zero Ip.Ipv4, Ip.zero Ip.Ipv4)
            in
            entry.Db.e_range <- Some (range_of_rows input_range rows);
            entry.Db.e_result_key <- Some result_key;
            entry.Db.e_duration_s <- dt;
            entry.Db.e_io_bytes <-
              List.length inputs * Storage.bytes_per_route;
            entry.Db.e_io_files <- 1;
            entry.Db.e_status <- Db.Done;
            true
        | _ ->
            entry.Db.e_status <- Db.Failed "missing input object";
            true
      end

(** Master + workers for the route phase (sequential execution with
    measured durations). *)
let run_route_phase ?(strategy = Split.Ordered) ?(subtasks = 100)
    ?(use_ecs = true) (t : t) ~(input_routes : Route.t list) : route_phase =
  (* master: prepare subtasks *)
  let splits = Split.split_routes ~strategy ~subtasks input_routes in
  let ids =
    List.mapi
      (fun i (routes, range) ->
        let id = Printf.sprintf "route-%03d" i in
        let input_key = id ^ ".in" in
        Storage.put t.storage ~key:input_key (Storage.O_routes routes);
        let entry = Db.register t.db id in
        entry.Db.e_range <- Some range;
        Mq.push t.mq
          {
            Mq.m_id = id;
            m_kind = Mq.Route_subtask;
            m_input_key = input_key;
            m_snapshot = t.snapshot;
            m_attempt = 1;
          };
        id)
      splits
  in
  let net_prefixes = network_prefixes t.model in
  (* workers drain the queue *)
  while route_worker_step t ~use_ecs ~net_prefixes do
    ()
  done;
  (* the shared base RIB: routes originated by network statements and
     their propagation, independent of the input routes *)
  let base_rows =
    (Route_sim.run ~use_ecs ~include_locals:false t.model ~input_routes:[] ())
      .Route_sim.rib
  in
  Storage.put t.storage ~key:base_rib_key (Storage.O_rib base_rows);
  (* master: collect.  Locally originated rows (network statements and
     their propagation) appear in every subtask's result because they do
     not depend on the subtask's inputs; the master deduplicates when
     merging. *)
  let rib =
    List.concat_map
      (fun id ->
        match (Db.find_exn t.db id).Db.e_result_key with
        | Some key -> (
            match Storage.get t.storage ~key with
            | Some (Storage.O_rib rows) -> rows
            | _ -> [])
        | None -> [])
      ids
    |> List.rev_append base_rows
    |> List.sort_uniq Route.compare
  in
  let locals =
    Smap.fold
      (fun _ rs acc -> List.rev_append rs acc)
      t.model.Model.local_tables []
  in
  let durations =
    List.map (fun id -> (id, (Db.find_exn t.db id).Db.e_duration_s)) ids
  in
  {
    rp_subtasks = ids;
    rp_rib = rib @ locals;
    rp_durations = durations;
    rp_ec_inputs = List.length input_routes;
    rp_total_inputs = List.length input_routes;
  }

(* ------------------------------------------------------------------ *)
(* Traffic simulation phase                                            *)
(* ------------------------------------------------------------------ *)

type dep_mode =
  | Deps_ordered (* load only overlapping route subtasks' RIB files *)
  | Deps_all (* baseline: load every RIB file *)

type traffic_phase = {
  tp_subtasks : string list;
  tp_link_load : (string * string, float) Hashtbl.t;
  tp_flows : Storage.flow_summary list;
  tp_durations : (string * float) list;
  tp_loaded_fracs : (string * float) list;
      (* fraction of RIB files each subtask loaded (Figure 5d) *)
  tp_ec_count : int;
}

let traffic_worker_step (t : t) ~(route_ids : string list)
    ~(dep_mode : dep_mode) ~(use_ecs : bool) : bool =
  match Mq.pop t.mq with
  | None -> false
  | Some msg ->
      let entry = Db.find_exn t.db msg.Mq.m_id in
      entry.Db.e_status <- Db.Running;
      entry.Db.e_attempts <- entry.Db.e_attempts + 1;
      if
        t.fail_prob > 0.
        && Random.State.float t.rng 1.0 < t.fail_prob
        && entry.Db.e_attempts < t.max_attempts
      then begin
        entry.Db.e_status <- Db.Failed "worker crashed";
        Mq.push t.mq { msg with Mq.m_attempt = msg.Mq.m_attempt + 1 };
        true
      end
      else begin
        match Storage.get t.storage ~key:msg.Mq.m_input_key with
        | Some (Storage.O_flows flows) ->
            (* dependency resolution via the subtask DB ranges *)
            let my_range = entry.Db.e_range in
            let deps =
              match dep_mode with
              | Deps_all -> route_ids
              | Deps_ordered ->
                  List.filter
                    (fun rid ->
                      match ((Db.find_exn t.db rid).Db.e_range, my_range) with
                      | Some rrange, Some frange ->
                          Split.ranges_overlap frange rrange
                      | _ -> true)
                    route_ids
            in
            entry.Db.e_deps <- deps;
            (* load dependent RIB files, plus the shared base RIB *)
            let io_bytes = ref (List.length flows * Storage.bytes_per_flow) in
            let base_rows =
              match Storage.get t.storage ~key:base_rib_key with
              | Some (Storage.O_rib rows) ->
                  (match Storage.size_of t.storage ~key:base_rib_key with
                  | Some sz -> io_bytes := !io_bytes + sz
                  | None -> ());
                  rows
              | _ -> []
            in
            let rib =
              base_rows
              @ List.concat_map
                  (fun rid ->
                    match (Db.find_exn t.db rid).Db.e_result_key with
                    | Some key -> (
                        (match Storage.size_of t.storage ~key with
                        | Some sz -> io_bytes := !io_bytes + sz
                        | None -> ());
                        match Storage.get t.storage ~key with
                        | Some (Storage.O_rib rows) -> rows
                        | _ -> [])
                    | None -> [])
                  deps
            in
            let locals =
              Smap.fold
                (fun _ rs acc -> List.rev_append rs acc)
                t.model.Model.local_tables []
            in
            let t0 = Unix.gettimeofday () in
            let res =
              Traffic_sim.run ~use_ecs t.model ~rib:(rib @ locals) ~flows ()
            in
            let dt = Unix.gettimeofday () -. t0 in
            let flow_summaries =
              List.map
                (fun (fr : Traffic_sim.flow_result) ->
                  {
                    Storage.fs_flow = fr.Traffic_sim.f_flow;
                    fs_paths =
                      List.map
                        (fun (p : Traffic_sim.path) ->
                          { Storage.fp_hops = p.Traffic_sim.hops;
                            fp_fraction = p.Traffic_sim.fraction })
                        fr.Traffic_sim.f_paths;
                    fs_delivered = fr.Traffic_sim.f_delivered;
                    fs_dropped = fr.Traffic_sim.f_dropped;
                    fs_looped = fr.Traffic_sim.f_looped;
                  })
                res.Traffic_sim.flow_results
            in
            let loads =
              Hashtbl.fold
                (fun k v acc -> (k, v) :: acc)
                res.Traffic_sim.link_load []
            in
            let result_key = msg.Mq.m_id ^ ".out" in
            Storage.put t.storage ~key:result_key
              (Storage.O_traffic { t_loads = loads; t_flows = flow_summaries });
            entry.Db.e_result_key <- Some result_key;
            entry.Db.e_duration_s <- dt;
            entry.Db.e_io_bytes <- !io_bytes;
            entry.Db.e_io_files <- 2 + List.length deps;
            entry.Db.e_status <- Db.Done;
            true
        | _ ->
            entry.Db.e_status <- Db.Failed "missing input object";
            true
      end

let run_traffic_phase ?(strategy = Split.Ordered) ?(subtasks = 128)
    ?(dep_mode = Deps_ordered) ?(use_ecs = true) (t : t)
    ~(route_phase : route_phase) ~(flows : Flow.t list) : traffic_phase =
  let route_ids = route_phase.rp_subtasks in
  let splits = Split.split_flows ~strategy ~subtasks flows in
  let ids =
    List.mapi
      (fun i (fs, range) ->
        let id = Printf.sprintf "traffic-%03d" i in
        let input_key = id ^ ".in" in
        Storage.put t.storage ~key:input_key (Storage.O_flows fs);
        let entry = Db.register t.db id in
        entry.Db.e_range <- Some range;
        Mq.push t.mq
          {
            Mq.m_id = id;
            m_kind = Mq.Traffic_subtask;
            m_input_key = input_key;
            m_snapshot = t.snapshot;
            m_attempt = 1;
          };
        id)
      splits
  in
  while traffic_worker_step t ~route_ids ~dep_mode ~use_ecs do
    ()
  done;
  (* master: aggregate loads across subtasks, collect flows *)
  let link_load = Hashtbl.create 1024 in
  let all_flows = ref [] in
  let ec_total = ref 0 in
  List.iter
    (fun id ->
      match (Db.find_exn t.db id).Db.e_result_key with
      | Some key -> (
          match Storage.get t.storage ~key with
          | Some (Storage.O_traffic { t_loads; t_flows }) ->
              List.iter
                (fun (k, v) ->
                  let cur =
                    Option.value (Hashtbl.find_opt link_load k) ~default:0.
                  in
                  Hashtbl.replace link_load k (cur +. v))
                t_loads;
              all_flows := List.rev_append t_flows !all_flows;
              incr ec_total
          | _ -> ())
      | None -> ())
    ids;
  let n_route = float_of_int (List.length route_ids) in
  let loaded_fracs =
    List.map
      (fun id ->
        ( id,
          float_of_int (List.length (Db.find_exn t.db id).Db.e_deps) /. n_route
        ))
      ids
  in
  {
    tp_subtasks = ids;
    tp_link_load = link_load;
    tp_flows = !all_flows;
    tp_durations =
      List.map (fun id -> (id, (Db.find_exn t.db id).Db.e_duration_s)) ids;
    tp_loaded_fracs = loaded_fracs;
    tp_ec_count = !ec_total;
  }

(* ------------------------------------------------------------------ *)
(* End-to-end time via the schedule replay                             *)
(* ------------------------------------------------------------------ *)

(** Effective per-subtask wall times (compute + modelled I/O) of a list of
    subtask ids. *)
let effective_times ?(cost = Costmodel.default) (t : t) ids =
  List.map (fun id -> Costmodel.subtask_time cost (Db.find_exn t.db id)) ids

(** End-to-end time on [servers] workers for the given subtasks, including
    the master's preparation time. *)
let phase_time ?(cost = Costmodel.default) ?(policy = Schedule.Fifo) (t : t)
    ~servers ids =
  let times = effective_times ~cost t ids in
  let prep =
    float_of_int (List.length ids) *. cost.Costmodel.master_prep_per_subtask_s
  in
  prep +. fst (Schedule.makespan ~policy ~servers times)
