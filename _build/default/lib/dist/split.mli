(** Input splitting and the ordering heuristic (paper §3.2).

    Route inputs are ordered by the last address of the prefix and split
    into contiguous subsets balanced by route count (same-prefix routes
    stay together); flows are ordered by destination address.  Because
    both sides follow the same order, a traffic subtask's destination
    range overlaps only a few route subtasks' covered ranges — so its
    worker loads only those RIB files.  [Random] is the paper's
    comparison baseline (Figure 5d): random partitions depend on
    essentially every RIB file. *)

open Hoyan_net

type strategy = Ordered | Random of int  (** seed *)

(** Split input routes into at most [subtasks] subsets; each comes with
    the address range its prefixes cover (recorded in the subtask DB for
    the dependency test). *)
val split_routes :
  strategy:strategy ->
  subtasks:int ->
  Route.t list ->
  (Route.t list * (Ip.t * Ip.t)) list

(** Split input flows, each subset with its destination-address range. *)
val split_flows :
  strategy:strategy ->
  subtasks:int ->
  Flow.t list ->
  (Flow.t list * (Ip.t * Ip.t)) list

(** The dependency test: do the two closed ranges intersect?  Sound: a
    flow can only match a route whose prefix covers its destination, and
    such a prefix's [first,last] interval lies inside its subtask's
    recorded range (property-tested in the suite). *)
val ranges_overlap : Ip.t * Ip.t -> Ip.t * Ip.t -> bool
