(** Deterministic multi-server schedule replay.

    The distributed framework's end-to-end time on S workers is the
    makespan of its subtasks under message-queue semantics (idle workers
    pull the next message).  Replaying the {e measured} per-subtask
    durations through this scheduler yields the Figure-5 curves without
    S physical servers, and shows the diminishing returns the paper
    attributes to subtask skew (Figure 5c). *)

type policy =
  | Fifo  (** message-queue order, as in production *)
  | Lpt  (** longest-processing-time first (ablation) *)

(** [makespan ~servers durations] replays the queue; returns the makespan
    and each server's busy time. *)
val makespan : ?policy:policy -> servers:int -> float list -> float * float array

(** Makespan for each server count. *)
val sweep : ?policy:policy -> counts:int list -> float list -> (int * float) list

(** Empirical CDF points: sorted values with cumulative fractions. *)
val cdf : float list -> (float * float) list
