(** Input splitting and the ordering heuristic (§3.2).

    Route simulation inputs are ordered by {e the last IP address of the
    prefix} (done offline in the input route building service) and split
    into contiguous subsets — routes with the same prefix always land in
    the same subtask.  Input flows are ordered by destination address and
    split the same way.  Because both sides follow the same ordering, a
    traffic subtask's destination range overlaps only a few route
    subtasks' covered ranges, so its worker loads only those RIB files.

    The [Random] strategy reproduces the paper's comparison baseline:
    random partitions make every traffic subtask depend on essentially
    every route subtask (Figure 5d). *)

open Hoyan_net

type strategy = Ordered | Random of int (* seed *)

(* Deterministic shuffle. *)
let shuffle seed arr =
  let st = Random.State.make [| seed |] in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let chunk (arr : 'a array) (n : int) : 'a list list =
  let len = Array.length arr in
  let n = max 1 (min n len) in
  let per = (len + n - 1) / n in
  List.init n (fun i ->
      let lo = i * per and hi = min len ((i + 1) * per) in
      if lo >= hi then [] else Array.to_list (Array.sub arr lo (hi - lo)))
  |> List.filter (fun c -> c <> [])

(** Split input routes into [subtasks] subsets.  Returns each subset with
    its covered address range [(lo, hi)] — the range later recorded in the
    subtask DB. *)
let split_routes ~(strategy : strategy) ~(subtasks : int)
    (routes : Route.t list) : (Route.t list * (Ip.t * Ip.t)) list =
  (* group per prefix so same-prefix routes stay together *)
  let by_prefix = Hashtbl.create 1024 in
  let prefixes = ref [] in
  List.iter
    (fun (r : Route.t) ->
      match Hashtbl.find_opt by_prefix r.Route.prefix with
      | Some rs -> Hashtbl.replace by_prefix r.Route.prefix (r :: rs)
      | None ->
          Hashtbl.add by_prefix r.Route.prefix [ r ];
          prefixes := r.Route.prefix :: !prefixes)
    routes;
  let arr = Array.of_list !prefixes in
  (match strategy with
  | Ordered ->
      Array.sort
        (fun a b -> Ip.compare (Prefix.last_addr a) (Prefix.last_addr b))
        arr
  | Random seed -> shuffle seed arr);
  (* balance subtasks by *route* count (prefixes of one subtask stay
     contiguous in the chosen order; same-prefix routes stay together) *)
  let total = List.length routes in
  let per = max 1 ((total + subtasks - 1) / subtasks) in
  let groups = ref [] and current = ref [] and count = ref 0 in
  Array.iter
    (fun p ->
      let rs = List.rev (Hashtbl.find by_prefix p) in
      current := (p, rs) :: !current;
      count := !count + List.length rs;
      if !count >= per then begin
        groups := List.rev !current :: !groups;
        current := [];
        count := 0
      end)
    arr;
  if !current <> [] then groups := List.rev !current :: !groups;
  List.rev !groups
  |> List.map (fun prefix_group ->
         let rs = List.concat_map snd prefix_group in
         let lo, hi =
           List.fold_left
             (fun (lo, hi) (p, _) ->
               let f = Prefix.first_addr p and l = Prefix.last_addr p in
               ( (if Ip.compare f lo < 0 then f else lo),
                 if Ip.compare l hi > 0 then l else hi ))
             ( Prefix.first_addr (fst (List.hd prefix_group)),
               Prefix.last_addr (fst (List.hd prefix_group)) )
             prefix_group
         in
         (rs, (lo, hi)))

(** Split input flows into [subtasks] subsets, each with its destination
    address range. *)
let split_flows ~(strategy : strategy) ~(subtasks : int) (flows : Flow.t list)
    : (Flow.t list * (Ip.t * Ip.t)) list =
  let arr = Array.of_list flows in
  (match strategy with
  | Ordered ->
      Array.sort (fun (a : Flow.t) b -> Ip.compare a.Flow.dst b.Flow.dst) arr
  | Random seed -> shuffle seed arr);
  chunk arr subtasks
  |> List.map (fun fs ->
         let dsts = List.map (fun (f : Flow.t) -> f.Flow.dst) fs in
         let lo =
           List.fold_left
             (fun acc d -> if Ip.compare d acc < 0 then d else acc)
             (List.hd dsts) dsts
         in
         let hi =
           List.fold_left
             (fun acc d -> if Ip.compare d acc > 0 then d else acc)
             (List.hd dsts) dsts
         in
         (fs, (lo, hi)))

(** Range overlap test used to decide subtask dependencies: does the
    traffic subtask's destination range intersect the route subtask's
    covered range?  (Ranges from different address families never
    overlap.) *)
let ranges_overlap ((alo, ahi) : Ip.t * Ip.t) ((blo, bhi) : Ip.t * Ip.t) =
  Ip.compare alo bhi <= 0 && Ip.compare blo ahi <= 0
