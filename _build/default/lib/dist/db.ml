(** The subtask database (§3.2).

    Working servers update each subtask's running status here; the master
    monitors it and re-sends failed subtasks.  Route subtasks also record
    the range of addresses covered by their input routes, which is what a
    traffic subtask later consults to decide whether it depends on that
    route subtask's RIB file. *)

open Hoyan_net

type status = Pending | Running | Done | Failed of string

let status_to_string = function
  | Pending -> "pending"
  | Running -> "running"
  | Done -> "done"
  | Failed m -> "failed: " ^ m

type entry = {
  mutable e_status : status;
  mutable e_range : (Ip.t * Ip.t) option; (* route subtasks: covered range *)
  mutable e_result_key : string option;
  mutable e_attempts : int;
  mutable e_duration_s : float; (* measured compute time of the last run *)
  mutable e_io_bytes : int; (* bytes moved by the last run *)
  mutable e_io_files : int;
  mutable e_deps : string list; (* traffic subtasks: route results loaded *)
}

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 256

let register (t : t) id =
  let e =
    {
      e_status = Pending;
      e_range = None;
      e_result_key = None;
      e_attempts = 0;
      e_duration_s = 0.;
      e_io_bytes = 0;
      e_io_files = 0;
      e_deps = [];
    }
  in
  Hashtbl.replace t id e;
  e

let find (t : t) id = Hashtbl.find_opt t id

let find_exn (t : t) id =
  match find t id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Db.find_exn: %s" id)

let set_status (t : t) id status = (find_exn t id).e_status <- status

let all (t : t) = Hashtbl.fold (fun id e acc -> (id, e) :: acc) t []

let count_status (t : t) pred =
  Hashtbl.fold (fun _ e n -> if pred e.e_status then n + 1 else n) t 0

let all_done (t : t) =
  Hashtbl.fold
    (fun _ e ok -> ok && (match e.e_status with Done -> true | _ -> false))
    t true
