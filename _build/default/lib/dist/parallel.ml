(** Real multicore execution of subtasks (OCaml 5 domains).

    The deterministic scheduler ({!Schedule}) is what the benchmarks use
    to obtain multi-server curves; this module additionally provides a
    {e real} parallel executor so the framework can be exercised with
    genuinely concurrent workers on one machine.  The compiled model is
    read-only during simulation, so workers share it; the work list is
    distributed via an atomic index. *)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(** Parallel map preserving order.  [f] must only read shared state. *)
let map ?(domains = default_domains ()) (f : 'a -> 'b) (xs : 'a list) :
    'b list =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (f arr.(i));
            loop ()
          end
        in
        loop ()
      in
      let spawned =
        List.init (min domains n - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      List.iter Domain.join spawned;
      Array.to_list results
      |> List.map (function Some v -> v | None -> assert false)

(** Run the route subtasks of a split in parallel and return the merged
    global RIB (plus local tables).  Equivalent to
    {!Framework.run_route_phase} but with real concurrency; used by the
    distributed-vs-centralized equivalence tests and the parallel bench. *)
let route_phase_rib ?(domains = default_domains ()) ?(use_ecs = true)
    ?(strategy = Split.Ordered) ?(subtasks = 32)
    (model : Hoyan_sim.Model.t) ~(input_routes : Hoyan_net.Route.t list) :
    Hoyan_net.Route.t list =
  let splits = Split.split_routes ~strategy ~subtasks input_routes in
  let base_rows =
    (Hoyan_sim.Route_sim.run ~use_ecs ~include_locals:false model
       ~input_routes:[] ())
      .Hoyan_sim.Route_sim.rib
  in
  let ribs =
    base_rows
    :: map ~domains
         (fun (routes, _range) ->
           (Hoyan_sim.Route_sim.run ~use_ecs ~include_locals:false
              ~originate:false model ~input_routes:routes ())
             .Hoyan_sim.Route_sim.rib)
         splits
  in
  let locals =
    Hoyan_sim.Model.Smap.fold
      (fun _ rs acc -> List.rev_append rs acc)
      model.Hoyan_sim.Model.local_tables []
  in
  (List.concat ribs |> List.sort_uniq Hoyan_net.Route.compare) @ locals
