(** Deterministic multi-server schedule replay.

    The distributed framework's end-to-end time for S working servers is
    the makespan of its subtasks under message-queue semantics: idle
    workers pull the next message from the FIFO queue.  Replaying the
    {e measured} per-subtask durations through this scheduler yields the
    Figure-5 run-time curves without needing S physical servers, and
    exposes the same diminishing returns the paper attributes to the
    highly uneven subtask durations (Figure 5c). *)

type policy = Fifo | Lpt (* longest processing time first (ablation) *)

(** [makespan ~servers durations] replays the queue and returns
    (makespan, per-server busy time). *)
let makespan ?(policy = Fifo) ~servers (durations : float list) :
    float * float array =
  let servers = max 1 servers in
  let jobs =
    match policy with
    | Fifo -> durations
    | Lpt -> List.sort (fun a b -> Float.compare b a) durations
  in
  let free_at = Array.make servers 0. in
  List.iter
    (fun d ->
      (* the next idle server takes the job *)
      let best = ref 0 in
      Array.iteri (fun i t -> if t < free_at.(!best) then best := i) free_at;
      free_at.(!best) <- free_at.(!best) +. d)
    jobs;
  (Array.fold_left max 0. free_at, free_at)

(** Run time for each server count in [counts]. *)
let sweep ?(policy = Fifo) ~counts (durations : float list) :
    (int * float) list =
  List.map
    (fun s -> (s, fst (makespan ~policy ~servers:s durations)))
    counts

(** Empirical CDF points (sorted values with cumulative fraction). *)
let cdf (values : float list) : (float * float) list =
  let sorted = List.sort Float.compare values in
  let n = float_of_int (List.length sorted) in
  List.mapi (fun i v -> (v, float_of_int (i + 1) /. n)) sorted
