(** Synthetic dual-stack WAN / WAN+DCN generator (DESIGN.md §2).

    Generates a multi-region backbone (per-region route reflectors, core
    rings, border routers with external peering subnets), optionally with
    attached data-center routers, in mixed vendor dialects.  Device
    configurations are rendered to vendor text and re-parsed, so the
    model entering simulation went through the production parsing path.

    The workload deliberately reproduces the properties the paper's
    evaluation depends on: announcement patterns shared across prefixes
    (equivalence-class compressible, like real upstreams), ISP routes
    confined near their region while DC routes go network-wide (the
    Figure-5c subtask skew), IPv6 prefixes and SRv6 policies (the
    next-generation WAN), and NetFlow-style record bundles per
    destination. *)

open Hoyan_net

type params = {
  g_regions : int;
  g_cores_per_region : int;
  g_borders_per_region : int;
  g_rrs_per_region : int;
  g_dcs_per_region : int;  (** DC core routers per region (WAN+DCN) *)
  g_prefixes : int;
  g_routes_per_prefix : int;  (** average multi-homing degree *)
  g_flows : int;  (** flow records *)
  g_flow_population : int;  (** concrete flows represented per record *)
  g_vendor_b_fraction : float;
  g_isp_prefix_fraction : float;
  g_v6_fraction : float;  (** fraction of prefixes (and flows) that are IPv6 *)
  g_sr_policies : int;  (** SRv6 policies per region between borders *)
  g_seed : int;
}

(** ~20 devices; used by tests and examples. *)
val small : params

(** The benches' scaled-down WAN: ~100 devices, ~10k input routes. *)
val wan : params

(** WAN plus the DC core layer: ~1000 devices. *)
val wan_dcn : params

type t = {
  params : params;
  model : Hoyan_sim.Model.t;
  input_routes : Route.t list;
  flows : Flow.t list;
  borders : string list;  (** border router names (injection points) *)
  dc_routers : string list;
  regions : string list;
  parse_errors : int;  (** from re-parsing the emitted configurations *)
}

(** Generate the scenario.  [reparse=false] skips the print→parse round
    trip (marginally faster; tests keep it on). *)
val generate : ?reparse:bool -> params -> t

val device_count : t -> int

(** One-line summary (devices, links, routes, flows, config lines). *)
val stats : t -> string
