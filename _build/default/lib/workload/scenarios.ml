(** Scripted replications of the paper's real-world cases (§6.1, Fig 10).

    Each scenario packages a base network, the pre-computed inputs, the
    operator's change plan, and the intents the operator asked Hoyan to
    check — so the examples and the bench can run the same incident
    end-to-end and show the violations Hoyan caught in production. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Intents = Hoyan_core.Intents
module Preprocess = Hoyan_core.Preprocess
module Verify_request = Hoyan_core.Verify_request

type t = {
  sc_name : string;
  sc_description : string;
  sc_base : Preprocess.base;
  sc_request : Verify_request.request;
  sc_expected : string list; (* what Hoyan is expected to flag *)
}

let pfx = Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* Figure 10(a): shifting traffic to the new WAN                        *)
(* ------------------------------------------------------------------ *)

(** The operators intend to shift traffic for 1.0.0.0/24 from the old-WAN
    router A to the new-WAN router B.  Node 10 of the pre-installed
    ingress policy on M1/M2 denies all routes from B; node 20 permits the
    target route — but node 20 is {e missing on M1} (an existing
    misconfiguration with no pre-change impact).  The change deletes node
    10 on both.  Result: M1 still denies route R, M2 installs and
    re-advertises it to A; A forwards to M2 but cannot advertise back to
    M1 (AS loop), so M1 falls back to its static 1.0.0.0/8 towards A and
    the traffic takes M1-A-M2-B, overloading A-M2. *)
let fig10a () : t =
  let b = Builder.create () in
  Builder.add_device b ~name:"DC" ~vendor:"vendorA" ~asn:65010
    ~router_id:(Builder.ip "10.255.0.10") ();
  Builder.add_device b ~name:"M1" ~vendor:"vendorA" ~asn:65001
    ~router_id:(Builder.ip "10.255.0.1") ();
  Builder.add_device b ~name:"M2" ~vendor:"vendorA" ~asn:65001
    ~router_id:(Builder.ip "10.255.0.2") ();
  Builder.add_device b ~name:"A" ~vendor:"vendorA" ~asn:65002
    ~router_id:(Builder.ip "10.255.0.3") ();
  Builder.add_device b ~name:"B" ~vendor:"vendorA" ~asn:65003
    ~router_id:(Builder.ip "10.255.0.4") ();
  let dc_m1, m1_dc = Builder.link b ~a:"DC" ~b:"M1" ~subnet:(pfx "10.1.0.0/31") () in
  let dc_m2, m2_dc = Builder.link b ~a:"DC" ~b:"M2" ~subnet:(pfx "10.2.0.0/31") () in
  let m1_a, a_m1 = Builder.link b ~a:"M1" ~b:"A" ~subnet:(pfx "10.3.0.0/31") () in
  let m2_a, a_m2 =
    Builder.link b ~a:"M2" ~b:"A" ~subnet:(pfx "10.4.0.0/31") ~bandwidth:10e9 ()
  in
  let m1_b, b_m1 = Builder.link b ~a:"M1" ~b:"B" ~subnet:(pfx "10.5.0.0/31") () in
  let m2_b, b_m2 = Builder.link b ~a:"M2" ~b:"B" ~subnet:(pfx "10.6.0.0/31") () in
  ignore (dc_m1, dc_m2, m1_dc, m2_dc);
  (* ingress policies on M1/M2 for routes from B: node 10 denies all;
     node 20 (permit 1.0.0.0/24, lp 300) was pre-installed on M2 ONLY *)
  let target_pl =
    { Types.pl_name = "TARGET"; pl_family = Ip.Ipv4;
      pl_entries =
        [ { Types.pe_seq = 5; pe_action = Types.Permit;
            pe_prefix = pfx "1.0.0.0/24"; pe_ge = None; pe_le = None } ] }
  in
  Builder.add_prefix_list b "M1" target_pl;
  Builder.add_prefix_list b "M2" target_pl;
  (* both policies end with the standard trailing deny-all (node 100);
     the permit node 20 for the target prefix was pre-installed on M2
     only — the latent misconfiguration *)
  Builder.add_policy b "M1"
    (Builder.policy "FROM_B"
       [
         Builder.node 10 ~action:(Some Types.Deny);
         Builder.node 100 ~action:(Some Types.Deny);
       ]);
  Builder.add_policy b "M2"
    (Builder.policy "FROM_B"
       [
         Builder.node 10 ~action:(Some Types.Deny);
         Builder.node 20
           ~matches:[ Types.Match_prefix_list "TARGET" ]
           ~sets:[ Types.Set_local_pref 300 ];
         Builder.node 100 ~action:(Some Types.Deny);
       ]);
  (* sessions: M1/M2 to A (old WAN) and B (new WAN); DC below them *)
  Builder.bgp_session b ~a:"M1" ~b:"A" ~a_addr:m1_a ~b_addr:a_m1 ();
  Builder.bgp_session b ~a:"M2" ~b:"A" ~a_addr:m2_a ~b_addr:a_m2 ();
  Builder.bgp_session b ~a:"M1" ~b:"B" ~a_addr:m1_b ~b_addr:b_m1
    ~a_import:"FROM_B" ();
  Builder.bgp_session b ~a:"M2" ~b:"B" ~a_addr:m2_b ~b_addr:b_m2
    ~a_import:"FROM_B" ();
  (* M1/M2 carry the pre-configured static default 1.0.0.0/8 towards A *)
  Builder.add_static b "M1"
    { Types.st_prefix = pfx "1.0.0.0/8"; st_nexthop = Some a_m1;
      st_iface = None; st_preference = 200; st_tag = 0;
      st_vrf = Route.default_vrf };
  Builder.add_static b "M2"
    { Types.st_prefix = pfx "1.0.0.0/8"; st_nexthop = Some a_m2;
      st_iface = None; st_preference = 200; st_tag = 0;
      st_vrf = Route.default_vrf };
  let model = Builder.build b in
  (* route R: 1.0.0.0/24 announced by the new WAN at B *)
  let route_r =
    Builder.input_route ~device:"B" ~prefix:"1.0.0.0/24" ~as_path:[ 64900 ]
      ~local_pref:100 ()
  in
  (* a large DC flow towards 1.0.0.0/24 entering at M1 *)
  let flow =
    Flow.make ~src:(Builder.ip "172.20.0.1") ~dst:(Builder.ip "1.0.0.9")
      ~ingress:"M1" ~volume:9e9 ()
  in
  let base =
    Preprocess.prepare model ~monitored_routes:[ route_r ]
      ~monitored_flows:[ flow ]
  in
  let plan =
    Cp.make "shift-traffic-to-new-wan"
      ~commands:
        [ ("M1", "no route-map FROM_B 10\n"); ("M2", "no route-map FROM_B 10\n") ]
  in
  let request =
    {
      Verify_request.rq_name = "shift-traffic-to-new-wan";
      rq_plan = plan;
      rq_intents =
        [
          (* (1) route R installed as best on both M1 and M2 *)
          Intents.Route_reach
            { rr_prefix = pfx "1.0.0.0/24"; rr_devices = [ "M1"; "M2" ];
              rr_expect = true };
          (* (2) the traffic shifts to B *)
          Intents.Flow_through
            { fl_flow = flow; fl_device = "B"; fl_expect = true };
          Intents.Flow_through
            { fl_flow = flow; fl_device = "A"; fl_expect = false };
          (* (3) no link overloaded *)
          Intents.Max_utilization 0.8;
        ];
    }
  in
  {
    sc_name = "figure-10a";
    sc_description =
      "Shifting traffic to the new WAN: a pre-existing misconfiguration \
       (missing policy node 20 on M1) surfaces only after the change, \
       sending traffic M1-A-M2-B and overloading A-M2.";
    sc_base = base;
    sc_request = request;
    sc_expected =
      [ "route 1.0.0.0/24 missing on M1"; "flow still traverses A";
        "link A->M2 overloaded" ];
  }

(* ------------------------------------------------------------------ *)
(* Figure 10(b): changing ISP exits                                     *)
(* ------------------------------------------------------------------ *)

(** The operator moves a list of IPv6 prefixes from ISP1 (exit D) to ISP2
    (exit C) by raising local preference on C before advertising to the
    region RR — but writes the prefix list with [ip-prefix] instead of
    [ipv6-prefix].  Vendor B only checks IPv4 prefixes after [ip-prefix]
    and permits all IPv6 prefixes by default, so {e every} IPv6 prefix
    moves to C and C's links overload.  Hoyan verifies the stated intent
    (the target prefixes did move) but flags the overload, and an
    "others do not change" RCL intent pinpoints the collateral damage. *)
let fig10b () : t =
  let b = Builder.create () in
  Builder.add_device b ~name:"C" ~vendor:"vendorB" ~asn:65001
    ~router_id:(Builder.ip "10.255.1.1") ();
  Builder.add_device b ~name:"D" ~vendor:"vendorA" ~asn:65001
    ~router_id:(Builder.ip "10.255.1.2") ();
  Builder.add_device b ~name:"RR" ~vendor:"vendorA" ~asn:65001
    ~router_id:(Builder.ip "10.255.1.3") ();
  Builder.add_device b ~name:"R1" ~vendor:"vendorA" ~asn:65001
    ~router_id:(Builder.ip "10.255.1.4") ();
  (* C's uplink is provisioned for the target prefixes only (10G); the
     exit via D and the access side are comfortable *)
  ignore (Builder.link b ~a:"C" ~b:"RR" ~subnet:(pfx "10.1.0.0/31") ~bandwidth:10e9 ());
  ignore (Builder.link b ~a:"D" ~b:"RR" ~subnet:(pfx "10.2.0.0/31") ~bandwidth:20e9 ());
  ignore (Builder.link b ~a:"R1" ~b:"RR" ~subnet:(pfx "10.3.0.0/31") ~bandwidth:100e9 ());
  Builder.add_policy b "C" (Builder.policy "PASS" [ Builder.node 10 ]);
  (* iBGP: C, D, R1 are clients of RR *)
  Builder.ibgp_loopback_session b ~a:"RR" ~b:"C" ~a_rr_client:true
    ~b_import:"PASS" ~b_export:"PASS" ~b_next_hop_self:true ();
  Builder.ibgp_loopback_session b ~a:"RR" ~b:"D" ~a_rr_client:true
    ~b_next_hop_self:true ();
  Builder.ibgp_loopback_session b ~a:"RR" ~b:"R1" ~a_rr_client:true ();
  let model = Builder.build b in
  (* IPv6 prefixes: two targets plus two unrelated; all reachable via
     both exits, ISP1 (at D) preferred before the change (lp 200) *)
  let v6 n = Printf.sprintf "2001:db8:%d::/48" n in
  let inputs =
    List.concat_map
      (fun n ->
        [
          Builder.input_route ~device:"D" ~prefix:(v6 n) ~local_pref:200
            ~as_path:[ 1010 ] ();
          Builder.input_route ~device:"C" ~prefix:(v6 n) ~local_pref:100
            ~as_path:[ 2020 ] ();
        ])
      [ 1; 2; 8; 9 ]
  in
  let flows =
    List.map
      (fun n ->
        Flow.make
          ~src:(Builder.ip "2001:db8:ffff::1")
          ~dst:(Builder.ip (Printf.sprintf "2001:db8:%d::42" n))
          ~ingress:"R1" ~volume:4e9 ())
      [ 1; 2; 8; 9 ]
  in
  let base =
    Preprocess.prepare model ~monitored_routes:inputs ~monitored_flows:flows
  in
  (* the operator's change on C (vendor B dialect), with the wrong
     'ip ip-prefix' command for IPv6 prefixes *)
  let block =
    {|ip ip-prefix EXIT2 index 5 permit 2001:db8:1:: 48
ip ip-prefix EXIT2 index 10 permit 2001:db8:2:: 48
route-policy TO_RR permit node 10
 if-match ip-prefix EXIT2
 apply local-preference 300
route-policy TO_RR permit node 20
bgp 65001
 peer 10.255.1.3 as-number 65001
 peer 10.255.1.3 route-policy TO_RR export
|}
  in
  let plan = Cp.make "change-isp-exits" ~commands:[ ("C", block) ] in
  let request =
    {
      Verify_request.rq_name = "change-isp-exits";
      rq_plan = plan;
      rq_intents =
        [
          (* next hops of the target prefixes change from D to C *)
          Intents.Route_change
            (Printf.sprintf
               "forall device in {R1} : forall prefix in {%s, %s} : routeType \
                = BEST => POST |> distVals(nexthop) = {10.255.1.1}"
               (v6 1) (v6 2));
          (* the traffic is steered to ISP2 *)
          Intents.Flow_through
            { fl_flow = List.hd flows; fl_device = "C"; fl_expect = true };
          (* no link overloaded *)
          Intents.Max_utilization 0.9;
          (* "others do not change" — the missing spec from §7 that the
             operator later added *)
          Intents.Route_change
            (Printf.sprintf
               "forall device in {R1} : forall prefix in {%s, %s} : routeType \
                = BEST => PRE |> distVals(nexthop) = POST |> distVals(nexthop)"
               (v6 8) (v6 9));
        ];
    }
  in
  {
    sc_name = "figure-10b";
    sc_description =
      "Changing ISP exits: 'ip-prefix' used instead of 'ipv6-prefix'; the \
       vendor permits all IPv6 prefixes by default, so every prefix moves \
       to C and its links overload.";
    sc_base = base;
    sc_request = request;
    sc_expected =
      [ "links into C overloaded"; "unrelated prefixes' next hop changed" ];
  }

let all () = [ fig10a (); fig10b () ]

(* ------------------------------------------------------------------ *)
(* Figure 9: the root-cause-analysis case                              *)
(* ------------------------------------------------------------------ *)

type diag_scenario = {
  dg_name : string;
  dg_description : string;
  dg_live_model : Hoyan_sim.Model.t; (* ground truth (real vendor semantics) *)
  dg_hoyan_model : Hoyan_sim.Model.t; (* Hoyan's pre-fix model *)
  dg_inputs : Route.t list;
  dg_flow : Flow.t;
  dg_link : string * string; (* the link with the reported load gap *)
}

(** The §5.2 case: router A holds two equal-IGP-cost BGP routes towards B
    and C; an SR policy covers the B next hop.  A's real vendor treats the
    IGP cost of SR-reachable next hops as 0, so the live network uses only
    the B path, while Hoyan (before the fix) simulated two ECMP routes —
    under-estimating the A-B load.  The root-cause workflow localizes the
    divergence at A and hints at the IGP/SR interaction. *)
let fig9 () : diag_scenario =
  let build vendor_of_a =
    let b = Builder.create () in
    Builder.add_device b ~name:"A" ~vendor:vendor_of_a ~asn:65000
      ~router_id:(Builder.ip "10.255.0.1") ();
    Builder.add_device b ~name:"Bx" ~vendor:"vendorB" ~asn:65000
      ~router_id:(Builder.ip "10.255.0.2") ();
    Builder.add_device b ~name:"Cx" ~vendor:"vendorB" ~asn:65000
      ~router_id:(Builder.ip "10.255.0.3") ();
    Builder.add_device b ~name:"D" ~vendor:"vendorB" ~asn:65000
      ~router_id:(Builder.ip "10.255.0.4") ();
    ignore (Builder.link b ~a:"A" ~b:"Bx" ~subnet:(pfx "10.1.0.0/31") ());
    ignore (Builder.link b ~a:"A" ~b:"Cx" ~subnet:(pfx "10.2.0.0/31") ());
    ignore (Builder.link b ~a:"D" ~b:"A" ~subnet:(pfx "10.3.0.0/31") ());
    List.iter
      (fun d -> Builder.add_policy b d (Builder.policy "PASS" [ Builder.node 10 ]))
      [ "A"; "Bx"; "Cx"; "D" ];
    Builder.ibgp_loopback_session b ~a:"A" ~b:"Bx" ~a_import:"PASS"
      ~a_export:"PASS" ~b_import:"PASS" ~b_export:"PASS" ();
    Builder.ibgp_loopback_session b ~a:"A" ~b:"Cx" ~a_import:"PASS"
      ~a_export:"PASS" ~b_import:"PASS" ~b_export:"PASS" ();
    Builder.ibgp_loopback_session b ~a:"D" ~b:"A" ~a_import:"PASS"
      ~a_export:"PASS" ~b_import:"PASS" ~b_export:"PASS" ~b_rr_client:true
      ~b_next_hop_self:true ();
    Builder.add_sr_policy b "A"
      { Types.sp_name = "TO_B"; sp_endpoint = Builder.ip "10.255.0.2";
        sp_color = 1; sp_segments = []; sp_preference = 100 };
    Builder.build b
  in
  let inputs =
    [
      Builder.input_route ~device:"Bx" ~prefix:"99.0.0.0/24"
        ~nexthop:"10.255.0.2" ~as_path:[ 7018 ] ();
      Builder.input_route ~device:"Cx" ~prefix:"99.0.0.0/24"
        ~nexthop:"10.255.0.3" ~as_path:[ 7018 ] ();
    ]
  in
  {
    dg_name = "figure-9";
    dg_description =
      "A's vendor zeroes the IGP cost of SR-reached next hops, so the \
       live network sends all traffic A-B while Hoyan's pre-fix model \
       predicted ECMP across A-B and A-C.";
    (* live network: vendor A semantics on router A (sr_igp_cost_zero) *)
    dg_live_model = build "vendorA";
    (* Hoyan before the fix: modelled A like the other vendor *)
    dg_hoyan_model = build "vendorB";
    dg_inputs = inputs;
    dg_flow =
      Flow.make ~src:(Builder.ip "8.8.8.8") ~dst:(Builder.ip "99.0.0.10")
        ~ingress:"D" ~volume:5e9 ();
    dg_link = ("A", "Bx");
  }
