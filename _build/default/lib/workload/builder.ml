(** Programmatic construction of small networks.

    Used by unit/integration tests, the examples, and the scripted
    case-study scenarios (Figures 9 and 10).  Configurations built here
    are rendered to vendor dialect text and re-parsed when they enter the
    simulation through {!Generator}, so nothing here bypasses the parsing
    path used in production. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Model = Hoyan_sim.Model
module Smap = Map.Make (String)

type t = {
  mutable b_topo : Topology.t;
  mutable b_configs : Types.t Smap.t;
  mutable b_iface_count : (string, int) Hashtbl.t option;
}

let create () =
  { b_topo = Topology.empty; b_configs = Smap.empty; b_iface_count = None }

let iface_counts t =
  match t.b_iface_count with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 64 in
      t.b_iface_count <- Some h;
      h

let fresh_iface t dev =
  let h = iface_counts t in
  let n = Option.value (Hashtbl.find_opt h dev) ~default:0 in
  Hashtbl.replace h dev (n + 1);
  Printf.sprintf "Eth%d" n

(** Add a device with an empty config; [router_id] doubles as its loopback
    address. *)
let add_device t ~name ~vendor ~asn ~router_id ?(region = "r1")
    ?(role = Topology.Wan_core) () =
  let dev =
    { Topology.name; vendor; asn; router_id; region; role }
  in
  t.b_topo <- Topology.add_device t.b_topo dev;
  let cfg = Types.empty ~device:name ~vendor in
  let cfg =
    { cfg with
      Types.dc_bgp =
        { cfg.Types.dc_bgp with
          Types.bgp_asn = asn;
          bgp_router_id = Some router_id } }
  in
  t.b_configs <- Smap.add name cfg t.b_configs

let config t name =
  match Smap.find_opt name t.b_configs with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Builder.config: %s" name)

let update_config t name f = t.b_configs <- Smap.add name (f (config t name)) t.b_configs

(** Connect two devices with a /31 subnet (or /127 for IPv6) and add the
    interfaces with the given IS-IS cost on both sides.  Returns the two
    interface addresses (a_addr, b_addr). *)
let link t ~a ~b ~subnet ?(cost = 10) ?(bandwidth = 100e9)
    ?(no_isis_cost = false) ?(te = false) () =
  let fam = Prefix.family subnet in
  let plen = Ip.family_bits fam - 1 in
  let a_addr = Prefix.first_addr subnet in
  let b_addr = Ip.succ a_addr in
  let a_if = fresh_iface t a and b_if = fresh_iface t b in
  t.b_topo <-
    Topology.add_link t.b_topo ~a ~a_if ~b ~b_if ~bandwidth;
  t.b_topo <-
    Topology.add_iface t.b_topo
      { Topology.dev = a; ifname = a_if; addr = Some a_addr };
  t.b_topo <-
    Topology.add_iface t.b_topo
      { Topology.dev = b; ifname = b_if; addr = Some b_addr };
  let add_iface_cfg dev ifname addr =
    update_config t dev (fun cfg ->
        let iface =
          {
            Types.if_name = ifname;
            if_addr = Some addr;
            if_plen = plen;
            if_bandwidth = bandwidth;
            if_acl_in = None;
          }
        in
        let isis_ifaces =
          if no_isis_cost then cfg.Types.dc_isis.Types.isis_ifaces
          else
            { Types.ii_name = ifname; ii_cost = cost; ii_te = te }
            :: cfg.Types.dc_isis.Types.isis_ifaces
        in
        { cfg with
          Types.dc_ifaces = iface :: cfg.Types.dc_ifaces;
          dc_isis =
            { cfg.Types.dc_isis with
              Types.isis_enabled = true;
              isis_ifaces } })
  in
  add_iface_cfg a a_if a_addr;
  add_iface_cfg b b_if b_addr;
  (a_addr, b_addr)

(** Make [a] and [b] BGP neighbors over their link addresses (they must
    already be linked via {!link}, or pass explicit addresses). *)
let bgp_session t ~a ~b ~(a_addr : Ip.t) ~(b_addr : Ip.t) ?a_import ?a_export
    ?b_import ?b_export ?(a_rr_client = false) ?(b_rr_client = false)
    ?(next_hop_self = false) ?(a_next_hop_self = false)
    ?(b_next_hop_self = false) ?(add_paths = 0) ?(vrf = Route.default_vrf) () =
  let add_nb dev peer_addr remote_asn import export rr_client nhs =
    update_config t dev (fun cfg ->
        let nb =
          {
            Types.nb_addr = peer_addr;
            nb_remote_asn = remote_asn;
            nb_import = import;
            nb_export = export;
            nb_rr_client = rr_client;
            nb_next_hop_self = next_hop_self || nhs;
            nb_add_paths = add_paths;
            nb_vrf = vrf;
          }
        in
        { cfg with
          Types.dc_bgp =
            { cfg.Types.dc_bgp with
              Types.bgp_neighbors = nb :: cfg.Types.dc_bgp.Types.bgp_neighbors }
        })
  in
  let asn_of dev = (Topology.device_exn t.b_topo dev).Topology.asn in
  add_nb a b_addr (asn_of b) a_import a_export a_rr_client a_next_hop_self;
  add_nb b a_addr (asn_of a) b_import b_export b_rr_client b_next_hop_self

(** iBGP session over loopbacks (router ids), e.g. RR <-> client. *)
let ibgp_loopback_session t ~a ~b ?a_import ?a_export ?b_import ?b_export
    ?(a_rr_client = false) ?(b_rr_client = false) ?(next_hop_self = false)
    ?(a_next_hop_self = false) ?(b_next_hop_self = false) ?(add_paths = 0) () =
  let rid dev = (Topology.device_exn t.b_topo dev).Topology.router_id in
  bgp_session t ~a ~b ~a_addr:(rid a) ~b_addr:(rid b) ?a_import ?a_export
    ?b_import ?b_export ~a_rr_client ~b_rr_client ~next_hop_self
    ~a_next_hop_self ~b_next_hop_self ~add_paths ()

(** Attach a route policy to a device. *)
let add_policy t dev (rp : Types.route_policy) =
  update_config t dev (fun cfg ->
      { cfg with
        Types.dc_policies =
          Types.Smap.add rp.Types.rp_name rp cfg.Types.dc_policies })

let add_prefix_list t dev (pl : Types.prefix_list) =
  update_config t dev (fun cfg ->
      { cfg with
        Types.dc_prefix_lists =
          Types.Smap.add pl.Types.pl_name pl cfg.Types.dc_prefix_lists })

let add_community_list t dev (cl : Types.community_list) =
  update_config t dev (fun cfg ->
      { cfg with
        Types.dc_community_lists =
          Types.Smap.add cl.Types.cl_name cl cfg.Types.dc_community_lists })

let add_static t dev (s : Types.static_route) =
  update_config t dev (fun cfg ->
      { cfg with Types.dc_statics = s :: cfg.Types.dc_statics })

let add_network t dev ?(vrf = Route.default_vrf) prefix =
  update_config t dev (fun cfg ->
      { cfg with
        Types.dc_bgp =
          { cfg.Types.dc_bgp with
            Types.bgp_networks =
              (prefix, vrf) :: cfg.Types.dc_bgp.Types.bgp_networks } })

let add_sr_policy t dev (sp : Types.sr_policy) =
  update_config t dev (fun cfg ->
      { cfg with Types.dc_sr_policies = sp :: cfg.Types.dc_sr_policies })

(** Compile the builder state into a simulation model. *)
let build ?te_aware ?regex t =
  Model.build ?te_aware ?regex t.b_topo t.b_configs

let topo t = t.b_topo
let configs t = t.b_configs

(* Convenience constructors --------------------------------------------- *)

let ip = Ip.of_string_exn
let pfx = Prefix.of_string_exn
let comm = Community.of_string_exn

(** An input route as collected by the route monitoring system. *)
let input_route ~device ~prefix ?(vrf = Route.default_vrf) ?nexthop
    ?(as_path = []) ?(communities = []) ?(local_pref = 100) ?(med = 0) () =
  Route.make ~device ~prefix:(pfx prefix) ~vrf
    ?nexthop:(Option.map ip nexthop)
    ~as_path:(As_path.of_asns as_path)
    ~communities:(Community.Set.of_list (List.map comm communities))
    ~local_pref ~med ~proto:Route.Bgp ~source:Route.Ebgp ~origin:Route.Igp ()

(** Simple policy node. *)
let node ?(action = Some Types.Permit) ?(matches = []) ?(sets = [])
    ?(goto_next = false) seq =
  {
    Types.pn_seq = seq;
    pn_action = action;
    pn_matches = matches;
    pn_sets = sets;
    pn_goto_next = goto_next;
  }

let policy name nodes = { Types.rp_name = name; rp_nodes = nodes }

let prefix_list ?(family = Ip.Ipv4) name entries =
  {
    Types.pl_name = name;
    pl_family = family;
    pl_entries =
      List.mapi
        (fun i (action, p, ge, le) ->
          {
            Types.pe_seq = (i + 1) * 5;
            pe_action = action;
            pe_prefix = pfx p;
            pe_ge = ge;
            pe_le = le;
          })
        entries;
  }


let set_isis_default_cost t dev cost =
  update_config t dev (fun cfg ->
      { cfg with
        Types.dc_isis =
          { cfg.Types.dc_isis with
            Types.isis_enabled = true;
            isis_default_cost = Some cost } })

let set_isolated t dev =
  update_config t dev (fun cfg -> { cfg with Types.dc_isolated = true })

let add_vrf t dev (vd : Types.vrf_def) =
  update_config t dev (fun cfg ->
      { cfg with
        Types.dc_bgp =
          { cfg.Types.dc_bgp with
            Types.bgp_vrfs = vd :: cfg.Types.dc_bgp.Types.bgp_vrfs } })

let add_redistribute t dev ?policy proto =
  update_config t dev (fun cfg ->
      { cfg with
        Types.dc_bgp =
          { cfg.Types.dc_bgp with
            Types.bgp_redistribute =
              (proto, policy) :: cfg.Types.dc_bgp.Types.bgp_redistribute } })

let add_aggregate t dev ?(as_set = false) ?(summary_only = false)
    ?(vrf = Route.default_vrf) prefix =
  update_config t dev (fun cfg ->
      { cfg with
        Types.dc_bgp =
          { cfg.Types.dc_bgp with
            Types.bgp_aggregates =
              { Types.ag_prefix = prefix; ag_as_set = as_set;
                ag_summary_only = summary_only; ag_vrf = vrf }
              :: cfg.Types.dc_bgp.Types.bgp_aggregates } })

(** Override the vendor string of a device (config + topology), used by
    the VSB differential-testing harness to install flipped profiles. *)
let set_vendor t dev vendor =
  update_config t dev (fun cfg -> { cfg with Types.dc_vendor = vendor });
  match Topology.device t.b_topo dev with
  | Some d ->
      t.b_topo <- Topology.add_device t.b_topo { d with Topology.vendor }
  | None -> ()

(** Remove the physical link between two devices, keeping the interface
    configuration on both sides (a provisioned-but-down port). *)
let remove_link t ~a ~b = t.b_topo <- Topology.remove_link t.b_topo ~a ~b
