lib/workload/scenarios.ml: Builder Flow Hoyan_config Hoyan_core Hoyan_net Hoyan_sim Ip List Prefix Printf Route
