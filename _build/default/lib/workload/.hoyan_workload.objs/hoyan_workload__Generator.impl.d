lib/workload/generator.ml: Array As_path Builder Community Flow Fun Hashtbl Hoyan_config Hoyan_net Hoyan_sim Ip List Map Prefix Printf Random Route String Topology
