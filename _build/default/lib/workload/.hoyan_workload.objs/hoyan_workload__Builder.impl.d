lib/workload/builder.ml: As_path Community Hashtbl Hoyan_config Hoyan_net Hoyan_sim Ip List Map Option Prefix Printf Route String Topology
