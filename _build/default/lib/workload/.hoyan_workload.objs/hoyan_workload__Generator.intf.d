lib/workload/generator.mli: Flow Hoyan_net Hoyan_sim Route
