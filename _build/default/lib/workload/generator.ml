(** Synthetic WAN / WAN+DCN generator.

    Substitutes for Alibaba's production network (DESIGN.md §2): a
    multi-region backbone in one AS (per-region route reflectors, core
    rings, border routers with external peering subnets), optionally with
    attached data-center routers in their own ASes (the WAN+DCN setting),
    plus generators for input routes, input flows, with the properties the
    paper's evaluation depends on:

    - mixed vendors (both dialects; configs are rendered to text and
      re-parsed, so the full parsing path is exercised);
    - heterogeneous route propagation: ISP-learned prefixes are confined
      near their region by community-based filtering at the RRs while
      DC-originated prefixes propagate network-wide — the source of the
      skewed subtask durations of Figure 5(c);
    - flows whose destinations cover the input prefixes, with population
      counts standing for the paper's O(10^9) concrete flows. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Printer = Hoyan_config.Printer
module Model = Hoyan_sim.Model
module Smap = Map.Make (String)

type params = {
  g_regions : int;
  g_cores_per_region : int;
  g_borders_per_region : int;
  g_rrs_per_region : int;
  g_dcs_per_region : int; (* DC core routers per region (WAN+DCN) *)
  g_prefixes : int; (* distinct input prefixes *)
  g_routes_per_prefix : int; (* average multi-homing degree *)
  g_flows : int; (* flow records *)
  g_flow_population : int; (* concrete flows represented per record *)
  g_vendor_b_fraction : float;
  g_isp_prefix_fraction : float; (* short-propagation prefixes *)
  g_v6_fraction : float;
      (* fraction of prefixes (and their flows) that are IPv6 — the
         next-generation WAN is IPv6/SRv6-based (§2.1) *)
  g_sr_policies : int; (* SRv6 policies per region between borders *)
  g_seed : int;
}

(** A small WAN for tests and examples (~30 devices). *)
let small =
  {
    g_regions = 3;
    g_cores_per_region = 4;
    g_borders_per_region = 2;
    g_rrs_per_region = 1;
    g_dcs_per_region = 0;
    g_prefixes = 200;
    g_routes_per_prefix = 2;
    g_flows = 300;
    g_flow_population = 1000;
    g_vendor_b_fraction = 0.4;
    g_isp_prefix_fraction = 0.6;
    g_v6_fraction = 0.25;
    g_sr_policies = 1;
    g_seed = 1;
  }

(** The scaled-down "WAN" of the benches (hundreds of devices, tens of
    thousands of input routes). *)
let wan =
  {
    small with
    g_regions = 6;
    g_cores_per_region = 10;
    g_borders_per_region = 4;
    g_rrs_per_region = 2;
    g_prefixes = 3000;
    g_routes_per_prefix = 3;
    g_flows = 4000;
    g_flow_population = 250_000;
    g_seed = 2;
  }

(** WAN plus the DC core layer: an order of magnitude more devices. *)
let wan_dcn =
  { wan with g_dcs_per_region = 150; g_prefixes = 4500; g_seed = 3 }

type t = {
  params : params;
  model : Model.t;
  input_routes : Route.t list;
  flows : Flow.t list;
  borders : string list; (* border router names (injection points) *)
  dc_routers : string list;
  regions : string list;
  parse_errors : int; (* from re-parsing the emitted configs *)
}

let wan_asn = 64512

let region_name i = Printf.sprintf "r%02d" i

(* Deterministic PRNG throughout. *)
let pick st l = List.nth l (Random.State.int st (List.length l))

(* ------------------------------------------------------------------ *)
(* Topology construction                                               *)
(* ------------------------------------------------------------------ *)

let vendor_of st (p : params) =
  if Random.State.float st 1.0 < p.g_vendor_b_fraction then "vendorB"
  else "vendorA"

(* Loopbacks: 10.255.r.n ; link subnets: 10.(64+r).x.y/31 ;
   inter-region links: 10.63.x.y/31 ; external peering: 172.16.x.y/31 ;
   DC loopbacks: 10.254.x.y *)

let build_topology (p : params) (st : Random.State.t) =
  let b = Builder.create () in
  let link_counter = ref 0 in
  let fresh_link_subnet region =
    let n = !link_counter in
    incr link_counter;
    Prefix.make
      (Ip.v4_of_octets 10 (64 + region) (n / 128 mod 256) (n mod 128 * 2))
      31
  in
  let inter_counter = ref 0 in
  let fresh_inter_subnet () =
    let n = !inter_counter in
    incr inter_counter;
    Prefix.make (Ip.v4_of_octets 10 63 (n / 128 mod 256) (n mod 128 * 2)) 31
  in
  let regions = List.init p.g_regions region_name in
  let cores = Hashtbl.create 16 and borders = Hashtbl.create 16 in
  let rrs = Hashtbl.create 16 and dcs = Hashtbl.create 16 in
  (* devices *)
  List.iteri
    (fun ri region ->
      let dev kind role n =
        let name = Printf.sprintf "%s-%s%02d" region kind n in
        let octet_kind =
          match kind with "core" -> 0 | "bdr" -> 64 | "rr" -> 128 | _ -> 192
        in
        Builder.add_device b ~name ~vendor:(vendor_of st p) ~asn:wan_asn
          ~router_id:(Ip.v4_of_octets 10 255 (octet_kind + ri) (n + 1))
          ~region ~role ();
        name
      in
      Hashtbl.replace cores region
        (List.init p.g_cores_per_region (dev "core" Topology.Wan_core));
      Hashtbl.replace borders region
        (List.init p.g_borders_per_region (dev "bdr" Topology.Wan_border));
      Hashtbl.replace rrs region
        (List.init p.g_rrs_per_region (dev "rr" Topology.Rr));
      (* DC routers: own AS per DC *)
      Hashtbl.replace dcs region
        (List.init p.g_dcs_per_region (fun n ->
             let name = Printf.sprintf "%s-dc%03d" region n in
             Builder.add_device b ~name ~vendor:(vendor_of st p)
               ~asn:(65100 + (ri * 500) + n)
               ~router_id:
                 (Ip.v4_of_octets 10 254 ((ri * 40) + (n / 250)) (n mod 250))
               ~region ~role:Topology.Dc_core ();
             name)))
    regions;
  (* intra-region links: core ring; borders and rrs attach to two cores *)
  List.iteri
    (fun ri region ->
      let cs = Hashtbl.find cores region in
      let n = List.length cs in
      List.iteri
        (fun i c ->
          let next = List.nth cs ((i + 1) mod n) in
          if n > 1 then
            (* every 5th core link carries an IS-IS TE metric — the
               feature Hoyan did not model before 03/2023 (§5.3) *)
            let te = i mod 4 = 3 in
            ignore
              (Builder.link b ~a:c ~b:next ~subnet:(fresh_link_subnet ri)
                 ~cost:((10 + Random.State.int st 10) * if te then 4 else 1)
                 ~te ()))
        cs;
      let attach dev =
        let c1 = List.nth cs (Random.State.int st n) in
        let c2 = List.nth cs (Random.State.int st n) in
        ignore
          (Builder.link b ~a:dev ~b:c1 ~subnet:(fresh_link_subnet ri)
             ~cost:(10 + Random.State.int st 10) ());
        if not (String.equal c1 c2) then
          ignore
            (Builder.link b ~a:dev ~b:c2 ~subnet:(fresh_link_subnet ri)
               ~cost:(10 + Random.State.int st 10) ())
      in
      List.iter attach (Hashtbl.find borders region);
      List.iter attach (Hashtbl.find rrs region);
      (* DC routers attach to one border each *)
      List.iter
        (fun dc ->
          let bs = Hashtbl.find borders region in
          let bd = List.nth bs (Random.State.int st (List.length bs)) in
          ignore
            (Builder.link b ~a:dc ~b:bd ~subnet:(fresh_link_subnet ri)
               ~cost:(10 + Random.State.int st 5) ()))
        (Hashtbl.find dcs region))
    regions;
  (* inter-region backbone: ring over regions via borders + chords *)
  let border0 region = List.hd (Hashtbl.find borders region) in
  let border1 region =
    let bs = Hashtbl.find borders region in
    List.nth bs (min 1 (List.length bs - 1))
  in
  let nregions = List.length regions in
  List.iteri
    (fun i region ->
      let next = List.nth regions ((i + 1) mod nregions) in
      if nregions > 1 then
        ignore
          (Builder.link b ~a:(border0 region) ~b:(border0 next)
             ~subnet:(fresh_inter_subnet ())
             ~cost:(30 + Random.State.int st 30)
             ~bandwidth:400e9 ()))
    regions;
  (* chords across the ring *)
  if nregions > 3 then
    List.iteri
      (fun i region ->
        if i mod 2 = 0 then
          let far = List.nth regions ((i + (nregions / 2)) mod nregions) in
          if not (String.equal far region) then
            ignore
              (Builder.link b ~a:(border1 region) ~b:(border1 far)
                 ~subnet:(fresh_inter_subnet ())
                 ~cost:(40 + Random.State.int st 30)
                 ~bandwidth:400e9 ()))
      regions;
  (b, regions, cores, borders, rrs, dcs)

(* ------------------------------------------------------------------ *)
(* BGP sessions and policies                                           *)
(* ------------------------------------------------------------------ *)

(* Communities used by the generated policies:
   - 64512:1xx  : learned-from-ISP in region xx (confined by RRs)
   - 64512:2xx  : learned-from-DC in region xx (propagates everywhere)   *)

let isp_comm ri = Community.make wan_asn (100 + ri)
let dc_comm ri = Community.make wan_asn (200 + ri)

let pass_policy = Builder.policy "PASS" [ Builder.node 10 ]

let setup_bgp (_p : params) (_st : Random.State.t) b regions cores borders rrs
    dcs =
  (* Every device carries a PASS policy so vendor-B's missing-policy VSB
     does not silently blackhole sessions; real deployments do the same. *)
  List.iteri
    (fun ri region ->
      let region_rrs = Hashtbl.find rrs region in
      let clients =
        Hashtbl.find cores region @ Hashtbl.find borders region
      in
      List.iter (fun d -> Builder.add_policy b d pass_policy) (clients @ region_rrs);
      (* import policy on borders: tag ISP routes with the region community
         and raise local-pref; the RRs' inter-region export policy then
         confines those routes to neighbouring regions *)
      List.iter
        (fun border ->
          (* borders originate the default routes (both families):
             traffic with no more specific route exits the WAN at its
             nearest border *)
          Builder.add_network b border (Prefix.default Ip.Ipv4);
          Builder.add_network b border (Prefix.default Ip.Ipv6);
          Builder.add_policy b border
            (Builder.policy "ISP_IN"
               [
                 Builder.node 10
                   ~sets:
                     [
                       Types.Set_communities (Types.Comm_add, [ isp_comm ri ]);
                       Types.Set_local_pref 200;
                     ];
               ]);
          Builder.add_policy b border
            (Builder.policy "DC_IN"
               [
                 Builder.node 10
                   ~sets:
                     [
                       Types.Set_communities (Types.Comm_add, [ dc_comm ri ]);
                       Types.Set_local_pref 150;
                     ];
               ]))
        (Hashtbl.find borders region);
      (* iBGP: clients to their region RRs (loopback sessions).  Borders
         receive the region's ISP routes; cores do not (they follow the
         default towards their borders) — this is what makes ISP routes
         propagate only a few hops while DC routes go network-wide, the
         heterogeneity behind Figure 5(c). *)
      List.iter
        (fun border ->
          List.iter
            (fun rr ->
              (* only the client (border/core) sets next-hop-self when
                 advertising its eBGP-learned routes up to the RR; the RR
                 reflects with next hops unchanged, preserving hot-potato
                 consistency *)
              Builder.ibgp_loopback_session b ~a:rr ~b:border ~a_rr_client:true
                ~a_import:"PASS" ~a_export:"RR_OUT" ~b_import:"PASS"
                ~b_export:"PASS" ~b_next_hop_self:true ())
            region_rrs)
        (Hashtbl.find borders region);
      List.iter
        (fun core ->
          List.iter
            (fun rr ->
              Builder.ibgp_loopback_session b ~a:rr ~b:core ~a_rr_client:true
                ~a_import:"PASS" ~a_export:"RR_OUT_CORE" ~b_import:"PASS"
                ~b_export:"PASS" ~b_next_hop_self:true ())
            region_rrs)
        (Hashtbl.find cores region);
      (* the RRs' export policy confines ISP communities of *other*
         regions: an RR re-advertises an ISP route only if it carries its
         own region's community (keeps ISP routes 2-3 hops deep) *)
      List.iter
        (fun rr ->
          let deny_nodes =
            List.mapi
              (fun rj _ ->
                if rj = ri then None
                else
                  Some
                    (Builder.node
                       ((rj * 10) + 10)
                       ~action:(Some Types.Deny)
                       ~matches:[ Types.Match_community_list
                                    (Printf.sprintf "ISP_R%d" rj) ]))
              regions
            |> List.filter_map Fun.id
          in
          List.iteri
            (fun rj _ ->
              Builder.add_community_list b rr
                {
                  Types.cl_name = Printf.sprintf "ISP_R%d" rj;
                  cl_entries =
                    [ { Types.ce_seq = 5; ce_action = Types.Permit;
                        ce_members = [ isp_comm rj ] } ];
                })
            regions;
          (* bogon AS filtering: routes whose path contains 65666 are
             dropped at the RRs; the flawed legacy regex engine misses
             deep occurrences (the §5.3 simulation-bug class) *)
          Builder.update_config b rr (fun cfg ->
              { cfg with
                Types.dc_aspath_filters =
                  Types.Smap.add "BOGON"
                    { Types.af_name = "BOGON";
                      af_entries =
                        [ { Types.ae_seq = 5; ae_action = Types.Permit;
                            ae_regex = ".* 65666 .*" } ] }
                    cfg.Types.dc_aspath_filters });
          Builder.add_policy b rr
            (Builder.policy "RR_OUT"
               (Builder.node 5 ~action:(Some Types.Deny)
                  ~matches:[ Types.Match_aspath_filter "BOGON" ]
                :: deny_nodes
               @ [ Builder.node 1000 ]));
          (* cores never receive ISP routes at all *)
          let deny_all_isp =
            List.mapi
              (fun rj _ ->
                Builder.node
                  ((rj * 10) + 10)
                  ~action:(Some Types.Deny)
                  ~matches:
                    [ Types.Match_community_list (Printf.sprintf "ISP_R%d" rj) ])
              regions
          in
          Builder.add_policy b rr
            (Builder.policy "RR_OUT_CORE"
               (Builder.node 5 ~action:(Some Types.Deny)
                  ~matches:[ Types.Match_aspath_filter "BOGON" ]
                :: deny_all_isp
               @ [ Builder.node 1000 ])))
        region_rrs)
    regions;
  (* SRv6 policies: each region's lead border steers towards the next
     region's lead border loopback (exercising SR forwarding and the
     "IGP cost for SR" VSB at scale) *)
  List.iteri
    (fun i region ->
      let next = List.nth regions ((i + 1) mod (List.length regions)) in
      if not (String.equal region next) then begin
        let head = List.hd (Hashtbl.find borders region) in
        let tail = List.hd (Hashtbl.find borders next) in
        let tail_id = (Topology.device_exn (Builder.topo b) tail).Topology.router_id in
        for k = 1 to _p.g_sr_policies do
          Builder.add_sr_policy b head
            {
              Types.sp_name = Printf.sprintf "SR_%s_%d" next k;
              sp_endpoint = tail_id;
              sp_color = 100 + k;
              sp_segments = [];
              sp_preference = 100;
            }
        done
      end)
    regions;
  (* RR full mesh across regions *)
  let all_rrs = List.concat_map (fun r -> Hashtbl.find rrs r) regions in
  let rec mesh = function
    | [] -> ()
    | rr :: rest ->
        List.iter
          (fun other ->
            Builder.ibgp_loopback_session b ~a:rr ~b:other ~a_import:"PASS"
              ~a_export:"RR_OUT" ~b_import:"PASS" ~b_export:"RR_OUT" ())
          rest;
        mesh rest
  in
  mesh all_rrs;
  (* DC eBGP sessions to the borders they are linked with *)
  List.iter
    (fun region ->
      List.iter
        (fun dc ->
          Builder.add_policy b dc pass_policy;
          (* find the devices dc is linked to *)
          let topo = Builder.topo b in
          let neighbors = Topology.neighbors topo dc in
          List.iter
            (fun nb ->
              match Topology.edge_between topo dc nb with
              | Some e -> (
                  let dc_cfg = Builder.config b dc in
                  let dc_addr =
                    List.find_map
                      (fun (i : Types.iface_config) ->
                        if String.equal i.Types.if_name e.Topology.src_if then
                          i.Types.if_addr
                        else None)
                      dc_cfg.Types.dc_ifaces
                  in
                  let nb_cfg = Builder.config b nb in
                  let nb_addr =
                    List.find_map
                      (fun (i : Types.iface_config) ->
                        if String.equal i.Types.if_name e.Topology.dst_if then
                          i.Types.if_addr
                        else None)
                      nb_cfg.Types.dc_ifaces
                  in
                  match (dc_addr, nb_addr) with
                  | Some da, Some na ->
                      Builder.bgp_session b ~a:dc ~b:nb ~a_addr:da ~b_addr:na
                        ~a_import:"PASS" ~a_export:"PASS" ~b_import:"DC_IN"
                        ~b_export:"PASS" ~next_hop_self:true ()
                  | _ -> ())
              | None -> ())
            neighbors)
        (Hashtbl.find dcs region))
    regions

(* ------------------------------------------------------------------ *)
(* External peering subnets on borders (eBGP next-hop anchors)          *)
(* ------------------------------------------------------------------ *)

let add_external_subnets b borders_all =
  List.iteri
    (fun i border ->
      Builder.update_config b border (fun cfg ->
          {
            cfg with
            Types.dc_ifaces =
              {
                Types.if_name = "Ext0";
                if_addr = Some (Ip.v4_of_octets 172 16 (i / 128) (i mod 128 * 2));
                if_plen = 31;
                if_bandwidth = 100e9;
                if_acl_in = None;
              }
              :: cfg.Types.dc_ifaces;
          }))
    borders_all

let external_peer_addr i = Ip.v4_of_octets 172 16 (i / 128) ((i mod 128 * 2) + 1)

(* ------------------------------------------------------------------ *)
(* Input routes and flows                                               *)
(* ------------------------------------------------------------------ *)

(* Prefix space: IPv4 ISP prefixes under 100.0.0.0/8..149..., IPv4 DC
   prefixes under 150.0.0.0/8..199...; IPv6 prefixes under 2001:aaa::/32
   (ISP) and 2001:ddd::/32 (DC).  All four blocks are disjoint and
   orderable, which the splitter's ranges rely on. *)

let nth_prefix ?(v6 = false) ~isp n =
  if not v6 then
    let base = if isp then 100 else 150 in
    Prefix.make
      (Ip.v4_of_octets (base + (n / 65536)) (n / 256 mod 256) (n mod 256) 0)
      24
  else
    let block = if isp then "2001:aaa" else "2001:ddd" in
    Prefix.of_string_exn
      (Printf.sprintf "%s:%x:%x::/64" block (n / 65536) (n mod 65536))

(** Generate input routes: each prefix is announced at
    [g_routes_per_prefix] injection points (borders for ISP prefixes, DC
    routers — or borders when there are none — for DC prefixes). *)
let gen_input_routes (p : params) (st : Random.State.t)
    ~(borders_all : (string * int) list) ~(dc_all : string list) :
    Route.t list =
  let n_isp =
    int_of_float (float_of_int p.g_prefixes *. p.g_isp_prefix_fraction)
  in
  (* Announcement patterns: an upstream announces many prefixes over the
     same sessions with the same attributes, so prefixes sharing a pattern
     fall into one equivalence class.  Roughly prefixes/4 patterns yields
     the paper's ~4x EC compression (Â§3.1). *)
  let n_patterns = max 1 (n_isp / 4) in
  let make_pattern _ =
    let copies =
      1 + Random.State.int st (max 1 ((2 * p.g_routes_per_prefix) - 1))
    in
    let bogon = Random.State.int st 100 < 3 in
    List.init copies (fun _ ->
        let border, bi = pick st borders_all in
        let asn = 7000 + (Random.State.int st 12 * 37) in
        let len = 1 + Random.State.int st 3 in
        let as_path =
          if bogon then As_path.of_asns [ asn; 65666; asn + 7 ]
          else As_path.of_asns (List.init len (fun k -> asn + (k * 7)))
        in
        (border, bi, as_path))
  in
  let isp_patterns = Array.init n_patterns make_pattern in
  let dc_patterns =
    Array.init
      (max 1 ((p.g_prefixes - n_isp) / 4))
      (fun _ -> if dc_all = [] then [] else [ pick st dc_all ])
  in
  let is_v6 n = float_of_int (n mod 100) < p.g_v6_fraction *. 100. in
  let routes = ref [] in
  (* per-family sequence counters so prefixes of one family share
     announcement patterns (mixed families would never merge into one
     equivalence class: their prefix lengths differ) *)
  let seq4 = ref 0 and seq6 = ref 0 in
  for n = 0 to p.g_prefixes - 1 do
    let isp = n < n_isp in
    let idx = if isp then n else n - n_isp in
    let v6 = is_v6 n in
    let prefix = nth_prefix ~v6 ~isp idx in
    let fam_seq =
      if v6 then begin incr seq6; !seq6 end
      else begin incr seq4; !seq4 end
    in
    if isp || dc_all = [] then
      let pattern = isp_patterns.(fam_seq mod n_patterns) in
      List.iter
        (fun (border, bi, as_path) ->
          (* the route as collected: post-import-policy, so it already
             carries the region community and local-pref the border set *)
          let ri = int_of_string (String.sub border 1 2) in
          let comm = if isp then isp_comm ri else dc_comm ri in
          routes :=
            Route.make ~device:border ~prefix ~proto:Route.Bgp
              ~source:Route.Ebgp
              ~nexthop:(external_peer_addr bi)
              ~as_path
              ~communities:(Community.Set.of_list [ comm ])
              ~local_pref:(if isp then 200 else 150)
              ~origin:Route.Igp ()
            :: !routes)
        pattern
    else
      let pattern = dc_patterns.(fam_seq mod Array.length dc_patterns) in
      List.iter
        (fun dc ->
          routes :=
            Route.make ~device:dc ~prefix ~proto:Route.Bgp ~source:Route.Ebgp
              ~as_path:As_path.empty ~local_pref:100 ~origin:Route.Igp
              ~communities:(Community.Set.of_list [ Community.make 65000 99 ])
              ()
            :: !routes)
        pattern
  done;
  !routes

(** Generate flows: destinations drawn from the input prefix space,
    ingress at borders (transit) or cores. *)
let gen_flows (p : params) (st : Random.State.t) ~(ingress_pool : string list)
    : Flow.t list =
  let n_isp =
    int_of_float (float_of_int p.g_prefixes *. p.g_isp_prefix_fraction)
  in
  (* NetFlow reports many records towards the same destination (different
     5-tuples, same forwarding): emit bundles of records per (ingress,
     destination) so flow-EC grouping has real duplicates to merge, as in
     production. *)
  let bundle = 5 in
  List.init ((p.g_flows + bundle - 1) / bundle) (fun _ ->
      let isp = Random.State.float st 1.0 < p.g_isp_prefix_fraction in
      let idx =
        if isp then Random.State.int st (max 1 n_isp)
        else Random.State.int st (max 1 (p.g_prefixes - n_isp))
      in
      let global_idx = if isp then idx else idx + n_isp in
      let v6 = float_of_int (global_idx mod 100) < p.g_v6_fraction *. 100. in
      let dst_prefix = nth_prefix ~v6 ~isp idx in
      let dst =
        Ip.add (Prefix.first_addr dst_prefix) (1 + Random.State.int st 250)
      in
      let ingress = pick st ingress_pool in
      List.init bundle (fun _ ->
          let src =
            if v6 then
              Ip.add
                (Ip.of_string_exn "2001:bbb::")
                (Random.State.int st 1_000_000)
            else
              Ip.v4_of_octets
                (1 + Random.State.int st 99)
                (Random.State.int st 256) (Random.State.int st 256)
                (1 + Random.State.int st 250)
          in
          Flow.make ~src ~dst ~ingress
            ~sport:(1024 + Random.State.int st 60000)
            ~dport:(pick st [ 80; 443; 8080; 22; 53 ])
            ~ip_proto:(pick st [ 6; 6; 6; 17 ])
            ~volume:(Random.State.float st 2e6 +. 1e4)
            ~population:p.g_flow_population ()))
  |> List.concat

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

(** Generate the full scenario.  When [reparse] is set (default), every
    device configuration is printed to its vendor dialect and re-parsed,
    so the model entering simulation went through the same parsing path as
    production configs; parse errors are counted in the result. *)
let generate ?(reparse = true) (p : params) : t =
  let st = Random.State.make [| p.g_seed |] in
  let b, regions, cores, borders, rrs, dcs = build_topology p st in
  setup_bgp p st b regions cores borders rrs dcs;
  let borders_all =
    List.concat_map (fun r -> Hashtbl.find borders r) regions
  in
  add_external_subnets b borders_all;
  let borders_indexed = List.mapi (fun i bd -> (bd, i)) borders_all in
  let dc_all = List.concat_map (fun r -> Hashtbl.find dcs r) regions in
  let input_routes =
    gen_input_routes p st ~borders_all:borders_indexed ~dc_all
  in
  let ingress_pool =
    borders_all @ List.concat_map (fun r -> Hashtbl.find cores r) regions
  in
  let flows = gen_flows p st ~ingress_pool in
  (* print + re-parse the configurations *)
  let configs = Builder.configs b in
  let configs, parse_errors =
    if not reparse then (configs, 0)
    else
      Smap.fold
        (fun dev cfg (acc, errs) ->
          let text = Printer.print cfg in
          let cfg', es =
            Printer.parse ~vendor:cfg.Types.dc_vendor ~device:dev text
          in
          (Smap.add dev cfg' acc, errs + List.length es))
        configs (Smap.empty, 0)
  in
  let model = Model.build (Builder.topo b) configs in
  {
    params = p;
    model;
    input_routes;
    flows;
    borders = borders_all;
    dc_routers = dc_all;
    regions;
    parse_errors;
  }

let device_count (t : t) = Topology.num_devices t.model.Model.topo

let stats (t : t) =
  Printf.sprintf
    "devices=%d links=%d input-routes=%d prefixes=%d flows=%d (population %d) \
     config-lines=%d parse-errors=%d"
    (device_count t)
    (Topology.num_links t.model.Model.topo)
    (List.length t.input_routes)
    t.params.g_prefixes (List.length t.flows)
    (List.fold_left (fun n (f : Flow.t) -> n + f.Flow.population) 0 t.flows)
    (Model.total_config_lines t.model)
    t.parse_errors
