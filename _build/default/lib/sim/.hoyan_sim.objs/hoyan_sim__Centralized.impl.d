lib/sim/centralized.ml: Array Hashtbl Hoyan_net Hoyan_proto List Model Prefix Route Route_sim Unix
