lib/sim/route_sim.ml: Ec Hashtbl Hoyan_net Hoyan_proto List Map Model Option Prefix Route String
