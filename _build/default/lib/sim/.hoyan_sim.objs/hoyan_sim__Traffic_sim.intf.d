lib/sim/traffic_sim.mli: Flow Hashtbl Hoyan_net Ip Model Prefix Route Trie
