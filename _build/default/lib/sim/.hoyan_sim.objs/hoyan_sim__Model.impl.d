lib/sim/model.ml: Hashtbl Hoyan_config Hoyan_net Hoyan_proto Hoyan_regex Ip List Map Option Prefix Printf Route String Topology
