lib/sim/model.mli: Hashtbl Hoyan_config Hoyan_net Hoyan_proto Ip Map Route String Topology
