lib/sim/traffic_sim.ml: Buffer Flow Hashtbl Hoyan_config Hoyan_net Hoyan_proto Ip List Map Model Option Prefix Route String Topology Trie
