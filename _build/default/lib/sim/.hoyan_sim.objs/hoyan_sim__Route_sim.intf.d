lib/sim/route_sim.mli: Hoyan_net Hoyan_proto Model Route
