lib/sim/ec.ml: As_path Buffer Community Hashtbl Hoyan_config Hoyan_net List Map Prefix Printf Route String
