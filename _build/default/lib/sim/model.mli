(** The compiled network model.

    The pre-processing "network model building service" (paper §2.2)
    parses all routers' configurations into this model once a day; change
    verification updates it incrementally.  It bundles everything the
    simulators need: address ownership, resolved BGP sessions, the IGP
    view, SR tunnels and the per-device local tables (connected + static
    routes). *)

open Hoyan_net
module Types = Hoyan_config.Types
module Vsb = Hoyan_config.Vsb
module Printer = Hoyan_config.Printer
module Isis = Hoyan_proto.Isis
module Sr = Hoyan_proto.Sr
module Bgp = Hoyan_proto.Bgp
module Smap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type t = {
  topo : Topology.t;
  configs : Types.t Smap.t;
  igp : Isis.t;
  owner_tbl : (Ip.t, string) Hashtbl.t;  (** address -> owning device *)
  net : Bgp.network;
  local_tables : Route.t list Smap.t;
      (** per device: connected + static (+ IS-IS loopback routes when the
          device redistributes IS-IS) *)
  tunnels : Sr.tunnel list Smap.t;
  te_aware : bool;
}

(** The device owning an address (interface address or loopback). *)
val owner : t -> Ip.t -> string option

val config : t -> string -> Types.t option

(** The vendor semantic profile of a device (defaults to vendor A for
    unknown vendors). *)
val vsb_of : Types.t Smap.t -> string -> Vsb.t

(** Compile a model.

    [regex] injects the AS-path regex engine (the diagnosis experiments
    pass the flawed {!Hoyan_regex.Regex.Legacy.matches_str});
    [te_aware = false] reproduces the pre-2023 IS-IS-TE modelling gap.

    Session viability: a link-address peering needs its physical link; a
    loopback peering needs an IGP path. *)
val build :
  ?te_aware:bool ->
  ?regex:(string -> string -> bool) ->
  Topology.t ->
  Types.t Smap.t ->
  t

(** Apply a change plan (topology ops, then per-device command blocks in
    each device's own dialect) and recompile.  The per-device reports
    carry parse and deletion errors — risk signals surfaced by the
    verification layer (Table 6 "incorrect commands"). *)
val apply_change_plan :
  ?te_aware:bool ->
  ?regex:(string -> string -> bool) ->
  t ->
  Hoyan_config.Change_plan.t ->
  t * Hoyan_config.Change_plan.apply_report list

(** Total configuration line count across the model (Table-1 style
    statistics). *)
val total_config_lines : t -> int
