(** The original centralized simulation runner (Figure 1 baseline).

    Original Hoyan ran on a single server with parallelization; at
    WAN+DCN scale it could only simulate 30% of prefixes and failed 40%
    due to memory exhaustion.  This runner reproduces that behaviour with
    a byte-accounted memory model: prefixes are simulated in chunks and a
    chunk fails ("OOM") once the estimated resident footprint exceeds the
    configured cap, after which the run aborts for the remaining
    prefixes. *)

open Hoyan_net

(* Rough per-object footprint estimates (bytes).  The absolute values do
   not matter for the reproduction; the *growth* with prefix count does. *)
let bytes_per_rib_row = 320
let bytes_per_input_route = 400
let bytes_per_adj_entry = 96

type outcome = {
  c_time_s : float; (* wall-clock simulation time *)
  c_total_prefixes : int;
  c_simulated_prefixes : int;
  c_oom_prefixes : int;
  c_skipped_prefixes : int; (* not attempted after the abort *)
  c_peak_bytes : int;
  c_rib : Route.t list; (* RIB rows of the chunks that completed *)
}

let completed_frac o =
  if o.c_total_prefixes = 0 then 1.0
  else float_of_int o.c_simulated_prefixes /. float_of_int o.c_total_prefixes

let oom_frac o =
  if o.c_total_prefixes = 0 then 0.0
  else float_of_int o.c_oom_prefixes /. float_of_int o.c_total_prefixes

(** Group input routes per prefix (routes of one prefix always simulate
    together) and split the prefix list into [chunks] chunks. *)
let chunk_inputs (input_routes : Route.t list) (chunks : int) :
    Route.t list list =
  let by_prefix = Hashtbl.create 1024 in
  let order = ref [] in
  List.iter
    (fun (r : Route.t) ->
      match Hashtbl.find_opt by_prefix r.Route.prefix with
      | Some rs -> Hashtbl.replace by_prefix r.Route.prefix (r :: rs)
      | None ->
          Hashtbl.add by_prefix r.Route.prefix [ r ];
          order := r.Route.prefix :: !order)
    input_routes;
  let prefixes = Array.of_list (List.rev !order) in
  let n = Array.length prefixes in
  let chunks = max 1 (min chunks n) in
  let per = (n + chunks - 1) / chunks in
  List.init chunks (fun i ->
      let lo = i * per and hi = min n ((i + 1) * per) in
      if lo >= hi then []
      else
        List.concat_map
          (fun j -> List.rev (Hashtbl.find by_prefix prefixes.(j)))
          (List.init (hi - lo) (fun k -> lo + k)))
  |> List.filter (fun c -> c <> [])

(** Run the centralized simulation with a memory cap.

    [mem_cap_bytes] models the server's RAM budget for simulation state
    (the paper's server had 791 GB; scale the cap with the scale of the
    workload).  The resident estimate is the cumulative RIB size: the
    centralized design holds *all* routes of *all* routers in one address
    space, which is exactly what broke at WAN+DCN scale. *)
let run ?(chunks = 50) ?(time_budget_s = infinity) ~(mem_cap_bytes : int)
    (model : Model.t) ~(input_routes : Route.t list) () : outcome =
  let t0 = Unix.gettimeofday () in
  let chunked = chunk_inputs input_routes chunks in
  let total_prefixes =
    List.fold_left
      (fun n c ->
        n
        + (List.map (fun (r : Route.t) -> r.Route.prefix) c
          |> List.sort_uniq Prefix.compare |> List.length))
      0 chunked
  in
  (* All inputs are loaded up front in the centralized design. *)
  let persistent =
    ref (List.length input_routes * bytes_per_input_route)
  in
  let peak = ref !persistent in
  let simulated = ref 0 and oom = ref 0 and skipped = ref 0 in
  let rib = ref [] in
  List.iter
    (fun chunk ->
      let chunk_prefixes =
        List.map (fun (r : Route.t) -> r.Route.prefix) chunk
        |> List.sort_uniq Prefix.compare |> List.length
      in
      if Unix.gettimeofday () -. t0 > time_budget_s then
        (* the run deadline passed: the remaining prefixes never complete *)
        skipped := !skipped + chunk_prefixes
      else begin
        let res = Route_sim.run model ~input_routes:chunk () in
        let rows = List.length res.Route_sim.rib in
        let adj = res.Route_sim.bgp_stats.Hoyan_proto.Bgp.st_messages in
        let transient = (rows * bytes_per_rib_row) + (adj * bytes_per_adj_entry) in
        peak := max !peak (!persistent + transient);
        if !persistent + transient > mem_cap_bytes then
          (* the allocation attempt fails; the transient state is
             reclaimed, so later (smaller) chunks may still succeed *)
          oom := !oom + chunk_prefixes
        else begin
          simulated := !simulated + chunk_prefixes;
          persistent := !persistent + (rows * bytes_per_rib_row);
          rib := List.rev_append res.Route_sim.rib !rib
        end
      end)
    chunked;
  {
    c_time_s = Unix.gettimeofday () -. t0;
    c_total_prefixes = total_prefixes;
    c_simulated_prefixes = !simulated;
    c_oom_prefixes = !oom;
    c_skipped_prefixes = !skipped;
    c_peak_bytes = !peak;
    c_rib = !rib;
  }
