(** Vendor-specific behaviours (VSBs).

    Table 5 of the paper lists 16 behaviours that different vendors
    interpret differently.  We encode each as a dimension of a vendor
    {e semantic profile}; the simulator consults the profile of the route's
    device at every decision point.  The diagnosis framework's differential
    tester ({!Hoyan_diag.Vsb_test}) re-detects all 16 dimensions by
    simulating the same scenario under two profiles and diffing RIBs. *)

type t = {
  vendor : string;
  (* --- policy application --- *)
  missing_policy_accepts : bool;
      (** "missing route policy": accept updates when no policy is
          configured on the neighbor. *)
  undefined_policy_accepts : bool;
      (** "undefined route policy": accept updates when the applied policy
          name has no definition. *)
  default_policy_action_permit : bool;
      (** "default route policy": accept an update matching no explicit
          node of the policy. *)
  undefined_filter_matches : bool;
      (** "undefined policy filter": a match on an undefined
          prefix/community list is treated as always-matching (or never). *)
  no_explicit_action_permits : bool;
      (** "no explicit permit/deny": action of a matching node that carries
          neither permit nor deny. *)
  (* --- attribute defaults --- *)
  default_pref_ebgp : int;
  default_pref_ibgp : int;
      (** "default BGP preference": admin-distance defaults per vendor. *)
  weight_after_redistribution : int option;
      (** "weight after redistribution": default weight stamped on routes
          redistributed into BGP ([None] = leave 0). *)
  (* --- AS-path handling --- *)
  adding_own_asn : bool;
      (** "adding own ASN": own ASN prepended even after a policy
          overwrites the AS path. *)
  aggregate_common_prefix : bool;
      (** "common AS path prefix": aggregation without AS-set carries the
          common prefix of the component paths (vs an empty path). *)
  (* --- VRF leaking --- *)
  vrf_export_on_global_leak : bool;
      (** "VRF export policy": export policy also applied to global iBGP
          routes leaked into VPNv4. *)
  releak_routes : bool;
      (** "re-leaking routes": routes leaked into global VPNv4 from a VRF
          may be re-leaked into another VRF based on RT. *)
  (* --- connected /32 handling --- *)
  redistribute_host32 : bool;
      (** "redistributing /32 route": the extra /32 produced by a non-/32
          direct interface route can be redistributed. *)
  send_host32_to_peer : bool;
      (** "sending /32 route to peer". *)
  (* --- SR interaction --- *)
  sr_igp_cost_zero : bool;
      (** "IGP cost for SR": IGP cost treated as 0 when the destination is
          reached via an SR tunnel (the Figure-9 root cause). *)
  (* --- configuration interpretation --- *)
  inherit_subviews : bool;
      (** "inheriting views": configuration options inherited in
          sub-views. *)
  isolation_by_policy : bool;
      (** "device isolation": maintenance isolation expressed through
          policies (vs a dedicated isolate knob). *)
  (* --- prefix-list family quirk (Figure 10b) --- *)
  ip_prefix_permits_other_family : bool;
      (** With the vendor of §6.1's second case, an [ip-prefix] match only
          checks IPv4 prefixes and {e permits all IPv6 prefixes} by
          default. *)
}

(** Vendor A: modelled after an IOS-like implementation. *)
let vendor_a =
  {
    vendor = "vendorA";
    missing_policy_accepts = true;
    undefined_policy_accepts = true;
    default_policy_action_permit = false;
    undefined_filter_matches = true;
    no_explicit_action_permits = true;
    default_pref_ebgp = 20;
    default_pref_ibgp = 200;
    weight_after_redistribution = Some 32768;
    adding_own_asn = true;
    aggregate_common_prefix = false;
    vrf_export_on_global_leak = false;
    releak_routes = false;
    redistribute_host32 = true;
    send_host32_to_peer = false;
    sr_igp_cost_zero = true;
    inherit_subviews = false;
    isolation_by_policy = true;
    ip_prefix_permits_other_family = false;
  }

(** Vendor B: modelled after a VRP-like implementation. *)
let vendor_b =
  {
    vendor = "vendorB";
    missing_policy_accepts = false;
    undefined_policy_accepts = false;
    default_policy_action_permit = true;
    undefined_filter_matches = false;
    no_explicit_action_permits = false;
    default_pref_ebgp = 255;
    default_pref_ibgp = 255;
    weight_after_redistribution = None;
    adding_own_asn = false;
    aggregate_common_prefix = true;
    vrf_export_on_global_leak = true;
    releak_routes = true;
    redistribute_host32 = false;
    send_host32_to_peer = true;
    sr_igp_cost_zero = false;
    inherit_subviews = true;
    isolation_by_policy = false;
    ip_prefix_permits_other_family = true;
  }

let builtin_profiles = [ vendor_a; vendor_b ]

(* Registry for synthetic profiles used by the differential-testing
   harness (per-dimension flipped profiles). *)
let registry : t list ref = ref []

let register (p : t) = registry := p :: !registry

let profiles = builtin_profiles

let of_vendor name =
  match List.find_opt (fun p -> String.equal p.vendor name) !registry with
  | Some p -> Some p
  | None -> List.find_opt (fun p -> String.equal p.vendor name) builtin_profiles

let of_vendor_exn name =
  match of_vendor name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Vsb.of_vendor_exn: %s" name)

(** The 16 Table-5 dimensions as (name, exists-in-profile-difference)
    pairs, used by the differential-testing bench for Table 5. *)
let dimension_names =
  [
    "missing route policy";
    "undefined route policy";
    "default route policy";
    "undefined policy filter";
    "no explicit permit/deny";
    "default BGP preference";
    "weight after redistribution";
    "adding own ASN";
    "common AS path prefix";
    "VRF export policy";
    "re-leaking routes";
    "redistributing /32 route";
    "sending /32 route to peer";
    "IGP cost for SR";
    "inheriting views";
    "device isolation";
  ]

(** Project a profile onto a named dimension (string rendering), used to
    check that two profiles actually differ in that dimension. *)
let dimension_value t = function
  | "missing route policy" -> string_of_bool t.missing_policy_accepts
  | "undefined route policy" -> string_of_bool t.undefined_policy_accepts
  | "default route policy" -> string_of_bool t.default_policy_action_permit
  | "undefined policy filter" -> string_of_bool t.undefined_filter_matches
  | "no explicit permit/deny" -> string_of_bool t.no_explicit_action_permits
  | "default BGP preference" ->
      Printf.sprintf "%d/%d" t.default_pref_ebgp t.default_pref_ibgp
  | "weight after redistribution" -> (
      match t.weight_after_redistribution with
      | Some w -> string_of_int w
      | None -> "none")
  | "adding own ASN" -> string_of_bool t.adding_own_asn
  | "common AS path prefix" -> string_of_bool t.aggregate_common_prefix
  | "VRF export policy" -> string_of_bool t.vrf_export_on_global_leak
  | "re-leaking routes" -> string_of_bool t.releak_routes
  | "redistributing /32 route" -> string_of_bool t.redistribute_host32
  | "sending /32 route to peer" -> string_of_bool t.send_host32_to_peer
  | "IGP cost for SR" -> string_of_bool t.sr_igp_cost_zero
  | "inheriting views" -> string_of_bool t.inherit_subviews
  | "device isolation" -> string_of_bool t.isolation_by_policy
  | dim -> invalid_arg (Printf.sprintf "Vsb.dimension_value: %s" dim)


(** [flip t dim] returns a copy of [t] differing from it in exactly the
    named Table-5 dimension (booleans negated, numeric defaults changed),
    renamed so it can be registered for differential testing. *)
let flip (t : t) (dim : string) : t =
  let t' =
    match dim with
    | "missing route policy" ->
        { t with missing_policy_accepts = not t.missing_policy_accepts }
    | "undefined route policy" ->
        { t with undefined_policy_accepts = not t.undefined_policy_accepts }
    | "default route policy" ->
        { t with
          default_policy_action_permit = not t.default_policy_action_permit }
    | "undefined policy filter" ->
        { t with undefined_filter_matches = not t.undefined_filter_matches }
    | "no explicit permit/deny" ->
        { t with no_explicit_action_permits = not t.no_explicit_action_permits }
    | "default BGP preference" ->
        { t with
          default_pref_ebgp = t.default_pref_ebgp + 100;
          default_pref_ibgp = t.default_pref_ibgp + 50 }
    | "weight after redistribution" ->
        { t with
          weight_after_redistribution =
            (match t.weight_after_redistribution with
            | Some _ -> None
            | None -> Some 32768) }
    | "adding own ASN" -> { t with adding_own_asn = not t.adding_own_asn }
    | "common AS path prefix" ->
        { t with aggregate_common_prefix = not t.aggregate_common_prefix }
    | "VRF export policy" ->
        { t with vrf_export_on_global_leak = not t.vrf_export_on_global_leak }
    | "re-leaking routes" -> { t with releak_routes = not t.releak_routes }
    | "redistributing /32 route" ->
        { t with redistribute_host32 = not t.redistribute_host32 }
    | "sending /32 route to peer" ->
        { t with send_host32_to_peer = not t.send_host32_to_peer }
    | "IGP cost for SR" -> { t with sr_igp_cost_zero = not t.sr_igp_cost_zero }
    | "inheriting views" -> { t with inherit_subviews = not t.inherit_subviews }
    | "device isolation" ->
        { t with isolation_by_policy = not t.isolation_by_policy }
    | d -> invalid_arg (Printf.sprintf "Vsb.flip: unknown dimension %s" d)
  in
  { t' with vendor = t.vendor ^ "!" ^ dim }
