lib/config/parser_a.ml: Community Hoyan_net Int Ip Lexutil List Option Prefix Printf Route String Types
