lib/config/vsb.ml: List Printf String
