lib/config/change_plan.ml: Hoyan_net Int Ip Lexutil List Prefix Printer Printf Route Stdlib String Topology Types
