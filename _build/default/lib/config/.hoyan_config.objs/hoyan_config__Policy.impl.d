lib/config/policy.ml: As_path Community Hoyan_net Hoyan_regex List Prefix Route Types Vsb
