lib/config/lexutil.ml: List Printf String
