lib/config/printer.ml: Buffer Community Hoyan_net Ip Lexutil List Parser_a Parser_b Prefix Printf Route String Types
