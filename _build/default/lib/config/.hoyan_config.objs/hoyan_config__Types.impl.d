lib/config/types.ml: Community Hoyan_net Ip List Map Option Prefix Route String
