(** Shared tokenization helpers for the vendor configuration parsers.

    Vendor configurations are line-oriented: a line starting with a
    non-blank character opens a (possibly nested) stanza and indented lines
    belong to the enclosing stanza.  Comment lines start with ['!']
    (vendor A) or ['#'] (vendor B). *)

type line = { lnum : int; indent : int; tokens : string list; raw : string }

let tokenize_line raw =
  String.split_on_char ' ' raw
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let indent_of raw =
  let rec go i =
    if i < String.length raw && (raw.[i] = ' ' || raw.[i] = '\t') then go (i + 1)
    else i
  in
  go 0

(** Split config text into logical lines, dropping blank and comment
    lines.  [comment] is the comment leader character. *)
let lines_of_string ~(comment : char) (text : string) : line list =
  String.split_on_char '\n' text
  |> List.mapi (fun i raw -> (i + 1, raw))
  |> List.filter_map (fun (lnum, raw) ->
         let trimmed = String.trim raw in
         if trimmed = "" || trimmed.[0] = comment then None
         else
           Some
             {
               lnum;
               indent = indent_of raw;
               tokens = tokenize_line trimmed;
               raw = trimmed;
             })

type error = { err_line : int; err_msg : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.err_line e.err_msg

(** Group a flat line list into (header, body) stanzas: a stanza starts at
    an unindented line and contains all following more-indented lines. *)
let stanzas (lines : line list) : (line * line list) list =
  let rec go acc current body = function
    | [] -> (
        match current with
        | Some h -> List.rev ((h, List.rev body) :: acc)
        | None -> List.rev acc)
    | l :: rest ->
        if l.indent = 0 then
          let acc =
            match current with
            | Some h -> (h, List.rev body) :: acc
            | None -> acc
          in
          go acc (Some l) [] rest
        else (
          match current with
          | Some _ -> go acc current (l :: body) rest
          | None -> go acc None body rest (* stray indented line: ignore *))
  in
  go [] None [] lines

let int_opt = int_of_string_opt

let float_opt = float_of_string_opt
