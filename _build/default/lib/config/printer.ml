(** Configuration printers: render the vendor-neutral model back to each
    vendor's dialect.

    The synthetic-WAN generator builds {!Types.t} values and prints them
    with these printers, so that every end-to-end run genuinely exercises
    the dialect parsers on thousands of configuration lines per device —
    the same path production Hoyan takes from the configuration monitoring
    system. *)

open Hoyan_net

let buf_add = Buffer.add_string

let action_str = Types.action_to_string

let proto_str = function
  | Route.Bgp -> "bgp"
  | Route.Isis -> "isis"
  | Route.Static -> "static"
  | Route.Direct -> "direct"
  | Route.Aggregate -> "aggregate"
  | Route.Sr_policy -> "sr"

let comms_str cs = String.concat " " (List.map Community.to_string cs)

module A = struct
  let match_clause = function
    | Types.Match_prefix_list n -> Printf.sprintf "match ip prefix-list %s" n
    | Types.Match_community_list n -> Printf.sprintf "match community %s" n
    | Types.Match_aspath_filter n -> Printf.sprintf "match as-path %s" n
    | Types.Match_nexthop p ->
        Printf.sprintf "match ip next-hop %s" (Prefix.to_string p)
    | Types.Match_tag t -> Printf.sprintf "match tag %d" t
    | Types.Match_protocol p -> Printf.sprintf "match protocol %s" (proto_str p)
    | Types.Match_family Ip.Ipv4 -> "match family ipv4"
    | Types.Match_family Ip.Ipv6 -> "match family ipv6"

  let set_clause = function
    | Types.Set_local_pref n -> Printf.sprintf "set local-preference %d" n
    | Types.Set_med n -> Printf.sprintf "set metric %d" n
    | Types.Set_weight n -> Printf.sprintf "set weight %d" n
    | Types.Set_preference n -> Printf.sprintf "set preference %d" n
    | Types.Set_tag n -> Printf.sprintf "set tag %d" n
    | Types.Set_nexthop ip -> Printf.sprintf "set ip next-hop %s" (Ip.to_string ip)
    | Types.Set_communities (Types.Comm_replace, cs) ->
        Printf.sprintf "set community %s" (comms_str cs)
    | Types.Set_communities (Types.Comm_add, cs) ->
        Printf.sprintf "set community %s additive" (comms_str cs)
    | Types.Set_communities (Types.Comm_remove, cs) ->
        Printf.sprintf "set community delete %s" (comms_str cs)
    | Types.Set_aspath_prepend (asn, n) ->
        Printf.sprintf "set as-path prepend %d %d" asn n
    | Types.Set_aspath_overwrite asns ->
        Printf.sprintf "set as-path overwrite %s"
          (String.concat " " (List.map string_of_int asns))

  let print (cfg : Types.t) : string =
    let b = Buffer.create 4096 in
    let line fmt = Printf.ksprintf (fun s -> buf_add b (s ^ "\n")) fmt in
    line "hostname %s" cfg.Types.dc_device;
    line "!";
    (* interfaces *)
    List.iter
      (fun (i : Types.iface_config) ->
        line "interface %s" i.Types.if_name;
        (match i.Types.if_addr with
        | Some a ->
            let kw = match Ip.family a with Ip.Ipv4 -> "ip" | Ip.Ipv6 -> "ipv6" in
            line " %s address %s/%d" kw (Ip.to_string a) i.Types.if_plen
        | None -> ());
        line " bandwidth %.0f" i.Types.if_bandwidth;
        (match i.Types.if_acl_in with
        | Some acl -> line " ip access-group %s in" acl
        | None -> ());
        (match
           List.find_opt
             (fun ii -> String.equal ii.Types.ii_name i.Types.if_name)
             cfg.Types.dc_isis.Types.isis_ifaces
         with
        | Some ii ->
            line " isis cost %d" ii.Types.ii_cost;
            if ii.Types.ii_te then line " isis traffic-eng"
        | None -> ());
        line "!")
      (List.rev cfg.Types.dc_ifaces);
    (* prefix lists *)
    Types.Smap.iter
      (fun name pl ->
        let kw =
          match pl.Types.pl_family with Ip.Ipv4 -> "ip" | Ip.Ipv6 -> "ipv6"
        in
        List.iter
          (fun (e : Types.prefix_entry) ->
            let opts =
              (match e.Types.pe_ge with
              | Some g -> Printf.sprintf " ge %d" g
              | None -> "")
              ^
              match e.Types.pe_le with
              | Some l -> Printf.sprintf " le %d" l
              | None -> ""
            in
            line "%s prefix-list %s seq %d %s %s%s" kw name e.Types.pe_seq
              (action_str e.Types.pe_action)
              (Prefix.to_string e.Types.pe_prefix)
              opts)
          pl.Types.pl_entries)
      cfg.Types.dc_prefix_lists;
    (* community lists *)
    Types.Smap.iter
      (fun name cl ->
        List.iter
          (fun (e : Types.community_entry) ->
            line "ip community-list %s seq %d %s %s" name e.Types.ce_seq
              (action_str e.Types.ce_action)
              (comms_str e.Types.ce_members))
          cl.Types.cl_entries)
      cfg.Types.dc_community_lists;
    (* as-path filters *)
    Types.Smap.iter
      (fun name af ->
        List.iter
          (fun (e : Types.aspath_entry) ->
            line "ip as-path access-list %s seq %d %s %s" name e.Types.ae_seq
              (action_str e.Types.ae_action)
              e.Types.ae_regex)
          af.Types.af_entries)
      cfg.Types.dc_aspath_filters;
    (* route maps *)
    Types.Smap.iter
      (fun name rp ->
        List.iter
          (fun (n : Types.policy_node) ->
            (match n.Types.pn_action with
            | Some a ->
                line "route-map %s %s %d" name (action_str a) n.Types.pn_seq
            | None -> line "route-map %s %d" name n.Types.pn_seq);
            List.iter (fun m -> line " %s" (match_clause m)) n.Types.pn_matches;
            List.iter (fun s -> line " %s" (set_clause s)) n.Types.pn_sets;
            if n.Types.pn_goto_next then line " continue";
            line "!")
          rp.Types.rp_nodes)
      cfg.Types.dc_policies;
    (* vrfs *)
    List.iter
      (fun (vd : Types.vrf_def) ->
        line "vrf definition %s" vd.Types.vd_name;
        if vd.Types.vd_rd <> "" then line " rd %s" vd.Types.vd_rd;
        List.iter (fun rt -> line " route-target import %s" rt)
          (List.rev vd.Types.vd_import_rts);
        List.iter (fun rt -> line " route-target export %s" rt)
          (List.rev vd.Types.vd_export_rts);
        (match vd.Types.vd_export_policy with
        | Some rm -> line " export map %s" rm
        | None -> ());
        line "!")
      (List.rev cfg.Types.dc_bgp.Types.bgp_vrfs);
    (* isis *)
    if cfg.Types.dc_isis.Types.isis_enabled then begin
      line "router isis";
      if cfg.Types.dc_isis.Types.isis_net <> "" then
        line " net %s" cfg.Types.dc_isis.Types.isis_net;
      (match cfg.Types.dc_isis.Types.isis_default_cost with
      | Some c -> line " default-cost %d" c
      | None -> ());
      if cfg.Types.dc_isis.Types.isis_te then line " traffic-eng level-2";
      line "!"
    end;
    if cfg.Types.dc_isolated then line "isolate";
    (* bgp *)
    let bgp = cfg.Types.dc_bgp in
    if bgp.Types.bgp_asn <> 0 then begin
      line "router bgp %d" bgp.Types.bgp_asn;
      (match bgp.Types.bgp_router_id with
      | Some ip -> line " bgp router-id %s" (Ip.to_string ip)
      | None -> ());
      List.iter
        (fun (p, vrf) ->
          if String.equal vrf Route.default_vrf then
            line " network %s" (Prefix.to_string p)
          else line " network %s vrf %s" (Prefix.to_string p) vrf)
        (List.rev bgp.Types.bgp_networks);
      List.iter
        (fun (ag : Types.aggregate) ->
          line " aggregate-address %s%s%s%s"
            (Prefix.to_string ag.Types.ag_prefix)
            (if ag.Types.ag_as_set then " as-set" else "")
            (if ag.Types.ag_summary_only then " summary-only" else "")
            (if String.equal ag.Types.ag_vrf Route.default_vrf then ""
             else " vrf " ^ ag.Types.ag_vrf))
        (List.rev bgp.Types.bgp_aggregates);
      List.iter
        (fun (p, rm) ->
          match rm with
          | Some rm -> line " redistribute %s route-map %s" (proto_str p) rm
          | None -> line " redistribute %s" (proto_str p))
        (List.rev bgp.Types.bgp_redistribute);
      List.iter
        (fun (nb : Types.neighbor) ->
          let ip = Ip.to_string nb.Types.nb_addr in
          line " neighbor %s remote-as %d" ip nb.Types.nb_remote_asn;
          (match nb.Types.nb_import with
          | Some rm -> line " neighbor %s route-map %s in" ip rm
          | None -> ());
          (match nb.Types.nb_export with
          | Some rm -> line " neighbor %s route-map %s out" ip rm
          | None -> ());
          if nb.Types.nb_next_hop_self then line " neighbor %s next-hop-self" ip;
          if nb.Types.nb_rr_client then
            line " neighbor %s route-reflector-client" ip;
          if nb.Types.nb_add_paths > 0 then
            line " neighbor %s additional-paths %d" ip nb.Types.nb_add_paths;
          if not (String.equal nb.Types.nb_vrf Route.default_vrf) then
            line " neighbor %s vrf %s" ip nb.Types.nb_vrf)
        (List.rev bgp.Types.bgp_neighbors);
      line "!"
    end;
    (* statics *)
    List.iter
      (fun (s : Types.static_route) ->
        let vrf =
          if String.equal s.Types.st_vrf Route.default_vrf then ""
          else Printf.sprintf "vrf %s " s.Types.st_vrf
        in
        let target =
          match (s.Types.st_nexthop, s.Types.st_iface) with
          | Some nh, _ -> Ip.to_string nh
          | None, Some i -> i
          | None, None -> "Null0"
        in
        line "ip route %s%s %s preference %d tag %d" vrf
          (Prefix.to_string s.Types.st_prefix)
          target s.Types.st_preference s.Types.st_tag)
      (List.rev cfg.Types.dc_statics);
    (* SR policies *)
    List.iter
      (fun (sp : Types.sr_policy) ->
        line "segment-routing policy %s color %d end-point %s" sp.Types.sp_name
          sp.Types.sp_color
          (Ip.to_string sp.Types.sp_endpoint);
        if sp.Types.sp_segments = [] then
          line " candidate-path preference %d" sp.Types.sp_preference
        else
          line " candidate-path preference %d explicit segment-list %s"
            sp.Types.sp_preference
            (String.concat " " sp.Types.sp_segments);
        line "!")
      (List.rev cfg.Types.dc_sr_policies);
    (* ACLs *)
    Types.Smap.iter
      (fun name acl ->
        List.iter
          (fun (e : Types.acl_entry) ->
            let proto =
              match e.Types.ace_proto with
              | Some 6 -> "tcp"
              | Some 17 -> "udp"
              | Some p -> string_of_int p
              | None -> "any"
            in
            let pfx = function
              | Some p -> Prefix.to_string p
              | None -> "any"
            in
            let port =
              match e.Types.ace_dport with
              | Some (lo, hi) when lo = hi -> Printf.sprintf " eq %d" lo
              | Some (lo, hi) -> Printf.sprintf " range %d %d" lo hi
              | None -> ""
            in
            line "access-list %s seq %d %s %s %s %s%s" name e.Types.ace_seq
              (action_str e.Types.ace_action)
              proto
              (pfx e.Types.ace_src)
              (pfx e.Types.ace_dst)
              port)
          acl.Types.acl_entries)
      cfg.Types.dc_acls;
    (* PBR *)
    List.iter
      (fun (p : Types.pbr_rule) ->
        line "pbr interface %s acl %s next-hop %s" p.Types.pbr_iface
          p.Types.pbr_acl
          (Ip.to_string p.Types.pbr_nexthop))
      (List.rev cfg.Types.dc_pbr);
    Buffer.contents b
end

module B = struct
  let if_match = function
    | Types.Match_prefix_list n -> Printf.sprintf "if-match ip-prefix %s" n
    | Types.Match_community_list n ->
        Printf.sprintf "if-match community-filter %s" n
    | Types.Match_aspath_filter n ->
        Printf.sprintf "if-match as-path-filter %s" n
    | Types.Match_nexthop p ->
        Printf.sprintf "if-match next-hop %s" (Prefix.to_string p)
    | Types.Match_tag t -> Printf.sprintf "if-match tag %d" t
    | Types.Match_protocol p ->
        Printf.sprintf "if-match protocol %s" (proto_str p)
    | Types.Match_family _ ->
        (* vendor B has no family match; emitted as a comment-like no-op *)
        "if-match protocol bgp"

  let apply = function
    | Types.Set_local_pref n -> Printf.sprintf "apply local-preference %d" n
    | Types.Set_med n -> Printf.sprintf "apply cost %d" n
    | Types.Set_weight n -> Printf.sprintf "apply preferred-value %d" n
    | Types.Set_preference n -> Printf.sprintf "apply preference %d" n
    | Types.Set_tag n -> Printf.sprintf "apply tag %d" n
    | Types.Set_nexthop ip ->
        Printf.sprintf "apply ip-address next-hop %s" (Ip.to_string ip)
    | Types.Set_communities (Types.Comm_replace, cs) ->
        Printf.sprintf "apply community %s" (comms_str cs)
    | Types.Set_communities (Types.Comm_add, cs) ->
        Printf.sprintf "apply community %s additive" (comms_str cs)
    | Types.Set_communities (Types.Comm_remove, cs) ->
        Printf.sprintf "apply community-delete %s" (comms_str cs)
    | Types.Set_aspath_prepend (asn, n) ->
        Printf.sprintf "apply as-path %d %d additive" asn n
    | Types.Set_aspath_overwrite asns ->
        Printf.sprintf "apply as-path %s overwrite"
          (String.concat " " (List.map string_of_int asns))

  let print (cfg : Types.t) : string =
    let b = Buffer.create 4096 in
    let line fmt = Printf.ksprintf (fun s -> buf_add b (s ^ "\n")) fmt in
    line "sysname %s" cfg.Types.dc_device;
    line "#";
    List.iter
      (fun (i : Types.iface_config) ->
        line "interface %s" i.Types.if_name;
        (match i.Types.if_addr with
        | Some a ->
            let kw = match Ip.family a with Ip.Ipv4 -> "ip" | Ip.Ipv6 -> "ipv6" in
            line " %s address %s %d" kw (Ip.to_string a) i.Types.if_plen
        | None -> ());
        line " bandwidth %.0f" i.Types.if_bandwidth;
        (match i.Types.if_acl_in with
        | Some acl -> line " traffic-filter inbound acl %s" acl
        | None -> ());
        (match
           List.find_opt
             (fun ii -> String.equal ii.Types.ii_name i.Types.if_name)
             cfg.Types.dc_isis.Types.isis_ifaces
         with
        | Some ii ->
            line " isis enable 1";
            line " isis cost %d" ii.Types.ii_cost;
            if ii.Types.ii_te then line " isis traffic-eng"
        | None -> ());
        line "#")
      (List.rev cfg.Types.dc_ifaces);
    Types.Smap.iter
      (fun name pl ->
        let kw =
          match pl.Types.pl_family with
          | Ip.Ipv4 -> "ip-prefix"
          | Ip.Ipv6 -> "ipv6-prefix"
        in
        List.iter
          (fun (e : Types.prefix_entry) ->
            let opts =
              (match e.Types.pe_ge with
              | Some g -> Printf.sprintf " greater-equal %d" g
              | None -> "")
              ^
              match e.Types.pe_le with
              | Some l -> Printf.sprintf " less-equal %d" l
              | None -> ""
            in
            line "ip %s %s index %d %s %s %d%s" kw name e.Types.pe_seq
              (action_str e.Types.pe_action)
              (Ip.to_string (Prefix.ip e.Types.pe_prefix))
              (Prefix.len e.Types.pe_prefix)
              opts)
          pl.Types.pl_entries)
      cfg.Types.dc_prefix_lists;
    Types.Smap.iter
      (fun name cl ->
        List.iter
          (fun (e : Types.community_entry) ->
            line "ip community-filter %s index %d %s %s" name e.Types.ce_seq
              (action_str e.Types.ce_action)
              (comms_str e.Types.ce_members))
          cl.Types.cl_entries)
      cfg.Types.dc_community_lists;
    Types.Smap.iter
      (fun name af ->
        List.iter
          (fun (e : Types.aspath_entry) ->
            line "ip as-path-filter %s index %d %s %s" name e.Types.ae_seq
              (action_str e.Types.ae_action)
              e.Types.ae_regex)
          af.Types.af_entries)
      cfg.Types.dc_aspath_filters;
    Types.Smap.iter
      (fun name rp ->
        List.iter
          (fun (n : Types.policy_node) ->
            (match n.Types.pn_action with
            | Some a ->
                line "route-policy %s %s node %d" name (action_str a)
                  n.Types.pn_seq
            | None -> line "route-policy %s node %d" name n.Types.pn_seq);
            List.iter (fun m -> line " %s" (if_match m)) n.Types.pn_matches;
            List.iter (fun s -> line " %s" (apply s)) n.Types.pn_sets;
            if n.Types.pn_goto_next then line " goto next-node";
            line "#")
          rp.Types.rp_nodes)
      cfg.Types.dc_policies;
    List.iter
      (fun (vd : Types.vrf_def) ->
        line "ip vpn-instance %s" vd.Types.vd_name;
        if vd.Types.vd_rd <> "" then
          line " route-distinguisher %s" vd.Types.vd_rd;
        List.iter
          (fun rt -> line " vpn-target %s import-extcommunity" rt)
          (List.rev vd.Types.vd_import_rts);
        List.iter
          (fun rt -> line " vpn-target %s export-extcommunity" rt)
          (List.rev vd.Types.vd_export_rts);
        (match vd.Types.vd_export_policy with
        | Some rp -> line " export route-policy %s" rp
        | None -> ());
        line "#")
      (List.rev cfg.Types.dc_bgp.Types.bgp_vrfs);
    if cfg.Types.dc_isis.Types.isis_enabled then begin
      line "isis 1";
      if cfg.Types.dc_isis.Types.isis_net <> "" then
        line " network-entity %s" cfg.Types.dc_isis.Types.isis_net;
      (match cfg.Types.dc_isis.Types.isis_default_cost with
      | Some c -> line " circuit-cost %d" c
      | None -> ());
      if cfg.Types.dc_isis.Types.isis_te then line " traffic-eng";
      line "#"
    end;
    if cfg.Types.dc_isolated then line "isolate enable";
    let bgp = cfg.Types.dc_bgp in
    if bgp.Types.bgp_asn <> 0 then begin
      line "bgp %d" bgp.Types.bgp_asn;
      (match bgp.Types.bgp_router_id with
      | Some ip -> line " router-id %s" (Ip.to_string ip)
      | None -> ());
      List.iter
        (fun (p, vrf) ->
          if String.equal vrf Route.default_vrf then
            line " network %s %d" (Ip.to_string (Prefix.ip p)) (Prefix.len p)
          else
            line " network %s %d vpn-instance %s"
              (Ip.to_string (Prefix.ip p))
              (Prefix.len p) vrf)
        (List.rev bgp.Types.bgp_networks);
      List.iter
        (fun (ag : Types.aggregate) ->
          line " aggregate %s %d%s%s%s"
            (Ip.to_string (Prefix.ip ag.Types.ag_prefix))
            (Prefix.len ag.Types.ag_prefix)
            (if ag.Types.ag_as_set then " as-set" else "")
            (if ag.Types.ag_summary_only then " detail-suppressed" else "")
            (if String.equal ag.Types.ag_vrf Route.default_vrf then ""
             else " vpn-instance " ^ ag.Types.ag_vrf))
        (List.rev bgp.Types.bgp_aggregates);
      List.iter
        (fun (p, rp) ->
          match rp with
          | Some rp -> line " import-route %s route-policy %s" (proto_str p) rp
          | None -> line " import-route %s" (proto_str p))
        (List.rev bgp.Types.bgp_redistribute);
      List.iter
        (fun (nb : Types.neighbor) ->
          let ip = Ip.to_string nb.Types.nb_addr in
          line " peer %s as-number %d" ip nb.Types.nb_remote_asn;
          (match nb.Types.nb_import with
          | Some rp -> line " peer %s route-policy %s import" ip rp
          | None -> ());
          (match nb.Types.nb_export with
          | Some rp -> line " peer %s route-policy %s export" ip rp
          | None -> ());
          if nb.Types.nb_next_hop_self then line " peer %s next-hop-local" ip;
          if nb.Types.nb_rr_client then line " peer %s reflect-client" ip;
          if nb.Types.nb_add_paths > 0 then
            line " peer %s additional-paths %d" ip nb.Types.nb_add_paths;
          if not (String.equal nb.Types.nb_vrf Route.default_vrf) then
            line " peer %s vpn-instance %s" ip nb.Types.nb_vrf)
        (List.rev bgp.Types.bgp_neighbors);
      line "#"
    end;
    List.iter
      (fun (s : Types.static_route) ->
        let vrf =
          if String.equal s.Types.st_vrf Route.default_vrf then ""
          else Printf.sprintf "vpn-instance %s " s.Types.st_vrf
        in
        let target =
          match (s.Types.st_nexthop, s.Types.st_iface) with
          | Some nh, _ -> Ip.to_string nh
          | None, Some i -> i
          | None, None -> "NULL0"
        in
        line "ip route-static %s%s %d %s preference %d tag %d" vrf
          (Ip.to_string (Prefix.ip s.Types.st_prefix))
          (Prefix.len s.Types.st_prefix)
          target s.Types.st_preference s.Types.st_tag)
      (List.rev cfg.Types.dc_statics);
    List.iter
      (fun (sp : Types.sr_policy) ->
        line "sr-policy %s endpoint %s color %d" sp.Types.sp_name
          (Ip.to_string sp.Types.sp_endpoint)
          sp.Types.sp_color;
        line " preference %d" sp.Types.sp_preference;
        if sp.Types.sp_segments <> [] then
          line " segment-list %s" (String.concat " " sp.Types.sp_segments);
        line "#")
      (List.rev cfg.Types.dc_sr_policies);
    Types.Smap.iter
      (fun name acl ->
        line "acl name %s" name;
        List.iter
          (fun (e : Types.acl_entry) ->
            let proto =
              match e.Types.ace_proto with
              | Some 6 -> " tcp"
              | Some 17 -> " udp"
              | Some p -> Printf.sprintf " %d" p
              | None -> ""
            in
            let src =
              match e.Types.ace_src with
              | Some p -> " source " ^ Prefix.to_string p
              | None -> ""
            in
            let dst =
              match e.Types.ace_dst with
              | Some p -> " destination " ^ Prefix.to_string p
              | None -> ""
            in
            let port =
              match e.Types.ace_dport with
              | Some (lo, _) -> Printf.sprintf " destination-port eq %d" lo
              | None -> ""
            in
            line " rule %d %s%s%s%s%s" e.Types.ace_seq
              (action_str e.Types.ace_action)
              proto src dst port)
          acl.Types.acl_entries;
        line "#")
      cfg.Types.dc_acls;
    List.iter
      (fun (p : Types.pbr_rule) ->
        line "traffic-policy interface %s acl %s redirect next-hop %s"
          p.Types.pbr_iface p.Types.pbr_acl
          (Ip.to_string p.Types.pbr_nexthop))
      (List.rev cfg.Types.dc_pbr);
    Buffer.contents b
end

(** Render a configuration in its own vendor's dialect. *)
let print (cfg : Types.t) : string =
  match cfg.Types.dc_vendor with
  | "vendorA" -> A.print cfg
  | "vendorB" -> B.print cfg
  | v -> invalid_arg (Printf.sprintf "Printer.print: unknown vendor %s" v)

(** Parse a configuration text in the given vendor's dialect. *)
let parse ~vendor ?device (text : string) : Types.t * Lexutil.error list =
  match vendor with
  | "vendorA" -> Parser_a.parse ?device text
  | "vendorB" -> Parser_b.parse ?device text
  | v -> invalid_arg (Printf.sprintf "Printer.parse: unknown vendor %s" v)
