(** The vendor-neutral device configuration model.

    Both vendor dialect parsers ({!Parser_a}, {!Parser_b}) produce this
    model; the simulator consumes it together with the device's vendor
    semantic profile ({!Vsb.t}), which captures how the same construct is
    {e interpreted} differently across vendors. *)

open Hoyan_net

type action = Permit | Deny

let action_to_string = function Permit -> "permit" | Deny -> "deny"

(* ------------------------------------------------------------------ *)
(* Filters                                                             *)
(* ------------------------------------------------------------------ *)

type prefix_entry = {
  pe_seq : int;
  pe_action : action;
  pe_prefix : Prefix.t;
  pe_ge : int option; (* match prefixes with len >= ge inside pe_prefix *)
  pe_le : int option; (* ... and len <= le *)
}

type prefix_list = {
  pl_name : string;
  pl_family : Ip.family;
  pl_entries : prefix_entry list; (* ordered by sequence number *)
}

(** Does [p] match entry [e]?  Standard semantics: [p] must be contained in
    [e.pe_prefix]; without ge/le the length must be exactly equal. *)
let prefix_entry_matches (e : prefix_entry) (p : Prefix.t) =
  Prefix.family p = Prefix.family e.pe_prefix
  && Prefix.subsumes e.pe_prefix p
  &&
  let len = Prefix.len p in
  match (e.pe_ge, e.pe_le) with
  | None, None -> len = Prefix.len e.pe_prefix
  | Some ge, None -> len >= ge
  | None, Some le -> len >= Prefix.len e.pe_prefix && len <= le
  | Some ge, Some le -> len >= ge && len <= le

(** First-match evaluation of a prefix list; [None] when no entry matches. *)
let prefix_list_eval (pl : prefix_list) (p : Prefix.t) : action option =
  List.find_opt (fun e -> prefix_entry_matches e p) pl.pl_entries
  |> Option.map (fun e -> e.pe_action)

type community_entry = {
  ce_seq : int;
  ce_action : action;
  ce_members : Community.t list; (* all must be present on the route *)
}

type community_list = { cl_name : string; cl_entries : community_entry list }

let community_list_eval (cl : community_list) (cs : Community.Set.t) :
    action option =
  List.find_opt
    (fun e -> List.for_all (fun c -> Community.Set.mem c cs) e.ce_members)
    cl.cl_entries
  |> Option.map (fun e -> e.ce_action)

type aspath_entry = { ae_seq : int; ae_action : action; ae_regex : string }

type aspath_filter = { af_name : string; af_entries : aspath_entry list }

(* ------------------------------------------------------------------ *)
(* Route policies (route-maps)                                         *)
(* ------------------------------------------------------------------ *)

type match_clause =
  | Match_prefix_list of string
  | Match_community_list of string
  | Match_aspath_filter of string
  | Match_nexthop of Prefix.t
  | Match_tag of int
  | Match_protocol of Route.proto
  | Match_family of Ip.family

type community_op = Comm_replace | Comm_add | Comm_remove

type set_clause =
  | Set_local_pref of int
  | Set_med of int
  | Set_weight of int
  | Set_preference of int
  | Set_communities of community_op * Community.t list
  | Set_nexthop of Ip.t
  | Set_aspath_prepend of int * int (* asn, count *)
  | Set_aspath_overwrite of int list (* replace AS path (vendor feature) *)
  | Set_tag of int

type policy_node = {
  pn_seq : int;
  pn_action : action option;
  (* [None]: the node has no explicit permit/deny — a VSB decides. *)
  pn_matches : match_clause list; (* conjunction *)
  pn_sets : set_clause list;
  pn_goto_next : bool; (* continue to next node after match (vendor B) *)
}

type route_policy = { rp_name : string; rp_nodes : policy_node list }

(* ------------------------------------------------------------------ *)
(* Protocol stanzas                                                    *)
(* ------------------------------------------------------------------ *)

type neighbor = {
  nb_addr : Ip.t;
  nb_remote_asn : int;
  nb_import : string option; (* route policy applied on ingress *)
  nb_export : string option;
  nb_rr_client : bool;
  nb_next_hop_self : bool;
  nb_add_paths : int; (* 0 = disabled; n = advertise up to n paths *)
  nb_vrf : string;
}

type aggregate = {
  ag_prefix : Prefix.t;
  ag_as_set : bool;
  ag_summary_only : bool;
  ag_vrf : string;
}

type vrf_def = {
  vd_name : string;
  vd_rd : string;
  vd_import_rts : string list;
  vd_export_rts : string list;
  vd_export_policy : string option;
}

type bgp_config = {
  bgp_asn : int;
  bgp_router_id : Ip.t option;
  bgp_neighbors : neighbor list;
  bgp_networks : (Prefix.t * string) list; (* prefix, vrf *)
  bgp_aggregates : aggregate list;
  bgp_redistribute : (Route.proto * string option) list; (* proto, policy *)
  bgp_vrfs : vrf_def list;
}

let empty_bgp =
  {
    bgp_asn = 0;
    bgp_router_id = None;
    bgp_neighbors = [];
    bgp_networks = [];
    bgp_aggregates = [];
    bgp_redistribute = [];
    bgp_vrfs = [];
  }

type isis_iface = { ii_name : string; ii_cost : int; ii_te : bool }

type isis_config = {
  isis_enabled : bool;
  isis_net : string; (* ISO NET identifier *)
  isis_ifaces : isis_iface list;
  isis_te : bool; (* IS-IS TE extensions (RFC 5305) enabled *)
  isis_default_cost : int option;
      (* device-level default cost; whether interfaces without an explicit
         cost inherit it is the "inheriting views" VSB *)
}

let empty_isis =
  { isis_enabled = false; isis_net = ""; isis_ifaces = []; isis_te = false;
    isis_default_cost = None }

type static_route = {
  st_prefix : Prefix.t;
  st_nexthop : Ip.t option;
  st_iface : string option;
  st_preference : int;
  st_tag : int;
  st_vrf : string;
}

type sr_policy = {
  sp_name : string;
  sp_endpoint : Ip.t; (* tunnel tail-end (router id / loopback) *)
  sp_color : int;
  sp_segments : string list; (* explicit path as device hops; [] = IGP path *)
  sp_preference : int;
}

type acl_entry = {
  ace_seq : int;
  ace_action : action;
  ace_src : Prefix.t option;
  ace_dst : Prefix.t option;
  ace_proto : int option;
  ace_dport : (int * int) option;
}

type acl = { acl_name : string; acl_entries : acl_entry list }

let acl_eval (a : acl) ~(src : Ip.t) ~(dst : Ip.t) ~(proto : int) ~(dport : int)
    : action option =
  List.find_opt
    (fun e ->
      (match e.ace_src with None -> true | Some p -> Prefix.mem src p)
      && (match e.ace_dst with None -> true | Some p -> Prefix.mem dst p)
      && (match e.ace_proto with None -> true | Some pr -> pr = proto)
      &&
      match e.ace_dport with
      | None -> true
      | Some (lo, hi) -> dport >= lo && dport <= hi)
    a.acl_entries
  |> Option.map (fun e -> e.ace_action)

type pbr_rule = {
  pbr_iface : string; (* ingress interface the rule is bound to *)
  pbr_acl : string; (* flows matching this ACL (permit) are steered *)
  pbr_nexthop : Ip.t;
}

type iface_config = {
  if_name : string;
  if_addr : Ip.t option; (* the interface's host address *)
  if_plen : int; (* subnet mask length *)
  if_bandwidth : float;
  if_acl_in : string option;
}

(** The connected subnet of an interface ([None] when unnumbered). *)
let iface_subnet (i : iface_config) =
  Option.map (fun a -> Prefix.make a i.if_plen) i.if_addr

(* ------------------------------------------------------------------ *)
(* Whole-device configuration                                          *)
(* ------------------------------------------------------------------ *)

module Smap = Map.Make (String)

type t = {
  dc_device : string;
  dc_vendor : string;
  dc_ifaces : iface_config list;
  dc_prefix_lists : prefix_list Smap.t;
  dc_community_lists : community_list Smap.t;
  dc_aspath_filters : aspath_filter Smap.t;
  dc_policies : route_policy Smap.t;
  dc_bgp : bgp_config;
  dc_isis : isis_config;
  dc_statics : static_route list;
  dc_sr_policies : sr_policy list;
  dc_acls : acl Smap.t;
  dc_pbr : pbr_rule list;
  dc_isolated : bool;
      (* maintenance isolation; whether it acts through policies or a
         dedicated knob is the "device isolation" VSB *)
}

let empty ~device ~vendor =
  {
    dc_device = device;
    dc_vendor = vendor;
    dc_ifaces = [];
    dc_prefix_lists = Smap.empty;
    dc_community_lists = Smap.empty;
    dc_aspath_filters = Smap.empty;
    dc_policies = Smap.empty;
    dc_bgp = empty_bgp;
    dc_isis = empty_isis;
    dc_statics = [];
    dc_sr_policies = [];
    dc_acls = Smap.empty;
    dc_pbr = [];
    dc_isolated = false;
  }

let find_prefix_list t name = Smap.find_opt name t.dc_prefix_lists
let find_community_list t name = Smap.find_opt name t.dc_community_lists
let find_aspath_filter t name = Smap.find_opt name t.dc_aspath_filters
let find_policy t name = Smap.find_opt name t.dc_policies
let find_acl t name = Smap.find_opt name t.dc_acls

let iface t name = List.find_opt (fun i -> String.equal i.if_name name) t.dc_ifaces

(** Count configuration "lines" (for workload statistics; each router on
    the paper's WAN has thousands of lines). *)
let line_count t =
  List.length t.dc_ifaces
  + Smap.fold (fun _ pl n -> n + List.length pl.pl_entries) t.dc_prefix_lists 0
  + Smap.fold
      (fun _ cl n -> n + List.length cl.cl_entries)
      t.dc_community_lists 0
  + Smap.fold (fun _ af n -> n + List.length af.af_entries) t.dc_aspath_filters 0
  + Smap.fold
      (fun _ rp n ->
        n
        + List.fold_left
            (fun m node ->
              m + 1 + List.length node.pn_matches + List.length node.pn_sets)
            0 rp.rp_nodes)
      t.dc_policies 0
  + List.length t.dc_bgp.bgp_neighbors
  + List.length t.dc_bgp.bgp_networks
  + List.length t.dc_bgp.bgp_aggregates
  + List.length t.dc_statics
  + List.length t.dc_sr_policies
  + Smap.fold (fun _ a n -> n + List.length a.acl_entries) t.dc_acls 0
  + List.length t.dc_pbr
