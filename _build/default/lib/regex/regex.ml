(** A small regular-expression engine (Thompson NFA construction, no
    backtracking) used for AS-path matching in route policies and for the
    RCL [matches] predicate.

    Supported syntax: literals, [.], [*], [+], [?], alternation [|],
    grouping [( )], character classes [[abc]], [[a-z]], negated classes
    [[^...]], escapes [\\c], anchors [^] and [$] (matching is full-string
    for {!matches}, so anchors are accepted and ignored at the ends, but
    {!search} honours them).

    The paper reports (§5.3) that Hoyan's {e early} implementation of
    AS-path regular expression matching was flawed and caused wrong route
    policy matching; {!Legacy} reproduces a matcher with that class of bug
    so the accuracy-diagnosis experiments can re-detect it by differential
    testing against this engine. *)

type cls = Any | Chars of (char * char) list * bool (* ranges, negated *)

type ast =
  | Empty
  | Char of cls
  | Seq of ast * ast
  | Alt of ast * ast
  | Star of ast
  | Plus of ast
  | Opt of ast

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse (s : string) : ast =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d in %S" msg !pos s)) in
  let parse_class () =
    (* assumes '[' consumed *)
    let negated =
      match peek () with
      | Some '^' ->
          advance ();
          true
      | _ -> false
    in
    let ranges = ref [] in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated character class"
      | Some ']' -> advance ()
      | Some c ->
          advance ();
          let c = if c = '\\' then (
            match peek () with
            | Some e ->
                advance ();
                e
            | None -> fail "dangling escape in class")
          else c
          in
          (match peek () with
          | Some '-' when !pos + 1 < n && s.[!pos + 1] <> ']' ->
              advance ();
              let hi =
                match peek () with
                | Some h ->
                    advance ();
                    h
                | None -> fail "unterminated range"
              in
              ranges := (c, hi) :: !ranges
          | _ -> ranges := (c, c) :: !ranges);
          loop ()
    in
    loop ();
    Chars (List.rev !ranges, negated)
  in
  (* Grammar: alt := seq ('|' seq)* ; seq := rep* ; rep := atom [*+?]* *)
  let rec parse_alt () =
    let left = parse_seq () in
    match peek () with
    | Some '|' ->
        advance ();
        Alt (left, parse_alt ())
    | _ -> left
  and parse_seq () =
    let rec loop acc =
      match peek () with
      | None | Some '|' | Some ')' -> acc
      | _ ->
          let atom = parse_rep () in
          loop (if acc = Empty then atom else Seq (acc, atom))
    in
    loop Empty
  and parse_rep () =
    let atom = parse_atom () in
    let rec post a =
      match peek () with
      | Some '*' ->
          advance ();
          post (Star a)
      | Some '+' ->
          advance ();
          post (Plus a)
      | Some '?' ->
          advance ();
          post (Opt a)
      | _ -> a
    in
    post atom
  and parse_atom () =
    match peek () with
    | None -> fail "expected atom"
    | Some '(' ->
        advance ();
        let inner = parse_alt () in
        (match peek () with
        | Some ')' ->
            advance ();
            inner
        | _ -> fail "unbalanced parenthesis")
    | Some '.' ->
        advance ();
        Char Any
    | Some '[' ->
        advance ();
        Char (parse_class ())
    | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
            advance ();
            Char (Chars ([ (c, c) ], false))
        | None -> fail "dangling escape")
    | Some ('^' | '$') ->
        (* Anchors: full-string matching makes them no-ops at the ends;
           we accept them anywhere and treat them as empty. *)
        advance ();
        Empty
    | Some ('*' | '+' | '?') -> fail "dangling repetition operator"
    | Some c ->
        advance ();
        Char (Chars ([ (c, c) ], false))
  in
  let ast = parse_alt () in
  if !pos <> n then fail "trailing characters" else ast

(* ------------------------------------------------------------------ *)
(* NFA construction (Thompson)                                         *)
(* ------------------------------------------------------------------ *)

type state = { mutable trans : (cls * int) list; mutable eps : int list }

type t = { states : state array; start : int; accept : int }

let cls_match cls c =
  match cls with
  | Any -> true
  | Chars (ranges, negated) ->
      let inside = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
      if negated then not inside else inside

let compile_ast (ast : ast) : t =
  let states = ref [] in
  let count = ref 0 in
  let new_state () =
    let s = { trans = []; eps = [] } in
    states := s :: !states;
    let id = !count in
    incr count;
    (id, s)
  in
  (* returns (entry, exit) state ids *)
  let rec build = function
    | Empty ->
        let i, si = new_state () in
        let o, _ = new_state () in
        si.eps <- o :: si.eps;
        (i, o)
    | Char cls ->
        let i, si = new_state () in
        let o, _ = new_state () in
        si.trans <- (cls, o) :: si.trans;
        (i, o)
    | Seq (a, b) ->
        let ia, oa = build a in
        let ib, ob = build b in
        let sa = List.nth !states (!count - 1 - oa) in
        sa.eps <- ib :: sa.eps;
        (ia, ob)
    | Alt (a, b) ->
        let i, si = new_state () in
        let o, _ = new_state () in
        let ia, oa = build a in
        let ib, ob = build b in
        si.eps <- ia :: ib :: si.eps;
        let sa = List.nth !states (!count - 1 - oa) in
        sa.eps <- o :: sa.eps;
        let sb = List.nth !states (!count - 1 - ob) in
        sb.eps <- o :: sb.eps;
        (i, o)
    | Star a ->
        let i, si = new_state () in
        let o, _ = new_state () in
        let ia, oa = build a in
        si.eps <- ia :: o :: si.eps;
        let sa = List.nth !states (!count - 1 - oa) in
        sa.eps <- ia :: o :: sa.eps;
        (i, o)
    | Plus a ->
        let ia, oa = build a in
        let o, _ = new_state () in
        let sa = List.nth !states (!count - 1 - oa) in
        sa.eps <- ia :: o :: sa.eps;
        (ia, o)
    | Opt a ->
        let i, si = new_state () in
        let o, _ = new_state () in
        let ia, oa = build a in
        si.eps <- ia :: o :: si.eps;
        let sa = List.nth !states (!count - 1 - oa) in
        sa.eps <- o :: sa.eps;
        (i, o)
  in
  let start, accept = build ast in
  let arr = Array.of_list (List.rev !states) in
  { states = arr; start; accept }

let compile (pattern : string) : t = compile_ast (parse pattern)

let compile_opt (pattern : string) : t option =
  match compile pattern with t -> Some t | exception Parse_error _ -> None

(* Epsilon closure of a set of states. *)
let closure (t : t) (set : bool array) =
  let rec visit id =
    if not set.(id) then begin
      set.(id) <- true;
      List.iter visit t.states.(id).eps
    end
  in
  let seeds = ref [] in
  Array.iteri (fun i b -> if b then seeds := i :: !seeds) set;
  Array.fill set 0 (Array.length set) false;
  List.iter visit !seeds

(** Full-string match: the whole [input] must match the pattern, matching
    the paper's [re_match] semantics (Table 7). *)
let matches (t : t) (input : string) : bool =
  let n_states = Array.length t.states in
  let cur = Array.make n_states false in
  cur.(t.start) <- true;
  closure t cur;
  let next = Array.make n_states false in
  String.iter
    (fun c ->
      Array.fill next 0 n_states false;
      Array.iteri
        (fun id active ->
          if active then
            List.iter
              (fun (cls, dst) -> if cls_match cls c then next.(dst) <- true)
              t.states.(id).trans)
        cur;
      closure t next;
      Array.blit next 0 cur 0 n_states)
    input;
  cur.(t.accept)

(** Substring search: does any substring of [input] match?  Equivalent to
    matching against [".*(pattern).*"]. *)
let search (t : t) (input : string) : bool =
  let n = String.length input in
  let rec try_from i =
    if i > n then false
    else
      let n_states = Array.length t.states in
      let cur = Array.make n_states false in
      cur.(t.start) <- true;
      closure t cur;
      if cur.(t.accept) then true
      else
        let rec step j cur =
          if j >= n then false
          else begin
            let next = Array.make n_states false in
            Array.iteri
              (fun id active ->
                if active then
                  List.iter
                    (fun (cls, dst) ->
                      if cls_match cls input.[j] then next.(dst) <- true)
                    t.states.(id).trans)
              cur;
            closure t next;
            if next.(t.accept) then true else step (j + 1) next
          end
        in
        if step i cur then true else try_from (i + 1)
  in
  try_from 0

let matches_str pattern input =
  match compile_opt pattern with
  | Some t -> matches t input
  | None -> false

module Legacy = struct
  (** The flawed legacy matcher (see §5.3: "Hoyan's early implementation of
      regular expression matching for AS path was flawed, leading to wrong
      route policy matching").

      Bug reproduced: the legacy engine implements [x*] as {e at most one}
      occurrence of [x] (i.e. it behaves like [x?]).  Patterns such as
      [".* 123 .*"] therefore fail to match AS paths where 123 is more than
      one hop from either end — exactly the class of silent
      policy-mismatch the accuracy framework caught by comparing simulated
      and monitored RIBs. *)

  let rec strip_star = function
    | Star a -> Opt (strip_star a)
    | Plus a -> strip_star a (* also wrong: x+ behaves like x *)
    | Seq (a, b) -> Seq (strip_star a, strip_star b)
    | Alt (a, b) -> Alt (strip_star a, strip_star b)
    | Opt a -> Opt (strip_star a)
    | (Empty | Char _) as leaf -> leaf

  let matches_str pattern input =
    match parse pattern with
    | ast -> matches (compile_ast (strip_star ast)) input
    | exception Parse_error _ -> false
end
