lib/regex/regex.ml: Array List Printf String
