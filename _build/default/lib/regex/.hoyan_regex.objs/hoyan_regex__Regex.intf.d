lib/regex/regex.mli:
