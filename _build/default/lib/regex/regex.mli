(** A small regular-expression engine (Thompson NFA, no backtracking)
    used for AS-path matching in route policies and for RCL's [matches].

    Supported syntax: literals, [.], [*], [+], [?], alternation [|],
    grouping, character classes (incl. ranges and negation), escapes.
    {!matches} is full-string matching — the paper's [re_match] semantics
    (Table 7); {!search} finds a matching substring. *)

exception Parse_error of string

type t

(** @raise Parse_error on malformed patterns. *)
val compile : string -> t

val compile_opt : string -> t option

(** Full-string match. *)
val matches : t -> string -> bool

(** Substring search (equivalent to matching [".*(p).*"]). *)
val search : t -> string -> bool

(** [matches_str pattern input] compiles and matches; malformed patterns
    never match. *)
val matches_str : string -> string -> bool

(** The flawed legacy matcher (§5.3 of the paper: Hoyan's early AS-path
    regex implementation caused wrong route policy matching).  The
    reproduced bug treats [x*] as [x?] (and [x+] as [x]), so patterns
    like [".* 123 .*"] miss occurrences more than one token deep.  Used
    by the accuracy-diagnosis experiments via differential testing. *)
module Legacy : sig
  val matches_str : string -> string -> bool
end
