(** Automatic accuracy validation (paper §5.1).

    Each day Hoyan simulates the base network on the monitored inputs and
    compares: (a) every simulated route against the route monitoring
    system — falling back to live-network [show] output for selected
    high-priority prefixes, since the BGP-agent view is lossy by design —
    and (b) each link's simulated traffic load against the SNMP-monitored
    load, flagging links whose gap exceeds a bandwidth fraction. *)

open Hoyan_net

type route_discrepancy =
  | Missing_in_monitor of Route.t  (** simulated but not collected *)
  | Missing_in_sim of Route.t  (** collected but not simulated *)
  | Attr_mismatch of Route.t * Route.t  (** same key, different attributes *)

val discrepancy_route : route_discrepancy -> Route.t

type load_discrepancy = {
  ld_link : string * string;
  ld_simulated : float;
  ld_monitored : float;
  ld_bandwidth : float;
}

val ld_gap : load_discrepancy -> float

type report = {
  rep_route_issues : route_discrepancy list;
  rep_load_issues : load_discrepancy list;
  rep_routes_checked : int;
  rep_links_checked : int;
}

(** Compare simulated routes with the monitored collection.  For prefixes
    in [priority_prefixes], the full-fidelity [live] view (show-command
    output) replaces the lossy monitored one, enabling ECMP and
    attribute validation.  Returns (discrepancies, routes checked). *)
val validate_routes :
  simulated:Route.t list ->
  monitored:Route.t list ->
  ?live:Route.t list ->
  ?priority_prefixes:Prefix.t list ->
  unit ->
  route_discrepancy list * int

(** Compare link loads; [threshold] is the gap bound as a fraction of the
    link bandwidth (paper: 10%). *)
val validate_loads :
  ?threshold:float ->
  topo:Topology.t ->
  simulated:(string * string, float) Hashtbl.t ->
  monitored:(string * string, float) Hashtbl.t ->
  unit ->
  load_discrepancy list * int

(** The daily accuracy report over both route and load validation. *)
val daily :
  simulated_rib:Route.t list ->
  monitored_rib:Route.t list ->
  ?live:Route.t list ->
  ?priority_prefixes:Prefix.t list ->
  topo:Topology.t ->
  simulated_loads:(string * string, float) Hashtbl.t ->
  monitored_loads:(string * string, float) Hashtbl.t ->
  ?threshold:float ->
  unit ->
  report

val is_accurate : report -> bool
