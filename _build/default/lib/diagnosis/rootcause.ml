(** Root-cause analysis of inaccurate traffic simulation (§5.2).

    The 5-step hybrid workflow, automated as far as the paper's is:

    1. identify links with a large simulated-vs-real load difference;
    2. identify a large-volume flow traversing such a link;
    3. build the flow's forwarding paths with Hoyan;
    4. compare each router's forwarding behaviour on that flow, starting
       from the router attached to the divergent link;
    5. hand the first divergent router — with its simulated and real
       routes side by side — to the expert (here: emit a structured
       finding, including heuristic hints such as the ECMP-count and
       IGP-cost differences that exposed the Figure-9 SR VSB). *)

open Hoyan_net
module Traffic_sim = Hoyan_sim.Traffic_sim
module Model = Hoyan_sim.Model

type hop_behaviour = {
  hb_device : string;
  hb_sim_nexthops : string list; (* next-hop rendering, simulated RIB *)
  hb_real_nexthops : string list; (* ... real RIB *)
  hb_sim_igp_costs : int list;
  hb_real_igp_costs : int list;
}

type finding = {
  f_link : string * string;
  f_flow : Flow.t;
  f_paths : Traffic_sim.path list; (* simulated forwarding paths *)
  f_divergent : hop_behaviour option; (* first router behaving differently *)
  f_hints : string list;
}

let nexthops_of (routes : Route.t list) =
  routes
  |> List.filter (fun (r : Route.t) ->
         match r.Route.route_type with
         | Route.Best | Route.Ecmp -> true
         | Route.Backup -> false)
  |> List.map Route.nexthop_string
  |> List.sort_uniq String.compare

let igp_costs_of (routes : Route.t list) =
  routes
  |> List.filter (fun (r : Route.t) ->
         match r.Route.route_type with
         | Route.Best | Route.Ecmp -> true
         | Route.Backup -> false)
  |> List.map (fun (r : Route.t) -> r.Route.igp_cost)
  |> List.sort_uniq Int.compare

(** Step 4: compare the forwarding behaviour of a device on the flow,
    between a simulated and a real (live ground truth) RIB. *)
let compare_hop ~(sim_rib : Route.t list) ~(real_rib : Route.t list)
    (dev : string) (f : Flow.t) : hop_behaviour =
  let fib_routes rib =
    let fibs = Traffic_sim.build_fibs rib in
    match Traffic_sim.fib_lookup fibs dev f.Flow.dst with
    | Some (_, routes) -> routes
    | None -> []
  in
  let sim = fib_routes sim_rib and real = fib_routes real_rib in
  {
    hb_device = dev;
    hb_sim_nexthops = nexthops_of sim;
    hb_real_nexthops = nexthops_of real;
    hb_sim_igp_costs = igp_costs_of sim;
    hb_real_igp_costs = igp_costs_of real;
  }

let behaviour_differs (hb : hop_behaviour) =
  not (List.equal String.equal hb.hb_sim_nexthops hb.hb_real_nexthops)

let hints_of (hb : hop_behaviour) : string list =
  let hints = ref [] in
  let n_sim = List.length hb.hb_sim_nexthops
  and n_real = List.length hb.hb_real_nexthops in
  if n_sim <> n_real then
    hints :=
      Printf.sprintf
        "ECMP count differs on %s: simulated %d next hops vs real %d"
        hb.hb_device n_sim n_real
      :: !hints;
  if
    not (List.equal Int.equal hb.hb_sim_igp_costs hb.hb_real_igp_costs)
  then
    hints :=
      Printf.sprintf
        "IGP costs differ on %s (sim %s vs real %s): check IGP/SR interaction \
         and vendor-specific IGP-cost handling"
        hb.hb_device
        (String.concat "," (List.map string_of_int hb.hb_sim_igp_costs))
        (String.concat "," (List.map string_of_int hb.hb_real_igp_costs))
      :: !hints;
  List.rev !hints

(** Run the workflow for one divergent link.

    [monitored_flows] supplies candidate flows with measured volumes;
    [sim_rib]/[real_rib] are the simulated RIB and the live ground truth;
    [model] is the (simulated) network model used to rebuild forwarding
    paths. *)
let analyze_link (model : Model.t) ~(link : string * string)
    ~(monitored_flows : Hoyan_monitor.Traffic_monitor.flow_record list)
    ~(sim_rib : Route.t list) ~(real_rib : Route.t list) : finding option =
  let src_dev, _dst_dev = link in
  (* step 2: the largest-volume flow traversing the link (in the real
     network: test membership by walking it on the real RIB) *)
  let traverses rib (f : Flow.t) =
    let fibs = Traffic_sim.build_fibs rib in
    let w = Traffic_sim.walk_flow model fibs f in
    List.exists (fun (k, _) -> k = link) w.Traffic_sim.w_edges
  in
  let candidates =
    monitored_flows
    |> List.filter (fun (fr : Hoyan_monitor.Traffic_monitor.flow_record) ->
           traverses real_rib fr.Hoyan_monitor.Traffic_monitor.fr_flow)
    |> List.sort (fun a b ->
           Float.compare b.Hoyan_monitor.Traffic_monitor.fr_volume
             a.Hoyan_monitor.Traffic_monitor.fr_volume)
  in
  match candidates with
  | [] -> None
  | top :: _ ->
      let flow = top.Hoyan_monitor.Traffic_monitor.fr_flow in
      (* step 3: build the simulated forwarding paths of the flow *)
      let sim_fibs = Traffic_sim.build_fibs sim_rib in
      let w = Traffic_sim.walk_flow model sim_fibs flow in
      (* step 4: compare per-router behaviour starting from the router
         attached to the divergent link, then along the simulated path *)
      let devices_to_check =
        src_dev
        :: List.concat_map
             (fun (p : Traffic_sim.path) -> p.Traffic_sim.hops)
             w.Traffic_sim.w_paths
        |> List.sort_uniq String.compare
      in
      let behaviours =
        List.map (fun d -> compare_hop ~sim_rib ~real_rib d flow) devices_to_check
      in
      let divergent = List.find_opt behaviour_differs behaviours in
      Some
        {
          f_link = link;
          f_flow = flow;
          f_paths = w.Traffic_sim.w_paths;
          f_divergent = divergent;
          f_hints =
            (match divergent with Some hb -> hints_of hb | None -> []);
        }

let finding_to_string (f : finding) =
  let src, dst = f.f_link in
  let div =
    match f.f_divergent with
    | Some hb ->
        Printf.sprintf "first divergent router: %s (sim nh [%s], real nh [%s])"
          hb.hb_device
          (String.concat "," hb.hb_sim_nexthops)
          (String.concat "," hb.hb_real_nexthops)
    | None -> "no divergent router identified"
  in
  Printf.sprintf "link %s->%s, flow %s: %s%s" src dst (Flow.to_string f.f_flow)
    div
    (if f.f_hints = [] then ""
     else "\n  hints: " ^ String.concat "; " f.f_hints)
