(** The accuracy-issue taxonomy of Table 4.

    Production Hoyan found 52 issues in six months, distributed over nine
    classes.  The fault-injection campaign (bench `table4`) injects
    instances of each class and checks that the daily validation detects
    them; the classifier below attributes a detected discrepancy to a
    class the way the paper's workflow does — by probing which pipeline
    stage disagrees. *)

type cls =
  | Route_monitoring_data (* agents down, stale collections *)
  | Traffic_monitoring_data (* NetFlow volume bugs, record loss *)
  | Topology_data (* stale/missing links *)
  | Config_parsing (* incomplete/incorrect dialect parsing *)
  | Input_route_building (* wrong input-extraction rules *)
  | Simulation_bug (* e.g. the flawed AS-path regex *)
  | Vendor_specific_behaviour (* unmodelled VSBs *)
  | Unmodeled_feature (* e.g. IS-IS TE before 2023 *)
  | Bgp_convergence (* fundamental nondeterminism *)
  | Other

let all =
  [
    Route_monitoring_data; Traffic_monitoring_data; Topology_data;
    Config_parsing; Input_route_building; Simulation_bug;
    Vendor_specific_behaviour; Unmodeled_feature; Bgp_convergence; Other;
  ]

let to_string = function
  | Route_monitoring_data -> "route monitoring data"
  | Traffic_monitoring_data -> "traffic monitoring data"
  | Topology_data -> "topology data"
  | Config_parsing -> "configuration parsing"
  | Input_route_building -> "input route building"
  | Simulation_bug -> "simulation implementation bug"
  | Vendor_specific_behaviour -> "vendor-specific behavior"
  | Unmodeled_feature -> "unmodeled feature"
  | Bgp_convergence -> "BGP convergence"
  | Other -> "others"

(** Table 4's published distribution (percent), used to shape the
    injection campaign and as the paper-side column in EXPERIMENTS.md. *)
let paper_distribution =
  [
    (Route_monitoring_data, 23.08);
    (Traffic_monitoring_data, 19.28);
    (Topology_data, 11.54);
    (Config_parsing, 9.62);
    (Input_route_building, 9.62);
    (Simulation_bug, 7.69);
    (Vendor_specific_behaviour, 5.77);
    (Unmodeled_feature, 3.85);
    (Bgp_convergence, 1.92);
    (Other, 7.69);
  ]

(** Evidence gathered about one detected inaccuracy, used to classify it. *)
type evidence = {
  ev_routes_missing_whole_device : string option;
      (* every route of one device absent from the monitor *)
  ev_flow_volume_only : bool; (* loads differ but paths/RIBs agree *)
  ev_topo_mismatch : bool; (* monitored vs live topology differ *)
  ev_parse_errors : bool; (* the config parser reported errors *)
  ev_input_rule_suspect : bool; (* inputs dropped by extraction rules *)
  ev_policy_match_diff : bool; (* same config, different policy outcome *)
  ev_vendor_dependent : bool; (* divergence follows the vendor boundary *)
  ev_unmodeled_feature : bool; (* feature flag absent from the model *)
  ev_multiple_stable_states : bool; (* re-simulation converges elsewhere *)
}

let no_evidence =
  {
    ev_routes_missing_whole_device = None;
    ev_flow_volume_only = false;
    ev_topo_mismatch = false;
    ev_parse_errors = false;
    ev_input_rule_suspect = false;
    ev_policy_match_diff = false;
    ev_vendor_dependent = false;
    ev_unmodeled_feature = false;
    ev_multiple_stable_states = false;
  }

(** Attribute a detected inaccuracy to an issue class.  Mirrors the
    expert decision procedure: monitoring-side explanations are ruled out
    first, then pre-processing, then simulation-side causes. *)
let classify (ev : evidence) : cls =
  if Option.is_some ev.ev_routes_missing_whole_device then
    Route_monitoring_data
  else if ev.ev_flow_volume_only then Traffic_monitoring_data
  else if ev.ev_topo_mismatch then Topology_data
  else if ev.ev_parse_errors then Config_parsing
  else if ev.ev_input_rule_suspect then Input_route_building
  else if ev.ev_vendor_dependent then Vendor_specific_behaviour
  else if ev.ev_unmodeled_feature then Unmodeled_feature
  else if ev.ev_policy_match_diff then Simulation_bug
  else if ev.ev_multiple_stable_states then Bgp_convergence
  else Other
