lib/diagnosis/postcheck.ml: Flow Hashtbl Hoyan_dist Hoyan_net Hoyan_sim Route Unix Validate
