lib/diagnosis/rootcause.ml: Float Flow Hoyan_monitor Hoyan_net Hoyan_sim Int List Printf Route String
