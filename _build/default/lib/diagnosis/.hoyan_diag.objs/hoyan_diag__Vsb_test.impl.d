lib/diagnosis/vsb_test.ml: Hoyan_config Hoyan_net Hoyan_sim Hoyan_workload List Prefix Rib Route
