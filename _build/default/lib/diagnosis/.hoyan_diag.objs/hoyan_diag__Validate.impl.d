lib/diagnosis/validate.ml: Float Hashtbl Hoyan_monitor Hoyan_net List Option Prefix Route Topology
