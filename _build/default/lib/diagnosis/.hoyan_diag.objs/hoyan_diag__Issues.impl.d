lib/diagnosis/issues.ml: Option
