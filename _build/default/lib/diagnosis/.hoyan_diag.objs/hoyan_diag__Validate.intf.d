lib/diagnosis/validate.mli: Hashtbl Hoyan_net Prefix Route Topology
