(** Post-change validation (§6.2).

    During the next-generation WAN rollout, operators use Hoyan's
    simulation results as ground truth to validate the {e vendors'}
    implementations: after a change executes, Hoyan simulates the updated
    network and compares against the live network; any inconsistency
    triggers a rollback.  Because the comparison gates the rollback
    window, the simulation must complete within minutes — which is why
    this path reuses the distributed framework.

    The comparison itself is the accuracy validator (§5.1) pointed at the
    post-change state. *)

open Hoyan_net
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim

type verdict = {
  pc_consistent : bool; (* false => roll the change back *)
  pc_report : Validate.report;
  pc_sim_seconds : float;
}

(** Validate an executed change: simulate the updated model on the
    post-change inputs and compare with what the monitoring systems now
    see on the live network. *)
let validate ?(distributed = false) ?(threshold = 0.10)
    (updated_model : Model.t) ~(input_routes : Route.t list)
    ~(flows : Flow.t list) ~(live_monitored_rib : Route.t list)
    ~(live_monitored_loads : (string * string, float) Hashtbl.t) : verdict =
  let t0 = Unix.gettimeofday () in
  let rib =
    if distributed then
      let fw = Hoyan_dist.Framework.create updated_model in
      (Hoyan_dist.Framework.run_route_phase ~subtasks:100 fw ~input_routes)
        .Hoyan_dist.Framework.rp_rib
    else (Route_sim.run updated_model ~input_routes ()).Route_sim.rib
  in
  let traffic = Traffic_sim.run updated_model ~rib ~flows () in
  let report =
    Validate.daily ~simulated_rib:rib ~monitored_rib:live_monitored_rib
      ~topo:updated_model.Model.topo
      ~simulated_loads:traffic.Traffic_sim.link_load
      ~monitored_loads:live_monitored_loads ~threshold ()
  in
  {
    pc_consistent = Validate.is_accurate report;
    pc_report = report;
    pc_sim_seconds = Unix.gettimeofday () -. t0;
  }
