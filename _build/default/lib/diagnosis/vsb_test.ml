(** Differential testing of vendor-specific behaviours (Table 5).

    For each of the 16 Table-5 dimensions, a small scenario network is
    built whose device under test (DUT) exercises exactly that behaviour.
    The scenario is simulated twice — once with the DUT's base vendor
    profile, once with a profile flipped in only that dimension — and the
    resulting global RIBs are diffed.  A non-empty diff means the
    dimension is behaviourally observable: exactly the situation where
    Hoyan's model of one vendor silently mispredicts another, which the
    accuracy framework then catches via RIB cross-validation (§5).

    This is the differential-testing methodology the paper points to
    ([McKeeman 1998], §7 "Automatic testing framework for accuracy"). *)

open Hoyan_net
module B = Hoyan_workload.Builder
module Types = Hoyan_config.Types
module Vsb = Hoyan_config.Vsb
module Route_sim = Hoyan_sim.Route_sim

type scenario = {
  sc_dimension : string;
  sc_build : vendor:string -> B.t * Route.t list; (* builder + input routes *)
}

let pfx = Prefix.of_string_exn

(* DUT receives one eBGP route from a fixed vendor-A peer; the import
   policy attachment varies per scenario. *)
let ebgp_ingress ~vendor ~import ~policies ~prefix_lists =
  let b = B.create () in
  B.add_device b ~name:"PEER" ~vendor:"vendorA" ~asn:65001
    ~router_id:(B.ip "1.1.1.1") ();
  B.add_device b ~name:"DUT" ~vendor ~asn:65002 ~router_id:(B.ip "2.2.2.2") ();
  let p, d = B.link b ~a:"PEER" ~b:"DUT" ~subnet:(pfx "10.0.0.0/31") () in
  List.iter (fun rp -> B.add_policy b "DUT" rp) policies;
  List.iter (fun pl -> B.add_prefix_list b "DUT" pl) prefix_lists;
  B.bgp_session b ~a:"PEER" ~b:"DUT" ~a_addr:p ~b_addr:d ?b_import:import ();
  let input =
    [ B.input_route ~device:"PEER" ~prefix:"99.0.0.0/24" ~as_path:[ 7018 ] () ]
  in
  (b, input)

let scenarios : scenario list =
  [
    {
      sc_dimension = "missing route policy";
      sc_build =
        (fun ~vendor ->
          ebgp_ingress ~vendor ~import:None ~policies:[] ~prefix_lists:[]);
    };
    {
      sc_dimension = "undefined route policy";
      sc_build =
        (fun ~vendor ->
          ebgp_ingress ~vendor ~import:(Some "UNDEFINED") ~policies:[]
            ~prefix_lists:[]);
    };
    {
      sc_dimension = "default route policy";
      sc_build =
        (fun ~vendor ->
          (* the only node matches tag 42, which no route carries *)
          ebgp_ingress ~vendor ~import:(Some "P")
            ~policies:[ B.policy "P" [ B.node 10 ~matches:[ Types.Match_tag 42 ] ] ]
            ~prefix_lists:[]);
    };
    {
      sc_dimension = "undefined policy filter";
      sc_build =
        (fun ~vendor ->
          ebgp_ingress ~vendor ~import:(Some "P")
            ~policies:
              [ B.policy "P"
                  [ B.node 10 ~matches:[ Types.Match_prefix_list "MISSING" ] ] ]
            ~prefix_lists:[]);
    };
    {
      sc_dimension = "no explicit permit/deny";
      sc_build =
        (fun ~vendor ->
          ebgp_ingress ~vendor ~import:(Some "P")
            ~policies:[ B.policy "P" [ B.node ~action:None 10 ] ]
            ~prefix_lists:[]);
    };
    {
      sc_dimension = "default BGP preference";
      sc_build =
        (fun ~vendor ->
          (* accepted route's admin preference shows the vendor default *)
          ebgp_ingress ~vendor ~import:None ~policies:[] ~prefix_lists:[]);
    };
    {
      sc_dimension = "weight after redistribution";
      sc_build =
        (fun ~vendor ->
          let b = B.create () in
          B.add_device b ~name:"DUT" ~vendor ~asn:65002
            ~router_id:(B.ip "2.2.2.2") ();
          B.add_static b "DUT"
            { Types.st_prefix = pfx "99.0.0.0/24"; st_nexthop = None;
              st_iface = Some "Null0"; st_preference = 1; st_tag = 0;
              st_vrf = Route.default_vrf };
          B.add_redistribute b "DUT" Route.Static;
          (b, []));
    };
    {
      sc_dimension = "adding own ASN";
      sc_build =
        (fun ~vendor ->
          (* DUT's export policy overwrites the AS path; the peer's view
             of the path depends on the VSB *)
          let b = B.create () in
          B.add_device b ~name:"DUT" ~vendor ~asn:65002
            ~router_id:(B.ip "2.2.2.2") ();
          B.add_device b ~name:"PEER" ~vendor:"vendorA" ~asn:65001
            ~router_id:(B.ip "1.1.1.1") ();
          let d, p = B.link b ~a:"DUT" ~b:"PEER" ~subnet:(pfx "10.0.0.0/31") () in
          B.add_policy b "DUT"
            (B.policy "OVR"
               [ B.node 10 ~sets:[ Types.Set_aspath_overwrite [ 64999 ] ] ]);
          B.bgp_session b ~a:"DUT" ~b:"PEER" ~a_addr:d ~b_addr:p
            ~a_export:"OVR" ();
          let input =
            [ B.input_route ~device:"DUT" ~prefix:"99.0.0.0/24"
                ~as_path:[ 7018 ] () ]
          in
          (b, input));
    };
    {
      sc_dimension = "common AS path prefix";
      sc_build =
        (fun ~vendor ->
          let b = B.create () in
          B.add_device b ~name:"DUT" ~vendor ~asn:65002
            ~router_id:(B.ip "2.2.2.2") ();
          B.add_aggregate b "DUT" (pfx "99.0.0.0/16");
          let input =
            [
              B.input_route ~device:"DUT" ~prefix:"99.0.1.0/24"
                ~as_path:[ 70; 80 ] ();
              B.input_route ~device:"DUT" ~prefix:"99.0.2.0/24"
                ~as_path:[ 70; 90 ] ();
            ]
          in
          (b, input));
    };
    {
      sc_dimension = "VRF export policy";
      sc_build =
        (fun ~vendor ->
          (* a global iBGP route leaked into a VRF that imports "global"
             and whose export policy denies community 66:6 *)
          let b = B.create () in
          B.add_device b ~name:"DUT" ~vendor ~asn:65000
            ~router_id:(B.ip "2.2.2.2") ();
          B.add_device b ~name:"IB" ~vendor:"vendorA" ~asn:65000
            ~router_id:(B.ip "1.1.1.1") ();
          ignore (B.link b ~a:"IB" ~b:"DUT" ~subnet:(pfx "10.0.0.0/31") ());
          B.ibgp_loopback_session b ~a:"IB" ~b:"DUT" ();
          B.add_community_list b "DUT"
            { Types.cl_name = "C66";
              cl_entries =
                [ { Types.ce_seq = 5; ce_action = Types.Permit;
                    ce_members = [ B.comm "66:6" ] } ] };
          B.add_policy b "DUT"
            (B.policy "VEXP"
               [
                 B.node 10 ~action:(Some Types.Deny)
                   ~matches:[ Types.Match_community_list "C66" ];
                 B.node 20;
               ]);
          B.add_vrf b "DUT"
            { Types.vd_name = "cust"; vd_rd = "65000:1";
              vd_import_rts = [ "global" ]; vd_export_rts = [ "65000:99" ];
              vd_export_policy = Some "VEXP" };
          let input =
            [ B.input_route ~device:"IB" ~prefix:"99.0.0.0/24"
                ~nexthop:"1.1.1.1" ~communities:[ "66:6" ] () ]
          in
          (b, input));
    };
    {
      sc_dimension = "re-leaking routes";
      sc_build =
        (fun ~vendor ->
          let b = B.create () in
          B.add_device b ~name:"DUT" ~vendor ~asn:65000
            ~router_id:(B.ip "2.2.2.2") ();
          B.add_vrf b "DUT"
            { Types.vd_name = "vx"; vd_rd = "65000:1";
              vd_import_rts = []; vd_export_rts = [ "100:1" ];
              vd_export_policy = None };
          B.add_vrf b "DUT"
            { Types.vd_name = "vy"; vd_rd = "65000:2";
              vd_import_rts = [ "100:1" ]; vd_export_rts = [ "200:1" ];
              vd_export_policy = None };
          B.add_vrf b "DUT"
            { Types.vd_name = "vz"; vd_rd = "65000:3";
              vd_import_rts = [ "200:1" ]; vd_export_rts = [];
              vd_export_policy = None };
          let input =
            [ B.input_route ~device:"DUT" ~vrf:"vx" ~prefix:"99.0.0.0/24" () ]
          in
          (b, input));
    };
    {
      sc_dimension = "redistributing /32 route";
      sc_build =
        (fun ~vendor ->
          let b = B.create () in
          B.add_device b ~name:"DUT" ~vendor ~asn:65002
            ~router_id:(B.ip "2.2.2.2") ();
          B.add_device b ~name:"N" ~vendor:"vendorA" ~asn:65002
            ~router_id:(B.ip "1.1.1.1") ();
          (* the non-/31 interface produces the extra host /32 *)
          ignore (B.link b ~a:"DUT" ~b:"N" ~subnet:(pfx "10.0.0.0/31") ());
          B.update_config b "DUT" (fun cfg ->
              { cfg with
                Types.dc_ifaces =
                  { Types.if_name = "Lan0"; if_addr = Some (B.ip "172.16.0.1");
                    if_plen = 24; if_bandwidth = 10e9; if_acl_in = None }
                  :: cfg.Types.dc_ifaces });
          B.add_redistribute b "DUT" Route.Direct;
          (b, []));
    };
    {
      sc_dimension = "sending /32 route to peer";
      sc_build =
        (fun ~vendor ->
          let b = B.create () in
          B.add_device b ~name:"DUT" ~vendor ~asn:65002
            ~router_id:(B.ip "2.2.2.2") ();
          B.add_device b ~name:"PEER" ~vendor:"vendorA" ~asn:65001
            ~router_id:(B.ip "1.1.1.1") ();
          let d, p = B.link b ~a:"DUT" ~b:"PEER" ~subnet:(pfx "10.0.0.0/31") () in
          B.update_config b "DUT" (fun cfg ->
              { cfg with
                Types.dc_ifaces =
                  { Types.if_name = "Lan0"; if_addr = Some (B.ip "172.16.0.1");
                    if_plen = 24; if_bandwidth = 10e9; if_acl_in = None }
                  :: cfg.Types.dc_ifaces });
          B.add_redistribute b "DUT" Route.Direct;
          B.bgp_session b ~a:"DUT" ~b:"PEER" ~a_addr:d ~b_addr:p ();
          (b, []));
    };
    {
      sc_dimension = "IGP cost for SR";
      sc_build =
        (fun ~vendor ->
          (* the Figure-9 diamond: two iBGP paths with equal IGP costs;
             an SR policy towards one of them *)
          let b = B.create () in
          B.add_device b ~name:"DUT" ~vendor ~asn:65000
            ~router_id:(B.ip "10.255.0.1") ();
          B.add_device b ~name:"Bx" ~vendor:"vendorA" ~asn:65000
            ~router_id:(B.ip "10.255.0.2") ();
          B.add_device b ~name:"Cx" ~vendor:"vendorA" ~asn:65000
            ~router_id:(B.ip "10.255.0.3") ();
          ignore (B.link b ~a:"DUT" ~b:"Bx" ~subnet:(pfx "10.1.0.0/31") ());
          ignore (B.link b ~a:"DUT" ~b:"Cx" ~subnet:(pfx "10.2.0.0/31") ());
          B.ibgp_loopback_session b ~a:"DUT" ~b:"Bx" ();
          B.ibgp_loopback_session b ~a:"DUT" ~b:"Cx" ();
          B.add_sr_policy b "DUT"
            { Types.sp_name = "TO_B"; sp_endpoint = B.ip "10.255.0.2";
              sp_color = 100; sp_segments = []; sp_preference = 100 };
          let input =
            [
              B.input_route ~device:"Bx" ~prefix:"99.0.0.0/24"
                ~nexthop:"10.255.0.2" ~as_path:[ 7018 ] ();
              B.input_route ~device:"Cx" ~prefix:"99.0.0.0/24"
                ~nexthop:"10.255.0.3" ~as_path:[ 7018 ] ();
            ]
          in
          (b, input));
    };
    {
      sc_dimension = "inheriting views";
      sc_build =
        (fun ~vendor ->
          (* DUT's link has no explicit isis cost; the device default (40)
             is inherited only on sub-view-inheriting vendors, changing
             the IGP cost recorded on the learned route *)
          let b = B.create () in
          B.add_device b ~name:"DUT" ~vendor ~asn:65000
            ~router_id:(B.ip "2.2.2.2") ();
          B.add_device b ~name:"E" ~vendor:"vendorA" ~asn:65000
            ~router_id:(B.ip "1.1.1.1") ();
          ignore
            (B.link b ~a:"DUT" ~b:"E" ~subnet:(pfx "10.0.0.0/31")
               ~no_isis_cost:true ());
          B.set_isis_default_cost b "DUT" 40;
          B.ibgp_loopback_session b ~a:"DUT" ~b:"E" ();
          let input =
            [ B.input_route ~device:"E" ~prefix:"99.0.0.0/24"
                ~nexthop:"1.1.1.1" ~as_path:[ 7018 ] () ]
          in
          (b, input));
    };
    {
      sc_dimension = "device isolation";
      sc_build =
        (fun ~vendor ->
          (* isolated DUT in the middle of an eBGP chain: policy-based
             isolation still imports, the dedicated knob blocks both ways *)
          let b = B.create () in
          B.add_device b ~name:"P1" ~vendor:"vendorA" ~asn:65001
            ~router_id:(B.ip "1.1.1.1") ();
          B.add_device b ~name:"DUT" ~vendor ~asn:65002
            ~router_id:(B.ip "2.2.2.2") ();
          let a, d = B.link b ~a:"P1" ~b:"DUT" ~subnet:(pfx "10.0.0.0/31") () in
          B.bgp_session b ~a:"P1" ~b:"DUT" ~a_addr:a ~b_addr:d ();
          B.set_isolated b "DUT";
          let input =
            [ B.input_route ~device:"P1" ~prefix:"99.0.0.0/24"
                ~as_path:[ 7018 ] () ]
          in
          (b, input));
    };
  ]

type detection = {
  det_dimension : string;
  det_detected : bool;
  det_diff_size : int; (* routes differing between the two simulations *)
}

(** Run a scenario under the base profile and under the per-dimension
    flipped profile, and diff the resulting global RIBs. *)
let test_dimension (sc : scenario) : detection =
  let base_profile = Vsb.vendor_a in
  let flipped = Vsb.flip base_profile sc.sc_dimension in
  Vsb.register flipped;
  let run vendor =
    let b, input = sc.sc_build ~vendor in
    (* the DUT's vendor string must follow the profile under test *)
    B.set_vendor b "DUT" vendor;
    let model = B.build b in
    (Route_sim.run model ~input_routes:input ()).Route_sim.rib
    |> List.filter (fun (r : Route.t) -> r.Route.proto = Route.Bgp)
  in
  let rib_base = run base_profile.Vsb.vendor in
  let rib_flip = run flipped.Vsb.vendor in
  let diff =
    List.length (Rib.Global.diff rib_base rib_flip)
    + List.length (Rib.Global.diff rib_flip rib_base)
  in
  {
    det_dimension = sc.sc_dimension;
    det_detected = diff > 0;
    det_diff_size = diff;
  }

(** Run the full Table-5 campaign. *)
let run_all () : detection list = List.map test_dimension scenarios
