bench/b_changes.ml: B_common Char Flow Hoyan_config Hoyan_core Hoyan_net Hoyan_sim Hoyan_workload Ip Lazy List Option Prefix Printf Route String Topology
