bench/main.mli:
