bench/main.ml: Array B_ablate B_accuracy B_changes B_common B_micro B_rcl B_scale List Printf String Sys Unix
