bench/b_ablate.ml: B_common Hoyan_core Hoyan_dist Hoyan_net Hoyan_sim Hoyan_workload Lazy List Option String
