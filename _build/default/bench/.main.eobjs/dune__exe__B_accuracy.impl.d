bench/b_accuracy.ml: B_common Hashtbl Hoyan_config Hoyan_core Hoyan_diag Hoyan_monitor Hoyan_net Hoyan_regex Hoyan_sim Hoyan_workload Lazy List Map Option Prefix Printf Rib Route String Topology
