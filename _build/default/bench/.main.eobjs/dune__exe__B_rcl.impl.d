bench/b_rcl.ml: Array B_common Community Hoyan_net Hoyan_rcl Hoyan_sim Hoyan_workload Ip Lazy List Prefix Printf Random Rib Route String
