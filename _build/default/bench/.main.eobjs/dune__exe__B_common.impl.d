bench/b_common.ml: Float Hoyan_workload List Printf String Unix
