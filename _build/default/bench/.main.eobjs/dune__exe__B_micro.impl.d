bench/b_micro.ml: Analyze As_path B_common Bechamel Benchmark Hoyan_config Hoyan_net Hoyan_proto Hoyan_rcl Hoyan_sim Hoyan_workload Ip Lazy List Option Prefix Route Staged Test Time Toolkit
