bench/b_scale.ml: B_common Float Hoyan_dist Hoyan_net Hoyan_sim Hoyan_workload Lazy List
