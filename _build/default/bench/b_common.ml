(* Shared workloads and pretty-printing helpers for the bench harness. *)

module G = Hoyan_workload.Generator

let quick = ref false

(* Workloads are generated once and shared across sections. *)
let wan_params () = if !quick then { G.wan with G.g_prefixes = 800 } else G.wan

let wan_dcn_params () =
  if !quick then
    { G.wan_dcn with G.g_dcs_per_region = 40; g_prefixes = 1000 }
  else G.wan_dcn

let wan = lazy (G.generate (wan_params ()))
let wan_dcn = lazy (G.generate (wan_dcn_params ()))
let small = lazy (G.generate G.small)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let sub title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.ksprintf (fun s -> print_string (s ^ "\n")) fmt

let seconds = Printf.sprintf "%.2fs"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Quantiles of a float list (q in [0,1]). *)
let quantile q xs =
  match List.sort Float.compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let idx = int_of_float (q *. float_of_int (n - 1)) in
      List.nth sorted idx

(* Print an empirical CDF at decile points. *)
let print_cdf label (xs : float list) ~unit =
  row "%s (n=%d):" label (List.length xs);
  List.iter
    (fun q ->
      row "  p%02.0f  %8.3f %s" (q *. 100.) (quantile q xs) unit)
    [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.95; 1.0 ]
