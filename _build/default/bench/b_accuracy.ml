(* Accuracy experiments: Figure 9 (root-cause workflow), Table 4 (the
   fault-injection campaign over the issue taxonomy), Table 5 (VSB
   differential testing). *)

open B_common
open Hoyan_net
module G = Hoyan_workload.Generator
module S = Hoyan_workload.Scenarios
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Model = Hoyan_sim.Model
module Route_monitor = Hoyan_monitor.Route_monitor
module Traffic_monitor = Hoyan_monitor.Traffic_monitor
module Topo_monitor = Hoyan_monitor.Topo_monitor
module Faults = Hoyan_monitor.Faults
module Validate = Hoyan_diag.Validate
module Rootcause = Hoyan_diag.Rootcause
module Issues = Hoyan_diag.Issues
module Vsb_test = Hoyan_diag.Vsb_test
module Vsb = Hoyan_config.Vsb
module Types = Hoyan_config.Types
module Printer = Hoyan_config.Printer
module Preprocess = Hoyan_core.Preprocess
module Smap = Map.Make (String)

(* ------------------------------------------------------------------ *)

let figure9 () =
  header "Figure 9: root-cause analysis of a traffic-load inaccuracy";
  let sc = S.fig9 () in
  row "%s" sc.S.dg_description;
  (* the live network and Hoyan's (pre-fix) simulation *)
  let live_rib =
    (Route_sim.run sc.S.dg_live_model ~input_routes:sc.S.dg_inputs ()).Route_sim.rib
  in
  let sim_rib =
    (Route_sim.run sc.S.dg_hoyan_model ~input_routes:sc.S.dg_inputs ()).Route_sim.rib
  in
  let live_tr =
    Traffic_sim.run sc.S.dg_live_model ~rib:live_rib ~flows:[ sc.S.dg_flow ] ()
  in
  let sim_tr =
    Traffic_sim.run sc.S.dg_hoyan_model ~rib:sim_rib ~flows:[ sc.S.dg_flow ] ()
  in
  (* step 1: the link with a large simulated-vs-real load difference *)
  let link = sc.S.dg_link in
  let load tr =
    Option.value (Hashtbl.find_opt tr.Traffic_sim.link_load link) ~default:0.
  in
  row "step 1: link %s->%s | simulated %.1f Gbps vs real %.1f Gbps" (fst link)
    (snd link)
    (load sim_tr /. 1e9)
    (load live_tr /. 1e9);
  (* steps 2-5 via the workflow *)
  let records =
    Traffic_monitor.observe_flows (Traffic_monitor.create ()) [ sc.S.dg_flow ]
  in
  (match
     Rootcause.analyze_link sc.S.dg_hoyan_model ~link ~monitored_flows:records
       ~sim_rib ~real_rib:live_rib
   with
  | None -> row "workflow produced no finding (unexpected)"
  | Some f ->
      row "steps 2-5: %s" (Rootcause.finding_to_string f));
  row
    "(the production case led to the 'IGP cost for SR' VSB of Table 5; after \
     patching the model, simulated and real loads agree)"

(* ------------------------------------------------------------------ *)
(* Table 4: the fault-injection campaign                                *)
(* ------------------------------------------------------------------ *)

(* A campaign workload with DC routers (some faults need DC aggregates). *)
let campaign_net = lazy (G.generate { G.small with G.g_dcs_per_region = 4 })

type truth = {
  tr_rib : Route.t list;
  tr_traffic : Traffic_sim.result;
}

let campaign_truth =
  lazy
    (let g = Lazy.force campaign_net in
     let rib = (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib in
     let traffic = Traffic_sim.run g.G.model ~rib ~flows:g.G.flows () in
     { tr_rib = rib; tr_traffic = traffic })

(* One injected instance: returns (detected, classified_class). *)
let inject (cls : Issues.cls) (variant : int) : bool * Issues.cls =
  let g = Lazy.force campaign_net in
  let truth = Lazy.force campaign_truth in
  let nth_dev l n = List.nth l (n mod List.length l) in
  match cls with
  | Issues.Route_monitoring_data ->
      let dev = nth_dev g.G.borders variant in
      let monitored =
        Route_monitor.observe
          (Route_monitor.create ~faults:[ Faults.Agent_down dev ] ())
          truth.tr_rib
      in
      let issues, _ = Validate.validate_routes ~simulated:truth.tr_rib ~monitored () in
      let whole_device =
        List.exists
          (function
            | Validate.Missing_in_monitor r -> String.equal r.Route.device dev
            | _ -> false)
          issues
      in
      ( issues <> [],
        Issues.classify
          { Issues.no_evidence with
            Issues.ev_routes_missing_whole_device =
              (if whole_device then Some dev else None) } )
  | Issues.Traffic_monitoring_data ->
      let link =
        Hashtbl.fold (fun k _ acc -> k :: acc) truth.tr_traffic.Traffic_sim.link_load []
        |> fun l -> nth_dev l variant
      in
      let monitored =
        Traffic_monitor.observe_link_loads
          (Traffic_monitor.create
             ~faults:[ Faults.Snmp_counter_stuck (fst link, snd link) ]
             ())
          truth.tr_traffic.Traffic_sim.link_load
      in
      let issues, _ =
        Validate.validate_loads ~threshold:0.001 ~topo:g.G.model.Model.topo
          ~simulated:truth.tr_traffic.Traffic_sim.link_load ~monitored ()
      in
      (* probe: the RIBs and paths agree, only volumes differ *)
      ( issues <> [],
        Issues.classify
          { Issues.no_evidence with Issues.ev_flow_volume_only = issues <> [] } )
  | Issues.Topology_data ->
      let a = nth_dev g.G.borders variant
      and b = nth_dev g.G.borders (variant + 1) in
      let observed =
        Topo_monitor.observe
          (Topo_monitor.create ~faults:[ Faults.Stale_link (a, b) ] ())
          g.G.model.Model.topo
      in
      let mismatch =
        Topology.num_links observed <> Topology.num_links g.G.model.Model.topo
      in
      ( mismatch,
        Issues.classify
          { Issues.no_evidence with Issues.ev_topo_mismatch = mismatch } )
  | Issues.Config_parsing ->
      (* re-parse one vendor-A border with the historical 'additive' flaw;
         the flawed model mispredicts communities on DC routes *)
      let dev =
        (* a vendor-A border with an attached DC: the 'additive' flaw only
           shows where add-community policies actually fire *)
        List.filter
          (fun d ->
            (match Model.config g.G.model d with
            | Some cfg -> String.equal cfg.Types.dc_vendor "vendorA"
            | None -> false)
            && List.exists
                 (fun nb ->
                   match Topology.device g.G.model.Model.topo nb with
                   | Some nd -> nd.Topology.role = Topology.Dc_core
                   | None -> false)
                 (Topology.neighbors g.G.model.Model.topo d))
          g.G.borders
        |> fun l -> nth_dev l variant
      in
      let cfg = Option.get (Model.config g.G.model dev) in
      let text = Printer.print cfg in
      let flawed_cfg, _ =
        Hoyan_config.Parser_a.parse
          ~flaws:[ Hoyan_config.Parser_a.Ignore_additive ] ~device:dev text
      in
      let flawed_model =
        Model.build g.G.model.Model.topo
          (Smap.add dev flawed_cfg g.G.model.Model.configs)
      in
      let sim_rib =
        (Route_sim.run flawed_model ~input_routes:g.G.input_routes ()).Route_sim.rib
      in
      let monitored = Route_monitor.observe (Route_monitor.create ()) truth.tr_rib in
      let issues, _ = Validate.validate_routes ~simulated:sim_rib ~monitored () in
      (* probe: strict re-parse disagrees with the deployed model *)
      let strict_cfg, _ = Hoyan_config.Parser_a.parse ~device:dev text in
      let parse_diff =
        not (String.equal (Printer.print strict_cfg) (Printer.print flawed_cfg))
      in
      ( issues <> [],
        Issues.classify
          { Issues.no_evidence with Issues.ev_parse_errors = parse_diff } )
  | Issues.Input_route_building ->
      (* the flawed "discard empty AS path" rule drops DC aggregates *)
      let inputs =
        Preprocess.build_input_routes
          ~rules:(Preprocess.default_rules @ [ Preprocess.Discard_empty_as_path ])
          g.G.model g.G.input_routes
      in
      let sim_rib = (Route_sim.run g.G.model ~input_routes:inputs ()).Route_sim.rib in
      let monitored = Route_monitor.observe (Route_monitor.create ()) truth.tr_rib in
      let issues, _ = Validate.validate_routes ~simulated:sim_rib ~monitored () in
      let dropped = List.length g.G.input_routes - List.length inputs in
      ( issues <> [],
        Issues.classify
          { Issues.no_evidence with Issues.ev_input_rule_suspect = dropped > 0 } )
  | Issues.Simulation_bug ->
      (* the flawed legacy AS-path regex engine *)
      let flawed_model =
        Model.build ~regex:Hoyan_regex.Regex.Legacy.matches_str
          g.G.model.Model.topo g.G.model.Model.configs
      in
      let sim_rib =
        (Route_sim.run flawed_model ~input_routes:g.G.input_routes ()).Route_sim.rib
      in
      let monitored = Route_monitor.observe (Route_monitor.create ()) truth.tr_rib in
      let issues, _ = Validate.validate_routes ~simulated:sim_rib ~monitored () in
      (* probe: same config, different policy outcome between engines *)
      ( issues <> [],
        Issues.classify
          { Issues.no_evidence with Issues.ev_policy_match_diff = issues <> [] } )
  | Issues.Vendor_specific_behaviour ->
      (* Hoyan models one vendor-B device with vendor-A semantics *)
      let dev =
        List.filter
          (fun (d : Topology.device) -> String.equal d.Topology.vendor "vendorB")
          (Topology.devices g.G.model.Model.topo)
        |> fun l ->
        (nth_dev l variant).Topology.name
      in
      let cfg = Option.get (Model.config g.G.model dev) in
      let wrong_cfg = { cfg with Types.dc_vendor = "vendorA" } in
      let flawed_model =
        Model.build g.G.model.Model.topo
          (Smap.add dev wrong_cfg g.G.model.Model.configs)
      in
      let sim_rib =
        (Route_sim.run flawed_model ~input_routes:g.G.input_routes ()).Route_sim.rib
      in
      let diff =
        List.length (Rib.Global.diff sim_rib truth.tr_rib)
        + List.length (Rib.Global.diff truth.tr_rib sim_rib)
      in
      (* probe: the divergence follows the vendor boundary *)
      ( diff > 0,
        Issues.classify
          { Issues.no_evidence with Issues.ev_vendor_dependent = diff > 0 } )
  | Issues.Unmodeled_feature ->
      (* the pre-2023 IS-IS TE gap: the model ignores TE costs *)
      let flawed_model =
        Model.build ~te_aware:false g.G.model.Model.topo g.G.model.Model.configs
      in
      let sim_rib =
        (Route_sim.run flawed_model ~input_routes:g.G.input_routes ()).Route_sim.rib
      in
      let diff =
        List.length (Rib.Global.diff sim_rib truth.tr_rib)
        + List.length (Rib.Global.diff truth.tr_rib sim_rib)
      in
      (* probe: enabling the feature flag removes the divergence *)
      ( diff > 0,
        Issues.classify
          { Issues.no_evidence with Issues.ev_unmodeled_feature = diff > 0 } )
  | Issues.Bgp_convergence ->
      (* the live network settled on the other of two decision-equal
         paths: swap Best and Ecmp on one multipath prefix *)
      let live_rib =
        (* find a prefix with an ECMP companion and swap which of the two
           decision-equal paths the live network installed as best *)
        let target =
          List.find_map
            (fun (r : Route.t) ->
              if r.Route.route_type = Route.Ecmp then
                Some (r.Route.device, r.Route.vrf, r.Route.prefix)
              else None)
            truth.tr_rib
        in
        match target with
        | None -> truth.tr_rib
        | Some (dev, vrf, prefix) ->
            let swapped_one = ref false in
            List.map
              (fun (r : Route.t) ->
                if
                  String.equal r.Route.device dev
                  && String.equal r.Route.vrf vrf
                  && Prefix.equal r.Route.prefix prefix
                then
                  match r.Route.route_type with
                  | Route.Best -> { r with Route.route_type = Route.Ecmp }
                  | Route.Ecmp when not !swapped_one ->
                      swapped_one := true;
                      { r with Route.route_type = Route.Best }
                  | _ -> r
                else r)
              truth.tr_rib
      in
      let monitored = Route_monitor.observe (Route_monitor.create ()) live_rib in
      let issues, _ = Validate.validate_routes ~simulated:truth.tr_rib ~monitored () in
      ( issues <> [],
        Issues.classify
          { Issues.no_evidence with
            Issues.ev_multiple_stable_states = issues <> [] } )
  | Issues.Other ->
      (* flow-record loss: records missing from the monitoring, nothing
         wrong with the simulation -- lands in "others" *)
      let dev = nth_dev g.G.borders variant in
      let records =
        Traffic_monitor.observe_flows
          (Traffic_monitor.create ~faults:[ Faults.Flow_record_loss (dev, 1.0) ] ())
          g.G.flows
      in
      let lost = List.length g.G.flows - List.length records in
      (lost > 0, Issues.classify Issues.no_evidence)

let table4 () =
  header "Table 4: fault-injection campaign over the issue taxonomy";
  (* instance counts shaped by the paper's 6-month distribution (52 issues) *)
  let counts =
    [
      (Issues.Route_monitoring_data, 12);
      (Issues.Traffic_monitoring_data, 10);
      (Issues.Topology_data, 6);
      (Issues.Config_parsing, 5);
      (Issues.Input_route_building, 5);
      (Issues.Simulation_bug, 4);
      (Issues.Vendor_specific_behaviour, 3);
      (Issues.Unmodeled_feature, 2);
      (Issues.Bgp_convergence, 1);
      (Issues.Other, 4);
    ]
  in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 counts in
  row "%-28s %8s %9s %9s %11s %11s" "issue class" "paper %" "injected"
    "detected" "classified" "measured %";
  List.iter
    (fun (cls, n) ->
      let detected = ref 0 and classified = ref 0 in
      for v = 0 to n - 1 do
        let det, got = inject cls v in
        if det then incr detected;
        if det && got = cls then incr classified
      done;
      let paper =
        Option.value (List.assoc_opt cls Issues.paper_distribution) ~default:0.
      in
      row "%-28s %7.2f%% %9d %9d %11d %10.2f%%" (Issues.to_string cls) paper n
        !detected !classified
        (100. *. float_of_int n /. float_of_int total))
    counts;
  row "every injected instance must be detected and correctly classified"

(* ------------------------------------------------------------------ *)

let table5 () =
  header "Table 5: vendor-specific behaviours via differential testing";
  row "%-30s %-22s %-22s %-10s" "VSB dimension" "vendor A" "vendor B" "detected";
  List.iter
    (fun (d : Vsb_test.detection) ->
      let dim = d.Vsb_test.det_dimension in
      row "%-30s %-22s %-22s %-10s" dim
        (Vsb.dimension_value Vsb.vendor_a dim)
        (Vsb.dimension_value Vsb.vendor_b dim)
        (if d.Vsb_test.det_detected then
           Printf.sprintf "yes (%d rows)" d.Vsb_test.det_diff_size
         else "NO"))
    (Vsb_test.run_all ());
  row "all 16 dimensions are behaviourally observable under differential testing"

let all () =
  figure9 ();
  table4 ();
  table5 ()
