(* Scalability experiments: Table 1, Figure 1, Figure 5(a)-(d).

   The compute time of every subtask is really measured; multi-server
   end-to-end times replay those durations through the MQ scheduler
   (DESIGN.md §2 explains why this substitution preserves the paper's
   curves).  Absolute numbers are laptop-scale; the shapes — 5x speedup
   at 10 servers, diminishing returns from subtask skew, the ordering
   heuristic's I/O reduction, centralized OOM at WAN+DCN scale — are the
   reproduction targets. *)

open B_common
module G = Hoyan_workload.Generator
module Route_sim = Hoyan_sim.Route_sim
module Centralized = Hoyan_sim.Centralized
module Framework = Hoyan_dist.Framework
module Schedule = Hoyan_dist.Schedule
module Split = Hoyan_dist.Split
module Db = Hoyan_dist.Db
module Costmodel = Hoyan_dist.Costmodel
module Flow = Hoyan_net.Flow

let server_counts = [ 1; 2; 4; 6; 8; 10 ]

(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: scale requirements (paper) vs generated workloads (ours)";
  row "%-14s %-12s %-12s %-12s" "" "# routers" "# prefixes" "# flows";
  row "%-14s %-12s %-12s %-12s" "paper 2017" "hundreds" "O(10^4)" "n.a.";
  row "%-14s %-12s %-12s %-12s" "paper 2024" "> 2000" "O(10^6)" "O(10^9)";
  let show name (g : G.t) =
    row "%-14s %-12d %-12d %-12d (%d records x %d population)" name
      (G.device_count g) g.G.params.G.g_prefixes
      (List.fold_left (fun n (f : Flow.t) -> n + f.Flow.population) 0 g.G.flows)
      (List.length g.G.flows) g.G.params.G.g_flow_population
  in
  show "ours WAN" (Lazy.force wan);
  show "ours WAN+DCN" (Lazy.force wan_dcn);
  row "(scaled ~1/10 per DESIGN.md; run-time requirement: minutes, see Fig 5)"

(* ------------------------------------------------------------------ *)

let figure1 () =
  header "Figure 1: the original centralized simulation";
  let g = Lazy.force wan in
  (* memory cap calibrated so the WAN fits comfortably and WAN+DCN does
     not (the paper's server had 791 GB against a production-scale state;
     we scale both down together) *)
  (* calibrated so the WAN fits comfortably while WAN+DCN completes only
     a fraction before exhausting memory, with the tail cut off by the
     run deadline (mirroring the paper's 30% / 40% / 30% split) *)
  let mem_cap = 420 * 1024 * 1024 in
  sub "WAN: centralized simulation time vs fraction of prefixes";
  row "%-22s %-10s %-12s %-8s" "prefixes" "time" "peak-mem" "status";
  List.iter
    (fun frac ->
      let n = List.length g.G.input_routes * frac / 100 in
      let inputs = List.filteri (fun i _ -> i < n) g.G.input_routes in
      let o = Centralized.run ~mem_cap_bytes:mem_cap g.G.model ~input_routes:inputs () in
      row "%3d%% (%5d routes)    %-10s %6.0f MB    %s" frac n
        (seconds o.Centralized.c_time_s)
        (float_of_int o.Centralized.c_peak_bytes /. 1048576.)
        (if o.Centralized.c_oom_prefixes = 0 then "ok" else "OOM"))
    [ 20; 40; 60; 80; 100 ];
  sub "WAN+DCN: the centralized design runs out of memory";
  let gd = Lazy.force wan_dcn in
  let o =
    Centralized.run ~mem_cap_bytes:mem_cap ~time_budget_s:55. gd.G.model
      ~input_routes:gd.G.input_routes ()
  in
  row "completed: %.0f%% of prefixes   OOM-failed: %.0f%%   not attempted: %.0f%%"
    (100. *. Centralized.completed_frac o)
    (100. *. Centralized.oom_frac o)
    (100.
    *. float_of_int o.Centralized.c_skipped_prefixes
    /. float_of_int (max 1 o.Centralized.c_total_prefixes));
  row "(paper: simulated 30%%, failed 40%% due to memory exhaustion)"

(* ------------------------------------------------------------------ *)

type dist_run = {
  dr_fw : Framework.t;
  dr_route : Framework.route_phase;
}

let route_phase_of (g : G.t) ~subtasks : dist_run =
  let fw = Framework.create g.G.model in
  let rp = Framework.run_route_phase ~subtasks fw ~input_routes:g.G.input_routes in
  { dr_fw = fw; dr_route = rp }

let wan_run = lazy (route_phase_of (Lazy.force wan) ~subtasks:100)
let wan_dcn_run = lazy (route_phase_of (Lazy.force wan_dcn) ~subtasks:100)

let figure5a () =
  header "Figure 5(a): distributed route simulation time vs #servers";
  let print_curve label (r : dist_run) =
    sub label;
    row "%-8s %-10s" "servers" "time";
    List.iter
      (fun s ->
        let t =
          Framework.phase_time r.dr_fw ~servers:s r.dr_route.Framework.rp_subtasks
        in
        row "%-8d %-10s" s (seconds t))
      server_counts;
    let t1 = Framework.phase_time r.dr_fw ~servers:1 r.dr_route.Framework.rp_subtasks in
    let t10 = Framework.phase_time r.dr_fw ~servers:10 r.dr_route.Framework.rp_subtasks in
    row "speedup at 10 servers: %.1fx (paper: ~5x vs the centralized run)"
      (t1 /. t10)
  in
  print_curve "WAN (100 subtasks)" (Lazy.force wan_run);
  print_curve "WAN+DCN (100 subtasks)" (Lazy.force wan_dcn_run)

let figure5b () =
  header "Figure 5(b): distributed traffic simulation; ordering vs baseline";
  let g = Lazy.force wan in
  let subtasks = if !quick then 32 else 128 in
  let run dep_mode =
    let r = route_phase_of g ~subtasks:100 in
    let tp =
      Framework.run_traffic_phase ~subtasks ~dep_mode r.dr_fw
        ~route_phase:r.dr_route ~flows:g.G.flows
    in
    (r.dr_fw, tp)
  in
  let fw_ord, ordered = run Framework.Deps_ordered in
  let fw_all, baseline = run Framework.Deps_all in
  row "%-8s %-14s %-14s" "servers" "ordering" "baseline(all)";
  List.iter
    (fun s ->
      let t_ord = Framework.phase_time fw_ord ~servers:s ordered.Framework.tp_subtasks in
      let t_all = Framework.phase_time fw_all ~servers:s baseline.Framework.tp_subtasks in
      row "%-8d %-14s %-14s" s (seconds t_ord) (seconds t_all))
    server_counts;
  let t_ord = Framework.phase_time fw_ord ~servers:10 ordered.Framework.tp_subtasks in
  let t_all = Framework.phase_time fw_all ~servers:10 baseline.Framework.tp_subtasks in
  row "baseline is +%.0f%% at 10 servers (paper: +52%%)"
    (100. *. ((t_all -. t_ord) /. t_ord));
  let t1 = Framework.phase_time fw_ord ~servers:1 ordered.Framework.tp_subtasks in
  row "ordering speedup 1->10 servers: %.1fx (paper: 4x)" (t1 /. t_ord)

let figure5c () =
  header "Figure 5(c): CDF of route-simulation subtask run time";
  let print_one label (r : dist_run) =
    let times =
      Framework.effective_times r.dr_fw r.dr_route.Framework.rp_subtasks
    in
    print_cdf (label ^ ": subtask wall time") times ~unit:"s";
    let mn = quantile 0.0 times and mx = quantile 1.0 times in
    row "longest/shortest subtask: %.0fx (the skew behind the diminishing returns)"
      (mx /. Float.max mn 1e-9)
  in
  print_one "WAN" (Lazy.force wan_run);
  print_one "WAN+DCN" (Lazy.force wan_dcn_run);
  row
    "(paper: shortest ~4s, longest >2min; ISP routes propagate a few hops \
     while DC routes cross the whole network)"

let figure5d () =
  header "Figure 5(d): loaded RIB files per traffic subtask";
  let g = Lazy.force wan in
  let subtasks = if !quick then 32 else 128 in
  let loaded strategy =
    let fw = Framework.create g.G.model in
    let rp =
      Framework.run_route_phase ~strategy ~subtasks:100 fw
        ~input_routes:g.G.input_routes
    in
    let tp =
      Framework.run_traffic_phase ~strategy ~subtasks
        ~dep_mode:Framework.Deps_ordered fw ~route_phase:rp ~flows:g.G.flows
    in
    List.map snd tp.Framework.tp_loaded_fracs
  in
  let ordered = loaded Split.Ordered in
  let random = loaded (Split.Random 99) in
  print_cdf "ordering heuristic: fraction of RIB files loaded" ordered ~unit:"";
  print_cdf "random partitioning: fraction of RIB files loaded" random ~unit:"";
  let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  row "mean loaded fraction: ordering %.2f vs random %.2f" (avg ordered)
    (avg random);
  row "(paper: >80%% of ordered subtasks load <= 1/3 of RIB files; random loads all)"

let all () =
  table1 ();
  figure1 ();
  figure5a ();
  figure5b ();
  figure5c ();
  figure5d ()
