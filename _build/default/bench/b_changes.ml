(* Change-type experiments: Table 2 (all 12 supported change types with
   their example intents), Table 3 (capability matrix), Table 6 (the
   change-risk corpus and what Hoyan detects). *)

open B_common
open Hoyan_net
module G = Hoyan_workload.Generator
module B = Hoyan_workload.Builder
module S = Hoyan_workload.Scenarios
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Intents = Hoyan_core.Intents
module Preprocess = Hoyan_core.Preprocess
module Verify_request = Hoyan_core.Verify_request
module Model = Hoyan_sim.Model

let pfx = Prefix.of_string_exn

(* the workload for change types that run on the generated WAN *)
let net = lazy (G.generate { G.small with G.g_dcs_per_region = 2 })

let base =
  lazy
    (let g = Lazy.force net in
     Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
       ~monitored_flows:g.G.flows)

(* ------------------------------------------------------------------ *)
(* Small purpose-built networks for the data-plane change types         *)
(* ------------------------------------------------------------------ *)

(* A diamond S -> {M1, M2} -> D with the prefix P originated at D.
   [with_sm2_link] controls whether the S-M2 link is physically present
   (its interfaces are provisioned either way). *)
let diamond ~with_sm2_link () =
  let b = B.create () in
  List.iter
    (fun (n, id) ->
      B.add_device b ~name:n ~vendor:"vendorA" ~asn:(65000 + Char.code n.[0])
        ~router_id:(B.ip id) ())
    [ ("S", "1.1.1.1"); ("M1", "2.2.2.2"); ("M2", "3.3.3.3"); ("D", "4.4.4.4") ];
  let s_m1, m1_s = B.link b ~a:"S" ~b:"M1" ~subnet:(pfx "10.1.0.0/31") () in
  let s_m2, m2_s = B.link b ~a:"S" ~b:"M2" ~subnet:(pfx "10.2.0.0/31") () in
  let m1_d, d_m1 = B.link b ~a:"M1" ~b:"D" ~subnet:(pfx "10.3.0.0/31") () in
  let m2_d, d_m2 = B.link b ~a:"M2" ~b:"D" ~subnet:(pfx "10.4.0.0/31") () in
  B.bgp_session b ~a:"S" ~b:"M1" ~a_addr:s_m1 ~b_addr:m1_s ();
  B.bgp_session b ~a:"S" ~b:"M2" ~a_addr:s_m2 ~b_addr:m2_s ();
  B.bgp_session b ~a:"M1" ~b:"D" ~a_addr:m1_d ~b_addr:d_m1 ();
  B.bgp_session b ~a:"M2" ~b:"D" ~a_addr:m2_d ~b_addr:d_m2 ();
  B.add_network b "D" (pfx "99.0.0.0/24");
  if not with_sm2_link then B.remove_link b ~a:"S" ~b:"M2";
  b

let diamond_base ~with_sm2_link ~flows () =
  let b = diamond ~with_sm2_link () in
  Preprocess.prepare (B.build b) ~monitored_routes:[] ~monitored_flows:flows

let diamond_flow =
  Flow.make ~src:(B.ip "172.16.5.5") ~dst:(B.ip "99.0.0.7") ~ingress:"S"
    ~volume:1e9 ()

(* ------------------------------------------------------------------ *)
(* Table 2: one verification per change type                            *)
(* ------------------------------------------------------------------ *)

type case = {
  c_category : string;
  c_type : string;
  c_intent : string; (* rendered intent summary *)
  c_run : unit -> Verify_request.result;
  c_expect_ok : bool; (* the change is correct: verification passes *)
}

let run_rq ?mode base name plan intents =
  Verify_request.run ?mode base
    { Verify_request.rq_name = name; rq_plan = plan; rq_intents = intents }

let cases () : case list =
  let g = Lazy.force net in
  let b = Lazy.force base in
  let border = List.hd g.G.borders in
  let some_core =
    Topology.devices g.G.model.Model.topo
    |> List.find (fun (d : Topology.device) -> d.Topology.role = Topology.Wan_core)
    |> fun d -> d.Topology.name
  in
  [
    (* --- OS maintenance --------------------------------------------- *)
    {
      c_category = "OS maintenance";
      c_type = "OS upgrade";
      c_intent = "all routes remain unchanged (RCL: PRE = POST)";
      c_run =
        (fun () ->
          (* the upgrade preserves configuration: an empty delta *)
          run_rq b "os-upgrade" (Cp.make "os-upgrade")
            [ Intents.Route_change "PRE = POST" ]);
      c_expect_ok = true;
    };
    {
      c_category = "OS maintenance";
      c_type = "OS patch";
      c_intent = "all routes remain unchanged, incl. attributes";
      c_run =
        (fun () ->
          run_rq b "os-patch" (Cp.make "os-patch")
            [
              Intents.Route_change
                "forall device : PRE |> count() = POST |> count()";
              Intents.Route_change "PRE = POST";
            ]);
      c_expect_ok = true;
    };
    (* --- configuration maintenance ----------------------------------- *)
    {
      c_category = "Config maintenance";
      c_type = "Route attributes modification";
      c_intent = "routes with C1 change to C2; others unchanged";
      c_run =
        (fun () ->
          (* rewrite the RRs' export: stamp 64512:400 on region-0 ISP
             routes (community C1 = 64512:100 -> +C2 = 64512:400) *)
          let rrs =
            Topology.devices g.G.model.Model.topo
            |> List.filter (fun (d : Topology.device) ->
                   d.Topology.role = Topology.Rr)
            |> List.map (fun (d : Topology.device) -> d.Topology.name)
          in
          let block dev =
            let vendor =
              (Option.get (Model.config g.G.model dev)).Types.dc_vendor
            in
            if String.equal vendor "vendorA" then
              ( dev,
                "route-map RR_OUT permit 7\n match community ISP_R0\n set \
                 community 64512:400 additive\n continue\n" )
            else
              ( dev,
                "route-policy RR_OUT permit node 7\n if-match \
                 community-filter ISP_R0\n apply community 64512:400 \
                 additive\n goto next-node\n" )
          in
          run_rq b "attr-mod"
            (Cp.make "attr-mod" ~commands:(List.map block rrs))
            [
              Intents.Route_change
                "communities has 64512:100 and not (device matches \
                 \"r00-.*\") => POST||(communities has 64512:400) |> count() \
                 = POST |> count()";
              Intents.Route_change
                "not (communities has 64512:100) => PRE = POST";
            ]);
      c_expect_ok = true;
    };
    {
      c_category = "Config maintenance";
      c_type = "Static route modification";
      c_intent = "the static route reaches the given router";
      c_run =
        (fun () ->
          let vendor =
            (Option.get (Model.config g.G.model some_core)).Types.dc_vendor
          in
          let nh =
            (* next hop: any neighbor's loopback is resolvable via IGP *)
            (Topology.device_exn g.G.model.Model.topo border).Topology.router_id
          in
          let cmd =
            if String.equal vendor "vendorA" then
              Printf.sprintf "ip route 203.0.113.0/24 %s preference 5 tag 0\n"
                (Ip.to_string nh)
            else
              Printf.sprintf
                "ip route-static 203.0.113.0 24 %s preference 5 tag 0\n"
                (Ip.to_string nh)
          in
          run_rq b "static-mod"
            (Cp.make "static-mod" ~commands:[ (some_core, cmd) ])
            [
              Intents.Route_reach
                { rr_prefix = pfx "203.0.113.0/24"; rr_devices = [ some_core ];
                  rr_expect = true };
            ]);
      c_expect_ok = true;
    };
    {
      c_category = "Config maintenance";
      c_type = "PBR modification";
      c_intent = "matching flows move from path A to path B";
      c_run =
        (fun () ->
          (* diamond with unequal IGP costs: flows use M1; PBR at S's
             downstream M1 is not possible at ingress, so steer at M1's
             D-facing decision by PBR on M1's S-facing interface *)
          let b2 = diamond ~with_sm2_link:true () in
          (* make M1 the only IGP choice initially *)
          B.update_config b2 "S" (fun cfg ->
              { cfg with
                Types.dc_isis =
                  { cfg.Types.dc_isis with
                    Types.isis_ifaces =
                      List.map
                        (fun (ii : Types.isis_iface) ->
                          if String.equal ii.Types.ii_name "Eth1" then
                            { ii with Types.ii_cost = 100 }
                          else ii)
                        cfg.Types.dc_isis.Types.isis_ifaces } });
          let base2 =
            Preprocess.prepare (B.build b2) ~monitored_routes:[]
              ~monitored_flows:[ diamond_flow ]
          in
          (* the PBR rule on M1's ingress interface (from S) redirects
             HTTP to M2 via D? no — redirect to D directly stays; steer
             back through S is a loop.  Real use: redirect to the D next
             hop over a different egress; here: force D via 10.3.0.1 *)
          let block =
            "access-list STEER seq 5 permit tcp any 99.0.0.0/24 eq 80\n\
             pbr interface Eth1 acl STEER next-hop 10.3.0.1\n"
          in
          let http_flow = { diamond_flow with Flow.dport = 80 } in
          ignore http_flow;
          run_rq base2 "pbr-mod"
            (Cp.make "pbr-mod" ~commands:[ ("M1", block) ])
            [
              Intents.Flow_through
                { fl_flow = diamond_flow; fl_device = "M1"; fl_expect = true };
              Intents.Packet_reach { pr_flow = diamond_flow; pr_expect = true };
            ]);
      c_expect_ok = true;
    };
    {
      c_category = "Config maintenance";
      c_type = "ACL modification";
      c_intent = "all matching flows are blocked";
      c_run =
        (fun () ->
          let base2 =
            diamond_base ~with_sm2_link:true ~flows:[ diamond_flow ] ()
          in
          (* drop TCP/0 from 172.16.0.0/16 on M1's and M2's S-facing
             interfaces (Eth0 on both) *)
          let block =
            "access-list BLOCK seq 5 deny tcp 172.16.0.0/16 any\ninterface \
             Eth0\n ip address PLACEHOLDER\n"
          in
          ignore block;
          let mk dev addr plen =
            ( dev,
              Printf.sprintf
                "access-list BLOCK seq 5 deny tcp 172.16.0.0/16 any\n\
                 interface Eth0\n ip address %s/%d\n ip access-group BLOCK \
                 in\n"
                addr plen )
          in
          run_rq base2 "acl-mod"
            (Cp.make "acl-mod"
               ~commands:[ mk "M1" "10.1.0.1" 31; mk "M2" "10.2.0.1" 31 ])
            [ Intents.Packet_reach { pr_flow = diamond_flow; pr_expect = false } ]);
      c_expect_ok = true;
    };
    (* --- network deployment ------------------------------------------- *)
    {
      c_category = "Network deployment";
      c_type = "Adding new links";
      c_intent = "next-hop count increases; flows ECMP onto the new link";
      c_run =
        (fun () ->
          let base2 =
            diamond_base ~with_sm2_link:false ~flows:[ diamond_flow ] ()
          in
          let plan =
            Cp.make "add-link"
              ~topo_ops:
                [
                  Cp.Add_link
                    { la = "S"; la_if = "Eth1"; lb = "M2"; lb_if = "Eth0";
                      l_bandwidth = 100e9 };
                ]
          in
          run_rq base2 "add-link" plan
            [
              Intents.Route_change
                "device = S and prefix = 99.0.0.0/24 => PRE |> \
                 distCnt(nexthop) < POST |> distCnt(nexthop)";
              Intents.Flow_through
                { fl_flow = diamond_flow; fl_device = "M2"; fl_expect = true };
            ]);
      c_expect_ok = true;
    };
    {
      c_category = "Network deployment";
      c_type = "Adding new routers";
      c_intent = "the new router carries the same routes as its group";
      c_run =
        (fun () ->
          let base2 =
            diamond_base ~with_sm2_link:true ~flows:[ diamond_flow ] ()
          in
          (* M3 joins the M1/M2 group: device + links + a full config
             block in its dialect *)
          let plan =
            Cp.make "add-router"
              ~topo_ops:
                [
                  Cp.Add_device
                    { Topology.name = "M3"; vendor = "vendorA"; asn = 65077;
                      router_id = B.ip "5.5.5.5"; region = "r1";
                      role = Topology.Wan_core };
                  Cp.Add_link
                    { la = "S"; la_if = "Eth9"; lb = "M3"; lb_if = "Eth0";
                      l_bandwidth = 100e9 };
                  Cp.Add_link
                    { la = "M3"; la_if = "Eth1"; lb = "D"; lb_if = "Eth9";
                      l_bandwidth = 100e9 };
                ]
              ~commands:
                [
                  ( "M3",
                    "interface Eth0\n ip address 10.5.0.1/31\n isis cost 10\n\
                     interface Eth1\n ip address 10.6.0.0/31\n isis cost 10\n\
                     router bgp 65077\n bgp router-id 5.5.5.5\n neighbor \
                     10.5.0.0 remote-as 65083\n neighbor 10.6.0.1 remote-as \
                     65068\n" );
                  ( "S",
                    "interface Eth9\n ip address 10.5.0.0/31\n isis cost 10\n\
                     router bgp 65083\n neighbor 10.5.0.1 remote-as 65077\n" );
                  ( "D",
                    "interface Eth9\n ip address 10.6.0.1/31\n isis cost 10\n\
                     router bgp 65068\n neighbor 10.6.0.0 remote-as 65077\n" );
                ]
          in
          run_rq base2 "add-router" plan
            [
              Intents.Route_change
                "forall prefix : POST||(device = M3)||(protocol = bgp) |> \
                 distCnt(prefix) = POST||(device = M2)||(protocol = bgp) |> \
                 distCnt(prefix)";
              Intents.Flow_through
                { fl_flow = diamond_flow; fl_device = "M3"; fl_expect = true };
            ]);
      c_expect_ok = true;
    };
    {
      c_category = "Network deployment";
      c_type = "Topology adjustment";
      c_intent = "flows on path A move to path B";
      c_run =
        (fun () ->
          let base2 =
            diamond_base ~with_sm2_link:true ~flows:[ diamond_flow ] ()
          in
          (* drain M1: remove the S-M1 link *)
          let plan =
            Cp.make "drain-m1"
              ~topo_ops:[ Cp.Remove_link { ra = "S"; rb = "M1" } ]
          in
          run_rq base2 "drain-m1" plan
            [
              Intents.Flows_moved
                { fm_from = [ "S"; "M1" ]; fm_to = [ "S"; "M2" ] };
              Intents.Packet_reach { pr_flow = diamond_flow; pr_expect = true };
            ]);
      c_expect_ok = true;
    };
    (* --- business demand ---------------------------------------------- *)
    {
      c_category = "Business demand";
      c_type = "New prefix announcement";
      c_intent = "the target prefix reaches the given routers";
      c_run =
        (fun () ->
          let new_route =
            B.input_route ~device:border ~prefix:"203.0.113.0/24"
              ~as_path:[ 7018 ] ~local_pref:200 ()
          in
          let devices =
            Topology.device_names g.G.model.Model.topo
            |> List.filteri (fun i _ -> i < 6)
          in
          run_rq b "announce"
            { (Cp.make "announce") with Cp.cp_new_routes = [ new_route ] }
            [
              Intents.Route_reach
                { rr_prefix = pfx "203.0.113.0/24"; rr_devices = devices;
                  rr_expect = true };
            ]);
      c_expect_ok = true;
    };
    {
      c_category = "Business demand";
      c_type = "Prefix reclamation";
      c_intent = "the target prefix disappears from all routers";
      c_run =
        (fun () ->
          let victim =
            (List.hd (Lazy.force base).Preprocess.b_input_routes).Route.prefix
          in
          run_rq b "reclaim"
            { (Cp.make "reclaim") with Cp.cp_withdraw = [ victim ] }
            [
              Intents.Route_change
                (Printf.sprintf "prefix = %s => POST |> count() = 0"
                   (Prefix.to_string victim));
            ]);
      c_expect_ok = true;
    };
    {
      c_category = "Business demand";
      c_type = "Traffic steering";
      c_intent = "next hops change A->B; flows move; no overload";
      c_run =
        (fun () ->
          (* steer 99/24 from M1 to M2 by raising local-pref at S *)
          let base2 =
            diamond_base ~with_sm2_link:true ~flows:[ diamond_flow ] ()
          in
          let block =
            "ip prefix-list STEER seq 5 permit 99.0.0.0/24\nroute-map \
             VIA_M2 permit 10\n match ip prefix-list STEER\n set \
             local-preference 400\nroute-map VIA_M2 permit 20\nrouter bgp \
             65083\n neighbor 10.2.0.1 remote-as 65077\n neighbor 10.2.0.1 \
             route-map VIA_M2 in\n"
          in
          run_rq base2 "steer"
            (Cp.make "steer" ~commands:[ ("S", block) ])
            [
              Intents.Route_change
                "device = S and prefix = 99.0.0.0/24 and routeType = BEST => \
                 POST |> distVals(nexthop) = {10.2.0.1}";
              Intents.Flows_moved
                { fm_from = [ "S"; "M1" ]; fm_to = [ "S"; "M2" ] };
              Intents.Max_utilization 0.9;
            ]);
      c_expect_ok = true;
    };
  ]

let table2 () =
  header "Table 2: the 12 supported change types, each verified end-to-end";
  row "%-20s %-30s %-8s %-8s" "category" "change type" "verdict" "expected";
  let ok = ref 0 in
  List.iter
    (fun c ->
      let res = c.c_run () in
      let verdict = res.Verify_request.vr_ok in
      if verdict = c.c_expect_ok then incr ok
      else begin
        row "  !! %s:" c.c_type;
        print_string (Verify_request.report res)
      end;
      row "%-20s %-30s %-8s %-8s" c.c_category c.c_type
        (if verdict then "PASS" else "FAIL")
        (if c.c_expect_ok then "PASS" else "FAIL"))
    (cases ());
  row "%d/12 change types verified as expected" !ok

(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table 3: Hoyan's key evolution (capability matrix)";
  row "%-18s %-28s %-40s" "" "original [Ye et al. 2020]" "new (this reproduction)";
  row "%-18s %-28s %-40s" "simulation" "single server; parallel"
    "distributed (master/MQ/workers; Figure 5)";
  row "%-18s %-28s %-40s" "intents" "reachability"
    "+ route (RCL) / path / traffic-load intents";
  row "%-18s %-28s %-40s" "accuracy support" "BGP, IS-IS"
    "+ SR, PBR (Figure 9, Tables 4-5)"

(* ------------------------------------------------------------------ *)
(* Table 6: the change-risk corpus                                      *)
(* ------------------------------------------------------------------ *)

type risk_class =
  | Incorrect_commands
  | Design_flaws
  | Existing_misconfig
  | Topology_issues
  | Other_risk

let risk_class_to_string = function
  | Incorrect_commands -> "Incorrect commands"
  | Design_flaws -> "Change plan design flaws"
  | Existing_misconfig -> "Existing misconfiguration"
  | Topology_issues -> "Topology issues"
  | Other_risk -> "Others"

(* one risky plan per (class, variant): returns true when Hoyan flags it *)
let risky_change (cls : risk_class) (variant : int) : bool =
  let g = Lazy.force net in
  let b = Lazy.force base in
  let nth l n = List.nth l (n mod List.length l) in
  match cls with
  | Incorrect_commands -> (
      match variant mod 3 with
      | 0 ->
          (* typo in the router name: the change is ineffective there *)
          let res =
            run_rq b "typo-device"
              (Cp.make "typo-device"
                 ~commands:[ ("r00-bdrXX", "route-map NEW permit 10\n") ])
              [ Intents.Route_change "PRE = POST" ]
          in
          not res.Verify_request.vr_ok
      | 1 ->
          (* wrong command format for the device's vendor *)
          let dev = nth g.G.borders variant in
          let vendor = (Option.get (Model.config g.G.model dev)).Types.dc_vendor in
          let wrong_block =
            if String.equal vendor "vendorA" then
              "route-policy NEW permit node 10\n apply local-preference 7\n"
            else "route-map NEW permit 10\n set local-preference 7\n"
          in
          let res =
            run_rq b "wrong-dialect"
              (Cp.make "wrong-dialect" ~commands:[ (dev, wrong_block) ])
              [ Intents.Route_change "PRE = POST" ]
          in
          not res.Verify_request.vr_ok
      | _ ->
          (* wrong prefix mask in a deny filter on the RRs: unintended
             routes get blocked *)
          let rr =
            Topology.devices g.G.model.Model.topo
            |> List.filter (fun (d : Topology.device) -> d.Topology.role = Topology.Rr)
            |> fun l -> (nth l variant).Topology.name
          in
          let vendor = (Option.get (Model.config g.G.model rr)).Types.dc_vendor in
          (* intended: block 100.0.1.0/24; typed: /16 *)
          let block =
            if String.equal vendor "vendorA" then
              "ip prefix-list BLK seq 5 permit 100.0.0.0/16 le 32\nroute-map \
               RR_OUT deny 6\n match ip prefix-list BLK\n"
            else
              "ip ip-prefix BLK index 5 permit 100.0.0.0 16 less-equal 32\n\
               route-policy RR_OUT deny node 6\n if-match ip-prefix BLK\n"
          in
          let res =
            run_rq b "wrong-mask"
              (Cp.make "wrong-mask" ~commands:[ (rr, block) ])
              [
                (* only 100.0.1.0/24 should disappear network-wide *)
                Intents.Route_change
                  "not (prefix = 100.0.1.0/24) => forall prefix : PRE |> \
                   distCnt(device) <= POST |> distCnt(device) + 0";
                Intents.Route_change
                  "not (prefix = 100.0.1.0/24) => PRE = POST";
              ]
          in
          not res.Verify_request.vr_ok)
  | Design_flaws ->
      (* the plan sets local-pref 200 while the intent requires 250 *)
      let rr =
        Topology.devices g.G.model.Model.topo
        |> List.filter (fun (d : Topology.device) -> d.Topology.role = Topology.Rr)
        |> fun l -> (nth l variant).Topology.name
      in
      let vendor = (Option.get (Model.config g.G.model rr)).Types.dc_vendor in
      let block =
        if String.equal vendor "vendorA" then
          "route-map RR_OUT permit 7\n match community ISP_R0\n set \
           local-preference 200\n continue\n"
        else
          "route-policy RR_OUT permit node 7\n if-match community-filter \
           ISP_R0\n apply local-preference 200\n goto next-node\n"
      in
      let res =
        run_rq b "wrong-lp"
          (Cp.make "wrong-lp" ~commands:[ (rr, block) ])
          [
            Intents.Route_change
              (Printf.sprintf
                 "communities has 64512:100 and device matches \"%s\" => \
                  POST |> distVals(localPref) = {250}"
                 rr);
          ]
      in
      not res.Verify_request.vr_ok
  | Existing_misconfig ->
      let sc = S.fig10a () in
      let res = Verify_request.run sc.S.sc_base sc.S.sc_request in
      not res.Verify_request.vr_ok
  | Topology_issues ->
      (* maintenance removes a link the intent still needs *)
      let base2 = diamond_base ~with_sm2_link:false ~flows:[ diamond_flow ] () in
      let res =
        run_rq base2 "remove-spof"
          (Cp.make "remove-spof"
             ~topo_ops:[ Cp.Remove_link { ra = "S"; rb = "M1" } ])
          [ Intents.Packet_reach { pr_flow = diamond_flow; pr_expect = true } ]
      in
      not res.Verify_request.vr_ok
  | Other_risk ->
      let sc = S.fig10b () in
      let res = Verify_request.run sc.S.sc_base sc.S.sc_request in
      not res.Verify_request.vr_ok

let table6 () =
  header "Table 6: change-risk corpus — root causes of detected risks";
  (* corpus shaped like the paper's 2024 distribution (32 risks) *)
  let corpus =
    [
      (Incorrect_commands, 12, 37.5);
      (Design_flaws, 11, 34.4);
      (Existing_misconfig, 5, 15.6);
      (Topology_issues, 2, 6.3);
      (Other_risk, 2, 6.2);
    ]
  in
  let total = List.fold_left (fun a (_, n, _) -> a + n) 0 corpus in
  row "%-28s %8s %9s %9s %11s" "root cause" "paper %" "injected" "detected"
    "measured %";
  let all_detected = ref 0 in
  List.iter
    (fun (cls, n, paper) ->
      let detected = ref 0 in
      for v = 0 to n - 1 do
        if risky_change cls v then incr detected
      done;
      all_detected := !all_detected + !detected;
      row "%-28s %7.1f%% %9d %9d %10.1f%%" (risk_class_to_string cls) paper n
        !detected
        (100. *. float_of_int n /. float_of_int total))
    corpus;
  row "detection rate: %d/%d risky changes flagged before rollout"
    !all_detected total

let all () =
  table2 ();
  table3 ();
  table6 ()
