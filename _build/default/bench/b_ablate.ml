(* Ablations of the design choices DESIGN.md calls out: EC compression on
   route and flow inputs, split strategy / dependency mode, scheduler
   policy and subtask count. *)

open B_common
module G = Hoyan_workload.Generator
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Framework = Hoyan_dist.Framework
module Schedule = Hoyan_dist.Schedule

let route_ecs () =
  header "Ablation: route-input equivalence classes (§3.1)";
  let g = Lazy.force wan in
  let with_ec, t_ec =
    time (fun () -> Route_sim.run g.G.model ~input_routes:g.G.input_routes ())
  in
  let _without, t_plain =
    time (fun () ->
        Route_sim.run ~use_ecs:false g.G.model ~input_routes:g.G.input_routes ())
  in
  row "input routes: %d; simulated with ECs: %d (%.2fx compression)"
    with_ec.Route_sim.input_count
    (List.length (g.G.input_routes) * 0 + with_ec.Route_sim.input_count
     / max 1 (int_of_float with_ec.Route_sim.compression))
    with_ec.Route_sim.compression;
  row "route simulation: with ECs %s, without %s (%.1fx faster)"
    (seconds t_ec) (seconds t_plain) (t_plain /. t_ec);
  row "(paper: ECs reduce input routes ~4x on the WAN)"

let flow_ecs () =
  header "Ablation: flow equivalence classes";
  let g = Lazy.force wan in
  let rib = (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib in
  let ec, t_ec =
    time (fun () -> Traffic_sim.run g.G.model ~rib ~flows:g.G.flows ())
  in
  let _plain, t_plain =
    time (fun () ->
        Traffic_sim.run ~use_ecs:false g.G.model ~rib ~flows:g.G.flows ())
  in
  row "flow records: %d -> %d ECs (%.1fx; each record stands for %d flows, \
       so the population compression is %.0fx)"
    (List.length g.G.flows) ec.Traffic_sim.ec_count ec.Traffic_sim.compression
    g.G.params.G.g_flow_population
    (float_of_int ec.Traffic_sim.flow_count
    /. float_of_int (max 1 ec.Traffic_sim.ec_count));
  row "traffic simulation: with ECs %s, without %s (%.1fx faster)"
    (seconds t_ec) (seconds t_plain) (t_plain /. t_ec);
  row "(paper: flow ECs reduce simulated flows by two orders of magnitude)"

let scheduler_policy () =
  header "Ablation: MQ (FIFO) vs longest-processing-time scheduling";
  let g = Lazy.force wan in
  let fw = Framework.create g.G.model in
  let rp = Framework.run_route_phase ~subtasks:100 fw ~input_routes:g.G.input_routes in
  let times = Framework.effective_times fw rp.Framework.rp_subtasks in
  row "%-8s %-12s %-12s" "servers" "FIFO (MQ)" "LPT";
  List.iter
    (fun s ->
      let fifo, _ = Schedule.makespan ~policy:Schedule.Fifo ~servers:s times in
      let lpt, _ = Schedule.makespan ~policy:Schedule.Lpt ~servers:s times in
      row "%-8d %-12s %-12s" s (seconds fifo) (seconds lpt))
    [ 2; 4; 8; 10 ];
  row
    "(the paper's future work: balance subtasks by input-route \
     characteristics; LPT shows the head-room)"

let subtask_counts () =
  header "Ablation: number of route subtasks (paper uses 100)";
  let g = Lazy.force wan in
  row "%-10s %-12s %-14s" "subtasks" "10 servers" "(per-subtask p99)";
  List.iter
    (fun n ->
      let fw = Framework.create g.G.model in
      let rp = Framework.run_route_phase ~subtasks:n fw ~input_routes:g.G.input_routes in
      let times = Framework.effective_times fw rp.Framework.rp_subtasks in
      let mk, _ = Schedule.makespan ~servers:10 times in
      row "%-10d %-12s %10.2fs" n (seconds mk) (quantile 0.99 times))
    [ 10; 25; 50; 100; 200 ]



let kfailure () =
  header "Fault-tolerance checking (§6.2): k-failure sweep";
  let module Kfailure = Hoyan_core.Kfailure in
  let g = Lazy.force small in
  (* does the default route survive any single link failure? *)
  let prop =
    Kfailure.prefix_survives
      ~prefix:(Hoyan_net.Prefix.of_string_exn "0.0.0.0/0")
      ~devices:
        (Hoyan_net.Topology.device_names
           g.Hoyan_workload.Generator.model.Hoyan_sim.Model.topo)
  in
  List.iter
    (fun k ->
      let res, dt =
        time (fun () ->
            Kfailure.check ~max_scenarios:60
              g.Hoyan_workload.Generator.model
              ~input_routes:g.Hoyan_workload.Generator.input_routes ~flows:[]
              ~k prop)
      in
      row "k=%d: %d scenarios checked, %d violation(s) found (%s)" k
        res.Kfailure.kr_scenarios
        (List.length res.Kfailure.kr_violations)
        (seconds dt);
      List.iteri
        (fun i (s : Kfailure.scenario_result) ->
          if i < 3 then
            row "  e.g. %s: %s"
              (String.concat " + "
                 (List.map Kfailure.failure_to_string s.Kfailure.sr_failures))
              (Option.value s.Kfailure.sr_violation ~default:""))
        res.Kfailure.kr_violations)
    [ 1; 2 ];
  row
    "(the paper found ~5 fault-tolerance problems on the live WAN through \
     this kind of checking)"

let all () =
  route_ecs ();
  flow_ecs ();
  scheduler_policy ();
  subtask_counts ();
  kfailure ()
