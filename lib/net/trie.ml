(** Binary longest-prefix-match trie over IP prefixes.

    Used to build FIBs for traffic simulation and to evaluate prefix-list
    matches efficiently.  One trie handles one address family; {!Dual}
    bundles a v4 and a v6 trie behind a family dispatch. *)

type 'a node = {
  value : 'a option;
  zero : 'a node option; (* next bit = 0 *)
  one : 'a node option; (* next bit = 1 *)
}

type 'a t = { family : Ip.family; root : 'a node }

let empty_node = { value = None; zero = None; one = None }

let empty family = { family; root = empty_node }

let is_empty t =
  t.root.value = None && t.root.zero = None && t.root.one = None

(** [add t prefix v] binds [prefix] to [v], replacing any previous binding. *)
let add t prefix v =
  if Prefix.family prefix <> t.family then invalid_arg "Trie.add: family"
  else
    let ip = Prefix.ip prefix and len = Prefix.len prefix in
    let rec go node depth =
      if depth = len then { node with value = Some v }
      else if Ip.bit ip depth then
        let child = Option.value node.one ~default:empty_node in
        { node with one = Some (go child (depth + 1)) }
      else
        let child = Option.value node.zero ~default:empty_node in
        { node with zero = Some (go child (depth + 1)) }
    in
    { t with root = go t.root 0 }

(** [update t prefix f] applies [f] to the current binding (or [None]). *)
let update t prefix f =
  if Prefix.family prefix <> t.family then invalid_arg "Trie.update: family"
  else
    let ip = Prefix.ip prefix and len = Prefix.len prefix in
    let rec go node depth =
      if depth = len then { node with value = f node.value }
      else if Ip.bit ip depth then
        let child = Option.value node.one ~default:empty_node in
        { node with one = Some (go child (depth + 1)) }
      else
        let child = Option.value node.zero ~default:empty_node in
        { node with zero = Some (go child (depth + 1)) }
    in
    { t with root = go t.root 0 }

(** Remove a binding (the trie is not pruned; fine for our usage). *)
let remove t prefix = update t prefix (fun _ -> None)

let find_exact t prefix =
  if Prefix.family prefix <> t.family then None
  else
    let ip = Prefix.ip prefix and len = Prefix.len prefix in
    let rec go node depth =
      if depth = len then node.value
      else
        let next = if Ip.bit ip depth then node.one else node.zero in
        match next with None -> None | Some child -> go child (depth + 1)
    in
    go t.root 0

(** Longest-prefix match of an address.  Returns the matched prefix and
    its binding. *)
let longest_match t addr =
  if Ip.family addr <> t.family then None
  else
    let max_depth = Ip.family_bits t.family in
    let rec go node depth best =
      let best =
        match node.value with
        | Some v -> Some (depth, v)
        | None -> best
      in
      if depth >= max_depth then best
      else
        let next = if Ip.bit addr depth then node.one else node.zero in
        match next with
        | None -> best
        | Some child -> go child (depth + 1) best
    in
    match go t.root 0 None with
    | None -> None
    | Some (depth, v) ->
        (* Reconstruct the matched prefix from the address. *)
        Some (Prefix.make addr depth, v)

(** All matches of an address, most specific first. *)
let all_matches t addr =
  if Ip.family addr <> t.family then []
  else
    let max_depth = Ip.family_bits t.family in
    let rec go node depth acc =
      let acc =
        match node.value with
        | Some v -> (Prefix.make addr depth, v) :: acc
        | None -> acc
      in
      if depth >= max_depth then acc
      else
        let next = if Ip.bit addr depth then node.one else node.zero in
        match next with None -> acc | Some child -> go child (depth + 1) acc
    in
    go t.root 0 []

(** Fold over all bindings with their prefixes. *)
let fold f t init =
  (* Track the path bits to rebuild each prefix. *)
  let fam = t.family in
  let nbits = Ip.family_bits fam in
  let path_to_prefix rev_bits depth =
    let ip =
      match fam with
      | Ip.Ipv4 ->
          let rec build n i = function
            | [] -> n
            | b :: rest ->
                build (if b then n lor (1 lsl (31 - i)) else n) (i - 1) rest
          in
          (* rev_bits has the deepest bit first; positions depth-1 .. 0 *)
          Ip.V4 (build 0 (depth - 1) rev_bits)
      | Ip.Ipv6 ->
          let rec build n i = function
            | [] -> n
            | b :: rest ->
                build
                  (if b then Int128.set_bit n (nbits - 1 - i) else n)
                  (i - 1) rest
          in
          Ip.V6 (build Int128.zero (depth - 1) rev_bits)
    in
    Prefix.make ip depth
  in
  let rec go node rev_bits depth acc =
    let acc =
      match node.value with
      | Some v -> f (path_to_prefix rev_bits depth) v acc
      | None -> acc
    in
    let acc =
      match node.zero with
      | Some child -> go child (false :: rev_bits) (depth + 1) acc
      | None -> acc
    in
    match node.one with
    | Some child -> go child (true :: rev_bits) (depth + 1) acc
    | None -> acc
  in
  go t.root [] 0 init

let to_list t = fold (fun p v acc -> (p, v) :: acc) t [] |> List.rev

let cardinal t = fold (fun _ _ n -> n + 1) t 0

(** Mutable batch construction.  [add] on the persistent trie copies the
    whole root-to-leaf spine per insertion; building a FIB of n prefixes
    that way allocates O(n · depth) nodes.  The builder inserts into a
    mutable radix structure (one node allocated per new spine element
    only) and freezes it into the persistent representation once. *)
module Builder = struct
  type 'a bnode = {
    mutable bvalue : 'a option;
    mutable bzero : 'a bnode option;
    mutable bone : 'a bnode option;
  }

  type 'a builder = { b_family : Ip.family; b_root : 'a bnode }

  let fresh () = { bvalue = None; bzero = None; bone = None }

  let create family = { b_family = family; b_root = fresh () }

  (** Walk (creating spine nodes as needed) to the node of [prefix]. *)
  let node_of b prefix =
    if Prefix.family prefix <> b.b_family then
      invalid_arg "Trie.Builder: family"
    else begin
      let ip = Prefix.ip prefix and len = Prefix.len prefix in
      let node = ref b.b_root in
      for depth = 0 to len - 1 do
        let n = !node in
        if Ip.bit ip depth then
          match n.bone with
          | Some c -> node := c
          | None ->
              let c = fresh () in
              n.bone <- Some c;
              node := c
        else
          match n.bzero with
          | Some c -> node := c
          | None ->
              let c = fresh () in
              n.bzero <- Some c;
              node := c
      done;
      !node
    end

  (** Bind [prefix] to [v], replacing any previous binding. *)
  let add b prefix v = (node_of b prefix).bvalue <- Some v

  (** Apply [f] to the current binding (or [None]). *)
  let update b prefix f =
    let n = node_of b prefix in
    n.bvalue <- f n.bvalue

  (** Freeze into the persistent trie. *)
  let build b =
    let rec freeze (n : 'a bnode) : 'a node =
      {
        value = n.bvalue;
        zero = Option.map freeze n.bzero;
        one = Option.map freeze n.bone;
      }
    in
    { family = b.b_family; root = freeze b.b_root }
end

(** Batch-build a trie from bindings (later bindings of the same prefix
    win, as with repeated {!add}). *)
let of_list family bindings =
  let b = Builder.create family in
  List.iter (fun (p, v) -> Builder.add b p v) bindings;
  Builder.build b

module Dual = struct
  (** A pair of tries covering both families. *)
  type nonrec 'a t = { v4 : 'a t; v6 : 'a t }

  let empty = { v4 = empty Ip.Ipv4; v6 = empty Ip.Ipv6 }

  let add t prefix v =
    match Prefix.family prefix with
    | Ip.Ipv4 -> { t with v4 = add t.v4 prefix v }
    | Ip.Ipv6 -> { t with v6 = add t.v6 prefix v }

  let update t prefix f =
    match Prefix.family prefix with
    | Ip.Ipv4 -> { t with v4 = update t.v4 prefix f }
    | Ip.Ipv6 -> { t with v6 = update t.v6 prefix f }

  let remove t prefix =
    match Prefix.family prefix with
    | Ip.Ipv4 -> { t with v4 = remove t.v4 prefix }
    | Ip.Ipv6 -> { t with v6 = remove t.v6 prefix }

  let find_exact t prefix =
    match Prefix.family prefix with
    | Ip.Ipv4 -> find_exact t.v4 prefix
    | Ip.Ipv6 -> find_exact t.v6 prefix

  let longest_match t addr =
    match Ip.family addr with
    | Ip.Ipv4 -> longest_match t.v4 addr
    | Ip.Ipv6 -> longest_match t.v6 addr

  let all_matches t addr =
    match Ip.family addr with
    | Ip.Ipv4 -> all_matches t.v4 addr
    | Ip.Ipv6 -> all_matches t.v6 addr

  let fold f t init = fold f t.v6 (fold f t.v4 init)

  let to_list t = to_list t.v4 @ to_list t.v6

  let cardinal t = cardinal t.v4 + cardinal t.v6

  (** Mutable batch construction over both families (see {!Trie.Builder}). *)
  module Builder = struct
    type 'a builder = { bv4 : 'a Builder.builder; bv6 : 'a Builder.builder }

    let create () =
      { bv4 = Builder.create Ip.Ipv4; bv6 = Builder.create Ip.Ipv6 }

    let add b prefix v =
      match Prefix.family prefix with
      | Ip.Ipv4 -> Builder.add b.bv4 prefix v
      | Ip.Ipv6 -> Builder.add b.bv6 prefix v

    let update b prefix f =
      match Prefix.family prefix with
      | Ip.Ipv4 -> Builder.update b.bv4 prefix f
      | Ip.Ipv6 -> Builder.update b.bv6 prefix f

    let build b = { v4 = Builder.build b.bv4; v6 = Builder.build b.bv6 }
  end

  let of_list bindings =
    let b = Builder.create () in
    List.iter (fun (p, v) -> Builder.add b p v) bindings;
    Builder.build b
end
