(** Routes: the rows of Hoyan's (global) RIB abstraction.

    A route is one path for one prefix on one device/VRF; ECMP shows up as
    several routes for the same prefix whose [route_type] is [Best]/[Ecmp].
    The [device] and [vrf] fields make a route directly usable as a row of
    the global RIB that RCL (§4) specifies over.

    The scalar BGP attributes that the decision process compares on every
    round — local-pref, MED, weight, origin, plus the address family —
    are packed into the single immutable [attrs] int ({!Attrs}), so
    attribute equality is one int compare and the packed value doubles as
    a sort key fragment in the compact RIB arenas. *)

type origin = Igp | Egp | Incomplete

let origin_to_string = function
  | Igp -> "igp"
  | Egp -> "egp"
  | Incomplete -> "incomplete"

let origin_rank = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

type proto = Bgp | Isis | Static | Direct | Aggregate | Sr_policy

let proto_to_string = function
  | Bgp -> "bgp"
  | Isis -> "isis"
  | Static -> "static"
  | Direct -> "direct"
  | Aggregate -> "aggregate"
  | Sr_policy -> "sr"

type source = Ebgp | Ibgp | Local | Redistributed

let source_to_string = function
  | Ebgp -> "ebgp"
  | Ibgp -> "ibgp"
  | Local -> "local"
  | Redistributed -> "redistributed"

type route_type = Best | Ecmp | Backup

let route_type_to_string = function
  | Best -> "BEST"
  | Ecmp -> "ECMP"
  | Backup -> "BACKUP"

(* ------------------------------------------------------------------ *)
(* Packed scalar attributes                                            *)
(* ------------------------------------------------------------------ *)

(** The packed scalar-attribute word.  Layout (high to low):

    {v bits 42..62  local_pref  (21 bits)
       bits 21..41  med         (21 bits)
       bits  4..20  weight      (17 bits)
       bits  2..3   origin      (2 bits: Igp=0 Egp=1 Incomplete=2)
       bit   0      family      (0 = IPv4, 1 = IPv6) v}

    The field order makes the natural int order of two packed words the
    lexicographic (local_pref, med, weight, origin, family) order, which
    is what {!compare} uses.  Values beyond a field's width are saturated
    at the maximum — far beyond anything the simulator or the config
    parsers produce, and saturation keeps packing total instead of
    raising mid-fixpoint. *)
module Attrs = struct
  type t = int

  let lp_max = (1 lsl 21) - 1
  let med_max = (1 lsl 21) - 1
  let weight_max = (1 lsl 17) - 1

  let sat v max = if v < 0 then 0 else if v > max then max else v

  let origin_code = function Igp -> 0 | Egp -> 1 | Incomplete -> 2
  let origin_of_code = function 0 -> Igp | 1 -> Egp | _ -> Incomplete

  let family_bit = function Ip.Ipv4 -> 0 | Ip.Ipv6 -> 1

  let pack ~local_pref ~med ~weight ~(origin : origin) ~(family : Ip.family) :
      t =
    (sat local_pref lp_max lsl 42)
    lor (sat med med_max lsl 21)
    lor (sat weight weight_max lsl 4)
    lor (origin_code origin lsl 2)
    lor family_bit family

  let local_pref (a : t) = (a lsr 42) land lp_max
  let med (a : t) = (a lsr 21) land med_max
  let weight (a : t) = (a lsr 4) land weight_max
  let origin (a : t) = origin_of_code ((a lsr 2) land 0x3)
  let family (a : t) = if a land 1 = 0 then Ip.Ipv4 else Ip.Ipv6

  let with_local_pref (a : t) v =
    a land lnot (lp_max lsl 42) lor (sat v lp_max lsl 42)

  let with_med (a : t) v =
    a land lnot (med_max lsl 21) lor (sat v med_max lsl 21)

  let with_weight (a : t) v =
    a land lnot (weight_max lsl 4) lor (sat v weight_max lsl 4)

  let with_origin (a : t) o = a land lnot (0x3 lsl 2) lor (origin_code o lsl 2)

  (** Everything but weight and family: the attributes that propagate
      between routers (EC condition (3)). *)
  let propagated_mask = lnot ((weight_max lsl 4) lor 1)
end

type t = {
  device : string;
  vrf : string;
  prefix : Prefix.t;
  proto : proto;
  nexthop : Ip.t option; (* [None] for locally originated / connected *)
  out_iface : string option;
  attrs : Attrs.t; (* packed local_pref/med/weight/origin/family *)
  preference : int; (* admin distance; vendor-specific defaults *)
  communities : Community.Set.t;
  as_path : As_path.t;
  igp_cost : int; (* cost to reach the BGP next hop *)
  peer : string option; (* neighbor device the route was learned from *)
  source : source;
  route_type : route_type;
  tag : int;
}

let default_vrf = "global"

let make ~device ~prefix ?(vrf = default_vrf) ?(proto = Bgp) ?nexthop
    ?out_iface ?(local_pref = 100) ?(med = 0) ?(weight = 0) ?(preference = 255)
    ?(communities = Community.Set.empty) ?(as_path = As_path.empty)
    ?(origin = Igp) ?(igp_cost = 0) ?peer ?(source = Local)
    ?(route_type = Best) ?(tag = 0) () =
  {
    device;
    vrf;
    prefix;
    proto;
    nexthop;
    out_iface;
    attrs =
      Attrs.pack ~local_pref ~med ~weight ~origin ~family:(Prefix.family prefix);
    preference;
    communities;
    as_path;
    igp_cost;
    peer;
    source;
    route_type;
    tag;
  }

(* Scalar accessors over the packed word. *)
let attrs r = r.attrs
let local_pref r = Attrs.local_pref r.attrs
let med r = Attrs.med r.attrs
let weight r = Attrs.weight r.attrs
let origin r = Attrs.origin r.attrs
let family r = Attrs.family r.attrs

let with_local_pref r v =
  let attrs = Attrs.with_local_pref r.attrs v in
  if attrs = r.attrs then r else { r with attrs }

let with_med r v =
  let attrs = Attrs.with_med r.attrs v in
  if attrs = r.attrs then r else { r with attrs }

let with_weight r v =
  let attrs = Attrs.with_weight r.attrs v in
  if attrs = r.attrs then r else { r with attrs }

let with_origin r o =
  let attrs = Attrs.with_origin r.attrs o in
  if attrs = r.attrs then r else { r with attrs }

(* Cheap discriminants first (the packed attrs word covers four scalar
   fields in one compare), strings and structured values last. *)
let equal (a : t) (b : t) =
  a == b
  || (a.attrs = b.attrs && a.tag = b.tag
     && a.igp_cost = b.igp_cost
     && a.preference = b.preference
     && a.proto = b.proto && a.source = b.source
     && a.route_type = b.route_type
     && String.equal a.device b.device
     && String.equal a.vrf b.vrf
     && Prefix.equal a.prefix b.prefix
     && Option.equal Ip.equal a.nexthop b.nexthop
     && Option.equal String.equal a.out_iface b.out_iface
     && Option.equal String.equal a.peer b.peer
     && As_path.equal a.as_path b.as_path
     && Community.Set.equal a.communities b.communities)

let compare (a : t) (b : t) =
  if a == b then 0
  else
    let c = String.compare a.device b.device in
    if c <> 0 then c
    else
      let c = String.compare a.vrf b.vrf in
      if c <> 0 then c
      else
        let c = Prefix.compare a.prefix b.prefix in
        if c <> 0 then c
        else
          let c = Stdlib.compare a.proto b.proto in
          if c <> 0 then c
          else
            let c = Option.compare Ip.compare a.nexthop b.nexthop in
            if c <> 0 then c
            else
              let c = Option.compare String.compare a.out_iface b.out_iface in
              if c <> 0 then c
              else
                let c = Int.compare a.attrs b.attrs in
                if c <> 0 then c
                else
                  let c = Int.compare a.preference b.preference in
                  if c <> 0 then c
                  else
                    let c =
                      Community.Set.compare a.communities b.communities
                    in
                    if c <> 0 then c
                    else
                      let c = As_path.compare a.as_path b.as_path in
                      if c <> 0 then c
                      else
                        let c = Int.compare a.igp_cost b.igp_cost in
                        if c <> 0 then c
                        else
                          let c =
                            Option.compare String.compare a.peer b.peer
                          in
                          if c <> 0 then c
                          else
                            let c = Stdlib.compare a.source b.source in
                            if c <> 0 then c
                            else
                              let c =
                                Stdlib.compare a.route_type b.route_type
                              in
                              if c <> 0 then c else Int.compare a.tag b.tag

(** Equality of the BGP attributes that propagate between routers; this is
    condition (3) of the input-route equivalence-class definition (§3.1). *)
let equal_attrs (a : t) (b : t) =
  a.attrs land Attrs.propagated_mask = b.attrs land Attrs.propagated_mask
  && Community.Set.equal a.communities b.communities
  && As_path.equal a.as_path b.as_path
  && Option.equal Ip.equal a.nexthop b.nexthop

let nexthop_string r =
  match r.nexthop with Some ip -> Ip.to_string ip | None -> "self"

let to_string r =
  Printf.sprintf "%s|%s|%s|%s|nh=%s|lp=%d|med=%d|comm=[%s]|as=[%s]|%s" r.device
    r.vrf
    (Prefix.to_string r.prefix)
    (proto_to_string r.proto) (nexthop_string r) (local_pref r) (med r)
    (Community.Set.to_string r.communities)
    (As_path.to_string r.as_path)
    (route_type_to_string r.route_type)

let pp ppf r = Format.pp_print_string ppf (to_string r)
