(** BGP AS paths: lists of segments, where a segment is an ordered
    [Seq]uence of ASNs or an unordered [Set] (from aggregation with
    AS-set).

    The type is abstract: paths carry cached derived values (hop count,
    an ASN membership mask, a structural hash) so the BGP decision
    process pays O(1) for {!length} and for the common negative case of
    {!contains_asn}/{!equal}.  Set segments are kept sorted and unique,
    so structural equality on {!segments} coincides with semantic path
    equality. *)

type segment = Seq of int list | Set of int list

type t

val empty : t

val of_asns : int list -> t

(** Build a path from raw segments ([Set] members are canonicalized). *)
val of_segments : segment list -> t

(** The canonical segments ([Set] members sorted, deduplicated). *)
val segments : t -> segment list

val is_empty : t -> bool

(** Hop count for best-path selection: ASNs in a sequence count 1 each,
    a whole set segment counts 1.  O(1) (cached). *)
val length : t -> int

(** Structural hash, a pure function of the canonical segments. *)
val hash : t -> int

(** Every ASN appearing anywhere in the path. *)
val asns : t -> int list

(** O(1) when the answer is negative (the AS-loop-check common case),
    via a Bloom-style membership mask. *)
val contains_asn : int -> t -> bool

(** Standard eBGP export prepend. *)
val prepend : int -> t -> t

(** Policy-driven prepending of the same ASN [n] times. *)
val prepend_n : int -> int -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

(** The rendering policies regex-match against: space-separated ASNs,
    set segments in braces (e.g. ["100 200 {300,400}"]). *)
val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

(** Common flat prefix of the paths — what some vendors put on an
    aggregate created without AS-set (Table 5, "common AS path
    prefix"). *)
val common_prefix : t list -> int list

(** Standard aggregation with AS-set: the common prefix followed by a set
    of the remaining ASNs. *)
val aggregate_with_set : t list -> t
