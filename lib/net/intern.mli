(** Per-phase hash-consing of route attributes ({!As_path.t} values and
    {!Community.Set.t} values) into append-only tables with unique
    small-int ids.

    Interned ids make equality and ordering O(1)-cheap int operations,
    and derived values ([length], [contains_asn], [mem], [to_string],
    transitions such as [prepend]/[union]) are memoized per distinct
    value instead of recomputed per route.

    {b Lifecycle}: tables are built per simulation phase, then
    {!As_paths.freeze}n / {!Communities.freeze}n before worker domains
    spawn.  A frozen table is immutable (mutating operations on unseen
    values raise [Invalid_argument]) and safe to share read-only across
    domains.  Ids are assigned in insertion order: a fixed build order
    yields identical ids run to run. *)

module As_paths : sig
  type id = int
  type t

  val create : ?expect:int -> unit -> t

  (** Number of distinct paths interned so far; ids are [0 .. size-1]. *)
  val size : t -> int

  (** Id for the path, allocating the next id on first sight.
      @raise Invalid_argument if the table is frozen and the path is new. *)
  val intern : t -> As_path.t -> id

  (** Like {!intern} but never allocates: [None] for unseen paths. *)
  val find_opt : t -> As_path.t -> id option

  val get : t -> id -> As_path.t

  (** Within one table, id equality is path equality. *)
  val equal_id : id -> id -> bool

  (** Structural {!As_path.compare} order on the interned values (ids
      themselves are insertion-ordered, not value-ordered). *)
  val compare_id : t -> id -> id -> int

  val length : t -> id -> int
  val contains_asn : t -> int -> id -> bool

  (** Memoized rendering (computed once per distinct path). *)
  val to_string : t -> id -> string

  (** Memoized prepend transition: the id of
      [As_path.prepend asn (get t id)].
      @raise Invalid_argument if frozen and the transition is new. *)
  val prepend : t -> int -> id -> id

  (** Materialize every pending memo, then forbid mutation; idempotent. *)
  val freeze : t -> unit

  val frozen : t -> bool
end

module Communities : sig
  type id = int
  type t

  val create : ?expect:int -> unit -> t
  val size : t -> int

  (** @raise Invalid_argument if the table is frozen and the set is new. *)
  val intern : t -> Community.Set.t -> id

  val find_opt : t -> Community.Set.t -> id option
  val get : t -> id -> Community.Set.t
  val equal_id : id -> id -> bool

  (** Structural {!Community.Set.compare} order on the interned values. *)
  val compare_id : t -> id -> id -> int

  val mem : t -> Community.t -> id -> bool
  val cardinal : t -> id -> int

  (** Memoized rendering (computed once per distinct set). *)
  val to_string : t -> id -> string

  (** Memoized, commutative union transition.
      @raise Invalid_argument if frozen and the transition is new. *)
  val union : t -> id -> id -> id

  val freeze : t -> unit
  val frozen : t -> bool
end
