(** BGP AS paths.

    An AS path is a list of segments; a segment is either an ordered
    [Seq]uence of ASNs or an unordered [Set] (produced by route aggregation
    with AS-set).  The path length used by the decision process counts a
    whole set segment as one hop.

    The representation caches the derived values the BGP hot path keeps
    asking for: the hop count (consulted by every best-path comparison),
    a Bloom-style membership mask over the member ASNs (so the AS-loop
    check of {!contains_asn} — almost always negative — is O(1) in the
    common case), and a structural hash (a fast negative for {!equal}).
    Set segments are canonicalized (sorted, deduplicated) at construction,
    so structural equality of the segment lists coincides with the
    semantic path equality the old list representation computed on the
    fly. *)

type segment = Seq of int list | Set of int list

type t = {
  segs : segment list; (* canonical: Set members sorted and unique *)
  hops : int; (* decision-process length *)
  mask : int; (* Bloom mask over all member ASNs *)
  hash : int; (* structural hash of [segs] *)
}

let asn_bit asn = 1 lsl ((asn * 2654435761) land max_int mod 61)

let seg_hash acc = function
  | Seq l -> List.fold_left (fun h a -> (h * 31) + a) ((acc * 31) + 17) l
  | Set l -> List.fold_left (fun h a -> (h * 31) + a) ((acc * 31) + 953) l

(* The only constructor: canonicalizes sets and computes the caches in
   one pass. *)
let mk (raw : segment list) : t =
  let segs =
    List.map
      (function
        | Seq _ as s -> s | Set l -> Set (List.sort_uniq Int.compare l))
      raw
  in
  let hops, mask, hash =
    List.fold_left
      (fun (hops, mask, hash) seg ->
        let hops =
          match seg with Seq l -> hops + List.length l | Set _ -> hops + 1
        in
        let mask =
          List.fold_left
            (fun m a -> m lor asn_bit a)
            mask
            (match seg with Seq l | Set l -> l)
        in
        (hops, mask, seg_hash hash seg))
      (0, 0, 5381) segs
  in
  { segs; hops; mask; hash }

let empty : t = mk []

let segments t = t.segs

let of_segments = mk

let of_asns asns : t = match asns with [] -> empty | _ -> mk [ Seq asns ]

let is_empty t =
  match t.segs with
  | [] -> true
  | segs ->
      List.for_all (function Seq [] -> true | Set [] -> true | _ -> false) segs

(** Hop count for best-path selection: each ASN in a sequence counts 1,
    each set segment counts 1 in total.  Cached: O(1). *)
let length t = t.hops

let hash t = t.hash

(** All ASNs appearing anywhere in the path. *)
let asns t = List.concat_map (function Seq l -> l | Set l -> l) t.segs

(** O(1) negative via the membership mask; a scan only when the mask
    bit is set (possible hit or a Bloom collision). *)
let contains_asn asn t =
  t.mask land asn_bit asn <> 0
  && List.exists
       (function Seq l | Set l -> List.mem asn l)
       t.segs

(** Prepend an ASN (standard eBGP export behaviour). *)
let prepend asn t : t =
  match t.segs with
  | Seq l :: rest -> mk (Seq (asn :: l) :: rest)
  | segs -> mk (Seq [ asn ] :: segs)

(** Prepend the same ASN [n] times (path prepending policy action). *)
let prepend_n asn n t =
  if n <= 0 then t
  else
    match t.segs with
    | Seq l :: rest -> mk (Seq (List.init n (fun _ -> asn) @ l) :: rest)
    | segs -> mk (Seq (List.init n (fun _ -> asn)) :: segs)

(* Segments are canonical, so plain structural comparison suffices. *)
let equal_segment a b =
  match (a, b) with
  | Seq x, Seq y | Set x, Set y -> List.equal Int.equal x y
  | Seq _, Set _ | Set _, Seq _ -> false

let equal (a : t) (b : t) =
  a == b
  || (a.hash = b.hash && a.hops = b.hops
     && List.equal equal_segment a.segs b.segs)

let compare_segment a b =
  match (a, b) with
  | Seq x, Seq y | Set x, Set y -> List.compare Int.compare x y
  | Seq _, Set _ -> -1
  | Set _, Seq _ -> 1

let compare (a : t) (b : t) =
  if a == b then 0 else List.compare compare_segment a.segs b.segs

(** Rendering used for policy regex matching: ASNs separated by single
    spaces; set segments in braces, e.g. ["100 200 {300,400}"]. *)
let to_string (t : t) =
  t.segs
  |> List.map (function
       | Seq l -> String.concat " " (List.map string_of_int l)
       | Set l ->
           "{" ^ String.concat "," (List.map string_of_int l) ^ "}")
  |> List.concat_map (fun s -> if s = "" then [] else [ s ])
  |> String.concat " "

let of_string s =
  let s = String.trim s in
  if s = "" then Some empty
  else
    let toks = String.split_on_char ' ' s |> List.filter (fun x -> x <> "") in
    let rec go acc seq = function
      | [] ->
          let acc = if seq = [] then acc else Seq (List.rev seq) :: acc in
          Some (mk (List.rev acc))
      | tok :: rest ->
          if String.length tok >= 2 && tok.[0] = '{' then
            let inner = String.sub tok 1 (String.length tok - 2) in
            let members =
              String.split_on_char ',' inner |> List.filter_map int_of_string_opt
            in
            let acc = if seq = [] then acc else Seq (List.rev seq) :: acc in
            go (Set members :: acc) [] rest
          else (
            match int_of_string_opt tok with
            | Some asn -> go acc (asn :: seq) rest
            | None -> None)
    in
    go [] [] toks

let pp ppf t = Format.pp_print_string ppf (to_string t)

(** Common-prefix of a list of paths as a flat ASN sequence.  Used by route
    aggregation without AS-set: some vendors put the common AS-path prefix
    of the aggregated routes on the aggregate (VSB "common AS path prefix",
    Table 5), others emit an empty path. *)
let common_prefix (paths : t list) : int list =
  let flats = List.map asns paths in
  match flats with
  | [] -> []
  | first :: rest ->
      let rec common acc = function
        | [] -> List.rev acc
        | x :: xs ->
            if
              List.for_all
                (fun l ->
                  match List.nth_opt l (List.length acc) with
                  | Some y -> y = x
                  | None -> false)
                rest
            then common (x :: acc) xs
            else List.rev acc
      in
      common [] first

(** Aggregate with AS-set: the common prefix followed by a set of the
    remaining ASNs, per standard BGP aggregation. *)
let aggregate_with_set (paths : t list) : t =
  let cp = common_prefix paths in
  let rest =
    List.concat_map
      (fun p ->
        let flat = asns p in
        let rec drop n l =
          if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
        in
        drop (List.length cp) flat)
      paths
    |> List.sort_uniq Int.compare
  in
  match (cp, rest) with
  | [], [] -> empty
  | cp, [] -> mk [ Seq cp ]
  | [], rest -> mk [ Set rest ]
  | cp, rest -> mk [ Seq cp; Set rest ]
