(** RIBs: collections of routes.

    {!t} is the RIB of a single device+VRF (routes grouped per prefix);
    {!Global} is the paper's {e global RIB abstraction} (§4.1): every route
    of every device gathered in one table, which is what RCL intents are
    evaluated against and what the route-simulation subtasks emit. *)

type t = Route.t list Prefix.Map.t

let empty : t = Prefix.Map.empty

let add (rib : t) (r : Route.t) : t =
  Prefix.Map.update r.Route.prefix
    (function None -> Some [ r ] | Some rs -> Some (r :: rs))
    rib

let set (rib : t) prefix routes : t =
  if routes = [] then Prefix.Map.remove prefix rib
  else Prefix.Map.add prefix routes rib

let find (rib : t) prefix =
  Option.value (Prefix.Map.find_opt prefix rib) ~default:[]

let remove (rib : t) prefix : t = Prefix.Map.remove prefix rib

let fold f (rib : t) init =
  Prefix.Map.fold (fun p rs acc -> f p rs acc) rib init

let routes (rib : t) =
  Prefix.Map.fold (fun _ rs acc -> List.rev_append rs acc) rib []

let cardinal (rib : t) =
  Prefix.Map.fold (fun _ rs n -> n + List.length rs) rib 0

let prefixes (rib : t) = Prefix.Map.bindings rib |> List.map fst

(** Best routes only (route_type = Best or Ecmp, which are the ones
    installed in the FIB). *)
let installed (rib : t) prefix =
  find rib prefix
  |> List.filter (fun r ->
         match r.Route.route_type with
         | Route.Best | Route.Ecmp -> true
         | Route.Backup -> false)

type rib = t

(* ------------------------------------------------------------------ *)
(* Packed sort keys for compact RIB rows                               *)
(* ------------------------------------------------------------------ *)

(** Packed per-route sort keys.

    A {!ctx} maps the (device, vrf, prefix) universe of a phase to dense
    small ids {e assigned in sorted order}, so the mixed-radix packed key
    orders exactly like the leading fields of {!Route.compare}.  Workers
    sort their RIB chunks by [(key, Route.compare)] — almost every
    comparison resolves on one int — and the coordinator's k-way merge
    inherits the same order, so the merged output is byte-identical to
    [List.sort_uniq Route.compare] over the concatenation.

    The ctx is built by the coordinator before worker domains spawn and
    is read-only afterwards.  Routes whose device, vrf or prefix is
    outside the universe simply get no key ({!Key.of_route} returns
    [None]); {!Arena} keeps them on a structurally-sorted overflow side
    channel, so an incomplete universe degrades performance, never
    correctness. *)
module Key = struct
  type ctx = {
    dev_ids : (string, int) Hashtbl.t;
    vrf_ids : (string, int) Hashtbl.t;
    pfx_ids : int Prefix.Map.t;
    vrf_radix : int;
    pfx_radix : int;
  }

  let make ~devices ~vrfs ~prefixes : ctx =
    let devices = List.sort_uniq String.compare devices in
    let vrfs = List.sort_uniq String.compare vrfs in
    let prefixes = List.sort_uniq Prefix.compare prefixes in
    let n_dev = List.length devices
    and n_vrf = List.length vrfs
    and n_pfx = List.length prefixes in
    if
      float_of_int n_dev *. float_of_int n_vrf *. float_of_int n_pfx
      >= float_of_int max_int
    then invalid_arg "Rib.Key.make: universe too large to pack";
    let dev_ids = Hashtbl.create (max 16 n_dev) in
    List.iteri (fun i d -> Hashtbl.replace dev_ids d i) devices;
    let vrf_ids = Hashtbl.create (max 16 n_vrf) in
    List.iteri (fun i v -> Hashtbl.replace vrf_ids v i) vrfs;
    let pfx_ids, _ =
      List.fold_left
        (fun (m, i) p -> (Prefix.Map.add p i m, i + 1))
        (Prefix.Map.empty, 0) prefixes
    in
    { dev_ids; vrf_ids; pfx_ids; vrf_radix = max 1 n_vrf; pfx_radix = max 1 n_pfx }

  (** Convenience ctx whose universe is exactly the given routes. *)
  let of_routes (rs : Route.t list) : ctx =
    make
      ~devices:(List.map (fun (r : Route.t) -> r.Route.device) rs)
      ~vrfs:(List.map (fun (r : Route.t) -> r.Route.vrf) rs)
      ~prefixes:(List.map (fun (r : Route.t) -> r.Route.prefix) rs)

  let of_route (ctx : ctx) (r : Route.t) : int option =
    match Hashtbl.find_opt ctx.dev_ids r.Route.device with
    | None -> None
    | Some d -> (
        match Hashtbl.find_opt ctx.vrf_ids r.Route.vrf with
        | None -> None
        | Some v -> (
            match Prefix.Map.find_opt r.Route.prefix ctx.pfx_ids with
            | None -> None
            | Some p -> Some ((((d * ctx.vrf_radix) + v) * ctx.pfx_radix) + p)))
end

(* ------------------------------------------------------------------ *)
(* Compact RIB arenas                                                  *)
(* ------------------------------------------------------------------ *)

(** A worker-filled compact RIB: routes in two parallel flat arrays
    (packed int sort key, route), sorted by [(key, Route.compare)] and
    deduplicated.  Replaces per-subtask [Route.t list] accumulation —
    the coordinator merges arenas with a pairwise sorted merge instead
    of [List.concat |> List.sort_uniq Route.compare], and the inner
    comparisons are int compares on the key arrays. *)
module Arena = struct
  type t = {
    keys : int array; (* sorted ascending, parallel to [rows] *)
    rows : Route.t array;
    overflow : Route.t list; (* un-keyable routes, Route.compare-sorted *)
  }

  let empty = { keys = [||]; rows = [||]; overflow = [] }

  let cardinal t = Array.length t.keys + List.length t.overflow

  let row_compare (ka, (ra : Route.t)) (kb, rb) =
    if ka <> kb then compare ka kb else Route.compare ra rb

  (** Fill an arena from a worker's RIB chunk: key, sort, dedup.  Runs
      inside the worker domain, so the sort happens in parallel. *)
  let of_routes (ctx : Key.ctx) (rs : Route.t list) : t =
    let keyed = ref [] and over = ref [] and nk = ref 0 in
    List.iter
      (fun r ->
        match Key.of_route ctx r with
        | Some k ->
            keyed := (k, r) :: !keyed;
            incr nk
        | None -> over := r :: !over)
      rs;
    let overflow = List.sort_uniq Route.compare !over in
    if !nk = 0 then { empty with overflow }
    else begin
      let tmp = Array.of_list !keyed in
      Array.sort row_compare tmp;
      let n = Array.length tmp in
      let uniq = ref 1 in
      for i = 1 to n - 1 do
        if row_compare tmp.(i - 1) tmp.(i) <> 0 then incr uniq
      done;
      let keys = Array.make !uniq 0 in
      let rows = Array.make !uniq (snd tmp.(0)) in
      keys.(0) <- fst tmp.(0);
      let k = ref 0 in
      for i = 1 to n - 1 do
        if row_compare tmp.(i - 1) tmp.(i) <> 0 then begin
          incr k;
          keys.(!k) <- fst tmp.(i);
          rows.(!k) <- snd tmp.(i)
        end
      done;
      { keys; rows; overflow }
    end

  (* Merge two Route.compare-sorted deduplicated lists, dropping
     cross-list duplicates. *)
  let rec merge_lists (a : Route.t list) (b : Route.t list) =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys ->
        let c = Route.compare x y in
        if c < 0 then x :: merge_lists xs b
        else if c > 0 then y :: merge_lists a ys
        else x :: merge_lists xs ys

  (** Sorted two-way merge with dedup; int-key compares resolve almost
      every step without touching the route records. *)
  let union (a : t) (b : t) : t =
    let overflow = merge_lists a.overflow b.overflow in
    let na = Array.length a.keys and nb = Array.length b.keys in
    if na = 0 then { b with overflow }
    else if nb = 0 then { a with overflow }
    else begin
      let keys = Array.make (na + nb) 0 in
      let rows = Array.make (na + nb) a.rows.(0) in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < na && !j < nb do
        let c = compare a.keys.(!i) b.keys.(!j) in
        let c =
          if c <> 0 then c else Route.compare a.rows.(!i) b.rows.(!j)
        in
        if c <= 0 then begin
          keys.(!k) <- a.keys.(!i);
          rows.(!k) <- a.rows.(!i);
          incr i;
          if c = 0 then incr j
        end
        else begin
          keys.(!k) <- b.keys.(!j);
          rows.(!k) <- b.rows.(!j);
          incr j
        end;
        incr k
      done;
      while !i < na do
        keys.(!k) <- a.keys.(!i);
        rows.(!k) <- a.rows.(!i);
        incr i;
        incr k
      done;
      while !j < nb do
        keys.(!k) <- b.keys.(!j);
        rows.(!k) <- b.rows.(!j);
        incr j;
        incr k
      done;
      if !k = na + nb then { keys; rows; overflow }
      else
        { keys = Array.sub keys 0 !k; rows = Array.sub rows 0 !k; overflow }
    end

  (** Keep only the rows satisfying [p].  Both sides stay sorted, so the
      result is a valid arena over the same key ctx — this is the
      incremental engine's "drop the dirty region" step. *)
  let filter (p : Route.t -> bool) (t : t) : t =
    let n = Array.length t.rows in
    let kept = ref 0 in
    let mask = Array.make (max n 1) false in
    for i = 0 to n - 1 do
      if p t.rows.(i) then begin
        mask.(i) <- true;
        incr kept
      end
    done;
    let overflow = List.filter p t.overflow in
    if !kept = n then { t with overflow }
    else if !kept = 0 then { empty with overflow }
    else begin
      let keys = Array.make !kept 0 in
      let rows = Array.make !kept t.rows.(0) in
      let k = ref 0 in
      for i = 0 to n - 1 do
        if mask.(i) then begin
          keys.(!k) <- t.keys.(i);
          rows.(!k) <- t.rows.(i);
          incr k
        end
      done;
      { keys; rows; overflow }
    end

  (** Pairwise-round merge of many arenas into one global RIB, in
      exactly the order [List.sort_uniq Route.compare] would produce
      over the concatenation of the inputs. *)
  let merge (ts : t list) : Route.t list =
    let rec pair = function
      | a :: b :: rest -> union a b :: pair rest
      | r -> r
    in
    let rec rounds = function
      | [] -> empty
      | [ t ] -> t
      | ts -> rounds (pair ts)
    in
    let m = rounds ts in
    merge_lists (Array.to_list m.rows) m.overflow
end

module Global = struct
  type t = Route.t list

  let empty : t = []
  let of_routes (rs : Route.t list) : t = rs
  let to_routes (t : t) : Route.t list = t
  let cardinal = List.length
  let union (a : t) (b : t) : t = a @ b

  let filter p (t : t) : t = List.filter p t

  (** Multiset equality of two global RIBs (order independent), as required
      by the RCL intent [PRE = POST]. *)
  let equal (a : t) (b : t) =
    let sa = List.sort Route.compare a and sb = List.sort Route.compare b in
    List.equal Route.equal sa sb

  (** Routes that are in [a] but not in [b] (multiset difference); used by
      the counter-example generator and the accuracy validator. *)
  let diff (a : t) (b : t) : t =
    let sb = ref (List.sort Route.compare b) in
    List.sort Route.compare a
    |> List.filter (fun r ->
           let rec drop () =
             match !sb with
             | [] -> true
             | x :: rest ->
                 let c = Route.compare x r in
                 if c < 0 then begin
                   sb := rest;
                   drop ()
                 end
                 else if c = 0 then begin
                   sb := rest;
                   false
                 end
                 else true
           in
           drop ())

  let devices (t : t) =
    List.map (fun r -> r.Route.device) t |> List.sort_uniq String.compare

  let group_by_device (t : t) =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r ->
        let key = r.Route.device in
        let existing = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
        Hashtbl.replace tbl key (r :: existing))
      t;
    Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (** Rebuild the per-device/VRF RIB table from a global RIB. *)
  let to_ribs (t : t) =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r ->
        let key = (r.Route.device, r.Route.vrf) in
        let rib : rib =
          Option.value (Hashtbl.find_opt tbl key) ~default:Prefix.Map.empty
        in
        Hashtbl.replace tbl key (add rib r))
      t;
    tbl
end
