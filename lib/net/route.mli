(** Routes: the rows of Hoyan's global RIB abstraction.

    A route is one path for one prefix on one device/VRF; ECMP shows up
    as several routes whose [route_type] is [Best]/[Ecmp].  The [device]
    and [vrf] fields make a route directly usable as a row of the global
    RIB that RCL (paper §4) specifies over.

    The scalar BGP attributes (local-pref, MED, weight, origin, family)
    are packed into the single immutable [attrs] word — read them through
    {!local_pref}/{!med}/{!weight}/{!origin} and update them through the
    [with_*] functions. *)

type origin = Igp | Egp | Incomplete

val origin_to_string : origin -> string

(** Decision-process rank: IGP < EGP < Incomplete. *)
val origin_rank : origin -> int

type proto = Bgp | Isis | Static | Direct | Aggregate | Sr_policy

val proto_to_string : proto -> string

type source = Ebgp | Ibgp | Local | Redistributed

val source_to_string : source -> string

type route_type = Best | Ecmp | Backup

val route_type_to_string : route_type -> string

(** The packed scalar-attribute word: local-pref (21 bits), MED (21),
    weight (17), origin (2) and address family (1) in one int, ordered so
    that the natural int order is the lexicographic field order.
    Out-of-range values saturate at the field maximum. *)
module Attrs : sig
  type t = int

  (** Field saturation bounds (inclusive maxima; minima are 0). *)
  val lp_max : int

  val med_max : int
  val weight_max : int

  val pack :
    local_pref:int ->
    med:int ->
    weight:int ->
    origin:origin ->
    family:Ip.family ->
    t

  val local_pref : t -> int
  val med : t -> int
  val weight : t -> int
  val origin : t -> origin
  val family : t -> Ip.family

  val with_local_pref : t -> int -> t
  val with_med : t -> int -> t
  val with_weight : t -> int -> t
  val with_origin : t -> origin -> t

  (** Mask selecting the attributes that propagate between routers
      (clears weight and family). *)
  val propagated_mask : int
end

type t = {
  device : string;
  vrf : string;
  prefix : Prefix.t;
  proto : proto;
  nexthop : Ip.t option;  (** [None] = locally originated / connected *)
  out_iface : string option;
  attrs : Attrs.t;  (** packed local_pref/med/weight/origin/family *)
  preference : int;  (** admin distance; vendor-specific defaults *)
  communities : Community.Set.t;
  as_path : As_path.t;
  igp_cost : int;  (** cost to reach the BGP next hop *)
  peer : string option;  (** neighbor device the route was learned from *)
  source : source;
  route_type : route_type;
  tag : int;
}

val default_vrf : string

val make :
  device:string ->
  prefix:Prefix.t ->
  ?vrf:string ->
  ?proto:proto ->
  ?nexthop:Ip.t ->
  ?out_iface:string ->
  ?local_pref:int ->
  ?med:int ->
  ?weight:int ->
  ?preference:int ->
  ?communities:Community.Set.t ->
  ?as_path:As_path.t ->
  ?origin:origin ->
  ?igp_cost:int ->
  ?peer:string ->
  ?source:source ->
  ?route_type:route_type ->
  ?tag:int ->
  unit ->
  t

(** The packed attribute word (also usable as a sort-key fragment). *)
val attrs : t -> Attrs.t

val local_pref : t -> int
val med : t -> int
val weight : t -> int
val origin : t -> origin
val family : t -> Ip.family

val with_local_pref : t -> int -> t
val with_med : t -> int -> t
val with_weight : t -> int -> t
val with_origin : t -> origin -> t

(** Structural equality over every field. *)
val equal : t -> t -> bool

(** A total order consistent with {!equal} (used for multiset RIB
    comparison and deterministic deduplication). *)
val compare : t -> t -> int

(** Equality of the attributes that propagate between routers — condition
    (3) of the paper's input-route equivalence classes. *)
val equal_attrs : t -> t -> bool

(** ["self"] when the route has no next hop. *)
val nexthop_string : t -> string

val to_string : t -> string

val pp : Format.formatter -> t -> unit
