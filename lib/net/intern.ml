(** Per-phase hash-consing of route attributes.

    The route fixpoint keeps re-examining the same handful of AS paths
    and community sets: one upstream announces thousands of prefixes with
    identical attributes, and every propagation hop re-checks membership,
    length and equality on them.  These tables hash-cons such values into
    append-only arrays with unique small-int ids, so

    - equality of two interned values is one int compare,
    - derived results ([contains_asn], [mem], [to_string], transitions
      such as [prepend]/[union]) are memoized per id and computed once
      per distinct value instead of once per route.

    {b Lifecycle}: a table is built {e per phase} by the coordinator,
    then {!freeze}n before worker domains spawn.  Freezing precomputes
    every lazily-cached derivative, after which the table is immutable
    and safe to share read-only across domains; mutating operations
    ([intern] of an unseen value, memoized transitions) raise once the
    table is frozen.  Ids are assigned in insertion order, so a fixed
    build order yields identical ids run to run — results keyed by id
    stay deterministic. *)

(* Growable append-only array (amortized O(1) push, O(1) get). *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; len = 0; dummy }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) v.dummy in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let len v = v.len
end

let frozen_failure name =
  invalid_arg (Printf.sprintf "Intern.%s: table is frozen" name)

(** Hash-consed AS paths. *)
module As_paths = struct
  type id = int

  module H = Hashtbl.Make (struct
    type t = As_path.t

    let equal = As_path.equal
    let hash = As_path.hash
  end)

  type t = {
    ids : id H.t; (* value -> id *)
    values : As_path.t Vec.t; (* id -> value, append-only *)
    strings : string option Vec.t; (* memo: rendered form *)
    prepends : (int * id, id) Hashtbl.t; (* memo: (asn, id) -> id *)
    mutable frozen : bool;
  }

  let create ?(expect = 256) () =
    {
      ids = H.create expect;
      values = Vec.create As_path.empty;
      strings = Vec.create None;
      prepends = Hashtbl.create 64;
      frozen = false;
    }

  let size t = Vec.len t.values

  let intern t (p : As_path.t) : id =
    match H.find_opt t.ids p with
    | Some id -> id
    | None ->
        if t.frozen then frozen_failure "As_paths.intern";
        let id = Vec.len t.values in
        H.add t.ids p id;
        Vec.push t.values p;
        Vec.push t.strings None;
        id

  let find_opt t p = H.find_opt t.ids p
  let get t (id : id) = Vec.get t.values id

  let equal_id (a : id) (b : id) = Int.equal a b

  (** Structural path order on the interned values (ids themselves are
      insertion-ordered, not value-ordered). *)
  let compare_id t (a : id) (b : id) =
    if a = b then 0 else As_path.compare (get t a) (get t b)

  let length t (id : id) = As_path.length (get t id)

  let contains_asn t asn (id : id) = As_path.contains_asn asn (get t id)

  let to_string t (id : id) =
    match Vec.get t.strings id with
    | Some s -> s
    | None ->
        if t.frozen then frozen_failure "As_paths.to_string";
        let s = As_path.to_string (get t id) in
        Vec.set t.strings id (Some s);
        s

  (** Memoized prepend transition: interned result of
      [As_path.prepend asn (get t id)]. *)
  let prepend t asn (id : id) : id =
    match Hashtbl.find_opt t.prepends (asn, id) with
    | Some id' -> id'
    | None ->
        if t.frozen then frozen_failure "As_paths.prepend";
        let id' = intern t (As_path.prepend asn (get t id)) in
        Hashtbl.add t.prepends (asn, id) id';
        id'

  (** Precompute every pending memo, then forbid mutation: the frozen
      table is immutable and safe to share across domains. *)
  let freeze t =
    if not t.frozen then begin
      for id = 0 to size t - 1 do
        ignore (to_string t id)
      done;
      t.frozen <- true
    end

  let frozen t = t.frozen
end

(** Hash-consed community sets. *)
module Communities = struct
  type id = int

  module H = Hashtbl.Make (struct
    type t = Community.Set.t

    let equal = Community.Set.equal
    let hash = Hashtbl.hash
  end)

  type t = {
    ids : id H.t;
    values : Community.Set.t Vec.t;
    strings : string option Vec.t;
    unions : (id * id, id) Hashtbl.t; (* memo: union transition *)
    mutable frozen : bool;
  }

  let create ?(expect = 256) () =
    {
      ids = H.create expect;
      values = Vec.create Community.Set.empty;
      strings = Vec.create None;
      unions = Hashtbl.create 64;
      frozen = false;
    }

  let size t = Vec.len t.values

  let intern t (cs : Community.Set.t) : id =
    match H.find_opt t.ids cs with
    | Some id -> id
    | None ->
        if t.frozen then frozen_failure "Communities.intern";
        let id = Vec.len t.values in
        H.add t.ids cs id;
        Vec.push t.values cs;
        Vec.push t.strings None;
        id

  let find_opt t cs = H.find_opt t.ids cs
  let get t (id : id) = Vec.get t.values id

  let equal_id (a : id) (b : id) = Int.equal a b

  let compare_id t (a : id) (b : id) =
    if a = b then 0 else Community.Set.compare (get t a) (get t b)

  let mem t c (id : id) = Community.Set.mem c (get t id)

  let cardinal t (id : id) = Community.Set.cardinal (get t id)

  let to_string t (id : id) =
    match Vec.get t.strings id with
    | Some s -> s
    | None ->
        if t.frozen then frozen_failure "Communities.to_string";
        let s = Community.Set.to_string (get t id) in
        Vec.set t.strings id (Some s);
        s

  (** Memoized union transition (commutative: the memo key is
      order-normalized). *)
  let union t (a : id) (b : id) : id =
    if a = b then a
    else
      let key = if a < b then (a, b) else (b, a) in
      match Hashtbl.find_opt t.unions key with
      | Some id -> id
      | None ->
          if t.frozen then frozen_failure "Communities.union";
          let id = intern t (Community.Set.union (get t a) (get t b)) in
          Hashtbl.add t.unions key id;
          id

  let freeze t =
    if not t.frozen then begin
      for id = 0 to size t - 1 do
        ignore (to_string t id)
      done;
      t.frozen <- true
    end

  let frozen t = t.frozen
end
