(** CIDR prefixes over both address families.

    A prefix is stored in normalized form: all host bits of the network
    address are zero.  The ordering heuristic of the distributed simulator
    (§3.2 of the paper) sorts routes by the {e last} address covered by the
    prefix, which {!last_addr} provides. *)

type t = { ip : Ip.t; len : int }

let bits t = Ip.family_bits (Ip.family t.ip)

(* Zero out host bits. *)
let normalize_ip ip len =
  match ip with
  | Ip.V4 n ->
      let m = if len <= 0 then 0 else (Ip.v4_max lsr (32 - len)) lsl (32 - len) in
      Ip.V4 (n land m)
  | Ip.V6 n -> Ip.V6 (Int128.logand n (Int128.mask len))

let make ip len =
  let max_len = Ip.family_bits (Ip.family ip) in
  if len < 0 || len > max_len then invalid_arg "Prefix.make: bad length"
  else { ip = normalize_ip ip len; len }

let make_opt ip len =
  if len < 0 || len > Ip.family_bits (Ip.family ip) then None
  else Some (make ip len)

let ip t = t.ip
let len t = t.len
let family t = Ip.family t.ip

let equal a b = a.len = b.len && Ip.equal a.ip b.ip

(* Order prefixes by first address, then by length (shorter first, i.e. the
   covering prefix sorts before its subnets). *)
let compare a b =
  let c = Ip.compare a.ip b.ip in
  if c <> 0 then c else Int.compare a.len b.len

let first_addr t = t.ip

let last_addr t =
  match t.ip with
  | Ip.V4 n ->
      let host = if t.len >= 32 then 0 else (1 lsl (32 - t.len)) - 1 in
      Ip.V4 (n lor host)
  | Ip.V6 n ->
      Ip.V6 (Int128.logor n (Int128.lognot (Int128.mask t.len)))

(** Number of addresses covered (saturating at [max_int] for huge v6 blocks). *)
let size t =
  match family t with
  | Ip.Ipv4 -> 1 lsl (32 - t.len)
  | Ip.Ipv6 ->
      if 128 - t.len >= 62 then max_int else 1 lsl (128 - t.len)

(** [mem ip t] is true when [ip] is covered by prefix [t]. *)
let mem addr t =
  Ip.family addr = family t && Ip.equal (normalize_ip addr t.len) t.ip

(** [subsumes a b] is true when every address of [b] is in [a]. *)
let subsumes a b =
  family a = family b && a.len <= b.len && mem b.ip a

(** [overlap a b]: do the two prefixes share any address? *)
let overlap a b = subsumes a b || subsumes b a

let to_string t = Printf.sprintf "%s/%d" (Ip.to_string t.ip) t.len

let of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let addr = String.sub s 0 i in
      let l = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ip.of_string addr, int_of_string_opt l) with
      | Some ip, Some len
        when len >= 0 && len <= Ip.family_bits (Ip.family ip) ->
          Some (make ip len)
      | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string_exn: %S" s)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let hash t = Ip.hash t.ip lxor (t.len * 0x27d4eb2f)

(** The default route for a family ([0.0.0.0/0] or [::/0]). *)
let default fam = make (Ip.zero fam) 0

(** Split a prefix into its two /(len+1) halves (e.g. for trie tests). *)
let halves t =
  let b = bits t in
  if t.len >= b then None
  else
    let lo = make t.ip (t.len + 1) in
    let hi_ip =
      match t.ip with
      | Ip.V4 n -> Ip.V4 (n lor (1 lsl (b - t.len - 1)))
      | Ip.V6 n -> Ip.V6 (Int128.set_bit n (b - t.len - 1))
    in
    Some (lo, make hi_ip (t.len + 1))

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Stdlib.Set.Make (Ord)
module Map = Stdlib.Map.Make (Ord)
