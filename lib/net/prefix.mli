(** CIDR prefixes over both address families, stored in normalized form
    (host bits zeroed). *)

type t

(** [make ip len] normalizes [ip] to [len] bits.
    @raise Invalid_argument when [len] exceeds the family width. *)
val make : Ip.t -> int -> t

(** [make_opt ip len] is [make] returning [None] on an out-of-range
    length — for parser paths fed untrusted input. *)
val make_opt : Ip.t -> int -> t option

val ip : t -> Ip.t

val len : t -> int

val family : t -> Ip.family

(** Family width in bits (32 or 128). *)
val bits : t -> int

val equal : t -> t -> bool

(** Order by first address, then by length (a covering prefix sorts
    before its subnets). *)
val compare : t -> t -> int

val first_addr : t -> Ip.t

(** The last address covered — the sort key of the distributed
    simulator's ordering heuristic (§3.2 of the paper). *)
val last_addr : t -> Ip.t

(** Number of covered addresses (saturating for huge IPv6 blocks). *)
val size : t -> int

(** [mem ip t]: is [ip] covered by [t]? *)
val mem : Ip.t -> t -> bool

(** [subsumes a b]: is every address of [b] inside [a]? *)
val subsumes : t -> t -> bool

val overlap : t -> t -> bool

val to_string : t -> string

val of_string : string -> t option

val of_string_exn : string -> t

val pp : Format.formatter -> t -> unit

val hash : t -> int

(** The default route of a family ([0.0.0.0/0] or [::/0]). *)
val default : Ip.family -> t

(** The two /(len+1) halves, or [None] for host routes. *)
val halves : t -> (t * t) option

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Set : Stdlib.Set.S with type elt = t

module Map : Stdlib.Map.S with type key = t
