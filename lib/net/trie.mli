(** Binary longest-prefix-match tries over IP prefixes.

    Used for FIBs in traffic simulation and for prefix-set evaluation.
    One trie covers one address family; {!Dual} bundles a v4 and a v6
    trie behind family dispatch.  Tries are persistent (pure). *)

type 'a t

val empty : Ip.family -> 'a t

val is_empty : 'a t -> bool

(** [add t prefix v] binds [prefix] to [v], replacing a previous binding.
    @raise Invalid_argument on a family mismatch. *)
val add : 'a t -> Prefix.t -> 'a -> 'a t

(** [update t prefix f] rewrites the binding through [f] (receives
    [None] when absent; returning [None] removes). *)
val update : 'a t -> Prefix.t -> ('a option -> 'a option) -> 'a t

val remove : 'a t -> Prefix.t -> 'a t

val find_exact : 'a t -> Prefix.t -> 'a option

(** Longest-prefix match of an address: the most specific covering
    binding, with the matched prefix reconstructed. *)
val longest_match : 'a t -> Ip.t -> (Prefix.t * 'a) option

(** All covering bindings, most specific first. *)
val all_matches : 'a t -> Ip.t -> (Prefix.t * 'a) list

val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

val to_list : 'a t -> (Prefix.t * 'a) list

val cardinal : 'a t -> int

(** Mutable batch construction: [add]/[update] mutate in place (one node
    allocated per new spine element, against a whole spine copy per
    persistent {!add}); [build] freezes into the persistent trie.  Used
    to build WAN-scale FIBs in one pass. *)
module Builder : sig
  type 'a builder

  val create : Ip.family -> 'a builder

  (** @raise Invalid_argument on a family mismatch. *)
  val add : 'a builder -> Prefix.t -> 'a -> unit

  val update : 'a builder -> Prefix.t -> ('a option -> 'a option) -> unit

  val build : 'a builder -> 'a t
end

(** Batch-build from bindings (later bindings of one prefix win). *)
val of_list : Ip.family -> (Prefix.t * 'a) list -> 'a t

(** A v4 + v6 trie pair with family dispatch on every operation. *)
module Dual : sig
  type 'a t

  val empty : 'a t

  val add : 'a t -> Prefix.t -> 'a -> 'a t

  val update : 'a t -> Prefix.t -> ('a option -> 'a option) -> 'a t

  val remove : 'a t -> Prefix.t -> 'a t

  val find_exact : 'a t -> Prefix.t -> 'a option

  val longest_match : 'a t -> Ip.t -> (Prefix.t * 'a) option

  val all_matches : 'a t -> Ip.t -> (Prefix.t * 'a) list

  val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

  val to_list : 'a t -> (Prefix.t * 'a) list

  val cardinal : 'a t -> int

  (** Family-dispatching mutable batch construction (see
      {!Trie.Builder}). *)
  module Builder : sig
    type 'a builder

    val create : unit -> 'a builder

    val add : 'a builder -> Prefix.t -> 'a -> unit

    val update : 'a builder -> Prefix.t -> ('a option -> 'a option) -> unit

    val build : 'a builder -> 'a t
  end

  val of_list : (Prefix.t * 'a) list -> 'a t
end
