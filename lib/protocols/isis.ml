(** IS-IS link-state routing: all-pairs shortest paths with ECMP.

    Edge costs come from each device's per-interface [isis cost]
    configuration (default 10).  The result is the IGP view that BGP uses
    for next-hop resolution and the igp-cost tie-break step, and that
    traffic simulation uses to expand hop-by-hop forwarding.

    When the IS-IS TE extension (RFC 5305) is enabled on a device and an
    interface carries [isis traffic-eng], the interface advertises a TE
    metric; we model TE by allowing a distinct TE cost table used by SR
    policy path computation.  (The paper notes IS-IS TE was unsupported
    until 03/2023 and caused traffic-simulation inaccuracy — the diagnosis
    experiments re-create that by disabling TE awareness.) *)

open Hoyan_net
module Types = Hoyan_config.Types
module Smap = Map.Make (String)

type t = {
  order : string array; (* device index <-> name *)
  index : int Smap.t;
  dist : int array array; (* dist.(src).(dst); max_int = unreachable *)
  first_hops : string list array array; (* ECMP first hops src -> dst *)
}

let default_cost = 10

(** Cost of the directed edge, from the source device's interface config.
    An interface without an explicit cost inherits the device-level
    default cost only on vendors that inherit options into sub-views (the
    "inheriting views" VSB of Table 5). *)
let edge_cost ~(configs : Types.t Smap.t) ~(te : bool) (e : Topology.edge) =
  match Smap.find_opt e.Topology.src configs with
  | None -> default_cost
  | Some cfg -> (
      let fallback () =
        match
          ( cfg.Types.dc_isis.Types.isis_default_cost,
            Hoyan_config.Vsb.of_vendor cfg.Types.dc_vendor )
        with
        | Some d, Some vsb when vsb.Hoyan_config.Vsb.inherit_subviews -> d
        | _ -> default_cost
      in
      match
        List.find_opt
          (fun (ii : Types.isis_iface) ->
            String.equal ii.Types.ii_name e.Topology.src_if)
          cfg.Types.dc_isis.Types.isis_ifaces
      with
      | Some ii ->
          (* With TE awareness, a te-enabled interface uses its configured
             cost; without it (the pre-2023 modelling gap) te interfaces
             fall back to the default metric. *)
          if ii.Types.ii_te && not te then fallback () else ii.Types.ii_cost
      | None -> fallback ())

(* Shared Dijkstra setup: device index plus the weighted adjacency. *)
let graph_of ~(te_aware : bool) (topo : Topology.t) (configs : Types.t Smap.t)
    =
  let names = Topology.device_names topo |> Array.of_list in
  let n = Array.length names in
  let index =
    Array.to_list names
    |> List.mapi (fun i name -> (name, i))
    |> List.to_seq |> Smap.of_seq
  in
  (* adjacency with costs *)
  let adj = Array.make n [] in
  List.iter
    (fun (e : Topology.edge) ->
      match (Smap.find_opt e.Topology.src index, Smap.find_opt e.Topology.dst index) with
      | Some s, Some d ->
          let c = edge_cost ~configs ~te:te_aware e in
          adj.(s) <- (d, c) :: adj.(s)
      | _ -> ())
    (Topology.edges topo);
  (names, index, adj)

(* Single-source Dijkstra with ECMP first-hop tracking, filling row [src]
   of [dist] / [first_hops]. *)
let dijkstra_from names adj dist first_hops src =
  let module Pq = Set.Make (struct
    type t = int * int (* dist, node *)

    let compare = compare
  end) in
  let d = dist.(src) in
  let fh = first_hops.(src) in
  d.(src) <- 0;
  let pq = ref (Pq.singleton (0, src)) in
  while not (Pq.is_empty !pq) do
    let (du, u) = Pq.min_elt !pq in
    pq := Pq.remove (du, u) !pq;
    if du <= d.(u) then
      List.iter
        (fun (v, c) ->
          let alt = du + c in
          if alt < d.(v) then begin
            d.(v) <- alt;
            (* first hop: if u is the source, the first hop is v itself;
               otherwise inherit u's first hops *)
            fh.(v) <- (if u = src then [ names.(v) ] else fh.(u));
            pq := Pq.add (alt, v) !pq
          end
          else if alt = d.(v) && alt < max_int then begin
            let inherited = if u = src then [ names.(v) ] else fh.(u) in
            let merged =
              List.sort_uniq String.compare (inherited @ fh.(v))
            in
            fh.(v) <- merged
          end)
        adj.(u)
  done

(** Compute the IGP view.  [te_aware] controls whether IS-IS TE interface
    costs are honoured (see the module doc). *)
let compute ?(te_aware = true) (topo : Topology.t) (configs : Types.t Smap.t) :
    t =
  let names, index, adj = graph_of ~te_aware topo configs in
  let n = Array.length names in
  let dist = Array.make_matrix n n max_int in
  let first_hops = Array.init n (fun _ -> Array.make n []) in
  for src = 0 to n - 1 do
    dijkstra_from names adj dist first_hops src
  done;
  { order = names; index; dist; first_hops }

(** Like {!compute}, but runs Dijkstra only from [sources]; every other
    device's row is left all-unreachable (and its first hops empty).
    Lookups with a source outside [sources] therefore return [None]/[[]]
    rather than failing.  Sources not in the topology are ignored.

    This is the cheap per-scenario IGP view used by the static what-if
    analysis (`Failure_eq`): fingerprinting a failure scenario only needs
    the rows of the devices inside a property's blast region, so the
    all-pairs cost of {!compute} would dominate the scenario sweep. *)
let compute_rows ?(te_aware = true) (topo : Topology.t)
    (configs : Types.t Smap.t) ~(sources : string list) : t =
  let names, index, adj = graph_of ~te_aware topo configs in
  let n = Array.length names in
  let dist = Array.make_matrix n n max_int in
  let first_hops = Array.init n (fun _ -> Array.make n []) in
  List.sort_uniq String.compare sources
  |> List.iter (fun src ->
         match Smap.find_opt src index with
         | Some s -> dijkstra_from names adj dist first_hops s
         | None -> ());
  { order = names; index; dist; first_hops }

let cost (t : t) ~src ~dst : int option =
  match (Smap.find_opt src t.index, Smap.find_opt dst t.index) with
  | Some s, Some d ->
      let c = t.dist.(s).(d) in
      if c = max_int then None else Some c
  | _ -> None

(** ECMP first hops (device names) on shortest paths from [src] to [dst]. *)
let first_hops (t : t) ~src ~dst : string list =
  match (Smap.find_opt src t.index, Smap.find_opt dst t.index) with
  | Some s, Some d -> t.first_hops.(s).(d)
  | _ -> []

let reachable (t : t) ~src ~dst = Option.is_some (cost t ~src ~dst)

let devices (t : t) = Array.to_list t.order

(** One ECMP-respecting shortest path (lexicographically first hops), for
    forwarding-graph displays. *)
let some_path (t : t) ~src ~dst : string list option =
  if not (reachable t ~src ~dst) then None
  else
    let rec walk cur acc =
      if String.equal cur dst then Some (List.rev (dst :: acc))
      else
        match first_hops t ~src:cur ~dst with
        | [] -> None
        | hop :: _ -> walk hop (cur :: acc)
    in
    walk src []
