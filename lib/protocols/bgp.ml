(** The BGP simulation engine.

    Hoyan's route simulation "runs a fixpoint algorithm simulating the
    message-passing process of BGP route propagation" (§3.1): in each
    round a router receives incoming routes, applies ingress policy,
    installs them in its RIB, and advertises the updated best route(s)
    after egress policy.  The fixpoint terminates when no router receives
    new routes (within ~20 rounds on the paper's WAN).

    This module implements that engine for a set of devices connected by
    BGP sessions, including: the full decision process, eBGP/iBGP
    propagation rules with route reflection, AS-loop prevention, add-path,
    route aggregation (with/without AS-set), redistribution from other
    protocols, per-device VRF leaking over route targets, and every
    Table-5 vendor-specific behaviour relevant to BGP. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Vsb = Hoyan_config.Vsb
module Policy = Hoyan_config.Policy
module Smap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Session and device context                                          *)
(* ------------------------------------------------------------------ *)

type session = {
  s_local : string;
  s_peer : string;
  s_local_addr : Ip.t;
  s_peer_addr : Ip.t;
  s_ebgp : bool;
  s_import : string option; (* local ingress policy for routes from peer *)
  s_export : string option; (* local egress policy for routes to peer *)
  s_rr_client : bool; (* the peer is a route-reflector client of local *)
  s_next_hop_self : bool;
  s_add_paths : int; (* 0/1 = best only; n>1 = advertise up to n paths *)
  s_vrf : string;
}

type device_ctx = {
  d_name : string;
  d_asn : int;
  d_router_id : Ip.t;
  d_cfg : Types.t;
  d_vsb : Vsb.t;
  d_sessions : session list; (* sessions where s_local = d_name *)
  d_igp_cost : Ip.t -> int option;
      (* IGP cost from this device to an address; [None] = unresolvable *)
  d_sr_reach : Ip.t -> bool; (* next hop reached via an SR tunnel? *)
  d_regex : string -> string -> bool; (* AS-path regex implementation *)
}

type network = device_ctx Smap.t

type input = {
  in_routes : Route.t list;
      (** Monitored input routes; [Route.device] is the injection point. *)
  in_local_tables : Route.t list Smap.t;
      (** Per device: connected/static/IS-IS routes available for
          redistribution (and included in the output RIBs). *)
}

type stats = {
  st_rounds : int;
  st_messages : int; (* session-level route-set deliveries *)
  st_selected : int; (* loc-rib entries at fixpoint *)
}

(* ------------------------------------------------------------------ *)
(* Decision process                                                    *)
(* ------------------------------------------------------------------ *)

(** Effective IGP cost of a route for the decision process.  The
    "IGP cost for SR" VSB (Figure 9's root cause): some vendors treat the
    cost as 0 when the next hop is reached through an SR tunnel. *)
let effective_igp_cost (ctx : device_ctx) (r : Route.t) : int option =
  match r.Route.nexthop with
  | None -> Some 0 (* locally originated *)
  | Some nh ->
      if ctx.d_vsb.Vsb.sr_igp_cost_zero && ctx.d_sr_reach nh then Some 0
      else ctx.d_igp_cost nh

let source_rank = function
  | Route.Local -> 0
  | Route.Redistributed -> 1
  | Route.Ebgp | Route.Ibgp -> 2

(** Compare two routes for the same prefix: negative when [a] is better.
    Steps: weight, local-pref, locally-originated, AS-path length, origin,
    MED, eBGP-over-iBGP, IGP cost (already computed into the routes),
    deterministic tie-break on the learning peer.

    Straight-line int compares: weight/local-pref/origin/MED come out of
    the packed attrs word, the AS-path length is cached on the path —
    no closure chain, no structural traversal. *)
let better_than (a : Route.t) (b : Route.t) : int =
  let c = Int.compare (Route.weight b) (Route.weight a) in
  if c <> 0 then c
  else
    let c = Int.compare (Route.local_pref b) (Route.local_pref a) in
    if c <> 0 then c
    else
      let c =
        Int.compare (source_rank a.Route.source) (source_rank b.Route.source)
      in
      if c <> 0 then c
      else
        let c =
          Int.compare
            (As_path.length a.Route.as_path)
            (As_path.length b.Route.as_path)
        in
        if c <> 0 then c
        else
          let c =
            Int.compare
              (Route.origin_rank (Route.origin a))
              (Route.origin_rank (Route.origin b))
          in
          if c <> 0 then c
          else
            let c = Int.compare (Route.med a) (Route.med b) in
            if c <> 0 then c
            else
              let rank (r : Route.t) =
                match r.Route.source with Route.Ebgp -> 0 | _ -> 1
              in
              let c = Int.compare (rank a) (rank b) in
              if c <> 0 then c
              else Int.compare a.Route.igp_cost b.Route.igp_cost

(** Tie-break beyond ECMP equality: deterministic order on the learning
    peer, standing in for the router-id/oldest-path rule. *)
let tie_break (a : Route.t) (b : Route.t) : int =
  let c = Option.compare String.compare a.Route.peer b.Route.peer in
  if c <> 0 then c
  else Option.compare Ip.compare a.Route.nexthop b.Route.nexthop

(** Select among candidate routes: returns the list with [route_type]
    marked (one [Best], equal-cost ones [Ecmp], the rest [Backup]).
    Routes whose next hop does not resolve are dropped. *)
let select (ctx : device_ctx) (candidates : Route.t list) : Route.t list =
  (* avoid copying a route record when the field already has the value:
     selection runs on every dirty (vrf, prefix) every round, and in the
     steady state most routes are re-selected unchanged *)
  let with_cost (r : Route.t) c =
    if r.Route.igp_cost = c then r else { r with Route.igp_cost = c }
  in
  let with_type (r : Route.t) ty =
    if r.Route.route_type = ty then r else { r with Route.route_type = ty }
  in
  let valid =
    List.filter_map
      (fun r ->
        match effective_igp_cost ctx r with
        | Some c -> Some (with_cost r c)
        | None -> None)
      candidates
  in
  match valid with
  | [] -> []
  | _ ->
      let sorted =
        List.sort
          (fun a b ->
            let c = better_than a b in
            if c <> 0 then c else tie_break a b)
          valid
      in
      let best = List.hd sorted in
      List.mapi
        (fun i r ->
          if i = 0 then with_type r Route.Best
          else if better_than r best = 0 then with_type r Route.Ecmp
          else with_type r Route.Backup)
        sorted

(* ------------------------------------------------------------------ *)
(* Simulation state                                                    *)
(* ------------------------------------------------------------------ *)

type dev_state = {
  (* adj-rib-in: (vrf, prefix, peer-key) -> post-import routes *)
  rib_in : (string * Prefix.t * string, Route.t list) Hashtbl.t;
  (* loc-rib: (vrf, prefix) -> selected routes (with route_type marked) *)
  loc_rib : (string * Prefix.t, Route.t list) Hashtbl.t;
  (* last advertisement per (peer, vrf, prefix), to deliver only changes *)
  adv_cache : (string * string * Prefix.t, Route.t list) Hashtbl.t;
  mutable dirty : (string * Prefix.t) list;
  dirty_set : (string * Prefix.t, unit) Hashtbl.t;
}

let new_dev_state () =
  {
    rib_in = Hashtbl.create 256;
    loc_rib = Hashtbl.create 256;
    adv_cache = Hashtbl.create 256;
    dirty = [];
    dirty_set = Hashtbl.create 64;
  }

let mark_dirty st key =
  if not (Hashtbl.mem st.dirty_set key) then begin
    Hashtbl.replace st.dirty_set key ();
    st.dirty <- key :: st.dirty
  end

let take_dirty st =
  let d = st.dirty in
  st.dirty <- [];
  Hashtbl.reset st.dirty_set;
  d

(** Gather the candidate routes of a (vrf, prefix) across all peers. *)
let candidates_of st vrf prefix =
  Hashtbl.fold
    (fun (v, p, _) routes acc ->
      if String.equal v vrf && Prefix.equal p prefix then routes @ acc else acc)
    st.rib_in []

(* The full scan above is O(rib_in); keep an index instead. *)

type sim = {
  net : network;
  states : (string, dev_state) Hashtbl.t;
  (* per device: (vrf, prefix) -> peer keys present, to avoid full scans *)
  peers_idx : (string, (string * Prefix.t, string list) Hashtbl.t) Hashtbl.t;
  mutable messages : int;
}

let state_of sim dev =
  match Hashtbl.find_opt sim.states dev with
  | Some st -> st
  | None ->
      let st = new_dev_state () in
      Hashtbl.replace sim.states dev st;
      st

let idx_of sim dev =
  match Hashtbl.find_opt sim.peers_idx dev with
  | Some i -> i
  | None ->
      let i = Hashtbl.create 256 in
      Hashtbl.replace sim.peers_idx dev i;
      i

(** Replace the adj-rib-in entry for (vrf, prefix) from [peer_key]. *)
let set_rib_in sim dev vrf prefix peer_key routes =
  let st = state_of sim dev in
  let idx = idx_of sim dev in
  let key = (vrf, prefix, peer_key) in
  let existing = Option.value (Hashtbl.find_opt st.rib_in key) ~default:[] in
  let changed =
    not (List.equal Route.equal existing routes)
  in
  if changed then begin
    if routes = [] then Hashtbl.remove st.rib_in key
    else Hashtbl.replace st.rib_in key routes;
    let ikey = (vrf, prefix) in
    let peers = Option.value (Hashtbl.find_opt idx ikey) ~default:[] in
    (* only write the index when membership actually changes (the common
       case on re-advertisement is an unchanged peer set) *)
    (if routes = [] then begin
       if List.mem peer_key peers then
         Hashtbl.replace idx ikey
           (List.filter (fun p -> not (String.equal p peer_key)) peers)
     end
     else if not (List.mem peer_key peers) then
       Hashtbl.replace idx ikey (peer_key :: peers));
    mark_dirty st ikey
  end;
  changed

let candidates sim dev vrf prefix =
  let st = state_of sim dev in
  let idx = idx_of sim dev in
  match Hashtbl.find_opt idx (vrf, prefix) with
  | None -> []
  | Some [] -> []
  | Some [ pk ] ->
      (* single-peer fast path (the overwhelmingly common case): return
         the stored list without copying *)
      Option.value (Hashtbl.find_opt st.rib_in (vrf, prefix, pk)) ~default:[]
  | Some peers ->
      List.concat_map
        (fun pk ->
          Option.value (Hashtbl.find_opt st.rib_in (vrf, prefix, pk)) ~default:[])
        peers

let _ = candidates_of (* silence unused warning; kept for tests *)

(* ------------------------------------------------------------------ *)
(* Ingress processing                                                  *)
(* ------------------------------------------------------------------ *)

(** Process routes arriving at [ctx] over [s] (the session as seen from
    the *sender*, so the receiver is [s.s_peer]).  Returns the post-import
    route list to install (possibly empty). *)
let process_ingress (receiver : device_ctx) (recv_session : session)
    (routes : Route.t list) : Route.t list =
  (* A device isolated via the dedicated knob has its sessions fully down;
     policy-based isolation only blocks its *exports* (the "device
     isolation" VSB). *)
  if
    receiver.d_cfg.Types.dc_isolated
    && not receiver.d_vsb.Vsb.isolation_by_policy
  then []
  else
  List.filter_map
    (fun (r : Route.t) ->
      (* AS loop prevention *)
      if recv_session.s_ebgp && As_path.contains_asn receiver.d_asn r.Route.as_path
      then None
      else
        let r =
          if recv_session.s_ebgp then
            { (Route.with_local_pref (Route.with_weight r 0) 100) with
              Route.source = Route.Ebgp;
              preference = receiver.d_vsb.Vsb.default_pref_ebgp }
          else
            { (Route.with_weight r 0) with
              Route.source = Route.Ibgp;
              preference = receiver.d_vsb.Vsb.default_pref_ibgp }
        in
        let r =
          { r with
            Route.device = receiver.d_name;
            vrf = recv_session.s_vrf;
            peer = Some recv_session.s_peer;
            proto = Route.Bgp }
        in
        let verdict =
          Policy.eval ~regex:receiver.d_regex ~ebgp:recv_session.s_ebgp
            receiver.d_cfg receiver.d_vsb recv_session.s_import r
        in
        match verdict.Policy.pv_action with
        | Types.Permit -> Some verdict.Policy.pv_route
        | Types.Deny -> None)
    routes

(* ------------------------------------------------------------------ *)
(* Egress processing                                                   *)
(* ------------------------------------------------------------------ *)

(** Is route [r] suppressed by a summary-only aggregate on the device? *)
let suppressed (ctx : device_ctx) (r : Route.t) =
  List.exists
    (fun (ag : Types.aggregate) ->
      ag.Types.ag_summary_only
      && String.equal ag.Types.ag_vrf r.Route.vrf
      && Prefix.subsumes ag.Types.ag_prefix r.Route.prefix
      && not (Prefix.equal ag.Types.ag_prefix r.Route.prefix))
    ctx.d_cfg.Types.dc_bgp.Types.bgp_aggregates

(** A redistributed host /32 (or /128) produced by a direct connection on
    a non-host interface — subject to the "sending /32 route to peer"
    VSB. *)
let is_host32_extra (r : Route.t) =
  r.Route.source = Route.Redistributed
  && Prefix.len r.Route.prefix = Ip.family_bits (Prefix.family r.Route.prefix)
  && Option.is_some r.Route.out_iface

(** Routes learned over a session from an RR client of [ctx]. *)
let learned_from_client (ctx : device_ctx) (r : Route.t) =
  match r.Route.peer with
  | None -> false
  | Some peer ->
      List.exists
        (fun s -> String.equal s.s_peer peer && s.s_rr_client)
        ctx.d_sessions

(** Compute what [ctx] advertises over session [s] for the selected routes
    of one (vrf, prefix). *)
let export_routes (ctx : device_ctx) (s : session) (selected : Route.t list) :
    Route.t list =
  if ctx.d_cfg.Types.dc_isolated then []
  else
  (* which paths are candidates to advertise *)
  let advertisable =
    List.filter
      (fun (r : Route.t) ->
        match r.Route.route_type with
        | Route.Best -> true
        | Route.Ecmp | Route.Backup -> s.s_add_paths > 1)
      selected
  in
  let advertisable =
    if s.s_add_paths > 1 then
      (* keep the decision order; take the top n *)
      List.filteri (fun i _ -> i < s.s_add_paths) advertisable
    else advertisable
  in
  List.filter_map
    (fun (r : Route.t) ->
      (* split horizon: do not send back to the peer it came from *)
      if Option.equal String.equal r.Route.peer (Some s.s_peer) then None
      else if
        (* well-known communities (RFC 1997): NO_ADVERTISE blocks every
           advertisement; NO_EXPORT blocks eBGP ones *)
        Community.Set.mem Community.no_advertise r.Route.communities
        || (s.s_ebgp
           && Community.Set.mem Community.no_export r.Route.communities)
      then None
      else if suppressed ctx r then None
      else if is_host32_extra r && not ctx.d_vsb.Vsb.send_host32_to_peer then None
      else if
        (* iBGP re-advertisement rules / route reflection *)
        (not s.s_ebgp)
        && r.Route.source = Route.Ibgp
        && not (learned_from_client ctx r || s.s_rr_client)
      then None
      else
        let verdict =
          Policy.eval ~regex:ctx.d_regex ~ebgp:s.s_ebgp ctx.d_cfg ctx.d_vsb
            s.s_export r
        in
        match verdict.Policy.pv_action with
        | Types.Deny -> None
        | Types.Permit ->
            let r = verdict.Policy.pv_route in
            let r =
              if s.s_ebgp then
                let add_asn =
                  if verdict.Policy.pv_aspath_overwritten then
                    ctx.d_vsb.Vsb.adding_own_asn
                  else true
                in
                let as_path =
                  if add_asn then As_path.prepend ctx.d_asn r.Route.as_path
                  else r.Route.as_path
                in
                Route.with_local_pref
                  { r with Route.as_path; nexthop = Some s.s_local_addr }
                  100
              else if s.s_next_hop_self then
                { r with Route.nexthop = Some s.s_local_addr }
              else r
            in
            Some { r with Route.route_type = Route.Best })
    advertisable

(* ------------------------------------------------------------------ *)
(* Local origination: networks, redistribution, aggregates, leaking    *)
(* ------------------------------------------------------------------ *)

(* [keep] is the incremental engine's prefix restriction (see
   {!Hoyan_sim.Incremental}): origination sites skip prefixes outside the
   dirty region, so a restricted run converges exactly the restriction of
   the full fixpoint (every per-prefix pipeline stage — ingress, export,
   selection, delivery — is prefix-local; the only cross-prefix coupling
   is aggregation, which the caller closes over before restricting). *)
let originate_networks sim keep (ctx : device_ctx) =
  List.iter
    (fun (p, vrf) ->
      if keep p then
        let r =
          Route.make ~device:ctx.d_name ~prefix:p ~vrf ~proto:Route.Bgp
            ~source:Route.Local ~origin:Route.Igp
            ~preference:ctx.d_vsb.Vsb.default_pref_ibgp ()
        in
        ignore (set_rib_in sim ctx.d_name vrf p "_local" [ r ]))
    ctx.d_cfg.Types.dc_bgp.Types.bgp_networks

let redistribute sim keep (ctx : device_ctx) (local_table : Route.t list) =
  List.iter
    (fun (proto, policy) ->
      let peer_key =
        Printf.sprintf "_redist:%s" (Route.proto_to_string proto)
      in
      let sources =
        List.filter
          (fun (r : Route.t) -> r.Route.proto = proto && keep r.Route.prefix)
          local_table
      in
      List.iter
        (fun (r : Route.t) ->
          (* the /32-redistribution VSB: skip host routes created by direct
             connections when the vendor does not redistribute them *)
          let host_extra =
            r.Route.proto = Route.Direct
            && Prefix.len r.Route.prefix
               = Ip.family_bits (Prefix.family r.Route.prefix)
            && Option.is_some r.Route.out_iface
          in
          if host_extra && not ctx.d_vsb.Vsb.redistribute_host32 then ()
          else
            let weight =
              Option.value ctx.d_vsb.Vsb.weight_after_redistribution ~default:0
            in
            let cand =
              { (Route.with_origin (Route.with_weight r weight)
                   Route.Incomplete)
                with
                Route.proto = Route.Bgp;
                source = Route.Redistributed;
                device = ctx.d_name;
                preference = ctx.d_vsb.Vsb.default_pref_ibgp }
            in
            let verdict =
              Policy.eval ~regex:ctx.d_regex ~ebgp:false ctx.d_cfg ctx.d_vsb
                policy cand
            in
            match verdict.Policy.pv_action with
            | Types.Permit ->
                let prev =
                  Option.value
                    (Hashtbl.find_opt (state_of sim ctx.d_name).rib_in
                       (cand.Route.vrf, cand.Route.prefix, peer_key))
                    ~default:[]
                in
                ignore
                  (set_rib_in sim ctx.d_name cand.Route.vrf cand.Route.prefix
                     peer_key
                     (verdict.Policy.pv_route
                      :: List.filter
                           (fun x ->
                             not (Route.equal x verdict.Policy.pv_route))
                           prev))
            | Types.Deny -> ())
        sources)
    ctx.d_cfg.Types.dc_bgp.Types.bgp_redistribute

(** Originate aggregates whose component routes are present; returns true
    when something changed (keeps the fixpoint going). *)
let originate_aggregates sim keep (ctx : device_ctx) : bool =
  let st = state_of sim ctx.d_name in
  List.fold_left
    (fun changed (ag : Types.aggregate) ->
      if not (keep ag.Types.ag_prefix) then changed
      else
      let components =
        Hashtbl.fold
          (fun (vrf, _) routes acc ->
            if not (String.equal vrf ag.Types.ag_vrf) then acc
            else
              List.filter
                (fun (r : Route.t) ->
                  (match r.Route.route_type with
                  | Route.Best | Route.Ecmp -> true
                  | Route.Backup -> false)
                  && Prefix.subsumes ag.Types.ag_prefix r.Route.prefix
                  && not (Prefix.equal ag.Types.ag_prefix r.Route.prefix))
                routes
              @ acc)
          st.loc_rib []
      in
      if components = [] then
        (* withdraw a previously originated aggregate if any *)
        set_rib_in sim ctx.d_name ag.Types.ag_vrf ag.Types.ag_prefix "_agg" []
        || changed
      else
        let paths = List.map (fun r -> r.Route.as_path) components in
        let as_path =
          if ag.Types.ag_as_set then As_path.aggregate_with_set paths
          else if ctx.d_vsb.Vsb.aggregate_common_prefix then
            As_path.of_asns (As_path.common_prefix paths)
          else As_path.empty
        in
        let communities =
          List.fold_left
            (fun acc (r : Route.t) ->
              Community.Set.union acc r.Route.communities)
            Community.Set.empty components
        in
        let r =
          Route.make ~device:ctx.d_name ~prefix:ag.Types.ag_prefix
            ~vrf:ag.Types.ag_vrf ~proto:Route.Bgp ~source:Route.Local
            ~origin:Route.Incomplete ~as_path ~communities
            ~preference:ctx.d_vsb.Vsb.default_pref_ibgp ()
        in
        set_rib_in sim ctx.d_name ag.Types.ag_vrf ag.Types.ag_prefix "_agg" [ r ]
        || changed)
    false ctx.d_cfg.Types.dc_bgp.Types.bgp_aggregates

(** Per-device VRF leaking over route targets.  Export RTs are stamped as
    communities; a VRF imports any local VPNv4 route whose RTs intersect
    its import set.  The convention import-RT "global" leaks global iBGP
    routes into the VRF (subject to the "VRF export policy" VSB);
    re-leaking a leaked route into a third VRF is the "re-leaking" VSB. *)
let leak_vrfs sim (ctx : device_ctx) : bool =
  let st = state_of sim ctx.d_name in
  let vrfs = ctx.d_cfg.Types.dc_bgp.Types.bgp_vrfs in
  if vrfs = [] then false
  else
    let parse_rts rts = List.filter_map Community.of_string rts in
    (* collect exported (VPNv4) routes: (origin vrf, rts, route) *)
    let exported = ref [] in
    List.iter
      (fun (vd : Types.vrf_def) ->
        let rts = parse_rts vd.Types.vd_export_rts in
        if rts <> [] then
          Hashtbl.iter
            (fun (vrf, _) routes ->
              if String.equal vrf vd.Types.vd_name then
                List.iter
                  (fun (r : Route.t) ->
                    match r.Route.route_type with
                    | Route.Backup -> ()
                    | Route.Best | Route.Ecmp ->
                        let was_leaked =
                          match r.Route.peer with
                          | Some p -> String.length p >= 6 && String.sub p 0 6 = "_leak:"
                          | None -> false
                        in
                        if was_leaked && not ctx.d_vsb.Vsb.releak_routes then ()
                        else
                          let verdict =
                            Policy.eval ~regex:ctx.d_regex ~ebgp:false
                              ctx.d_cfg ctx.d_vsb vd.Types.vd_export_policy r
                          in
                          (match verdict.Policy.pv_action with
                          | Types.Deny -> ()
                          | Types.Permit ->
                              let r = verdict.Policy.pv_route in
                              let r =
                                { r with
                                  Route.communities =
                                    Community.Set.union r.Route.communities
                                      (Community.Set.of_list rts) }
                              in
                              exported := (vd.Types.vd_name, rts, r) :: !exported))
                  routes)
            st.loc_rib)
      vrfs;
    (* global iBGP routes leaked into VPNv4 (consumed by VRFs importing
       the pseudo-RT "global") *)
    let global_routes =
      Hashtbl.fold
        (fun (vrf, _) routes acc ->
          if String.equal vrf Route.default_vrf then
            List.filter
              (fun (r : Route.t) ->
                (match r.Route.route_type with
                | Route.Best | Route.Ecmp -> true
                | Route.Backup -> false)
                && r.Route.source = Route.Ibgp)
              routes
            @ acc
          else acc)
        st.loc_rib []
    in
    (* import pass *)
    List.fold_left
      (fun changed (vd : Types.vrf_def) ->
        let import_rts = parse_rts vd.Types.vd_import_rts in
        let wants_global = List.mem "global" vd.Types.vd_import_rts in
        let imported =
          List.filter_map
            (fun (src_vrf, rts, (r : Route.t)) ->
              if String.equal src_vrf vd.Types.vd_name then None
              else if
                List.exists (fun rt -> List.exists (Community.equal rt) rts)
                  import_rts
              then
                Some
                  { r with
                    Route.vrf = vd.Types.vd_name;
                    peer = Some (Printf.sprintf "_leak:%s" src_vrf);
                    source = Route.Ibgp;
                    route_type = Route.Best }
              else None)
            !exported
        in
        let imported_global =
          if not wants_global then []
          else
            List.filter_map
              (fun (r : Route.t) ->
                let r =
                  if ctx.d_vsb.Vsb.vrf_export_on_global_leak then
                    let verdict =
                      Policy.eval ~regex:ctx.d_regex ~ebgp:false ctx.d_cfg
                        ctx.d_vsb vd.Types.vd_export_policy r
                    in
                    match verdict.Policy.pv_action with
                    | Types.Deny -> None
                    | Types.Permit -> Some verdict.Policy.pv_route
                  else Some r
                in
                Option.map
                  (fun (r : Route.t) ->
                    { r with
                      Route.vrf = vd.Types.vd_name;
                      peer = Some "_leak:global";
                      source = Route.Ibgp;
                      route_type = Route.Best })
                  r)
              global_routes
        in
        (* group imports per prefix and install *)
        let by_prefix = Hashtbl.create 16 in
        List.iter
          (fun (r : Route.t) ->
            let existing =
              Option.value (Hashtbl.find_opt by_prefix r.Route.prefix) ~default:[]
            in
            Hashtbl.replace by_prefix r.Route.prefix (r :: existing))
          (imported @ imported_global);
        Hashtbl.fold
          (fun prefix routes changed ->
            set_rib_in sim ctx.d_name vd.Types.vd_name prefix "_leak" routes
            || changed)
          by_prefix changed)
      false vrfs

(* ------------------------------------------------------------------ *)
(* The fixpoint                                                        *)
(* ------------------------------------------------------------------ *)

let max_rounds = 64

(** Run the fixpoint and return (global RIB of BGP routes, stats).
    [originate=false] skips network statements and redistribution — used
    by distributed subtask workers, whose shared base RIB file carries
    those input-independent routes.  [only] restricts the fixpoint to a
    prefix set: input seeds, network statements, redistribution sources
    and aggregates outside it are never injected, so the run converges
    exactly the restriction of the unrestricted fixpoint {e provided} the
    set is closed under aggregate contribution (dirty component ⇒ its
    aggregates dirty, dirty aggregate ⇒ its candidate components dirty) —
    the incremental engine's contract, oracle-checked by its selfcheck.
    [tm] (default: the process-global telemetry handle) receives
    per-round journal events and decision-process counters. *)
let run ?tm ?(originate = true) ?only (net : network) (input : input) :
    Route.t list * stats =
  let keep = match only with None -> fun _ -> true | Some f -> f in
  let tm =
    match tm with
    | Some tm -> tm
    | None -> Hoyan_telemetry.Telemetry.get ()
  in
  let sim =
    { net; states = Hashtbl.create 64; peers_idx = Hashtbl.create 64;
      messages = 0 }
  in
  (* sessions indexed by (local, peer) to find the receiver's view *)
  let session_tbl = Hashtbl.create 256 in
  Smap.iter
    (fun _ ctx ->
      List.iter
        (fun s -> Hashtbl.replace session_tbl (s.s_local, s.s_peer, s.s_vrf) s)
        ctx.d_sessions)
    net;
  (* seed: input routes (already post-ingress at their injection device) *)
  let by_injection = Hashtbl.create 256 in
  List.iter
    (fun (r : Route.t) ->
      let key = (r.Route.device, r.Route.vrf, r.Route.prefix) in
      let existing =
        Option.value (Hashtbl.find_opt by_injection key) ~default:[]
      in
      Hashtbl.replace by_injection key (r :: existing))
    input.in_routes;
  Hashtbl.iter
    (fun (dev, vrf, prefix) routes ->
      if Smap.mem dev net && keep prefix then
        ignore (set_rib_in sim dev vrf prefix "_ext" routes))
    by_injection;
  (* seed: networks and redistribution *)
  if originate then
    Smap.iter
      (fun name ctx ->
        originate_networks sim keep ctx;
        let local_table =
          Option.value (Smap.find_opt name input.in_local_tables) ~default:[]
        in
        redistribute sim keep ctx local_table)
      net;
  (* fixpoint *)
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    continue_ := false;
    (* Phase 1: selection on dirty prefixes *)
    let work =
      Hashtbl.fold
        (fun dev st acc ->
          match take_dirty st with [] -> acc | d -> (dev, d) :: acc)
        sim.states []
    in
    if work <> [] then continue_ := true;
    (* one journal row per fixpoint round: the convergence delta is the
       number of devices with dirty prefixes still to settle *)
    if Hoyan_telemetry.Telemetry.enabled tm then begin
      let dirty_prefixes =
        List.fold_left (fun n (_, d) -> n + List.length d) 0 work
      in
      Hoyan_telemetry.Telemetry.count tm "hoyan_bgp_decisions_total"
        dirty_prefixes;
      Hoyan_telemetry.Telemetry.event tm "bgp.round"
        [
          ("round", Hoyan_telemetry.Journal.I !rounds);
          ("dirty_devices", Hoyan_telemetry.Journal.I (List.length work));
          ("dirty_prefixes", Hoyan_telemetry.Journal.I dirty_prefixes);
          ("messages", Hoyan_telemetry.Journal.I sim.messages);
        ]
    end;
    let outgoing = ref [] in
    List.iter
      (fun (dev, dirty) ->
        match Smap.find_opt dev net with
        | None -> ()
        | Some ctx ->
            let st = state_of sim dev in
            List.iter
              (fun (vrf, prefix) ->
                let cands = candidates sim dev vrf prefix in
                let selected = select ctx cands in
                let before =
                  Option.value (Hashtbl.find_opt st.loc_rib (vrf, prefix))
                    ~default:[]
                in
                if not (List.equal Route.equal before selected) then begin
                  if selected = [] then Hashtbl.remove st.loc_rib (vrf, prefix)
                  else Hashtbl.replace st.loc_rib (vrf, prefix) selected;
                  (* queue advertisements for this prefix on all sessions *)
                  List.iter
                    (fun s ->
                      if String.equal s.s_vrf vrf then
                        outgoing := (ctx, s, vrf, prefix, selected) :: !outgoing)
                    ctx.d_sessions
                end)
              dirty;
            (* aggregates and VRF leaking may create new local routes *)
            if originate_aggregates sim keep ctx then continue_ := true;
            if leak_vrfs sim ctx then continue_ := true)
      work;
    (* Phase 2: deliver advertisements, batched per (sender, session).
       A changed device typically queues many prefixes towards the same
       peer; resolving the sender state, the receiver and its session
       view once per batch replaces three hashtable lookups per prefix.
       The adv-cache delta check, the rib-in install and the message
       count stay per prefix, so convergence and stats are unchanged. *)
    let batches = Hashtbl.create 64 in
    let batch_order = ref [] in
    List.iter
      (fun ((ctx, s, _, _, _) as msg) ->
        let key = (ctx.d_name, s.s_peer, s.s_vrf) in
        match Hashtbl.find_opt batches key with
        | Some b -> b := msg :: !b
        | None ->
            let b = ref [ msg ] in
            Hashtbl.add batches key b;
            batch_order := b :: !batch_order)
      (List.rev !outgoing);
    List.iter
      (fun batch ->
        match List.rev !batch with
        | [] -> ()
        | ((ctx, s, _, _, _) :: _ as msgs) ->
            let st = state_of sim ctx.d_name in
            (* the receiver processes ingress with its own session view *)
            let receiver_view =
              match Smap.find_opt s.s_peer net with
              | None -> None
              | Some receiver -> (
                  match
                    Hashtbl.find_opt session_tbl (s.s_peer, ctx.d_name, s.s_vrf)
                  with
                  | None -> None
                  | Some recv_session -> Some (receiver, recv_session))
            in
            List.iter
              (fun (ctx, s, vrf, prefix, selected) ->
                let adv = export_routes ctx s selected in
                let cache_key = (s.s_peer, vrf, prefix) in
                let prev =
                  Option.value
                    (Hashtbl.find_opt st.adv_cache cache_key)
                    ~default:[]
                in
                if not (List.equal Route.equal prev adv) then begin
                  Hashtbl.replace st.adv_cache cache_key adv;
                  sim.messages <- sim.messages + 1;
                  match receiver_view with
                  | None -> ()
                  | Some (receiver, recv_session) ->
                      let installed =
                        process_ingress receiver recv_session adv
                      in
                      ignore
                        (set_rib_in sim s.s_peer recv_session.s_vrf prefix
                           ctx.d_name installed)
                end)
              msgs)
      (List.rev !batch_order)
  done;
  (* collect the global RIB *)
  let routes = ref [] in
  let selected_count = ref 0 in
  Hashtbl.iter
    (fun _dev st ->
      Hashtbl.iter
        (fun _ rs ->
          selected_count := !selected_count + List.length rs;
          routes := List.rev_append rs !routes)
        st.loc_rib)
    sim.states;
  if Hoyan_telemetry.Telemetry.enabled tm then begin
    Hoyan_telemetry.Telemetry.count tm "hoyan_bgp_rounds_total" !rounds;
    Hoyan_telemetry.Telemetry.count tm "hoyan_bgp_messages_total" sim.messages;
    Hoyan_telemetry.Telemetry.count tm "hoyan_bgp_selected_total"
      !selected_count
  end;
  ( !routes,
    { st_rounds = !rounds; st_messages = sim.messages;
      st_selected = !selected_count } )
