(** Static failure-equivalence analysis — see the .mli for the slice
    argument and the three pruning tiers.  The fingerprint computed here
    must track every input of the property-restricted simulation slice:
    whenever the simulator grows a new dependence of route state on
    topology (beyond sessions, IGP rows, SR resolution and removals),
    this module must fingerprint it too, or the brute-vs-pruned oracle
    in test_kfailure will catch the divergence. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Vsb = Hoyan_config.Vsb
module Isis = Hoyan_proto.Isis
module Telemetry = Hoyan_telemetry.Telemetry
module Smap = Map.Make (String)
module Sset = Set.Make (String)
module Iset = Set.Make (Int)

type failure = Link_down of string * string | Device_down of string

let failure_to_string = function
  | Link_down (a, b) -> Printf.sprintf "link %s-%s down" a b
  | Device_down d -> Printf.sprintf "device %s down" d

let compare_failure = compare

type footprint =
  | Reach_all of Prefix.t * string list
  | Prefix_scoped of Prefix.t list * string list
  | Opaque

let footprint_prefixes = function
  | Reach_all (p, _) -> [ p ]
  | Prefix_scoped (ps, _) -> ps
  | Opaque -> []

(* Emit the lexicographically ordered k-subsets without the quadratic
   [@] of the naive version: the shared prefix is threaded as a reversed
   accumulator and each subset is materialized exactly once. *)
let combinations k l =
  let rec go k l prefix acc =
    if k = 0 then List.rev prefix :: acc
    else
      match l with
      | [] -> acc
      | x :: rest ->
          let acc = go (k - 1) rest (x :: prefix) acc in
          go k rest prefix acc
  in
  List.rev (go k l [] [])

let candidates ?(devices = true) ?(links = true) (topo : Topology.t) :
    failure list =
  let link_failures =
    if not links then []
    else
      Topology.edges topo
      |> List.filter_map (fun (e : Topology.edge) ->
             if String.compare e.Topology.src e.Topology.dst < 0 then
               Some (Link_down (e.Topology.src, e.Topology.dst))
             else None)
      |> List.sort_uniq compare
  in
  let device_failures =
    if not devices then []
    else Topology.device_names topo |> List.map (fun d -> Device_down d)
  in
  link_failures @ device_failures

let scenarios_up_to ~k cands =
  List.concat_map
    (fun i -> combinations i cands)
    (List.init k (fun i -> i + 1))

(* ------------------------------------------------------------------ *)
(* Context                                                             *)
(* ------------------------------------------------------------------ *)

type t = {
  an_graph : Semantic.t;
  an_topo : Topology.t;
  an_configs : Types.t Smap.t;
  an_input_routes : Route.t list;
  an_te : bool;
  an_tm : Telemetry.t;
  an_closures : (string, Sset.t) Hashtbl.t;
      (* prefix (printed) -> closure members; memoized across the whole
         candidate set — footprint prefixes and aggregate contributors
         share one cache *)
  an_edges : (string, (Semantic.session_edge * bool) list) Hashtbl.t;
      (* per device: session edges in a deterministic order, with the
         link-address-peering flag precomputed (it is config-only) *)
}

let create ?tm ?(te_aware = true) (g : Semantic.t)
    ~(input_routes : Route.t list) : t =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  match g.Semantic.g_input.Lint.li_topo with
  | None -> invalid_arg "Failure_eq.create: semantic graph has no topology"
  | Some topo ->
      {
        an_graph = g;
        an_topo = topo;
        an_configs = g.Semantic.g_input.Lint.li_configs;
        an_input_routes = input_routes;
        an_te = te_aware;
        an_tm = tm;
        an_closures = Hashtbl.create 64;
        an_edges = Hashtbl.create 256;
      }

let closure_of (t : t) (p : Prefix.t) : Sset.t =
  let key = Prefix.to_string p in
  match Hashtbl.find_opt t.an_closures key with
  | Some s -> s
  | None ->
      let members =
        Semantic.closure ~tm:t.an_tm t.an_graph
          ~input_routes:t.an_input_routes p
      in
      let s =
        Hashtbl.fold
          (fun d () acc ->
            if Semantic.in_topo t.an_graph d then Sset.add d acc else acc)
          members Sset.empty
      in
      Hashtbl.replace t.an_closures key s;
      s

let region (t : t) (p : Prefix.t) : string list =
  Sset.elements (closure_of t p)

(* The session edges out of [u], deterministically ordered, each tagged
   with whether it is a link-address peering (the neighbor address sits
   on one of [u]'s connected subnets — [Model.sessions_of]'s rule). *)
let edges_of (t : t) (u : string) : (Semantic.session_edge * bool) list =
  match Hashtbl.find_opt t.an_edges u with
  | Some es -> es
  | None ->
      let cfg = Smap.find_opt u t.an_configs in
      let direct_peering (e : Semantic.session_edge) =
        match cfg with
        | None -> false
        | Some c ->
            List.exists
              (fun (i : Types.iface_config) ->
                match Types.iface_subnet i with
                | Some subnet -> Prefix.mem e.Semantic.se_out.Types.nb_addr subnet
                | None -> false)
              c.Types.dc_ifaces
      in
      let es =
        Option.value (Hashtbl.find_opt t.an_graph.Semantic.g_out u) ~default:[]
        |> List.filter (fun (e : Semantic.session_edge) ->
               Semantic.in_topo t.an_graph e.Semantic.se_dst)
        |> List.sort (fun (a : Semantic.session_edge) (b : Semantic.session_edge) ->
               compare
                 (a.Semantic.se_dst, a.Semantic.se_out.Types.nb_addr)
                 (b.Semantic.se_dst, b.Semantic.se_out.Types.nb_addr))
        |> List.map (fun e -> (e, direct_peering e))
      in
      Hashtbl.replace t.an_edges u es;
      es

(* ------------------------------------------------------------------ *)
(* Influence restriction                                               *)
(* ------------------------------------------------------------------ *)

let asn_of (t : t) (d : string) : int =
  match Smap.find_opt d t.an_configs with
  | Some c -> c.Types.dc_bgp.Types.bgp_asn
  | None -> 0

(* Whether any route policy of [d] contains an AS-path overwrite.  Such a
   device may emit routes whose paths lost their history, so the
   loop-block proof below must not assume anything survives its export
   (or import) policies.  Per-device rather than per-edge: coarser, but
   the action is a rare vendor feature. *)
let may_overwrite_aspath (t : t) (d : string) : bool =
  match Smap.find_opt d t.an_configs with
  | None -> false
  | Some cfg ->
      Smap.exists
        (fun _ (pol : Types.route_policy) ->
          List.exists
            (fun (n : Types.policy_node) ->
              List.exists
                (function Types.Set_aspath_overwrite _ -> true | _ -> false)
                n.Types.pn_sets)
            pol.Types.rp_nodes)
        cfg.Types.dc_policies

let adding_own_asn (t : t) (d : string) : bool =
  match Smap.find_opt d t.an_configs with
  | None -> true
  | Some cfg -> (
      match Vsb.of_vendor cfg.Types.dc_vendor with
      | Some v -> v.Vsb.adding_own_asn
      | None -> true)

(* Devices that can influence the route state observed at [monitored]:
   the backward closure of [monitored] over session edges that are not
   provably AS-loop-blocked, intersected with the forward closure [fwd].

   The proof obligation is that a device [x] outside the result cannot
   affect any result member's state for the relevant prefixes.  We
   compute [nec d] = the set of ASNs provably present in the AS path of
   EVERY route for the relevant prefixes held at [d] (a decreasing
   intersection dataflow from the origins; an eBGP hop out of [u] adds
   [asn u] unless an AS-path-overwriting policy combined with the
   [adding_own_asn] VSB could suppress it).  An edge [u -> d] is
   non-transmissible when it is eBGP and [asn d ∈ nec u]: the simulator's
   AS-loop check drops every such arrival.  Any real propagation path
   into a monitored device therefore uses transmissible edges only and
   lies entirely inside the backward closure.  Failures only remove
   paths, so [nec] only grows under failure and blocked edges stay
   blocked in every scenario. *)
let influencers (t : t) ~(fwd : Sset.t) ~(origins : string list)
    ~(monitored : string list) : Sset.t =
  if monitored = [] then fwd
  else begin
    let nec : (string, Iset.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun o -> if Sset.mem o fwd then Hashtbl.replace nec o Iset.empty)
      origins;
    (* AS set provably on every route exported along [u -> d], or [None]
       when [u] provably never holds the route. *)
    let exported u d =
      match Hashtbl.find_opt nec u with
      | None -> None
      | Some s ->
          let ow = may_overwrite_aspath t u in
          let s = if ow then Iset.empty else s in
          let ebgp = asn_of t u <> asn_of t d in
          if ebgp && ((not ow) || adding_own_asn t u) then
            Some (Iset.add (asn_of t u) s)
          else Some s
    in
    let transmissible u d =
      match exported u d with
      | None -> false
      | Some s ->
          let ebgp = asn_of t u <> asn_of t d in
          not (ebgp && Iset.mem (asn_of t d) s)
    in
    let members = Sset.elements fwd in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun u ->
          List.iter
            (fun ((e : Semantic.session_edge), _) ->
              let d = e.Semantic.se_dst in
              if Sset.mem d fwd && transmissible u d then
                match exported u d with
                | None -> ()
                | Some s -> (
                    let contrib =
                      if may_overwrite_aspath t d then Iset.empty else s
                    in
                    match Hashtbl.find_opt nec d with
                    | None ->
                        Hashtbl.replace nec d contrib;
                        changed := true
                    | Some old ->
                        let inter = Iset.inter old contrib in
                        if not (Iset.equal inter old) then begin
                          Hashtbl.replace nec d inter;
                          changed := true
                        end))
            (edges_of t u))
        members
    done;
    let incoming : (string, string list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun u ->
        List.iter
          (fun ((e : Semantic.session_edge), _) ->
            let d = e.Semantic.se_dst in
            if Sset.mem d fwd then
              Hashtbl.replace incoming d
                (u :: Option.value (Hashtbl.find_opt incoming d) ~default:[]))
          (edges_of t u))
      members;
    let rec bfs seen = function
      | [] -> seen
      | x :: rest ->
          if Sset.mem x seen then bfs seen rest
          else
            let seen = Sset.add x seen in
            let preds =
              Option.value (Hashtbl.find_opt incoming x) ~default:[]
              |> List.filter (fun u ->
                     (not (Sset.mem u seen)) && transmissible u x)
            in
            bfs seen (preds @ rest)
    in
    let start =
      List.filter (fun d -> Semantic.in_topo t.an_graph d) monitored
    in
    bfs Sset.empty start
  end

(* In-topo owners of every address that can appear as the next hop of a
   route for a relevant prefix at a slice device: the BGP decision
   process reads IGP costs only through [d_igp_cost] at route next hops,
   so these are the only IGP columns the fingerprint needs.  Next hops
   come from (a) input routes for the relevant prefixes, (b) static
   routes for them (redistribution preserves the configured next hop),
   (c) [Set_nexthop] policy actions on slice devices, and (d) eBGP or
   next-hop-self exporters inside the slice, which rewrite the next hop
   to a session address they own.  Locally originated routes (networks,
   aggregates, redistributed connected/IS-IS) carry no next hop and cost
   a constant [Some 0]; external addresses with no in-topo owner resolve
   through config-only rules (connected subnet / static match), constant
   under every scenario. *)
let nh_owner_targets (t : t) ~(u_set : Sset.t) ~(rp : Prefix.t list) : Sset.t =
  let owner acc addr =
    match Hashtbl.find_opt t.an_graph.Semantic.g_owner addr with
    | Some d when Semantic.in_topo t.an_graph d -> Sset.add d acc
    | _ -> acc
  in
  let relevant p = List.exists (Prefix.equal p) rp in
  let acc =
    List.fold_left
      (fun acc (r : Route.t) ->
        if relevant r.Route.prefix then
          match r.Route.nexthop with Some a -> owner acc a | None -> acc
        else acc)
      Sset.empty t.an_input_routes
  in
  let acc =
    Smap.fold
      (fun _ (cfg : Types.t) acc ->
        List.fold_left
          (fun acc (s : Types.static_route) ->
            if relevant s.Types.st_prefix then
              match s.Types.st_nexthop with Some a -> owner acc a | None -> acc
            else acc)
          acc cfg.Types.dc_statics)
      t.an_configs acc
  in
  Sset.fold
    (fun u acc ->
      let acc =
        match Smap.find_opt u t.an_configs with
        | None -> acc
        | Some cfg ->
            Smap.fold
              (fun _ (pol : Types.route_policy) acc ->
                List.fold_left
                  (fun acc (n : Types.policy_node) ->
                    List.fold_left
                      (fun acc -> function
                        | Types.Set_nexthop a -> owner acc a
                        | _ -> acc)
                      acc n.Types.pn_sets)
                  acc pol.Types.rp_nodes)
              cfg.Types.dc_policies acc
      in
      let rewrites =
        List.exists
          (fun ((e : Semantic.session_edge), _) ->
            Sset.mem e.Semantic.se_dst u_set
            && (asn_of t u <> asn_of t e.Semantic.se_dst
               || e.Semantic.se_out.Types.nb_next_hop_self))
          (edges_of t u)
      in
      if rewrites then Sset.add u acc else acc)
    u_set acc

(* ------------------------------------------------------------------ *)
(* Aggregate contributors                                              *)
(* ------------------------------------------------------------------ *)

let aggregated_anywhere (t : t) (p : Prefix.t) : bool =
  Smap.exists
    (fun _ (cfg : Types.t) ->
      List.exists
        (fun (ag : Types.aggregate) -> Prefix.equal ag.Types.ag_prefix p)
        cfg.Types.dc_bgp.Types.bgp_aggregates)
    t.an_configs

(* Candidate contributor prefixes strictly under an aggregate [p]: every
   prefix the network can originate — input routes, network statements,
   statics, connected subnets, other aggregates.  A contributor's route
   state can flip [p]'s activation at the aggregating device, so its
   closure joins [p]'s region. *)
let contributors (t : t) (p : Prefix.t) : Prefix.t list =
  if not (aggregated_anywhere t p) then []
  else
    let under q = Prefix.subsumes p q && not (Prefix.equal p q) in
    let from_inputs =
      List.filter_map
        (fun (r : Route.t) ->
          if under r.Route.prefix then Some r.Route.prefix else None)
        t.an_input_routes
    in
    let from_configs =
      Smap.fold
        (fun _ (cfg : Types.t) acc ->
          let nets = List.map fst cfg.Types.dc_bgp.Types.bgp_networks in
          let aggs =
            List.map
              (fun (ag : Types.aggregate) -> ag.Types.ag_prefix)
              cfg.Types.dc_bgp.Types.bgp_aggregates
          in
          let statics =
            List.map
              (fun (s : Types.static_route) -> s.Types.st_prefix)
              cfg.Types.dc_statics
          in
          let conns =
            List.filter_map Types.iface_subnet cfg.Types.dc_ifaces
          in
          List.filter under (nets @ aggs @ statics @ conns) @ acc)
        t.an_configs []
    in
    List.sort_uniq Prefix.compare (from_inputs @ from_configs)

(* ------------------------------------------------------------------ *)
(* Per-scenario fingerprints                                           *)
(* ------------------------------------------------------------------ *)

(* The failed-topology view of one scenario: removed devices, surviving
   topology, and the restricted IGP rows (Dijkstra only from [sources]). *)
type scenario_view = {
  sv_removed : Sset.t;
  sv_topo : Topology.t;
  sv_igp : Isis.t;
}

let view_of (t : t) ~(sources : string list) (fs : failure list) :
    scenario_view =
  let sv_removed =
    List.fold_left
      (fun s -> function Device_down d -> Sset.add d s | Link_down _ -> s)
      Sset.empty fs
  in
  let sv_topo =
    List.fold_left
      (fun tp -> function
        | Link_down (a, b) -> Topology.remove_link tp ~a ~b
        | Device_down d -> Topology.remove_device tp d)
      t.an_topo fs
  in
  let sv_igp =
    Isis.compute_rows ~te_aware:t.an_te sv_topo t.an_configs ~sources
  in
  { sv_removed; sv_topo; sv_igp }

(* Session liveness under a scenario, mirroring [Model.sessions_of]: a
   removed peer never forms a session; a link-address peering needs the
   physical link; a loopback peering needs an IGP path. *)
let session_up (v : scenario_view) (e : Semantic.session_edge)
    ~(direct : bool) : bool =
  (not (Sset.mem e.Semantic.se_dst v.sv_removed))
  &&
  if direct then
    Option.is_some
      (Topology.edge_between v.sv_topo e.Semantic.se_src e.Semantic.se_dst)
  else Isis.reachable v.sv_igp ~src:e.Semantic.se_src ~dst:e.Semantic.se_dst

(* Whether one SR policy of [u] resolves into a tunnel under the
   scenario.  Mirrors [Sr.resolve]'s success condition exactly — the BGP
   decision process only reads resolution success ([Sr.reaches]), never
   the concrete path, so this is all the fingerprint needs. *)
let sr_resolves (t : t) (v : scenario_view) (u : string)
    (sp : Types.sr_policy) : bool =
  match Hashtbl.find_opt t.an_graph.Semantic.g_owner sp.Types.sp_endpoint with
  | None -> false
  | Some tail when Sset.mem tail v.sv_removed -> false
  | Some tail -> (
      let reach a b = Isis.reachable v.sv_igp ~src:a ~dst:b in
      match sp.Types.sp_segments with
      | [] -> reach u tail
      | ws -> (
          let rec chain cur = function
            | [] -> Some cur
            | w :: rest -> if reach cur w then chain w rest else None
          in
          match chain u ws with
          | None -> false
          | Some last ->
              String.equal last tail || (reach u tail && reach last tail)))

(* The property-restricted impact signature of one scenario: for every
   device of the influence slice [u_list], its removal marker, its IGP
   cost row over the next-hop-owner targets [t_arr], its up-state vector
   over intra-slice sessions (an edge to a device outside the slice can
   only affect state the property provably never observes) and its SR
   resolution vector.  Equal signatures ⇒ identical property-restricted
   route state (the slice argument in the .mli). *)
let fingerprint (t : t) ~(u_set : Sset.t) ~(u_list : string list)
    ~(t_arr : string array) (v : scenario_view) : string =
  let buf = Buffer.create 2048 in
  List.iter
    (fun u ->
      if Sset.mem u v.sv_removed then begin
        Buffer.add_string buf u;
        Buffer.add_string buf "=dead\n"
      end
      else begin
        Buffer.add_string buf u;
        Buffer.add_char buf ':';
        Array.iter
          (fun tgt ->
            (match Isis.cost v.sv_igp ~src:u ~dst:tgt with
            | Some c -> Buffer.add_string buf (string_of_int c)
            | None -> Buffer.add_char buf '-');
            Buffer.add_char buf ',')
          t_arr;
        Buffer.add_char buf '|';
        List.iter
          (fun (e, direct) ->
            if Sset.mem e.Semantic.se_dst u_set then
              Buffer.add_char buf (if session_up v e ~direct then '1' else '0'))
          (edges_of t u);
        Buffer.add_char buf '|';
        (match Smap.find_opt u t.an_configs with
        | None -> ()
        | Some cfg ->
            List.iter
              (fun sp ->
                Buffer.add_char buf (if sr_resolves t v u sp then '1' else '0'))
              cfg.Types.dc_sr_policies);
        Buffer.add_char buf '\n'
      end)
    u_list;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Cut analysis (tier 3)                                               *)
(* ------------------------------------------------------------------ *)

(* Devices of [devs] provably missing prefix [p] under the scenario:
   unreachable from every surviving origin in the permissive session
   graph restricted to [p]'s influence slice [members].  Sound because
   (a) origins only shrink under failure (origination is config-driven;
   IS-IS loopback and aggregate origins are conditional on state that
   failures only remove), (b) any real propagation path into a monitored
   device lies entirely inside the influence slice (see [influencers]:
   edges out of the slice are AS-loop-blocked in every scenario), and
   (c) the permissive graph ignores policies, which can only block
   more.  The result is determined by fingerprint content (removals and
   up-states of slice devices), so it extends from the representative
   to every member of its class. *)
let cut_missing (t : t) (v : scenario_view) ~(members : Sset.t) (p : Prefix.t)
    (devs : string list) : string list =
  let reg = members in
  let seeds =
    (List.map fst
       (Semantic.exact_origins t.an_graph ~input_routes:t.an_input_routes p)
    @ Semantic.over_origins t.an_graph p)
    |> List.filter (fun d ->
           Semantic.in_topo t.an_graph d
           && Sset.mem d reg
           && not (Sset.mem d v.sv_removed))
  in
  let reach = Hashtbl.create 64 in
  let rec bfs = function
    | [] -> ()
    | d :: rest ->
        if Hashtbl.mem reach d then bfs rest
        else begin
          Hashtbl.replace reach d ();
          let next =
            List.filter_map
              (fun (e, direct) ->
                if
                  Sset.mem e.Semantic.se_dst reg
                  && (not (Sset.mem e.Semantic.se_dst v.sv_removed))
                  && session_up v e ~direct
                then Some e.Semantic.se_dst
                else None)
              (edges_of t d)
          in
          bfs (next @ rest)
        end
  in
  bfs seeds;
  List.filter (fun d -> not (Hashtbl.mem reach d)) devs

(* ------------------------------------------------------------------ *)
(* The plan                                                            *)
(* ------------------------------------------------------------------ *)

type decision = Carry_base | Static_violation of string | Simulate

type cls = {
  cl_rep : failure list;
  cl_members : failure list list;
  cl_decision : decision;
}

type plan = {
  pl_k : int;
  pl_scenarios : failure list list;
  pl_class_of : int array;
  pl_classes : cls list;
  pl_total : int;
  pl_carried : int;
  pl_static : int;
  pl_replicated : int;
  pl_to_simulate : int;
  pl_opaque : bool;
}

let analyze ?tm ?(devices = false) ?(links = true) (t : t) ~(k : int)
    (fp : footprint) : plan =
  let tm = match tm with Some tm -> tm | None -> t.an_tm in
  Telemetry.with_span tm "whatif.analyze" (fun () ->
      let cands = candidates ~devices ~links t.an_topo in
      let scen = scenarios_up_to ~k cands in
      let total = List.length scen in
      match footprint_prefixes fp with
      | [] ->
          (* Opaque property (or an empty footprint): nothing to prune
             with — every scenario is its own class and simulates. *)
          {
            pl_k = k;
            pl_scenarios = scen;
            pl_class_of = Array.init total Fun.id;
            pl_classes =
              List.map
                (fun s ->
                  { cl_rep = s; cl_members = [ s ]; cl_decision = Simulate })
                scen;
            pl_total = total;
            pl_carried = 0;
            pl_static = 0;
            pl_replicated = 0;
            pl_to_simulate = total;
            pl_opaque = true;
          }
      | ps ->
          (* Relevant prefixes: the footprint plus aggregate
             contributors; their closures share the memo table. *)
          let rp =
            List.sort_uniq Prefix.compare
              (ps @ List.concat_map (contributors t) ps)
          in
          let fwd =
            List.fold_left
              (fun acc q -> Sset.union acc (closure_of t q))
              Sset.empty rp
          in
          (* Influence slice: devices whose state the property can read
             (the monitored set) plus every device that can transmit a
             relevant route toward them.  Devices in the forward closure
             but outside the slice — e.g. stub ASes behind an eBGP
             boundary whose re-exports the AS-loop check provably drops —
             contribute nothing to the fingerprint, so their failures
             carry the base verdict. *)
          let monitored =
            match fp with
            | Reach_all (_, ds) | Prefix_scoped (_, ds) -> ds
            | Opaque -> []
          in
          let origins =
            List.concat_map
              (fun q ->
                List.map fst
                  (Semantic.exact_origins t.an_graph
                     ~input_routes:t.an_input_routes q)
                @ Semantic.over_origins t.an_graph q)
              rp
          in
          let u_set =
            let infl = influencers t ~fwd ~origins ~monitored in
            List.fold_left
              (fun s d ->
                if Semantic.in_topo t.an_graph d then Sset.add d s else s)
              infl monitored
          in
          let u_list = Sset.elements u_set in
          (* IGP row targets: owners of candidate next hops (the only
             addresses the decision process reads costs for) and devices
             whose loopback host route is itself a relevant prefix
             (IS-IS redistribution). *)
          let loop_devs =
            Topology.devices t.an_topo
            |> List.filter_map (fun (d : Topology.device) ->
                   let rid = d.Topology.router_id in
                   let host =
                     Prefix.make rid (Ip.family_bits (Ip.family rid))
                   in
                   if List.exists (Prefix.equal host) rp then
                     Some d.Topology.name
                   else None)
            |> Sset.of_list
          in
          let t_arr =
            Array.of_list
              (Sset.elements
                 (Sset.union (nh_owner_targets t ~u_set ~rp) loop_devs))
          in
          (* Dijkstra sources: the region plus every SR waypoint of a
             region device (tunnel resolution walks segment by segment). *)
          let sources =
            List.fold_left
              (fun acc u ->
                match Smap.find_opt u t.an_configs with
                | None -> acc
                | Some cfg ->
                    List.fold_left
                      (fun acc (sp : Types.sr_policy) ->
                        List.fold_left
                          (fun acc w -> Sset.add w acc)
                          acc sp.Types.sp_segments)
                      acc cfg.Types.dc_sr_policies)
              u_set u_list
            |> Sset.elements
          in
          let fp_of fs =
            fingerprint t ~u_set ~u_list ~t_arr (view_of t ~sources fs)
          in
          let base_fp = fp_of [] in
          (* Group scenarios by fingerprint, across sizes (tier 3's
             partial-order reduction falls out of cross-size classes). *)
          let by_fp = Hashtbl.create 256 in
          let order = ref [] (* class ids in first-seen order *) in
          let class_of = Array.make total 0 in
          List.iteri
            (fun i fs ->
              let digest = fp_of fs in
              match Hashtbl.find_opt by_fp digest with
              | Some (id, members) ->
                  class_of.(i) <- id;
                  Hashtbl.replace by_fp digest (id, fs :: members)
              | None ->
                  let id = Hashtbl.length by_fp in
                  class_of.(i) <- id;
                  Hashtbl.replace by_fp digest (id, [ fs ]);
                  order := (id, digest) :: !order)
            scen;
          let classes =
            List.rev !order
            |> List.map (fun (_, digest) ->
                   let _, members_rev = Hashtbl.find by_fp digest in
                   let members = List.rev members_rev in
                   let rep = List.hd members in
                   let decision =
                     if String.equal digest base_fp then Carry_base
                     else
                       match fp with
                       | Reach_all (p, devs) -> (
                           match
                             cut_missing t
                               (view_of t ~sources rep)
                               ~members:u_set p devs
                           with
                           | [] -> Simulate
                           | ms ->
                               Static_violation
                                 (Printf.sprintf
                                    "statically disconnected: missing on %s"
                                    (String.concat "," ms)))
                       | _ -> Simulate
                   in
                   { cl_rep = rep; cl_members = members; cl_decision = decision })
          in
          let count pred =
            List.fold_left
              (fun acc c ->
                if pred c.cl_decision then acc + List.length c.cl_members
                else acc)
              0 classes
          in
          let carried = count (function Carry_base -> true | _ -> false) in
          let static =
            count (function Static_violation _ -> true | _ -> false)
          in
          let sim_members =
            count (function Simulate -> true | _ -> false)
          in
          let to_simulate =
            List.length
              (List.filter
                 (fun c -> c.cl_decision = Simulate)
                 classes)
          in
          Telemetry.count tm "hoyan_whatif_scenarios_total" total;
          Telemetry.count tm "hoyan_whatif_simulated_total" to_simulate;
          {
            pl_k = k;
            pl_scenarios = scen;
            pl_class_of = class_of;
            pl_classes = classes;
            pl_total = total;
            pl_carried = carried;
            pl_static = static;
            pl_replicated = sim_members - to_simulate;
            pl_to_simulate = to_simulate;
            pl_opaque = false;
          })

let describe (p : plan) : string =
  Printf.sprintf
    "%d scenario(s) in %d class(es): %d carried, %d static, %d replicated, \
     %d to simulate%s"
    p.pl_total (List.length p.pl_classes) p.pl_carried p.pl_static
    p.pl_replicated p.pl_to_simulate
    (if p.pl_opaque then " (opaque property: no pruning)" else "")
