(** Cross-device semantic analysis: the control-plane graph, symbolic
    prefix-set dataflow, and the static intent pre-checker.

    PR 2's {!Lint} pass is per-device and syntactic; this module analyses
    the *whole network* statically, with no simulation:

    - it builds a control-plane graph — resolved BGP sessions (flagging
      half-configured sessions, remote-AS and address-family mismatches),
      IS-IS adjacencies, redistribution edges and VRF route-target edges
      ([HOY020]/[HOY021]/[HOY027]/[HOY028]);
    - it runs symbolic checks over that graph: redistribution loops
      ([HOY022]), policy-less cross-VRF / cross-AS leaks ([HOY023]),
      policy terms dead under every input — the union-coverage
      generalisation of the pairwise shadowing check ([HOY024]), iBGP
      propagation gaps under the route-reflection rules ([HOY025]) and
      statics with unresolvable next hops ([HOY026]);
    - it classifies reachability intents as statically proved, refuted
      (with a concrete witness, surfaced as [HOY029]) or
      needs-simulation, so {!Hoyan_core.Verify_request} can skip the
      fixpoint for requests the abstraction already decides.

    Soundness discipline (DESIGN.md §2.4): the propagation closure is an
    *over-approximation* of where the simulator can place a route (every
    ignored rule — split horizon, communities, viability, per-VRF session
    keying — only removes advertisements), so absence from the closure
    refutes presence; the origin set used for proving presence is
    *exact* (connected subnets, statics, [network] statements and
    injected input routes install unconditionally).  Policies prune
    closure edges only through a three-valued evaluation that returns a
    definite verdict exclusively on prefix-decidable clauses. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Vsb = Hoyan_config.Vsb
module Smap = Types.Smap
module D = Diagnostics
module Telemetry = Hoyan_telemetry.Telemetry
module Journal = Hoyan_telemetry.Journal

(* ------------------------------------------------------------------ *)
(* The control-plane graph                                             *)
(* ------------------------------------------------------------------ *)

(** A resolved, reciprocal BGP session edge: [se_src]'s stanza [se_out]
    points at an address owned by [se_dst], whose stanza [se_in] points
    back at an address owned by [se_src].  Mirrors the simulator's
    delivery rule (receiver-side stanza lookup), minus the per-VRF keying
    and liveness conditions it may additionally apply — i.e. the edge set
    is a superset of the sessions the simulator can deliver over. *)
type session_edge = {
  se_src : string;
  se_dst : string;
  se_out : Types.neighbor; (* src's stanza for dst *)
  se_in : Types.neighbor; (* dst's stanza for src *)
}

type stats = {
  st_devices : int;
  st_sessions : int; (* reciprocal directed session edges *)
  st_half_sessions : int;
  st_isis_adjacencies : int;
  st_rt_edges : int; (* VRF route-target edges (per device) *)
}

type t = {
  g_input : Lint.input;
  g_owner : (Ip.t, string) Hashtbl.t;
  g_edges : session_edge list;
  g_out : (string, session_edge list) Hashtbl.t; (* adjacency by se_src *)
  g_diags : D.t list; (* graph-construction findings (HOY020/021/027/028) *)
  g_stats : stats;
}

let vsb_of (cfg : Types.t) : Vsb.t =
  match Vsb.of_vendor cfg.Types.dc_vendor with
  | Some v -> v
  | None -> Vsb.vendor_a (* the simulator's fallback *)

let asn_of (cfg : Types.t) = cfg.Types.dc_bgp.Types.bgp_asn

(** Whether [dev] takes part in the simulated network (the simulator only
    builds per-device state for topology members). *)
let in_topo (g : t) dev =
  match g.g_input.Lint.li_topo with
  | None -> true
  | Some topo -> Option.is_some (Topology.device topo dev)

(** Address ownership, mirroring the model build exactly: configured
    interface addresses first, then topology router ids (loopbacks) —
    later entries win on collision. *)
let owner_table (input : Lint.input) : (Ip.t, string) Hashtbl.t =
  let tbl = Hashtbl.create 1024 in
  Smap.iter
    (fun dev (cfg : Types.t) ->
      List.iter
        (fun (i : Types.iface_config) ->
          match i.Types.if_addr with
          | Some a -> Hashtbl.replace tbl a dev
          | None -> ())
        cfg.Types.dc_ifaces)
    input.Lint.li_configs;
  (match input.Lint.li_topo with
  | None -> ()
  | Some topo ->
      List.iter
        (fun (d : Topology.device) ->
          Hashtbl.replace tbl d.Topology.router_id d.Topology.name)
        (Topology.devices topo));
  tbl

(** Stanzas of [cfg] whose neighbor address resolves to [dev]. *)
let stanzas_towards owner (cfg : Types.t) dev =
  List.filter
    (fun (nb : Types.neighbor) ->
      match Hashtbl.find_opt owner nb.Types.nb_addr with
      | Some o -> String.equal o dev
      | None -> false)
    cfg.Types.dc_bgp.Types.bgp_neighbors

let session_checks (input : Lint.input) owner :
    session_edge list * int (* half sessions *) * D.t list =
  let configs = input.Lint.li_configs in
  let edges = ref [] and halves = ref 0 and diags = ref [] in
  Smap.iter
    (fun dev (cfg : Types.t) ->
      List.iter
        (fun (nb : Types.neighbor) ->
          let addr = Ip.to_string nb.Types.nb_addr in
          match Hashtbl.find_opt owner nb.Types.nb_addr with
          | None -> () (* external peer: input routes stand in *)
          | Some peer when String.equal peer dev -> ()
          | Some peer -> (
              match Smap.find_opt peer configs with
              | None -> () (* topology stub without a config *)
              | Some pcfg ->
                  if nb.Types.nb_remote_asn <> asn_of pcfg then
                    diags :=
                      D.make ~code:"HOY021" ~device:dev
                        ~obj:(Printf.sprintf "neighbor %s" addr)
                        "remote-as %d but peer %s is configured with local \
                         AS %d"
                        nb.Types.nb_remote_asn peer (asn_of pcfg)
                      :: !diags;
                  let reciprocal = stanzas_towards owner pcfg dev in
                  if reciprocal = [] then begin
                    incr halves;
                    diags :=
                      D.make ~code:"HOY020" ~device:dev
                        ~obj:(Printf.sprintf "neighbor %s" addr)
                        "peer %s has no reciprocal neighbor stanza back \
                         (half-configured session)"
                        peer
                      :: !diags
                  end
                  else begin
                    let fam = Ip.family nb.Types.nb_addr in
                    let same_family =
                      List.exists
                        (fun (r : Types.neighbor) ->
                          Ip.family r.Types.nb_addr = fam)
                        reciprocal
                    in
                    if (not same_family) && String.compare dev peer < 0 then
                      diags :=
                        D.make ~code:"HOY027" ~device:dev
                          ~obj:(Printf.sprintf "neighbor %s" addr)
                          "session with %s mixes address families: this \
                           side speaks %s, the reciprocal stanza %s"
                          peer
                          (Ip.family_to_string fam)
                          (Ip.family_to_string
                             (Ip.family
                                (List.hd reciprocal).Types.nb_addr))
                        :: !diags;
                    List.iter
                      (fun (r : Types.neighbor) ->
                        edges :=
                          { se_src = dev; se_dst = peer; se_out = nb;
                            se_in = r }
                          :: !edges)
                      reciprocal
                  end))
        cfg.Types.dc_bgp.Types.bgp_neighbors)
    configs;
  (List.rev !edges, !halves, List.rev !diags)

(** IS-IS adjacency audit: for every physical link between two
    IS-IS-enabled devices, both endpoint interfaces must carry an IS-IS
    stanza or no adjacency forms ([HOY028]).  Returns the number of
    fully-configured adjacencies. *)
let isis_checks (input : Lint.input) : int * D.t list =
  match input.Lint.li_topo with
  | None -> (0, [])
  | Some topo ->
      let configs = input.Lint.li_configs in
      let has_isis_iface (cfg : Types.t) ifname =
        List.exists
          (fun (ii : Types.isis_iface) -> String.equal ii.Types.ii_name ifname)
          cfg.Types.dc_isis.Types.isis_ifaces
      in
      let adjacencies = ref 0 and diags = ref [] in
      List.iter
        (fun (e : Topology.edge) ->
          if String.compare e.Topology.src e.Topology.dst < 0 then
            match
              ( Smap.find_opt e.Topology.src configs,
                Smap.find_opt e.Topology.dst configs )
            with
            | Some sc, Some dc
              when sc.Types.dc_isis.Types.isis_enabled
                   && dc.Types.dc_isis.Types.isis_enabled -> (
                let s = has_isis_iface sc e.Topology.src_if in
                let d = has_isis_iface dc e.Topology.dst_if in
                match (s, d) with
                | true, true -> incr adjacencies
                | false, false -> ()
                | _ ->
                    let lacking, iface, other =
                      if s then (e.Topology.dst, e.Topology.dst_if, e.Topology.src)
                      else (e.Topology.src, e.Topology.src_if, e.Topology.dst)
                    in
                    diags :=
                      D.make ~code:"HOY028" ~device:lacking
                        ~obj:(Printf.sprintf "interface %s" iface)
                        "link to %s runs IS-IS on the far end only: this \
                         side's interface has no IS-IS stanza, so no \
                         adjacency can form"
                        other
                      :: !diags)
            | _ -> ())
        (Topology.edges topo);
      (!adjacencies, List.rev !diags)

(* ------------------------------------------------------------------ *)
(* VRF route-target edges: loops and leaks                             *)
(* ------------------------------------------------------------------ *)

(** Directed route-target edges between the device's VRFs: [a -> b] when
    some route target exported by [a] is imported by [b]. *)
let rt_edges (cfg : Types.t) : (Types.vrf_def * Types.vrf_def) list =
  let vrfs = cfg.Types.dc_bgp.Types.bgp_vrfs in
  List.concat_map
    (fun (a : Types.vrf_def) ->
      List.filter_map
        (fun (b : Types.vrf_def) ->
          if String.equal a.Types.vd_name b.Types.vd_name then None
          else if
            List.exists
              (fun rt -> List.mem rt b.Types.vd_import_rts)
              a.Types.vd_export_rts
          then Some (a, b)
          else None)
        vrfs)
    cfg.Types.dc_bgp.Types.bgp_vrfs

(** [HOY022]: a cycle among distinct VRFs of one device re-injects routes
    into the table they came from. *)
let redistribution_loop_check dev (cfg : Types.t) : D.t list =
  let edges = rt_edges cfg in
  if edges = [] then []
  else
    let succ v =
      List.filter_map
        (fun ((a : Types.vrf_def), (b : Types.vrf_def)) ->
          if String.equal a.Types.vd_name v then Some b.Types.vd_name else None)
        edges
    in
    (* DFS with an explicit path to report the cycle *)
    let visited = Hashtbl.create 8 in
    let cycle = ref None in
    let rec dfs path v =
      if !cycle = None then
        if List.mem v path then
          cycle :=
            Some (List.rev (v :: path))
        else if not (Hashtbl.mem visited v) then begin
          Hashtbl.replace visited v ();
          List.iter (dfs (v :: path)) (succ v)
        end
    in
    List.iter
      (fun (vd : Types.vrf_def) -> dfs [] vd.Types.vd_name)
      cfg.Types.dc_bgp.Types.bgp_vrfs;
    match !cycle with
    | None -> []
    | Some path ->
        [
          D.make ~code:"HOY022" ~device:dev
            ~obj:(Printf.sprintf "vrf %s" (List.hd path))
            "route-target import/export edges form a cycle: %s"
            (String.concat " -> " path);
        ]

(** [HOY023]: policy-less leak channels — a cross-VRF route-target export
    without an export policy, or a device that transits between two
    external ASes with neither import nor export policies (on a vendor
    whose profile accepts updates without one). *)
let leak_check dev (cfg : Types.t) : D.t list =
  let vrf_leaks =
    List.filter_map
      (fun ((a : Types.vrf_def), (b : Types.vrf_def)) ->
        if a.Types.vd_export_policy = None then
          Some
            (D.make ~code:"HOY023" ~device:dev
               ~obj:(Printf.sprintf "vrf %s" a.Types.vd_name)
               "routes leak from vrf %s into vrf %s with no export policy"
               a.Types.vd_name b.Types.vd_name)
        else None)
      (rt_edges cfg)
  in
  let vsb = vsb_of cfg in
  let ebgp_transit =
    if not vsb.Vsb.missing_policy_accepts then []
    else
      let open_ext =
        List.filter
          (fun (nb : Types.neighbor) ->
            nb.Types.nb_remote_asn <> asn_of cfg
            && nb.Types.nb_import = None
            && nb.Types.nb_export = None)
          cfg.Types.dc_bgp.Types.bgp_neighbors
      in
      let asns =
        List.sort_uniq Int.compare
          (List.map (fun (nb : Types.neighbor) -> nb.Types.nb_remote_asn)
             open_ext)
      in
      if List.length asns >= 2 then
        [
          D.make ~code:"HOY023" ~device:dev ~obj:"bgp"
            "device transits between external ASes %s with neither import \
             nor export policies (vendor accepts policy-less eBGP updates)"
            (String.concat ", " (List.map string_of_int asns));
        ]
      else []
  in
  vrf_leaks @ ebgp_transit

(* ------------------------------------------------------------------ *)
(* Symbolic prefix regions and dead-term (union coverage) analysis      *)
(* ------------------------------------------------------------------ *)

(** A prefix region: every prefix under [rg_prefix] whose length lies in
    [rg_lo, rg_hi] — the denotation of one prefix-list entry. *)
type region = { rg_prefix : Prefix.t; rg_lo : int; rg_hi : int }

let entry_region (e : Types.prefix_entry) : region =
  let lo, hi = Lint.entry_range e in
  { rg_prefix = e.Types.pe_prefix; rg_lo = lo; rg_hi = hi }

let region_subsumed (inner : region) (outer : region) =
  Prefix.subsumes outer.rg_prefix inner.rg_prefix
  && outer.rg_lo <= max inner.rg_lo (Prefix.len inner.rg_prefix)
  && inner.rg_hi <= outer.rg_hi

let regions_overlap (a : region) (b : region) =
  (Prefix.subsumes a.rg_prefix b.rg_prefix
  || Prefix.subsumes b.rg_prefix a.rg_prefix)
  && max a.rg_lo b.rg_lo <= min a.rg_hi b.rg_hi

(** Does the union of [regions] cover every prefix under [p] with length
    in [lo, hi]?  Recursive halving with a depth limit; an inconclusive
    descent returns [false] (not covered), which only suppresses
    findings — never fabricates one. *)
let covers (regions : region list) (p : Prefix.t) lo hi =
  let bits = Prefix.bits p in
  let contains_prefix q =
    List.exists
      (fun r ->
        Prefix.subsumes r.rg_prefix q
        && r.rg_lo <= Prefix.len q
        && Prefix.len q <= r.rg_hi)
      regions
  in
  let rec go p lo hi depth =
    let lo = max lo (Prefix.len p) in
    if lo > hi then true
    else if
      List.exists
        (fun r -> region_subsumed { rg_prefix = p; rg_lo = lo; rg_hi = hi } r)
        regions
    then true
    else if depth = 0 then false
    else if lo = Prefix.len p then
      (* [p] itself is in the target set: some single region must hold it *)
      contains_prefix p
      &&
      (hi <= Prefix.len p
      ||
      match Prefix.halves p with
      | None -> true (* host prefix: nothing longer exists *)
      | Some (a, b) -> go a (lo + 1) hi (depth - 1) && go b (lo + 1) hi (depth - 1))
    else
      match Prefix.halves p with
      | None -> true
      | Some (a, b) -> go a lo hi (depth - 1) && go b lo hi (depth - 1)
  in
  if hi > bits then false else go p lo hi 10

(** Guarantee regions of a policy node: prefixes the node *definitely*
    matches.  Only exact shapes qualify — at most one defined
    prefix-list clause of family [fam] (evaluated through its
    no-earlier-overlap permit entries) plus family clauses; any other
    clause voids the guarantee. *)
let guarantee_regions (cfg : Types.t) fam (node : Types.policy_node) :
    region list =
  let exception Inexact in
  try
    let pls =
      List.filter_map
        (fun (c : Types.match_clause) ->
          match c with
          | Types.Match_prefix_list name -> (
              match Types.find_prefix_list cfg name with
              | Some pl when pl.Types.pl_family = fam -> Some pl
              | _ -> raise Inexact)
          | Types.Match_family f ->
              if f = fam then None else raise Inexact
          | _ -> raise Inexact)
        node.Types.pn_matches
    in
    match pls with
    | [] ->
        (* no constraining clause: matches the whole family *)
        [ { rg_prefix = Prefix.default fam; rg_lo = 0;
            rg_hi = Ip.family_bits fam } ]
    | [ pl ] ->
        let rec firsts earlier = function
          | [] -> []
          | (e : Types.prefix_entry) :: rest ->
              let r = entry_region e in
              let guaranteed =
                e.Types.pe_action = Types.Permit
                && not (List.exists (regions_overlap r) earlier)
              in
              (if guaranteed then [ r ] else [])
              @ firsts (r :: earlier) rest
        in
        firsts [] pl.Types.pl_entries
    | _ -> [] (* several prefix lists: intersection, not exactly known *)
  with Inexact -> []

(** Over-approximate matchable regions of a node, per family: the
    permit-entry union of its first defined prefix-list clause of that
    family (deny entries only shrink the true set). *)
let matchable_regions (cfg : Types.t) fam (node : Types.policy_node) :
    region list option =
  let pl =
    List.find_map
      (fun (c : Types.match_clause) ->
        match c with
        | Types.Match_prefix_list name -> (
            match Types.find_prefix_list cfg name with
            | Some pl when pl.Types.pl_family = fam -> Some pl
            | _ -> None)
        | _ -> None)
      node.Types.pn_matches
  in
  Option.map
    (fun (pl : Types.prefix_list) ->
      List.filter_map
        (fun (e : Types.prefix_entry) ->
          if e.Types.pe_action = Types.Permit then Some (entry_region e)
          else None)
        pl.Types.pl_entries)
    pl

(** Whether a match on this node definitely terminates the policy walk
    (explicit or VSB-implied deny, or a permit without continue). *)
let node_terminates (vsb : Vsb.t) (node : Types.policy_node) =
  let action =
    match node.Types.pn_action with
    | Some a -> a
    | None ->
        if vsb.Vsb.no_explicit_action_permits then Types.Permit else Types.Deny
  in
  action = Types.Deny || not node.Types.pn_goto_next

(** [HOY024]: a node is dead when the union of earlier definitely-matching
    terminating nodes covers every prefix it could match.  Reports only
    genuine union coverage — cases a single earlier node decides are the
    pairwise shadowing check's ([HOY007]) territory and are skipped. *)
let dead_term_check dev (cfg : Types.t) : D.t list =
  let vsb = vsb_of cfg in
  Smap.fold
    (fun pname (pol : Types.route_policy) acc ->
      let nodes = pol.Types.rp_nodes in
      let rec walk earlier acc = function
        | [] -> acc
        | (node : Types.policy_node) :: rest ->
            let dead fam =
              match matchable_regions cfg fam node with
              | None | Some [] -> false
              | Some matchable ->
                  let guards =
                    List.concat_map
                      (fun n ->
                        if node_terminates vsb n then
                          guarantee_regions cfg fam n
                        else [])
                      (List.rev earlier)
                  in
                  guards <> []
                  && (not
                        (List.exists
                           (fun g ->
                             List.for_all
                               (fun m -> region_subsumed m g)
                               matchable)
                           guards))
                  && List.for_all
                       (fun m ->
                         covers guards m.rg_prefix m.rg_lo m.rg_hi)
                       matchable
            in
            let acc =
              if earlier <> [] && (dead Ip.Ipv4 || dead Ip.Ipv6) then
                D.make ~code:"HOY024" ~device:dev
                  ~obj:
                    (Printf.sprintf "route-policy %s node %d" pname
                       node.Types.pn_seq)
                  "dead under all inputs: the union of earlier terminating \
                   nodes covers every prefix this node can match"
                :: acc
              else acc
            in
            walk (node :: earlier) acc rest
      in
      walk [] acc nodes)
    cfg.Types.dc_policies []

(* ------------------------------------------------------------------ *)
(* iBGP propagation gaps (route-reflection automaton)                   *)
(* ------------------------------------------------------------------ *)

(** How a route arrived at the device it now sits on — the only state the
    iBGP reflection rule inspects. *)
type prop_state = Origin | From_ebgp | From_client | From_nonclient

let state_rank = function
  | Origin -> 0
  | From_ebgp -> 1
  | From_client -> 2
  | From_nonclient -> 3

(** May a route in [state] at the edge's source be advertised over it?
    Mirrors the simulator's export rule: only iBGP-learned routes are
    subject to reflection, and those propagate when learned from a client
    or when the receiver is a client. *)
let may_send (g : t) (state : prop_state) (e : session_edge) =
  let src_cfg = Smap.find e.se_src g.g_input.Lint.li_configs in
  let sender_ebgp = e.se_out.Types.nb_remote_asn <> asn_of src_cfg in
  if sender_ebgp then true
  else
    match state with
    | Origin | From_ebgp | From_client -> true
    | From_nonclient -> e.se_out.Types.nb_rr_client

let state_after (g : t) (e : session_edge) : prop_state =
  let dst_cfg = Smap.find e.se_dst g.g_input.Lint.li_configs in
  let receiver_ebgp = e.se_in.Types.nb_remote_asn <> asn_of dst_cfg in
  if receiver_ebgp then From_ebgp
  else if e.se_in.Types.nb_rr_client then From_client
  else From_nonclient

(** [HOY025]: within each AS with at least two configured speakers and at
    least one reciprocal iBGP edge, every member's routes must be able to
    reach every other member under the reflection rules (policy-blind:
    policies express intent, the session graph expresses ability). *)
let ibgp_gap_check (g : t) : D.t list =
  let configs = g.g_input.Lint.li_configs in
  (* members per AS: configured BGP speakers the simulator instantiates *)
  let by_as = Hashtbl.create 8 in
  Smap.iter
    (fun dev (cfg : Types.t) ->
      if cfg.Types.dc_bgp.Types.bgp_neighbors <> [] && in_topo g dev then
        let asn = asn_of cfg in
        Hashtbl.replace by_as asn
          (dev :: Option.value (Hashtbl.find_opt by_as asn) ~default:[]))
    configs;
  let ibgp_edge asn (e : session_edge) =
    let sc = Smap.find e.se_src configs and dc = Smap.find e.se_dst configs in
    asn_of sc = asn && asn_of dc = asn
    && e.se_out.Types.nb_remote_asn = asn
    && e.se_in.Types.nb_remote_asn = asn
  in
  Hashtbl.fold
    (fun asn members acc ->
      let members = List.sort String.compare members in
      let edges = List.filter (ibgp_edge asn) g.g_edges in
      if List.length members < 2 || edges = [] then acc
      else
        let out = Hashtbl.create 16 in
        List.iter
          (fun e ->
            Hashtbl.replace out e.se_src
              (e :: Option.value (Hashtbl.find_opt out e.se_src) ~default:[]))
          edges;
        let reach origin =
          let seen = Hashtbl.create 16 in
          let rec bfs = function
            | [] -> ()
            | (dev, state) :: rest ->
                if Hashtbl.mem seen (dev, state_rank state) then bfs rest
                else begin
                  Hashtbl.replace seen (dev, state_rank state) ();
                  let next =
                    List.filter_map
                      (fun e ->
                        if may_send g state e then
                          Some (e.se_dst, state_after g e)
                        else None)
                      (Option.value (Hashtbl.find_opt out dev) ~default:[])
                  in
                  bfs (next @ rest)
                end
          in
          bfs [ (origin, Origin) ];
          List.filter
            (fun m ->
              (not (String.equal m origin))
              && not
                   (List.exists
                      (fun s -> Hashtbl.mem seen (m, s))
                      [ 0; 1; 2; 3 ]))
            members
        in
        let gaps =
          List.filter_map
            (fun o ->
              match reach o with [] -> None | missed -> Some (o, missed))
            members
        in
        match gaps with
        | [] -> acc
        | (origin, missed) :: _ ->
            let preview =
              match missed with
              | a :: b :: _ :: _ -> Printf.sprintf "%s, %s, ..." a b
              | l -> String.concat ", " l
            in
            D.make ~code:"HOY025" ~device:origin ~obj:"bgp"
              "iBGP of AS %d cannot propagate: routes from %s never reach \
               %s (%d origin(s) with gaps among %d members)"
              asn origin preview (List.length gaps) (List.length members)
            :: acc)
    by_as []

(* ------------------------------------------------------------------ *)
(* Dangling static next hops                                            *)
(* ------------------------------------------------------------------ *)

(** Undirected topology reachability (the IGP's edge set). *)
let topo_reachable (input : Lint.input) ~src ~dst =
  match input.Lint.li_topo with
  | None -> true (* no topology: cannot decide, assume reachable *)
  | Some topo ->
      String.equal src dst
      ||
      let seen = Hashtbl.create 64 in
      let rec bfs = function
        | [] -> false
        | d :: _ when String.equal d dst -> true
        | d :: rest ->
            if Hashtbl.mem seen d then bfs rest
            else begin
              Hashtbl.replace seen d ();
              bfs (Topology.neighbors topo d @ rest)
            end
      in
      bfs [ src ]

(** [HOY026]: a static whose next hop sits on no connected subnet, under
    no other route of the device, and at no reachable managed address. *)
let static_check (g : t) dev (cfg : Types.t) : D.t list =
  List.filter_map
    (fun (st : Types.static_route) ->
      let iface_missing =
        match st.Types.st_iface with
        | None -> false
        | Some i ->
            not
              (List.exists
                 (fun (ifc : Types.iface_config) ->
                   String.equal ifc.Types.if_name i)
                 cfg.Types.dc_ifaces)
      in
      if iface_missing then
        Some
          (D.make ~code:"HOY026" ~device:dev
             ~obj:(Printf.sprintf "static %s" (Prefix.to_string st.Types.st_prefix))
             "static route exits via interface %s, which the device does \
              not define"
             (Option.get st.Types.st_iface))
      else
        match st.Types.st_nexthop with
        | None -> None
        | Some nh ->
            let on_subnet =
              List.exists
                (fun (i : Types.iface_config) ->
                  match Types.iface_subnet i with
                  | Some s -> Prefix.mem nh s
                  | None -> false)
                cfg.Types.dc_ifaces
            in
            let via_other_static =
              List.exists
                (fun (o : Types.static_route) ->
                  (not (Prefix.equal o.Types.st_prefix st.Types.st_prefix))
                  && Prefix.mem nh o.Types.st_prefix)
                cfg.Types.dc_statics
            in
            let via_owner =
              match Hashtbl.find_opt g.g_owner nh with
              | Some o ->
                  (not (String.equal o dev))
                  && topo_reachable g.g_input ~src:dev ~dst:o
              | None -> false
            in
            if on_subnet || via_other_static || via_owner then None
            else
              Some
                (D.make ~code:"HOY026" ~device:dev
                   ~obj:
                     (Printf.sprintf "static %s"
                        (Prefix.to_string st.Types.st_prefix))
                   "next hop %s is on no connected subnet, under no other \
                    route, and at no reachable managed address"
                   (Ip.to_string nh)))
    cfg.Types.dc_statics

(* ------------------------------------------------------------------ *)
(* Graph build and whole-network checks                                 *)
(* ------------------------------------------------------------------ *)

let build ?tm (input : Lint.input) : t =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  Telemetry.with_span tm "semantic.graph" (fun () ->
      let owner = owner_table input in
      let edges, halves, session_diags = session_checks input owner in
      let isis_adj, isis_diags = isis_checks input in
      let out = Hashtbl.create 64 in
      List.iter
        (fun e ->
          Hashtbl.replace out e.se_src
            (e :: Option.value (Hashtbl.find_opt out e.se_src) ~default:[]))
        edges;
      let rt_count =
        Smap.fold
          (fun _ cfg acc -> acc + List.length (rt_edges cfg))
          input.Lint.li_configs 0
      in
      {
        g_input = input;
        g_owner = owner;
        g_edges = edges;
        g_out = out;
        g_diags = session_diags @ isis_diags;
        g_stats =
          {
            st_devices = Smap.cardinal input.Lint.li_configs;
            st_sessions = List.length edges;
            st_half_sessions = halves;
            st_isis_adjacencies = isis_adj;
            st_rt_edges = rt_count;
          };
      })

(** All graph-level and dataflow diagnostics of the semantic pass
    (HOY020–HOY028). *)
let check ?tm (g : t) : D.t list =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  Telemetry.with_span tm "semantic.checks" (fun () ->
      let per_device =
        Smap.fold
          (fun dev cfg acc ->
            acc
            @ redistribution_loop_check dev cfg
            @ leak_check dev cfg @ dead_term_check dev cfg
            @ static_check g dev cfg)
          g.g_input.Lint.li_configs []
      in
      let ds = g.g_diags @ per_device @ ibgp_gap_check g in
      Telemetry.count tm "hoyan_semantic_diags_total" (List.length ds);
      List.sort D.compare_diag ds)

(* ------------------------------------------------------------------ *)
(* Three-valued policy evaluation (prefix-only)                         *)
(* ------------------------------------------------------------------ *)

type tri = TYes | TNo | TUnknown

let clause_tri (cfg : Types.t) (vsb : Vsb.t) (c : Types.match_clause)
    (p : Prefix.t) : tri =
  match c with
  | Types.Match_prefix_list name -> (
      match Types.find_prefix_list cfg name with
      | None -> if vsb.Vsb.undefined_filter_matches then TYes else TNo
      | Some pl ->
          if pl.Types.pl_family <> Prefix.family p then
            if vsb.Vsb.ip_prefix_permits_other_family then TYes else TNo
          else (
            match Types.prefix_list_eval pl p with
            | Some Types.Permit -> TYes
            | Some Types.Deny | None -> TNo))
  | Types.Match_family f -> if Prefix.family p = f then TYes else TNo
  | _ -> TUnknown (* community / as-path / next-hop / tag / protocol *)

let node_tri cfg vsb (node : Types.policy_node) p : tri =
  List.fold_left
    (fun acc c ->
      match (acc, clause_tri cfg vsb c p) with
      | TNo, _ | _, TNo -> TNo
      | TUnknown, _ | _, TUnknown -> TUnknown
      | TYes, TYes -> TYes)
    TYes node.Types.pn_matches

(** Can policy [name] of [cfg] pass a route for [p]?  Mirrors
    [Policy.eval]'s walk exactly on the prefix-decidable fragment;
    anything else yields [TUnknown].  Prefixes are never rewritten by
    set clauses, so the symbolic prefix is walk-invariant. *)
let tri_eval (cfg : Types.t) (name : string option) ~(ebgp : bool)
    (p : Prefix.t) : tri =
  let vsb = vsb_of cfg in
  match name with
  | None ->
      if (not ebgp) || vsb.Vsb.missing_policy_accepts then TYes else TNo
  | Some n -> (
      match Types.find_policy cfg n with
      | None -> if vsb.Vsb.undefined_policy_accepts then TYes else TNo
      | Some pol ->
          let rec walk = function
            | [] ->
                if vsb.Vsb.default_policy_action_permit then TYes else TNo
            | (node : Types.policy_node) :: rest -> (
                let matched () =
                  let action =
                    match node.Types.pn_action with
                    | Some a -> a
                    | None ->
                        if vsb.Vsb.no_explicit_action_permits then
                          Types.Permit
                        else Types.Deny
                  in
                  if action = Types.Deny then TNo
                  else if node.Types.pn_goto_next then walk rest
                  else TYes
                in
                match node_tri cfg vsb node p with
                | TNo -> walk rest
                | TYes -> matched ()
                | TUnknown ->
                    let a = matched () and b = walk rest in
                    if a = b then a else TUnknown)
          in
          walk pol.Types.rp_nodes)

(* ------------------------------------------------------------------ *)
(* Origin sets and the propagation closure                              *)
(* ------------------------------------------------------------------ *)

(** Exact origins of [p]: devices where the simulator unconditionally
    installs a best route for exactly [p] — connected subnet and host
    routes, statics, [network] statements (origination is unconditional)
    and injected input routes.  Each origin carries a short witness. *)
let exact_origins (g : t) ~(input_routes : Route.t list) (p : Prefix.t) :
    (string * string) list =
  let configs = g.g_input.Lint.li_configs in
  let from_configs =
    Smap.fold
      (fun dev (cfg : Types.t) acc ->
        let direct =
          List.exists
            (fun (i : Types.iface_config) ->
              match i.Types.if_addr with
              | None -> false
              | Some a ->
                  let bits = Ip.family_bits (Ip.family a) in
                  Prefix.equal (Prefix.make a i.Types.if_plen) p
                  || (i.Types.if_plen < bits
                     && Prefix.equal (Prefix.make a bits) p))
            cfg.Types.dc_ifaces
        in
        let static =
          List.exists
            (fun (s : Types.static_route) -> Prefix.equal s.Types.st_prefix p)
            cfg.Types.dc_statics
        in
        let network =
          in_topo g dev
          && List.exists
               (fun (np, _) -> Prefix.equal np p)
               cfg.Types.dc_bgp.Types.bgp_networks
        in
        if direct then (dev, "connected") :: acc
        else if static then (dev, "static") :: acc
        else if network then (dev, "network statement") :: acc
        else acc)
      configs []
  in
  let from_inputs =
    List.filter_map
      (fun (r : Route.t) ->
        if Prefix.equal r.Route.prefix p && in_topo g r.Route.device then
          Some (r.Route.device, "injected input route")
        else None)
      input_routes
  in
  List.sort_uniq compare (from_configs @ from_inputs)

(** Possible extra origins of [p] beyond the exact set: aggregates
    (conditional on a contributing route) and redistributed IS-IS
    loopbacks. *)
let over_origins (g : t) (p : Prefix.t) : string list =
  let configs = g.g_input.Lint.li_configs in
  let loopback_prefixes =
    match g.g_input.Lint.li_topo with
    | None -> []
    | Some topo ->
        List.map
          (fun (d : Topology.device) ->
            let bits = Ip.family_bits (Ip.family d.Topology.router_id) in
            (d.Topology.name, Prefix.make d.Topology.router_id bits))
          (Topology.devices topo)
  in
  Smap.fold
    (fun dev (cfg : Types.t) acc ->
      let aggregate =
        in_topo g dev
        && List.exists
             (fun (ag : Types.aggregate) -> Prefix.equal ag.Types.ag_prefix p)
             cfg.Types.dc_bgp.Types.bgp_aggregates
      in
      let isis_loopback =
        in_topo g dev
        && List.exists
             (fun (proto, _) -> proto = Route.Isis)
             cfg.Types.dc_bgp.Types.bgp_redistribute
        && List.exists
             (fun (n, lp) ->
               (not (String.equal n dev)) && Prefix.equal lp p)
             loopback_prefixes
      in
      if aggregate || isis_loopback then dev :: acc else acc)
    configs []

(** The propagation closure of [p]: every device any simulator execution
    could deliver a route for [p] to.  Seeds are the exact and possible
    origins; edges are the reciprocal session edges, traversed under the
    reflection automaton, pruned only when the three-valued export or
    import evaluation definitively denies the prefix. *)
let closure ?tm ?exact (g : t) ~(input_routes : Route.t list) (p : Prefix.t) :
    (string, unit) Hashtbl.t =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  Telemetry.with_span tm
    ~args:[ ("prefix", Prefix.to_string p) ]
    "semantic.closure"
    (fun () ->
      let configs = g.g_input.Lint.li_configs in
      let members = Hashtbl.create 64 in
      let exact =
        match exact with
        | Some e -> e
        | None -> exact_origins g ~input_routes p
      in
      let seeds = List.map fst exact @ over_origins g p in
      List.iter (fun d -> Hashtbl.replace members d ()) seeds;
      let seen = Hashtbl.create 64 in
      let passes (e : session_edge) =
        let src_cfg = Smap.find e.se_src configs in
        let dst_cfg = Smap.find e.se_dst configs in
        let sender_ebgp = e.se_out.Types.nb_remote_asn <> asn_of src_cfg in
        let receiver_ebgp = e.se_in.Types.nb_remote_asn <> asn_of dst_cfg in
        tri_eval src_cfg e.se_out.Types.nb_export ~ebgp:sender_ebgp p <> TNo
        && tri_eval dst_cfg e.se_in.Types.nb_import ~ebgp:receiver_ebgp p
           <> TNo
      in
      let rec bfs = function
        | [] -> ()
        | (dev, state) :: rest ->
            if Hashtbl.mem seen (dev, state_rank state) then bfs rest
            else begin
              Hashtbl.replace seen (dev, state_rank state) ();
              Hashtbl.replace members dev ();
              let next =
                List.filter_map
                  (fun e ->
                    if
                      in_topo g e.se_dst && may_send g state e && passes e
                    then Some (e.se_dst, state_after g e)
                    else None)
                  (Option.value (Hashtbl.find_opt g.g_out dev) ~default:[])
              in
              bfs (next @ rest)
            end
      in
      bfs
        (List.filter_map
           (fun d -> if in_topo g d then Some (d, Origin) else None)
           seeds);
      members)

(* ------------------------------------------------------------------ *)
(* The static intent pre-checker                                        *)
(* ------------------------------------------------------------------ *)

type verdict = Proved | Refuted of string | Needs_simulation

let verdict_to_string = function
  | Proved -> "proved"
  | Refuted _ -> "refuted"
  | Needs_simulation -> "needs-simulation"

(** A reachability intent in the analysis layer's own vocabulary (the
    core layer's intent type lives above this library; the core converts). *)
type reach_intent = {
  ri_name : string;
  ri_prefix : Prefix.t;
  ri_devices : string list;
  ri_expect : bool; (* true = route expected present on every device *)
}

(** Classify one reachability intent.

    Prove/refute only where the abstraction is exact: presence is proved
    solely from exact origins (unconditional installs); absence is
    proved — and expected presence refuted — solely from the
    over-approximate closure.  Everything else needs the simulator. *)
let precheck_verdict ~(exact : (string * string) list)
    ~(cl : (string, unit) Hashtbl.t) (ri : reach_intent) : verdict =
  let in_closure d = Hashtbl.mem cl d in
  let origin_of d = List.assoc_opt d exact in
  if ri.ri_expect then
    match List.find_opt (fun d -> not (in_closure d)) ri.ri_devices with
        | Some dev ->
            let origins =
              match List.map fst exact with
              | [] -> "no device originates it"
              | l ->
                  Printf.sprintf "origins: %s"
                    (String.concat ", "
                       (List.filteri (fun i _ -> i < 3) l))
            in
            Refuted
              (Printf.sprintf
                 "%s expects %s present on %s, but no propagation path in \
                  the control-plane graph can deliver it there (%s)"
                 ri.ri_name
                 (Prefix.to_string ri.ri_prefix)
                 dev origins)
        | None ->
            if List.for_all (fun d -> origin_of d <> None) ri.ri_devices
            then Proved
            else Needs_simulation
      else
        match
          List.find_opt (fun d -> origin_of d <> None) ri.ri_devices
        with
        | Some dev ->
            Refuted
              (Printf.sprintf
                 "%s expects %s absent on %s, but the device originates it \
                  unconditionally (%s)"
                 ri.ri_name
                 (Prefix.to_string ri.ri_prefix)
                 dev
                 (Option.get (origin_of dev)))
        | None ->
            if List.for_all (fun d -> not (in_closure d)) ri.ri_devices then
              Proved
            else Needs_simulation

let precheck ?tm (g : t) ~(input_routes : Route.t list) (ri : reach_intent) :
    verdict =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  Telemetry.with_span tm
    ~args:[ ("intent", ri.ri_name) ]
    "semantic.precheck"
    (fun () ->
      let exact = exact_origins g ~input_routes ri.ri_prefix in
      precheck_verdict ~exact
        ~cl:(closure ~tm ~exact g ~input_routes ri.ri_prefix)
        ri)

(** Pre-check a whole batch of intents, memoizing the per-prefix origin
    sets and propagation closures: intents of one request routinely name
    the same prefixes, and the closure BFS is the expensive half of a
    verdict.  Returns the verdicts in input order. *)
let precheck_batch ?tm (g : t) ~(input_routes : Route.t list)
    (ris : reach_intent list) : (reach_intent * verdict) list =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  Telemetry.with_span tm
    ~args:[ ("intents", string_of_int (List.length ris)) ]
    "semantic.precheck"
    (fun () ->
      let memo cache compute p =
        let k = Prefix.to_string p in
        match Hashtbl.find_opt cache k with
        | Some v -> v
        | None ->
            let v = compute p in
            Hashtbl.replace cache k v;
            v
      in
      let exact_cache = Hashtbl.create 16 in
      let closure_cache = Hashtbl.create 16 in
      let exact_of = memo exact_cache (exact_origins g ~input_routes) in
      let closure_of =
        memo closure_cache (fun p ->
            closure ~tm ~exact:(exact_of p) g ~input_routes p)
      in
      List.map
        (fun ri ->
          ( ri,
            precheck_verdict ~exact:(exact_of ri.ri_prefix)
              ~cl:(closure_of ri.ri_prefix) ri ))
        ris)

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let stats_to_string (s : stats) =
  Printf.sprintf
    "devices=%d sessions=%d half-sessions=%d isis-adjacencies=%d rt-edges=%d"
    s.st_devices s.st_sessions s.st_half_sessions s.st_isis_adjacencies
    s.st_rt_edges

(** Run the whole semantic pass: build the graph, run every HOY02x check,
    and — when [intents] are given — pre-check them, surfacing refuted
    ones as [HOY029]. *)
let analyze ?tm ?(input_routes = []) ?(intents = []) (input : Lint.input) :
    D.t list =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  let g = build ~tm input in
  let ds = check ~tm g in
  let intent_diags =
    List.filter_map
      (fun ri ->
        match precheck ~tm g ~input_routes ri with
        | Refuted why ->
            Some
              (D.make ~code:"HOY029"
                 ?device:(List.nth_opt ri.ri_devices 0)
                 ~obj:ri.ri_name "%s" why)
        | Proved | Needs_simulation -> None)
      intents
  in
  if Telemetry.enabled tm then
    Telemetry.event tm "semantic.done"
      [
        ("devices", Journal.I g.g_stats.st_devices);
        ("sessions", Journal.I g.g_stats.st_sessions);
        ("diagnostics", Journal.I (List.length ds + List.length intent_diags));
        ("intents", Journal.I (List.length intents));
      ];
  List.sort D.compare_diag (ds @ intent_diags)
