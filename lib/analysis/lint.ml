(** The pre-simulation static-analysis pass.

    Lints a configuration corpus (parsed IR + rendered texts), an
    optional change plan, and optional RCL specifications — without
    running any simulation fixpoint.  Every finding is a
    {!Diagnostics.t} with a stable [HOYnnn] code; see
    {!Diagnostics.catalog} for the full check list.

    The pass is deliberately conservative: a check only fires when the
    defect is certain under the device's vendor semantic profile
    ({!Hoyan_config.Vsb}), so a clean corpus lints clean (zero false
    positives is an acceptance criterion, not an aspiration). *)

open Hoyan_net
module Types = Hoyan_config.Types
module Vsb = Hoyan_config.Vsb
module Cp = Hoyan_config.Change_plan
module Printer = Hoyan_config.Printer
module L = Hoyan_config.Lexutil
module Regex = Hoyan_regex.Regex
module Ast = Hoyan_rcl.Ast
module Value = Hoyan_rcl.Value
module D = Diagnostics
module Smap = Types.Smap

type input = {
  li_configs : Types.t Smap.t; (* parsed device configs by device name *)
  li_texts : string Smap.t; (* rendered dialect text, for line locations *)
  li_topo : Topology.t option;
  li_plan : Cp.t option;
  li_specs : (string * string) list; (* (label, RCL source) *)
}

let render_texts (configs : Types.t Smap.t) : string Smap.t =
  Smap.fold
    (fun dev cfg acc ->
      match Printer.print cfg with
      | text -> Smap.add dev text acc
      | exception Invalid_argument _ -> acc (* unknown vendor: no text *))
    configs Smap.empty

let make ?topo ?plan ?(specs = []) ?(render = true) (configs : Types.t Smap.t)
    : input =
  {
    li_configs = configs;
    (* Rendering every device through Printer dominates gate cost; callers
       that only need IR-level checks (the verify pre-checker) skip it and
       lose nothing but line numbers in locations. *)
    li_texts = (if render then render_texts configs else Smap.empty);
    li_topo = topo;
    li_plan = plan;
    li_specs = specs;
  }

(* ------------------------------------------------------------------ *)
(* Line location                                                       *)
(* ------------------------------------------------------------------ *)

let comment_char vendor = if String.equal vendor "vendorB" then '#' else '!'

(** First line of the device's rendered config whose tokens contain every
    needle token.  Good enough to anchor a diagnostic to the offending
    statement; [None] when the construct has no syntactic rendering. *)
let locate (input : input) (cfg : Types.t) (needles : string list) :
    int option =
  match Smap.find_opt cfg.Types.dc_device input.li_texts with
  | None -> None
  | Some text ->
      L.lines_of_string ~comment:(comment_char cfg.Types.dc_vendor) text
      |> List.find_map (fun (l : L.line) ->
             if List.for_all (fun n -> List.mem n l.L.tokens) needles then
               Some l.L.lnum
             else None)

(* ------------------------------------------------------------------ *)
(* Prefix-entry containment (shared by HOY007 / HOY008)                *)
(* ------------------------------------------------------------------ *)

(** The prefix-length interval an entry matches inside its prefix,
    mirroring {!Types.prefix_entry_matches} exactly. *)
let entry_range (e : Types.prefix_entry) : int * int =
  let plen = Prefix.len e.Types.pe_prefix in
  let bits = Prefix.bits e.Types.pe_prefix in
  match (e.Types.pe_ge, e.Types.pe_le) with
  | None, None -> (plen, plen)
  | Some ge, None -> (ge, bits)
  | None, Some le -> (plen, le)
  | Some ge, Some le -> (ge, le)

(** [entry_covers e e']: every prefix matched by [e'] is matched by [e]. *)
let entry_covers (e : Types.prefix_entry) (e' : Types.prefix_entry) : bool =
  Prefix.family e.Types.pe_prefix = Prefix.family e'.Types.pe_prefix
  && Prefix.subsumes e.Types.pe_prefix e'.Types.pe_prefix
  &&
  let lo, hi = entry_range e and lo', hi' = entry_range e' in
  lo <= lo' && hi >= hi'

(** Entries of [pl] that can never match because an earlier entry (any
    action — evaluation is first-match) covers their whole range.
    Returns [(shadowed, shadowing)] pairs.  Uses a prefix trie of the
    earlier entries so the scan is near-linear in practice. *)
let shadowed_entries (pl : Types.prefix_list) :
    (Types.prefix_entry * Types.prefix_entry) list =
  let trie = ref Trie.Dual.empty in
  List.filter_map
    (fun (e : Types.prefix_entry) ->
      let shadow =
        Trie.Dual.all_matches !trie (Prefix.first_addr e.Types.pe_prefix)
        |> List.concat_map (fun (p, es) ->
               if Prefix.len p <= Prefix.len e.Types.pe_prefix then es else [])
        |> List.find_opt (fun e0 -> entry_covers e0 e)
      in
      (trie :=
         Trie.Dual.update !trie e.Types.pe_prefix (function
           | None -> Some [ e ]
           | Some es -> Some (e :: es)));
      Option.map (fun e0 -> (e, e0)) shadow)
    pl.Types.pl_entries

(* ------------------------------------------------------------------ *)
(* Policy-term shadowing (HOY007)                                      *)
(* ------------------------------------------------------------------ *)

(** Does clause [ck] imply clause [cj] (every route matching [ck] matches
    [cj])?  Conservative: syntactic equality, plus prefix-list
    containment when both lists are defined, same-family, and the
    implied list is deny-free (so coverage of permit entries suffices
    under first-match evaluation; cross-family routes hit the same VSB
    default on both lists). *)
let clause_implies (cfg : Types.t) (ck : Types.match_clause)
    (cj : Types.match_clause) : bool =
  ck = cj
  ||
  match (ck, cj) with
  | Types.Match_prefix_list lk, Types.Match_prefix_list lj -> (
      match (Types.find_prefix_list cfg lk, Types.find_prefix_list cfg lj) with
      | Some plk, Some plj ->
          plk.Types.pl_family = plj.Types.pl_family
          && List.for_all
               (fun (e : Types.prefix_entry) -> e.Types.pe_action = Types.Permit)
               plj.Types.pl_entries
          && List.for_all
               (fun (ek : Types.prefix_entry) ->
                 ek.Types.pe_action = Types.Deny
                 || List.exists
                      (fun ej -> entry_covers ej ek)
                      plj.Types.pl_entries)
               plk.Types.pl_entries
      | _ -> false)
  | _ -> false

(** Does earlier node [j] shadow later node [k]?  Requires [j] to stop
    evaluation on match (no goto-next) and [j]'s whole conjunction to be
    implied by [k]'s: every route reaching [k]'s conditions already
    terminated at [j]. *)
let node_shadows (cfg : Types.t) (j : Types.policy_node)
    (k : Types.policy_node) : bool =
  (not j.Types.pn_goto_next)
  && List.for_all
       (fun cj ->
         List.exists (fun ck -> clause_implies cfg ck cj) k.Types.pn_matches)
       j.Types.pn_matches

(* ------------------------------------------------------------------ *)
(* Per-device configuration checks                                     *)
(* ------------------------------------------------------------------ *)

let check_config (input : input) (cfg : Types.t) : D.t list =
  let dev = cfg.Types.dc_device in
  let diags = ref [] in
  let add ~code ?obj ~needles fmt =
    Printf.ksprintf
      (fun msg ->
        diags :=
          D.make ~code ~device:dev ?obj ?line:(locate input cfg needles) "%s"
            msg
          :: !diags)
      fmt
  in
  (* HOY001/2/3 — undefined filters referenced from policy matches *)
  Smap.iter
    (fun pname (rp : Types.route_policy) ->
      List.iter
        (fun (node : Types.policy_node) ->
          let obj =
            Printf.sprintf "route-policy %s node %d" pname node.Types.pn_seq
          in
          List.iter
            (fun (m : Types.match_clause) ->
              match m with
              | Types.Match_prefix_list n
                when Types.find_prefix_list cfg n = None ->
                  add ~code:"HOY001" ~obj ~needles:[ n ]
                    "match references undefined prefix list %s" n
              | Types.Match_community_list n
                when Types.find_community_list cfg n = None ->
                  add ~code:"HOY002" ~obj ~needles:[ n ]
                    "match references undefined community list %s" n
              | Types.Match_aspath_filter n
                when Types.find_aspath_filter cfg n = None ->
                  add ~code:"HOY003" ~obj ~needles:[ n ]
                    "match references undefined as-path filter %s" n
              | _ -> ())
            node.Types.pn_matches)
        rp.Types.rp_nodes)
    cfg.Types.dc_policies;
  (* HOY004 — undefined route policies on sessions / redistribution / VRFs *)
  let policy_defined p = Types.find_policy cfg p <> None in
  List.iter
    (fun (nb : Types.neighbor) ->
      let ip = Ip.to_string nb.Types.nb_addr in
      let chk dir = function
        | Some p when not (policy_defined p) ->
            add ~code:"HOY004"
              ~obj:(Printf.sprintf "neighbor %s %s" ip dir)
              ~needles:[ ip; p ] "%s policy %s is not defined" dir p
        | _ -> ()
      in
      chk "import" nb.Types.nb_import;
      chk "export" nb.Types.nb_export)
    cfg.Types.dc_bgp.Types.bgp_neighbors;
  List.iter
    (fun (proto, pol) ->
      match pol with
      | Some p when not (policy_defined p) ->
          add ~code:"HOY004"
            ~obj:
              (Printf.sprintf "redistribute %s"
                 (Hoyan_net.Route.proto_to_string proto))
            ~needles:[ "redistribute"; p ]
            "redistribution policy %s is not defined" p
      | _ -> ())
    cfg.Types.dc_bgp.Types.bgp_redistribute;
  List.iter
    (fun (vd : Types.vrf_def) ->
      match vd.Types.vd_export_policy with
      | Some p when not (policy_defined p) ->
          add ~code:"HOY004"
            ~obj:(Printf.sprintf "vrf %s export-policy" vd.Types.vd_name)
            ~needles:[ p ] "VRF export policy %s is not defined" p
      | _ -> ())
    cfg.Types.dc_bgp.Types.bgp_vrfs;
  (* HOY005 — undefined ACLs *)
  let acl_defined a = Types.find_acl cfg a <> None in
  List.iter
    (fun (i : Types.iface_config) ->
      match i.Types.if_acl_in with
      | Some a when not (acl_defined a) ->
          add ~code:"HOY005"
            ~obj:(Printf.sprintf "interface %s" i.Types.if_name)
            ~needles:[ a ] "inbound ACL %s is not defined" a
      | _ -> ())
    cfg.Types.dc_ifaces;
  List.iter
    (fun (p : Types.pbr_rule) ->
      if not (acl_defined p.Types.pbr_acl) then
        add ~code:"HOY005"
          ~obj:(Printf.sprintf "pbr on %s" p.Types.pbr_iface)
          ~needles:[ p.Types.pbr_acl ] "PBR ACL %s is not defined"
          p.Types.pbr_acl)
    cfg.Types.dc_pbr;
  (* HOY019 — undefined interfaces *)
  let iface_defined n = Types.iface cfg n <> None in
  List.iter
    (fun (p : Types.pbr_rule) ->
      if not (iface_defined p.Types.pbr_iface) then
        add ~code:"HOY019"
          ~obj:(Printf.sprintf "pbr on %s" p.Types.pbr_iface)
          ~needles:[ p.Types.pbr_iface ]
          "PBR rule is bound to undefined interface %s" p.Types.pbr_iface)
    cfg.Types.dc_pbr;
  List.iter
    (fun (ii : Types.isis_iface) ->
      if not (iface_defined ii.Types.ii_name) then
        add ~code:"HOY019"
          ~obj:(Printf.sprintf "isis interface %s" ii.Types.ii_name)
          ~needles:[ ii.Types.ii_name ]
          "IS-IS references undefined interface %s" ii.Types.ii_name)
    cfg.Types.dc_isis.Types.isis_ifaces;
  (* HOY006 — eBGP session without policy on a strict-profile vendor *)
  (match Vsb.of_vendor cfg.Types.dc_vendor with
  | Some vsb when not vsb.Vsb.missing_policy_accepts ->
      List.iter
        (fun (nb : Types.neighbor) ->
          let ebgp =
            nb.Types.nb_remote_asn <> 0
            && nb.Types.nb_remote_asn <> cfg.Types.dc_bgp.Types.bgp_asn
          in
          if ebgp && (nb.Types.nb_import = None || nb.Types.nb_export = None)
          then
            let ip = Ip.to_string nb.Types.nb_addr in
            add ~code:"HOY006"
              ~obj:(Printf.sprintf "neighbor %s" ip)
              ~needles:[ ip ]
              "eBGP session to AS %d has no %s policy; vendor %s rejects \
               updates without one"
              nb.Types.nb_remote_asn
              (match (nb.Types.nb_import, nb.Types.nb_export) with
              | None, None -> "import/export"
              | None, _ -> "import"
              | _ -> "export")
              cfg.Types.dc_vendor)
        cfg.Types.dc_bgp.Types.bgp_neighbors
  | _ -> ());
  (* HOY007 — shadowed route-policy terms *)
  Smap.iter
    (fun pname (rp : Types.route_policy) ->
      let rec scan = function
        | [] -> ()
        | (j : Types.policy_node) :: rest ->
            List.iter
              (fun (k : Types.policy_node) ->
                if node_shadows cfg j k then
                  add ~code:"HOY007"
                    ~obj:
                      (Printf.sprintf "route-policy %s node %d" pname
                         k.Types.pn_seq)
                    ~needles:[ pname; string_of_int k.Types.pn_seq ]
                    "node %d can never match: node %d already matches every \
                     route it would"
                    k.Types.pn_seq j.Types.pn_seq)
              rest;
            scan rest
      in
      scan rp.Types.rp_nodes)
    cfg.Types.dc_policies;
  (* HOY008 — fully-shadowed prefix-list entries *)
  Smap.iter
    (fun plname (pl : Types.prefix_list) ->
      List.iter
        (fun ((e : Types.prefix_entry), (e0 : Types.prefix_entry)) ->
          add ~code:"HOY008"
            ~obj:(Printf.sprintf "prefix-list %s seq %d" plname e.Types.pe_seq)
            ~needles:[ plname; string_of_int e.Types.pe_seq ]
            "entry %d (%s) can never match: entry %d (%s) covers its whole \
             range"
            e.Types.pe_seq
            (Prefix.to_string e.Types.pe_prefix)
            e0.Types.pe_seq
            (Prefix.to_string e0.Types.pe_prefix))
        (shadowed_entries pl))
    cfg.Types.dc_prefix_lists;
  (* HOY009 — as-path regexes that do not compile *)
  Smap.iter
    (fun afname (af : Types.aspath_filter) ->
      List.iter
        (fun (ae : Types.aspath_entry) ->
          if Regex.compile_opt ae.Types.ae_regex = None then
            add ~code:"HOY009"
              ~obj:(Printf.sprintf "as-path filter %s seq %d" afname
                      ae.Types.ae_seq)
              ~needles:[ afname ]
              "as-path regex %S does not compile" ae.Types.ae_regex)
        af.Types.af_entries)
    cfg.Types.dc_aspath_filters;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Corpus-wide VRF route-target matching (HOY010 / HOY011)             *)
(* ------------------------------------------------------------------ *)

let vrf_rt_checks (input : input) : D.t list =
  let exported = Hashtbl.create 16 and imported = Hashtbl.create 16 in
  Smap.iter
    (fun _ (cfg : Types.t) ->
      List.iter
        (fun (vd : Types.vrf_def) ->
          List.iter (fun rt -> Hashtbl.replace exported rt ())
            vd.Types.vd_export_rts;
          List.iter (fun rt -> Hashtbl.replace imported rt ())
            vd.Types.vd_import_rts)
        cfg.Types.dc_bgp.Types.bgp_vrfs)
    input.li_configs;
  let diags = ref [] in
  Smap.iter
    (fun dev (cfg : Types.t) ->
      List.iter
        (fun (vd : Types.vrf_def) ->
          let obj = Printf.sprintf "vrf %s" vd.Types.vd_name in
          List.iter
            (fun rt ->
              if not (Hashtbl.mem exported rt) then
                diags :=
                  D.make ~code:"HOY010" ~device:dev ~obj
                    ?line:(locate input cfg [ rt ])
                    "imports route target %s which no VRF exports" rt
                  :: !diags)
            vd.Types.vd_import_rts;
          List.iter
            (fun rt ->
              if not (Hashtbl.mem imported rt) then
                diags :=
                  D.make ~code:"HOY011" ~device:dev ~obj
                    ?line:(locate input cfg [ rt ])
                    "exports route target %s which no VRF imports" rt
                  :: !diags)
            vd.Types.vd_export_rts)
        cfg.Types.dc_bgp.Types.bgp_vrfs)
    input.li_configs;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Change-plan checks (HOY012 / HOY013 / HOY014)                       *)
(* ------------------------------------------------------------------ *)

(** Dry-run the plan against the corpus.  Returns the plan diagnostics
    plus the post-plan configs, so the configuration checks run on what
    the network would look like {e after} the change. *)
let plan_checks (input : input) (plan : Cp.t) : D.t list * Types.t Smap.t =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let topo_names =
    match input.li_topo with
    | None -> []
    | Some topo -> Topology.device_names topo
  in
  let added_names =
    List.filter_map
      (function
        | Cp.Add_device d -> Some d.Topology.name
        | _ -> None)
      plan.Cp.cp_topo_ops
  in
  let known dev =
    Smap.mem dev input.li_configs
    || List.mem dev topo_names
    || List.mem dev added_names
  in
  let obj = Printf.sprintf "change plan %s" plan.Cp.cp_name in
  (* topology operations *)
  List.iter
    (fun (op : Cp.topo_op) ->
      match op with
      | Cp.Add_device _ -> ()
      | Cp.Remove_device d ->
          if not (known d) then
            add
              (D.make ~code:"HOY012" ~device:d ~obj
                 "topology op removes unknown device %s" d)
      | Cp.Add_link { la; lb; _ } ->
          List.iter
            (fun d ->
              if not (known d) then
                add
                  (D.make ~code:"HOY012" ~device:d ~obj
                     "topology op links unknown device %s" d))
            [ la; lb ]
      | Cp.Remove_link { ra; rb } ->
          if not (known ra) || not (known rb) then
            List.iter
              (fun d ->
                if not (known d) then
                  add
                    (D.make ~code:"HOY012" ~device:d ~obj
                       "topology op unlinks unknown device %s" d))
              [ ra; rb ]
          else
            Option.iter
              (fun topo ->
                if
                  Topology.edge_between topo ra rb = None
                  && Topology.edge_between topo rb ra = None
                then
                  add
                    (D.make ~code:"HOY013" ~device:ra ~obj
                       "topology op removes non-existent link %s -- %s" ra rb))
              input.li_topo)
    plan.Cp.cp_topo_ops;
  (* command blocks: unknown devices, then a dry-run apply per device *)
  let merged =
    List.fold_left
      (fun configs (dev, block) ->
        match Smap.find_opt dev configs with
        | None ->
            if not (known dev) then
              add
                (D.make ~code:"HOY012" ~device:dev ~obj
                   "command block targets unknown device %s" dev);
            configs
        | Some cfg ->
            let cfg', report = Cp.apply_commands cfg block in
            List.iter
              (fun (i : Cp.line_issue) ->
                match i.Cp.ci_kind with
                | Cp.Parse ->
                    add
                      (D.make ~code:"HOY014" ~device:dev
                         ~obj:(if i.Cp.ci_text = "" then obj else i.Cp.ci_text)
                         ~line:i.Cp.ci_lnum "command does not parse: %s"
                         i.Cp.ci_msg)
                | Cp.Delete ->
                    add
                      (D.make ~code:"HOY013" ~device:dev ~obj:i.Cp.ci_text
                         ~line:i.Cp.ci_lnum "deletion does not apply: %s"
                         i.Cp.ci_msg))
              report.Cp.ar_issues;
            Smap.add dev cfg' configs)
      input.li_configs plan.Cp.cp_commands
  in
  (List.rev !diags, merged)

(* ------------------------------------------------------------------ *)
(* RCL specification checks (HOY015..HOY018)                           *)
(* ------------------------------------------------------------------ *)

type field_kind = Knum | Kstr | Kset

let field_kind = function
  | "localPref" | "med" | "weight" | "preference" | "igpCost" | "tag" -> Knum
  | "communities" -> Kset
  | _ -> Kstr

let kind_name = function Knum -> "number" | Kstr -> "string" | Kset -> "set"

let value_kind = function
  | Value.Num _ -> Knum
  | Value.Str _ -> Kstr
  | Value.Set _ -> Kset

let is_ordering = function
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true
  | Ast.Eq | Ast.Ne -> false

(** Collect every predicate appearing anywhere in an intent (guards and
    RIB-transformation filters). *)
let preds_of_intent (g : Ast.intent) : Ast.pred list =
  let acc = ref [] in
  let rec transform = function
    | Ast.T_pre | Ast.T_post -> ()
    | Ast.T_filter (r, p) ->
        acc := p :: !acc;
        transform r
  in
  let rec eval = function
    | Ast.E_val _ -> ()
    | Ast.E_agg (r, _) -> transform r
    | Ast.E_arith (a, _, b) ->
        eval a;
        eval b
  in
  let rec intent = function
    | Ast.G_rib_cmp (r1, _, r2) ->
        transform r1;
        transform r2
    | Ast.G_eval_cmp (e1, _, e2) ->
        eval e1;
        eval e2
    | Ast.G_guard (p, g) ->
        acc := p :: !acc;
        intent g
    | Ast.G_forall (_, g) | Ast.G_forall_in (_, _, g) | Ast.G_not g -> intent g
    | Ast.G_and (a, b) | Ast.G_or (a, b) | Ast.G_imply (a, b) ->
        intent a;
        intent b
  in
  intent g;
  List.rev !acc

(** HOY016 / HOY017 on one atomic predicate. *)
let check_atom ~add (p : Ast.pred) =
  let bad_field f =
    if not (Hoyan_rcl.Fields.is_field f) then (
      add "HOY016" (Printf.sprintf "unknown field %s" f);
      true)
    else false
  in
  match p with
  | Ast.P_cmp (f, op, v) ->
      if not (bad_field f) then (
        let fk = field_kind f and vk = value_kind v in
        if fk = Kset then (
          if is_ordering op then
            add "HOY016"
              (Printf.sprintf "field %s is a set; ordering comparison %s \
                               never holds"
                 f (Ast.cmp_to_string op))
          else if vk <> Kset then
            add "HOY016"
              (Printf.sprintf
                 "field %s is a set but is compared against a %s literal" f
                 (kind_name vk)))
        else if vk <> fk then
          add "HOY016"
            (Printf.sprintf
               "field %s is a %s but is compared against a %s literal \
                (comparison is constant)"
               f (kind_name fk) (kind_name vk)))
  | Ast.P_contains (f, _) ->
      if not (bad_field f) then
        if field_kind f <> Kset then
          add "HOY016"
            (Printf.sprintf
               "'contains' on scalar field %s (only sets contain values)" f)
  | Ast.P_in (f, vs) ->
      if not (bad_field f) then
        let fk = field_kind f in
        if fk <> Kset then
          List.iter
            (fun v ->
              if value_kind v <> fk then
                add "HOY016"
                  (Printf.sprintf
                     "field %s is a %s but the 'in' set holds a %s value" f
                     (kind_name fk)
                     (kind_name (value_kind v))))
            vs
  | Ast.P_matches (f, re) ->
      if not (bad_field f) then (
        if field_kind f = Kset then
          add "HOY016"
            (Printf.sprintf "'matches' on set field %s never holds" f);
        if Regex.compile_opt re = None then
          add "HOY017" (Printf.sprintf "regex %S does not compile" re))
  | Ast.P_and _ | Ast.P_or _ | Ast.P_imply _ | Ast.P_not _ -> ()

(** HOY018: flatten maximal conjunctions and look for per-field
    contradictions — two different equalities, empty numeric interval,
    an equality outside the interval or outside every 'in' set, or two
    disjoint 'in' sets. *)
let rec conjuncts = function
  | Ast.P_and (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let check_conjunction ~add (cs : Ast.pred list) =
  let fields =
    List.filter_map
      (function
        | Ast.P_cmp (f, _, _) | Ast.P_in (f, _) -> Some f
        | _ -> None)
      cs
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun f ->
      let eqs =
        List.filter_map
          (function
            | Ast.P_cmp (f', Ast.Eq, v) when String.equal f f' -> Some v
            | _ -> None)
          cs
      in
      let ins =
        List.filter_map
          (function
            | Ast.P_in (f', vs) when String.equal f f' -> Some vs
            | _ -> None)
          cs
      in
      (* numeric interval from ordering constraints *)
      let lo = ref neg_infinity and lo_strict = ref false in
      let hi = ref infinity and hi_strict = ref false in
      List.iter
        (function
          | Ast.P_cmp (f', op, Value.Num n) when String.equal f f' -> (
              match op with
              | Ast.Gt ->
                  if n > !lo || (n = !lo && not !lo_strict) then (
                    lo := n;
                    lo_strict := true)
              | Ast.Ge -> if n > !lo then (lo := n; lo_strict := false)
              | Ast.Lt ->
                  if n < !hi || (n = !hi && not !hi_strict) then (
                    hi := n;
                    hi_strict := true)
              | Ast.Le -> if n < !hi then (hi := n; hi_strict := false)
              | _ -> ())
          | _ -> ())
        cs;
      let interval_empty =
        !lo > !hi || (!lo = !hi && (!lo_strict || !hi_strict))
      in
      let distinct_eqs =
        match eqs with
        | v :: rest -> List.exists (fun v' -> not (Value.equal v v')) rest
        | [] -> false
      in
      let eq_outside_interval =
        List.exists
          (function
            | Value.Num n ->
                n < !lo || n > !hi
                || (n = !lo && !lo_strict)
                || (n = !hi && !hi_strict)
            | _ -> false)
          eqs
      in
      let eq_outside_in =
        List.exists
          (fun v ->
            List.exists
              (fun vs -> not (List.exists (Value.equal v) vs))
              ins)
          eqs
      in
      let disjoint_ins =
        let rec pairs = function
          | [] -> false
          | vs :: rest ->
              List.exists
                (fun vs' ->
                  not
                    (List.exists
                       (fun v -> List.exists (Value.equal v) vs')
                       vs))
                rest
              || pairs rest
        in
        pairs ins
      in
      if distinct_eqs then
        add "HOY018"
          (Printf.sprintf "field %s is constrained to two different values" f)
      else if interval_empty then
        add "HOY018"
          (Printf.sprintf "numeric constraints on field %s admit no value" f)
      else if eq_outside_interval then
        add "HOY018"
          (Printf.sprintf
             "equality on field %s lies outside its numeric constraints" f)
      else if eq_outside_in then
        add "HOY018"
          (Printf.sprintf
             "equality on field %s is not a member of its 'in' set" f)
      else if disjoint_ins then
        add "HOY018" (Printf.sprintf "'in' sets for field %s are disjoint" f))
    fields

let check_pred ~add (p : Ast.pred) =
  let rec walk p =
    match p with
    | Ast.P_and _ ->
        let cs = conjuncts p in
        check_conjunction ~add cs;
        List.iter
          (fun c ->
            match c with
            | Ast.P_and _ -> () (* flattened above *)
            | Ast.P_or (a, b) | Ast.P_imply (a, b) ->
                walk a;
                walk b
            | Ast.P_not q -> walk q
            | atom -> check_atom ~add atom)
          cs
    | Ast.P_or (a, b) | Ast.P_imply (a, b) ->
        walk a;
        walk b
    | Ast.P_not q -> walk q
    | atom -> check_atom ~add atom
  in
  walk p

let check_spec ((label, src) : string * string) : D.t list =
  let diags = ref [] in
  match Hoyan_rcl.Parser.parse src with
  | Error msg ->
      [ D.make ~code:"HOY015" ~obj:(Printf.sprintf "spec %s" label)
          "specification does not parse: %s" msg ]
  | Ok intent ->
      let add code msg =
        diags :=
          D.make ~code ~obj:(Printf.sprintf "spec %s" label) "%s" msg
          :: !diags
      in
      List.iter (check_pred ~add) (preds_of_intent intent);
      List.rev !diags

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let run (input : input) : D.t list =
  let plan_diags, input =
    match input.li_plan with
    | None -> ([], input)
    | Some plan ->
        let ds, merged = plan_checks input plan in
        (ds, { input with li_configs = merged; li_texts = render_texts merged })
  in
  let config_diags =
    Smap.fold
      (fun _ cfg acc -> List.rev_append (check_config input cfg) acc)
      input.li_configs []
  in
  let corpus_diags = vrf_rt_checks input in
  let spec_diags = List.concat_map check_spec input.li_specs in
  List.sort D.compare_diag
    (plan_diags @ config_diags @ corpus_diags @ spec_diags)

let has_errors ds =
  List.exists (fun (d : D.t) -> d.D.d_severity = D.Error) ds
