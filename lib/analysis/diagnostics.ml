(** The unified diagnostics framework of the static-analysis subsystem.

    Every lint check reports through this module: a stable code
    ([HOY001]...), a severity, a kebab-case check name, a human message
    and a location (device, object, line in the device's rendered
    configuration).  Diagnostics render as one-line text for the CLI and
    as JSON for machine consumption; codes are append-only so downstream
    tooling can suppress or gate on them across versions. *)

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type location = {
  loc_device : string option;
  loc_object : string option; (* e.g. "route-policy RR_OUT node 20" *)
  loc_line : int option; (* 1-based, in the rendered config / command block *)
}

let no_loc = { loc_device = None; loc_object = None; loc_line = None }

type t = {
  d_code : string;
  d_severity : severity;
  d_check : string;
  d_message : string;
  d_loc : location;
}

(* ------------------------------------------------------------------ *)
(* The check catalog (append-only; codes are stable across versions)   *)
(* ------------------------------------------------------------------ *)

let catalog : (string * string * severity * string) list =
  [
    ( "HOY001", "undefined-prefix-list", Error,
      "a route-policy match references a prefix list with no definition" );
    ( "HOY002", "undefined-community-list", Error,
      "a route-policy match references a community list with no definition" );
    ( "HOY003", "undefined-aspath-filter", Error,
      "a route-policy match references an as-path filter with no definition" );
    ( "HOY004", "undefined-route-policy", Error,
      "a BGP session, redistribution or VRF export references an undefined \
       route policy" );
    ( "HOY005", "undefined-acl", Error,
      "an interface or PBR rule references an ACL with no definition" );
    ( "HOY006", "ebgp-missing-policy", Warning,
      "an eBGP session has no import/export policy on a vendor whose \
       profile rejects updates without one (Table-5 'missing route \
       policy')" );
    ( "HOY007", "shadowed-policy-term", Warning,
      "a route-policy node can never match: an earlier node already \
       matches every route it would" );
    ( "HOY008", "shadowed-prefix-entry", Warning,
      "a prefix-list entry can never match: an earlier entry covers its \
       whole prefix/length range" );
    ( "HOY009", "invalid-aspath-regex", Error,
      "an as-path filter entry carries a regular expression that does not \
       compile" );
    ( "HOY010", "vrf-import-no-exporter", Warning,
      "a VRF imports a route target no VRF in the corpus exports" );
    ( "HOY011", "vrf-export-no-importer", Warning,
      "a VRF exports a route target no VRF in the corpus imports" );
    ( "HOY012", "plan-unknown-device", Error,
      "a change-plan command block or topology operation targets a device \
       that exists neither in the configs nor in the topology" );
    ( "HOY013", "plan-delete-error", Error,
      "a change-plan deletion command does not apply to the device's \
       configuration (object not found / malformed)" );
    ( "HOY014", "plan-parse-error", Error,
      "a change-plan command line does not parse in the target device's \
       vendor dialect" );
    ( "HOY015", "rcl-parse-error", Error,
      "an RCL specification does not parse (includes unknown field names)" );
    ( "HOY016", "rcl-field-type", Error,
      "an RCL predicate compares a field against a value of the wrong \
       type, or applies an operator the field's type does not admit" );
    ( "HOY017", "rcl-invalid-regex", Error,
      "an RCL 'matches' predicate carries a regular expression that does \
       not compile" );
    ( "HOY018", "rcl-unreachable-predicate", Warning,
      "an RCL conjunction constrains a field contradictorily and can \
       never hold" );
    ( "HOY019", "undefined-interface", Error,
      "a PBR rule or IS-IS stanza references an interface the device does \
       not define" );
    ( "HOY020", "bgp-session-unidirectional", Error,
      "a BGP neighbor stanza points at an address owned by a managed \
       device that has no reciprocal stanza back (half-configured \
       session)" );
    ( "HOY021", "bgp-session-as-mismatch", Error,
      "a BGP neighbor stanza's remote-as does not match the peer \
       device's configured local AS" );
    ( "HOY022", "redistribution-loop", Warning,
      "redistribution and VRF route-target edges form a cycle on one \
       device, so routes can be re-injected into the protocol or VRF \
       they came from" );
    ( "HOY023", "vrf-route-leak", Warning,
      "routes can leak across VRF or AS boundaries without any policy: a \
       cross-VRF route-target export carries no export policy, or a \
       device transits between distinct external ASes with neither \
       import nor export policies" );
    ( "HOY024", "dead-policy-term", Warning,
      "a route-policy node is dead under all inputs: the union of \
       earlier terminating nodes already covers every prefix the node \
       could match (generalises the pairwise shadowing check)" );
    ( "HOY025", "ibgp-propagation-gap", Warning,
      "the iBGP session graph of an AS cannot deliver routes from some \
       member to every other member (incomplete mesh / missing \
       route-reflector client coverage)" );
    ( "HOY026", "dangling-static-nexthop", Warning,
      "a static route's next hop is not on any connected subnet, not \
       covered by another route, and not a reachable managed device \
       address" );
    ( "HOY027", "bgp-session-family-mismatch", Error,
      "the two stanzas of a BGP session disagree on address family (one \
       side speaks IPv4, the other IPv6)" );
    ( "HOY028", "isis-adjacency-mismatch", Warning,
      "a physical link between two IS-IS enabled devices has IS-IS \
       configured on exactly one end, so no adjacency can form" );
    ( "HOY029", "intent-statically-refuted", Warning,
      "a reachability intent is refuted by the static control-plane \
       closure: no propagation path can deliver (or originate) the \
       expected route" );
    (* HOY030..HOY037: the differential change-impact pass (PR 7) *)
    ( "HOY030", "plan-semantic-noop", Warning,
      "a textually non-empty command block parses cleanly but leaves the \
       device's semantic config unchanged: the change re-states existing \
       configuration and will have no effect" );
    ( "HOY031", "plan-wrong-dialect", Warning,
      "most of a command block fails to parse in the target device's \
       dialect and the config comes out unchanged: the block was likely \
       written for the other vendor" );
    ( "HOY032", "plan-edits-dead-term", Warning,
      "the plan edits a route-policy term that is dead (shadowed by \
       earlier terms, HOY024) both before and after the change: the edit \
       cannot alter routing behaviour" );
    ( "HOY033", "plan-widens-ebgp-transit", Warning,
      "the change adds policy-less eBGP sessions until the device \
       transits between external ASes with neither import nor export \
       policies (on a vendor that accepts policy-less eBGP updates)" );
    ( "HOY034", "plan-breaks-session", Error,
      "the plan deletes a BGP neighbor stanza whose peer still points \
       back after the change: the session another device depends on is \
       left half-configured" );
    ( "HOY035", "plan-removes-origination", Warning,
      "the plan deletes the only origination (network statement or \
       static) of a prefix that the base control plane propagates to \
       other devices" );
    ( "HOY036", "plan-withdraws-unknown-prefix", Warning,
      "the plan withdraws a prefix that no monitored input route \
       announces: the withdrawal is a no-op (likely a typo)" );
    ( "HOY037", "plan-impact-summary", Info,
      "blast-radius summary of a propagating change: the devices and \
       prefix sets whose simulated state the plan can affect" );
  ]

let find_code code =
  List.find_opt (fun (c, _, _, _) -> String.equal c code) catalog

let check_of_code code =
  match find_code code with
  | Some (_, check, _, _) -> check
  | None -> invalid_arg (Printf.sprintf "Diagnostics.check_of_code: %s" code)

let severity_of_code code =
  match find_code code with
  | Some (_, _, sev, _) -> sev
  | None -> invalid_arg (Printf.sprintf "Diagnostics.severity_of_code: %s" code)

let code_of_check check =
  match List.find_opt (fun (_, c, _, _) -> String.equal c check) catalog with
  | Some (code, _, _, _) -> Some code
  | None -> None

(** Build a diagnostic for a cataloged code (severity and check name come
    from the catalog). *)
let make ~code ?device ?obj ?line fmt =
  Printf.ksprintf
    (fun msg ->
      {
        d_code = code;
        d_severity = severity_of_code code;
        d_check = check_of_code code;
        d_message = msg;
        d_loc = { loc_device = device; loc_object = obj; loc_line = line };
      })
    fmt

(* ------------------------------------------------------------------ *)
(* Ordering and rendering                                              *)
(* ------------------------------------------------------------------ *)

let compare_diag a b =
  let c = Int.compare (severity_rank a.d_severity) (severity_rank b.d_severity) in
  if c <> 0 then c
  else
    let dev = function None -> "" | Some d -> d in
    let c =
      String.compare (dev a.d_loc.loc_device) (dev b.d_loc.loc_device)
    in
    if c <> 0 then c
    else
      let c = String.compare a.d_code b.d_code in
      if c <> 0 then c
      else
        Stdlib.compare
          (a.d_loc.loc_line, a.d_message)
          (b.d_loc.loc_line, b.d_message)

let location_to_string loc =
  match (loc.loc_device, loc.loc_line) with
  | Some d, Some l -> Printf.sprintf "%s:%d" d l
  | Some d, None -> d
  | None, Some l -> Printf.sprintf "<input>:%d" l
  | None, None -> "-"

let to_string d =
  let obj =
    match d.d_loc.loc_object with None -> "" | Some o -> Printf.sprintf " (%s)" o
  in
  Printf.sprintf "%s %-7s %s [%s] %s%s" d.d_code
    (severity_to_string d.d_severity)
    (location_to_string d.d_loc)
    d.d_check d.d_message obj

let count sev ds = List.length (List.filter (fun d -> d.d_severity = sev) ds)

let summary ds =
  Printf.sprintf "%d error(s), %d warning(s), %d info" (count Error ds)
    (count Warning ds) (count Info ds)

(* ------------------------------------------------------------------ *)
(* JSON rendering (no external dependency)                             *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let field k v = Printf.sprintf "\"%s\": %s" k v in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let opt_str k = function None -> [] | Some v -> [ field k (str v) ] in
  let opt_int k = function
    | None -> []
    | Some v -> [ field k (string_of_int v) ]
  in
  let fields =
    [
      field "code" (str d.d_code);
      field "severity" (str (severity_to_string d.d_severity));
      field "check" (str d.d_check);
      field "message" (str d.d_message);
    ]
    @ opt_str "device" d.d_loc.loc_device
    @ opt_str "object" d.d_loc.loc_object
    @ opt_int "line" d.d_loc.loc_line
  in
  "{" ^ String.concat ", " fields ^ "}"

(** Render a diagnostic list as one JSON document with per-severity
    counts — the `hoyan lint --json` output format. *)
let list_to_json ds =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"diagnostics\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (to_json d))
    ds;
  if ds <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"counts\": {\"error\": %d, \"warning\": %d, \"info\": %d}\n}\n"
       (count Error ds) (count Warning ds) (count Info ds));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Baselines and the exit-code contract                                *)
(* ------------------------------------------------------------------ *)

(** Stable identity of a finding for baseline matching.  Deliberately
    excludes the message text and line number: both shift under
    unrelated edits, while code + device + object pin down the same
    logical finding across runs. *)
let key d =
  let part = function None -> "" | Some s -> s in
  Printf.sprintf "%s|%s|%s" d.d_code
    (part d.d_loc.loc_device)
    (part d.d_loc.loc_object)

(** The baseline file format version written by {!to_baseline}.
    Version 1 files (no [version] directive) are still accepted by
    {!parse_baseline}; version 2 added the explicit directive so future
    key-format changes can be detected instead of silently mismatching. *)
let baseline_version = 2

(** Render diagnostics as a baseline file: a [version] directive, then
    one {!key} per line, sorted and deduplicated, with a comment header.
    Re-recording a baseline on an unchanged corpus yields a
    byte-identical file. *)
let to_baseline ds =
  let keys = List.sort_uniq String.compare (List.map key ds) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "# hoyan lint baseline: one suppressed finding per line\n";
  Buffer.add_string buf "# format: CODE|device|object\n";
  Buffer.add_string buf (Printf.sprintf "version %d\n" baseline_version);
  List.iter
    (fun k ->
      Buffer.add_string buf k;
      Buffer.add_char buf '\n')
    keys;
  Buffer.contents buf

(** Parse baseline file contents into the set of suppressed keys.
    Blank lines and [#] comments are ignored; a [version N] directive is
    validated (an unknown future version raises [Invalid_argument]
    rather than silently suppressing the wrong findings).  Files without
    the directive are treated as version 1. *)
let parse_baseline contents =
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char ' ' line with
           | [ "version"; v ] ->
               (match int_of_string_opt v with
               | Some n when n >= 1 && n <= baseline_version -> None
               | _ ->
                   invalid_arg
                     (Printf.sprintf
                        "Diagnostics.parse_baseline: unsupported baseline \
                         version %s (this build writes version %d)"
                        v baseline_version))
           | _ -> Some line)

(** Drop diagnostics whose {!key} appears in the baseline. *)
let apply_baseline ~baseline ds =
  let suppressed = List.sort_uniq String.compare baseline in
  List.filter
    (fun d -> not (List.mem (key d) suppressed))
    ds

(** The CLI exit-code contract shared by [hoyan lint] and
    [hoyan analyze]: 2 if any error survives, 1 if more than
    [max_warnings] warnings survive, 0 otherwise. *)
let exit_code ?(max_warnings = 0) ds =
  if count Error ds > 0 then 2
  else if count Warning ds > max_warnings then 1
  else 0
