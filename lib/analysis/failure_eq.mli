(** Static failure-equivalence analysis for exhaustive k-failure
    verification (paper §6.2; ROADMAP "exhaustive what-if exploration").

    Brute-force fault-tolerance checking simulates every ≤k-failure
    topology.  This module statically groups the failure scenarios into
    classes whose simulations provably coincide on the slice of the
    network a property can observe, so the sweep simulates one
    representative per class — following Plankton's
    equivalence/partial-order reduction and ACORN's abstraction ideas
    (PAPERS.md) on top of the PR4 control-plane closure.

    {2 The slice argument}

    Fix a property footprint: the set [P] of prefixes and the monitored
    devices [D] whose route state the property reads ({!footprint}).
    Let [region(p)] be the PR4 closure of [p] — the over-approximate
    set of devices any execution can deliver [p] to, including every
    origin — closed under aggregate contribution (if [p] is configured
    as an aggregate anywhere, the closures of all candidate contributor
    prefixes under [p] are unioned in).

    The {e influence slice} [U] is the union of the regions narrowed to
    the devices that can affect what [D] observes: the backward closure
    of [D] over session edges that are not provably AS-loop-blocked.
    An edge [u -> d] is provably blocked when it is eBGP and [d]'s ASN
    is in every AS path any route for [P] can have at [u] (a
    decreasing-intersection dataflow from the origins; an eBGP hop adds
    the sender's ASN unless an AS-path-overwriting policy plus the
    [adding_own_asn] VSB could suppress it) — the simulator's loop
    check then drops every such arrival.  A device behind such a
    boundary (e.g. a single-homed stub AS) can receive [p] but never
    transmit anything back, so its state — and any failure visible
    only to it — is irrelevant to the property.  Failures only remove
    propagation paths, so blocked edges stay blocked in every scenario.

    The [p]-restricted outcome of a simulation at the devices of [U]
    (which routes for [p] they hold) is a function of, only:

    - the configs of the devices in [U] (failures never edit configs);
    - which devices of [U] are removed;
    - the up-state of each intra-slice BGP session (both endpoints in
      [U]; a link-address peering is up iff the physical link survives,
      a loopback peering iff an IGP path survives — mirroring
      [Model.sessions_of]).  Sessions toward devices outside [U] only
      feed state the property provably never observes;
    - each [U]-device's IGP cost row restricted to the candidate
      next-hop owners — the only addresses the BGP decision process
      reads costs for ([d_igp_cost] at a route's next hop): owners of
      input-route and static-route next hops for [P], [Set_nexthop]
      policy targets, eBGP/next-hop-self exporters inside the slice
      (they rewrite next hops to their own session addresses), and
      loopback owners whose host route is itself a footprint prefix.
      Locally originated routes carry no next hop (constant cost 0);
      ownerless external addresses resolve through config-only rules —
      both constant under every scenario;
    - whether each SR policy of a [U]-device resolves (the BGP decision
      process reads only resolution success, via the "IGP cost for SR"
      VSB);
    - the injected input routes (failure-independent).

    Devices outside the forward closure can never carry [p] (the
    closure is an over-approximation that failures only shrink), and
    devices outside the backward closure can never transmit toward [D],
    so their state is irrelevant to the property.  The per-scenario
    {e fingerprint} is exactly the tuple above, so:

    {e fingerprint equality ⇒ identical property-restricted route state
    ⇒ identical verdict.}

    {2 The three pruning tiers}

    + {b Irrelevance} — a scenario whose fingerprint equals the
      no-failure fingerprint leaves the property's slice untouched; the
      base verdict carries with zero simulation.  (This is the
      "dirty region disjoint from the footprint" test: any overlap
      shows up as a changed row, up-bit or removal marker.)
    + {b Equivalence} — scenarios with identical fingerprints form a
      class; one representative simulates and its verdict replicates to
      the members.
    + {b Independence reduction for k≥2} — classes are formed across
      scenario sizes, so a pair whose joint fingerprint equals a single
      failure's fingerprint (the other failure is independent of the
      slice) collapses into the smaller scenario's class — the
      partial-order reduction.  Note deliberately {e not} implemented as
      "regions disjoint ⇒ compose": two individually-innocuous link
      failures can jointly reroute IGP paths that each alone leaves
      intact, so the joint fingerprint is computed from the jointly
      failed topology.  On top, an articulation/cut analysis over the
      control-plane session graph statically proves
      definite-disconnection counterexamples ({!Static_violation})
      without any fixpoint: if, in the {e permissive} session graph
      (every surviving session edge passes, policies ignored), a
      monitored device is unreachable from every surviving origin, the
      prefix is definitely absent there — the permissive graph
      over-approximates deliverability and origins only shrink under
      failure.

    Each tier's machine check is the brute-force-vs-pruned oracle in
    [test/test_kfailure.ml]: identical violation sets on generated
    topologies for k ∈ {1,2}. *)

open Hoyan_net

(** A candidate failure: one link or one device down. *)
type failure = Link_down of string * string | Device_down of string

val failure_to_string : failure -> string
val compare_failure : failure -> failure -> int

(** What a property can observe, as declared by its author.

    - [Reach_all (p, devs)]: the property holds iff prefix [p] is
      present on every device of [devs]; enables all three tiers
      including the cut analysis.
    - [Prefix_scoped (ps, devs)]: the property reads only route rows
      [(d, p)] with [p ∈ ps] (and [devs] names the devices it cares
      about, for reporting); enables tiers 1–2.
    - [Opaque]: no static knowledge (e.g. traffic/utilization
      properties, whose verdict can change even under byte-identical
      RIBs when a removed link reroutes flows); every scenario
      simulates. *)
type footprint =
  | Reach_all of Prefix.t * string list
  | Prefix_scoped of Prefix.t list * string list
  | Opaque

(** Accumulator-based k-combinations in lexicographic (input) order —
    no quadratic list append. *)
val combinations : int -> 'a list -> 'a list list

(** All candidate single failures of a topology: links (deduplicated,
    [src < dst]) and/or devices. *)
val candidates :
  ?devices:bool -> ?links:bool -> Topology.t -> failure list

(** The analysis context: the semantic graph, its topology, and the
    per-prefix closure memo shared across the whole candidate set. *)
type t

(** Build a context.  The semantic graph must carry a topology
    ([Lint.input] built with [~topo]); raises [Invalid_argument]
    otherwise.  [te_aware] must match the model under test so the
    fingerprint IGP rows agree with the simulator's. *)
val create :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  ?te_aware:bool ->
  Semantic.t ->
  input_routes:Route.t list ->
  t

(** The memoized closure region of one prefix (topology members only),
    {e without} aggregate-contributor closure. *)
val region : t -> Prefix.t -> string list

(** Per-class decision. *)
type decision =
  | Carry_base  (** tier 1: fingerprint equals base — base verdict carries *)
  | Static_violation of string
      (** tier 3 cut analysis: definite disconnection, no fixpoint *)
  | Simulate  (** representative must simulate; verdict replicates *)

type cls = {
  cl_rep : failure list;  (** representative scenario (first member) *)
  cl_members : failure list list;  (** all members, enumeration order *)
  cl_decision : decision;
}

type plan = {
  pl_k : int;
  pl_scenarios : failure list list;  (** enumeration order, sizes 1..k *)
  pl_class_of : int array;  (** scenario index -> index into [pl_classes] *)
  pl_classes : cls list;
  pl_total : int;  (** scenarios enumerated *)
  pl_carried : int;  (** members of the base-equivalent class *)
  pl_static : int;  (** members decided by the cut analysis *)
  pl_replicated : int;  (** non-representative members of simulate classes *)
  pl_to_simulate : int;  (** representatives that must simulate *)
  pl_opaque : bool;  (** footprint gave the analysis nothing to prune with *)
}

(** Enumerate all scenarios of size 1..k over the candidate set and
    partition them into verdict-equivalence classes. *)
val analyze :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  ?devices:bool ->
  ?links:bool ->
  t ->
  k:int ->
  footprint ->
  plan

(** One-line plan summary for CLIs and logs. *)
val describe : plan -> string
