(** Differential change-impact analysis: the static half of the paper's
    incremental verification loop.

    Given the base network (a {!Lint.input}) and a change plan, this pass
    computes — without running any fixpoint —

    - a {b semantic config diff}: the plan's command blocks are applied
      per device ({!Hoyan_config.Change_plan.apply_commands}) and the
      resulting IR is diffed stanza-by-stanza (neighbors, policies,
      prefix lists, VRFs, statics, networks, redistribution, ...),
      classifying the plan as no-op / local / propagating and emitting
      the HOY030..HOY037 plan-risk diagnostics;
    - a {b blast radius}: the diff's touched objects are seeded into the
      PR4 control-plane graph and symbolic prefix-set dataflow
      ({!Semantic.closure}) to over-approximate the transitive dirty
      region — affected devices, prefix sets (as tries) and EC
      signatures — the invalidation set an incremental simulator needs;
    - a {b relational intent pre-check}: {!carries_over} decides, per
      reachability intent, whether the base run's verdict provably
      survives the change (the intent's prefix is outside the dirty
      region under the over-approximation) so a batch only simulates the
      affected remainder.

    Soundness discipline (mirrors PR4): every rule {e over}-approximates
    the set of (device, prefix) pairs whose simulated state can change.
    A change at device [d] can only alter prefix [p]'s routes if [d]
    carries [p] in the base or the patched closure {e and} the change
    touches a stanza whose prefix regions cover [p]; session-level and
    IGP-level changes are treated as touching every prefix, and topology
    operations dirty everything. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Smap = Types.Smap
module D = Diagnostics
module Telemetry = Hoyan_telemetry.Telemetry

(* ------------------------------------------------------------------ *)
(* Stanza identities and the semantic config diff                      *)
(* ------------------------------------------------------------------ *)

(** The unit of the semantic diff: one named (or keyed) config stanza. *)
type stanza =
  | S_neighbor of Ip.t
  | S_policy of string
  | S_prefix_list of string
  | S_community_list of string
  | S_aspath_filter of string
  | S_vrf of string
  | S_static of Prefix.t * string (* prefix, vrf *)
  | S_network of Prefix.t * string
  | S_aggregate of Prefix.t * string
  | S_redistribute
  | S_iface of string
  | S_isis
  | S_bgp_global
  | S_acl of string
  | S_pbr
  | S_sr_policy of string

let stanza_to_string = function
  | S_neighbor a -> Printf.sprintf "neighbor %s" (Ip.to_string a)
  | S_policy n -> Printf.sprintf "route-policy %s" n
  | S_prefix_list n -> Printf.sprintf "prefix-list %s" n
  | S_community_list n -> Printf.sprintf "community-list %s" n
  | S_aspath_filter n -> Printf.sprintf "as-path filter %s" n
  | S_vrf n -> Printf.sprintf "vrf %s" n
  | S_static (p, v) -> Printf.sprintf "static %s vrf %s" (Prefix.to_string p) v
  | S_network (p, v) ->
      Printf.sprintf "network %s vrf %s" (Prefix.to_string p) v
  | S_aggregate (p, v) ->
      Printf.sprintf "aggregate %s vrf %s" (Prefix.to_string p) v
  | S_redistribute -> "redistribution"
  | S_iface n -> Printf.sprintf "interface %s" n
  | S_isis -> "isis"
  | S_bgp_global -> "bgp"
  | S_acl n -> Printf.sprintf "acl %s" n
  | S_pbr -> "pbr"
  | S_sr_policy n -> Printf.sprintf "sr-policy %s" n

type change_kind = Added | Removed | Modified

let kind_to_string = function
  | Added -> "added"
  | Removed -> "removed"
  | Modified -> "modified"

type stanza_change = { sc_stanza : stanza; sc_kind : change_kind }

(** The per-device semantic diff plus the structured application issues
    (unparsed / wrong-dialect / failed-delete lines). *)
type device_diff = {
  dd_device : string;
  dd_base : Types.t;
  dd_patched : Types.t;
  dd_changes : stanza_change list;
  dd_block_lines : int; (* non-blank lines in the command block *)
  dd_issues : Cp.line_issue list;
}

(* Diff two String-keyed stanza maps; values are compared structurally
   (the IR is pure data). *)
let smap_diff mk (a : 'a Smap.t) (b : 'a Smap.t) acc =
  let acc =
    Smap.fold
      (fun k v acc ->
        match Smap.find_opt k b with
        | None -> { sc_stanza = mk k; sc_kind = Removed } :: acc
        | Some v' ->
            if v = v' then acc
            else { sc_stanza = mk k; sc_kind = Modified } :: acc)
      a acc
  in
  Smap.fold
    (fun k _ acc ->
      if Smap.mem k a then acc
      else { sc_stanza = mk k; sc_kind = Added } :: acc)
    b acc

(* Diff two keyed lists as multisets grouped by key, so list-order churn
   from the merge (sort_uniq on statics/networks) is not a change. *)
let keyed_diff mk key (xs : 'a list) (ys : 'a list) acc =
  let group l =
    List.fold_left
      (fun m x ->
        let k = key x in
        let prev = Option.value (List.assoc_opt k m) ~default:[] in
        (k, x :: prev) :: List.remove_assoc k m)
      [] l
  in
  let gx = group xs and gy = group ys in
  let acc =
    List.fold_left
      (fun acc (k, vs) ->
        match List.assoc_opt k gy with
        | None -> { sc_stanza = mk k; sc_kind = Removed } :: acc
        | Some vs' ->
            if List.sort compare vs = List.sort compare vs' then acc
            else { sc_stanza = mk k; sc_kind = Modified } :: acc)
      acc gx
  in
  List.fold_left
    (fun acc (k, _) ->
      if List.mem_assoc k gx then acc
      else { sc_stanza = mk k; sc_kind = Added } :: acc)
    acc gy

(** Stanza-by-stanza semantic diff of two device configs.  Keyed and
    order-insensitive: re-stating existing configuration (or merge-order
    churn) diffs to nothing. *)
let diff_configs (a : Types.t) (b : Types.t) : stanza_change list =
  let acc = [] in
  let acc =
    keyed_diff
      (fun k -> S_neighbor k)
      (fun (nb : Types.neighbor) -> nb.Types.nb_addr)
      a.Types.dc_bgp.Types.bgp_neighbors b.Types.dc_bgp.Types.bgp_neighbors
      acc
  in
  let acc =
    smap_diff (fun k -> S_policy k) a.Types.dc_policies b.Types.dc_policies acc
  in
  let acc =
    smap_diff
      (fun k -> S_prefix_list k)
      a.Types.dc_prefix_lists b.Types.dc_prefix_lists acc
  in
  let acc =
    smap_diff
      (fun k -> S_community_list k)
      a.Types.dc_community_lists b.Types.dc_community_lists acc
  in
  let acc =
    smap_diff
      (fun k -> S_aspath_filter k)
      a.Types.dc_aspath_filters b.Types.dc_aspath_filters acc
  in
  let acc =
    keyed_diff
      (fun k -> S_vrf k)
      (fun (v : Types.vrf_def) -> v.Types.vd_name)
      a.Types.dc_bgp.Types.bgp_vrfs b.Types.dc_bgp.Types.bgp_vrfs acc
  in
  let acc =
    keyed_diff
      (fun (p, v) -> S_static (p, v))
      (fun (s : Types.static_route) -> (s.Types.st_prefix, s.Types.st_vrf))
      a.Types.dc_statics b.Types.dc_statics acc
  in
  let acc =
    keyed_diff
      (fun (p, v) -> S_network (p, v))
      (fun (pv : Prefix.t * string) -> pv)
      a.Types.dc_bgp.Types.bgp_networks b.Types.dc_bgp.Types.bgp_networks acc
  in
  let acc =
    keyed_diff
      (fun (p, v) -> S_aggregate (p, v))
      (fun (ag : Types.aggregate) -> (ag.Types.ag_prefix, ag.Types.ag_vrf))
      a.Types.dc_bgp.Types.bgp_aggregates b.Types.dc_bgp.Types.bgp_aggregates
      acc
  in
  let acc =
    if
      List.sort compare a.Types.dc_bgp.Types.bgp_redistribute
      = List.sort compare b.Types.dc_bgp.Types.bgp_redistribute
    then acc
    else { sc_stanza = S_redistribute; sc_kind = Modified } :: acc
  in
  let acc =
    keyed_diff
      (fun k -> S_iface k)
      (fun (i : Types.iface_config) -> i.Types.if_name)
      a.Types.dc_ifaces b.Types.dc_ifaces acc
  in
  let acc =
    if a.Types.dc_isis = b.Types.dc_isis then acc
    else { sc_stanza = S_isis; sc_kind = Modified } :: acc
  in
  let acc =
    if
      a.Types.dc_bgp.Types.bgp_asn = b.Types.dc_bgp.Types.bgp_asn
      && a.Types.dc_bgp.Types.bgp_router_id = b.Types.dc_bgp.Types.bgp_router_id
    then acc
    else { sc_stanza = S_bgp_global; sc_kind = Modified } :: acc
  in
  let acc = smap_diff (fun k -> S_acl k) a.Types.dc_acls b.Types.dc_acls acc in
  let acc =
    if List.sort compare a.Types.dc_pbr = List.sort compare b.Types.dc_pbr then
      acc
    else { sc_stanza = S_pbr; sc_kind = Modified } :: acc
  in
  let acc =
    keyed_diff
      (fun k -> S_sr_policy k)
      (fun (s : Types.sr_policy) -> s.Types.sp_name)
      a.Types.dc_sr_policies b.Types.dc_sr_policies acc
  in
  List.rev acc

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

type classification = No_op | Local | Propagating

let classification_to_string = function
  | No_op -> "no-op"
  | Local -> "local"
  | Propagating -> "propagating"

(* Policy names attached to constructs that act on routes: session
   import/export, VRF export, redistribution. *)
let attached_policies (cfg : Types.t) : string list =
  let bgp = cfg.Types.dc_bgp in
  List.concat_map
    (fun (nb : Types.neighbor) ->
      List.filter_map Fun.id [ nb.Types.nb_import; nb.Types.nb_export ])
    bgp.Types.bgp_neighbors
  @ List.filter_map
      (fun (v : Types.vrf_def) -> v.Types.vd_export_policy)
      bgp.Types.bgp_vrfs
  @ List.filter_map snd bgp.Types.bgp_redistribute

(* Match-clause references of the attached policies: the prefix /
   community / as-path lists whose change can alter route treatment. *)
let attached_refs (cfg : Types.t) :
    string list * string list * string list =
  let attached = attached_policies cfg in
  let pls = ref [] and cls = ref [] and afs = ref [] in
  List.iter
    (fun name ->
      match Types.find_policy cfg name with
      | None -> ()
      | Some rp ->
          List.iter
            (fun (n : Types.policy_node) ->
              List.iter
                (function
                  | Types.Match_prefix_list pl -> pls := pl :: !pls
                  | Types.Match_community_list cl -> cls := cl :: !cls
                  | Types.Match_aspath_filter af -> afs := af :: !afs
                  | _ -> ())
                n.Types.pn_matches)
            rp.Types.rp_nodes)
    attached;
  (!pls, !cls, !afs)

(* Whether one stanza change on [dev] can influence any other device's
   routes.  Conservative: only provably device-local stanzas (ACLs, PBR,
   unattached policy objects) are Local. *)
let change_propagates ~(base : Types.t) ~(patched : Types.t)
    (c : stanza_change) : bool =
  let attached name =
    List.mem name (attached_policies base)
    || List.mem name (attached_policies patched)
  in
  let referenced pick name =
    let of_cfg cfg = pick (attached_refs cfg) in
    List.mem name (of_cfg base) || List.mem name (of_cfg patched)
  in
  match c.sc_stanza with
  | S_acl _ | S_pbr -> false
  | S_policy n -> attached n
  | S_prefix_list n -> referenced (fun (p, _, _) -> p) n
  | S_community_list n -> referenced (fun (_, c, _) -> c) n
  | S_aspath_filter n -> referenced (fun (_, _, a) -> a) n
  | S_neighbor _ | S_vrf _ | S_static _ | S_network _ | S_aggregate _
  | S_redistribute | S_iface _ | S_isis | S_bgp_global | S_sr_policy _ ->
      true

(* ------------------------------------------------------------------ *)
(* Touched prefix regions: per-device precision for the dirty region    *)
(* ------------------------------------------------------------------ *)

(** Which prefixes a device's changes can affect: everything, or an
    explicit union of prefix regions. *)
type touched = All | Regions of Semantic.region list

let exact_region (p : Prefix.t) : Semantic.region =
  { Semantic.rg_prefix = p; rg_lo = Prefix.len p; rg_hi = Prefix.len p }

let region_contains (r : Semantic.region) (p : Prefix.t) =
  Prefix.family r.Semantic.rg_prefix = Prefix.family p
  && Prefix.subsumes r.Semantic.rg_prefix p
  && Prefix.len p >= r.Semantic.rg_lo
  && Prefix.len p <= r.Semantic.rg_hi

let touched_contains t p =
  match t with
  | All -> true
  | Regions rs -> List.exists (fun r -> region_contains r p) rs

(* Regions a changed prefix list can affect: entries present on exactly
   one side or differing by sequence number, both sides' denotations.
   Prefixes under no changed entry keep hitting the same unchanged
   earlier entry, so their evaluation cannot move. *)
let changed_entry_regions (a : Types.prefix_list option)
    (b : Types.prefix_list option) : Semantic.region list =
  let entries = function
    | None -> []
    | Some (pl : Types.prefix_list) -> pl.Types.pl_entries
  in
  let ea = entries a and eb = entries b in
  let find seq l =
    List.find_opt (fun (e : Types.prefix_entry) -> e.Types.pe_seq = seq) l
  in
  let changed side other =
    List.filter_map
      (fun (e : Types.prefix_entry) ->
        match find e.Types.pe_seq other with
        | Some e' when e = e' -> None
        | _ -> Some (Semantic.entry_region e))
      side
  in
  changed ea eb @ changed eb ea

(* Regions a changed policy node can affect, bounded by its prefix-list
   match clause (either family); nodes without one match any prefix. *)
let node_regions (cfg : Types.t) (n : Types.policy_node) :
    Semantic.region list option =
  let has_pl =
    List.exists
      (function Types.Match_prefix_list _ -> true | _ -> false)
      n.Types.pn_matches
  in
  if not has_pl then None
  else
    match
      ( Semantic.matchable_regions cfg Ip.Ipv4 n,
        Semantic.matchable_regions cfg Ip.Ipv6 n )
    with
    | None, None -> None (* referenced list undefined: conservative *)
    | r4, r6 ->
        Some (Option.value r4 ~default:[] @ Option.value r6 ~default:[])

let changed_node_regions ~(base : Types.t) ~(patched : Types.t) name :
    Semantic.region list option =
  let nodes cfg =
    match Types.find_policy cfg name with
    | None -> []
    | Some rp -> rp.Types.rp_nodes
  in
  let na = nodes base and nb = nodes patched in
  let find seq l =
    List.find_opt (fun (n : Types.policy_node) -> n.Types.pn_seq = seq) l
  in
  let changed cfg side other =
    List.filter_map
      (fun (n : Types.policy_node) ->
        match find n.Types.pn_seq other with
        | Some n' when n = n' -> None
        | _ -> Some (node_regions cfg n))
      side
  in
  let parts = changed base na nb @ changed patched nb na in
  if List.exists Option.is_none parts then None
  else Some (List.concat_map Option.get parts)

(* Regions of attached-policy nodes that reference [name] through a
   community-list or as-path-filter clause. *)
let referencing_node_regions (cfg : Types.t) ~clause name :
    Semantic.region list option =
  let refs (n : Types.policy_node) =
    List.exists
      (fun (c : Types.match_clause) ->
        match (clause, c) with
        | `Community, Types.Match_community_list x -> String.equal x name
        | `Aspath, Types.Match_aspath_filter x -> String.equal x name
        | _ -> false)
      n.Types.pn_matches
  in
  let parts =
    List.concat_map
      (fun pname ->
        match Types.find_policy cfg pname with
        | None -> []
        | Some rp ->
            List.filter_map
              (fun n -> if refs n then Some (node_regions cfg n) else None)
              rp.Types.rp_nodes)
      (attached_policies cfg)
  in
  if List.exists Option.is_none parts then None
  else Some (List.concat_map Option.get parts)

(* The touched-region set of one device diff.  [None]-producing (All)
   changes win; otherwise the union of the per-change regions, closed
   under static next-hop recursion (deleting a route a static resolves
   through can flip that static's installability). *)
let device_touched (dd : device_diff) : touched =
  let base = dd.dd_base and patched = dd.dd_patched in
  let exception Broad in
  try
    let regions =
      List.concat_map
        (fun c ->
          if not (change_propagates ~base ~patched c) then []
          else
            match c.sc_stanza with
            | S_static (p, _) | S_network (p, _) | S_aggregate (p, _) ->
                [ exact_region p ]
            | S_prefix_list n ->
                changed_entry_regions
                  (Types.find_prefix_list base n)
                  (Types.find_prefix_list patched n)
            | S_policy n -> (
                match changed_node_regions ~base ~patched n with
                | None -> raise Broad
                | Some rs -> rs)
            | S_community_list n -> (
                match
                  ( referencing_node_regions base ~clause:`Community n,
                    referencing_node_regions patched ~clause:`Community n )
                with
                | Some a, Some b -> a @ b
                | _ -> raise Broad)
            | S_aspath_filter n -> (
                match
                  ( referencing_node_regions base ~clause:`Aspath n,
                    referencing_node_regions patched ~clause:`Aspath n )
                with
                | Some a, Some b -> a @ b
                | _ -> raise Broad)
            | S_acl _ | S_pbr -> []
            | S_neighbor _ | S_vrf _ | S_redistribute | S_iface _ | S_isis
            | S_bgp_global | S_sr_policy _ ->
                raise Broad)
        dd.dd_changes
    in
    (* static next-hop recursion: a static whose next hop lives inside a
       touched region rides on routes that may appear or vanish *)
    let statics =
      List.sort_uniq compare (base.Types.dc_statics @ patched.Types.dc_statics)
    in
    let rec close regions =
      let extra =
        List.filter_map
          (fun (s : Types.static_route) ->
            match s.Types.st_nexthop with
            | Some nh
              when List.exists
                     (fun r ->
                       region_contains r
                         (Prefix.make nh (Ip.family_bits (Ip.family nh))))
                     regions
                   && not
                        (List.exists
                           (fun r ->
                             r = exact_region s.Types.st_prefix)
                           regions) ->
                Some (exact_region s.Types.st_prefix)
            | _ -> None)
          statics
      in
      if extra = [] then regions else close (extra @ regions)
    in
    Regions (close regions)
  with Broad -> All

(* ------------------------------------------------------------------ *)
(* The diff itself                                                     *)
(* ------------------------------------------------------------------ *)

type diff = {
  df_plan : Cp.t;
  df_base_input : Lint.input;
  df_patched_input : Lint.input;
  df_devices : device_diff list;
  df_reports : Cp.apply_report list;
  df_class : classification;
  df_topo_dirty : bool; (* topology ops: everything is dirty *)
  df_touched : (string * touched) list; (* per changed device *)
  df_base_graph : Semantic.t Lazy.t;
  df_patched_graph : Semantic.t Lazy.t;
  df_dirty_cache : (string, bool) Hashtbl.t; (* per-prefix memo *)
}

let count_block_lines block =
  String.split_on_char '\n' block
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

(** Build the differential: apply the plan's topology ops and command
    blocks to the base input (mirroring
    {!Hoyan_sim.Model.apply_change_plan}'s config-level semantics) and
    diff base against patched per device. *)
let diff ?tm (input : Lint.input) (plan : Cp.t) : diff =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  Telemetry.with_span tm "differential.diff" (fun () ->
      let topo' =
        Option.map
          (fun topo ->
            List.fold_left
              (fun topo op ->
                match op with
                | Cp.Add_device d -> Topology.add_device topo d
                | Cp.Remove_device n -> Topology.remove_device topo n
                | Cp.Add_link { la; la_if; lb; lb_if; l_bandwidth } ->
                    Topology.add_link topo ~a:la ~a_if:la_if ~b:lb ~b_if:lb_if
                      ~bandwidth:l_bandwidth
                | Cp.Remove_link { ra; rb } ->
                    Topology.remove_link topo ~a:ra ~b:rb)
              topo plan.Cp.cp_topo_ops)
          input.Lint.li_topo
      in
      let configs =
        List.fold_left
          (fun configs op ->
            match op with
            | Cp.Add_device d ->
                if Smap.mem d.Topology.name configs then configs
                else
                  Smap.add d.Topology.name
                    (Types.empty ~device:d.Topology.name
                       ~vendor:d.Topology.vendor)
                    configs
            | Cp.Remove_device n -> Smap.remove n configs
            | Cp.Add_link _ | Cp.Remove_link _ -> configs)
          input.Lint.li_configs plan.Cp.cp_topo_ops
      in
      let patched, devices, reports =
        List.fold_left
          (fun (configs, devices, reports) (dev, block) ->
            match Smap.find_opt dev configs with
            | None ->
                let report =
                  Cp.report_failure ~device:dev
                    (Printf.sprintf "unknown device %S" dev)
                in
                (configs, devices, report :: reports)
            | Some cfg ->
                let cfg', report = Cp.apply_commands cfg block in
                let dd =
                  {
                    dd_device = dev;
                    dd_base = cfg;
                    dd_patched = cfg';
                    dd_changes = diff_configs cfg cfg';
                    dd_block_lines = count_block_lines block;
                    dd_issues = report.Cp.ar_issues;
                  }
                in
                (Smap.add dev cfg' configs, dd :: devices, report :: reports))
          (configs, [], []) plan.Cp.cp_commands
      in
      let devices = List.rev devices and reports = List.rev reports in
      let topo_dirty = plan.Cp.cp_topo_ops <> [] in
      let routes_dirty =
        plan.Cp.cp_new_routes <> [] || plan.Cp.cp_withdraw <> []
      in
      let cls =
        if topo_dirty || routes_dirty then Propagating
        else
          List.fold_left
            (fun cls dd ->
              List.fold_left
                (fun cls c ->
                  if
                    change_propagates ~base:dd.dd_base ~patched:dd.dd_patched
                      c
                  then Propagating
                  else if cls = Propagating then cls
                  else Local)
                cls dd.dd_changes)
            No_op devices
      in
      let touched =
        List.filter_map
          (fun dd ->
            if dd.dd_changes = [] then None
            else
              match device_touched dd with
              | Regions [] -> None (* purely local changes *)
              | t -> Some (dd.dd_device, t))
          devices
      in
      let patched_input =
        Lint.make ?topo:topo' ~render:false patched
      in
      {
        df_plan = plan;
        df_base_input = input;
        df_patched_input = patched_input;
        df_devices = devices;
        df_reports = reports;
        df_class = cls;
        df_topo_dirty = topo_dirty;
        df_touched = touched;
        df_base_graph = lazy (Semantic.build ~tm input);
        df_patched_graph = lazy (Semantic.build ~tm patched_input);
        df_dirty_cache = Hashtbl.create 64;
      })

(* ------------------------------------------------------------------ *)
(* The dirty-region test and the relational carry-over rule             *)
(* ------------------------------------------------------------------ *)

(* Input routes surviving the plan, plus its new announcements. *)
let patched_routes (plan : Cp.t) (input_routes : Route.t list) : Route.t list =
  let survives (r : Route.t) =
    not (List.exists (Prefix.equal r.Route.prefix) plan.Cp.cp_withdraw)
  in
  List.filter survives input_routes @ plan.Cp.cp_new_routes

(** Whether the plan can affect prefix [p]'s simulated routes anywhere.
    Over-approximate: [false] guarantees that base and patched
    simulations place byte-identical route state for [p] on every
    device, so any verdict about [p] carries over from the base run. *)
let prefix_affected ?tm (d : diff) ~(input_routes : Route.t list)
    (p : Prefix.t) : bool =
  let key = Prefix.to_string p in
  match Hashtbl.find_opt d.df_dirty_cache key with
  | Some v -> v
  | None ->
      let v =
        if d.df_class = No_op then false
        else if d.df_topo_dirty then true
        else if
          List.exists (Prefix.equal p) d.df_plan.Cp.cp_withdraw
          || List.exists
               (fun (r : Route.t) -> Prefix.equal r.Route.prefix p)
               d.df_plan.Cp.cp_new_routes
        then true
        else begin
          (* contributor changes can activate/deactivate an aggregate:
             if any touched region (or announced/withdrawn prefix) lies
             under an aggregate for [p], [p] is dirty too *)
          let seeds_under_aggregate =
            let sub_region (ag : Prefix.t) =
              {
                Semantic.rg_prefix = ag;
                rg_lo = Prefix.len ag;
                rg_hi = Prefix.bits ag;
              }
            in
            let seed_inside r =
              List.exists
                (fun (q : Prefix.t) -> region_contains r q)
                (d.df_plan.Cp.cp_withdraw
                @ List.map
                    (fun (x : Route.t) -> x.Route.prefix)
                    d.df_plan.Cp.cp_new_routes)
              || List.exists
                   (fun (_, t) ->
                     match t with
                     | All -> true
                     | Regions rs ->
                         List.exists
                           (fun (s : Semantic.region) ->
                             Semantic.regions_overlap r s)
                           rs)
                   d.df_touched
            in
            let has_aggregate (cfg : Types.t) =
              List.exists
                (fun (ag : Types.aggregate) ->
                  Prefix.equal ag.Types.ag_prefix p
                  && seed_inside (sub_region ag.Types.ag_prefix))
                cfg.Types.dc_bgp.Types.bgp_aggregates
            in
            Smap.exists
              (fun _ cfg -> has_aggregate cfg)
              d.df_base_input.Lint.li_configs
            || Smap.exists
                 (fun _ cfg -> has_aggregate cfg)
                 d.df_patched_input.Lint.li_configs
          in
          if seeds_under_aggregate then true
          else begin
            let touching =
              List.filter (fun (_, t) -> touched_contains t p) d.df_touched
            in
            if touching = [] then false
            else begin
              let bg = Lazy.force d.df_base_graph in
              let pg = Lazy.force d.df_patched_graph in
              let proutes = patched_routes d.df_plan input_routes in
              let base_exact =
                Semantic.exact_origins bg ~input_routes p
              in
              let patched_exact =
                Semantic.exact_origins pg ~input_routes:proutes p
              in
              if base_exact <> patched_exact then true
              else begin
                let cl_b =
                  Semantic.closure ?tm ~exact:base_exact bg ~input_routes p
                in
                let cl_p =
                  Semantic.closure ?tm ~exact:patched_exact pg
                    ~input_routes:proutes p
                in
                List.exists
                  (fun (dev, _) ->
                    Hashtbl.mem cl_b dev || Hashtbl.mem cl_p dev)
                  touching
              end
            end
          end
        end
      in
      Hashtbl.replace d.df_dirty_cache key v;
      v

(** The relational carry-over rule for a reachability intent about
    prefix [p]: [true] when the base run's verdict provably survives the
    change. *)
let carries_over ?tm (d : diff) ~(input_routes : Route.t list) (p : Prefix.t)
    : bool =
  not (prefix_affected ?tm d ~input_routes p)

(* ------------------------------------------------------------------ *)
(* Blast radius: the dirty region as an invalidation set                *)
(* ------------------------------------------------------------------ *)

(** The transitive dirty region — what an incremental simulator must
    re-compute.  Prefixes are drawn from the known universe (monitored
    input routes plus the plan's own announcements and withdrawals);
    [im_all_prefixes] flags changes (topology ops) that dirty prefixes
    outside any enumerable universe. *)
type impact = {
  im_class : classification;
  im_all_prefixes : bool;
  im_devices : string list; (* sorted *)
  im_prefixes : unit Trie.Dual.t;
  im_ec_signatures : string list;
      (* per dirty prefix: "prefix -> {closure members}" *)
}

let impact ?tm (d : diff) ~(input_routes : Route.t list) : impact =
  let universe =
    List.sort_uniq Prefix.compare
      (List.map (fun (r : Route.t) -> r.Route.prefix) input_routes
      @ List.map
          (fun (r : Route.t) -> r.Route.prefix)
          d.df_plan.Cp.cp_new_routes
      @ d.df_plan.Cp.cp_withdraw)
  in
  let dirty =
    List.filter (fun p -> prefix_affected ?tm d ~input_routes p) universe
  in
  let devices = Hashtbl.create 64 in
  List.iter (fun (dev, _) -> Hashtbl.replace devices dev ()) d.df_touched;
  List.iter
    (fun op ->
      match op with
      | Cp.Add_device dv -> Hashtbl.replace devices dv.Topology.name ()
      | Cp.Remove_device n -> Hashtbl.replace devices n ()
      | Cp.Add_link { la; lb; _ } ->
          Hashtbl.replace devices la ();
          Hashtbl.replace devices lb ()
      | Cp.Remove_link { ra; rb } ->
          Hashtbl.replace devices ra ();
          Hashtbl.replace devices rb ())
    d.df_plan.Cp.cp_topo_ops;
  let signatures =
    List.map
      (fun p ->
        let pg = Lazy.force d.df_patched_graph in
        let proutes = patched_routes d.df_plan input_routes in
        let cl = Semantic.closure ?tm pg ~input_routes:proutes p in
        let members =
          List.sort String.compare (Hashtbl.fold (fun k () l -> k :: l) cl [])
        in
        List.iter (fun dev -> Hashtbl.replace devices dev ()) members;
        Printf.sprintf "%s -> {%s}" (Prefix.to_string p)
          (String.concat "," members))
      dirty
  in
  {
    im_class = d.df_class;
    im_all_prefixes = d.df_topo_dirty;
    im_devices =
      List.sort String.compare (Hashtbl.fold (fun k () l -> k :: l) devices []);
    im_prefixes =
      List.fold_left
        (fun t p -> Trie.Dual.add t p ())
        Trie.Dual.empty dirty;
    im_ec_signatures = List.sort String.compare signatures;
  }

(* ------------------------------------------------------------------ *)
(* Plan-risk diagnostics: HOY030..HOY037                                *)
(* ------------------------------------------------------------------ *)

(* HOY030/HOY031: textually non-empty block with no semantic effect. *)
let noop_checks (dd : device_diff) : D.t list =
  if dd.dd_block_lines = 0 || dd.dd_changes <> [] then []
  else
    let parse_failures =
      List.length
        (List.filter (fun i -> i.Cp.ci_kind = Cp.Parse) dd.dd_issues)
    in
    if parse_failures > 0 && 2 * parse_failures >= dd.dd_block_lines then
      [
        D.make ~code:"HOY031" ~device:dd.dd_device ~obj:"command block"
          "%d of %d command line(s) fail to parse and the config is \
           unchanged: the block looks like the other vendor's dialect"
          parse_failures dd.dd_block_lines;
      ]
    else
      [
        D.make ~code:"HOY030" ~device:dd.dd_device ~obj:"command block"
          "%d command line(s) leave the semantic config unchanged: the \
           block re-states existing configuration"
          dd.dd_block_lines;
      ]

(* HOY032: the plan edits a policy node that is dead before and after. *)
let dead_edit_checks (dd : device_diff) : D.t list =
  let dead_objs cfg =
    List.filter_map
      (fun (d : D.t) -> d.D.d_loc.D.loc_object)
      (Semantic.dead_term_check dd.dd_device cfg)
  in
  List.filter_map
    (fun c ->
      match (c.sc_stanza, c.sc_kind) with
      | S_policy name, Modified ->
          let changed_nodes =
            match
              ( Types.find_policy dd.dd_base name,
                Types.find_policy dd.dd_patched name )
            with
            | Some a, Some b ->
                let find seq l =
                  List.find_opt
                    (fun (n : Types.policy_node) -> n.Types.pn_seq = seq)
                    l
                in
                List.filter_map
                  (fun (n : Types.policy_node) ->
                    match find n.Types.pn_seq a.Types.rp_nodes with
                    | Some n' when n = n' -> None
                    | _ -> Some n.Types.pn_seq)
                  b.Types.rp_nodes
            | _ -> []
          in
          let base_dead = dead_objs dd.dd_base in
          let patched_dead = dead_objs dd.dd_patched in
          let still_dead seq =
            let obj = Printf.sprintf "route-policy %s node %d" name seq in
            List.mem obj base_dead && List.mem obj patched_dead
          in
          (match List.find_opt still_dead changed_nodes with
          | Some seq ->
              Some
                (D.make ~code:"HOY032" ~device:dd.dd_device
                   ~obj:(Printf.sprintf "route-policy %s node %d" name seq)
                   "the edited term is dead (HOY024) before and after the \
                    change: earlier terms cover everything it can match")
          | None -> None)
      | _ -> None)
    dd.dd_changes

(* HOY033: the change grows the set of policy-less external ASNs to a
   transit surface (>= 2 distinct ASes) on a permissive-VSB vendor. *)
let transit_checks (dd : device_diff) : D.t list =
  let open_asns (cfg : Types.t) =
    let vsb = Semantic.vsb_of cfg in
    if not vsb.Hoyan_config.Vsb.missing_policy_accepts then []
    else
      List.sort_uniq Int.compare
        (List.filter_map
           (fun (nb : Types.neighbor) ->
             if
               nb.Types.nb_remote_asn <> cfg.Types.dc_bgp.Types.bgp_asn
               && nb.Types.nb_import = None
               && nb.Types.nb_export = None
             then Some nb.Types.nb_remote_asn
             else None)
           cfg.Types.dc_bgp.Types.bgp_neighbors)
  in
  let before = open_asns dd.dd_base and after = open_asns dd.dd_patched in
  if List.length after >= 2 && List.length after > List.length before then
    [
      D.make ~code:"HOY033" ~device:dd.dd_device ~obj:"bgp"
        "the change widens the policy-less eBGP transit surface from %d \
         to %d external ASes (%s)"
        (List.length before) (List.length after)
        (String.concat ", " (List.map string_of_int after));
    ]
  else []

(* HOY034: a deleted neighbor stanza whose peer still points back. *)
let broken_session_checks (d : diff) (dd : device_diff) : D.t list =
  let bg = Lazy.force d.df_base_graph in
  List.filter_map
    (fun c ->
      match (c.sc_stanza, c.sc_kind) with
      | S_neighbor addr, Removed -> (
          let edge =
            List.find_opt
              (fun (e : Semantic.session_edge) ->
                String.equal e.Semantic.se_src dd.dd_device
                && Ip.equal e.Semantic.se_out.Types.nb_addr addr)
              bg.Semantic.g_edges
          in
          match edge with
          | None -> None
          | Some e ->
              let peer = e.Semantic.se_dst in
              let peer_cfg =
                match
                  Smap.find_opt peer d.df_patched_input.Lint.li_configs
                with
                | Some cfg -> Some cfg
                | None -> None
              in
              let peer_still_points_back =
                match peer_cfg with
                | None -> false (* peer removed too *)
                | Some cfg ->
                    Semantic.stanzas_towards bg.Semantic.g_owner cfg
                      dd.dd_device
                    <> []
              in
              if peer_still_points_back then
                Some
                  (D.make ~code:"HOY034" ~device:dd.dd_device
                     ~obj:(Printf.sprintf "neighbor %s" (Ip.to_string addr))
                     "deleting this neighbor stanza leaves the BGP session \
                      with %s half-configured: the peer still points back"
                     peer)
              else None)
      | _ -> None)
    dd.dd_changes

(* HOY035: the plan deletes the only origination of a propagated prefix. *)
let origination_checks ?tm (d : diff) ~input_routes (dd : device_diff) :
    D.t list =
  let bg = Lazy.force d.df_base_graph in
  let pg = Lazy.force d.df_patched_graph in
  let proutes = patched_routes d.df_plan input_routes in
  List.filter_map
    (fun c ->
      match (c.sc_stanza, c.sc_kind) with
      | (S_network (p, _) | S_static (p, _)), Removed ->
          let base_exact = Semantic.exact_origins bg ~input_routes p in
          let patched_exact =
            Semantic.exact_origins pg ~input_routes:proutes p
          in
          if
            List.mem_assoc dd.dd_device base_exact
            && patched_exact = []
            && Hashtbl.length
                 (Semantic.closure ?tm ~exact:base_exact bg ~input_routes p)
               >= 2
          then
            Some
              (D.make ~code:"HOY035" ~device:dd.dd_device
                 ~obj:(stanza_to_string c.sc_stanza)
                 "the deleted stanza is the only origination of %s, which \
                  the base control plane propagates beyond this device"
                 (Prefix.to_string p))
          else None
      | _ -> None)
    dd.dd_changes

(* HOY036: withdrawals of prefixes no monitored input route announces. *)
let withdraw_checks (d : diff) ~(input_routes : Route.t list) : D.t list =
  if input_routes = [] then []
  else
    List.filter_map
      (fun (p : Prefix.t) ->
        if
          List.exists
            (fun (r : Route.t) -> Prefix.equal r.Route.prefix p)
            input_routes
        then None
        else
          Some
            (D.make ~code:"HOY036" ~obj:(Prefix.to_string p)
               "the plan withdraws %s but no monitored input route \
                announces it: the withdrawal is a no-op"
               (Prefix.to_string p)))
      d.df_plan.Cp.cp_withdraw

(** Run the HOY030..HOY037 plan-risk checks over a diff.  [input_routes]
    (the monitored base announcements) feed the origination, withdrawal
    and impact-summary checks; without them those checks stay quiet
    rather than guessing. *)
let check ?tm ?(input_routes = []) (d : diff) : D.t list =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  Telemetry.with_span tm "differential.check" (fun () ->
      let per_device =
        List.concat_map
          (fun dd ->
            noop_checks dd @ dead_edit_checks dd @ transit_checks dd
            @ broken_session_checks d dd
            @ origination_checks ~tm d ~input_routes dd)
          d.df_devices
      in
      (* blocks that never produced a device diff (unknown device):
         surface their structured issues under the existing plan-parse
         code rather than dropping them *)
      let orphaned =
        List.concat_map
          (fun (r : Cp.apply_report) ->
            if
              List.exists
                (fun dd -> String.equal dd.dd_device r.Cp.ar_device)
                d.df_devices
            then []
            else
              List.map
                (fun (i : Cp.line_issue) ->
                  D.make ~code:"HOY014" ~device:r.Cp.ar_device
                    ~obj:(if i.Cp.ci_text = "" then "command block"
                          else i.Cp.ci_text)
                    ~line:i.Cp.ci_lnum "command does not apply: %s"
                    i.Cp.ci_msg)
                r.Cp.ar_issues)
          d.df_reports
      in
      let summary =
        if d.df_class <> Propagating then []
        else
          let im = impact ~tm d ~input_routes in
          [
            D.make ~code:"HOY037" ~obj:"blast radius"
              "propagating change: dirty region spans %d device(s) and %s"
              (List.length im.im_devices)
              (if im.im_all_prefixes then
                 "every prefix (topology operation)"
               else
                 Printf.sprintf "%d of %d monitored prefix(es)"
                   (Trie.Dual.cardinal im.im_prefixes)
                   (List.length
                      (List.sort_uniq Prefix.compare
                         (List.map
                            (fun (r : Route.t) -> r.Route.prefix)
                            input_routes))));
          ]
      in
      List.sort D.compare_diag
        (per_device @ orphaned @ withdraw_checks d ~input_routes @ summary))

(** One-line rendering of a diff for CLI output. *)
let summary (d : diff) : string =
  let changes =
    List.fold_left (fun n dd -> n + List.length dd.dd_changes) 0 d.df_devices
  in
  Printf.sprintf "%s: %d device block(s), %d stanza change(s), %s"
    d.df_plan.Cp.cp_name
    (List.length d.df_devices)
    changes
    (classification_to_string d.df_class)
