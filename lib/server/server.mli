(** The verification server: a long-running request loop over shared
    immutable snapshots (DESIGN.md §2.8).

    One server owns a snapshot store ({!Snapshot}), a bounded request
    queue with admission control (global depth + per-tenant quota), a
    result cache ({!Cache}) keyed by (snapshot, plan, intent) digests,
    and per-request budgets enforced through the PR5 lease machinery
    ({!Hoyan_dist.Db}): every admitted request is a [Db] entry whose
    attempt takes a lease of its budget; a request whose lease has
    expired when it finishes is [Timeout] — its verdict is withheld
    (the PR5 no-partial-verdicts contract, applied per request).

    Execution is the drain loop: {!drain} orders the queued requests by
    the cost model (class priors seeded from
    {!Hoyan_dist.Costmodel.est_route_subtask}, refined by measured
    times) under a {!Hoyan_dist.Schedule.policy}, executes each through
    the single {!run_direct} path, and returns responses in submission
    order.  {!modelled_makespan} replays the measured durations through
    {!Hoyan_dist.Schedule} to report multi-server scaling without real
    servers, as the distributed framework does. *)

type config = {
  c_queue_depth : int;  (** admission bound on queued requests *)
  c_tenant_quota : int;  (** max queued requests per tenant *)
  c_cache_capacity : int;  (** result-cache entries (LRU beyond) *)
  c_policy : Hoyan_dist.Schedule.policy;  (** drain order *)
  c_default_budget_s : float;  (** budget when the request names none *)
}

(** depth 256, quota 64, cache 1024, Fifo, budget 300s. *)
val default_config : config

type status =
  | Ok  (** executed; the verdict is PASS *)
  | Fail  (** executed; the verdict is FAIL *)
  | Rejected of string  (** admission refused it (reason) *)
  | Timeout  (** lease expired; verdict withheld *)
  | Error of string  (** execution raised *)

val status_to_string : status -> string

type response = {
  rs_seq : int;  (** global submission sequence number *)
  rs_id : string;
  rs_tenant : string;
  rs_class : Request.rq_class;
  rs_status : status;
  rs_body : string;
      (** deterministic verdict rendering (no timings, no request
          name): byte-identical for cached and uncached executions of
          the same request *)
  rs_cached : bool;
  rs_queue_s : float;  (** time spent queued *)
  rs_exec_s : float;  (** execution time (0 for rejected/cached) *)
}

(** Render a response for the output stream.  [timing:false] omits the
    latency fields (stable output for smoke tests). *)
val response_to_string : ?timing:bool -> response -> string

type stats = {
  st_submitted : int;
  st_admitted : int;
  st_rejected_queue : int;
  st_rejected_quota : int;
  st_rejected_snapshot : int;
  st_completed : int;
  st_failed : int;  (** completed with a FAIL verdict *)
  st_timeouts : int;
  st_errors : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_cache_evictions : int;
}

type t

val create : ?tm:Hoyan_telemetry.Telemetry.t -> ?config:config -> unit -> t

(** Register a base as a shared snapshot.  The first registration
    becomes the default target for requests that name no snapshot.
    Re-registering identical content is a no-op returning the existing
    snapshot. *)
val register_snapshot : t -> Hoyan_core.Preprocess.base -> Snapshot.t

val find_snapshot : t -> string -> Snapshot.t option
val snapshots : t -> Snapshot.t list

(** Admission: [Ok ()] means queued; [Error response] is the terminal
    [Rejected] response (queue full, tenant over quota, or unknown
    snapshot). *)
val submit : t -> Request.t -> (unit, response) result

(** Number of requests currently queued. *)
val queue_depth : t -> int

(** Execute everything queued (cost-model order under the configured
    policy) and return the responses in {e submission} order. *)
val drain : t -> response list

(** The single execution path: run one request against a snapshot
    through {!Hoyan_core.Verify_request.run} with the class's flags,
    bypassing queue, cache and budgets.  The server's executed
    responses are byte-identical to this — the serve bench and
    [--selfcheck] assert it (the incremental engine's splice contract
    is exactly what makes the identity hold when the server passes
    [?inc]/[?inc_sim]).

    [inc] supplies the snapshot's captured incremental context and
    [inc_sim] an already-spliced artifact for the request's plan; the
    drain loop provisions both automatically for the simulating
    classes and caches artifacts by (snapshot digest, plan digest). *)
val run_direct :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  ?inc:Hoyan_sim.Incremental.ctx ->
  ?inc_sim:Hoyan_sim.Incremental.sim ->
  Snapshot.t ->
  Request.t ->
  status * string

(** Ids of requests executed by past [drain]s, in execution order
    (exposes the scheduler's decisions to tests). *)
val executed_order : t -> string list

(** Measured execution durations of completed requests, oldest first. *)
val durations : t -> float list

(** Replay the measured durations through the multi-server scheduler:
    the modelled end-to-end time on [servers] workers. *)
val modelled_makespan : t -> servers:int -> float

val stats : t -> stats

(** Per-class measured execution latencies, oldest first. *)
val latencies : t -> (Request.rq_class * float) list

(** Human-readable one-shot summary (counts, cache, queue). *)
val report : t -> string
