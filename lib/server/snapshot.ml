(* The snapshot store's unit of sharing (see the .mli).

   The digest is a hex MD5 over a canonical rendering: device configs in
   device-name order through the production printer, the topology's
   device set and link keys sorted, and the filtered input routes/flows
   sorted by their canonical renderings.  Sorting everywhere makes the
   digest a function of the base's {e content}, not of the order the
   generator or the parser happened to emit things in. *)

open Hoyan_net
module Model = Hoyan_sim.Model
module Types = Hoyan_config.Types
module Printer = Hoyan_config.Printer
module Preprocess = Hoyan_core.Preprocess
module Telemetry = Hoyan_telemetry.Telemetry
module Smap = Types.Smap

type t = {
  sn_digest : string;
  sn_base : Preprocess.base;
  sn_devices : int;
  sn_input_routes : int;
  sn_flows : int;
  sn_rib_rows : int;
  sn_converge_s : float;
}

let digest_of_base (base : Preprocess.base) : string =
  let model = base.Preprocess.b_model in
  let b = Buffer.create 65536 in
  (* device configurations, in name order, through the printer *)
  Smap.iter
    (fun dev cfg ->
      Buffer.add_string b "config ";
      Buffer.add_string b dev;
      Buffer.add_char b '\n';
      Buffer.add_string b (Printer.print cfg);
      Buffer.add_char b '\n')
    model.Model.configs;
  (* topology: devices then links, both sorted *)
  List.iter
    (fun (d : Topology.device) ->
      Buffer.add_string b
        (Printf.sprintf "device %s %s %d %s %s\n" d.Topology.name
           d.Topology.vendor d.Topology.asn
           (Ip.to_string d.Topology.router_id)
           d.Topology.region))
    (List.sort
       (fun (a : Topology.device) b -> String.compare a.Topology.name b.Topology.name)
       (Topology.devices model.Model.topo));
  List.iter
    (fun k ->
      Buffer.add_string b "link ";
      Buffer.add_string b k;
      Buffer.add_char b '\n')
    (List.sort String.compare
       (List.map Topology.link_key (Topology.edges model.Model.topo)));
  (* filtered simulation inputs, sorted by rendering *)
  List.iter
    (fun s ->
      Buffer.add_string b "route ";
      Buffer.add_string b s;
      Buffer.add_char b '\n')
    (List.sort String.compare (List.map Route.to_string base.Preprocess.b_input_routes));
  List.iter
    (fun s ->
      Buffer.add_string b "flow ";
      Buffer.add_string b s;
      Buffer.add_char b '\n')
    (List.sort String.compare (List.map Flow.to_string base.Preprocess.b_flows));
  Digest.to_hex (Digest.string (Buffer.contents b))

(* digest -> registered snapshot.  [register] used to force the base
   RIB/traffic unconditionally, so re-registering the same base (server
   restart replaying its snapshot list, two tenants uploading the same
   base) paid the full convergence again; now the second registration is
   a table hit. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let reset_registry () = Hashtbl.reset registry

let register ?tm (base : Preprocess.base) : t =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  Telemetry.with_span tm "server.snapshot" @@ fun () ->
  let digest = digest_of_base base in
  match Hashtbl.find_opt registry digest with
  | Some existing ->
      Telemetry.count tm "hoyan_server_snapshot_dedup_total" 1;
      if Telemetry.enabled tm then
        Telemetry.event tm "server.snapshot.dedup"
          [ ("snapshot", Hoyan_telemetry.Journal.S digest) ];
      existing
  | None ->
  let t0 = Unix.gettimeofday () in
  (* converge the shared state once: every later request reads these
     results; none re-runs the base fixpoints *)
  let rib = Lazy.force base.Preprocess.b_rib in
  ignore (Lazy.force base.Preprocess.b_traffic);
  let converge_s = Unix.gettimeofday () -. t0 in
  let t =
    {
      sn_digest = digest;
      sn_base = base;
      sn_devices = Smap.cardinal base.Preprocess.b_model.Model.configs;
      sn_input_routes = List.length base.Preprocess.b_input_routes;
      sn_flows = List.length base.Preprocess.b_flows;
      sn_rib_rows = List.length rib;
      sn_converge_s = converge_s;
    }
  in
  if Telemetry.enabled tm then begin
    Telemetry.gauge tm ~labels:[ ("snapshot", digest) ]
      "hoyan_server_snapshot_rib_rows" (float_of_int t.sn_rib_rows);
    Telemetry.observe tm "hoyan_server_snapshot_converge_seconds" converge_s
  end;
  Hashtbl.replace registry digest t;
  t

let to_string (t : t) : string =
  Printf.sprintf
    "snapshot %s: %d device(s), %d input route(s), %d flow(s), %d RIB \
     row(s), converged in %.2fs"
    (String.sub t.sn_digest 0 12)
    t.sn_devices t.sn_input_routes t.sn_flows t.sn_rib_rows t.sn_converge_s
