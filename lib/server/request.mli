(** Typed verification requests and the server's file/stdin transport.

    A request names a {e class} (how far the pipeline runs and with
    which flags — every class executes through
    {!Hoyan_core.Verify_request.run}), a change plan, intents, and
    per-request admission inputs (tenant, budget).

    {2 Cache keys}

    {!cache_key} is the result-cache key: (snapshot digest, plan
    digest, intent digest, class).  The plan digest is {e semantic}: the
    plan's command blocks are applied to the base configs and the digest
    covers the {e patched} configurations (plus the application issues,
    topology ops, announced routes and withdrawals) — so two textually
    different plans with the same meaning (restatements, reordered
    prefix-list entries, duplicated blocks) digest identically and
    deduplicate in the cache, the PR7 restatement-is-no-op property
    lifted to the request layer.

    {2 Transport}

    Requests travel as a line-oriented text stream (no network
    dependency):

    {v
# comment
request ID CLASS [tenant=T] [budget=SECONDS] [snapshot=DIGEST] [no-cache]
plan DEVICE
<verbatim vendor command lines>
end-plan
withdraw PREFIX
intent rcl RCL-SPEC
intent reach present|absent PREFIX DEV[,DEV...]
end
    v}

    [CLASS] is one of [lint], [precheck], [simulate], [diff], [whatif].
    [plan], [withdraw] and [intent] stanzas repeat.

    A [whatif] request runs the exhaustive k-failure sweep
    ({!Hoyan_core.Kfailure}) instead of the change pipeline: the
    property comes from the request's first [intent reach present]
    stanza, and the sweep is parameterized by the request options
    [k=K] (maximum simultaneous failures, default 1) and
    [failures=links|devices|both] (candidate scope, default links). *)

type rq_class = Lint | Precheck | Simulate | Diff | Whatif

val class_to_string : rq_class -> string
val class_of_string : string -> rq_class option

(** Candidate-failure scope of a [whatif] sweep. *)
type failure_scope = Links_only | Devices_only | Links_and_devices

val scope_to_string : failure_scope -> string
val scope_of_string : string -> failure_scope option

type t = {
  r_id : string;
  r_tenant : string;
  r_class : rq_class;
  r_snapshot : string option;
      (** target snapshot digest; [None] = the server's default *)
  r_plan : Hoyan_config.Change_plan.t;
  r_intents : Hoyan_core.Intents.t list;
  r_budget_s : float option;
      (** execution budget (lease seconds); [None] = server default *)
  r_no_cache : bool;  (** bypass the result cache entirely *)
  r_k : int;  (** [whatif]: maximum simultaneous failures *)
  r_scope : failure_scope;  (** [whatif]: candidate-failure scope *)
}

val make :
  ?tenant:string ->
  ?snapshot:string ->
  ?plan:Hoyan_config.Change_plan.t ->
  ?intents:Hoyan_core.Intents.t list ->
  ?budget_s:float ->
  ?no_cache:bool ->
  ?k:int ->
  ?scope:failure_scope ->
  id:string ->
  rq_class ->
  t

(** Semantic digest of a change plan against the base configurations
    (see above).  Stable across restatements; sensitive to anything
    {!Hoyan_core.Verify_request.run} could observe (patched configs,
    application issues, topology ops, new routes, withdrawals). *)
val plan_digest :
  configs:Hoyan_config.Types.t Hoyan_config.Types.Smap.t ->
  Hoyan_config.Change_plan.t ->
  string

(** In-order digest of the request's intents (intent order is
    observable in the verdict rendering, so it is {e not} sorted). *)
val intents_digest : Hoyan_core.Intents.t list -> string

(** The result-cache key:
    [snapshot-digest/class/plan-digest/intent-digest], where the class
    segment of a [whatif] request also carries its [k] and failure
    scope (they are part of the answer's identity). *)
val cache_key :
  snapshot_digest:string ->
  configs:Hoyan_config.Types.t Hoyan_config.Types.Smap.t ->
  t ->
  string

(** Parse a request stream.  [Error] carries a 1-based line number and
    message. *)
val parse : string -> (t list, string) result

(** Render one request in the transport format ([parse] of the output
    round-trips). *)
val print : t -> string
