(** Typed verification requests and the server's file/stdin transport.

    A request names a {e class} (how far the pipeline runs and with
    which flags — every class executes through
    {!Hoyan_core.Verify_request.run}), a change plan, intents, and
    per-request admission inputs (tenant, budget).

    {2 Cache keys}

    {!cache_key} is the result-cache key: (snapshot digest, plan
    digest, intent digest, class).  The plan digest is {e semantic}: the
    plan's command blocks are applied to the base configs and the digest
    covers the {e patched} configurations (plus the application issues,
    topology ops, announced routes and withdrawals) — so two textually
    different plans with the same meaning (restatements, reordered
    prefix-list entries, duplicated blocks) digest identically and
    deduplicate in the cache, the PR7 restatement-is-no-op property
    lifted to the request layer.

    {2 Transport}

    Requests travel as a line-oriented text stream (no network
    dependency):

    {v
# comment
request ID CLASS [tenant=T] [budget=SECONDS] [snapshot=DIGEST] [no-cache]
plan DEVICE
<verbatim vendor command lines>
end-plan
withdraw PREFIX
intent rcl RCL-SPEC
intent reach present|absent PREFIX DEV[,DEV...]
end
    v}

    [CLASS] is one of [lint], [precheck], [simulate], [diff].  [plan],
    [withdraw] and [intent] stanzas repeat. *)

type rq_class = Lint | Precheck | Simulate | Diff

val class_to_string : rq_class -> string
val class_of_string : string -> rq_class option

type t = {
  r_id : string;
  r_tenant : string;
  r_class : rq_class;
  r_snapshot : string option;
      (** target snapshot digest; [None] = the server's default *)
  r_plan : Hoyan_config.Change_plan.t;
  r_intents : Hoyan_core.Intents.t list;
  r_budget_s : float option;
      (** execution budget (lease seconds); [None] = server default *)
  r_no_cache : bool;  (** bypass the result cache entirely *)
}

val make :
  ?tenant:string ->
  ?snapshot:string ->
  ?plan:Hoyan_config.Change_plan.t ->
  ?intents:Hoyan_core.Intents.t list ->
  ?budget_s:float ->
  ?no_cache:bool ->
  id:string ->
  rq_class ->
  t

(** Semantic digest of a change plan against the base configurations
    (see above).  Stable across restatements; sensitive to anything
    {!Hoyan_core.Verify_request.run} could observe (patched configs,
    application issues, topology ops, new routes, withdrawals). *)
val plan_digest :
  configs:Hoyan_config.Types.t Hoyan_config.Types.Smap.t ->
  Hoyan_config.Change_plan.t ->
  string

(** In-order digest of the request's intents (intent order is
    observable in the verdict rendering, so it is {e not} sorted). *)
val intents_digest : Hoyan_core.Intents.t list -> string

(** The result-cache key:
    [snapshot-digest/class/plan-digest/intent-digest]. *)
val cache_key :
  snapshot_digest:string ->
  configs:Hoyan_config.Types.t Hoyan_config.Types.Smap.t ->
  t ->
  string

(** Parse a request stream.  [Error] carries a 1-based line number and
    message. *)
val parse : string -> (t list, string) result

(** Render one request in the transport format ([parse] of the output
    round-trips). *)
val print : t -> string
