(** Bounded LRU result cache.

    The server keys it by (snapshot digest, plan digest, intent digest)
    — see {!Request.cache_key} — and stores the fully rendered response,
    so a cache hit returns bytes identical to the uncached execution.
    Capacity is a hard bound on {e entries}; inserting into a full cache
    evicts the least-recently-used entry.  [capacity = 0] disables
    storage entirely (every [add] is dropped).

    Not domain-safe: the server serializes cache access on its drain
    loop. *)

type 'a t

val create : capacity:int -> 'a t
val capacity : 'a t -> int

(** Entries currently stored (always [<= capacity]). *)
val size : 'a t -> int

(** Lookup; a hit marks the entry most-recently-used.  Counts toward
    {!hits}/{!misses}. *)
val find : 'a t -> string -> 'a option

(** Insert (or overwrite) a binding and mark it most-recently-used,
    evicting the least-recently-used entry when over capacity. *)
val add : 'a t -> string -> 'a -> unit

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

(** [hits / (hits + misses)]; [nan] before the first lookup. *)
val hit_rate : 'a t -> float
