(** The snapshot store's unit of sharing: one pre-processed base —
    parsed model, filtered simulation inputs, and the {e converged} base
    state (global RIB and traffic result, normally lazy in
    {!Hoyan_core.Preprocess.base}) — registered once under a content
    digest and then shared {e read-only} across every request the server
    executes against it.

    Registration forces the base's lazy RIB/traffic exactly once, so no
    two requests ever race on the shared [Lazy.t] cells and every
    request pays only the incremental cost of its own change plan. *)

type t = {
  sn_digest : string;  (** hex content digest of the whole base *)
  sn_base : Hoyan_core.Preprocess.base;
      (** the shared base; its [b_rib]/[b_traffic] lazies are forced *)
  sn_devices : int;
  sn_input_routes : int;
  sn_flows : int;
  sn_rib_rows : int;  (** rows of the converged base RIB *)
  sn_converge_s : float;
      (** one-time cost of forcing the base RIB + traffic at
          registration *)
}

(** Content digest of a base: canonical rendering of every device
    config, the topology (devices and links), and the filtered input
    routes/flows.  Two bases with identical content digest identically
    regardless of construction order. *)
val digest_of_base : Hoyan_core.Preprocess.base -> string

(** Register a base: compute its digest and force the converged state.
    Registration is deduplicated on the digest: a base whose digest is
    already registered returns the {e existing} snapshot without
    re-forcing anything (counted as
    [hoyan_server_snapshot_dedup_total]), so replayed or duplicate
    registrations cost one digest computation, not a re-convergence.
    [tm] receives a [server.snapshot] span and registration gauges. *)
val register :
  ?tm:Hoyan_telemetry.Telemetry.t -> Hoyan_core.Preprocess.base -> t

(** Drop all registered snapshots (tests only: makes registration
    behavior deterministic across test cases). *)
val reset_registry : unit -> unit

(** One-line summary (digest prefix, sizes, convergence cost). *)
val to_string : t -> string
